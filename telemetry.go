package atmem

// This file wires the telemetry recorder (internal/telemetry) into the
// runtime's lifecycle: adapters for the analyzer stage observer and the
// migration engine event sink, per-phase metric snapshots, fault-event
// mirroring, and the trace writers the harness and CLIs use. All hooks
// are nil-safe — with Options.Recorder unset each lifecycle point costs
// one pointer test, and the simulated-access hot path carries no
// instrumentation at all.

import (
	"fmt"
	"io"

	"atmem/internal/core"
	"atmem/internal/memsim"
	"atmem/internal/migrate"
	"atmem/internal/telemetry"
)

// Telemetry returns the recorder attached via Options.Recorder (nil when
// telemetry is off).
func (r *Runtime) Telemetry() *telemetry.Recorder { return r.rec }

// stageObserver adapts the recorder to the analyzer's stage hooks,
// recording onto the given track (the placement track when the analyzer
// runs on the background service goroutine); it returns nil (no
// observation) when telemetry is off.
func (r *Runtime) stageObserver(tid int) core.StageObserver {
	if !r.rec.Enabled() {
		return nil
	}
	return stageRecorder{r.rec, tid}
}

// stageRecorder records each analyzer stage as a span on its track, with
// the stage's decision summary on the closing edge.
type stageRecorder struct {
	rec *telemetry.Recorder
	tid int
}

func (s stageRecorder) StageBegin(stage string) {
	s.rec.Begin(s.tid, "analyze", stage, nil)
}

func (s stageRecorder) StageEnd(stage string, summary map[string]any) {
	s.rec.End(s.tid, "analyze", stage, telemetry.Args(summary))
}

// emitMigrationEvent places one engine event on the simulated clock: the
// engine models its own elapsed seconds within the Optimize window, so
// the event lands at the window's start plus that offset.
func (r *Runtime) emitMigrationEvent(tid int, startNS uint64, ev migrate.Event) {
	args := telemetry.Args{
		"base":   ev.Region.Base,
		"bytes":  ev.Region.Size,
		"target": ev.Target.String(),
	}
	if ev.Attempt > 0 {
		args["attempt"] = ev.Attempt
	}
	if ev.StagingBytes > 0 {
		args["staging_bytes"] = ev.StagingBytes
	}
	if ev.Err != nil {
		args["error"] = ev.Err.Error()
	}
	r.rec.InstantAt(tid, startNS+uint64(ev.Seconds*1e9),
		"migrate", "region-"+string(ev.Kind), args)
}

// optimizeSpanArgs summarizes the Optimize outcome for its span's
// closing edge.
func (r *Runtime) optimizeSpanArgs() telemetry.Args {
	if !r.rec.Enabled() {
		return nil
	}
	args := telemetry.Args{}
	if r.migStats != nil {
		args["engine"] = r.migStats.Engine
		args["migration_s"] = r.migStats.Seconds
		args["bytes_moved"] = r.migStats.BytesMoved
		args["regions_migrated"] = r.migStats.RegionsMigrated
		args["regions_retried"] = r.migStats.RegionsRetried
		args["regions_skipped"] = r.migStats.RegionsSkipped
	}
	if r.plan != nil {
		args["selected_bytes"] = r.plan.SelectedBytes
		args["clipped_bytes"] = r.plan.ClippedBytes
	}
	if r.gov != nil {
		args["epoch"] = r.gov.epoch
		args["decision"] = r.gov.decision.String()
		args["breaker"] = r.gov.state.String()
		args["promoted_bytes"] = r.gov.promotedBytes
		args["demoted_bytes"] = r.gov.demotedBytes
		args["pressure_bytes"] = r.gov.pressureBytes
		args["resident_bytes"] = r.gov.residentBytes
	}
	return args
}

// logBreakerTransitions mirrors breaker state changes not yet in the
// trace as instants on the governor track (same drain pattern as
// logNewFaults). The governed Optimize calls it before closing its
// span, so a transition lands inside the epoch that caused it.
func (r *Runtime) logBreakerTransitions(tid int) {
	if !r.rec.Enabled() || r.breaker == nil {
		return
	}
	trs := r.breaker.Transitions()
	for ; r.breakerTraced < len(trs); r.breakerTraced++ {
		tr := trs[r.breakerTraced]
		r.rec.Instant(tid, "governor", "breaker-"+tr.To.String(), telemetry.Args{
			"epoch":    tr.Epoch,
			"from":     tr.From.String(),
			"reason":   tr.Reason,
			"cooldown": tr.Cooldown,
		})
	}
}

// logHealthTransitions mirrors scoreboard granule-state changes not yet
// in the trace as instants on the health track (same drain pattern as
// logBreakerTransitions). The governed Optimize calls it before closing
// its span; the trace writers call it again so epoch-boundary
// transitions (scrub detections, condemnations) also reach the trace.
func (r *Runtime) logHealthTransitions(tid int) {
	if !r.rec.Enabled() || r.board == nil {
		return
	}
	trs := r.board.Transitions()
	for ; r.healthTraced < len(trs); r.healthTraced++ {
		tr := trs[r.healthTraced]
		args := telemetry.Args{
			"epoch":  tr.Epoch,
			"base":   tr.Base,
			"bytes":  tr.Size,
			"from":   tr.From.String(),
			"reason": tr.Reason,
		}
		if tr.Backoff > 0 {
			args["backoff"] = tr.Backoff
		}
		r.rec.Instant(tid, "health", "granule-"+tr.To.String(), args)
	}
}

// emitPhaseMetrics snapshots the per-phase counters onto the trace's
// counter tracks: tier occupancy (mapped and reserved bytes per tier)
// and the phase's per-tier traffic breakdown.
func (r *Runtime) emitPhaseMetrics(pr *PhaseResult) {
	if !r.rec.Enabled() {
		return
	}
	occ := make(telemetry.Args, 2*memsim.NumTiers)
	traffic := make(telemetry.Args, 3*memsim.NumTiers)
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		mapped, reserved := r.sys.TierUsage(t)
		occ[t.String()+"_mapped"] = mapped
		occ[t.String()+"_reserved"] = reserved
		traffic[t.String()+"_read"] = pr.Stats.ReadBytes[t]
		traffic[t.String()+"_write"] = pr.Stats.WriteBytes[t]
		traffic[t.String()+"_writeback"] = pr.Stats.WritebackBytes[t]
	}
	r.rec.Counter(0, "metric", "tier-occupancy", occ)
	r.rec.Counter(0, "metric", "phase-traffic", traffic)
}

// emitChunkHeat records one instant per object with its accumulated
// sample totals — the trace-side companion of WriteChunkHeat.
func (r *Runtime) emitChunkHeat() {
	if !r.rec.Enabled() {
		return
	}
	for _, do := range r.reg.Objects() {
		reads, writes := do.ReadSamples(), do.WriteSamples()
		var rsum, wsum uint64
		hot := 0
		for j := range reads {
			rsum += reads[j]
			wsum += writes[j]
			if reads[j]+writes[j] > 0 {
				hot++
			}
		}
		r.rec.Instant(0, "profile", "heat", telemetry.Args{
			"object":        do.Name,
			"chunks":        do.NumChunks,
			"hot_chunks":    hot,
			"read_samples":  rsum,
			"write_samples": wsum,
		})
	}
}

// logNewFaults mirrors fault-injector events not yet in the trace as
// instants on the control track. Optimize calls it before closing its
// span; the trace writers call it again so Alloc-time faults (outside
// any Optimize) also reach the written trace, keeping the trace's fault
// events in one-to-one correspondence with Runtime.FaultEvents.
func (r *Runtime) logNewFaults(tid int) {
	if !r.rec.Enabled() || r.faults == nil {
		return
	}
	evs := r.faults.Events()
	for ; r.faultsTraced < len(evs); r.faultsTraced++ {
		ev := evs[r.faultsTraced]
		r.rec.Instant(tid, "fault", string(ev.Op), telemetry.Args{
			"call": ev.Call,
			"rule": ev.Rule,
		})
	}
}

// WriteTrace writes the recorded events as Perfetto-loadable Chrome
// trace-event JSON (see telemetry.WriteChromeTrace). Pending fault
// events are synced into the trace first.
func (r *Runtime) WriteTrace(w io.Writer) error {
	r.logNewFaults(0)
	r.logHealthTransitions(0)
	return telemetry.WriteChromeTrace(w, r.rec.Events())
}

// WriteTraceCSV writes the recorded events as a flat CSV timeline with
// both clocks in explicit columns.
func (r *Runtime) WriteTraceCSV(w io.Writer) error {
	r.logNewFaults(0)
	r.logHealthTransitions(0)
	return telemetry.WriteCSV(w, r.rec.Events())
}

// WriteChunkHeat dumps every registered object's per-chunk read/write
// sample counters as CSV — the chunk-granularity heat map the analyzer
// ranked, for offline inspection next to the trace.
func (r *Runtime) WriteChunkHeat(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "object,chunk,base,bytes,read_samples,write_samples"); err != nil {
		return err
	}
	for _, do := range r.reg.Objects() {
		reads, writes := do.ReadSamples(), do.WriteSamples()
		for j := 0; j < do.NumChunks; j++ {
			lo, _ := do.ChunkRange(j)
			if _, err := fmt.Fprintf(w, "%s,%d,%#x,%d,%d,%d\n",
				do.Name, j, lo, do.ChunkBytes(j), reads[j], writes[j]); err != nil {
				return err
			}
		}
	}
	return nil
}
