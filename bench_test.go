// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7), one Benchmark per artifact, plus micro-benchmarks of
// the simulator and analyzer hot paths.
//
// The experiment benchmarks share one memoized suite, so related
// artifacts (Figure 5 / Table 3 / Figure 7) execute their underlying
// runs once per `go test -bench` invocation; each benchmark prints the
// regenerated table through b.Log and reports headline metrics via
// b.ReportMetric.
package atmem_test

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"atmem"
	"atmem/apps"
	"atmem/graph"
	"atmem/internal/core"
	"atmem/internal/harness"
	"atmem/internal/memsim"
	"atmem/internal/pebs"
)

var (
	suiteOnce  sync.Once
	benchSuite *harness.Suite
)

func sharedSuite() *harness.Suite {
	suiteOnce.Do(func() { benchSuite = harness.NewSuite() })
	return benchSuite
}

// runExperiment executes one paper artifact against the shared suite and
// logs its tables.
func runExperiment(b *testing.B, id string) []*harness.Report {
	b.Helper()
	exp, err := harness.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var reports []*harness.Report
	for i := 0; i < b.N; i++ {
		reports, err = exp.Run(sharedSuite())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, rep := range reports {
		var sb strings.Builder
		if err := rep.WriteText(&sb); err != nil {
			b.Fatal(err)
		}
		b.Log("\n" + sb.String())
	}
	return reports
}

// parseRatio converts a "1.23x" cell back to a float.
func parseRatio(cell string) float64 {
	var v float64
	if _, err := fmt.Sscanf(cell, "%fx", &v); err != nil {
		return math.NaN()
	}
	return v
}

func BenchmarkFig1a(b *testing.B) {
	reports := runExperiment(b, "fig1a")
	reportMaxRatio(b, reports[0], "slowdown-max")
}

func BenchmarkFig1b(b *testing.B) {
	reports := runExperiment(b, "fig1b")
	reportMaxRatio(b, reports[0], "slowdown-max")
}

// reportMaxRatio publishes the largest ratio cell of a report.
func reportMaxRatio(b *testing.B, rep *harness.Report, metric string) {
	b.Helper()
	maxV := 0.0
	for _, row := range rep.Rows {
		for _, cell := range row[1:] {
			if v := parseRatio(cell); !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	b.ReportMetric(maxV, metric)
}

func BenchmarkFig5(b *testing.B) {
	reports := runExperiment(b, "fig5")
	reportSpeedupColumn(b, reports[0], 5)
}

func BenchmarkFig6(b *testing.B) {
	reports := runExperiment(b, "fig6")
	reportSpeedupColumn(b, reports[0], 5)
}

// reportSpeedupColumn publishes min/max of the atmem-speedup column.
func reportSpeedupColumn(b *testing.B, rep *harness.Report, col int) {
	b.Helper()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range rep.Rows {
		v := parseRatio(row[col])
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	b.ReportMetric(lo, "speedup-min")
	b.ReportMetric(hi, "speedup-max")
}

func BenchmarkTable3(b *testing.B) {
	runExperiment(b, "tab3")
}

func BenchmarkFig7(b *testing.B) {
	runExperiment(b, "fig7")
}

func BenchmarkFig8(b *testing.B) {
	runExperiment(b, "fig8")
}

func BenchmarkFig9(b *testing.B) {
	runExperiment(b, "fig9")
}

func BenchmarkFig10(b *testing.B) {
	runExperiment(b, "fig10")
}

func BenchmarkTable4(b *testing.B) {
	reports := runExperiment(b, "tab4")
	// The last row holds the averages; columns 2 and 4 are time
	// reductions (the paper's 2.07x / 5.32x).
	avg := reports[0].Rows[len(reports[0].Rows)-1]
	if v := parseRatio(avg[2]); !math.IsNaN(v) {
		b.ReportMetric(v, "nvm-time-reduction")
	}
	if v := parseRatio(avg[4]); !math.IsNaN(v) {
		b.ReportMetric(v, "knl-time-reduction")
	}
}

func BenchmarkOverhead(b *testing.B) {
	runExperiment(b, "overhead")
}

// ---- micro-benchmarks of the substrate hot paths ----

// BenchmarkAccessorRandomLoad measures the simulator's per-access cost on
// the random-gather pattern that dominates graph kernels.
func BenchmarkAccessorRandomLoad(b *testing.B) {
	sys := memsim.NewSystem(memsim.NVMDRAMParams())
	base, err := sys.Alloc(8<<20, memsim.TierSlow)
	if err != nil {
		b.Fatal(err)
	}
	acc := sys.NewAccessor()
	span := uint64(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Load(base+(uint64(i)*7919*64)%span, 8)
	}
}

// BenchmarkAccessorStreamLoad measures the sequential-scan fast path.
func BenchmarkAccessorStreamLoad(b *testing.B) {
	sys := memsim.NewSystem(memsim.NVMDRAMParams())
	base, err := sys.Alloc(8<<20, memsim.TierSlow)
	if err != nil {
		b.Fatal(err)
	}
	acc := sys.NewAccessor()
	span := uint64(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Load(base+(uint64(i)*8)%span, 8)
	}
}

// BenchmarkAccessorSeq measures the bulk sequential fast path
// (LoadRange): 8-byte elements streamed across a large buffer, charged
// one pipeline transition per cache line. The metric of record is
// ns/access — simulated element accesses per nanosecond of host time —
// directly comparable with BenchmarkAccessorStreamLoad, the
// element-at-a-time baseline for the same access pattern.
func BenchmarkAccessorSeq(b *testing.B) {
	sys := memsim.NewSystem(memsim.NVMDRAMParams())
	base, err := sys.Alloc(8<<20, memsim.TierSlow)
	if err != nil {
		b.Fatal(err)
	}
	acc := sys.NewAccessor()
	const chunk = 1 << 16 // elements per LoadRange call
	span := uint64(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.LoadRange(base+(uint64(i)*chunk*8)%span, 8, chunk)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*chunk), "ns/access")
}

// BenchmarkAccessorRandom measures the random-gather pattern through the
// same ns/access metric (each op is one simulated access).
func BenchmarkAccessorRandom(b *testing.B) {
	sys := memsim.NewSystem(memsim.NVMDRAMParams())
	base, err := sys.Alloc(8<<20, memsim.TierSlow)
	if err != nil {
		b.Fatal(err)
	}
	acc := sys.NewAccessor()
	span := uint64(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Load(base+(uint64(i)*7919*64)%span, 8)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/access")
}

// BenchmarkAccessorStrided measures a 256-byte-stride scan — every
// fourth line, too sparse for stream detection, dense enough for page
// locality.
func BenchmarkAccessorStrided(b *testing.B) {
	sys := memsim.NewSystem(memsim.NVMDRAMParams())
	base, err := sys.Alloc(8<<20, memsim.TierSlow)
	if err != nil {
		b.Fatal(err)
	}
	acc := sys.NewAccessor()
	span := uint64(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Load(base+(uint64(i)*256)%span, 8)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/access")
}

// BenchmarkAnalyze measures the two-stage analyzer over a realistic
// registry (5 objects, ~700 chunks).
func BenchmarkAnalyze(b *testing.B) {
	cfg := core.DefaultConfig()
	reg := core.NewRegistry(cfg)
	var samples []pebs.Sample
	base := uint64(1 << 30)
	for obj := 0; obj < 5; obj++ {
		size := uint64(128+obj*32) * cfg.MinChunkBytes
		o, err := reg.Register("obj", base, size)
		if err != nil {
			b.Fatal(err)
		}
		base += size + memsim.HugePage
		for j := 0; j < o.NumChunks; j++ {
			lo, _ := o.ChunkRange(j)
			n := 3
			if j%17 == 0 {
				n = 120
			}
			for k := 0; k < n; k++ {
				samples = append(samples, pebs.Sample{Addr: lo + uint64(k*64)})
			}
		}
	}
	reg.AttributeSamples(samples)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(reg, 64, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreePromotion measures BuildTree+Promote on a 4096-chunk
// object.
func BenchmarkTreePromotion(b *testing.B) {
	critical := make([]bool, 4096)
	for i := range critical {
		critical[i] = i%11 == 0 || (i > 1000 && i < 1200)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := core.BuildTree(critical, 4)
		tree.Promote(0.4, critical)
	}
}

// BenchmarkMigrationEngines measures the two engines' modelled decision
// path (not their modelled time) migrating a 4 MiB region.
func BenchmarkMigrationEngines(b *testing.B) {
	b.Run("atmem", func(b *testing.B) { benchEngine(b, atmem.MigrateATMem) })
	b.Run("mbind", func(b *testing.B) { benchEngine(b, atmem.MigrateMbind) })
}

func benchEngine(b *testing.B, mech atmem.MigrationMechanism) {
	for i := 0; i < b.N; i++ {
		rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{
			Policy: atmem.PolicyATMem, Mechanism: mech,
		})
		if err != nil {
			b.Fatal(err)
		}
		arr, err := atmem.NewArray[uint64](rt, "x", 512<<10)
		if err != nil {
			b.Fatal(err)
		}
		rt.ProfilingStart()
		rt.RunPhase("touch", func(c *atmem.Ctx) {
			lo, hi := c.Range(arr.Len())
			for j := lo; j < hi; j++ {
				arr.Load(c, (j*7919)%arr.Len())
			}
		})
		rt.ProfilingStop()
		if _, err := rt.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRMATGeneration measures the dataset generator.
func BenchmarkRMATGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := graph.GenerateRMAT("bench", graph.DefaultRMAT(14, 8, uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKernelIteration measures one simulated PageRank iteration on
// pokec (the full per-access simulation path under parallel execution).
func BenchmarkKernelIteration(b *testing.B) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM())
	if err != nil {
		b.Fatal(err)
	}
	k, err := apps.New("pr")
	if err != nil {
		b.Fatal(err)
	}
	if err := k.Setup(rt, "pokec"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.RunIteration(rt)
	}
}
