package atmem

// This file wires the live metrics registry (internal/metrics) into the
// runtime's lifecycle, the way telemetry.go wires the trace recorder: a
// metricsSet of pre-registered instruments recorded at phase, optimize,
// and epoch boundaries (never on the simulated-access hot path), and the
// per-epoch placement-quality scorecards derived from the same numbers
// the MigrationReport carries — bit-exactly, which the reconciliation
// test enforces. Everything is nil-safe: with Options.Metrics and
// Options.DebugAddr unset each record point costs one pointer test.
//
// Shard discipline (see internal/metrics): counter shard 0 is the
// runtime's control plane, shard 1 the background placement worker —
// the same single-writer split as the telemetry tracks.

import (
	"atmem/internal/memsim"
	"atmem/internal/metrics"
)

// metricsShards is the counter shard count a runtime needs: control
// plane + background placement worker.
const metricsShards = 2

// NewMetricsRegistry returns a metrics registry sized for one runtime
// (control-plane and background-placement counter shards). Pass it to
// WithMetrics; scrape it via Registry.WritePrometheus or the debug
// listener's /metrics endpoint.
func NewMetricsRegistry() *metrics.Registry { return metrics.New(metricsShards) }

// metricsSet holds the runtime's pre-registered instruments so record
// points never take the registry's registration lock. A nil *metricsSet
// (metrics off) makes every record method a single branch.
type metricsSet struct {
	reg *metrics.Registry

	// Phase-boundary instruments (RunPhase, shard = caller).
	phases            *metrics.Counter
	tierRead          [memsim.NumTiers]*metrics.Counter
	tierWrite         [memsim.NumTiers]*metrics.Counter
	tierWriteback     [memsim.NumTiers]*metrics.Counter
	tierMapped        [memsim.NumTiers]*metrics.Gauge
	tierReserved      [memsim.NumTiers]*metrics.Gauge
	shootdownsApplied *metrics.Counter
	phaseNS           *metrics.Histogram

	// Optimize-boundary instruments.
	analyzeNS       *metrics.Histogram
	migrateNS       *metrics.Histogram
	movedBytes      *metrics.Counter
	promotedBytes   *metrics.Counter
	demotedBytes    *metrics.Counter
	pagesMoved      *metrics.Counter
	hugeSplits      *metrics.Counter
	tlbShootdowns   *metrics.Counter
	regionsMigrated *metrics.Counter
	regionsRetried  *metrics.Counter
	regionsSkipped  *metrics.Counter
	breakerState    *metrics.Gauge
	residentBytes   *metrics.Gauge

	// Health instruments. The counters are fed by delta against the
	// cumulative HealthReport (lastHealth below); optimizeGoverned and
	// the epoch loop never run concurrently with each other, so the
	// delta bookkeeping needs no lock.
	quarantinedBytes *metrics.Gauge
	scrubbedBytes    *metrics.Counter
	crcDetected      *metrics.Counter
	crcRepaired      *metrics.Counter
	emergDemotions   *metrics.Counter
	promosVetoed     *metrics.Counter
	lastHealth       HealthReport

	// Epoch-boundary instruments (control plane only).
	epochs         *metrics.Counter
	epochsSkipped  *metrics.Counter
	samples        *metrics.Counter
	epochNS        *metrics.Histogram
	scoreEpoch     *metrics.Gauge
	scoreFastShare *metrics.Gauge
	scoreResidEff  *metrics.Gauge
	scoreMigEff    *metrics.Gauge
	scoreOverhead  *metrics.Gauge
}

// newMetricsSet registers the runtime's instrument families on reg (nil
// reg → nil set, metrics off). A non-empty tenant name is merged into
// every family's labels, so tenant runtimes sharing one registry (the
// broker serving setup) expose distinguishable series from a single
// /metrics endpoint.
func newMetricsSet(reg *metrics.Registry, tenant string) *metricsSet {
	if reg == nil {
		return nil
	}
	lbl := func(extra metrics.Labels) metrics.Labels {
		if tenant == "" {
			return extra
		}
		out := metrics.Labels{"tenant": tenant}
		for k, v := range extra {
			out[k] = v
		}
		return out
	}
	m := &metricsSet{reg: reg}
	m.phases = reg.Counter("atmem_phases_total", "Kernel phases run.", lbl(nil))
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		tl := lbl(metrics.Labels{"tier": t.String()})
		m.tierRead[t] = reg.Counter("atmem_tier_read_bytes_total", "Bytes read from the tier by kernel phases.", tl)
		m.tierWrite[t] = reg.Counter("atmem_tier_write_bytes_total", "Bytes written to the tier by kernel phases.", tl)
		m.tierWriteback[t] = reg.Counter("atmem_tier_writeback_bytes_total", "Cache writeback bytes to the tier.", tl)
		m.tierMapped[t] = reg.Gauge("atmem_tier_mapped_bytes", "Mapped bytes on the tier.", tl)
		m.tierReserved[t] = reg.Gauge("atmem_tier_reserved_bytes", "Staging-reserved bytes on the tier.", tl)
	}
	m.shootdownsApplied = reg.Counter("atmem_tlb_shootdowns_applied_total", "Published TLB shootdowns applied by accessors.", lbl(nil))
	m.phaseNS = reg.Histogram("atmem_phase_duration_ns", "Simulated wall time per kernel phase (ns).", lbl(nil))

	m.analyzeNS = reg.Histogram("atmem_optimize_analyze_ns", "Host wall time of the two-stage analyzer per Optimize (ns; analysis has no modelled cost).", lbl(nil))
	m.migrateNS = reg.Histogram("atmem_optimize_migrate_ns", "Modelled migration time per Optimize (ns).", lbl(nil))
	m.movedBytes = reg.Counter("atmem_migration_moved_bytes_total", "Bytes that changed tier.", lbl(nil))
	m.promotedBytes = reg.Counter("atmem_migration_promoted_bytes_total", "Bytes promoted to the fast tier (governed runs).", lbl(nil))
	m.demotedBytes = reg.Counter("atmem_migration_demoted_bytes_total", "Bytes demoted to the large tier (governed runs).", lbl(nil))
	m.pagesMoved = reg.Counter("atmem_migration_pages_moved_total", "4 KiB pages migrated.", lbl(nil))
	m.hugeSplits = reg.Counter("atmem_migration_huge_pages_split_total", "2 MiB mappings splintered by migration.", lbl(nil))
	m.tlbShootdowns = reg.Counter("atmem_migration_tlb_shootdowns_total", "Modelled shootdown IPIs issued by migration.", lbl(nil))
	m.regionsMigrated = reg.Counter("atmem_migration_regions_migrated_total", "Regions migrated on the first try.", lbl(nil))
	m.regionsRetried = reg.Counter("atmem_migration_regions_retried_total", "Regions that needed the degradation ladder.", lbl(nil))
	m.regionsSkipped = reg.Counter("atmem_migration_regions_skipped_total", "Regions left on their original tier.", lbl(nil))
	m.breakerState = reg.Gauge("atmem_governor_breaker_state", "Circuit breaker state (0 closed, 1 open, 2 half-open).", lbl(nil))
	m.residentBytes = reg.Gauge("atmem_governor_resident_bytes", "Fast-resident bytes the governor tracks.", lbl(nil))

	m.quarantinedBytes = reg.Gauge("atmem_health_quarantined_bytes", "Fast-tier capacity retired into the quarantine ledger.", lbl(nil))
	m.scrubbedBytes = reg.Counter("atmem_health_scrubbed_bytes_total", "Bytes the CRC scrubber verified.", lbl(nil))
	m.crcDetected = reg.Counter("atmem_health_corruptions_detected_total", "Scrubber CRC mismatches.", lbl(nil))
	m.crcRepaired = reg.Counter("atmem_health_corruptions_repaired_total", "Corruptions repaired from the scrub backup.", lbl(nil))
	m.emergDemotions = reg.Counter("atmem_health_emergency_demotions_total", "Chunks demoted off failing fast pages.", lbl(nil))
	m.promosVetoed = reg.Counter("atmem_health_promotions_vetoed_total", "Promotion regions dropped by the health veto.", lbl(nil))

	m.epochs = reg.Counter("atmem_epochs_total", "Governed epochs completed.", lbl(nil))
	m.epochsSkipped = reg.Counter("atmem_epochs_breaker_skipped_total", "Epochs the open breaker skipped migration for.", lbl(nil))
	m.samples = reg.Counter("atmem_profiler_samples_total", "Profiler samples attributed to registered objects.", lbl(nil))
	m.epochNS = reg.Histogram("atmem_epoch_duration_ns", "Simulated time per governed epoch: phases plus charged migration (ns).", lbl(nil))
	m.scoreEpoch = reg.Gauge("atmem_scorecard_epoch", "Epoch the scorecard gauges describe.", lbl(nil))
	m.scoreFastShare = reg.Gauge("atmem_scorecard_fast_access_share", "Fraction of phase traffic served by the fast tier.", lbl(nil))
	m.scoreResidEff = reg.Gauge("atmem_scorecard_fast_residency_efficiency", "Fast bytes touched per fast-resident byte.", lbl(nil))
	m.scoreMigEff = reg.Gauge("atmem_scorecard_migration_efficiency", "Fast bytes touched per byte moved this epoch.", lbl(nil))
	m.scoreOverhead = reg.Gauge("atmem_scorecard_overhead_tax", "(scrub + profiling overhead) / phase seconds.", lbl(nil))
	return m
}

// Metrics returns the registry the runtime records into (nil when
// metrics are off).
func (r *Runtime) Metrics() *metrics.Registry {
	if r.met == nil {
		return nil
	}
	return r.met.reg
}

// metShard maps a telemetry track id onto the counter shard writing it:
// the background placement worker's track gets shard 1, everything else
// the control-plane shard 0.
func (r *Runtime) metShard(tid int) int {
	if tid == r.placeTID {
		return 1
	}
	return 0
}

// recordPhaseMetrics records one finished phase: per-tier traffic,
// occupancy, applied shootdowns, and the phase latency histogram.
// RunPhase (control plane) is the only caller.
func (r *Runtime) recordPhaseMetrics(pr *PhaseResult) {
	m := r.met
	if m == nil {
		return
	}
	m.phases.Inc(0)
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		m.tierRead[t].Add(0, pr.Stats.ReadBytes[t])
		m.tierWrite[t].Add(0, pr.Stats.WriteBytes[t])
		m.tierWriteback[t].Add(0, pr.Stats.WritebackBytes[t])
		mapped, reserved := r.sys.TierUsage(t)
		m.tierMapped[t].SetUint(mapped)
		m.tierReserved[t].SetUint(reserved)
	}
	m.shootdownsApplied.Add(0, pr.Stats.ShootdownsApplied)
	m.phaseNS.ObserveSeconds(pr.Stats.WallSeconds)
}

// recordOptimizeMetrics records one finished Optimize from r.migStats,
// r.gov, and the health report; analyzeNS is the analyzer's host wall
// time (0 when no analysis ran). The caller's track id selects the
// counter shard, keeping the single-writer discipline when the governed
// Optimize runs on the background placement worker.
func (r *Runtime) recordOptimizeMetrics(tid int, analyzeNS uint64) {
	m := r.met
	if m == nil {
		return
	}
	shard := r.metShard(tid)
	if analyzeNS > 0 {
		m.analyzeNS.Observe(analyzeNS)
	}
	if st := r.migStats; st != nil {
		m.migrateNS.ObserveSeconds(st.Seconds)
		m.movedBytes.Add(shard, st.BytesMoved)
		m.pagesMoved.Add(shard, uint64(st.PagesMoved))
		m.hugeSplits.Add(shard, uint64(st.HugePagesSplit))
		m.tlbShootdowns.Add(shard, uint64(st.TLBShootdowns))
		m.regionsMigrated.Add(shard, uint64(st.RegionsMigrated))
		m.regionsRetried.Add(shard, uint64(st.RegionsRetried))
		m.regionsSkipped.Add(shard, uint64(st.RegionsSkipped))
	}
	if gi := r.gov; gi != nil {
		m.promotedBytes.Add(shard, gi.promotedBytes)
		m.demotedBytes.Add(shard, gi.demotedBytes)
		m.breakerState.Set(float64(int(gi.state)))
		m.residentBytes.SetUint(gi.residentBytes)
	}
	h := r.healthReport()
	m.quarantinedBytes.SetUint(h.QuarantinedBytes)
	m.scrubbedBytes.Add(shard, h.ScrubbedBytes-m.lastHealth.ScrubbedBytes)
	m.crcDetected.Add(shard, uint64(h.CorruptionsDetected-m.lastHealth.CorruptionsDetected))
	m.crcRepaired.Add(shard, uint64(h.CorruptionsRepaired-m.lastHealth.CorruptionsRepaired))
	m.emergDemotions.Add(shard, uint64(h.EmergencyDemotions-m.lastHealth.EmergencyDemotions))
	m.promosVetoed.Add(shard, uint64(h.PromotionsVetoed-m.lastHealth.PromotionsVetoed))
	m.lastHealth = h
}

// Scorecard is the per-epoch placement-quality summary a governed epoch
// derives at its boundary: how much of the interval's traffic the fast
// tier actually served, how hard the resident footprint worked, what
// the migration spend bought, and what the adaptive machinery itself
// cost. Byte fields reconcile bit-exactly with the epoch's
// MigrationReport and PhaseResults (enforced by test).
type Scorecard struct {
	// Epoch is the 1-based governed epoch number.
	Epoch int `json:"epoch"`
	// PhaseSeconds is the summed simulated wall time of the epoch's
	// phases.
	PhaseSeconds float64 `json:"phase_seconds"`
	// FastBytesTouched / TotalBytesTouched are the epoch phases'
	// read+write+writeback traffic on the fast tier / on all tiers.
	FastBytesTouched  uint64 `json:"fast_bytes_touched"`
	TotalBytesTouched uint64 `json:"total_bytes_touched"`
	// FastAccessShare = FastBytesTouched / TotalBytesTouched.
	FastAccessShare float64 `json:"fast_access_share"`
	// ResidentBytes is the governor's fast-resident footprint after the
	// epoch (MigrationReport.ResidentBytes).
	ResidentBytes uint64 `json:"resident_bytes"`
	// FastResidencyEfficiency = FastBytesTouched / ResidentBytes: how
	// many times over the epoch's traffic re-earned the resident bytes.
	FastResidencyEfficiency float64 `json:"fast_residency_efficiency"`
	// PromotedBytes / DemotedBytes / MovedBytes mirror the epoch's
	// MigrationReport.
	PromotedBytes uint64 `json:"promoted_bytes"`
	DemotedBytes  uint64 `json:"demoted_bytes"`
	MovedBytes    uint64 `json:"moved_bytes"`
	// MigrationSeconds is the epoch's modelled migration time
	// (MigrationReport.Seconds).
	MigrationSeconds float64 `json:"migration_seconds"`
	// MigrationEfficiency = FastBytesTouched / MovedBytes (0 when
	// nothing moved): fast traffic bought per byte of migration spend.
	MigrationEfficiency float64 `json:"migration_efficiency"`
	// ScrubSeconds is the simulated time this epoch's CRC scrub charged.
	ScrubSeconds float64 `json:"scrub_seconds"`
	// ProfilingOverheadSeconds models the sample-capture cost: captured
	// samples x SampleOverheadNS.
	ProfilingOverheadSeconds float64 `json:"profiling_overhead_seconds"`
	// OverheadTax = (ScrubSeconds + ProfilingOverheadSeconds) /
	// PhaseSeconds: the adaptive machinery's cut of the epoch.
	OverheadTax float64 `json:"overhead_tax"`
	// Breaker is the circuit breaker's state after the epoch.
	Breaker string `json:"breaker"`
}

// Scorecards returns every per-epoch scorecard computed so far (empty
// on an ungoverned runtime). Scorecards are computed on every governed
// epoch regardless of whether a metrics registry is attached.
func (r *Runtime) Scorecards() []Scorecard { return r.scorecards }

// LastScorecard returns the most recent epoch's scorecard (nil before
// the first governed epoch). Safe from any goroutine — the debug
// listener's /epochz endpoint reads it mid-run.
func (r *Runtime) LastScorecard() *Scorecard { return r.lastScore.Load() }

// finishEpochScorecard derives the epoch's scorecard at its boundary
// (control plane, after the migration/health passes settled), publishes
// it to the scorecard gauges and the atomic latest-scorecard slot, and
// hands it to the configured sink.
func (r *Runtime) finishEpochScorecard(rep *EpochReport, scrubStartNS uint64) {
	sc := Scorecard{Epoch: rep.Epoch}
	for i := range rep.Phases {
		st := &rep.Phases[i].Stats
		sc.PhaseSeconds += st.WallSeconds
		for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
			n := st.ReadBytes[t] + st.WriteBytes[t] + st.WritebackBytes[t]
			sc.TotalBytesTouched += n
			if t == memsim.TierFast {
				sc.FastBytesTouched += n
			}
		}
	}
	if sc.TotalBytesTouched > 0 {
		sc.FastAccessShare = float64(sc.FastBytesTouched) / float64(sc.TotalBytesTouched)
	}
	if rep.Optimized {
		sc.ResidentBytes = rep.Migration.ResidentBytes
		sc.PromotedBytes = rep.Migration.PromotedBytes
		sc.DemotedBytes = rep.Migration.DemotedBytes
		sc.MovedBytes = rep.Migration.BytesMoved
		sc.MigrationSeconds = rep.Migration.Seconds
		sc.Breaker = rep.Migration.Breaker
	} else {
		// A zero-sample epoch ran no Optimize: placement is unchanged,
		// so report the standing residency and breaker state.
		sc.ResidentBytes = r.ResidentBytes()
		sc.Breaker = r.BreakerState().String()
	}
	if sc.ResidentBytes > 0 {
		sc.FastResidencyEfficiency = float64(sc.FastBytesTouched) / float64(sc.ResidentBytes)
	}
	if sc.MovedBytes > 0 {
		sc.MigrationEfficiency = float64(sc.FastBytesTouched) / float64(sc.MovedBytes)
	}
	sc.ScrubSeconds = float64(r.scrubChargedNS-scrubStartNS) / 1e9
	sc.ProfilingOverheadSeconds = float64(r.prof.SampleCount()) * r.opts.SampleOverheadNS / 1e9
	if sc.PhaseSeconds > 0 {
		sc.OverheadTax = (sc.ScrubSeconds + sc.ProfilingOverheadSeconds) / sc.PhaseSeconds
	}

	r.scorecards = append(r.scorecards, sc)
	r.lastScore.Store(&sc)
	if m := r.met; m != nil {
		m.epochs.Inc(0)
		if rep.Migration.BreakerSkipped {
			m.epochsSkipped.Inc(0)
		}
		m.samples.Add(0, uint64(rep.Samples))
		m.epochNS.ObserveSeconds(sc.PhaseSeconds + sc.MigrationSeconds + sc.ScrubSeconds)
		m.scoreEpoch.SetUint(uint64(sc.Epoch))
		m.scoreFastShare.Set(sc.FastAccessShare)
		m.scoreResidEff.Set(sc.FastResidencyEfficiency)
		m.scoreMigEff.Set(sc.MigrationEfficiency)
		m.scoreOverhead.Set(sc.OverheadTax)
	}
	if r.opts.ScorecardSink != nil {
		r.opts.ScorecardSink(sc)
	}
	// Feed the broker's arbiter on a tenant runtime (see broker.go).
	r.reportTenantSignal(&sc)
}
