package atmem

import (
	"sort"

	"atmem/internal/core"
	"atmem/internal/memsim"
)

// trimPlanForBandwidth implements the aggregate-bandwidth enhancement of
// the paper's §9 for independent-channel systems: it drops the
// lowest-density tail of the plan's selection so that roughly
// slowBW/(slowBW+fastBW) of the selected traffic keeps flowing on the
// large memory's channels, letting both memories serve the hot working
// set concurrently instead of funnelling everything through the fast
// tier.
//
// Dropping whole ranges (lowest density first) keeps the migrated
// regions contiguous; the last surviving range is truncated at a chunk
// boundary when needed, mirroring the capacity-clipping rules.
func trimPlanForBandwidth(plan *core.Plan, p *memsim.SystemParams) {
	fastBW := p.Tiers[memsim.TierFast].ReadBWGBs
	slowBW := p.Tiers[memsim.TierSlow].ReadBWGBs
	if fastBW+slowBW <= 0 || plan.SelectedBytes == 0 {
		return
	}
	keepFrac := fastBW / (fastBW + slowBW)
	keepBytes := uint64(float64(plan.SelectedBytes) * keepFrac)
	if keepBytes >= plan.SelectedBytes {
		return
	}

	type rref struct{ obj, idx int }
	var refs []rref
	for i := range plan.Objects {
		for k := range plan.Objects[i].Ranges {
			refs = append(refs, rref{i, k})
		}
	}
	// Drop from the sparse end: lowest density first.
	sort.SliceStable(refs, func(a, b int) bool {
		ra := plan.Objects[refs[a].obj].Ranges[refs[a].idx]
		rb := plan.Objects[refs[b].obj].Ranges[refs[b].idx]
		return ra.Density < rb.Density
	})
	drop := plan.SelectedBytes - keepBytes
	dropped := make(map[rref]uint64, len(refs))
	for _, ref := range refs {
		if drop == 0 {
			break
		}
		rg := &plan.Objects[ref.obj].Ranges[ref.idx]
		cs := plan.Objects[ref.obj].Object.ChunkSize
		cut := core.RoundUpU64(drop, cs)
		if cut >= rg.Size {
			dropped[ref] = rg.Size
			if rg.Size >= drop {
				drop = 0
			} else {
				drop -= rg.Size
			}
		} else {
			dropped[ref] = cut
			drop = 0
		}
	}
	var removed uint64
	for i := range plan.Objects {
		op := &plan.Objects[i]
		kept := op.Ranges[:0]
		for k := range op.Ranges {
			rg := op.Ranges[k]
			cut, ok := dropped[rref{i, k}]
			if !ok {
				kept = append(kept, rg)
				continue
			}
			if cut >= rg.Size {
				removed += rg.Size
				continue
			}
			rg.Size -= cut
			removed += cut
			kept = append(kept, rg)
		}
		op.Ranges = kept
		// Recompute the per-origin byte counters for the kept ranges.
		op.SampledBytes = 0
		op.EstimatedBytes = 0
		for _, rg := range op.Ranges {
			o := op.Object
			firstChunk := int((rg.Base - o.Base) / o.ChunkSize)
			lastChunk := int((rg.End() - o.Base - 1) / o.ChunkSize)
			for j := firstChunk; j <= lastChunk; j++ {
				lo, hi := o.ChunkRange(j)
				if lo < rg.Base {
					lo = rg.Base
				}
				if hi > rg.End() {
					hi = rg.End()
				}
				if hi <= lo {
					continue
				}
				if op.Local.Critical[j] {
					op.SampledBytes += hi - lo
				} else {
					op.EstimatedBytes += hi - lo
				}
			}
		}
	}
	plan.SelectedBytes -= removed
}
