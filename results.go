package atmem

import (
	"fmt"

	"atmem/internal/memsim"
)

// PhaseResult is the outcome of one RunPhase: the simulated execution
// time and the aggregated memory-system events.
type PhaseResult struct {
	// Name labels the phase ("iter1", "bfs-root-4", ...).
	Name string
	// Stats holds the reduced simulator statistics.
	Stats memsim.PhaseStats
}

// Seconds returns the phase's simulated wall time.
func (p PhaseResult) Seconds() float64 { return p.Stats.WallSeconds }

func (p PhaseResult) String() string {
	return fmt.Sprintf("%s: %.6fs (lat %.6fs, bw %.6fs, %d misses, %d TLB misses)",
		p.Name, p.Stats.WallSeconds, p.Stats.LatencySeconds,
		p.Stats.BandwidthSeconds, p.Stats.LLCMisses, p.Stats.TLBMisses)
}

// MigrationReport summarizes one Optimize call: what the analyzer
// selected and what the migration engine did.
type MigrationReport struct {
	// Engine names the migration mechanism used.
	Engine string
	// Seconds is the modelled migration time.
	Seconds float64
	// BytesMoved is the volume that changed tier.
	BytesMoved uint64
	// PagesMoved counts migrated 4 KiB pages.
	PagesMoved int
	// Regions counts contiguous migrated regions.
	Regions int
	// HugePagesSplit counts 2 MiB mappings splintered by the engine.
	HugePagesSplit int
	// TLBShootdowns counts modelled shootdown IPIs.
	TLBShootdowns int
	// TotalBytes is the registered data footprint.
	TotalBytes uint64
	// SelectedBytes is the plan's fast-memory selection.
	SelectedBytes uint64
	// SampledBytes and EstimatedBytes split the selection by origin:
	// sampled-critical chunks vs. tree-promoted chunks (§4.3).
	SampledBytes   uint64
	EstimatedBytes uint64
	// ClippedBytes is what the fast-tier capacity budget dropped.
	ClippedBytes uint64
}

// DataRatio is SelectedBytes/TotalBytes — the x-axis of Figures 7–10.
func (m MigrationReport) DataRatio() float64 {
	if m.TotalBytes == 0 {
		return 0
	}
	return float64(m.SelectedBytes) / float64(m.TotalBytes)
}

func (m MigrationReport) String() string {
	return fmt.Sprintf("%s: moved %d bytes (%d regions, %d pages) in %.6fs; ratio %.3f (sampled %d + estimated %d)",
		m.Engine, m.BytesMoved, m.Regions, m.PagesMoved, m.Seconds,
		m.DataRatio(), m.SampledBytes, m.EstimatedBytes)
}

func (r *Runtime) migrationReport() MigrationReport {
	rep := MigrationReport{}
	if r.migStats != nil {
		rep.Engine = r.migStats.Engine
		rep.Seconds = r.migStats.Seconds
		rep.BytesMoved = r.migStats.BytesMoved
		rep.PagesMoved = r.migStats.PagesMoved
		rep.Regions = r.migStats.Regions
		rep.HugePagesSplit = r.migStats.HugePagesSplit
		rep.TLBShootdowns = r.migStats.TLBShootdowns
	}
	if r.plan != nil {
		rep.TotalBytes = r.plan.TotalBytes
		rep.SelectedBytes = r.plan.SelectedBytes
		rep.ClippedBytes = r.plan.ClippedBytes
		for i := range r.plan.Objects {
			rep.SampledBytes += r.plan.Objects[i].SampledBytes
			rep.EstimatedBytes += r.plan.Objects[i].EstimatedBytes
		}
	}
	return rep
}

// LastMigration returns the report of the most recent Optimize, or a zero
// report if none has run.
func (r *Runtime) LastMigration() MigrationReport { return r.migrationReport() }

// ObjectPlacement describes where one object's bytes live.
type ObjectPlacement struct {
	Name          string
	Size          uint64
	FastBytes     uint64
	SelectedBytes uint64
	Ranges        int
	ChunkSize     uint64
}

// PlacementSummary reports the current placement of every registered
// object.
func (r *Runtime) PlacementSummary() []ObjectPlacement {
	var out []ObjectPlacement
	for _, o := range r.Objects() {
		op := ObjectPlacement{
			Name:      o.name,
			Size:      o.size,
			FastBytes: o.FastBytes(),
			ChunkSize: o.do.ChunkSize,
		}
		if r.plan != nil {
			for i := range r.plan.Objects {
				if r.plan.Objects[i].Object == o.do {
					op.SelectedBytes = r.plan.Objects[i].SelectedBytes()
					op.Ranges = len(r.plan.Objects[i].Ranges)
				}
			}
		}
		out = append(out, op)
	}
	return out
}

// FastDataRatio returns the fraction of registered bytes currently on the
// high-performance memory.
func (r *Runtime) FastDataRatio() float64 {
	var total, fast uint64
	for _, o := range r.Objects() {
		total += o.size
		fast += o.FastBytes()
	}
	if total == 0 {
		return 0
	}
	return float64(fast) / float64(total)
}
