package atmem

import (
	"fmt"

	"atmem/internal/memsim"
	"atmem/internal/migrate"
)

// PhaseResult is the outcome of one RunPhase: the simulated execution
// time and the aggregated memory-system events.
type PhaseResult struct {
	// Name labels the phase ("iter1", "bfs-root-4", ...).
	Name string
	// Stats holds the reduced simulator statistics.
	Stats memsim.PhaseStats
}

// Seconds returns the phase's simulated wall time.
func (p PhaseResult) Seconds() float64 { return p.Stats.WallSeconds }

func (p PhaseResult) String() string {
	s := fmt.Sprintf("%s: %.6fs (lat %.6fs, bw %.6fs, %d misses, %d TLB misses)",
		p.Name, p.Stats.WallSeconds, p.Stats.LatencySeconds,
		p.Stats.BandwidthSeconds, p.Stats.LLCMisses, p.Stats.TLBMisses)
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		rd, wr, wb := p.Stats.ReadBytes[t], p.Stats.WriteBytes[t], p.Stats.WritebackBytes[t]
		if rd == 0 && wr == 0 && wb == 0 {
			continue
		}
		s += fmt.Sprintf("; %s r/w/wb %d/%d/%d B", t, rd, wr, wb)
	}
	return s
}

// MigrationReport summarizes one Optimize call: what the analyzer
// selected and what the migration engine did.
type MigrationReport struct {
	// Engine names the migration mechanism used.
	Engine string
	// Seconds is the modelled migration time.
	Seconds float64
	// BytesMoved is the volume that changed tier.
	BytesMoved uint64
	// PagesMoved counts migrated 4 KiB pages.
	PagesMoved int
	// Regions counts contiguous migrated regions.
	Regions int
	// HugePagesSplit counts 2 MiB mappings splintered by the engine.
	HugePagesSplit int
	// TLBShootdowns counts modelled shootdown IPIs.
	TLBShootdowns int
	// RegionsMigrated, RegionsRetried, and RegionsSkipped classify the
	// per-region outcomes of the transactional migration: first-try
	// successes, successes after the degradation ladder (rollback +
	// staging-shrink retries), and regions left on their original tier
	// after every rung failed. They sum to Regions.
	RegionsMigrated int
	RegionsRetried  int
	RegionsSkipped  int
	// SkippedBytes is the volume the skipped regions left behind.
	SkippedBytes uint64
	// TotalBytes is the registered data footprint.
	TotalBytes uint64
	// SelectedBytes is the plan's fast-memory selection.
	SelectedBytes uint64
	// SampledBytes and EstimatedBytes split the selection by origin:
	// sampled-critical chunks vs. tree-promoted chunks (§4.3).
	SampledBytes   uint64
	EstimatedBytes uint64
	// ClippedBytes is what the fast-tier capacity budget dropped.
	ClippedBytes uint64

	// The remaining fields are populated only on a governed runtime
	// (Options.Governor.Enabled).

	// Epoch is the governed epoch this report belongs to (1-based).
	Epoch int
	// Breaker is the circuit breaker's state after the epoch ("closed",
	// "open", "half-open"; empty on an ungoverned runtime).
	Breaker string
	// BreakerSkipped marks an epoch the open breaker skipped: no
	// analysis or migration ran.
	BreakerSkipped bool
	// DeltaEmpty marks a converged epoch: the plan matched residency
	// and nothing needed to move.
	DeltaEmpty bool
	// PromotedBytes and DemotedBytes split BytesMoved by direction.
	PromotedBytes uint64
	DemotedBytes  uint64
	// RegionsDemoted counts committed demotion regions (hysteresis
	// expiries plus pressure demotions).
	RegionsDemoted int
	// PressureDemotedBytes is the slice of the demotion schedule the
	// watermarks forced ahead of hysteresis expiry.
	PressureDemotedBytes uint64
	// ResidentBytes is the fast-resident footprint the governor tracks
	// after the epoch.
	ResidentBytes uint64

	// Health summarizes the tier-health subsystem (zero unless faults,
	// health, or the scrubber are active).
	Health HealthReport
}

// HealthReport is the tier-health slice of a MigrationReport: the
// quarantine ledger, scrubber activity, and self-healing actions
// accumulated over the runtime's lifetime (cumulative, not per-epoch —
// the ledger only grows).
type HealthReport struct {
	// QuarantinedBytes is the fast-tier capacity retired so far;
	// QuarantinedRanges counts the ledger's disjoint ranges.
	QuarantinedBytes  uint64
	QuarantinedRanges int
	// CorruptedChunks counts chunks hit by injected corruption orders;
	// CorruptionsDetected and CorruptionsRepaired count the scrubber's
	// CRC mismatches and backup restores.
	CorruptedChunks     int
	CorruptionsDetected int
	CorruptionsRepaired int
	// EmergencyDemotions counts chunks the scrub repair path demoted off
	// failing fast pages.
	EmergencyDemotions int
	// PromotionsVetoed counts promotion regions dropped because their
	// target granules were quarantined or distrusted.
	PromotionsVetoed int
	// RetiredRanges counts successful page retirements.
	RetiredRanges int
	// CondemnedGranules and SuspectGranules are the scoreboard's current
	// persistent-bad and in-backoff counts.
	CondemnedGranules int
	SuspectGranules   int
	// ScrubbedBytes totals the scrubber's verify traffic.
	ScrubbedBytes uint64
	// DegradedRanges counts latency-degradation orders applied.
	DegradedRanges int
}

// Active reports whether the health subsystem did anything worth
// printing.
func (h HealthReport) Active() bool {
	return h != HealthReport{}
}

// DataRatio is SelectedBytes/TotalBytes — the x-axis of Figures 7–10.
func (m MigrationReport) DataRatio() float64 {
	if m.TotalBytes == 0 {
		return 0
	}
	return float64(m.SelectedBytes) / float64(m.TotalBytes)
}

// Degraded reports whether any region needed the degradation ladder —
// the migration completed, but not entirely on the first-try fast path.
func (m MigrationReport) Degraded() bool {
	return m.RegionsRetried > 0 || m.RegionsSkipped > 0
}

func (m MigrationReport) String() string {
	s := fmt.Sprintf("%s: moved %d bytes (%d regions, %d pages) in %.6fs; ratio %.3f (sampled %d + estimated %d)",
		m.Engine, m.BytesMoved, m.Regions, m.PagesMoved, m.Seconds,
		m.DataRatio(), m.SampledBytes, m.EstimatedBytes)
	if m.Degraded() {
		s += fmt.Sprintf("; degraded: %d retried, %d skipped (%d bytes left behind)",
			m.RegionsRetried, m.RegionsSkipped, m.SkippedBytes)
	}
	if m.Breaker != "" {
		s += fmt.Sprintf("; epoch %d breaker %s", m.Epoch, m.Breaker)
		switch {
		case m.BreakerSkipped:
			s += " (migration skipped)"
		case m.DeltaEmpty:
			s += " (delta empty)"
		default:
			s += fmt.Sprintf(" (+%d/-%d bytes, %d resident)",
				m.PromotedBytes, m.DemotedBytes, m.ResidentBytes)
		}
	}
	if h := m.Health; h.Active() {
		s += fmt.Sprintf("; health: %d B quarantined (%d ranges), %d corruptions detected/%d repaired, %d emergency demotions, %d promotions vetoed",
			h.QuarantinedBytes, h.QuarantinedRanges,
			h.CorruptionsDetected, h.CorruptionsRepaired,
			h.EmergencyDemotions, h.PromotionsVetoed)
	}
	return s
}

func (r *Runtime) migrationReport() MigrationReport {
	rep := MigrationReport{}
	if r.migStats != nil {
		rep.Engine = r.migStats.Engine
		rep.Seconds = r.migStats.Seconds
		rep.BytesMoved = r.migStats.BytesMoved
		rep.PagesMoved = r.migStats.PagesMoved
		rep.Regions = r.migStats.Regions
		rep.HugePagesSplit = r.migStats.HugePagesSplit
		rep.TLBShootdowns = r.migStats.TLBShootdowns
		rep.RegionsMigrated = r.migStats.RegionsMigrated
		rep.RegionsRetried = r.migStats.RegionsRetried
		rep.RegionsSkipped = r.migStats.RegionsSkipped
		for _, out := range r.migStats.Outcomes {
			if out.Outcome == migrate.OutcomeSkipped {
				rep.SkippedBytes += out.Region.Size
			}
		}
	}
	if r.plan != nil {
		rep.TotalBytes = r.plan.TotalBytes
		rep.SelectedBytes = r.plan.SelectedBytes
		rep.ClippedBytes = r.plan.ClippedBytes
		for i := range r.plan.Objects {
			rep.SampledBytes += r.plan.Objects[i].SampledBytes
			rep.EstimatedBytes += r.plan.Objects[i].EstimatedBytes
		}
	}
	if r.gov != nil {
		rep.Epoch = r.gov.epoch
		rep.Breaker = r.gov.state.String()
		rep.BreakerSkipped = r.gov.skipped
		rep.DeltaEmpty = r.gov.emptyDelta
		rep.PromotedBytes = r.gov.promotedBytes
		rep.DemotedBytes = r.gov.demotedBytes
		rep.RegionsDemoted = r.gov.regionsDemoted
		rep.PressureDemotedBytes = r.gov.pressureBytes
		rep.ResidentBytes = r.gov.residentBytes
	}
	rep.Health = r.healthReport()
	return rep
}

// healthReport assembles the HealthReport from the ledger, scrubber,
// scoreboard, and runtime counters.
func (r *Runtime) healthReport() HealthReport {
	h := HealthReport{
		QuarantinedBytes:   r.sys.Quarantined(),
		QuarantinedRanges:  len(r.sys.QuarantinedRanges()),
		CorruptedChunks:    r.heal.corruptedChunks,
		EmergencyDemotions: r.heal.emergencyDemotions,
		PromotionsVetoed:   r.heal.promotionsVetoed,
		RetiredRanges:      r.heal.retiredRanges,
		DegradedRanges:     r.heal.degradeOrders,
	}
	if r.scrub != nil {
		st := r.scrub.Stats()
		h.CorruptionsDetected = st.Detections
		h.CorruptionsRepaired = st.Repairs
		h.ScrubbedBytes = st.BytesScrubbed
	}
	if r.board != nil {
		st := r.board.Stats()
		h.CondemnedGranules = st.Condemned
		h.SuspectGranules = st.Suspect
	}
	return h
}

// LastMigration returns the report of the most recent Optimize, or a zero
// report if none has run.
func (r *Runtime) LastMigration() MigrationReport { return r.migrationReport() }

// ObjectPlacement describes where one object's bytes live.
type ObjectPlacement struct {
	Name          string
	Size          uint64
	FastBytes     uint64
	SelectedBytes uint64
	Ranges        int
	ChunkSize     uint64
}

// PlacementSummary reports the current placement of every registered
// object.
func (r *Runtime) PlacementSummary() []ObjectPlacement {
	var out []ObjectPlacement
	for _, o := range r.Objects() {
		op := ObjectPlacement{
			Name:      o.name,
			Size:      o.size,
			FastBytes: o.FastBytes(),
			ChunkSize: o.do.ChunkSize,
		}
		if r.plan != nil {
			for i := range r.plan.Objects {
				if r.plan.Objects[i].Object == o.do {
					op.SelectedBytes = r.plan.Objects[i].SelectedBytes()
					op.Ranges = len(r.plan.Objects[i].Ranges)
				}
			}
		}
		out = append(out, op)
	}
	return out
}

// FastDataRatio returns the fraction of registered bytes currently on the
// high-performance memory.
func (r *Runtime) FastDataRatio() float64 {
	var total, fast uint64
	for _, o := range r.Objects() {
		total += o.size
		fast += o.FastBytes()
	}
	if total == 0 {
		return 0
	}
	return float64(fast) / float64(total)
}
