// Command migration compares the two data-migration mechanisms of §7.3
// head to head on both simulated testbeds: ATMem's multi-stage
// multi-threaded application-level migration versus the mbind-style
// system service. It reports the migration time, the post-migration TLB
// misses during the next PageRank iteration, and the huge pages each
// mechanism splintered.
package main

import (
	"fmt"
	"log"

	"atmem"
	"atmem/apps"
)

type outcome struct {
	migSeconds float64
	tlbMisses  uint64
	hugeSplit  int
	iterAfter  float64
}

func run(tb atmem.Testbed, mech atmem.MigrationMechanism) (outcome, error) {
	rt, err := atmem.New(tb, atmem.WithPlacementPolicy(atmem.PaperPolicy()), atmem.WithEngine(mech))
	if err != nil {
		return outcome{}, err
	}
	k, err := apps.New("pr")
	if err != nil {
		return outcome{}, err
	}
	if err := k.Setup(rt, "friendster"); err != nil {
		return outcome{}, err
	}
	rt.ProfilingStart()
	k.RunIteration(rt)
	rt.ProfilingStop()
	rep, err := rt.Optimize()
	if err != nil {
		return outcome{}, err
	}
	it := k.RunIteration(rt)
	if err := k.Validate(); err != nil {
		return outcome{}, err
	}
	return outcome{
		migSeconds: rep.Seconds,
		tlbMisses:  it.TLBMisses(),
		hugeSplit:  rep.HugePagesSplit,
		iterAfter:  it.Seconds,
	}, nil
}

func main() {
	fmt.Println("== migration mechanisms on PageRank/friendster (§7.3) ==")
	for _, tb := range []atmem.Testbed{atmem.NVMDRAM(), atmem.MCDRAMDRAM()} {
		at, err := run(tb, atmem.MigrateATMem)
		if err != nil {
			log.Fatal(err)
		}
		mb, err := run(tb, atmem.MigrateMbind)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n-- %s --\n", tb.Name())
		fmt.Printf("%-22s %-14s %-16s %-12s\n", "mechanism", "migration(s)", "post-TLB-misses", "huge-split")
		fmt.Printf("%-22s %-14.6f %-16d %-12d\n", "atmem (multi-stage)", at.migSeconds, at.tlbMisses, at.hugeSplit)
		fmt.Printf("%-22s %-14.6f %-16d %-12d\n", "mbind (system)", mb.migSeconds, mb.tlbMisses, mb.hugeSplit)
		fmt.Printf("reduction: %.2fx migration time, %.2fx TLB misses\n",
			mb.migSeconds/at.migSeconds,
			float64(mb.tlbMisses)/float64(max(at.tlbMisses, 1)))
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
