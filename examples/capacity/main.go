// Command capacity explores the shared-server scenario of the paper's
// introduction: multiple tenants compete for the scarce high-performance
// memory, so the capacity available to one application shrinks. ATMem's
// per-byte-benefit selection degrades gracefully — it keeps the densest
// chunks as the budget tightens — where whole-structure placement falls
// off a cliff.
//
// The example runs PageRank on twitter on the NVM-DRAM testbed while an
// ever-larger reservation (the "other tenants") eats the DRAM.
package main

import (
	"fmt"
	"log"

	"atmem"
	"atmem/apps"
	"atmem/internal/memsim"
)

func run(reserve uint64) (iter float64, ratio float64, err error) {
	rt, err := atmem.New(atmem.NVMDRAM(),
		atmem.WithPlacementPolicy(atmem.PaperPolicy()),
		atmem.WithCapacityReserve(reserve))
	if err != nil {
		return 0, 0, err
	}
	k, err := apps.New("pr")
	if err != nil {
		return 0, 0, err
	}
	if err := k.Setup(rt, "twitter"); err != nil {
		return 0, 0, err
	}
	rt.ProfilingStart()
	k.RunIteration(rt)
	rt.ProfilingStop()
	if _, err := rt.Optimize(); err != nil {
		return 0, 0, err
	}
	k.RunIteration(rt) // warm
	it := k.RunIteration(rt)
	if err := k.Validate(); err != nil {
		return 0, 0, err
	}
	return it.Seconds, rt.FastDataRatio(), nil
}

func main() {
	tb := atmem.NVMDRAM()
	total := tb.Params().Tiers[memsim.TierFast].CapacityBytes
	fmt.Println("== shared-server capacity pressure: PageRank/twitter, NVM-DRAM ==")
	fmt.Printf("DRAM capacity: %d MiB total\n\n", total>>20)
	fmt.Printf("%-18s %-14s %-12s\n", "other tenants", "iter-time(s)", "data-on-DRAM")
	for _, frac := range []float64{0, 0.5, 0.9, 0.95, 0.98, 0.995} {
		reserve := uint64(frac * float64(total))
		iter, ratio, err := run(reserve)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %-14.6f %.1f%%\n",
			fmt.Sprintf("%.1f%% (%d MiB)", 100*frac, reserve>>20), iter, 100*ratio)
	}
	fmt.Println("\nATMem keeps the densest chunks as the budget shrinks; performance")
	fmt.Println("degrades smoothly toward the all-NVM baseline instead of collapsing.")
}
