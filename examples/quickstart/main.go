// Command quickstart is the minimal ATMem session from the paper's
// Listing 1: run PageRank on the pokec dataset on the simulated
// NVM-DRAM testbed, profile the first iteration, migrate the critical
// data chunks to DRAM, and compare per-iteration time before and after
// against the all-NVM baseline and the all-DRAM ideal.
package main

import (
	"fmt"
	"log"

	"atmem"
	"atmem/apps"
)

// run executes PageRank under the given placement policy; optimize
// turns on the profile -> analyze -> migrate cycle (the fixed policies
// place everything at allocation time and never migrate).
func run(policy atmem.PlacementPolicy, optimize bool) (first, second float64, rep atmem.MigrationReport, err error) {
	rt, err := atmem.New(atmem.NVMDRAM(), atmem.WithPlacementPolicy(policy))
	if err != nil {
		return 0, 0, rep, err
	}
	kern, err := apps.New("pr")
	if err != nil {
		return 0, 0, rep, err
	}
	if err := kern.Setup(rt, "pokec"); err != nil {
		return 0, 0, rep, err
	}

	if optimize {
		rt.ProfilingStart()
	}
	it0 := kern.RunIteration(rt)
	first = it0.Seconds
	if optimize {
		n := rt.ProfilingStop()
		fmt.Printf("  profiler: %d samples at period %d\n", n, rt.SamplePeriod())
		if rep, err = rt.Optimize(); err != nil {
			return 0, 0, rep, err
		}
		fmt.Printf("  migration: %s\n", rep)
	}
	it1 := kern.RunIteration(rt)
	second = it1.Seconds
	if err := kern.Validate(); err != nil {
		return 0, 0, rep, err
	}
	return first, second, rep, nil
}

// builtin resolves a legacy Policy enum value to its named
// PlacementPolicy (the comparison arms only differ in allocation-time
// placement, which the built-ins still cover).
func builtin(p atmem.Policy) atmem.PlacementPolicy {
	pol, err := atmem.BuiltinPolicy(p)
	if err != nil {
		log.Fatal(err)
	}
	return pol
}

func main() {
	fmt.Println("== PageRank / pokec on the simulated NVM-DRAM testbed ==")

	fmt.Println("baseline (all data on Optane NVM):")
	_, base, _, err := run(builtin(atmem.PolicyBaseline), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  iteration time %.6fs\n", base)

	fmt.Println("ideal (all data on DRAM):")
	_, ideal, _, err := run(builtin(atmem.PolicyAllFast), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  iteration time %.6fs\n", ideal)

	fmt.Println("ATMem (profile -> analyze -> migrate):")
	first, opt, rep, err := run(atmem.PaperPolicy(), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  first (profiled) iteration %.6fs, optimized iteration %.6fs\n", first, opt)

	fmt.Printf("\nATMem speedup over baseline: %.2fx with %.1f%% of data on DRAM\n",
		base/opt, 100*rep.DataRatio())
	fmt.Printf("slowdown vs all-DRAM ideal: %.1f%%\n", 100*(opt-ideal)/ideal)
}
