// Command spmv demonstrates the generalization of §9: ATMem is not
// graph-specific — a sparse matrix-vector kernel (power-method steps over
// the rmat27 matrix) has the same skewed column-access pattern, and the
// same profile → analyze → migrate pipeline recovers most of the
// all-DRAM performance.
package main

import (
	"fmt"
	"log"

	"atmem"
	"atmem/apps"
)

// run executes the power iterations under the given placement policy;
// optimize turns on the profile -> analyze -> migrate cycle.
func run(policy atmem.PlacementPolicy, optimize bool, iters int) (perIter float64, rep atmem.MigrationReport, err error) {
	rt, err := atmem.New(atmem.NVMDRAM(), atmem.WithPlacementPolicy(policy))
	if err != nil {
		return 0, rep, err
	}
	k := &apps.SpMV{}
	if err := k.Setup(rt, "rmat27"); err != nil {
		return 0, rep, err
	}
	if optimize {
		rt.ProfilingStart()
	}
	k.RunIteration(rt)
	if optimize {
		rt.ProfilingStop()
		if rep, err = rt.Optimize(); err != nil {
			return 0, rep, err
		}
	}
	k.RunIteration(rt) // warm
	var total float64
	for i := 0; i < iters; i++ {
		total += k.RunIteration(rt).Seconds
	}
	if err := k.Validate(); err != nil {
		return 0, rep, err
	}
	return total / float64(iters), rep, nil
}

// builtin resolves a legacy Policy enum value to its named
// PlacementPolicy.
func builtin(p atmem.Policy) atmem.PlacementPolicy {
	pol, err := atmem.BuiltinPolicy(p)
	if err != nil {
		log.Fatal(err)
	}
	return pol
}

func main() {
	const iters = 4
	fmt.Println("== SpMV power iterations on the rmat27 matrix, NVM-DRAM testbed ==")
	base, _, err := run(builtin(atmem.PolicyBaseline), false, iters)
	if err != nil {
		log.Fatal(err)
	}
	ideal, _, err := run(builtin(atmem.PolicyAllFast), false, iters)
	if err != nil {
		log.Fatal(err)
	}
	at, rep, err := run(atmem.PaperPolicy(), true, iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-NVM baseline: %.6fs/iter\n", base)
	fmt.Printf("all-DRAM ideal:   %.6fs/iter\n", ideal)
	fmt.Printf("ATMem:            %.6fs/iter (%.1f%% data on DRAM, %s migration)\n",
		at, 100*rep.DataRatio(), rep.Engine)
	fmt.Printf("\nspeedup over baseline %.2fx; %.0f%% of the NVM->DRAM gap recovered\n",
		base/at, 100*(base-at)/(base-ideal))
}
