// Command socialnetwork runs a small social-network analytics pipeline —
// a BFS reachability query followed by connected components — on the
// twitter-like dataset, and compares all four placement policies on the
// simulated NVM-DRAM testbed. It is the paper's motivating scenario:
// data-driven kernels with hub-skewed access, where whole-structure
// placement wastes fast memory and ATMem's chunk-level placement recovers
// most of the all-DRAM performance with a fraction of the capacity.
package main

import (
	"fmt"
	"log"

	"atmem"
	"atmem/apps"
)

type result struct {
	policy    string
	bfs, cc   float64
	dataRatio float64
}

// runPipeline executes the BFS+CC pipeline under the given placement
// policy; optimize turns on the profile -> analyze -> migrate cycle.
func runPipeline(policy atmem.PlacementPolicy, optimize bool) (result, error) {
	rt, err := atmem.New(atmem.NVMDRAM(), atmem.WithPlacementPolicy(policy))
	if err != nil {
		return result{}, err
	}
	bfs, err := apps.New("bfs")
	if err != nil {
		return result{}, err
	}
	cc, err := apps.New("cc")
	if err != nil {
		return result{}, err
	}
	if err := bfs.Setup(rt, "twitter"); err != nil {
		return result{}, err
	}
	if err := cc.Setup(rt, "twitter"); err != nil {
		return result{}, err
	}

	// Profile one pass of the whole pipeline, then migrate.
	if optimize {
		rt.ProfilingStart()
	}
	bfs.RunIteration(rt)
	cc.RunIteration(rt)
	if optimize {
		rt.ProfilingStop()
		if _, err := rt.Optimize(); err != nil {
			return result{}, err
		}
	}
	// Warm, then measure.
	bfs.RunIteration(rt)
	cc.RunIteration(rt)
	r := result{policy: policy.Name(), dataRatio: rt.FastDataRatio()}
	r.bfs = bfs.RunIteration(rt).Seconds
	r.cc = cc.RunIteration(rt).Seconds
	if err := bfs.Validate(); err != nil {
		return r, fmt.Errorf("bfs: %w", err)
	}
	if err := cc.Validate(); err != nil {
		return r, fmt.Errorf("cc: %w", err)
	}
	return r, nil
}

func main() {
	fmt.Println("== social-network analytics (BFS + CC) on twitter, NVM-DRAM testbed ==")
	fmt.Printf("%-12s %-12s %-12s %-10s\n", "policy", "bfs(s)", "cc(s)", "fast-data")
	arms := []struct {
		policy   atmem.PlacementPolicy
		optimize bool
	}{
		{builtin(atmem.PolicyBaseline), false},
		{builtin(atmem.PolicyAllFast), false},
		{builtin(atmem.PolicyPreferFast), false},
		{atmem.PaperPolicy(), true},
	}
	var baseline result
	for i, arm := range arms {
		r, err := runPipeline(arm.policy, arm.optimize)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			baseline = r
		}
		fmt.Printf("%-12s %-12.6f %-12.6f %.1f%%\n", r.policy, r.bfs, r.cc, 100*r.dataRatio)
		if arm.optimize {
			fmt.Printf("\nATMem speedup over all-NVM baseline: BFS %.2fx, CC %.2fx with %.1f%% data on DRAM\n",
				baseline.bfs/r.bfs, baseline.cc/r.cc, 100*r.dataRatio)
		}
	}
}

// builtin resolves a legacy Policy enum value to its named
// PlacementPolicy.
func builtin(p atmem.Policy) atmem.PlacementPolicy {
	pol, err := atmem.BuiltinPolicy(p)
	if err != nil {
		log.Fatal(err)
	}
	return pol
}
