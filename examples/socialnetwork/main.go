// Command socialnetwork runs a small social-network analytics pipeline —
// a BFS reachability query followed by connected components — on the
// twitter-like dataset, and compares all four placement policies on the
// simulated NVM-DRAM testbed. It is the paper's motivating scenario:
// data-driven kernels with hub-skewed access, where whole-structure
// placement wastes fast memory and ATMem's chunk-level placement recovers
// most of the all-DRAM performance with a fraction of the capacity.
package main

import (
	"fmt"
	"log"

	"atmem"
	"atmem/apps"
)

type result struct {
	policy    atmem.Policy
	bfs, cc   float64
	dataRatio float64
}

func runPipeline(policy atmem.Policy) (result, error) {
	rt, err := atmem.New(atmem.NVMDRAM(), atmem.WithPolicy(policy))
	if err != nil {
		return result{}, err
	}
	bfs, err := apps.New("bfs")
	if err != nil {
		return result{}, err
	}
	cc, err := apps.New("cc")
	if err != nil {
		return result{}, err
	}
	if err := bfs.Setup(rt, "twitter"); err != nil {
		return result{}, err
	}
	if err := cc.Setup(rt, "twitter"); err != nil {
		return result{}, err
	}

	// Profile one pass of the whole pipeline, then migrate.
	if policy == atmem.PolicyATMem {
		rt.ProfilingStart()
	}
	bfs.RunIteration(rt)
	cc.RunIteration(rt)
	if policy == atmem.PolicyATMem {
		rt.ProfilingStop()
		if _, err := rt.Optimize(); err != nil {
			return result{}, err
		}
	}
	// Warm, then measure.
	bfs.RunIteration(rt)
	cc.RunIteration(rt)
	r := result{policy: policy, dataRatio: rt.FastDataRatio()}
	r.bfs = bfs.RunIteration(rt).Seconds
	r.cc = cc.RunIteration(rt).Seconds
	if err := bfs.Validate(); err != nil {
		return r, fmt.Errorf("bfs: %w", err)
	}
	if err := cc.Validate(); err != nil {
		return r, fmt.Errorf("cc: %w", err)
	}
	return r, nil
}

func main() {
	fmt.Println("== social-network analytics (BFS + CC) on twitter, NVM-DRAM testbed ==")
	fmt.Printf("%-12s %-12s %-12s %-10s\n", "policy", "bfs(s)", "cc(s)", "fast-data")
	var baseline result
	for _, p := range []atmem.Policy{
		atmem.PolicyBaseline, atmem.PolicyAllFast, atmem.PolicyPreferFast, atmem.PolicyATMem,
	} {
		r, err := runPipeline(p)
		if err != nil {
			log.Fatal(err)
		}
		if p == atmem.PolicyBaseline {
			baseline = r
		}
		fmt.Printf("%-12s %-12.6f %-12.6f %.1f%%\n", p, r.bfs, r.cc, 100*r.dataRatio)
		if p == atmem.PolicyATMem {
			fmt.Printf("\nATMem speedup over all-NVM baseline: BFS %.2fx, CC %.2fx with %.1f%% data on DRAM\n",
				baseline.bfs/r.bfs, baseline.cc/r.cc, 100*r.dataRatio)
		}
	}
}
