package atmem

// This file is the public placement-policy surface: the PlacementPolicy
// interface (aliased from internal/core so policies and the analyzer
// share plan types), the built-in policies the deprecated Policy enum
// resolves to, and the constructors for the paper/oracle/learned/static
// quartet the policy shootout compares. Construction-time validation
// lives here too: New/NewRuntime reject unknown enum values and nil or
// malformed policies with typed errors instead of failing at the first
// Malloc.

import (
	"errors"
	"fmt"
	"os"

	"atmem/internal/core"
)

// PlacementPolicy decides which byte ranges deserve the fast tier; see
// core.PlacementPolicy for the contract (Rank fills a plan against a
// byte budget; Fingerprint keys compiled-plan signatures). Install one
// with WithPlacementPolicy; the Policy enum survives as a deprecated
// shim resolving to built-ins via BuiltinPolicy.
//
// A policy may additionally implement TierAllocator to steer where
// Malloc places new allocations, and Validate() error to be checked at
// runtime construction.
type PlacementPolicy = core.PlacementPolicy

// HeatTrace is a full-profiling heat snapshot (see core.SnapshotHeat
// and Runtime.SnapshotHeat) — the oracle policy's input and the learned
// policy's label source.
type HeatTrace = core.HeatTrace

// AllocMode is where a policy wants Malloc to place new allocations.
type AllocMode int

const (
	// AllocSlow places new objects on the large-capacity memory (the
	// ATMem default: data earns the fast tier through profiling).
	AllocSlow AllocMode = iota
	// AllocFast places new objects on the high-performance memory and
	// fails when it runs out.
	AllocFast
	// AllocPrefer fills the fast memory first and spills to the large
	// memory (`numactl -p` semantics).
	AllocPrefer
)

// TierAllocator is the optional interface a PlacementPolicy implements
// to control allocation-time placement. Policies without it allocate on
// the slow tier (AllocSlow).
type TierAllocator interface {
	AllocMode() AllocMode
}

// ErrUnknownPolicy reports a Policy enum value outside the defined
// constants, surfaced by New/NewRuntime at construction.
var ErrUnknownPolicy = errors.New("atmem: unknown placement policy")

// ErrNilPolicy reports an explicit WithPlacementPolicy(nil), surfaced
// by New at construction.
var ErrNilPolicy = errors.New("atmem: nil placement policy")

// builtinPolicy adapts the paper's analyzer to PlacementPolicy under a
// given name and allocation mode. Every enum value resolves to one:
// they have always shared the same Optimize-time analyzer and differed
// only in allocation-time placement.
type builtinPolicy struct {
	core.AnalyzerPolicy
	mode AllocMode
}

// AllocMode implements TierAllocator.
func (b builtinPolicy) AllocMode() AllocMode { return b.mode }

// PaperPolicy returns the paper's rank→threshold→promote analyzer
// (§4.2–§4.3) as a PlacementPolicy — the default, and byte-identical in
// its plans to the pre-interface runtime.
func PaperPolicy() PlacementPolicy {
	return builtinPolicy{core.AnalyzerPolicy{Label: "paper"}, AllocSlow}
}

// StaticPolicy returns the naive floor: whole objects in registration
// order, first fit against the budget, frozen at the first Optimize
// (see core.StaticFirstFit). Each call returns a fresh policy — the
// freeze is per-instance state, so do not share one across runtimes.
func StaticPolicy() PlacementPolicy {
	return &core.StaticFirstFit{}
}

// OraclePolicy returns the hindsight ceiling: placement ranked by true
// per-chunk traffic from a full-trace recording of the same workload
// (capture one with Runtime.TrafficTrace around a representative
// iteration; a sampled Runtime.SnapshotHeat works too but misranks
// prefetch-covered and grain-amplified chunks). Its fast-access share
// upper-bounds what any online policy reaches at the same budget.
func OraclePolicy(trace *HeatTrace) PlacementPolicy {
	return &core.OraclePlacement{Trace: trace}
}

// LearnedPolicy loads pairwise-ranker weights trained by atmem-train
// from a JSON file and returns the learned placement policy. Load or
// schema errors surface at New/NewRuntime construction, not here.
func LearnedPolicy(path string) PlacementPolicy {
	data, err := os.ReadFile(path)
	if err != nil {
		return &brokenPolicy{name: "learned", err: fmt.Errorf("atmem: learned policy: %w", err)}
	}
	w, err := core.WeightsFromJSON(data)
	if err != nil {
		return &brokenPolicy{name: "learned", err: fmt.Errorf("atmem: learned policy %q: %w", path, err)}
	}
	return &core.LearnedRankPolicy{W: w, Source: path}
}

// LearnedPolicyFromWeights wraps already-loaded weights (e.g. trained
// in-process) as the learned placement policy.
func LearnedPolicyFromWeights(w core.Weights) PlacementPolicy {
	return &core.LearnedRankPolicy{W: w}
}

// brokenPolicy defers a construction-time failure (e.g. an unreadable
// weights file) to the runtime's Validate pass, so LearnedPolicy can
// keep a clean non-error signature while New still fails fast.
type brokenPolicy struct {
	name string
	err  error
}

func (b *brokenPolicy) Name() string        { return b.name }
func (b *brokenPolicy) Fingerprint() string { return b.name + "/broken" }
func (b *brokenPolicy) Validate() error     { return b.err }
func (b *brokenPolicy) Rank(core.PolicyProfile, uint64, core.StageObserver) (*core.Plan, error) {
	return nil, b.err
}

// BuiltinPolicy resolves a deprecated Policy enum value to its named
// built-in implementation. All four run the paper's analyzer at
// Optimize time (exactly as the enum runtime always did) and differ in
// allocation-time placement; unknown values return ErrUnknownPolicy.
func BuiltinPolicy(p Policy) (PlacementPolicy, error) {
	switch p {
	case PolicyBaseline:
		return builtinPolicy{core.AnalyzerPolicy{Label: "baseline"}, AllocSlow}, nil
	case PolicyAllFast:
		return builtinPolicy{core.AnalyzerPolicy{Label: "all-fast"}, AllocFast}, nil
	case PolicyPreferFast:
		return builtinPolicy{core.AnalyzerPolicy{Label: "prefer-fast"}, AllocPrefer}, nil
	case PolicyATMem:
		return builtinPolicy{core.AnalyzerPolicy{Label: "atmem"}, AllocSlow}, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrUnknownPolicy, p)
}

// resolvePolicy turns the configured options into the runtime's
// effective placement policy, validating at construction: an explicit
// nil, an unknown enum value, or a policy whose Validate fails (e.g.
// unreadable learned weights, an oracle without a trace) all error
// here, never at the first Malloc or Optimize.
func resolvePolicy(o Options) (PlacementPolicy, error) {
	pol := o.Placement
	if pol == nil {
		if o.placementNil {
			return nil, ErrNilPolicy
		}
		var err error
		pol, err = BuiltinPolicy(o.Policy)
		if err != nil {
			return nil, err
		}
	}
	if v, ok := pol.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("atmem: placement policy %q: %w", pol.Name(), err)
		}
	}
	return pol, nil
}

// SnapshotHeat captures the per-chunk heat of the samples attributed so
// far as a HeatTrace (call after ProfilingStop; use SamplePeriod 1 for
// a complete demand-miss record). The trace feeds OraclePolicy and the
// offline trainer's labels.
func (r *Runtime) SnapshotHeat() *HeatTrace {
	return core.SnapshotHeat(r.reg, r.prof.Config().Period)
}

// TrafficTrace runs body with full per-line traffic attribution enabled
// and returns the measured per-chunk placement value as a heat trace —
// the hindsight input OraclePolicy ranks on, and the training-label
// source for the learned policy.
//
// Unlike SnapshotHeat (the sampled demand-miss view an online policy
// sees), TrafficTrace measures the complete device-byte stream: demand
// misses, prefetch-covered stream fills the profiler can never observe,
// and dirty writebacks. Each event is recorded with its tier-neutral
// charges — one cache line if the chunk were fast, the slow tier's
// access grain (line-sized for coalesced streams) if it were slow — so
// the trace is comparable across placements and can be captured under
// any residency, including a refinement pass under a candidate plan.
// The scalar heat is (fastBytes + slowBytes) per byte of footprint;
// the per-tier channels feed the oracle's ratio objective. Sampled
// heat misranks exactly the chunks where the two charges diverge —
// sequential streams undercounted by prefetch coverage, random chunks
// whose slow-tier traffic is grain-amplified.
func (r *Runtime) TrafficTrace(body func()) *HeatTrace {
	objs := r.reg.Objects()
	idx := make(map[*core.DataObject]int, len(objs))
	for i, o := range objs {
		idx[o] = i
	}
	type buf struct {
		lines [][]uint64
		bytes [][]uint64
	}
	mk := func() *buf {
		b := &buf{lines: make([][]uint64, len(objs)), bytes: make([][]uint64, len(objs))}
		for i, o := range objs {
			b.lines[i] = make([]uint64, o.NumChunks)
			b.bytes[i] = make([]uint64, o.NumChunks)
		}
		return b
	}
	bufs := make([]*buf, len(r.accessors))
	for i, a := range r.accessors {
		b := mk()
		bufs[i] = b
		a.SetTrafficHook(func(addr uint64, bytes uint64, write bool) {
			o, j, ok := r.reg.Find(addr)
			if !ok {
				return
			}
			k := idx[o]
			b.lines[k][j]++
			b.bytes[k][j] += bytes
		})
	}
	body()
	for _, a := range r.accessors {
		a.SetTrafficHook(nil)
	}
	lineBytes := uint64(r.sys.P.LineBytes)
	t := &HeatTrace{
		Period:    1,
		Objects:   make(map[string][]float64, len(objs)),
		FastBytes: make(map[string][]float64, len(objs)),
		SlowBytes: make(map[string][]float64, len(objs)),
	}
	for i, o := range objs {
		heat := make([]float64, o.NumChunks)
		fast := make([]float64, o.NumChunks)
		slow := make([]float64, o.NumChunks)
		for j := 0; j < o.NumChunks; j++ {
			var lines, bytes uint64
			for _, b := range bufs {
				lines += b.lines[i][j]
				bytes += b.bytes[i][j]
			}
			// On the fast tier every fetched or written-back line charges
			// one cache line; the hook reports each event's hypothetical
			// slow-tier charge, independent of actual residency.
			fast[j] = float64(lineBytes * lines)
			slow[j] = float64(bytes)
			heat[j] = (fast[j] + slow[j]) / float64(o.ChunkBytes(j))
		}
		t.Objects[o.Name] = heat
		t.FastBytes[o.Name] = fast
		t.SlowBytes[o.Name] = slow
	}
	return t
}

// PlacementPolicy returns the runtime's effective placement policy (the
// resolved built-in when only the deprecated Policy enum was set).
func (r *Runtime) PlacementPolicy() PlacementPolicy { return r.policy }

// allocMode resolves the policy's allocation-time placement.
func (r *Runtime) allocMode() AllocMode {
	if ta, ok := r.policy.(TierAllocator); ok {
		return ta.AllocMode()
	}
	return AllocSlow
}
