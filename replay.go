package atmem

// This file is the runtime half of compiled-plan record/replay (the
// compiler lives in internal/core/plancompile.go). The observation is
// the paper's §5 loop run twice: for a deterministic workload, the
// governed run's per-epoch placement decisions are a pure function of
// the workload signature, so a second run can skip profiling and
// analysis entirely and just execute the recorded migration schedule.
//
// The lifecycle on a governed runtime with Options.PlanCache:
//
//	sig := rt.BuildSignature(g.Name, g.CRC(), []string{"bfs", "pr"})
//	verdict, _ := rt.ArmPlan(sig)      // hit → replay; miss/stale → record
//	for each epoch { rt.RunEpoch(...) }
//	plan, _ := rt.FinishPlan()         // recording: compile + cache
//
// A signature mismatch is never replayed: a LookupStale verdict (same
// workload, different knobs/graph/threads) falls back to the online
// loop exactly like a miss, records a fresh plan under the new
// signature, and surfaces the staleness in the verdict and telemetry.

import (
	"context"
	"fmt"
	"strings"

	"atmem/internal/core"
	"atmem/internal/memsim"
	"atmem/internal/migrate"
	"atmem/internal/telemetry"
)

// BuildSignature derives the workload signature of the upcoming governed
// run: the dataset (name + content CRC), the ordered kernel set, the
// simulated thread count, the testbed's tier parameters, and every
// placement knob the decision chain depends on. Call it after the graph
// is loaded (the CRC must cover the exact bytes the kernels will walk).
func (r *Runtime) BuildSignature(graphName string, graphCRC uint32, kernels []string) core.Signature {
	return core.Signature{
		Graph:    graphName,
		GraphCRC: graphCRC,
		Kernels:  strings.Join(kernels, ","),
		Threads:  r.Threads(),
		Testbed:  r.testbedFingerprint(),
		Policy:   r.policyFingerprint(),
		Governor: r.govCfg.Fingerprint(),
		Health:   r.healthFingerprint(),
	}
}

// testbedFingerprint serializes the simulated machine parameters that
// shape placement: tier capacities and performance, line size, clock.
func (r *Runtime) testbedFingerprint() string {
	p := r.sys.P
	s := fmt.Sprintf("%s line=%d clk=%g shared=%t", p.Name, p.LineBytes, p.ClockGHz, p.SharedChannels)
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		s += fmt.Sprintf(" %s=%+v", t, p.Tiers[t])
	}
	return s
}

// policyFingerprint serializes every runtime knob that feeds the
// placement decision or the migration schedule: the placement policy's
// own fingerprint (PlacementPolicy.Fingerprint — this is what stales
// cached plans when the policy changes, e.g. retrained learned weights
// or a different oracle trace) plus the runtime-side knobs the policy
// ranks under. The analyzer config is included wholesale (%+v) so a new
// knob can never be forgotten here and replay a stale plan.
func (r *Runtime) policyFingerprint() string {
	return fmt.Sprintf("policy=%s engine=%s period=%d reserve=%d bw=%t analyzer=%+v",
		r.policy.Fingerprint(), r.opts.Mechanism, r.opts.SamplePeriod,
		r.opts.CapacityReserve, r.opts.BandwidthAware, r.opts.Analyzer)
}

// Replaying reports whether a cached plan is armed (epochs run under
// RunEpoch replay its schedule instead of profiling and analyzing).
func (r *Runtime) Replaying() bool { return r.armedPlan != nil }

// PlanVerdict returns the outcome of the last ArmPlan lookup.
func (r *Runtime) PlanVerdict() core.LookupVerdict { return r.planVerdict }

// ArmPlan resolves the signature against the plan cache and arms the
// runtime accordingly:
//
//   - LookupHit: subsequent RunEpoch calls replay the cached schedule —
//     no profiling, no analysis, no breaker; just the recorded
//     migrations, epoch by epoch.
//   - LookupMiss / LookupStale: the run proceeds through the normal
//     online loop and records its committed placement decisions;
//     FinishPlan compiles and caches them. Stale means a plan for this
//     workload exists under different assumptions — it is deliberately
//     not replayed, and the verdict makes the fallback observable.
//
// ArmPlan requires Options.PlanCache and Options.Governor.Enabled, the
// synchronous RunEpoch loop (the async pipeline commits an epoch's
// placement during the next epoch, which would shift the recorded
// schedule by one), and must run before the first epoch.
func (r *Runtime) ArmPlan(sig core.Signature) (core.LookupVerdict, error) {
	if r.planCache == nil {
		return core.LookupMiss, fmt.Errorf("atmem: ArmPlan requires Options.PlanCache")
	}
	if r.resid == nil {
		return core.LookupMiss, fmt.Errorf("atmem: ArmPlan requires Options.Governor.Enabled")
	}
	if r.opts.Async.Enabled {
		return core.LookupMiss, fmt.Errorf("atmem: plan record/replay requires the synchronous RunEpoch loop (Options.Async must be off)")
	}
	if r.planRec != nil || r.armedPlan != nil {
		return core.LookupMiss, fmt.Errorf("atmem: a plan is already armed; call FinishPlan first")
	}
	plan, verdict := r.planCache.Lookup(sig)
	r.planVerdict = verdict
	r.rec.Begin(0, "plan", "arm", nil)
	r.rec.End(0, "plan", "arm", telemetry.Args{
		"verdict": verdict.String(),
		"graph":   sig.Graph,
		"kernels": sig.Kernels,
	})
	if verdict == core.LookupHit {
		r.armedPlan = plan
		r.planEpoch = 0
		// A replayed run never profiles: drop the miss hooks so the
		// simulated miss path is a single nil test per miss.
		for _, a := range r.accessors {
			a.SetMissHook(nil)
		}
		return verdict, nil
	}
	r.planRec = core.NewPlanRecorder(sig)
	return verdict, nil
}

// FinishPlan closes the record/replay session opened by ArmPlan. After a
// recording run it compiles the captured decisions into a CompiledPlan,
// stores it in the cache, and returns it; after a replay run it returns
// the plan that was replayed and restores the profiler hooks so the
// runtime can go back to online epochs.
func (r *Runtime) FinishPlan() (*core.CompiledPlan, error) {
	switch {
	case r.planRec != nil:
		p := r.planRec.Compile()
		r.planCache.Put(p)
		r.planRec = nil
		r.rec.Begin(0, "plan", "compile", nil)
		r.rec.End(0, "plan", "compile", telemetry.Args{
			"epochs": p.Epochs,
			"steps":  len(p.Steps),
		})
		return p, nil
	case r.armedPlan != nil:
		p := r.armedPlan
		r.armedPlan = nil
		for i, a := range r.accessors {
			a.SetMissHook(r.prof.ThreadSampler(i).OnMiss)
		}
		return p, nil
	}
	return nil, fmt.Errorf("atmem: FinishPlan without ArmPlan")
}

// runEpochReplay is RunEpochCtx's body while a plan is armed: run the
// epoch's phases with profiling off, then apply the plan's recorded
// migration schedule for this epoch. Epochs past the end of the
// recording run their phases on the final placement and migrate
// nothing — the recorded run had converged by then.
func (r *Runtime) runEpochReplay(ctx context.Context, name string, body func()) (EpochReport, error) {
	r.epoch++
	r.planEpoch++
	r.rec.Begin(0, "epoch", name, telemetry.Args{"epoch": r.epoch, "replay": true})
	rep := EpochReport{Epoch: r.epoch, Replayed: true}
	phaseStart := len(r.phases)
	scrubStart := r.scrubChargedNS
	// Replay runs the same epoch-start health pass as the online loop: a
	// fault storm during replay must degrade per-region exactly like the
	// recorded run would have.
	if herr := r.beginEpochHealth(0); herr != nil {
		r.rec.End(0, "epoch", name, telemetry.Args{"epoch": r.epoch, "replay": true, "error": herr.Error()})
		return rep, herr
	}
	body()
	rep.Phases = append(rep.Phases, r.phases[phaseStart:]...)

	var err error
	if r.planEpoch <= r.armedPlan.Epochs {
		rep.Optimized = true
		rep.Migration, err = r.applyPlanEpoch(ctx, r.planEpoch)
	}
	if err == nil {
		err = r.endEpochHealth(0)
	}
	r.finishEpochScorecard(&rep, scrubStart)
	r.rec.End(0, "epoch", name, telemetry.Args{
		"epoch":     r.epoch,
		"replay":    true,
		"optimized": rep.Optimized,
	})
	return rep, err
}

// applyPlanEpoch executes one plan epoch's recorded schedule: demotions
// first (they fund the promotions, the invariant the compiler encoded as
// dependency edges), through the same transactional engine as the online
// loop, with residency kept truthful so the final fast-resident
// footprint of a replay matches the recorded run bit for bit.
func (r *Runtime) applyPlanEpoch(ctx context.Context, epoch int) (MigrationReport, error) {
	optStart := r.simNS.Load()
	r.rec.Begin(0, "replay", "apply-plan", telemetry.Args{"plan_epoch": epoch})

	demos, promos := r.armedPlan.EpochSteps(epoch)
	sched := migrate.Schedule{}
	for _, st := range demos {
		sched.Demotions = append(sched.Demotions, migrate.Region{Base: st.Base, Size: st.Size})
	}
	for _, st := range promos {
		sched.Promotions = append(sched.Promotions, migrate.Region{Base: st.Base, Size: st.Size})
	}
	// The health veto applies on replay too: pages quarantined since the
	// recording must never receive a replayed promotion.
	sched.Promotions = r.filterPromotions(0, sched.Promotions)

	// Replay bypasses the breaker (the recorded run already paid for the
	// decisions) but reports through the same governed-report shape.
	gi := &govInfo{epoch: epoch, emptyDelta: sched.Empty()}
	r.gov = gi
	r.plan = &core.Plan{TotalBytes: r.reg.TotalBytes()}

	var sink migrate.EventSink
	if r.rec.Enabled() {
		sink = func(ev migrate.Event) { r.emitMigrationEvent(0, optStart, ev) }
	}
	res, err := migrate.RunSchedule(ctx, r.engine, r.sys, sched, sink)
	st := res.Merged
	r.migStats = &st
	r.simNS.Add(uint64(st.Seconds * 1e9))
	finish := func() MigrationReport {
		gi.state = r.breaker.State()
		gi.residentBytes = r.resid.ResidentBytes()
		r.recordOptimizeMetrics(0, 0)
		r.rec.End(0, "replay", "apply-plan", telemetry.Args{
			"promoted_bytes": gi.promotedBytes,
			"demoted_bytes":  gi.demotedBytes,
			"seconds":        st.Seconds,
		})
		return r.migrationReport()
	}
	if err != nil {
		return finish(), fmt.Errorf("atmem: replay migration: %w", err)
	}

	r.invalidateMoved(st.Moved)
	for _, rg := range res.Demotions.Moved {
		r.markMovedRegion(rg, false)
	}
	for _, rg := range res.Promotions.Moved {
		r.markMovedRegion(rg, true)
	}
	gi.promotedBytes = res.Promotions.BytesMoved
	gi.demotedBytes = res.Demotions.BytesMoved
	gi.regionsDemoted = len(res.Demotions.Moved)
	return finish(), nil
}

// PlanCache is the cross-run store of compiled placement plans. Share
// one cache across the runtimes that should reuse each other's plans
// (it is safe for concurrent use). Aliased from internal/core so
// callers outside the module can construct one.
type PlanCache = core.PlanCache

// NewPlanCache returns an empty plan cache.
func NewPlanCache() *PlanCache { return core.NewPlanCache() }

// recordCommitted feeds one epoch's committed regions to the armed
// recorder (no-op otherwise). Only commits enter the plan: a replayed
// rollback or skip would desynchronize residency from the recording.
func (r *Runtime) recordCommitted(promoted, demoted []migrate.Region) {
	if r.planRec == nil {
		return
	}
	toRanges := func(regs []migrate.Region) []core.Range {
		out := make([]core.Range, len(regs))
		for i, rg := range regs {
			out[i] = core.Range{Base: rg.Base, Size: rg.Size}
		}
		return out
	}
	r.planRec.RecordEpoch(toRanges(promoted), toRanges(demoted))
}
