// Command graphgen generates, inspects, and exports the reproduction's
// graph datasets (the scaled analogues of the paper's Table 2).
//
// Usage:
//
//	graphgen -list
//	graphgen -stats [dataset...]
//	graphgen -out dir [dataset...]         write binary CSR files
//	graphgen -rmat scale,edgefactor,seed   generate a custom RMAT graph
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"atmem/graph"
)

func main() {
	list := flag.Bool("list", false, "list datasets and exit")
	stats := flag.Bool("stats", false, "print degree statistics")
	out := flag.String("out", "", "write binary CSR files into this directory")
	rmat := flag.String("rmat", "", "generate a custom RMAT graph: scale,edgefactor,seed")
	flag.Parse()

	if *list {
		for _, d := range graph.Datasets() {
			fmt.Printf("%-11s paper: V=%s E=%s\n", d.Name, d.PaperVertices, d.PaperEdges)
		}
		return
	}

	if *rmat != "" {
		parts := strings.Split(*rmat, ",")
		if len(parts) != 3 {
			fatal("want -rmat scale,edgefactor,seed")
		}
		scale, err1 := strconv.Atoi(parts[0])
		ef, err2 := strconv.Atoi(parts[1])
		seed, err3 := strconv.ParseUint(parts[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			fatal("bad -rmat arguments")
		}
		g, err := graph.GenerateRMAT(fmt.Sprintf("rmat-s%d", scale), graph.DefaultRMAT(scale, ef, seed))
		if err != nil {
			fatal("%v", err)
		}
		describe(g)
		if *out != "" {
			write(g, *out)
		}
		return
	}

	names := flag.Args()
	if len(names) == 0 {
		names = graph.DatasetNames()
	}
	for _, name := range names {
		g, err := graph.Load(name)
		if err != nil {
			fatal("%v", err)
		}
		if *stats || *out == "" {
			describe(g)
		}
		if *out != "" {
			write(g, *out)
		}
	}
}

func describe(g *graph.Graph) {
	st := graph.ComputeDegreeStats(g)
	fmt.Printf("%-11s V=%-7d E=%-8d deg[min=%d avg=%.1f max=%d]\n",
		g.Name, st.Vertices, st.Edges, st.MinDegree, st.AvgDegree, st.MaxDegree)
	fmt.Printf("            in-degree share: top1%%=%.1f%% top5%%=%.1f%% top10%%=%.1f%% top20%%=%.1f%%\n",
		100*st.TopShare[0.01], 100*st.TopShare[0.05], 100*st.TopShare[0.10], 100*st.TopShare[0.20])
	fmt.Printf("            footprint (CSR + 2 prop arrays): %.1f MiB\n",
		float64(g.FootprintBytes(2))/(1<<20))
}

func write(g *graph.Graph, dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal("%v", err)
	}
	path := filepath.Join(dir, g.Name+".atmg")
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	if err := g.WriteBinary(f); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "graphgen: "+format+"\n", args...)
	os.Exit(1)
}
