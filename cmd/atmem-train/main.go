// Command atmem-train trains the learned placement policy's pairwise
// ranker offline and writes its weights as JSON for
// atmem.LearnedPolicy(path).
//
// Training data comes from the same two-pass collection the
// policy-shootout experiment uses, both passes on a WARM iteration:
// for each kernel, a full-traffic recording (Runtime.TrafficTrace —
// prefetched fills, writebacks, and grain amplification included)
// labels the true per-chunk device-byte heat, and a separate sampled
// profile at the deployed period records the features — so the ranker
// learns the deployment-time mapping from cheap sampled signals to
// true hotness.
//
// Usage:
//
//	atmem-train -out weights.json
//	atmem-train -testbed nvm -dataset pokec -apps bfs,pr,spmv -iters 400 -out weights.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atmem/internal/core"
	"atmem/internal/harness"
)

func main() {
	testbed := flag.String("testbed", "nvm", "testbed id (nvm or knl)")
	dataset := flag.String("dataset", "pokec", "dataset the training kernels run on")
	appsFlag := flag.String("apps", strings.Join(harness.ShootoutApps, ","), "comma-separated kernel list to collect training data from")
	out := flag.String("out", "weights.json", "output path for the trained weights JSON")
	iters := flag.Int("iters", 0, "gradient-descent iterations (0 = default)")
	lr := flag.Float64("lr", 0, "learning rate (0 = default)")
	flag.Parse()

	var appList []string
	for _, a := range strings.Split(*appsFlag, ",") {
		if a = strings.TrimSpace(a); a != "" {
			appList = append(appList, a)
		}
	}
	if len(appList) == 0 {
		fatal("no kernels given")
	}

	fmt.Fprintf(os.Stderr, "atmem-train: collecting %s on %s (%d kernels)\n",
		*dataset, *testbed, len(appList))
	scn := harness.DefaultShootoutScenario()
	scn.Testbed = harness.TestbedID(*testbed)
	scn.Dataset = *dataset
	scn.Apps = appList
	samples, err := harness.ShootoutTrainingData(scn)
	if err != nil {
		fatal("%v", err)
	}

	cfg := core.TrainConfig{Iters: *iters, LearnRate: *lr}
	w, stats, err := core.TrainPairwise(samples, cfg)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "atmem-train: %d chunks, %d pairs, violations %d -> %d, loss %.4f\n",
		stats.Samples, stats.Pairs, stats.InitialViolations, stats.FinalViolations, stats.Loss)
	for i, name := range core.FeatureNames {
		fmt.Fprintf(os.Stderr, "atmem-train:   w[%-14s] = %+.4f\n", name, w.W[i])
	}

	data, err := w.MarshalJSONIndented()
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "atmem-train: wrote %s\n", *out)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "atmem-train: "+format+"\n", args...)
	os.Exit(1)
}
