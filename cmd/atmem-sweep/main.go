// Command atmem-sweep runs the ε sweep of the paper's §7.2 (Figures 9 and
// 10): for a chosen testbed, application, and dataset(s), it sweeps the
// analyzer's ε knob, producing (data ratio, iteration time) points that
// trace the performance/footprint trade-off curve.
//
// Usage:
//
//	atmem-sweep [-testbed nvm|knl] [-app bfs] [-datasets a,b,...]
//	            [-eps 0.02,0.05,...] [-format text|csv|md|json]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"atmem"
	"atmem/graph"
	"atmem/internal/harness"
)

func main() {
	testbed := flag.String("testbed", "nvm", "testbed: nvm or knl")
	app := flag.String("app", "bfs", "application to sweep (the paper uses BFS)")
	datasets := flag.String("datasets", strings.Join(graph.DatasetNames(), ","), "comma-separated datasets")
	epsList := flag.String("eps", "0.02,0.05,0.08,0.1,0.12,0.15,0.2,0.3,0.5,0.8,0.999", "comma-separated ε values")
	format := flag.String("format", "text", "output format: text, csv, md, json")
	flag.Parse()

	var epsilons []float64
	for _, tok := range strings.Split(*epsList, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
		if err != nil || v <= 0 || v > 1 {
			fmt.Fprintf(os.Stderr, "atmem-sweep: bad ε %q\n", tok)
			os.Exit(2)
		}
		epsilons = append(epsilons, v)
	}

	suite := harness.NewSuite()
	for _, ds := range strings.Split(*datasets, ",") {
		ds = strings.TrimSpace(ds)
		rep := &harness.Report{
			ID:      fmt.Sprintf("sweep-%s-%s-%s", *testbed, *app, ds),
			Title:   fmt.Sprintf("%s on %s (%s testbed): time vs data ratio", *app, ds, *testbed),
			Columns: []string{"epsilon", "data-ratio", "time(s)"},
		}
		type point struct{ eps, ratio, secs float64 }
		var pts []point
		for _, eps := range epsilons {
			res, err := suite.Run(harness.RunConfig{
				Testbed:      harness.TestbedID(*testbed),
				App:          *app,
				Dataset:      ds,
				Policy:       atmem.PolicyATMem,
				Epsilon:      eps,
				SkipValidate: true,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "atmem-sweep: %v\n", err)
				os.Exit(1)
			}
			pts = append(pts, point{eps, res.DataRatio, res.IterSeconds})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].ratio < pts[j].ratio })
		for _, p := range pts {
			rep.AddRow(fmt.Sprintf("%.3f", p.eps),
				fmt.Sprintf("%.1f%%", 100*p.ratio),
				fmt.Sprintf("%.6f", p.secs))
		}
		var err error
		switch *format {
		case "text":
			err = rep.WriteText(os.Stdout)
			fmt.Println()
		case "csv":
			err = rep.WriteCSV(os.Stdout)
		case "md":
			err = rep.WriteMarkdown(os.Stdout)
		case "json":
			err = rep.WriteJSON(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "atmem-sweep: unknown format %q\n", *format)
			os.Exit(2)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmem-sweep: %v\n", err)
			os.Exit(1)
		}
	}
}
