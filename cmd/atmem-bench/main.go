// Command atmem-bench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	atmem-bench [-format text|csv|md|json] [-v] <experiment>...
//	atmem-bench -list
//	atmem-bench all
//
// Experiments share a memoized run cache within one invocation, so
// "atmem-bench all" executes each (testbed, app, dataset, policy)
// combination once even though several artifacts consume it.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"atmem/internal/faultinject"
	"atmem/internal/harness"
)

func main() {
	format := flag.String("format", "text", "output format: text, csv, md, json")
	verbose := flag.Bool("v", false, "print each underlying run")
	list := flag.Bool("list", false, "list experiments and exit")
	traceDir := flag.String("trace", "", "record telemetry and write per-run trace artifacts into this directory")
	async := flag.Bool("async", false, "drive every ATMem-policy run through overlapped background placement (migration concurrent with kernels)")
	faults := flag.String("faults", "", "arm a fault-injection schedule on every run (DSL, e.g. 'retier:nth=3;reserve:p=0.01,seed=7,max=5')")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the experiment runs to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (taken after the runs) to this file")
	benchJSON := flag.String("bench-json", harness.BenchSimPath, "path the bench-sim experiment writes its JSON artifact to")
	debugAddr := flag.String("debug-addr", "", "serve live /metrics, /epochz, /healthz, and pprof on this address during the adaptive scenarios (e.g. 127.0.0.1:9798)")
	servingTenants := flag.Int("serving-tenants", 0, "trim the serving experiment to its first N tenants (min 2: the guaranteed anchor and the storm victim; 0 runs the full cast)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: atmem-bench [-format text|csv|md|json] [-v] <experiment>...|all\n\nexperiments ('all' runs the paper set; extensions run by id):\n")
		for _, e := range harness.AllExperiments() {
			fmt.Fprintf(os.Stderr, "  %-9s %s\n", e.ID, e.Title)
		}
	}
	flag.Parse()

	if *list {
		for _, e := range harness.AllExperiments() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var exps []harness.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = harness.Experiments()
	} else {
		for _, id := range ids {
			e, err := harness.ExperimentByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	var sched *faultinject.Schedule
	if *faults != "" {
		s, err := faultinject.ParseSchedule(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmem-bench: -faults: %v\n", err)
			os.Exit(2)
		}
		sched = &s
	}

	harness.BenchSimPath = *benchJSON
	// runAll lives in its own function so the profile writers flush on
	// every exit path, including experiment failures.
	os.Exit(runAll(exps, *format, *verbose, *traceDir, *async, sched, *cpuprofile, *memprofile, *debugAddr, *servingTenants))
}

func runAll(exps []harness.Experiment, format string, verbose bool, traceDir string, async bool, faults *faultinject.Schedule, cpuprofile, memprofile, debugAddr string, servingTenants int) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmem-bench: cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "atmem-bench: cpuprofile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "atmem-bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "atmem-bench: memprofile: %v\n", err)
			}
		}()
	}

	suite := harness.NewSuite()
	suite.Verbose = verbose
	suite.TraceDir = traceDir
	suite.Async = async
	suite.DebugAddr = debugAddr
	suite.ServingTenants = servingTenants
	if faults != nil {
		suite.Faults = faults
		// The canonical String() form keys the memoized runs, so two
		// spellings of the same schedule share cache entries.
		suite.FaultLabel = faults.String()
	}
	for _, e := range exps {
		reports, err := e.Run(suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "atmem-bench: %s: %v\n", e.ID, err)
			return 1
		}
		for _, rep := range reports {
			var err error
			switch format {
			case "text":
				err = rep.WriteText(os.Stdout)
				fmt.Println()
			case "csv":
				err = rep.WriteCSV(os.Stdout)
			case "md":
				err = rep.WriteMarkdown(os.Stdout)
			case "json":
				err = rep.WriteJSON(os.Stdout)
			default:
				fmt.Fprintf(os.Stderr, "atmem-bench: unknown format %q\n", format)
				return 2
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "atmem-bench: %v\n", err)
				return 1
			}
		}
	}
	return 0
}
