package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"atmem/internal/harness"
)

func writeBench(t *testing.T, dir, name string, bs harness.BenchSim) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(bs)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffGate(t *testing.T) {
	dir := t.TempDir()
	base := harness.BenchSim{
		SchemaVersion:    harness.BenchSimSchemaVersion,
		NsPerSimAccess:   14.0,
		PlacementSpeedup: 20.0,
	}
	basePath := writeBench(t, dir, "base.json", base)

	cases := []struct {
		name string
		mod  func(*harness.BenchSim)
		want int
	}{
		{"identical", func(bs *harness.BenchSim) {}, 0},
		{"within tolerance", func(bs *harness.BenchSim) {
			bs.NsPerSimAccess = 15.0   // +7%
			bs.PlacementSpeedup = 18.5 // -7.5%
		}, 0},
		{"ns regression", func(bs *harness.BenchSim) {
			bs.NsPerSimAccess = 17.0 // +21%
		}, 1},
		{"speedup regression", func(bs *harness.BenchSim) {
			bs.PlacementSpeedup = 15.0 // -25%
		}, 1},
		{"improvement never fails", func(bs *harness.BenchSim) {
			bs.NsPerSimAccess = 7.0
			bs.PlacementSpeedup = 40.0
		}, 0},
		{"schema downgrade", func(bs *harness.BenchSim) {
			bs.SchemaVersion = harness.BenchSimSchemaVersion - 1
		}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := base
			tc.mod(&cur)
			path := writeBench(t, dir, "fresh-"+tc.name+".json", cur)
			if got := diff(basePath, path, 0.15, 0.15); got != tc.want {
				t.Errorf("diff = %d, want %d", got, tc.want)
			}
		})
	}

	if got := diff(filepath.Join(dir, "missing.json"), basePath, 0.15, 0.15); got != 1 {
		t.Errorf("missing baseline: diff = %d, want 1", got)
	}
}
