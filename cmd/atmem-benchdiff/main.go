// Command atmem-benchdiff is the bench-regression gate: it compares a
// freshly generated BENCH_sim.json against the committed baseline and
// fails when the perf trajectory regresses beyond tolerance.
//
// Usage:
//
//	atmem-bench -bench-json fresh.json bench-sim
//	atmem-benchdiff -baseline BENCH_sim.json -fresh fresh.json
//
// The gate watches the two numbers CI tracks across PRs:
//
//   - ns_per_simulated_access — raw cost of the sealed parallel hot
//     path; lower is better. Fails when the fresh value exceeds the
//     baseline by more than -ns-tol (relative).
//   - placement_speedup — compiled-plan replay vs the online placement
//     loop; higher is better. Fails when the fresh value falls below
//     the baseline by more than -speedup-tol (relative).
//
// Both are host-relative ratios of work the same binary performed, so
// they travel across machines far better than absolute wall clocks; the
// generous default tolerance (15%) absorbs the residual CI-runner
// noise. Exit status: 0 pass, 1 regression (or invalid artifacts),
// 2 usage.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"atmem/internal/harness"
)

func main() {
	baseline := flag.String("baseline", "BENCH_sim.json", "committed baseline BENCH_sim.json")
	fresh := flag.String("fresh", "", "freshly generated BENCH_sim.json to gate (required)")
	nsTol := flag.Float64("ns-tol", 0.15, "max relative increase in ns_per_simulated_access")
	spTol := flag.Float64("speedup-tol", 0.15, "max relative decrease in placement_speedup")
	flag.Parse()
	if *fresh == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: atmem-benchdiff -baseline BENCH_sim.json -fresh fresh.json [-ns-tol 0.15] [-speedup-tol 0.15]")
		os.Exit(2)
	}
	os.Exit(diff(*baseline, *fresh, *nsTol, *spTol))
}

func diff(baselinePath, freshPath string, nsTol, spTol float64) int {
	base, err := readBench(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atmem-benchdiff: baseline: %v\n", err)
		return 1
	}
	cur, err := readBench(freshPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "atmem-benchdiff: fresh: %v\n", err)
		return 1
	}
	if cur.SchemaVersion < base.SchemaVersion {
		fmt.Fprintf(os.Stderr, "atmem-benchdiff: fresh schema_version %d is older than baseline's %d — stale binary?\n",
			cur.SchemaVersion, base.SchemaVersion)
		return 1
	}

	fmt.Printf("baseline %s (schema v%d, sha %s, %d cores)\n",
		baselinePath, base.SchemaVersion, orNA(base.GitSHA), base.HostCores)
	fmt.Printf("fresh    %s (schema v%d, sha %s, %d cores)\n",
		freshPath, cur.SchemaVersion, orNA(cur.GitSHA), cur.HostCores)

	failed := false
	// ns/access: lower is better; gate the relative increase.
	if base.NsPerSimAccess > 0 {
		rel := cur.NsPerSimAccess/base.NsPerSimAccess - 1
		failed = report("ns_per_simulated_access", base.NsPerSimAccess, cur.NsPerSimAccess,
			rel, nsTol) || failed
	}
	// placement speedup: higher is better; gate the relative decrease.
	if base.PlacementSpeedup > 0 {
		rel := 1 - cur.PlacementSpeedup/base.PlacementSpeedup
		failed = report("placement_speedup", base.PlacementSpeedup, cur.PlacementSpeedup,
			rel, spTol) || failed
	}
	if failed {
		fmt.Println("FAIL: perf regression beyond tolerance")
		return 1
	}
	fmt.Println("PASS: perf trajectory within tolerance")
	return 0
}

// report prints one metric's comparison and returns whether it regressed
// beyond tolerance. rel is the normalized regression (positive = worse).
func report(name string, base, cur, rel, tol float64) bool {
	verdict := "ok"
	regressed := rel > tol
	if regressed {
		verdict = fmt.Sprintf("REGRESSED (>%.0f%% tolerance)", tol*100)
	}
	fmt.Printf("  %-26s %12.3f -> %12.3f  (%+.1f%%)  %s\n", name, base, cur, rel*100, verdict)
	return regressed
}

func readBench(path string) (harness.BenchSim, error) {
	var bs harness.BenchSim
	data, err := os.ReadFile(path)
	if err != nil {
		return bs, err
	}
	if err := json.Unmarshal(data, &bs); err != nil {
		return bs, fmt.Errorf("%s: %w", path, err)
	}
	return bs, nil
}

func orNA(s string) string {
	if s == "" {
		return "n/a"
	}
	return s
}
