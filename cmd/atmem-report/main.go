// Command atmem-report re-renders experiment results captured as JSON
// (atmem-bench -format json) into text, CSV, or markdown — useful for
// regenerating EXPERIMENTS.md without re-running the experiments.
//
// Usage:
//
//	atmem-bench -format json fig5 > results.json
//	atmem-report -format md results.json
//	atmem-report -format md -                 # read stdin
//
// With -timeline the inputs are Chrome trace JSON files written by the
// telemetry layer (atmem-bench -trace, or atmem.Runtime.WriteTrace)
// instead of report JSON, rendered as a text or markdown timeline:
//
//	atmem-bench -trace traces tab3
//	atmem-report -timeline -format text traces/*.trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atmem/internal/harness"
	"atmem/internal/telemetry"
)

func main() {
	format := flag.String("format", "md", "output format: text, csv, md")
	timeline := flag.Bool("timeline", false, "inputs are telemetry trace JSON; render them as timelines (text or md)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: atmem-report [-timeline] [-format text|csv|md] <results.json|trace.json|->")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		var rd io.Reader
		if path == "-" {
			rd = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				fatal("%v", err)
			}
			defer f.Close()
			rd = f
		}
		if *timeline {
			renderTimeline(path, rd, *format)
			continue
		}
		reports, err := harness.ReadJSONReports(rd)
		if err != nil {
			fatal("%s: %v", path, err)
		}
		for _, rep := range reports {
			switch *format {
			case "text":
				err = rep.WriteText(os.Stdout)
				fmt.Println()
			case "csv":
				err = rep.WriteCSV(os.Stdout)
			case "md":
				err = rep.WriteMarkdown(os.Stdout)
			default:
				fatal("unknown format %q", *format)
			}
			if err != nil {
				fatal("%v", err)
			}
		}
	}
}

// renderTimeline renders one telemetry trace as a human-readable
// timeline on stdout.
func renderTimeline(path string, rd io.Reader, format string) {
	events, err := telemetry.ReadChromeTrace(rd)
	if err != nil {
		fatal("%s: %v", path, err)
	}
	switch format {
	case "text":
		err = telemetry.WriteTimelineText(os.Stdout, events)
	case "md":
		err = telemetry.WriteTimelineMarkdown(os.Stdout, events)
	case "csv":
		err = telemetry.WriteCSV(os.Stdout, events)
	default:
		fatal("unknown timeline format %q (want text, md, or csv)", format)
	}
	if err != nil {
		fatal("%s: %v", path, err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "atmem-report: "+format+"\n", args...)
	os.Exit(1)
}
