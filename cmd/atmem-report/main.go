// Command atmem-report re-renders experiment results captured as JSON
// (atmem-bench -format json) into text, CSV, or markdown — useful for
// regenerating EXPERIMENTS.md without re-running the experiments.
//
// Usage:
//
//	atmem-bench -format json fig5 > results.json
//	atmem-report -format md results.json
//	atmem-report -format md -                 # read stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atmem/internal/harness"
)

func main() {
	format := flag.String("format", "md", "output format: text, csv, md")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: atmem-report [-format text|csv|md] <results.json|->")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		var rd io.Reader
		if path == "-" {
			rd = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				fatal("%v", err)
			}
			defer f.Close()
			rd = f
		}
		reports, err := harness.ReadJSONReports(rd)
		if err != nil {
			fatal("%s: %v", path, err)
		}
		for _, rep := range reports {
			switch *format {
			case "text":
				err = rep.WriteText(os.Stdout)
				fmt.Println()
			case "csv":
				err = rep.WriteCSV(os.Stdout)
			case "md":
				err = rep.WriteMarkdown(os.Stdout)
			default:
				fatal("unknown format %q", *format)
			}
			if err != nil {
				fatal("%v", err)
			}
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "atmem-report: "+format+"\n", args...)
	os.Exit(1)
}
