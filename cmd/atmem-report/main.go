// Command atmem-report re-renders experiment results captured as JSON
// (atmem-bench -format json) into text, CSV, or markdown — useful for
// regenerating EXPERIMENTS.md without re-running the experiments.
//
// Usage:
//
//	atmem-bench -format json fig5 > results.json
//	atmem-report -format md results.json
//	atmem-report -format md -                 # read stdin
//
// With -timeline the inputs are Chrome trace JSON files written by the
// telemetry layer (atmem-bench -trace, or atmem.Runtime.WriteTrace)
// instead of report JSON, rendered as a text or markdown timeline:
//
//	atmem-bench -trace traces tab3
//	atmem-report -timeline -format text traces/*.trace.json
//
// With -scorecard the inputs are per-epoch placement-quality scorecard
// JSON (the <stem>.scorecards.json artifact a governed traced run
// writes, or a capture of the debug listener's /epochz):
//
//	atmem-bench -trace traces adaptive-pressure
//	atmem-report -scorecard -format md traces/*.scorecards.json
//
// With -shootout the input is the policy-shootout.json artifact written
// by the policy-shootout experiment, rendered as the per-kernel
// per-policy scorecard table with gap-to-oracle percentages:
//
//	atmem-bench -trace traces policy-shootout
//	atmem-report -shootout -format md traces/policy-shootout.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"atmem"
	"atmem/internal/harness"
	"atmem/internal/telemetry"
)

func main() {
	format := flag.String("format", "md", "output format: text, csv, md")
	timeline := flag.Bool("timeline", false, "inputs are telemetry trace JSON; render them as timelines (text or md)")
	scorecard := flag.Bool("scorecard", false, "inputs are scorecard JSON (a *.scorecards.json artifact or one /epochz object); render the placement-quality table")
	shootout := flag.Bool("shootout", false, "inputs are policy-shootout.json artifacts; render the per-kernel per-policy table with gap-to-oracle")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: atmem-report [-timeline|-scorecard|-shootout] [-format text|csv|md] <results.json|trace.json|scorecards.json|policy-shootout.json|->")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		var rd io.Reader
		if path == "-" {
			rd = os.Stdin
		} else {
			f, err := os.Open(path)
			if err != nil {
				fatal("%v", err)
			}
			defer f.Close()
			rd = f
		}
		if *timeline {
			renderTimeline(path, rd, *format)
			continue
		}
		if *scorecard {
			renderScorecards(path, rd, *format)
			continue
		}
		if *shootout {
			renderShootout(path, rd, *format)
			continue
		}
		reports, err := harness.ReadJSONReports(rd)
		if err != nil {
			fatal("%s: %v", path, err)
		}
		for _, rep := range reports {
			switch *format {
			case "text":
				err = rep.WriteText(os.Stdout)
				fmt.Println()
			case "csv":
				err = rep.WriteCSV(os.Stdout)
			case "md":
				err = rep.WriteMarkdown(os.Stdout)
			default:
				fatal("unknown format %q", *format)
			}
			if err != nil {
				fatal("%v", err)
			}
		}
	}
}

// renderTimeline renders one telemetry trace as a human-readable
// timeline on stdout.
func renderTimeline(path string, rd io.Reader, format string) {
	events, err := telemetry.ReadChromeTrace(rd)
	if err != nil {
		fatal("%s: %v", path, err)
	}
	switch format {
	case "text":
		err = telemetry.WriteTimelineText(os.Stdout, events)
	case "md":
		err = telemetry.WriteTimelineMarkdown(os.Stdout, events)
	case "csv":
		err = telemetry.WriteCSV(os.Stdout, events)
	default:
		fatal("unknown timeline format %q (want text, md, or csv)", format)
	}
	if err != nil {
		fatal("%s: %v", path, err)
	}
}

// renderScorecards renders per-epoch placement-quality scorecards as a
// report table. The input is either the JSON array a traced governed
// run writes (<stem>.scorecards.json) or a single object captured from
// the debug listener's /epochz endpoint.
func renderScorecards(path string, rd io.Reader, format string) {
	data, err := io.ReadAll(rd)
	if err != nil {
		fatal("%s: %v", path, err)
	}
	var cards []atmem.Scorecard
	if err := json.Unmarshal(data, &cards); err != nil {
		var one atmem.Scorecard
		if err2 := json.Unmarshal(data, &one); err2 != nil {
			fatal("%s: not scorecard JSON: %v", path, err)
		}
		cards = []atmem.Scorecard{one}
	}
	rep := &harness.Report{
		ID:    "scorecards",
		Title: fmt.Sprintf("Placement-quality scorecards: %s", path),
		Columns: []string{"epoch", "phase(s)", "fast-share", "resid-eff", "mig-eff",
			"moved", "promoted", "demoted", "resident", "ovh-tax", "breaker"},
	}
	for _, c := range cards {
		rep.AddRow(
			fmt.Sprintf("%d", c.Epoch),
			fmt.Sprintf("%.6f", c.PhaseSeconds),
			fmt.Sprintf("%.3f", c.FastAccessShare),
			fmt.Sprintf("%.3f", c.FastResidencyEfficiency),
			fmt.Sprintf("%.2f", c.MigrationEfficiency),
			fmt.Sprintf("%d", c.MovedBytes),
			fmt.Sprintf("%d", c.PromotedBytes),
			fmt.Sprintf("%d", c.DemotedBytes),
			fmt.Sprintf("%d", c.ResidentBytes),
			fmt.Sprintf("%.4f", c.OverheadTax),
			c.Breaker)
	}
	if n := len(cards); n > 0 {
		last := cards[n-1]
		rep.AddNote("%d epochs; final: fast-access share %.3f, fast-residency efficiency %.3f, overhead tax %.4f, breaker %s",
			n, last.FastAccessShare, last.FastResidencyEfficiency, last.OverheadTax, last.Breaker)
	}
	switch format {
	case "text":
		err = rep.WriteText(os.Stdout)
		fmt.Println()
	case "csv":
		err = rep.WriteCSV(os.Stdout)
	case "md":
		err = rep.WriteMarkdown(os.Stdout)
	default:
		fatal("unknown scorecard format %q (want text, md, or csv)", format)
	}
	if err != nil {
		fatal("%s: %v", path, err)
	}
}

// renderShootout renders a policy-shootout.json artifact as the
// per-kernel per-policy scorecard table.
func renderShootout(path string, rd io.Reader, format string) {
	data, err := io.ReadAll(rd)
	if err != nil {
		fatal("%s: %v", path, err)
	}
	var res harness.ShootoutResult
	if err := json.Unmarshal(data, &res); err != nil {
		fatal("%s: not policy-shootout JSON: %v", path, err)
	}
	rep := harness.ShootoutReportOf(&res)
	switch format {
	case "text":
		err = rep.WriteText(os.Stdout)
		fmt.Println()
	case "csv":
		err = rep.WriteCSV(os.Stdout)
	case "md":
		err = rep.WriteMarkdown(os.Stdout)
	default:
		fatal("unknown shootout format %q (want text, md, or csv)", format)
	}
	if err != nil {
		fatal("%s: %v", path, err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "atmem-report: "+format+"\n", args...)
	os.Exit(1)
}
