// Command atmem-trace records a workload's demand-miss trace and replays
// it through the analyzer offline — the offline-profiling workflow the
// paper's related work contrasts ATMem against. Recording once and
// re-analyzing makes it cheap to explore analyzer configurations (chunk
// granularity, tree arity, ε) without re-running the application.
//
// Usage:
//
//	atmem-trace record  -app pr -dataset twitter -out pr-twitter
//	atmem-trace analyze -in pr-twitter [-eps 0.25] [-m 4] [-chunks 256]
//
// record writes <out>.atmt (the trace) and <out>.json (the object
// manifest); analyze rebuilds the registry from the manifest, attributes
// the trace, and prints the resulting placement plan.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"atmem"
	"atmem/apps"
	"atmem/internal/core"
	"atmem/internal/pebs"
	"atmem/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "analyze":
		analyze(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  atmem-trace record  -app <kernel> -dataset <name> -out <prefix> [-testbed nvm|knl]
  atmem-trace analyze -in <prefix> [-eps E] [-m M] [-chunks N] [-budget BYTES]`)
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "pr", "kernel to trace")
	dataset := fs.String("dataset", "pokec", "input dataset")
	testbed := fs.String("testbed", "nvm", "testbed: nvm or knl")
	out := fs.String("out", "trace", "output file prefix")
	_ = fs.Parse(args)

	tb := atmem.NVMDRAM()
	if *testbed == "knl" {
		tb = atmem.MCDRAMDRAM()
	}
	// Period 1 captures the complete demand-miss stream.
	rt, err := atmem.New(tb, atmem.WithPlacementPolicy(atmem.PaperPolicy()), atmem.WithSamplePeriod(1))
	if err != nil {
		fatal("%v", err)
	}
	k, err := apps.New(*app)
	if err != nil {
		fatal("%v", err)
	}
	if err := k.Setup(rt, *dataset); err != nil {
		fatal("%v", err)
	}
	rt.ProfilingStart()
	k.RunIteration(rt)
	rt.ProfilingStop()

	tf, err := os.Create(*out + ".atmt")
	if err != nil {
		fatal("%v", err)
	}
	defer tf.Close()
	w, err := trace.NewWriter(tf)
	if err != nil {
		fatal("%v", err)
	}
	for _, s := range rt.Samples() {
		if err := w.Add(trace.Event{Addr: s.Addr, Write: s.Write}); err != nil {
			fatal("%v", err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal("%v", err)
	}

	mf, err := os.Create(*out + ".json")
	if err != nil {
		fatal("%v", err)
	}
	defer mf.Close()
	enc := json.NewEncoder(mf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rt.Manifest()); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("recorded %d events from %s/%s into %s.atmt (+ manifest %s.json)\n",
		w.Count(), *app, *dataset, *out, *out)
}

func analyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "trace", "input file prefix")
	eps := fs.Float64("eps", 0, "analyzer ε (0 = default 1/M)")
	m := fs.Int("m", 0, "tree arity (0 = default)")
	chunks := fs.Int("chunks", 0, "target chunks per object (0 = default)")
	budget := fs.Uint64("budget", 0, "fast-memory budget in bytes (0 = unlimited)")
	_ = fs.Parse(args)

	cfg := core.DefaultConfig()
	if *eps > 0 {
		cfg.Epsilon = *eps
	}
	if *m > 0 {
		cfg.M = *m
	}
	if *chunks > 0 {
		cfg.TargetChunksPerObject = *chunks
	}

	mf, err := os.Open(*in + ".json")
	if err != nil {
		fatal("%v", err)
	}
	defer mf.Close()
	var manifest []atmem.ObjectManifest
	if err := json.NewDecoder(mf).Decode(&manifest); err != nil {
		fatal("manifest: %v", err)
	}
	reg := core.NewRegistry(cfg)
	for _, om := range manifest {
		if _, err := reg.Register(om.Name, om.Base, om.Size); err != nil {
			fatal("manifest: %v", err)
		}
	}

	tf, err := os.Open(*in + ".atmt")
	if err != nil {
		fatal("%v", err)
	}
	defer tf.Close()
	rd, err := trace.NewReader(tf)
	if err != nil {
		fatal("%v", err)
	}
	events, err := trace.ReadAll(rd)
	if err != nil {
		fatal("%v", err)
	}
	samples := make([]pebs.Sample, len(events))
	for i, e := range events {
		samples[i] = pebs.Sample{Addr: e.Addr, Write: e.Write}
	}
	attributed := reg.AttributeSamples(samples)

	plan, err := core.Analyze(reg, 1, *budget)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("trace: %d events, %d attributed; plan ratio %.1f%% (%d bytes of %d)\n",
		len(events), attributed, 100*plan.DataRatio(), plan.SelectedBytes, plan.TotalBytes)
	fmt.Printf("%-18s %10s %8s %10s %8s %s\n",
		"object", "size", "chunks", "selected", "ranges", "threshold")
	for _, op := range plan.Objects {
		fmt.Printf("%-18s %10d %8d %10d %8d θ=%.4g TR'=%.3f\n",
			op.Object.Name, op.Object.Size, op.Object.NumChunks,
			op.SelectedBytes(), len(op.Ranges), op.Local.Theta, op.TRThreshold)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "atmem-trace: "+format+"\n", args...)
	os.Exit(1)
}
