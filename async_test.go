package atmem

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"atmem/internal/faultinject"
	"atmem/internal/governor"
	"atmem/internal/memsim"
)

// asyncRuntime builds a governed runtime with overlapped placement on
// the standard NVM-DRAM testbed, via the functional-options API.
func asyncRuntime(t *testing.T, extra ...Option) *Runtime {
	t.Helper()
	opts := append([]Option{
		WithPolicy(PolicyATMem),
		WithSamplePeriod(64),
		WithAsyncPlacement(AsyncOptions{}),
	}, extra...)
	rt, err := New(NVMDRAM(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

// asyncEpoch runs one overlapped epoch whose body scans the arrays.
func asyncEpoch(t *testing.T, rt *Runtime, ctx context.Context, name string, arrays ...*Array[uint64]) EpochReport {
	t.Helper()
	rep, err := rt.RunEpochAsync(ctx, name, func() { scanPhase(rt, name, arrays...) })
	if err != nil {
		t.Fatalf("async epoch %s: %v", name, err)
	}
	return rep
}

// TestRunEpochAsyncPipelinesPlacement pins the pipeline shape: the first
// epoch only profiles (nothing pending), the second overlaps the first
// interval's plan with its phases, and the drain flushes the tail.
func TestRunEpochAsyncPipelinesPlacement(t *testing.T) {
	rt := asyncRuntime(t)
	ctx := context.Background()
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewArray[uint64](rt, "cold", 256<<10); err != nil {
		t.Fatal(err)
	}
	fillDeterministic(hot, 7)

	e1 := asyncEpoch(t, rt, ctx, "e1", hot)
	if e1.Overlapped || e1.Optimized {
		t.Fatalf("first epoch overlapped a placement with nothing pending: %+v", e1)
	}
	if e1.Samples == 0 {
		t.Fatal("first epoch attributed no samples")
	}

	e2 := asyncEpoch(t, rt, ctx, "e2", hot)
	if !e2.Overlapped || !e2.Optimized {
		t.Fatalf("second epoch did not overlap the pending placement: %+v", e2)
	}
	if e2.PlacedFromEpoch != 1 {
		t.Errorf("PlacedFromEpoch = %d, want 1", e2.PlacedFromEpoch)
	}
	if e2.Migration.PromotedBytes == 0 {
		t.Errorf("overlapped placement promoted nothing: %+v", e2.Migration)
	}
	if e2.OverlapSeconds <= 0 {
		t.Errorf("no migration time was hidden under the phases: %+v", e2)
	}
	if e2.StolenSeconds <= 0 || e2.StolenSeconds >= e2.OverlapSeconds {
		t.Errorf("stolen-bandwidth share %.9f out of range (overlap %.9f)",
			e2.StolenSeconds, e2.OverlapSeconds)
	}

	if _, err := rt.DrainAsync(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	assertDataIntact(t, "after overlapped epochs", hot, 7)
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
	for tr := memsim.Tier(0); tr < memsim.NumTiers; tr++ {
		if res := rt.System().Reserved(tr); res != 0 {
			t.Errorf("leaked %d reserved bytes on %s", res, tr)
		}
	}
}

// TestAsyncFasterThanSyncWithIdenticalData is the acceptance property in
// unit form: the identical epoch sequence finishes in strictly fewer
// simulated seconds overlapped than stop-the-world, and the data is
// bit-identical afterwards.
func TestAsyncFasterThanSyncWithIdenticalData(t *testing.T) {
	const epochs = 4
	run := func(async bool) (simS float64, resident uint64, check func()) {
		var rt *Runtime
		var err error
		if async {
			rt, err = New(NVMDRAM(),
				WithPolicy(PolicyATMem),
				WithSamplePeriod(64),
				WithAsyncPlacement(AsyncOptions{}))
		} else {
			rt, err = New(NVMDRAM(),
				WithPolicy(PolicyATMem),
				WithSamplePeriod(64),
				WithGovernor(GovernorOptions{}))
		}
		if err != nil {
			t.Fatal(err)
		}
		hot, err := NewArray[uint64](rt, "hot", 32<<10)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewArray[uint64](rt, "cold", 256<<10); err != nil {
			t.Fatal(err)
		}
		fillDeterministic(hot, 41)
		ctx := context.Background()
		for i := 0; i < epochs; i++ {
			name := fmt.Sprintf("e%d", i+1)
			body := func() { scanPhase(rt, name, hot) }
			if async {
				if _, err := rt.RunEpochAsync(ctx, name, body); err != nil {
					t.Fatal(err)
				}
			} else {
				if _, err := rt.RunEpoch(name, body); err != nil {
					t.Fatal(err)
				}
			}
		}
		if async {
			if _, err := rt.DrainAsync(ctx); err != nil {
				t.Fatal(err)
			}
		}
		return rt.SimSeconds(), rt.ResidentBytes(), func() {
			assertDataIntact(t, "post-run", hot, 41)
			if err := rt.System().CheckConsistency(); err != nil {
				t.Error(err)
			}
		}
	}

	syncS, syncRes, syncCheck := run(false)
	asyncS, asyncRes, asyncCheck := run(true)
	syncCheck()
	asyncCheck()
	if asyncS >= syncS {
		t.Errorf("overlapped epochs not faster: async %.9fs vs sync %.9fs", asyncS, syncS)
	}
	if asyncRes != syncRes {
		t.Errorf("pipelines converged to different residency: async %d vs sync %d", asyncRes, syncRes)
	}
}

// TestAsyncCancellationSkipsAndRollsBack pins the context contract: a
// cancelled plan reports its regions skipped, leaves placement and data
// untouched, and does not trip the breaker (cancellation is the
// caller's choice, not a failing migration path).
func TestAsyncCancellationSkipsAndRollsBack(t *testing.T) {
	rt := asyncRuntime(t)
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(hot, 13)

	// Epoch 1 profiles normally.
	e1 := asyncEpoch(t, rt, context.Background(), "e1", hot)
	if e1.Samples == 0 {
		t.Fatal("no samples")
	}
	// Epoch 2's background placement runs under an already-cancelled
	// context: every region must be skipped without moving a byte.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	e2 := asyncEpoch(t, rt, cancelled, "e2", hot)
	if !e2.Overlapped {
		t.Fatalf("second epoch did not overlap: %+v", e2)
	}
	m := e2.Migration
	if m.BytesMoved != 0 {
		t.Errorf("cancelled placement moved %d bytes", m.BytesMoved)
	}
	if m.Regions == 0 || m.RegionsSkipped != m.Regions {
		t.Errorf("cancelled placement outcomes: %d regions, %d skipped", m.Regions, m.RegionsSkipped)
	}
	if st := rt.BreakerState(); st != governor.StateClosed {
		t.Errorf("cancellation tripped the breaker: %s", st)
	}
	if got := rt.ResidentBytes(); got != 0 {
		t.Errorf("cancelled placement left %d resident bytes", got)
	}
	assertDataIntact(t, "after cancelled placement", hot, 13)
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}

	// The same pipeline recovers on an uncancelled epoch.
	e3 := asyncEpoch(t, rt, context.Background(), "e3", hot)
	if e3.Migration.PromotedBytes == 0 {
		t.Errorf("post-cancellation epoch promoted nothing: %+v", e3.Migration)
	}
}

// TestAsyncShootdownReconciliation checks the lazy-invalidation ledger:
// every shootdown the background placements published must be applied by
// every simulated thread exactly once — the per-phase applied counters,
// plus a final flush phase, sum to threads x ShootdownGen.
func TestAsyncShootdownReconciliation(t *testing.T) {
	rt := asyncRuntime(t)
	ctx := context.Background()
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewArray[uint64](rt, "cold", 128<<10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		asyncEpoch(t, rt, ctx, fmt.Sprintf("e%d", i+1), hot)
	}
	// A trivial flush phase: RunPhase drains pending shootdowns on every
	// accessor at entry, so ranges published after the last scan still
	// get applied and counted.
	rt.RunPhase("flush", func(c *Ctx) {})

	gen := rt.System().ShootdownGen()
	if gen == 0 {
		t.Fatal("overlapped placements published no shootdowns")
	}
	var applied uint64
	for _, pr := range rt.Phases() {
		applied += pr.Stats.ShootdownsApplied
	}
	want := gen * uint64(rt.Threads())
	if applied != want {
		t.Errorf("shootdown reconciliation: applied %d, want threads(%d) x gen(%d) = %d",
			applied, rt.Threads(), gen, want)
	}
	if _, err := rt.DrainAsync(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncStressFaultStorm soaks the overlapped pipeline under -race:
// epochs run kernels concurrently with background migration while an
// epoch-windowed fault storm fails half the staging reservations, then
// lifts. Data must stay bit-identical and the books consistent. A
// watchdog converts a pipeline deadlock into a stack dump instead of a
// test-suite timeout.
func TestAsyncStressFaultStorm(t *testing.T) {
	sched := faultinject.Schedule{
		Seed: 42,
		Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Prob: 0.5, Err: memsim.ErrNoCapacity},
		},
	}
	rt := asyncRuntime(t, WithFaultSchedule(sched))
	ctx := context.Background()
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewArray[uint64](rt, "warm", 48<<10)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(hot, 3)
	fillDeterministic(warm, 5)

	const epochs, stormEpochs = 6, 3
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < epochs; i++ {
			// Alternate the hot set so the deltas keep migrating in both
			// directions under the storm.
			arrays := []*Array[uint64]{hot}
			if i%2 == 1 {
				arrays = []*Array[uint64]{warm}
			}
			asyncEpoch(t, rt, ctx, fmt.Sprintf("storm-%d", i+1), arrays...)
			if i+1 == stormEpochs {
				rt.DisarmFaults()
			}
		}
		if _, err := rt.DrainAsync(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("overlapped pipeline deadlocked; goroutines:\n%s", buf[:runtime.Stack(buf, true)])
	}

	assertDataIntact(t, "hot after fault storm", hot, 3)
	assertDataIntact(t, "warm after fault storm", warm, 5)
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
	for tr := memsim.Tier(0); tr < memsim.NumTiers; tr++ {
		if res := rt.System().Reserved(tr); res != 0 {
			t.Errorf("leaked %d reserved bytes on %s", res, tr)
		}
	}
	if len(rt.FaultEvents()) == 0 {
		t.Error("fault storm never fired")
	}
}

// TestAsyncRequiresOption pins the API contract and the deprecated-shim
// compatibility: RunEpochAsync refuses without Async enabled, and the
// old NewRuntime surface still builds governed runtimes.
func TestAsyncRequiresOption(t *testing.T) {
	rt, err := NewRuntime(NVMDRAM(), Options{
		Policy:   PolicyATMem,
		Governor: GovernorOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.RunEpochAsync(context.Background(), "x", func() {}); err == nil {
		t.Error("RunEpochAsync succeeded without Options.Async.Enabled")
	}
	if _, err := rt.DrainAsync(context.Background()); err == nil {
		t.Error("DrainAsync succeeded without Options.Async.Enabled")
	}
	// Async via the old variadic-struct surface still works: Options is
	// one shared schema underneath both constructors.
	rt2, err := NewRuntime(NVMDRAM(), Options{
		Policy: PolicyATMem,
		Async:  AsyncOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.RunEpochAsync(context.Background(), "y", func() {}); err != nil {
		t.Errorf("RunEpochAsync on shim-built runtime: %v", err)
	}
}

// benchEpochs drives the shared benchmark body and reports simulated
// seconds, the quantity the overlapped pipeline optimizes.
func benchEpochs(b *testing.B, async bool) {
	for i := 0; i < b.N; i++ {
		var rt *Runtime
		var err error
		if async {
			rt, err = New(NVMDRAM(), WithPolicy(PolicyATMem),
				WithSamplePeriod(64), WithAsyncPlacement(AsyncOptions{}))
		} else {
			rt, err = New(NVMDRAM(), WithPolicy(PolicyATMem),
				WithSamplePeriod(64), WithGovernor(GovernorOptions{}))
		}
		if err != nil {
			b.Fatal(err)
		}
		hot, err := NewArray[uint64](rt, "hot", 32<<10)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		for e := 0; e < 3; e++ {
			name := fmt.Sprintf("e%d", e)
			body := func() {
				rt.RunPhase(name, func(c *Ctx) {
					lo, hi := c.Range(hot.Len())
					for j := lo; j < hi; j++ {
						hot.Load(c, (j*7919)%hot.Len())
					}
				})
			}
			if async {
				if _, err := rt.RunEpochAsync(ctx, name, body); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err := rt.RunEpoch(name, body); err != nil {
					b.Fatal(err)
				}
			}
		}
		if async {
			if _, err := rt.DrainAsync(ctx); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rt.SimSeconds(), "sim-s/op")
	}
}

func BenchmarkEpochStopTheWorld(b *testing.B) { benchEpochs(b, false) }
func BenchmarkEpochOverlapped(b *testing.B)   { benchEpochs(b, true) }
