package stats

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift128+). Every stochastic component of the reproduction — graph
// generation, SSSP edge weights, source selection — draws from an RNG
// seeded explicitly so that runs are reproducible bit-for-bit.
type RNG struct {
	s0, s1 uint64
}

// NewRNG returns an RNG seeded from seed via SplitMix64, which guarantees a
// well-mixed non-zero internal state for any seed (including 0).
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
	return r
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0,n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with zero bound")
	}
	return r.Uint64() % n
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent RNG stream labelled by tag. Two forks of the
// same RNG with different tags produce unrelated streams; forking does not
// advance the parent.
func (r *RNG) Fork(tag uint64) *RNG {
	return NewRNG(r.s0 ^ (r.s1 * 0x9e3779b97f4a7c15) ^ tag)
}
