// Package stats provides small numeric helpers shared across the ATMem
// reproduction: percentiles, a one-dimensional 2-means split (the
// "derivative-based classification similar to a k-means clustering
// technique" of paper §4.2), summary statistics, and a fast deterministic
// RNG used by the simulator and the graph generators.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile for data already sorted ascending.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TwoMeansSplit partitions xs into a low and a high cluster with 1-D
// Lloyd's iterations seeded at min and max, and returns the boundary
// between the clusters: the midpoint of the two final centroids. Values
// strictly above the boundary belong to the high (hot) cluster.
//
// The paper's hybrid local selection (§4.2) uses this split as the
// derivative-based candidate for the chunk-priority threshold θ.
func TwoMeansSplit(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo == hi {
		return lo
	}
	cLo, cHi := lo, hi
	for iter := 0; iter < 64; iter++ {
		var sumLo, sumHi float64
		var nLo, nHi int
		mid := (cLo + cHi) / 2
		for _, x := range xs {
			if x > mid {
				sumHi += x
				nHi++
			} else {
				sumLo += x
				nLo++
			}
		}
		if nLo == 0 || nHi == 0 {
			break
		}
		nLoC, nHiC := sumLo/float64(nLo), sumHi/float64(nHi)
		if nLoC == cLo && nHiC == cHi {
			break
		}
		cLo, cHi = nLoC, nHiC
	}
	return (cLo + cHi) / 2
}

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	Sum    float64
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary
// with NaN Min/Max.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.NaN(), Max: math.NaN()}
	if len(xs) == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g max=%.4g mean=%.4g stddev=%.4g",
		s.N, s.Min, s.Max, s.Mean, s.Stddev)
}

// GeoMean returns the geometric mean of xs; it panics on non-positive
// inputs since speedup ratios must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
