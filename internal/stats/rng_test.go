package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64RoughUniformity(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v deviates from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uint64n(0) should panic")
		}
	}()
	NewRNG(1).Uint64n(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork(1)
	f2 := r.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Error("forks with different tags should differ")
	}
	// Forking does not advance the parent.
	a := NewRNG(5)
	a.Fork(1)
	b := NewRNG(5)
	if a.Uint64() != b.Uint64() {
		t.Error("Fork advanced the parent stream")
	}
}
