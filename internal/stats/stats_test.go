package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestPercentileBasics(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{25, 2},
		{50, 3},
		{75, 4},
		{100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
	if got := Percentile(xs, 90); math.Abs(got-9) > 1e-12 {
		t.Errorf("Percentile(90) = %v, want 9", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty input should give NaN")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single element: got %v", got)
	}
	// Out-of-range p is clamped.
	if got := Percentile([]float64{1, 2}, -10); got != 1 {
		t.Errorf("clamped low: got %v", got)
	}
	if got := Percentile([]float64{1, 2}, 200); got != 2 {
		t.Errorf("clamped high: got %v", got)
	}
}

func TestPercentileSortedMatchesPercentile(t *testing.T) {
	check := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		sorted := append([]float64(nil), raw...)
		sort.Float64s(sorted)
		a := Percentile(raw, p)
		b := PercentileSorted(sorted, p)
		return (math.IsNaN(a) && math.IsNaN(b)) || a == b
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: a percentile always lies within [min, max] of the sample.
func TestPercentileWithinBounds(t *testing.T) {
	check := func(raw []float64, p float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p = math.Mod(math.Abs(p), 100)
		got := Percentile(xs, p)
		s := Summarize(xs)
		return got >= s.Min-1e-9 && got <= s.Max+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTwoMeansSplitSeparatesClusters(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 1.05, 10, 10.2, 9.8}
	split := TwoMeansSplit(xs)
	if split <= 1.1 || split >= 9.8 {
		t.Errorf("split %v not between clusters", split)
	}
}

func TestTwoMeansSplitUniform(t *testing.T) {
	if got := TwoMeansSplit([]float64{5, 5, 5}); got != 5 {
		t.Errorf("uniform input: got %v, want 5", got)
	}
	if !math.IsNaN(TwoMeansSplit(nil)) {
		t.Error("empty input should give NaN")
	}
}

// Property: the split lies within the data range.
func TestTwoMeansSplitWithinRange(t *testing.T) {
	check := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		split := TwoMeansSplit(xs)
		s := Summarize(xs)
		return split >= s.Min-1e-9 && split <= s.Max+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.N != 3 || s.Min != 2 || s.Max != 6 || s.Mean != 4 || s.Sum != 12 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Stddev-2) > 1e-12 {
		t.Errorf("stddev = %v, want 2", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Min) || !math.IsNaN(s.Max) {
		t.Errorf("unexpected empty summary: %+v", s)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %v, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean of non-positive value should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestSummaryString(t *testing.T) {
	if s := Summarize([]float64{1, 2}).String(); s == "" {
		t.Error("empty String()")
	}
}
