package governor

import "testing"

func TestConfigDefaultsValidate(t *testing.T) {
	c := Config{}.WithDefaults()
	if err := c.Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	bad := []Config{
		{HighWatermark: 1.2},
		{HighWatermark: 0.5, LowWatermark: 0.6},
		{DemoteAfterEpochs: -1},
		{BreakerThreshold: -2},
		{BreakerCooldown: 4, MaxCooldown: 2},
	}
	for i, c := range bad {
		c = c.WithDefaults()
		// WithDefaults only fills zero fields, so the bad values survive.
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
}

func TestDemotionTarget(t *testing.T) {
	const cap = 1000
	cases := []struct {
		name      string
		projected uint64
		want      uint64
	}{
		{"empty", 0, 0},
		{"below high", 900, 0},
		{"at high", 900, 0},
		{"just above high drains to low", 901, 901 - 750},
		{"full drains to low", 1000, 250},
		{"over-committed drains to low", 1400, 650},
	}
	for _, c := range cases {
		if got := DemotionTarget(c.projected, cap, 0.9, 0.75); got != c.want {
			t.Errorf("%s: DemotionTarget(%d) = %d, want %d", c.name, c.projected, got, c.want)
		}
	}
	if got := DemotionTarget(500, 0, 0.9, 0.75); got != 0 {
		t.Errorf("zero capacity: got %d, want 0", got)
	}
}

// epochStep is one scripted breaker epoch: the decision the test expects
// at epoch start, whether the epoch runs a migration (skip epochs do
// not), the outcome it observes, and the state expected afterwards.
type epochStep struct {
	wantDecision Decision
	degraded     bool
	wantState    State
}

func runScript(t *testing.T, b *Breaker, steps []epochStep) {
	t.Helper()
	for i, s := range steps {
		d := b.Decide()
		if d != s.wantDecision {
			t.Fatalf("epoch %d: decision %v, want %v (state %v)", i+1, d, s.wantDecision, b.State())
		}
		if d != DecisionSkip {
			b.Observe(s.degraded)
		}
		if b.State() != s.wantState {
			t.Fatalf("epoch %d: state %v, want %v", i+1, b.State(), s.wantState)
		}
	}
}

func TestBreakerFullCycle(t *testing.T) {
	// Threshold 2, cooldown 2: two degraded epochs open the breaker, two
	// epochs are skipped, the next probes, and a clean probe closes it.
	b := NewBreaker(Config{BreakerThreshold: 2, BreakerCooldown: 2}.WithDefaults())
	runScript(t, b, []epochStep{
		{DecisionRun, false, StateClosed},
		{DecisionRun, true, StateClosed},  // bad = 1
		{DecisionRun, true, StateOpen},    // bad = 2 -> open(cooldown 2)
		{DecisionSkip, false, StateOpen},  // cooldown 2 -> 1
		{DecisionSkip, false, StateOpen},  // cooldown 1 -> 0
		{DecisionProbe, false, StateClosed},
		{DecisionRun, false, StateClosed},
	})
	want := []Transition{
		{Epoch: 3, From: StateClosed, To: StateOpen, Cooldown: 2, Reason: "threshold"},
		{Epoch: 6, From: StateOpen, To: StateHalfOpen, Reason: "cooldown elapsed"},
		{Epoch: 6, From: StateHalfOpen, To: StateClosed, Reason: "probe succeeded"},
	}
	got := b.Transitions()
	if len(got) != len(want) {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("transition %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestBreakerProbeFailureDoublesCooldown(t *testing.T) {
	b := NewBreaker(Config{BreakerThreshold: 1, BreakerCooldown: 1}.WithDefaults())
	runScript(t, b, []epochStep{
		{DecisionRun, true, StateOpen},    // open, cooldown 1
		{DecisionSkip, false, StateOpen},  // wait out the single epoch
		{DecisionProbe, true, StateOpen},  // probe fails -> cooldown 2
		{DecisionSkip, false, StateOpen},
		{DecisionSkip, false, StateOpen},
		{DecisionProbe, true, StateOpen},  // probe fails -> cooldown 4
	})
	if b.Cooldown() != 4 {
		t.Errorf("cooldown after two failed probes = %d, want 4", b.Cooldown())
	}
	// Walk the 4-epoch window out; a clean probe resets the backoff.
	runScript(t, b, []epochStep{
		{DecisionSkip, false, StateOpen},
		{DecisionSkip, false, StateOpen},
		{DecisionSkip, false, StateOpen},
		{DecisionSkip, false, StateOpen},
		{DecisionProbe, false, StateClosed},
	})
	if b.Cooldown() != 1 {
		t.Errorf("cooldown after close = %d, want reset to 1", b.Cooldown())
	}
}

func TestBreakerBackoffCap(t *testing.T) {
	b := NewBreaker(Config{BreakerThreshold: 1, BreakerCooldown: 1, MaxCooldown: 2}.WithDefaults())
	b.Decide()
	b.Observe(true) // open, cooldown 1
	for i := 0; i < 5; i++ {
		// Skip the cooldown window, then fail the probe.
		for b.State() == StateOpen {
			if d := b.Decide(); d == DecisionProbe {
				b.Observe(true)
				break
			}
		}
	}
	if b.Cooldown() != 2 {
		t.Errorf("cooldown = %d, want capped at 2", b.Cooldown())
	}
}

func TestBreakerCleanEpochResetsBadCount(t *testing.T) {
	b := NewBreaker(Config{BreakerThreshold: 2, BreakerCooldown: 1}.WithDefaults())
	runScript(t, b, []epochStep{
		{DecisionRun, true, StateClosed},  // bad = 1
		{DecisionRun, false, StateClosed}, // clean epoch resets
		{DecisionRun, true, StateClosed},  // bad = 1 again, not 2
		{DecisionRun, true, StateOpen},    // now the threshold trips
	})
}

func TestStateAndDecisionStrings(t *testing.T) {
	for _, s := range []State{StateClosed, StateOpen, StateHalfOpen, State(9)} {
		if s.String() == "" {
			t.Error("empty state string")
		}
	}
	for _, d := range []Decision{DecisionRun, DecisionProbe, DecisionSkip, Decision(9)} {
		if d.String() == "" {
			t.Error("empty decision string")
		}
	}
}

func TestPlanShed(t *testing.T) {
	ladder := []ShedStep{{"c", 10}, {"b", 20}, {"a", 30}}
	cases := []struct {
		target uint64
		want   int
	}{
		{0, 0},
		{5, 1},
		{10, 1},
		{11, 2},
		{30, 2},
		{31, 3},
		{60, 3},
		{1000, 3}, // ladder cannot cover: shed everything
	}
	for _, c := range cases {
		if got := PlanShed(ladder, c.target); got != c.want {
			t.Errorf("PlanShed(target=%d) = %d, want %d", c.target, got, c.want)
		}
	}
	if got := PlanShed(nil, 42); got != 0 {
		t.Errorf("PlanShed(empty ladder) = %d, want 0", got)
	}
}
