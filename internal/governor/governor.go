// Package governor makes repeated profile→analyze→migrate epochs safe
// and self-stabilizing. It supplies the two control mechanisms the
// runtime's epoch loop composes with residency-aware delta planning
// (internal/core):
//
//   - pressure watermarks: when fast-tier occupancy crosses a high
//     watermark, cold resident data is demoted coldest-first down to a
//     low watermark before new promotions are admitted, so a shrinking
//     placement budget degrades placement quality instead of failing
//     with capacity errors;
//
//   - a migration circuit breaker: consecutive degraded epochs (skipped
//     regions, unrecoverable migration errors) open the breaker, which
//     skips migration entirely for an exponentially-backed-off cooldown
//     of epochs, then half-open probes with a single small region before
//     closing again.
//
// This is the hysteresis-driven online guidance loop of Olson et al.
// (Online Application Guidance for Heterogeneous Memory Systems) and the
// phase-based runtime management of Unimem, applied to ATMem's interval
// re-optimization (§5 of the paper).
package governor

import "fmt"

// Config holds the governor's tunables. The zero value is not usable
// directly; call WithDefaults.
type Config struct {
	// HighWatermark is the fast-tier occupancy fraction (of effective
	// capacity) above which pressure demotion engages. Default 0.90.
	HighWatermark float64
	// LowWatermark is the occupancy fraction pressure demotion drains
	// down to before admitting new promotions. Default 0.75.
	LowWatermark float64
	// DemoteAfterEpochs is the hysteresis: a fast-resident chunk must be
	// outside the plan's selection for this many consecutive epochs
	// before it is demoted. Default 2.
	DemoteAfterEpochs int
	// BreakerThreshold is how many consecutive degraded epochs open the
	// breaker. Default 2.
	BreakerThreshold int
	// BreakerCooldown is the initial open-state cooldown in epochs; each
	// failed half-open probe doubles it (capped at MaxCooldown). A
	// successful close resets it. Default 2.
	BreakerCooldown int
	// MaxCooldown caps the exponential backoff. Default 32.
	MaxCooldown int
}

// WithDefaults fills zero fields with the defaults above.
func (c Config) WithDefaults() Config {
	if c.HighWatermark == 0 {
		c.HighWatermark = 0.90
	}
	if c.LowWatermark == 0 {
		c.LowWatermark = 0.75
	}
	if c.DemoteAfterEpochs == 0 {
		c.DemoteAfterEpochs = 2
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 2
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2
	}
	if c.MaxCooldown == 0 {
		c.MaxCooldown = 32
	}
	return c
}

// Fingerprint serializes every tunable into a stable string, for
// compiled-plan workload signatures (internal/core): any knob change
// alters demotion decisions, so it must invalidate cached plans.
func (c Config) Fingerprint() string {
	return fmt.Sprintf("hw=%g lw=%g demote=%d thresh=%d cool=%d max=%d",
		c.HighWatermark, c.LowWatermark, c.DemoteAfterEpochs,
		c.BreakerThreshold, c.BreakerCooldown, c.MaxCooldown)
}

// Validate reports configuration errors (call after WithDefaults).
func (c Config) Validate() error {
	if c.HighWatermark <= 0 || c.HighWatermark > 1 {
		return fmt.Errorf("governor: HighWatermark must be in (0,1]")
	}
	if c.LowWatermark <= 0 || c.LowWatermark >= c.HighWatermark {
		return fmt.Errorf("governor: LowWatermark must be in (0, HighWatermark)")
	}
	if c.DemoteAfterEpochs < 1 {
		return fmt.Errorf("governor: DemoteAfterEpochs must be at least 1")
	}
	if c.BreakerThreshold < 1 {
		return fmt.Errorf("governor: BreakerThreshold must be at least 1")
	}
	if c.BreakerCooldown < 1 {
		return fmt.Errorf("governor: BreakerCooldown must be at least 1")
	}
	if c.MaxCooldown < c.BreakerCooldown {
		return fmt.Errorf("governor: MaxCooldown below BreakerCooldown")
	}
	return nil
}

// DemotionTarget returns how many bytes pressure demotion must move off
// the fast tier: zero while the projected occupancy stays at or below
// high·capacity, otherwise the excess over low·capacity (draining past
// the low watermark is what gives the mechanism hysteresis — occupancy
// must climb the whole high−low band before demotion engages again).
func DemotionTarget(projected, capacity uint64, high, low float64) uint64 {
	if capacity == 0 {
		return 0
	}
	if float64(projected) <= high*float64(capacity) {
		return 0
	}
	floor := uint64(low * float64(capacity))
	if projected <= floor {
		return 0
	}
	return projected - floor
}

// ShedStep is one rung of a shed ladder: a named share of fast-tier
// capacity that may be reclaimed wholesale when aggregate pressure
// demands it. A multi-tenant broker builds the ladder from its
// best-effort tenants in declared shed-priority order.
type ShedStep struct {
	// Name identifies the rung (a tenant name).
	Name string
	// Bytes is the fast-tier share reclaiming the rung frees.
	Bytes uint64
}

// PlanShed walks the ladder in order and returns how many leading
// rungs must shed to reclaim at least target bytes — the broker-level
// analogue of pressure demotion: instead of demoting cold chunks, it
// drops whole best-effort shares, lowest shed-priority first. When the
// ladder cannot cover the target every rung sheds.
func PlanShed(ladder []ShedStep, target uint64) int {
	if target == 0 {
		return 0
	}
	var freed uint64
	for i, step := range ladder {
		freed += step.Bytes
		if freed >= target {
			return i + 1
		}
	}
	return len(ladder)
}

// State is the circuit breaker's state.
type State int

const (
	// StateClosed: migration runs normally.
	StateClosed State = iota
	// StateOpen: migration is skipped while the cooldown runs down.
	StateOpen
	// StateHalfOpen: the next epoch probes with a single small region.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Decision is what the breaker allows an epoch to do.
type Decision int

const (
	// DecisionRun: migrate the full delta schedule.
	DecisionRun Decision = iota
	// DecisionProbe: migrate only a single small region.
	DecisionProbe
	// DecisionSkip: run no migration this epoch.
	DecisionSkip
)

func (d Decision) String() string {
	switch d {
	case DecisionRun:
		return "run"
	case DecisionProbe:
		return "probe"
	case DecisionSkip:
		return "skip"
	}
	return fmt.Sprintf("Decision(%d)", int(d))
}

// Transition records one breaker state change, for telemetry and
// reports.
type Transition struct {
	// Epoch is the 1-based epoch at which the transition fired.
	Epoch int
	// From and To are the states around the transition.
	From, To State
	// Cooldown is the open-state cooldown in epochs (To == StateOpen).
	Cooldown int
	// Reason explains the transition ("threshold", "cooldown elapsed",
	// "probe failed", "probe succeeded").
	Reason string
}

// Breaker is the migration circuit breaker: a per-epoch state machine
// driven by one Decide call at epoch start and one Observe call with the
// epoch's migration outcome (skipped epochs observe nothing). It is not
// safe for concurrent use; the runtime serializes epochs.
type Breaker struct {
	threshold    int
	baseCooldown int
	maxCooldown  int

	state    State
	bad      int // consecutive degraded epochs while closed
	cooldown int // current backoff length in epochs
	wait     int // epochs remaining in the open state
	epoch    int

	transitions []Transition
}

// NewBreaker builds a closed breaker from the (defaulted, validated)
// config.
func NewBreaker(cfg Config) *Breaker {
	return &Breaker{
		threshold:    cfg.BreakerThreshold,
		baseCooldown: cfg.BreakerCooldown,
		maxCooldown:  cfg.MaxCooldown,
		cooldown:     cfg.BreakerCooldown,
	}
}

// State returns the current state.
func (b *Breaker) State() State { return b.state }

// Epoch returns the number of Decide calls so far.
func (b *Breaker) Epoch() int { return b.epoch }

// Cooldown returns the current backoff length in epochs.
func (b *Breaker) Cooldown() int { return b.cooldown }

// Transitions returns every state change so far, in order.
func (b *Breaker) Transitions() []Transition { return b.transitions }

// Decide starts a new epoch and returns what it may do. An open breaker
// counts the epoch against its cooldown; when the cooldown has elapsed
// it moves to half-open and the epoch probes.
func (b *Breaker) Decide() Decision {
	b.epoch++
	switch b.state {
	case StateHalfOpen:
		return DecisionProbe
	case StateOpen:
		if b.wait > 0 {
			b.wait--
			return DecisionSkip
		}
		b.transition(StateHalfOpen, 0, "cooldown elapsed")
		return DecisionProbe
	default:
		return DecisionRun
	}
}

// Observe feeds the epoch's migration outcome back: degraded means at
// least one region was skipped (or the migration failed outright).
// Closed epochs count consecutive degradations toward the threshold; a
// half-open probe either closes the breaker (resetting the backoff) or
// reopens it with the cooldown doubled. Skipped epochs must not call
// Observe — they ran no migration and carry no signal.
func (b *Breaker) Observe(degraded bool) {
	switch b.state {
	case StateClosed:
		if !degraded {
			b.bad = 0
			return
		}
		b.bad++
		if b.bad >= b.threshold {
			b.open("threshold")
		}
	case StateHalfOpen:
		if degraded {
			b.cooldown *= 2
			if b.cooldown > b.maxCooldown {
				b.cooldown = b.maxCooldown
			}
			b.open("probe failed")
			return
		}
		b.bad = 0
		b.cooldown = b.baseCooldown
		b.transition(StateClosed, 0, "probe succeeded")
	}
}

func (b *Breaker) open(reason string) {
	b.wait = b.cooldown
	b.transition(StateOpen, b.cooldown, reason)
}

func (b *Breaker) transition(to State, cooldown int, reason string) {
	b.transitions = append(b.transitions, Transition{
		Epoch: b.epoch, From: b.state, To: to, Cooldown: cooldown, Reason: reason,
	})
	b.state = to
}
