package cache

import (
	"testing"
	"testing/quick"
)

func TestHitAfterAccess(t *testing.T) {
	c := New(1024, 64, 4)
	if c.Access(5) {
		t.Error("first access should miss")
	}
	if !c.Access(5) {
		t.Error("second access should hit")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// One set, 2 ways: lines mapping to the same set evict LRU-first.
	c := New(2*64, 64, 2) // 1 set, 2 ways
	c.Access(0)
	c.Access(1)
	c.Access(0) // 0 is now MRU
	c.Access(2) // evicts 1
	if !c.Contains(0) {
		t.Error("line 0 should survive (MRU)")
	}
	if c.Contains(1) {
		t.Error("line 1 should be evicted (LRU)")
	}
	if !c.Contains(2) {
		t.Error("line 2 should be present")
	}
}

func TestStreamingInsertionEvictsFirst(t *testing.T) {
	c := New(2*64, 64, 2) // 1 set, 2 ways
	c.Access(0)           // resident, MRU
	c.AccessHint(1, true) // streaming: inserted at LRU
	c.Access(2)           // should evict the streaming line 1, not 0
	if !c.Contains(0) {
		t.Error("reused line 0 evicted by streaming flow")
	}
	if c.Contains(1) {
		t.Error("streaming line 1 should be the eviction victim")
	}
}

func TestStreamingLinePromotedOnReuse(t *testing.T) {
	c := New(2*64, 64, 2)
	c.Access(0)
	c.AccessHint(1, true)
	c.Access(1) // reuse promotes to MRU
	c.Access(2) // now 0 is LRU
	if c.Contains(0) {
		t.Error("line 0 should be evicted after line 1's promotion")
	}
	if !c.Contains(1) {
		t.Error("promoted line 1 should survive")
	}
}

func TestContainsDoesNotTouchState(t *testing.T) {
	c := New(1024, 64, 4)
	c.Access(3)
	h, m := c.Hits(), c.Misses()
	c.Contains(3)
	c.Contains(99)
	if c.Hits() != h || c.Misses() != m {
		t.Error("Contains changed counters")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := New(4096, 64, 4)
	for line := uint64(0); line < 16; line++ {
		c.Access(line)
	}
	c.InvalidateRange(4, 8)
	for line := uint64(0); line < 16; line++ {
		want := line < 4 || line >= 8
		if c.Contains(line) != want {
			t.Errorf("line %d: contains=%v, want %v", line, c.Contains(line), want)
		}
	}
}

func TestFlush(t *testing.T) {
	c := New(1024, 64, 4)
	c.Access(1)
	c.Access(2)
	c.Flush()
	if c.Contains(1) || c.Contains(2) {
		t.Error("flush left lines resident")
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("flush did not reset counters")
	}
}

func TestDirtyEvictionCallback(t *testing.T) {
	c := New(2*64, 64, 2) // 1 set, 2 ways
	var evicted []uint64
	var dirtyFlags []bool
	c.OnEvict = func(line uint64, dirty bool) {
		evicted = append(evicted, line)
		dirtyFlags = append(dirtyFlags, dirty)
	}
	c.Access(0)
	if !c.MarkDirty(0) {
		t.Fatal("MarkDirty of resident line failed")
	}
	c.Access(1)
	c.Access(2) // evicts 0 (dirty)
	c.Access(3) // evicts 1 (clean)
	if len(evicted) != 2 {
		t.Fatalf("evictions: %v", evicted)
	}
	if evicted[0] != 0 || !dirtyFlags[0] {
		t.Errorf("first eviction: line %d dirty=%v, want 0/dirty", evicted[0], dirtyFlags[0])
	}
	if evicted[1] != 1 || dirtyFlags[1] {
		t.Errorf("second eviction: line %d dirty=%v, want 1/clean", evicted[1], dirtyFlags[1])
	}
}

func TestDirtyClearedOnReplace(t *testing.T) {
	c := New(2*64, 64, 2)
	c.Access(0)
	c.MarkDirty(0)
	c.Access(1)
	c.Access(2) // evicts dirty 0; slot reused for 2 (clean)
	dirtyEvicts := 0
	c.OnEvict = func(line uint64, dirty bool) {
		if dirty {
			dirtyEvicts++
		}
	}
	c.Access(3) // evicts 1
	c.Access(4) // evicts 2 — must be clean
	if dirtyEvicts != 0 {
		t.Error("replacement inherited a stale dirty bit")
	}
}

func TestMarkDirtyMissingLine(t *testing.T) {
	c := New(1024, 64, 4)
	if c.MarkDirty(42) {
		t.Error("MarkDirty of absent line should return false")
	}
}

func TestCapacityRounding(t *testing.T) {
	c := New(1000, 64, 4) // rounds down to a power-of-two set count
	if c.Capacity() > 1000 || c.Capacity() <= 0 {
		t.Errorf("capacity %d out of range", c.Capacity())
	}
	if c.LineSize() != 64 {
		t.Errorf("line size %d", c.LineSize())
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(1024, 0, 4) },
		func() { New(1024, 65, 4) },
		func() { New(1024, 64, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid parameters should panic")
				}
			}()
			f()
		}()
	}
}

// Property: after Access(line), Contains(line) is always true.
func TestAccessInstallsLine(t *testing.T) {
	c := New(8192, 64, 8)
	check := func(line uint64) bool {
		c.Access(line)
		return c.Contains(line)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses equals total accesses.
func TestCounterConservation(t *testing.T) {
	c := New(4096, 64, 4)
	lines := []uint64{1, 2, 3, 1, 2, 99, 1, 500, 3}
	for _, l := range lines {
		c.Access(l)
	}
	if c.Hits()+c.Misses() != uint64(len(lines)) {
		t.Errorf("hits %d + misses %d != %d", c.Hits(), c.Misses(), len(lines))
	}
}

// Property: working sets within capacity never miss after warm-up.
func TestNoCapacityMissesWithinWorkingSet(t *testing.T) {
	c := New(64*64, 64, 64) // fully associative, 64 lines
	for round := 0; round < 3; round++ {
		for line := uint64(0); line < 64; line++ {
			c.Access(line)
		}
	}
	if c.Misses() != 64 {
		t.Errorf("misses %d, want 64 (cold only)", c.Misses())
	}
}

// TestAccessDirtyEquivalence drives a seeded mixed stream through two
// caches — one using the fused store probe, one the unfused
// AccessHint+MarkDirty pair — and requires bit-identical internal state
// and counters after every operation batch. The fused probe is what the
// accessor's store path runs, so any divergence here would silently bend
// writeback traffic in the regenerated tables.
func TestAccessDirtyEquivalence(t *testing.T) {
	mkEvict := func(log *[]uint64) func(uint64, bool) {
		return func(line uint64, dirty bool) {
			v := line << 1
			if dirty {
				v |= 1
			}
			*log = append(*log, v)
		}
	}
	var evA, evB []uint64
	a := New(1<<14, 64, 8)
	b := New(1<<14, 64, 8)
	a.OnEvict = mkEvict(&evA)
	b.OnEvict = mkEvict(&evB)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 { rng ^= rng << 13; rng ^= rng >> 7; rng ^= rng << 17; return rng }
	for i := 0; i < 20000; i++ {
		line := next() % 1024
		streaming := next()%4 == 0
		if next()%2 == 0 { // store
			hitA := a.AccessDirty(line, streaming)
			hitB := b.AccessHint(line, streaming)
			b.MarkDirty(line)
			if hitA != hitB {
				t.Fatalf("op %d: AccessDirty=%v AccessHint=%v", i, hitA, hitB)
			}
		} else { // load
			if a.AccessHint(line, streaming) != b.AccessHint(line, streaming) {
				t.Fatalf("op %d: load outcomes diverge", i)
			}
		}
	}
	if a.Hits() != b.Hits() || a.Misses() != b.Misses() {
		t.Fatalf("counters diverge: %d/%d vs %d/%d", a.Hits(), a.Misses(), b.Hits(), b.Misses())
	}
	if len(evA) != len(evB) {
		t.Fatalf("eviction streams diverge: %d vs %d events", len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("eviction %d diverges: %#x vs %#x", i, evA[i], evB[i])
		}
	}
	for i := range a.tags {
		if a.tags[i] != b.tags[i] || a.stamps[i] != b.stamps[i] || a.dirty[i] != b.dirty[i] {
			t.Fatalf("entry %d diverges: tag %d/%d stamp %d/%d dirty %v/%v",
				i, a.tags[i], b.tags[i], a.stamps[i], b.stamps[i], a.dirty[i], b.dirty[i])
		}
	}
}

// TestInvalidateRangeProbeEquivalence checks the narrow-range probe path
// against the wide-range full scan: identical contents after invalidating
// the same line range, regardless of which strategy size selection picks.
func TestInvalidateRangeProbeEquivalence(t *testing.T) {
	fill := func() *Cache {
		c := New(1<<13, 64, 4) // 32 sets
		for line := uint64(0); line < 512; line++ {
			c.Access(line * 3)
			if line%5 == 0 {
				c.MarkDirty(line * 3)
			}
		}
		return c
	}
	a, b := fill(), fill()
	// a: narrow range → per-line probe. b: force the scan path by
	// invalidating the same lines one giant-range piece at a time is not
	// possible, so replicate the scan inline (the pre-change algorithm).
	lo, hi := uint64(30), uint64(60)
	a.InvalidateRange(lo, hi)
	for i, tag := range b.tags {
		if tag == 0 {
			continue
		}
		if line := tag - 1; line >= lo && line < hi {
			b.tags[i] = 0
			b.stamps[i] = 0
			b.dirty[i] = false
		}
	}
	for i := range a.tags {
		if a.tags[i] != b.tags[i] || a.stamps[i] != b.stamps[i] || a.dirty[i] != b.dirty[i] {
			t.Fatalf("entry %d diverges after invalidation", i)
		}
	}
	// Wide range (≥ sets) exercises the scan path for coverage.
	wide := fill()
	wide.InvalidateRange(0, 4096)
	for i := range wide.tags {
		if wide.tags[i] != 0 {
			t.Fatalf("wide invalidation left entry %d", i)
		}
	}
}
