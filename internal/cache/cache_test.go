package cache

import (
	"testing"
	"testing/quick"
)

func TestHitAfterAccess(t *testing.T) {
	c := New(1024, 64, 4)
	if c.Access(5) {
		t.Error("first access should miss")
	}
	if !c.Access(5) {
		t.Error("second access should hit")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	// One set, 2 ways: lines mapping to the same set evict LRU-first.
	c := New(2*64, 64, 2) // 1 set, 2 ways
	c.Access(0)
	c.Access(1)
	c.Access(0) // 0 is now MRU
	c.Access(2) // evicts 1
	if !c.Contains(0) {
		t.Error("line 0 should survive (MRU)")
	}
	if c.Contains(1) {
		t.Error("line 1 should be evicted (LRU)")
	}
	if !c.Contains(2) {
		t.Error("line 2 should be present")
	}
}

func TestStreamingInsertionEvictsFirst(t *testing.T) {
	c := New(2*64, 64, 2) // 1 set, 2 ways
	c.Access(0)           // resident, MRU
	c.AccessHint(1, true) // streaming: inserted at LRU
	c.Access(2)           // should evict the streaming line 1, not 0
	if !c.Contains(0) {
		t.Error("reused line 0 evicted by streaming flow")
	}
	if c.Contains(1) {
		t.Error("streaming line 1 should be the eviction victim")
	}
}

func TestStreamingLinePromotedOnReuse(t *testing.T) {
	c := New(2*64, 64, 2)
	c.Access(0)
	c.AccessHint(1, true)
	c.Access(1) // reuse promotes to MRU
	c.Access(2) // now 0 is LRU
	if c.Contains(0) {
		t.Error("line 0 should be evicted after line 1's promotion")
	}
	if !c.Contains(1) {
		t.Error("promoted line 1 should survive")
	}
}

func TestContainsDoesNotTouchState(t *testing.T) {
	c := New(1024, 64, 4)
	c.Access(3)
	h, m := c.Hits(), c.Misses()
	c.Contains(3)
	c.Contains(99)
	if c.Hits() != h || c.Misses() != m {
		t.Error("Contains changed counters")
	}
}

func TestInvalidateRange(t *testing.T) {
	c := New(4096, 64, 4)
	for line := uint64(0); line < 16; line++ {
		c.Access(line)
	}
	c.InvalidateRange(4, 8)
	for line := uint64(0); line < 16; line++ {
		want := line < 4 || line >= 8
		if c.Contains(line) != want {
			t.Errorf("line %d: contains=%v, want %v", line, c.Contains(line), want)
		}
	}
}

func TestFlush(t *testing.T) {
	c := New(1024, 64, 4)
	c.Access(1)
	c.Access(2)
	c.Flush()
	if c.Contains(1) || c.Contains(2) {
		t.Error("flush left lines resident")
	}
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("flush did not reset counters")
	}
}

func TestDirtyEvictionCallback(t *testing.T) {
	c := New(2*64, 64, 2) // 1 set, 2 ways
	var evicted []uint64
	var dirtyFlags []bool
	c.OnEvict = func(line uint64, dirty bool) {
		evicted = append(evicted, line)
		dirtyFlags = append(dirtyFlags, dirty)
	}
	c.Access(0)
	if !c.MarkDirty(0) {
		t.Fatal("MarkDirty of resident line failed")
	}
	c.Access(1)
	c.Access(2) // evicts 0 (dirty)
	c.Access(3) // evicts 1 (clean)
	if len(evicted) != 2 {
		t.Fatalf("evictions: %v", evicted)
	}
	if evicted[0] != 0 || !dirtyFlags[0] {
		t.Errorf("first eviction: line %d dirty=%v, want 0/dirty", evicted[0], dirtyFlags[0])
	}
	if evicted[1] != 1 || dirtyFlags[1] {
		t.Errorf("second eviction: line %d dirty=%v, want 1/clean", evicted[1], dirtyFlags[1])
	}
}

func TestDirtyClearedOnReplace(t *testing.T) {
	c := New(2*64, 64, 2)
	c.Access(0)
	c.MarkDirty(0)
	c.Access(1)
	c.Access(2) // evicts dirty 0; slot reused for 2 (clean)
	dirtyEvicts := 0
	c.OnEvict = func(line uint64, dirty bool) {
		if dirty {
			dirtyEvicts++
		}
	}
	c.Access(3) // evicts 1
	c.Access(4) // evicts 2 — must be clean
	if dirtyEvicts != 0 {
		t.Error("replacement inherited a stale dirty bit")
	}
}

func TestMarkDirtyMissingLine(t *testing.T) {
	c := New(1024, 64, 4)
	if c.MarkDirty(42) {
		t.Error("MarkDirty of absent line should return false")
	}
}

func TestCapacityRounding(t *testing.T) {
	c := New(1000, 64, 4) // rounds down to a power-of-two set count
	if c.Capacity() > 1000 || c.Capacity() <= 0 {
		t.Errorf("capacity %d out of range", c.Capacity())
	}
	if c.LineSize() != 64 {
		t.Errorf("line size %d", c.LineSize())
	}
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(1024, 0, 4) },
		func() { New(1024, 65, 4) },
		func() { New(1024, 64, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid parameters should panic")
				}
			}()
			f()
		}()
	}
}

// Property: after Access(line), Contains(line) is always true.
func TestAccessInstallsLine(t *testing.T) {
	c := New(8192, 64, 8)
	check := func(line uint64) bool {
		c.Access(line)
		return c.Contains(line)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses equals total accesses.
func TestCounterConservation(t *testing.T) {
	c := New(4096, 64, 4)
	lines := []uint64{1, 2, 3, 1, 2, 99, 1, 500, 3}
	for _, l := range lines {
		c.Access(l)
	}
	if c.Hits()+c.Misses() != uint64(len(lines)) {
		t.Errorf("hits %d + misses %d != %d", c.Hits(), c.Misses(), len(lines))
	}
}

// Property: working sets within capacity never miss after warm-up.
func TestNoCapacityMissesWithinWorkingSet(t *testing.T) {
	c := New(64*64, 64, 64) // fully associative, 64 lines
	for round := 0; round < 3; round++ {
		for line := uint64(0); line < 64; line++ {
			c.Access(line)
		}
	}
	if c.Misses() != 64 {
		t.Errorf("misses %d, want 64 (cold only)", c.Misses())
	}
}
