// Package cache implements a set-associative last-level-cache model.
//
// The simulated LLC serves two purposes in the ATMem reproduction. First,
// it decides which accesses reach memory and therefore pay tier latency and
// consume tier bandwidth — graph kernels are dominated by LLC misses
// (paper §2.2), and the relative miss volume between the dense and sparse
// regions of a data structure is what the analyzer ranks. Second, the miss
// stream is what the PEBS-style profiler samples: the hardware event the
// paper programs is "missed reads from the last-level cache" (Eq. 1).
//
// Each simulated hardware thread owns a private slice of the LLC (a
// partitioned model of a shared cache), which keeps the simulator lock-free
// and deterministic under parallel execution.
package cache

// Cache is a set-associative cache with LRU replacement inside each set.
// It tracks line presence only — data contents live in the Go slices that
// back simulated objects.
type Cache struct {
	setMask  uint64
	ways     int
	tags     []uint64 // sets*ways entries; tag 0 means empty (tag = line+1)
	stamps   []uint64 // LRU clock per entry
	dirty    []bool
	clock    uint64
	hits     uint64
	misses   uint64
	capacity int
	lineSize int

	// OnEvict, when set, observes every replaced line (called before
	// the new line is installed). Writeback modelling hangs off the
	// dirty flag.
	OnEvict func(line uint64, dirty bool)
}

// New builds a cache of sizeBytes capacity with the given line size and
// associativity. sizeBytes is rounded down to a power-of-two set count; the
// cache always has at least one set. New panics on non-positive or
// non-power-of-two lineBytes, or non-positive ways.
func New(sizeBytes, lineBytes, ways int) *Cache {
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic("cache: line size must be a positive power of two")
	}
	if ways <= 0 {
		panic("cache: ways must be positive")
	}
	sets := sizeBytes / (lineBytes * ways)
	if sets < 1 {
		sets = 1
	}
	// Round sets down to a power of two so the index is a mask.
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	c := &Cache{
		setMask:  uint64(sets - 1),
		ways:     ways,
		tags:     make([]uint64, sets*ways),
		stamps:   make([]uint64, sets*ways),
		dirty:    make([]bool, sets*ways),
		capacity: sets * ways * lineBytes,
		lineSize: lineBytes,
	}
	return c
}

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Capacity returns the effective capacity in bytes after rounding.
func (c *Cache) Capacity() int { return c.capacity }

// Access looks up the given line number (address / line size) and returns
// whether it hit. On a miss the line is installed, evicting the LRU way of
// its set.
func (c *Cache) Access(line uint64) bool {
	return c.AccessHint(line, false)
}

// AccessHint is Access with a streaming hint: a streaming (sequential)
// miss is installed at the LRU position instead of MRU, so one-shot
// streams flow through without evicting the reused working set — the
// behaviour of modern stream-resistant insertion policies (DRRIP et al.)
// that large shared LLCs implement. A later hit on the line still
// promotes it to MRU.
func (c *Cache) AccessHint(line uint64, streaming bool) bool {
	tag := line + 1 // reserve 0 for "empty"
	set := int(line&c.setMask) * c.ways
	c.clock++
	victim := set
	oldest := ^uint64(0)
	for i := set; i < set+c.ways; i++ {
		if c.tags[i] == tag {
			c.stamps[i] = c.clock
			c.hits++
			return true
		}
		if c.stamps[i] < oldest {
			oldest = c.stamps[i]
			victim = i
		}
	}
	if c.tags[victim] != 0 && c.OnEvict != nil {
		c.OnEvict(c.tags[victim]-1, c.dirty[victim])
	}
	c.tags[victim] = tag
	c.dirty[victim] = false
	if streaming {
		// Insert as the set's next eviction candidate: strictly older
		// than every live entry (saturating at zero).
		stamp := oldest
		if stamp > 0 {
			stamp--
		}
		c.stamps[victim] = stamp
	} else {
		c.stamps[victim] = c.clock
	}
	c.misses++
	return false
}

// AccessSeq is the fused probe of the accessor fast path: it performs a
// normal (MRU-insert) Access of line and, only when that access missed,
// additionally reports whether the predecessor line (line-1) is resident
// — the stream-detection question — in the same call. The predecessor
// probe runs after the miss installs line, exactly as the unfused
// Access + Contains(line-1) pair would, so cache state and counters are
// bit-identical to the two-call sequence. For line 0 the predecessor is
// reported absent. On a hit, prevResident is false and meaningless.
func (c *Cache) AccessSeq(line uint64) (hit, prevResident bool) {
	tag := line + 1
	set := int(line&c.setMask) * c.ways
	c.clock++
	victim := set
	oldest := ^uint64(0)
	for i := set; i < set+c.ways; i++ {
		if c.tags[i] == tag {
			c.stamps[i] = c.clock
			c.hits++
			return true, false
		}
		if c.stamps[i] < oldest {
			oldest = c.stamps[i]
			victim = i
		}
	}
	if c.tags[victim] != 0 && c.OnEvict != nil {
		c.OnEvict(c.tags[victim]-1, c.dirty[victim])
	}
	c.tags[victim] = tag
	c.dirty[victim] = false
	c.stamps[victim] = c.clock
	c.misses++
	if line == 0 {
		return false, false
	}
	prevTag := line // (line-1)+1
	prevSet := int((line-1)&c.setMask) * c.ways
	for i := prevSet; i < prevSet+c.ways; i++ {
		if c.tags[i] == prevTag {
			return false, true
		}
	}
	return false, false
}

// AccessDirty is AccessHint fused with MarkDirty for the store path: the
// line is looked up (or installed) exactly as AccessHint would, and its
// entry is flagged dirty in the same walk — on a hit the hit entry, on a
// miss the just-installed victim — saving the separate MarkDirty
// traversal of the set. State, counters, and eviction callbacks are
// bit-identical to AccessHint(line, streaming) followed by
// MarkDirty(line).
func (c *Cache) AccessDirty(line uint64, streaming bool) bool {
	tag := line + 1
	set := int(line&c.setMask) * c.ways
	c.clock++
	victim := set
	oldest := ^uint64(0)
	for i := set; i < set+c.ways; i++ {
		if c.tags[i] == tag {
			c.stamps[i] = c.clock
			c.dirty[i] = true
			c.hits++
			return true
		}
		if c.stamps[i] < oldest {
			oldest = c.stamps[i]
			victim = i
		}
	}
	if c.tags[victim] != 0 && c.OnEvict != nil {
		c.OnEvict(c.tags[victim]-1, c.dirty[victim])
	}
	c.tags[victim] = tag
	c.dirty[victim] = true
	if streaming {
		stamp := oldest
		if stamp > 0 {
			stamp--
		}
		c.stamps[victim] = stamp
	} else {
		c.stamps[victim] = c.clock
	}
	c.misses++
	return false
}

// AddHits credits n hits that a caller short-circuited without walking
// the cache (the accessor's same-line fast path, which is only taken
// when the line is known-resident), keeping Hits() truthful.
func (c *Cache) AddHits(n uint64) { c.hits += n }

// MarkDirty flags the line as modified if present, so its eventual
// eviction is reported as a writeback. Returns whether the line was
// found.
func (c *Cache) MarkDirty(line uint64) bool {
	tag := line + 1
	set := int(line&c.setMask) * c.ways
	for i := set; i < set+c.ways; i++ {
		if c.tags[i] == tag {
			c.dirty[i] = true
			return true
		}
	}
	return false
}

// Contains reports whether the line is currently cached, without touching
// LRU state or hit/miss counters.
func (c *Cache) Contains(line uint64) bool {
	tag := line + 1
	set := int(line&c.setMask) * c.ways
	for i := set; i < set+c.ways; i++ {
		if c.tags[i] == tag {
			return true
		}
	}
	return false
}

// InvalidateRange drops every cached line in [loLine, hiLine). Migration
// engines use this to model the cache effects of moving data. Narrow
// ranges (fewer lines than the cache has sets) probe each line's set
// directly; wide ranges scan the tag array once — whichever touches
// fewer entries.
func (c *Cache) InvalidateRange(loLine, hiLine uint64) {
	if hiLine <= loLine {
		return
	}
	if sets := uint64(len(c.tags) / c.ways); hiLine-loLine < sets {
		for line := loLine; line < hiLine; line++ {
			tag := line + 1
			set := int(line&c.setMask) * c.ways
			for i := set; i < set+c.ways; i++ {
				if c.tags[i] == tag {
					c.tags[i] = 0
					c.stamps[i] = 0
					c.dirty[i] = false
					break
				}
			}
		}
		return
	}
	for i, tag := range c.tags {
		if tag == 0 {
			continue
		}
		line := tag - 1
		if line >= loLine && line < hiLine {
			c.tags[i] = 0
			c.stamps[i] = 0
			c.dirty[i] = false
		}
	}
}

// Flush empties the cache and resets counters.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.stamps[i] = 0
		c.dirty[i] = false
	}
	c.clock = 0
	c.hits = 0
	c.misses = 0
}

// Hits returns the number of hits since the last Flush.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of misses since the last Flush.
func (c *Cache) Misses() uint64 { return c.misses }
