// Package trace serializes precise-address miss traces for offline
// analysis. Recording a workload once (with the profiler at period 1)
// and replaying the trace through the analyzer makes it cheap to explore
// analyzer configurations — chunk granularities, tree arities, ε values —
// without re-running the application, the workflow of the offline
// profilers the paper's related work contrasts ATMem against ([9], [30]).
//
// Format: the header "ATMT" + version, then one varint-encoded record per
// event. Addresses are delta-encoded (zig-zag) against the previous
// event's address, with the write flag folded into the low bit — graph
// traces interleave streams and random accesses, so deltas keep files
// several times smaller than raw addresses.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Event is one recorded demand-miss.
type Event struct {
	// Addr is the sampled data address.
	Addr uint64
	// Write marks store misses.
	Write bool
}

const (
	magic   = "ATMT"
	version = 1
)

// Writer streams events to an underlying writer.
type Writer struct {
	bw       *bufio.Writer
	prev     uint64
	count    uint64
	buf      [binary.MaxVarintLen64]byte
	finished bool
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var vbuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(vbuf[:], version)
	if _, err := bw.Write(vbuf[:n]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Add appends one event. Addresses must stay below 2^62 (folding the
// write bit costs one payload bit, zig-zag another); every simulated
// virtual address is far below that.
func (w *Writer) Add(e Event) error {
	if w.finished {
		return fmt.Errorf("trace: Add after Flush")
	}
	if e.Addr >= 1<<62 {
		return fmt.Errorf("trace: address %#x out of encodable range", e.Addr)
	}
	delta := int64(e.Addr) - int64(w.prev)
	w.prev = e.Addr
	// Zig-zag the delta, then fold the write bit into the low bit.
	zz := uint64((delta << 1) ^ (delta >> 63))
	payload := zz << 1
	if e.Write {
		payload |= 1
	}
	n := binary.PutUvarint(w.buf[:], payload)
	if _, err := w.bw.Write(w.buf[:n]); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of events written.
func (w *Writer) Count() uint64 { return w.count }

// Flush drains buffered data; the Writer cannot be used afterwards.
func (w *Writer) Flush() error {
	w.finished = true
	return w.bw.Flush()
}

// Reader iterates a trace.
type Reader struct {
	br   *bufio.Reader
	prev uint64
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	return &Reader{br: br}, nil
}

// Next returns the next event, or io.EOF at the end of the trace.
func (r *Reader) Next() (Event, error) {
	payload, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: corrupt record: %w", err)
	}
	write := payload&1 == 1
	zz := payload >> 1
	delta := int64(zz>>1) ^ -int64(zz&1)
	addr := uint64(int64(r.prev) + delta)
	r.prev = addr
	return Event{Addr: addr, Write: write}, nil
}

// ReadAll drains the reader into a slice.
func ReadAll(r *Reader) ([]Event, error) {
	var out []Event
	for {
		e, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}
