package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	events := []Event{
		{Addr: 0x1000, Write: false},
		{Addr: 0x1040, Write: true},
		{Addr: 0x200000, Write: false},
		{Addr: 0x1080, Write: false}, // backwards delta
		{Addr: 0x1080, Write: true},  // zero delta
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := w.Add(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(events)) {
		t.Errorf("count %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("got %d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

// Property: any event sequence within the encodable address range
// round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	check := func(addrs []uint64, writes []bool) bool {
		var events []Event
		for i, a := range addrs {
			events = append(events, Event{Addr: a % (1 << 62), Write: i < len(writes) && writes[i]})
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		for _, e := range events {
			if err := w.Add(e); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := ReadAll(r)
		if err != nil {
			return false
		}
		if len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestDeltaEncodingIsCompact(t *testing.T) {
	// A sequential stream must cost ~1-2 bytes per event.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := uint64(0); i < 10000; i++ {
		if err := w.Add(Event{Addr: 0x100000 + i*64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / 10000
	if perEvent > 2.5 {
		t.Errorf("%.2f bytes/event for a sequential stream, want <= 2.5", perEvent)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(strings.NewReader("nope")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(strings.NewReader("AT")); err == nil {
		t.Error("short header accepted")
	}
}

func TestWriterRejectsAddAfterFlush(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(Event{}); err == nil {
		t.Error("Add after Flush accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("empty trace Next = %v, want EOF", err)
	}
}

func TestAddRejectsOutOfRangeAddress(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Add(Event{Addr: 1 << 63}); err == nil {
		t.Error("out-of-range address accepted")
	}
}
