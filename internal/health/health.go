// Package health implements the tier-health model: a per-granule error
// scoreboard that classifies failures as transient or persistent, an
// exponential-backoff trust machine that decides when a granule of fast
// memory may be used again, and a CRC-32C scrubber (scrub.go) that
// detects silent corruption in fast-resident data between epochs.
//
// The scoreboard consumes two signals: migration outcomes (a promotion
// that the transactional engine had to skip is a failure of the target
// fast-tier range) and scrubber detections (a CRC mismatch is always a
// hard failure). Failures are counted in a sliding window per granule;
// a granule whose window crosses the persistence threshold is condemned
// — the runtime demotes whatever still lives there and retires the
// pages into the memsim quarantine ledger. Below the threshold the
// granule is merely distrusted for a backoff period that doubles on
// every repeated failure, modelling the "retry later, but back off"
// treatment real systems give correctable-error storms.
package health

import (
	"fmt"
	"sync"
)

// Policy configures the health model. The zero value takes defaults via
// WithDefaults.
type Policy struct {
	// GranuleBytes is the tracking granularity of the scoreboard; error
	// accounting, trust decisions, and condemnation all happen per
	// granule. Default 2 MiB (one huge page).
	GranuleBytes uint64
	// Window is how many recent observations per granule the error-rate
	// window holds. Default 8.
	Window int
	// PersistentThreshold is how many failures within the window
	// condemn a granule as persistently bad. Default 3.
	PersistentThreshold int
	// BackoffEpochs is the initial distrust period after a failure, in
	// epochs; each further failure doubles it. Default 2.
	BackoffEpochs int
	// MaxBackoff caps the doubling. Default 16.
	MaxBackoff int
	// ScrubGBs is the modelled scrub read bandwidth in GB/s, used to
	// charge scrub passes to the simulated clock. Default 10.
	ScrubGBs float64
}

// WithDefaults returns the policy with zero fields replaced by defaults.
func (p Policy) WithDefaults() Policy {
	if p.GranuleBytes == 0 {
		p.GranuleBytes = 2 << 20
	}
	if p.Window == 0 {
		p.Window = 8
	}
	if p.PersistentThreshold == 0 {
		p.PersistentThreshold = 3
	}
	if p.BackoffEpochs == 0 {
		p.BackoffEpochs = 2
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 16
	}
	if p.ScrubGBs == 0 {
		p.ScrubGBs = 10
	}
	return p
}

// Validate rejects configurations that can never work.
func (p Policy) Validate() error {
	q := p.WithDefaults()
	if q.GranuleBytes&(q.GranuleBytes-1) != 0 {
		return fmt.Errorf("health: GranuleBytes %d is not a power of two", q.GranuleBytes)
	}
	if q.PersistentThreshold > q.Window {
		return fmt.Errorf("health: PersistentThreshold %d exceeds Window %d (can never condemn)",
			q.PersistentThreshold, q.Window)
	}
	if q.MaxBackoff < q.BackoffEpochs {
		return fmt.Errorf("health: MaxBackoff %d below BackoffEpochs %d", q.MaxBackoff, q.BackoffEpochs)
	}
	if q.ScrubGBs < 0 {
		return fmt.Errorf("health: negative ScrubGBs %g", q.ScrubGBs)
	}
	return nil
}

// Fingerprint serializes every knob that shapes health decisions, for
// inclusion in the compiled-plan signature: a plan recorded under one
// health policy must not replay under another.
func (p Policy) Fingerprint() string {
	q := p.WithDefaults()
	return fmt.Sprintf("granule=%d window=%d threshold=%d backoff=%d/%d scrub=%g",
		q.GranuleBytes, q.Window, q.PersistentThreshold, q.BackoffEpochs, q.MaxBackoff, q.ScrubGBs)
}

// Range is one contiguous byte range, granule-aligned when produced by
// the scoreboard.
type Range struct {
	Base uint64
	Size uint64
}

// GranuleState classifies one granule's trust level.
type GranuleState int

const (
	// StateTrusted: the granule may hold fast-tier data.
	StateTrusted GranuleState = iota
	// StateSuspect: recent failures put the granule in backoff; it is
	// distrusted until the backoff expires, then re-trusted on the next
	// successful use.
	StateSuspect
	// StateCondemned: the failure window crossed the persistence
	// threshold; the granule must be evacuated and retired.
	StateCondemned
)

func (s GranuleState) String() string {
	switch s {
	case StateTrusted:
		return "trusted"
	case StateSuspect:
		return "suspect"
	case StateCondemned:
		return "condemned"
	}
	return fmt.Sprintf("GranuleState(%d)", int(s))
}

// Transition records one granule state change, for telemetry.
type Transition struct {
	Epoch int
	Base  uint64
	Size  uint64
	From  GranuleState
	To    GranuleState
	// Reason is a short cause label ("crc", "migration", "backoff-expired").
	Reason string
	// Backoff is the distrust period entered (suspect transitions only).
	Backoff int
}

// Stats summarizes the scoreboard.
type Stats struct {
	// Tracked is how many granules have any observation history.
	Tracked int
	// Suspect is how many granules are currently in backoff.
	Suspect int
	// Condemned is how many granules have been condemned so far.
	Condemned int
	// Failures and Successes count all observations.
	Failures  int
	Successes int
}

// granule is the per-granule scoreboard entry.
type granule struct {
	window   []bool // ring of recent outcomes; true = failure
	wpos     int
	wlen     int
	state    GranuleState
	distrust int // epoch until which the granule is distrusted (exclusive)
	backoff  int // next backoff period
}

func (g *granule) failuresInWindow() int {
	n := 0
	for i := 0; i < g.wlen; i++ {
		if g.window[i] {
			n++
		}
	}
	return n
}

func (g *granule) observe(fail bool) {
	if g.wlen < len(g.window) {
		g.wlen++
	}
	g.window[g.wpos] = fail
	g.wpos = (g.wpos + 1) % len(g.window)
}

// Scoreboard tracks per-granule error history and trust. Safe for
// concurrent use.
type Scoreboard struct {
	pol Policy

	mu          sync.Mutex
	epoch       int
	granules    map[uint64]*granule
	condemned   []Range // pending drain
	transitions []Transition
	stats       Stats
}

// NewScoreboard builds a scoreboard under the given policy (defaults
// applied).
func NewScoreboard(pol Policy) *Scoreboard {
	return &Scoreboard{
		pol:      pol.WithDefaults(),
		granules: make(map[uint64]*granule),
	}
}

// Policy returns the effective (defaulted) policy.
func (s *Scoreboard) Policy() Policy { return s.pol }

// BeginEpoch advances the scoreboard's epoch clock — the unit backoff
// periods are measured in — and returns the new epoch.
func (s *Scoreboard) BeginEpoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	return s.epoch
}

// granulesOf calls fn for the key of every granule covering
// [base, base+size).
func (s *Scoreboard) granulesOf(base, size uint64, fn func(key uint64)) {
	if size == 0 {
		size = 1
	}
	g := s.pol.GranuleBytes
	for key := base &^ (g - 1); key < base+size; key += g {
		fn(key)
	}
}

func (s *Scoreboard) get(key uint64) *granule {
	gr := s.granules[key]
	if gr == nil {
		gr = &granule{window: make([]bool, s.pol.Window), backoff: s.pol.BackoffEpochs}
		s.granules[key] = gr
	}
	return gr
}

// ObserveFailure records a failure against every granule covering the
// range. Reason labels the transition ("crc", "migration").
func (s *Scoreboard) ObserveFailure(base, size uint64, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.granulesOf(base, size, func(key uint64) {
		gr := s.get(key)
		s.stats.Failures++
		if gr.state == StateCondemned {
			return
		}
		gr.observe(true)
		from := gr.state
		if gr.failuresInWindow() >= s.pol.PersistentThreshold {
			gr.state = StateCondemned
			s.stats.Condemned++
			if from == StateSuspect {
				s.stats.Suspect--
			}
			s.condemned = append(s.condemned, Range{Base: key, Size: s.pol.GranuleBytes})
			s.transitions = append(s.transitions, Transition{
				Epoch: s.epoch, Base: key, Size: s.pol.GranuleBytes,
				From: from, To: StateCondemned, Reason: reason,
			})
			return
		}
		gr.distrust = s.epoch + gr.backoff
		backoff := gr.backoff
		gr.backoff *= 2
		if gr.backoff > s.pol.MaxBackoff {
			gr.backoff = s.pol.MaxBackoff
		}
		if from != StateSuspect {
			gr.state = StateSuspect
			s.stats.Suspect++
		}
		s.transitions = append(s.transitions, Transition{
			Epoch: s.epoch, Base: key, Size: s.pol.GranuleBytes,
			From: from, To: StateSuspect, Reason: reason, Backoff: backoff,
		})
	})
}

// ObserveSuccess records a successful use of the range. A suspect
// granule whose backoff has expired is re-trusted and its backoff reset
// — the error burst is judged transient.
func (s *Scoreboard) ObserveSuccess(base, size uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.granulesOf(base, size, func(key uint64) {
		gr := s.granules[key]
		if gr == nil {
			// Never-failed granules are not materialized: the common
			// all-healthy case stays O(1) in memory.
			s.stats.Successes++
			return
		}
		s.stats.Successes++
		if gr.state == StateCondemned {
			return
		}
		gr.observe(false)
		if gr.state == StateSuspect && s.epoch >= gr.distrust {
			gr.state = StateTrusted
			gr.backoff = s.pol.BackoffEpochs
			s.stats.Suspect--
			s.transitions = append(s.transitions, Transition{
				Epoch: s.epoch, Base: key, Size: s.pol.GranuleBytes,
				From: StateSuspect, To: StateTrusted, Reason: "backoff-expired",
			})
		}
	})
}

// Trusted reports whether every granule covering the range may be used
// for fast-tier placement right now: not condemned, and not inside a
// backoff period.
func (s *Scoreboard) Trusted(base, size uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := true
	s.granulesOf(base, size, func(key uint64) {
		gr := s.granules[key]
		if gr == nil {
			return
		}
		if gr.state == StateCondemned || (gr.state == StateSuspect && s.epoch < gr.distrust) {
			ok = false
		}
	})
	return ok
}

// State returns the current state of the granule containing addr.
func (s *Scoreboard) State(addr uint64) GranuleState {
	s.mu.Lock()
	defer s.mu.Unlock()
	gr := s.granules[addr&^(s.pol.GranuleBytes-1)]
	if gr == nil {
		return StateTrusted
	}
	if gr.state == StateSuspect && s.epoch >= gr.distrust {
		// Backoff expired but no success observed yet: still suspect,
		// Trusted() already admits it for the probing use.
		return StateSuspect
	}
	return gr.state
}

// DrainCondemned returns the granule ranges condemned since the last
// drain and clears the pending list. The caller owns the self-healing
// follow-up: evacuate and retire each range.
func (s *Scoreboard) DrainCondemned() []Range {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.condemned
	s.condemned = nil
	return out
}

// Transitions returns every state change so far, in order. The slice
// grows append-only, so callers may keep a cursor into it.
func (s *Scoreboard) Transitions() []Transition {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.transitions
}

// CondemnedBytes returns the total bytes of granules condemned so
// far, whether or not their retirement has landed in the quarantine
// ledger yet — a leading health indicator: condemnation precedes
// retirement when a fault storm delays the evacuation.
func (s *Scoreboard) CondemnedBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(s.stats.Condemned) * s.pol.GranuleBytes
}

// Stats returns a snapshot of the scoreboard counters.
func (s *Scoreboard) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Tracked = len(s.granules)
	return st
}
