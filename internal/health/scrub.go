package health

// The scrubber is the detection half of the self-healing loop: it keeps
// a CRC-32C reference (and a backup copy, modelling the ECC/replica a
// real system would rebuild from) for every fast-resident chunk, taken
// when the chunk last changed legitimately, and re-walks the residency
// between epochs. Because the runtime snapshots after the epoch's
// migration and verifies before the next epoch's kernels run, no
// legitimate write can land between snapshot and verify — a mismatch is
// exactly injected corruption, and a repair lands before any kernel
// consumes the damaged bytes.

import (
	"hash/crc32"
	"sort"
	"sync"
)

// castagnoli is the CRC-32C table shared by every scrub operation.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC-32C of data — the same polynomial the
// scrubber verifies with, exported so tests and the harness can compare
// against scrub references.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoli) }

// ScrubStats summarizes the scrubber's work so far.
type ScrubStats struct {
	// Tracked is how many chunks currently hold a reference checksum.
	Tracked int
	// ChunksScrubbed and BytesScrubbed count verify passes.
	ChunksScrubbed int
	BytesScrubbed  uint64
	// Detections counts CRC mismatches found; Repairs counts the
	// mismatched chunks restored from backup (always equal here — the
	// backup models a rebuild source that is always available).
	Detections int
	Repairs    int
}

type chunkRecord struct {
	crc    uint32
	backup []byte
}

// Scrubber holds the per-chunk CRC references and backups. Safe for
// concurrent use; chunks are keyed by their base virtual address.
type Scrubber struct {
	mu     sync.Mutex
	chunks map[uint64]*chunkRecord
	stats  ScrubStats
}

// NewScrubber builds an empty scrubber.
func NewScrubber() *Scrubber {
	return &Scrubber{chunks: make(map[uint64]*chunkRecord)}
}

// Snapshot records data's checksum and backup as the reference for the
// chunk at base, replacing any previous record.
func (s *Scrubber) Snapshot(base uint64, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.chunks[base]
	if rec == nil {
		rec = &chunkRecord{}
		s.chunks[base] = rec
	}
	rec.crc = Checksum(data)
	if cap(rec.backup) < len(data) {
		rec.backup = make([]byte, len(data))
	}
	rec.backup = rec.backup[:len(data)]
	copy(rec.backup, data)
}

// Forget drops the record for the chunk at base (it left the fast tier).
func (s *Scrubber) Forget(base uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.chunks, base)
}

// Tracked returns every recorded chunk's range, sorted by base — the
// scrub walk order.
func (s *Scrubber) Tracked() []Range {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Range, 0, len(s.chunks))
	for b, rec := range s.chunks {
		out = append(out, Range{Base: b, Size: uint64(len(rec.backup))})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Base < out[j].Base })
	return out
}

// Has reports whether a record exists for the chunk at base.
func (s *Scrubber) Has(base uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.chunks[base]
	return ok
}

// Verify re-checksums data against the chunk's reference. On a
// mismatch it restores the backup into data (the modelled rebuild) and
// returns false; the caller owns the placement follow-up (demote the
// chunk, retire its pages). A chunk with no record verifies trivially.
func (s *Scrubber) Verify(base uint64, data []byte) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.chunks[base]
	if !ok {
		return true
	}
	s.stats.ChunksScrubbed++
	s.stats.BytesScrubbed += uint64(len(data))
	if Checksum(data) == rec.crc && len(data) == len(rec.backup) {
		return true
	}
	s.stats.Detections++
	copy(data, rec.backup)
	s.stats.Repairs++
	return false
}

// Stats returns a snapshot of the scrub counters.
func (s *Scrubber) Stats() ScrubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Tracked = len(s.chunks)
	return st
}
