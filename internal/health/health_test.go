package health

import (
	"strings"
	"testing"
)

const MiB = 1 << 20

func testPolicy() Policy {
	return Policy{GranuleBytes: 2 * MiB, Window: 8, PersistentThreshold: 3,
		BackoffEpochs: 2, MaxBackoff: 16}
}

func TestPolicyDefaultsAndValidate(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.GranuleBytes != 2*MiB || p.Window != 8 || p.PersistentThreshold != 3 {
		t.Errorf("defaults = %+v", p)
	}
	if err := (Policy{}).Validate(); err != nil {
		t.Errorf("zero policy invalid: %v", err)
	}
	bad := []Policy{
		{GranuleBytes: 3 * MiB},
		{Window: 2, PersistentThreshold: 5},
		{BackoffEpochs: 8, MaxBackoff: 4},
		{ScrubGBs: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad policy %d validated: %+v", i, p)
		}
	}
	fp := Policy{}.Fingerprint()
	if fp != p.Fingerprint() {
		t.Error("fingerprint not stable under defaulting")
	}
	if !strings.Contains(fp, "granule=") {
		t.Errorf("fingerprint = %q", fp)
	}
}

func TestScoreboardCondemnsAfterThreshold(t *testing.T) {
	sb := NewScoreboard(testPolicy())
	sb.BeginEpoch()
	base := uint64(4 * MiB)
	for i := 0; i < 2; i++ {
		sb.ObserveFailure(base, 4096, "migration")
		if sb.State(base) == StateCondemned {
			t.Fatalf("condemned after %d failures", i+1)
		}
	}
	sb.ObserveFailure(base, 4096, "migration")
	if sb.State(base) != StateCondemned {
		t.Fatal("not condemned at threshold")
	}
	if sb.Trusted(base, 4096) {
		t.Error("condemned granule trusted")
	}
	got := sb.DrainCondemned()
	if len(got) != 1 || got[0] != (Range{Base: 4 * MiB, Size: 2 * MiB}) {
		t.Errorf("DrainCondemned = %+v", got)
	}
	if len(sb.DrainCondemned()) != 0 {
		t.Error("second drain not empty")
	}
	// Further failures on a condemned granule do not re-condemn.
	sb.ObserveFailure(base, 4096, "migration")
	if len(sb.DrainCondemned()) != 0 {
		t.Error("condemned granule re-drained")
	}
	st := sb.Stats()
	if st.Condemned != 1 || st.Tracked != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScoreboardBackoffDoublesAndResets(t *testing.T) {
	sb := NewScoreboard(testPolicy())
	base := uint64(0)
	sb.BeginEpoch() // epoch 1
	sb.ObserveFailure(base, 1, "crc")
	// Distrusted for BackoffEpochs=2: epochs 1 and 2.
	if sb.Trusted(base, 1) {
		t.Fatal("trusted immediately after failure")
	}
	sb.BeginEpoch() // epoch 2
	if sb.Trusted(base, 1) {
		t.Fatal("trusted inside backoff")
	}
	sb.BeginEpoch() // epoch 3: backoff expired
	if !sb.Trusted(base, 1) {
		t.Fatal("not re-trusted after backoff expiry")
	}
	// A success resets the backoff to the initial period.
	sb.ObserveSuccess(base, 1)
	if sb.State(base) != StateTrusted {
		t.Fatalf("state after success = %v", sb.State(base))
	}
	// A second failure (window now holds 1 fail, 1 success, 1 fail)
	// re-enters backoff at the initial period again.
	sb.ObserveFailure(base, 1, "crc")
	trs := sb.Transitions()
	if len(trs) != 3 {
		t.Fatalf("transitions = %+v", trs)
	}
	if trs[0].Backoff != 2 || trs[2].Backoff != 2 {
		t.Errorf("backoff periods = %d, %d; want 2, 2 (reset on success)", trs[0].Backoff, trs[2].Backoff)
	}
	if trs[1].To != StateTrusted || trs[1].Reason != "backoff-expired" {
		t.Errorf("re-trust transition = %+v", trs[1])
	}
}

func TestScoreboardBackoffEscalatesWithoutSuccess(t *testing.T) {
	sb := NewScoreboard(Policy{Window: 16, PersistentThreshold: 16})
	base := uint64(0)
	want := []int{2, 4, 8, 16, 16}
	for i, w := range want {
		sb.BeginEpoch()
		sb.ObserveFailure(base, 1, "crc")
		trs := sb.Transitions()
		if got := trs[len(trs)-1].Backoff; got != w {
			t.Errorf("failure %d entered backoff %d, want %d", i+1, got, w)
		}
	}
}

func TestScoreboardRangeSpansGranules(t *testing.T) {
	sb := NewScoreboard(testPolicy())
	sb.BeginEpoch()
	// A range crossing a granule boundary marks both granules.
	sb.ObserveFailure(2*MiB-4096, 8192, "crc")
	if sb.Trusted(0, 2*MiB) || sb.Trusted(2*MiB, 2*MiB) {
		t.Error("spanning failure did not distrust both granules")
	}
	if !sb.Trusted(4*MiB, 2*MiB) {
		t.Error("untouched granule distrusted")
	}
	if sb.Stats().Tracked != 2 {
		t.Errorf("tracked = %d, want 2", sb.Stats().Tracked)
	}
}

func TestScrubberDetectsAndRepairs(t *testing.T) {
	sc := NewScrubber()
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	sc.Snapshot(0x1000, data)
	if !sc.Verify(0x1000, data) {
		t.Fatal("pristine chunk failed verification")
	}
	// Corrupt, verify: detection + repair back to the snapshot.
	data[17] ^= 0xFF
	data[4000] ^= 0x01
	if sc.Verify(0x1000, data) {
		t.Fatal("corruption not detected")
	}
	for i := range data {
		if data[i] != byte(i) {
			t.Fatalf("byte %d not repaired: %#x", i, data[i])
		}
	}
	if !sc.Verify(0x1000, data) {
		t.Fatal("repaired chunk failed verification")
	}
	st := sc.Stats()
	if st.Detections != 1 || st.Repairs != 1 || st.ChunksScrubbed != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesScrubbed != 3*4096 {
		t.Errorf("BytesScrubbed = %d", st.BytesScrubbed)
	}
}

func TestScrubberSnapshotReplacesAndForgets(t *testing.T) {
	sc := NewScrubber()
	data := []byte{1, 2, 3, 4}
	sc.Snapshot(0, data)
	// A legitimate rewrite re-snapshots; the new content verifies.
	data[0] = 9
	sc.Snapshot(0, data)
	if !sc.Verify(0, data) {
		t.Fatal("re-snapshotted chunk failed verification")
	}
	if got := sc.Tracked(); len(got) != 1 || got[0] != (Range{Base: 0, Size: 4}) {
		t.Errorf("Tracked = %v", got)
	}
	sc.Forget(0)
	if sc.Has(0) {
		t.Error("forgotten chunk still tracked")
	}
	// Verification of an untracked chunk is trivially clean.
	data[0] = 77
	if !sc.Verify(0, data) {
		t.Error("untracked chunk reported corrupt")
	}
}

func TestChecksumMatchesVerify(t *testing.T) {
	data := []byte("the scrubber and the harness must agree on the polynomial")
	sc := NewScrubber()
	sc.Snapshot(0, data)
	if Checksum(data) == 0 {
		t.Error("checksum is zero")
	}
	clone := append([]byte(nil), data...)
	if !sc.Verify(0, clone) {
		t.Error("externally computed copy failed verification")
	}
}
