package core

import "testing"

func sigFixture() Signature {
	return Signature{
		Graph:    "rmat20",
		GraphCRC: 0xdeadbeef,
		Kernels:  "bfs,pr",
		Threads:  8,
		Testbed:  "nvm-dram",
		Policy:   "policy=atmem",
		Governor: "hw=0.9",
	}
}

func TestCompileStepsAndDeps(t *testing.T) {
	r := NewPlanRecorder(sigFixture())
	// Epoch 1: promote two disjoint ranges.
	r.RecordEpoch([]Range{{Base: 0x1000, Size: 0x1000}, {Base: 0x4000, Size: 0x2000}}, nil)
	// Epoch 2: demote part of the first, promote a third range.
	r.RecordEpoch([]Range{{Base: 0x8000, Size: 0x1000}}, []Range{{Base: 0x1000, Size: 0x1000}})
	p := r.Compile()

	if p.Epochs != 2 {
		t.Fatalf("Epochs = %d, want 2", p.Epochs)
	}
	if len(p.Steps) != 4 {
		t.Fatalf("Steps = %d, want 4", len(p.Steps))
	}
	// Execution order: epoch-major, demotions before promotions.
	want := []struct {
		epoch   int
		base    uint64
		promote bool
	}{
		{1, 0x1000, true},
		{1, 0x4000, true},
		{2, 0x1000, false},
		{2, 0x8000, true},
	}
	for i, w := range want {
		st := p.Steps[i]
		if st.ID != i || st.Epoch != w.epoch || st.Base != w.base || st.Promote != w.promote {
			t.Errorf("step %d = %+v, want epoch %d base %#x promote %t", i, st, w.epoch, w.base, w.promote)
		}
	}
	// The epoch-2 demotion overlaps the epoch-1 promotion of the same
	// range: a dependency edge.
	if got := p.Steps[2].Deps; len(got) != 1 || got[0] != 0 {
		t.Errorf("demotion deps = %v, want [0]", got)
	}
	// The epoch-2 promotion overlaps nothing, but depends on its epoch's
	// demotion (demote-before-promote funds the budget).
	if got := p.Steps[3].Deps; len(got) != 1 || got[0] != 2 {
		t.Errorf("promotion deps = %v, want [2]", got)
	}
	// Disjoint epoch-1 promotions are independent.
	if len(p.Steps[0].Deps) != 0 || len(p.Steps[1].Deps) != 0 {
		t.Errorf("epoch-1 steps must have no deps, got %v / %v", p.Steps[0].Deps, p.Steps[1].Deps)
	}
}

func TestCompileLifetimes(t *testing.T) {
	r := NewPlanRecorder(sigFixture())
	r.RecordEpoch([]Range{{Base: 0x0, Size: 0x3000}}, nil)
	// Epoch 2 demotes the middle page: the lifetime splits.
	r.RecordEpoch(nil, []Range{{Base: 0x1000, Size: 0x1000}})
	p := r.Compile()

	if len(p.Lifetimes) != 3 {
		t.Fatalf("lifetimes = %+v, want 3 intervals", p.Lifetimes)
	}
	byBase := map[uint64]RegionLifetime{}
	for _, lt := range p.Lifetimes {
		byBase[lt.Base] = lt
	}
	if lt := byBase[0x0]; lt.Size != 0x1000 || lt.FromEpoch != 1 || lt.ToEpoch != 0 {
		t.Errorf("prefix lifetime = %+v, want open [1,-)", lt)
	}
	if lt := byBase[0x1000]; lt.Size != 0x1000 || lt.FromEpoch != 1 || lt.ToEpoch != 2 {
		t.Errorf("middle lifetime = %+v, want closed [1,2]", lt)
	}
	if lt := byBase[0x2000]; lt.Size != 0x1000 || lt.FromEpoch != 1 || lt.ToEpoch != 0 {
		t.Errorf("suffix lifetime = %+v, want open [1,-)", lt)
	}
	// Final fast residency = the two still-open pages.
	if p.FinalFastBytes != 0x2000 {
		t.Errorf("FinalFastBytes = %#x, want 0x2000", p.FinalFastBytes)
	}
}

func TestCompileEmptyEpochsKeepNumbering(t *testing.T) {
	r := NewPlanRecorder(sigFixture())
	r.RecordEpoch(nil, nil)
	r.RecordEpoch([]Range{{Base: 0x1000, Size: 0x1000}}, nil)
	p := r.Compile()
	if p.Epochs != 2 {
		t.Fatalf("Epochs = %d, want 2 (empty epochs count)", p.Epochs)
	}
	if len(p.Steps) != 1 || p.Steps[0].Epoch != 2 {
		t.Fatalf("steps = %+v, want one step at epoch 2", p.Steps)
	}
	d1, p1 := p.EpochSteps(1)
	if len(d1) != 0 || len(p1) != 0 {
		t.Errorf("epoch 1 must be empty, got %v / %v", d1, p1)
	}
	d2, p2 := p.EpochSteps(2)
	if len(d2) != 0 || len(p2) != 1 {
		t.Errorf("epoch 2 = %v / %v, want one promotion", d2, p2)
	}
}

func TestPlanCacheVerdicts(t *testing.T) {
	c := NewPlanCache()
	sig := sigFixture()

	if p, v := c.Lookup(sig); p != nil || v != LookupMiss {
		t.Fatalf("empty cache lookup = (%v, %v), want (nil, miss)", p, v)
	}

	rec := NewPlanRecorder(sig)
	rec.RecordEpoch([]Range{{Base: 0x1000, Size: 0x1000}}, nil)
	c.Put(rec.Compile())

	if p, v := c.Lookup(sig); p == nil || v != LookupHit {
		t.Fatalf("exact lookup = (%v, %v), want hit", p, v)
	}

	// Same workload (graph + kernels), any strict field differing: stale,
	// and no plan is returned — the caller must go online.
	stale := []Signature{sig, sig, sig, sig}
	stale[0].GraphCRC++
	stale[1].Threads = 16
	stale[2].Policy = "policy=baseline"
	stale[3].Governor = "hw=0.8"
	for i, s := range stale {
		if p, v := c.Lookup(s); p != nil || v != LookupStale {
			t.Errorf("stale case %d: lookup = (%v, %v), want (nil, stale)", i, p, v)
		}
	}

	// A different workload entirely is a plain miss.
	other := sig
	other.Graph = "urand20"
	if p, v := c.Lookup(other); p != nil || v != LookupMiss {
		t.Errorf("other-workload lookup = (%v, %v), want (nil, miss)", p, v)
	}

	if c.Len() != 1 {
		t.Errorf("cache Len = %d, want 1", c.Len())
	}
}

func TestLookupVerdictString(t *testing.T) {
	for v, want := range map[LookupVerdict]string{
		LookupHit: "hit", LookupMiss: "miss", LookupStale: "stale",
	} {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(v), got, want)
		}
	}
}
