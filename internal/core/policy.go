package core

// This file defines the pluggable placement-policy interface the runtime
// ranks through, plus the non-analyzer built-ins: the frozen first-fit
// floor (static) and the full-trace hindsight ceiling (oracle). The
// paper's analyzer itself stays in analyze.go; AnalyzerPolicy is a thin
// adapter over it so the plans it emits are bit-identical to a direct
// AnalyzeObserved call.

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// PolicyProfile is everything a placement policy may observe when asked
// to rank: the chunked object registry with its attributed per-chunk
// sample counters, the sampling period those counters were captured at
// (needed to scale counts back to priority units), and the governed
// epoch the decision belongs to (0 on an ungoverned runtime's single
// Optimize).
type PolicyProfile struct {
	Registry *Registry
	Period   uint64
	Epoch    int
}

// PlacementPolicy decides which byte ranges deserve the fast tier. Rank
// turns a profile and a capacity budget (bytes of fast memory available
// to the plan; 0 = unlimited) into a Plan of per-object ranges; the
// runtime migrates the plan, diffs it against residency on governed
// runs, and feeds its MarginalDensity into the multi-tenant hunger
// signal — so every policy must fill the plan's density fields when the
// budget clips it.
//
// Fingerprint must change whenever the policy's decisions could change
// (a different algorithm, different trained weights, a different oracle
// trace): it is folded into the compiled-plan signature, and a changed
// fingerprint is what invalidates cached plans.
//
// Rank is called on the control-plane goroutine with the registry
// quiescent; implementations must not retain the registry past the
// call.
type PlacementPolicy interface {
	// Name is the short human-readable policy name ("paper", "oracle",
	// "learned", "static", or the enum names of the deprecated shims).
	Name() string
	// Fingerprint identifies the exact decision procedure for
	// plan-cache signatures.
	Fingerprint() string
	// Rank produces the placement plan for the profiled interval.
	Rank(p PolicyProfile, budgetBytes uint64, obs StageObserver) (*Plan, error)
}

// AnalyzerPolicy is the paper's two-stage analyzer (§4.2–§4.3) behind
// the PlacementPolicy interface. Rank delegates to AnalyzeObserved
// unchanged, so its plans are byte-identical to the pre-interface
// runtime's.
type AnalyzerPolicy struct {
	// Label overrides the reported name ("paper" when empty) — the
	// deprecated Policy enum values resolve to differently-named
	// instances of this same analyzer.
	Label string
}

// Name implements PlacementPolicy.
func (a AnalyzerPolicy) Name() string {
	if a.Label != "" {
		return a.Label
	}
	return "paper"
}

// Fingerprint implements PlacementPolicy. All analyzer-backed names
// share one fingerprint: the decision procedure is identical, so a
// cached plan recorded under the enum shim replays under PaperPolicy.
func (a AnalyzerPolicy) Fingerprint() string { return "analyzer/v1" }

// Rank implements PlacementPolicy by running the full analyzer
// pipeline.
func (a AnalyzerPolicy) Rank(p PolicyProfile, budgetBytes uint64, obs StageObserver) (*Plan, error) {
	return AnalyzeObserved(p.Registry, p.Period, budgetBytes, obs)
}

// chunkScores carries one policy's per-chunk verdicts for greedyPlan:
// Cand marks selectable chunks, Score orders the greedy fill (higher
// first), and Density is the reported per-byte priority in the
// analyzer's PR units (misses x period / byte) so MarginalDensity and
// ColdestKeptDensity stay comparable across policies — the broker
// arbiter compares them across tenants.
type chunkScores struct {
	Cand    [][]bool
	Score   [][]float64
	Density [][]float64
}

// newChunkScores allocates per-chunk slices shaped like the registry.
func newChunkScores(objs []*DataObject) chunkScores {
	cs := chunkScores{
		Cand:    make([][]bool, len(objs)),
		Score:   make([][]float64, len(objs)),
		Density: make([][]float64, len(objs)),
	}
	for i, o := range objs {
		cs.Cand[i] = make([]bool, o.NumChunks)
		cs.Score[i] = make([]float64, o.NumChunks)
		cs.Density[i] = make([]float64, o.NumChunks)
	}
	return cs
}

// greedyPlan builds a Plan by selecting candidate chunks in descending
// score order until budgetBytes is exhausted (0 = unlimited). A chunk
// that no longer fits is skipped and the scan continues with smaller
// chunks, so the budget fills as completely as chunk granularity
// allows; the hottest chunk denied sets MarginalDensity. Ties break on
// (address order), making the plan deterministic for equal scores.
func greedyPlan(objs []*DataObject, cs chunkScores, budgetBytes uint64, obs StageObserver) *Plan {
	plan := &Plan{
		Objects: make([]ObjectPlan, len(objs)),
		Budget:  budgetBytes,
	}
	type cref struct{ obj, chunk int }
	var cands []cref
	for i, o := range objs {
		plan.TotalBytes += o.Size
		plan.Objects[i] = ObjectPlan{
			Object: o,
			Local: LocalSelection{
				PR:       cs.Density[i],
				Critical: make([]bool, o.NumChunks),
			},
			Estimated: make([]bool, o.NumChunks),
		}
		var prSum float64
		for j := 0; j < o.NumChunks; j++ {
			prSum += cs.Density[i][j]
			if cs.Cand[i][j] {
				cands = append(cands, cref{i, j})
			}
		}
		if o.NumChunks > 0 {
			plan.Objects[i].Local.MeanPR = prSum / float64(o.NumChunks)
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		sa := cs.Score[cands[a].obj][cands[a].chunk]
		sb := cs.Score[cands[b].obj][cands[b].chunk]
		if sa != sb {
			return sa > sb
		}
		if cands[a].obj != cands[b].obj {
			return cands[a].obj < cands[b].obj
		}
		return cands[a].chunk < cands[b].chunk
	})

	remaining := budgetBytes
	selected := 0
	for _, c := range cands {
		op := &plan.Objects[c.obj]
		bytes := op.Object.ChunkBytes(c.chunk)
		if budgetBytes != 0 && bytes > remaining {
			plan.ClippedBytes += bytes
			if plan.MarginalDensity == 0 {
				// cands iterate hottest-first, so the first denial is
				// the per-byte value one more byte of budget would buy.
				plan.MarginalDensity = cs.Density[c.obj][c.chunk]
			}
			continue
		}
		op.Local.Critical[c.chunk] = true
		op.Local.NumCritical++
		if budgetBytes != 0 {
			remaining -= bytes
		}
		selected++
	}
	for i := range plan.Objects {
		op := &plan.Objects[i]
		if op.Local.NumCritical == 0 {
			continue
		}
		var prSum float64
		for j, crit := range op.Local.Critical {
			if crit {
				prSum += op.Local.PR[j]
			}
		}
		op.Local.Weight = prSum / float64(op.Local.NumCritical)
	}

	buildRanges(plan)
	for i := range plan.Objects {
		for _, rg := range plan.Objects[i].Ranges {
			plan.SelectedBytes += rg.Size
			if plan.ColdestKeptDensity == 0 || rg.Density < plan.ColdestKeptDensity {
				plan.ColdestKeptDensity = rg.Density
			}
		}
	}
	if obs != nil {
		obs.StageBegin("clip")
		obs.StageEnd("clip", map[string]any{
			"selected_bytes": plan.SelectedBytes,
			"clipped_bytes":  plan.ClippedBytes,
			"budget_bytes":   plan.Budget,
		})
	}
	return plan
}

// readDensity returns chunk j's read-miss priority in PR units.
func readDensity(o *DataObject, j int, period uint64) float64 {
	b := o.ChunkBytes(j)
	if b == 0 {
		return 0
	}
	return float64(o.readSamples[j]) * float64(period) / float64(b)
}

// totalDensity returns chunk j's read+write miss priority in PR units.
func totalDensity(o *DataObject, j int, period uint64) float64 {
	b := o.ChunkBytes(j)
	if b == 0 {
		return 0
	}
	return float64(o.readSamples[j]+o.writeSamples[j]) * float64(period) / float64(b)
}

// StaticFirstFit is the naive floor: whole objects in registration
// order, first fit against the budget, frozen at the first Rank. It
// models the no-profiling baseline a programmer gets from placing
// "whatever was allocated first" on the fast tier and never revisiting
// the decision: objects registered after the freeze never enter the
// selection, and later epochs only re-clip the frozen ordering against
// the then-current budget (a shrunken budget drops the tail, it never
// re-ranks).
type StaticFirstFit struct {
	// frozen is the candidate ordering captured at the first Rank:
	// every chunk of every then-registered object, registration order.
	frozen []staticPick
}

type staticPick struct {
	object string
	chunk  int
}

// Name implements PlacementPolicy.
func (s *StaticFirstFit) Name() string { return "static" }

// Fingerprint implements PlacementPolicy. The freeze is runtime state,
// not configuration: two static policies make the same decisions on the
// same workload, so the fingerprint is constant.
func (s *StaticFirstFit) Fingerprint() string { return "static/v1" }

// Rank implements PlacementPolicy.
func (s *StaticFirstFit) Rank(p PolicyProfile, budgetBytes uint64, obs StageObserver) (*Plan, error) {
	objs := p.Registry.Objects()
	if s.frozen == nil {
		// Freeze on first sight: registration (ID) order, chunks in
		// address order within each object.
		byID := make([]*DataObject, len(objs))
		copy(byID, objs)
		sort.SliceStable(byID, func(a, b int) bool { return byID[a].ID < byID[b].ID })
		for _, o := range byID {
			for j := 0; j < o.NumChunks; j++ {
				s.frozen = append(s.frozen, staticPick{o.Name, j})
			}
		}
	}
	if obs != nil {
		obs.StageBegin("rank")
	}
	index := make(map[string]int, len(objs))
	for i, o := range objs {
		index[o.Name] = i
	}
	cs := newChunkScores(objs)
	for pos, pick := range s.frozen {
		i, ok := index[pick.object]
		if !ok || pick.chunk >= objs[i].NumChunks {
			continue
		}
		cs.Cand[i][pick.chunk] = true
		cs.Score[i][pick.chunk] = 1 / float64(1+pos)
	}
	// Selection ignores the profile entirely; the reported densities use
	// it so the plan's marginal/coldest signals stay truthful.
	for i, o := range objs {
		for j := 0; j < o.NumChunks; j++ {
			cs.Density[i][j] = readDensity(o, j, p.Period)
		}
	}
	if obs != nil {
		obs.StageEnd("rank", map[string]any{
			"objects":       len(objs),
			"frozen_chunks": len(s.frozen),
		})
	}
	return greedyPlan(objs, cs, budgetBytes, obs), nil
}

// HeatTrace is a full-profiling heat snapshot: per-chunk priority (PR
// units, reads + 2×writes — see SnapshotHeat for the writeback
// accounting) keyed by object name, captured with SnapshotHeat after a
// period-1 profiled iteration. It is the oracle policy's hindsight
// input and the learned policy's training label source.
type HeatTrace struct {
	// Period records the sampling period of the capture (1 for a true
	// full trace).
	Period uint64 `json:"period"`
	// Objects maps object name to per-chunk priority.
	Objects map[string][]float64 `json:"objects"`
	// FastBytes/SlowBytes are the optional measured device-byte channels
	// a full traffic capture (Runtime.TrafficTrace) records per chunk:
	// the bytes the chunk's traffic charges when resident on the fast
	// tier (one cache line per fetched or written-back line) versus on
	// the slow tier (access-grain amplified for random traffic). When
	// both are present, OraclePlacement maximizes the fast-access-share
	// ratio over them directly instead of ranking by the scalar heat.
	FastBytes map[string][]float64 `json:"fast_bytes,omitempty"`
	SlowBytes map[string][]float64 `json:"slow_bytes,omitempty"`
}

// SnapshotHeat captures the registry's attributed samples as a heat
// trace. Capture it after ProfilingStop on a period-1 run for a
// complete demand-miss record. Write misses count twice: the traffic
// the oracle maximizes is read+write+writeback, the writeback
// destination follows the dirty line's placement, and in steady state
// each write-missed line is evicted dirty about once per write miss —
// so a promoted write-heavy chunk earns the write miss AND the later
// writeback, while a read-only chunk earns its read misses alone.
func SnapshotHeat(r *Registry, period uint64) *HeatTrace {
	t := &HeatTrace{Period: period, Objects: make(map[string][]float64)}
	for _, o := range r.Objects() {
		heat := make([]float64, o.NumChunks)
		for j := 0; j < o.NumChunks; j++ {
			heat[j] = readDensity(o, j, period) + 2*writeDensity(o, j, period)
		}
		t.Objects[o.Name] = heat
	}
	return t
}

// Fingerprint hashes the trace content (sorted object names, float
// bits) so two oracles built from different traces never share a
// plan-cache signature.
func (t *HeatTrace) Fingerprint() string {
	h := fnv.New64a()
	names := make([]string, 0, len(t.Objects))
	for name := range t.Objects {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf [8]byte
	writeFloats := func(vs []float64) {
		for _, v := range vs {
			bits := math.Float64bits(v)
			for k := 0; k < 8; k++ {
				buf[k] = byte(bits >> (8 * k))
			}
			h.Write(buf[:])
		}
	}
	for _, name := range names {
		h.Write([]byte(name))
		writeFloats(t.Objects[name])
		writeFloats(t.FastBytes[name])
		writeFloats(t.SlowBytes[name])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// OraclePlacement is the hindsight ceiling: it ranks chunks by their
// true heat from a full-trace recording of the same workload and fills
// the whole budget greedily, densest first. The fast-access share it
// achieves bounds what any online policy can reach at the same budget,
// up to chunk granularity and the second-order placement dependence of
// conflict traffic (which a refinement round — re-recording the trace
// under the oracle's own placement — absorbs; see the harness's policy
// shootout).
//
// When the trace carries the measured FastBytes/SlowBytes channels, the
// share is a ratio — promoting chunk c adds fast_c to the numerator and
// swaps slow_c for fast_c in the denominator — so the optimal per-byte
// ranking weight between the two terms, (1-θ)·fast + θ·slow, depends on
// the achieved share θ itself. Rank solves the fractional objective by
// Dinkelbach iteration: select greedily at the current θ, recompute the
// share that selection achieves, and repeat until θ fixes.
type OraclePlacement struct {
	// Trace is the recorded heat (required).
	Trace *HeatTrace
}

// Name implements PlacementPolicy.
func (o *OraclePlacement) Name() string { return "oracle" }

// Fingerprint implements PlacementPolicy: it covers the trace content,
// so a different recording invalidates cached plans.
func (o *OraclePlacement) Fingerprint() string {
	if o.Trace == nil {
		return "oracle/v1 trace=nil"
	}
	return "oracle/v1 trace=" + o.Trace.Fingerprint()
}

// Validate reports a missing or empty trace; the runtime surfaces it at
// construction.
func (o *OraclePlacement) Validate() error {
	if o.Trace == nil || len(o.Trace.Objects) == 0 {
		return fmt.Errorf("core: oracle policy requires a recorded heat trace")
	}
	return nil
}

// Rank implements PlacementPolicy.
func (o *OraclePlacement) Rank(p PolicyProfile, budgetBytes uint64, obs StageObserver) (*Plan, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	objs := p.Registry.Objects()
	if obs != nil {
		obs.StageBegin("rank")
	}
	cs := newChunkScores(objs)
	matched := 0
	theta := math.NaN()
	if len(o.Trace.FastBytes) > 0 && len(o.Trace.SlowBytes) > 0 {
		theta = o.solveShareRatio(objs, budgetBytes, cs, &matched)
	} else {
		for i, do := range objs {
			heat, ok := o.Trace.Objects[do.Name]
			if !ok {
				continue
			}
			matched++
			for j := 0; j < do.NumChunks && j < len(heat); j++ {
				if heat[j] <= 0 {
					continue
				}
				cs.Cand[i][j] = true
				cs.Score[i][j] = heat[j]
				cs.Density[i][j] = heat[j]
			}
		}
	}
	if obs != nil {
		info := map[string]any{
			"objects":        len(objs),
			"traced_objects": matched,
		}
		if !math.IsNaN(theta) {
			info["theta"] = theta
		}
		obs.StageEnd("rank", info)
	}
	return greedyPlan(objs, cs, budgetBytes, obs), nil
}

// solveShareRatio runs the Dinkelbach iteration over the trace's
// measured byte channels, fills cs with the converged weighting's
// densities, and returns the fixed-point θ (the share the hindsight
// selection predicts for itself).
func (o *OraclePlacement) solveShareRatio(objs []*DataObject, budgetBytes uint64, cs chunkScores, matched *int) float64 {
	type cand struct {
		i, j             int
		size, fast, slow float64
	}
	var cands []cand
	var slowTotal float64
	for i, do := range objs {
		fast, okF := o.Trace.FastBytes[do.Name]
		slow, okS := o.Trace.SlowBytes[do.Name]
		if !okF || !okS {
			continue
		}
		*matched++
		for j := 0; j < do.NumChunks && j < len(fast) && j < len(slow); j++ {
			slowTotal += slow[j]
			if fast[j] <= 0 && slow[j] <= 0 {
				continue
			}
			cands = append(cands, cand{i, j, float64(do.ChunkBytes(j)), fast[j], slow[j]})
		}
	}
	theta := 0.5
	density := func(c cand) float64 { return ((1-theta)*c.fast + theta*c.slow) / c.size }
	for iter := 0; iter < 16; iter++ {
		sort.Slice(cands, func(a, b int) bool { return density(cands[a]) > density(cands[b]) })
		var numer, slowKept float64
		slowKept = slowTotal
		remaining := float64(budgetBytes)
		for _, c := range cands {
			if c.size > remaining {
				continue
			}
			remaining -= c.size
			numer += c.fast
			slowKept -= c.slow
		}
		denom := numer + slowKept
		next := theta
		if denom > 0 {
			next = numer / denom
		}
		if math.Abs(next-theta) < 1e-9 {
			theta = next
			break
		}
		theta = next
	}
	for _, c := range cands {
		d := density(c)
		if d <= 0 {
			continue
		}
		cs.Cand[c.i][c.j] = true
		cs.Score[c.i][c.j] = d
		cs.Density[c.i][c.j] = d
	}
	return theta
}
