package core

import "fmt"

// Tree is the m-ary promotion tree of §4.3, built over the chunk
// categorization bitmap of one data object. Leaves are the object's data
// chunks (value 1 = sampled critical); each internal node carries the sum
// of its descendant leaves' values and its descendant leaf count, so its
// tree ratio TR = value/leafCount quantifies the likelihood of critical
// chunks in the address range the node covers (§4.3.1).
type Tree struct {
	m      int
	leaves int
	// levels[0] is the leaf level; levels[len-1] is the root (length 1).
	levels [][]treeNode
}

type treeNode struct {
	value     int32
	leafCount int32
}

// BuildTree constructs the tree for a chunk bitmap with arity m (≥ 2).
// An empty bitmap yields a tree with zero leaves and no levels.
func BuildTree(critical []bool, m int) *Tree {
	if m < 2 {
		panic(fmt.Sprintf("core: tree arity %d < 2", m))
	}
	t := &Tree{m: m, leaves: len(critical)}
	if len(critical) == 0 {
		return t
	}
	leafLevel := make([]treeNode, len(critical))
	for i, c := range critical {
		leafLevel[i] = treeNode{leafCount: 1}
		if c {
			leafLevel[i].value = 1
		}
	}
	t.levels = append(t.levels, leafLevel)
	for len(t.levels[len(t.levels)-1]) > 1 {
		child := t.levels[len(t.levels)-1]
		parent := make([]treeNode, (len(child)+m-1)/m)
		for i := range parent {
			var v, lc int32
			for k := i * m; k < (i+1)*m && k < len(child); k++ {
				v += child[k].value
				lc += child[k].leafCount
			}
			parent[i] = treeNode{value: v, leafCount: lc}
		}
		t.levels = append(t.levels, parent)
	}
	return t
}

// M returns the tree arity.
func (t *Tree) M() int { return t.m }

// Leaves returns the number of leaves (data chunks).
func (t *Tree) Leaves() int { return t.leaves }

// Height returns the number of levels, including the leaf level.
func (t *Tree) Height() int { return len(t.levels) }

// NodesAt returns the number of nodes on the given level (0 = leaves).
func (t *Tree) NodesAt(level int) int { return len(t.levels[level]) }

// Value returns the critical-leaf count under node (level, idx).
func (t *Tree) Value(level, idx int) int {
	return int(t.levels[level][idx].value)
}

// LeafCount returns the descendant leaf count of node (level, idx).
func (t *Tree) LeafCount(level, idx int) int {
	return int(t.levels[level][idx].leafCount)
}

// TR returns the tree ratio of node (level, idx): value / leafCount
// (§4.3.1). A node with no leaves has TR 0.
func (t *Tree) TR(level, idx int) float64 {
	n := t.levels[level][idx]
	if n.leafCount == 0 {
		return 0
	}
	return float64(n.value) / float64(n.leafCount)
}

// leafSpan returns the [lo, hi) leaf-index range covered by (level, idx).
func (t *Tree) leafSpan(level, idx int) (lo, hi int) {
	span := 1
	for l := 0; l < level; l++ {
		span *= t.m
	}
	lo = idx * span
	hi = lo + span
	if hi > t.leaves {
		hi = t.leaves
	}
	return lo, hi
}

// Promote performs the top-down promotion of §4.3.3 with the (already
// globally adapted) tree-ratio threshold: a breadth-first search from the
// root finds maximal nodes whose tree ratio reaches the threshold and
// contains at least one sampled-critical leaf, and marks every leaf under
// them selected — patching the sampled gaps into one continuous region.
// Nodes below the threshold are descended so deeper dense sub-ranges can
// still be found; nodes with no critical leaves at all are pruned (there
// is nothing to anchor a promotion).
//
// The returned bitmap is the estimated selection: true for every leaf in
// a promoted subtree that was NOT sampled-critical. Sampled-critical
// leaves are never demoted — they remain selected regardless of the
// promotion outcome.
func (t *Tree) Promote(threshold float64, critical []bool) []bool {
	if len(critical) != t.leaves {
		panic("core: Promote bitmap length mismatch")
	}
	promoted := make([]bool, t.leaves)
	if t.leaves == 0 {
		return promoted
	}
	type ref struct{ level, idx int }
	queue := []ref{{len(t.levels) - 1, 0}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		nd := t.levels[n.level][n.idx]
		if nd.value == 0 || nd.leafCount == 0 {
			continue
		}
		tr := float64(nd.value) / float64(nd.leafCount)
		if tr >= threshold {
			lo, hi := t.leafSpan(n.level, n.idx)
			for i := lo; i < hi; i++ {
				if !critical[i] {
					promoted[i] = true
				}
			}
			continue
		}
		if n.level == 0 {
			continue
		}
		firstChild := n.idx * t.m
		for k := firstChild; k < firstChild+t.m && k < len(t.levels[n.level-1]); k++ {
			queue = append(queue, ref{n.level - 1, k})
		}
	}
	return promoted
}
