package core

import (
	"testing"
	"testing/quick"

	"atmem/internal/pebs"
)

// twoObjectRegistry builds a registry with one hot-skewed object and one
// cold object, sampled deterministically.
func twoObjectRegistry(t *testing.T) *Registry {
	t.Helper()
	cfg := DefaultConfig()
	r := NewRegistry(cfg)
	hot, err := r.Register("hot", 1<<30, 16*cfg.MinChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("cold", 1<<31, 16*cfg.MinChunkBytes); err != nil {
		t.Fatal(err)
	}
	var samples []pebs.Sample
	// Hot object: chunks 0-3 dense, the rest sparse.
	for j := 0; j < 16; j++ {
		lo, _ := hot.ChunkRange(j)
		n := 4
		if j < 4 {
			n = 200
		}
		for k := 0; k < n; k++ {
			samples = append(samples, pebs.Sample{Addr: lo + uint64(k*64)})
		}
	}
	r.AttributeSamples(samples)
	return r
}

func TestAnalyzeSelectsHotRegions(t *testing.T) {
	r := twoObjectRegistry(t)
	plan, err := Analyze(r, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalBytes != 2*16*DefaultConfig().MinChunkBytes {
		t.Errorf("total bytes %d", plan.TotalBytes)
	}
	var hotPlan, coldPlan *ObjectPlan
	for i := range plan.Objects {
		switch plan.Objects[i].Object.Name {
		case "hot":
			hotPlan = &plan.Objects[i]
		case "cold":
			coldPlan = &plan.Objects[i]
		}
	}
	if hotPlan.SelectedBytes() == 0 {
		t.Fatal("hot object not selected")
	}
	if !hotPlan.Local.Critical[0] || hotPlan.Local.Critical[8] {
		t.Errorf("selection misplaced: %v", hotPlan.Local.Critical)
	}
	if coldPlan.SelectedBytes() != 0 {
		t.Error("cold object selected")
	}
	if plan.SelectedBytes == 0 || plan.DataRatio() <= 0 || plan.DataRatio() > 1 {
		t.Errorf("plan totals: selected=%d ratio=%v", plan.SelectedBytes, plan.DataRatio())
	}
}

func TestAnalyzeRangesAreMergedAndOrdered(t *testing.T) {
	r := twoObjectRegistry(t)
	plan, err := Analyze(r, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range plan.Objects {
		var prevEnd uint64
		for _, rg := range op.Ranges {
			if rg.Size == 0 {
				t.Error("empty range in plan")
			}
			if rg.Base < op.Object.Base || rg.End() > op.Object.Base+op.Object.Size {
				t.Error("range outside its object")
			}
			if rg.Base < prevEnd {
				t.Error("ranges overlap or are unordered")
			}
			if rg.Base == prevEnd && prevEnd != 0 {
				t.Error("adjacent ranges not merged")
			}
			prevEnd = rg.End()
		}
	}
}

func TestAnalyzeZeroPeriodRejected(t *testing.T) {
	r := twoObjectRegistry(t)
	if _, err := Analyze(r, 0, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestAnalyzeCapacityBudgetClips(t *testing.T) {
	r := twoObjectRegistry(t)
	unlimited, err := Analyze(r, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if unlimited.SelectedBytes <= DefaultConfig().MinChunkBytes {
		t.Skip("selection too small to clip")
	}
	budget := DefaultConfig().MinChunkBytes
	clipped, err := Analyze(r, 64, budget)
	if err != nil {
		t.Fatal(err)
	}
	if clipped.SelectedBytes > budget {
		t.Errorf("selected %d exceeds budget %d", clipped.SelectedBytes, budget)
	}
	if clipped.ClippedBytes == 0 {
		t.Error("no bytes reported clipped")
	}
	// The densest chunks must survive clipping.
	var hotFirst bool
	for _, op := range clipped.Objects {
		if op.Object.Name != "hot" {
			continue
		}
		for _, rg := range op.Ranges {
			if rg.Base == op.Object.Base {
				hotFirst = true
			}
		}
	}
	if !hotFirst {
		t.Error("clipping dropped the densest region")
	}
}

// Property: selected bytes never exceed the budget (when set) nor the
// total footprint, and per-object byte split is consistent.
func TestAnalyzeBudgetProperty(t *testing.T) {
	r := twoObjectRegistry(t)
	check := func(budgetRaw uint32) bool {
		budget := uint64(budgetRaw) % (64 << 20)
		plan, err := Analyze(r, 64, budget)
		if err != nil {
			return false
		}
		if budget > 0 && plan.SelectedBytes > budget {
			return false
		}
		if plan.SelectedBytes > plan.TotalBytes {
			return false
		}
		for _, op := range plan.Objects {
			var sum uint64
			for _, rg := range op.Ranges {
				sum += rg.Size
			}
			if sum != op.SelectedBytes() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGlobalRescuePullsHotUniformObject(t *testing.T) {
	cfg := DefaultConfig()
	r := NewRegistry(cfg)
	hot, err := r.Register("uniform-hot", 1<<30, 8*cfg.MinChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := r.Register("uniform-cold", 1<<31, 8*cfg.MinChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	var samples []pebs.Sample
	for j := 0; j < 8; j++ {
		lo, _ := hot.ChunkRange(j)
		for k := 0; k < 100; k++ {
			samples = append(samples, pebs.Sample{Addr: lo + uint64(k*64)})
		}
		lo, _ = cold.ChunkRange(j)
		for k := 0; k < 3; k++ {
			samples = append(samples, pebs.Sample{Addr: lo + uint64(k*64)})
		}
	}
	r.AttributeSamples(samples)
	plan, err := Analyze(r, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range plan.Objects {
		switch op.Object.Name {
		case "uniform-hot":
			if op.SelectedBytes() != op.Object.Size {
				t.Errorf("uniform-hot selected %d of %d", op.SelectedBytes(), op.Object.Size)
			}
		case "uniform-cold":
			if op.SelectedBytes() != 0 {
				t.Errorf("uniform-cold selected %d", op.SelectedBytes())
			}
		}
	}
}

func TestEpsilonSweepMonotoneRatio(t *testing.T) {
	r := twoObjectRegistry(t)
	var prev float64 = -1
	// Decreasing ε must never shrink the selection (the fig9/fig10
	// sweep axis).
	for _, eps := range []float64{0.999, 0.5, 0.25, 0.1, 0.02} {
		cfg := DefaultConfig()
		cfg.Epsilon = eps
		if err := r.SetConfig(cfg); err != nil {
			t.Fatal(err)
		}
		plan, err := Analyze(r, 64, 0)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && plan.DataRatio() < prev-1e-9 {
			t.Errorf("ε=%v shrank ratio to %v from %v", eps, plan.DataRatio(), prev)
		}
		prev = plan.DataRatio()
	}
}

func TestTreePromotionMergesGapsInPlan(t *testing.T) {
	cfg := DefaultConfig()
	r := NewRegistry(cfg)
	o, err := r.Register("gappy", 1<<30, 16*cfg.MinChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Chunks 0,1,3 hot; chunk 2 is a sampling gap inside a dense
	// region; chunks 8+ cold. Promotion should patch chunk 2, making
	// one contiguous range (§4.3's migration-efficiency argument).
	var samples []pebs.Sample
	for _, j := range []int{0, 1, 3} {
		lo, _ := o.ChunkRange(j)
		for k := 0; k < 150; k++ {
			samples = append(samples, pebs.Sample{Addr: lo + uint64(k*64)})
		}
	}
	r.AttributeSamples(samples)
	plan, err := Analyze(r, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	op := plan.Objects[0]
	if !op.Estimated[2] {
		t.Fatalf("gap chunk not promoted: estimated=%v", op.Estimated)
	}
	if len(op.Ranges) != 1 {
		t.Errorf("expected one merged range, got %d", len(op.Ranges))
	}
	if op.EstimatedBytes == 0 || op.SampledBytes == 0 {
		t.Errorf("byte split: sampled=%d estimated=%d", op.SampledBytes, op.EstimatedBytes)
	}
}
