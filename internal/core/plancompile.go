package core

// This file is the plan compiler: it turns the placement decisions a
// governed run *committed* (never the ones it merely planned) into a
// static, replayable migration DAG. The motivating observation is
// Unimem's: phase-local placement decisions for a deterministic workload
// can be made once and reused across repeated runs. The representation
// follows the memgraph pattern from compiler-managed memory systems — a
// DAG of move nodes with explicit region lifetimes and dependency edges —
// so a replayer can execute the placement schedule without any profiling
// or analysis, and a scheduler could in principle reorder independent
// steps.
//
// A compiled plan is only valid for the exact workload it was recorded
// from. The Signature captures everything the placement decision chain
// depends on: the graph (name and content CRC), the kernel set, the
// simulated thread count, the tier parameters, and every policy knob
// that feeds the analyzer/governor. Replay must be armed with a
// signature that matches strictly; anything else falls back to the
// online loop (see PlanCache.Lookup).

import (
	"fmt"
	"sort"
	"sync"
)

// Signature identifies the workload a compiled plan was recorded from.
// Two runs with equal signatures make identical placement decisions, so
// replaying the recorded schedule is sound; any field differing means
// the decisions could diverge and the plan must not be used.
type Signature struct {
	// Graph names the dataset; GraphCRC fingerprints its content (CSR
	// arrays), so a regenerated or relabelled graph under the same name
	// invalidates the plan.
	Graph    string
	GraphCRC uint32
	// Kernels is the ordered kernel set of the suite (comma-joined).
	Kernels string
	// Threads is the simulated thread count (placement interleaving and
	// sample staggering depend on it).
	Threads int
	// Testbed fingerprints the tier parameters (capacities, latencies,
	// line size) of the simulated machine.
	Testbed string
	// Policy fingerprints the placement knobs: policy, migration engine,
	// analyzer ε and chunk config, sampling period mode.
	Policy string
	// Governor fingerprints the governor config (watermarks, hysteresis,
	// breaker), which shapes demotion decisions.
	Governor string
	// Health fingerprints the tier-health state and policy (quarantine
	// generation, retired bytes, scrubber, scoreboard knobs). Pages
	// quarantined after a recording change the fast tier the plan was
	// recorded against, so the plan must go stale rather than replay a
	// promotion onto retired pages.
	Health string
}

// Key returns the strict cache key: every field participates.
func (s Signature) Key() string {
	return fmt.Sprintf("%s|%08x|%s|%d|%s|%s|%s|%s",
		s.Graph, s.GraphCRC, s.Kernels, s.Threads, s.Testbed, s.Policy, s.Governor, s.Health)
}

// workloadKey is the coarse identity — the workload a user would consider
// "the same run" — used to tell a plain cache miss from a stale plan.
func (s Signature) workloadKey() string {
	return s.Graph + "|" + s.Kernels
}

// PlanStep is one node of the compiled migration DAG: promote or demote
// a byte range at a given epoch. Deps lists the step IDs that must have
// executed first — every earlier step whose range overlaps (the tier
// state of the range depends on it), and, within an epoch, promotions
// depend on that epoch's demotions (demote-before-promote is what frees
// the budget the promotion consumes, mirroring migrate.Schedule).
type PlanStep struct {
	ID    int
	Epoch int // 1-based recording epoch this step executes in
	Base  uint64
	Size  uint64
	// Promote moves the range to the fast tier; false demotes it.
	Promote bool
	// Deps are IDs of steps that must precede this one.
	Deps []int
}

// End returns the exclusive upper bound of the step's range.
func (st PlanStep) End() uint64 { return st.Base + st.Size }

// RegionLifetime is the fast-tier residency interval of one promoted
// range: promoted at FromEpoch, demoted at ToEpoch (0 while still
// resident when the recording ended — an open lifetime). Lifetimes are
// the memgraph "alloc/free" view of the same DAG, and what lets a
// capacity check validate the plan without executing it.
type RegionLifetime struct {
	Base      uint64
	Size      uint64
	FromEpoch int
	ToEpoch   int // 0 = still resident at end of plan
}

// CompiledPlan is a recorded run's placement schedule: the step DAG in
// execution order, region lifetimes, and the epoch count. Steps are
// grouped by epoch for the replayer via EpochSteps.
type CompiledPlan struct {
	Sig       Signature
	Steps     []PlanStep
	Lifetimes []RegionLifetime
	// Epochs is the number of recorded epochs (including ones that
	// committed nothing).
	Epochs int
	// FinalFastBytes is the bytes fast-resident when recording ended,
	// per the recorded schedule — the residency a faithful replay must
	// reproduce.
	FinalFastBytes uint64
}

// EpochSteps returns the steps of one epoch, demotions first — the order
// RunSchedule would execute them — with intra-epoch dependencies already
// encoded in Deps.
func (p *CompiledPlan) EpochSteps(epoch int) (demotions, promotions []PlanStep) {
	for _, st := range p.Steps {
		if st.Epoch != epoch {
			continue
		}
		if st.Promote {
			promotions = append(promotions, st)
		} else {
			demotions = append(demotions, st)
		}
	}
	return demotions, promotions
}

// PlanRecorder accumulates a governed run's committed placement
// decisions epoch by epoch. The runtime calls RecordEpoch with exactly
// the regions whose remap committed (rolled-back and skipped regions
// never enter the plan — replaying a decision that did not happen would
// desynchronize residency), then Compile after the last epoch.
type PlanRecorder struct {
	sig    Signature
	epochs []epochRecord
}

type epochRecord struct {
	demotions  []Range
	promotions []Range
}

// NewPlanRecorder starts a recording for the given workload signature.
func NewPlanRecorder(sig Signature) *PlanRecorder {
	return &PlanRecorder{sig: sig}
}

// Signature returns the signature the recording is keyed under.
func (r *PlanRecorder) Signature() Signature { return r.sig }

// RecordEpoch appends one epoch's committed regions. Call once per
// epoch, in order, including empty epochs (the replayer must keep epoch
// numbering aligned with the body the caller runs).
func (r *PlanRecorder) RecordEpoch(promoted, demoted []Range) {
	rec := epochRecord{}
	rec.promotions = append(rec.promotions, promoted...)
	rec.demotions = append(rec.demotions, demoted...)
	r.epochs = append(r.epochs, rec)
}

// Epochs returns how many epochs have been recorded.
func (r *PlanRecorder) Epochs() int { return len(r.epochs) }

// overlaps reports whether [aBase, aBase+aSize) intersects
// [bBase, bBase+bSize).
func overlaps(aBase, aSize, bBase, bSize uint64) bool {
	return aBase < bBase+bSize && bBase < aBase+aSize
}

// Compile freezes the recording into a CompiledPlan: steps numbered in
// execution order (epoch-major, demotions before promotions), dependency
// edges from range overlap and intra-epoch ordering, and lifetimes
// derived by matching each promotion with the demotion that later
// covers its range.
func (r *PlanRecorder) Compile() *CompiledPlan {
	p := &CompiledPlan{Sig: r.sig, Epochs: len(r.epochs)}
	addStep := func(epoch int, rg Range, promote bool, epochDemotes []int) {
		st := PlanStep{
			ID:      len(p.Steps),
			Epoch:   epoch,
			Base:    rg.Base,
			Size:    rg.Size,
			Promote: promote,
		}
		// Overlap edges against every earlier step: the range's tier
		// state when this step runs is whatever the last overlapping
		// step left it, so ordering between them is a true dependency.
		for _, prev := range p.Steps {
			if overlaps(prev.Base, prev.Size, st.Base, st.Size) {
				st.Deps = append(st.Deps, prev.ID)
			}
		}
		if promote {
			// Budget edges: this epoch's demotions free the fast-tier
			// bytes the promotion may need. Deduplicate against overlap
			// edges already present.
			have := make(map[int]bool, len(st.Deps))
			for _, d := range st.Deps {
				have[d] = true
			}
			for _, id := range epochDemotes {
				if !have[id] {
					st.Deps = append(st.Deps, id)
				}
			}
			sort.Ints(st.Deps)
		}
		p.Steps = append(p.Steps, st)
	}
	for i, rec := range r.epochs {
		epoch := i + 1
		var epochDemotes []int
		for _, rg := range rec.demotions {
			epochDemotes = append(epochDemotes, len(p.Steps))
			addStep(epoch, rg, false, nil)
		}
		for _, rg := range rec.promotions {
			addStep(epoch, rg, true, epochDemotes)
		}
	}
	p.Lifetimes = compileLifetimes(p.Steps)
	for _, lt := range p.Lifetimes {
		if lt.ToEpoch == 0 {
			p.FinalFastBytes += lt.Size
		}
	}
	return p
}

// compileLifetimes walks the step list in execution order and maintains
// the set of live (fast-resident) intervals: a promotion opens a
// lifetime, a demotion closes the overlapping part of any live lifetime
// (splitting it when the demotion covers only a middle slice).
func compileLifetimes(steps []PlanStep) []RegionLifetime {
	var done []RegionLifetime
	var live []RegionLifetime
	for _, st := range steps {
		if st.Promote {
			live = append(live, RegionLifetime{
				Base: st.Base, Size: st.Size, FromEpoch: st.Epoch,
			})
			continue
		}
		var next []RegionLifetime
		for _, lt := range live {
			if !overlaps(lt.Base, lt.Size, st.Base, st.Size) {
				next = append(next, lt)
				continue
			}
			// Close the covered slice; keep any uncovered prefix/suffix
			// live under the original FromEpoch.
			cutLo, cutHi := st.Base, st.End()
			if cutLo < lt.Base {
				cutLo = lt.Base
			}
			if hi := lt.Base + lt.Size; cutHi > hi {
				cutHi = hi
			}
			done = append(done, RegionLifetime{
				Base: cutLo, Size: cutHi - cutLo,
				FromEpoch: lt.FromEpoch, ToEpoch: st.Epoch,
			})
			if lt.Base < cutLo {
				next = append(next, RegionLifetime{
					Base: lt.Base, Size: cutLo - lt.Base, FromEpoch: lt.FromEpoch,
				})
			}
			if hi := lt.Base + lt.Size; cutHi < hi {
				next = append(next, RegionLifetime{
					Base: cutHi, Size: hi - cutHi, FromEpoch: lt.FromEpoch,
				})
			}
		}
		live = next
	}
	done = append(done, live...)
	sort.Slice(done, func(i, j int) bool {
		if done[i].Base != done[j].Base {
			return done[i].Base < done[j].Base
		}
		return done[i].FromEpoch < done[j].FromEpoch
	})
	return done
}

// LookupVerdict classifies a PlanCache lookup.
type LookupVerdict int

const (
	// LookupHit: a plan recorded under the exact signature exists.
	LookupHit LookupVerdict = iota
	// LookupMiss: no plan for this workload at all.
	LookupMiss
	// LookupStale: a plan for the same workload (graph name + kernels)
	// exists, but a strict signature field differs — the cached schedule
	// was recorded under assumptions that no longer hold. Replaying it
	// would apply placement decisions from a different decision chain,
	// so the caller MUST fall back to the online loop; the verdict
	// exists so the fallback is observable, never silent.
	LookupStale
)

func (v LookupVerdict) String() string {
	switch v {
	case LookupHit:
		return "hit"
	case LookupMiss:
		return "miss"
	case LookupStale:
		return "stale"
	}
	return fmt.Sprintf("LookupVerdict(%d)", int(v))
}

// PlanCache holds compiled plans keyed by strict signature, with a
// coarse workload index so lookups can distinguish "never recorded"
// from "recorded under different assumptions". Safe for concurrent use.
type PlanCache struct {
	mu       sync.Mutex
	plans    map[string]*CompiledPlan
	workload map[string][]string // workloadKey -> strict keys present
}

// NewPlanCache builds an empty cache.
func NewPlanCache() *PlanCache {
	return &PlanCache{
		plans:    make(map[string]*CompiledPlan),
		workload: make(map[string][]string),
	}
}

// Put stores a compiled plan under its signature, replacing any previous
// plan with the identical strict key.
func (c *PlanCache) Put(p *CompiledPlan) {
	key := p.Sig.Key()
	wk := p.Sig.workloadKey()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.plans[key]; !exists {
		c.workload[wk] = append(c.workload[wk], key)
	}
	c.plans[key] = p
}

// Lookup resolves a signature: LookupHit returns the plan; LookupMiss
// and LookupStale return nil, and the difference is the caller's
// fallback telemetry — a stale verdict means a plan for this workload
// exists but must not be replayed (see LookupStale).
func (c *PlanCache) Lookup(sig Signature) (*CompiledPlan, LookupVerdict) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.plans[sig.Key()]; ok {
		return p, LookupHit
	}
	if len(c.workload[sig.workloadKey()]) > 0 {
		return nil, LookupStale
	}
	return nil, LookupMiss
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.plans)
}
