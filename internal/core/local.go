package core

import (
	"math"

	"atmem/internal/stats"
)

// LocalSelection is the outcome of the hybrid local selection (§4.2) for
// one data object: the per-chunk priority scores of Eq. 1, the threshold θ
// of Eq. 2, and the sampled-critical categorization of Eq. 3.
type LocalSelection struct {
	// PR holds PR_local(DC_ij) per chunk: estimated LLC read misses per
	// byte (sample count x sampling period / chunk size).
	PR []float64
	// Theta is the selected threshold θ(DO_i).
	Theta float64
	// Critical is CAT per chunk (true = sampled critical).
	Critical []bool
	// NumCritical counts true entries of Critical.
	NumCritical int
	// Weight is W(DO_i) of Eq. 4: the mean priority of the selected
	// chunks, or 0 when nothing was selected.
	Weight float64
	// Uniform marks an object whose per-chunk sample counts are
	// statistically indistinguishable from a uniform (Poisson) spread:
	// there is no internal hot region to isolate, so the object is
	// treated as a single all-or-nothing unit and its selection is
	// decided by the global stage against the cross-object density
	// (the coarse-grained behaviour §9 describes for regular access).
	Uniform bool
	// MeanPR is the object's average priority (misses per byte).
	MeanPR float64
}

// SelectLocal runs the hybrid local selection for one object.
//
// Priority (Eq. 1): PR_local(DC_ij) = LLC_mr(DC_ij) / Size(DC_ij), with
// the sampled read-miss count scaled back up by the sampling period so
// priorities are comparable across profiling configurations.
//
// Threshold (Eq. 2): the paper combines a conventional top-N percentile
// P_n with a "derivative-based classification similar to a k-means
// clustering technique" that adapts to the skew of the distribution, plus
// a theoretical minimum priority adjusted for the sampling rate. The
// published formula is typeset ambiguously, so this implementation makes
// the mechanism explicit:
//
//   - the primary candidate is a one-dimensional 2-means split of the
//     non-zero priorities (the knee between the hot and cold clusters) —
//     on a highly skewed distribution it rises above P_n and selects
//     fewer chunks, on an even distribution it falls below P_n and
//     selects more, exactly the two adjustments §4.2 motivates;
//   - when the split degenerates (near-uniform distribution) the
//     threshold falls back to the P_n percentile;
//   - the result is floored at FloorFraction of one sample's worth of
//     priority (period/chunkSize), the theoretical minimum for a chunk
//     that was sampled at all: chunks with zero samples can never be
//     sampled-critical, only tree-promoted.
func SelectLocal(o *DataObject, period uint64, cfg Config) LocalSelection {
	n := o.NumChunks
	sel := LocalSelection{
		PR:       make([]float64, n),
		Critical: make([]bool, n),
	}
	if n == 0 {
		return sel
	}
	p := float64(period)
	for j := 0; j < n; j++ {
		size := float64(o.ChunkBytes(j))
		if size == 0 {
			continue
		}
		sel.PR[j] = float64(o.readSamples[j]) * p / size
	}

	floor := cfg.FloorFraction * p / float64(o.ChunkSize)

	var totalSamples uint64
	nonzero := make([]float64, 0, n)
	for j, pr := range sel.PR {
		totalSamples += o.readSamples[j]
		if pr > 0 {
			nonzero = append(nonzero, pr)
		}
	}
	sel.MeanPR = float64(totalSamples) * p / float64(o.Size)
	if len(nonzero) == 0 {
		sel.Theta = floor
		return sel
	}

	// Sample counts are Poisson draws; a truly uniform-density object
	// produces variance ≈ mean in count units (dispersion index ≈ 1)
	// and any 2-means split of it only bisects noise. Such objects
	// carry no internal hot region: they are classified Uniform and
	// selected whole or not at all by the global stage (§9's
	// coarse-grained behaviour for regular access patterns).
	if dispersionIndex(o.readSamples) < cfg.DispersionThreshold {
		sel.Uniform = true
		sel.Theta = floor
		return sel
	}

	knee := stats.TwoMeansSplit(nonzero)
	theta := knee
	if degenerate(nonzero, knee) {
		theta = stats.Percentile(sel.PR, cfg.PercentileN)
	}
	if theta < floor {
		theta = floor
	}
	sel.Theta = theta

	var prSum float64
	for j, pr := range sel.PR {
		if pr > theta {
			sel.Critical[j] = true
			sel.NumCritical++
			prSum += pr
		}
	}
	// Guarantee progress: if the threshold excluded everything (e.g. a
	// perfectly flat distribution where no PR strictly exceeds θ), keep
	// the maximum-priority chunks, matching the top-N intent.
	if sel.NumCritical == 0 {
		maxPR := 0.0
		for _, pr := range sel.PR {
			if pr > maxPR {
				maxPR = pr
			}
		}
		if maxPR >= floor {
			for j, pr := range sel.PR {
				if pr == maxPR {
					sel.Critical[j] = true
					sel.NumCritical++
					prSum += pr
				}
			}
			sel.Theta = math.Nextafter(maxPR, 0)
		}
	}
	if sel.NumCritical > 0 {
		sel.Weight = prSum / float64(sel.NumCritical)
	}
	return sel
}

// dispersionIndex returns the variance-to-mean ratio of the per-chunk
// sample counts. Pure Poisson sampling noise over a uniform-density
// object yields ≈ 1; genuine hot/cold structure yields values far above.
func dispersionIndex(counts []uint64) float64 {
	if len(counts) == 0 {
		return 0
	}
	var sum float64
	for _, c := range counts {
		sum += float64(c)
	}
	mean := sum / float64(len(counts))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, c := range counts {
		d := float64(c) - mean
		ss += d * d
	}
	variance := ss / float64(len(counts))
	return variance / mean
}

// degenerate reports whether the 2-means split failed to separate the
// distribution: one side empty, or the split indistinguishable from the
// extremes.
func degenerate(xs []float64, split float64) bool {
	lo, hi := math.Inf(1), math.Inf(-1)
	var above, below int
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
		if x > split {
			above++
		} else {
			below++
		}
	}
	if above == 0 || below == 0 {
		return true
	}
	span := hi - lo
	if span == 0 {
		return true
	}
	// A split that hugs an extreme separates nothing meaningful.
	return (split-lo)/span < 1e-9 || (hi-split)/span < 1e-9
}
