package core

import "testing"

// residencyObj hand-builds a DataObject with a fixed chunk size, outside
// the registry (Advance and MarkMoved only need the geometry).
func residencyObj(base, size, chunkSize uint64) *DataObject {
	n := int((size + chunkSize - 1) / chunkSize)
	return &DataObject{
		Name:      "t",
		Base:      base,
		Size:      size,
		ChunkSize: chunkSize,
		NumChunks: n,
	}
}

// planFor hand-builds a single-object plan selecting the given chunk
// ranges, with per-chunk priorities pr (len NumChunks; nil = all zero).
func planFor(o *DataObject, pr []float64, sel ...[2]int) *Plan {
	if pr == nil {
		pr = make([]float64, o.NumChunks)
	}
	op := ObjectPlan{Object: o, Local: LocalSelection{PR: pr}}
	for _, s := range sel {
		lo, _ := o.ChunkRange(s[0])
		_, hi := o.ChunkRange(s[1])
		op.Ranges = append(op.Ranges, Range{Base: lo, Size: hi - lo})
	}
	return &Plan{Objects: []ObjectPlan{op}}
}

// commit applies a delta to residency the way the runtime does after a
// fully successful migration: every range of both directions committed.
func commit(r *Residency, o *DataObject, d Delta) {
	for _, rg := range d.Demotions {
		r.MarkMoved(o, rg.Base, rg.Size, false)
	}
	for _, rg := range d.Promotions {
		r.MarkMoved(o, rg.Base, rg.Size, true)
	}
}

func TestAdvancePromotesThenConverges(t *testing.T) {
	o := residencyObj(0x1000, 8<<10, 1<<10) // 8 chunks of 1 KiB
	r := NewResidency()
	plan := planFor(o, nil, [2]int{2, 4})

	d, cands := r.Advance(plan, 2)
	if len(d.Promotions) != 1 || len(d.Demotions) != 0 || len(cands) != 0 {
		t.Fatalf("first epoch: delta %+v cands %v", d, cands)
	}
	if p := d.Promotions[0]; p.Base != 0x1000+2<<10 || p.Size != 3<<10 {
		t.Fatalf("promotion range [%#x,+%d)", p.Base, p.Size)
	}
	if d.PromoteBytes != 3<<10 || d.ResidentSelectedBytes != 0 {
		t.Fatalf("promote=%d residentSelected=%d", d.PromoteBytes, d.ResidentSelectedBytes)
	}
	commit(r, o, d)
	if got := r.ResidentBytes(); got != 3<<10 {
		t.Fatalf("ResidentBytes = %d, want %d", got, 3<<10)
	}

	// Same plan again: the delta is empty — nothing re-migrates.
	d, cands = r.Advance(plan, 2)
	if !d.Empty() || len(cands) != 0 {
		t.Fatalf("steady state: delta %+v cands %v", d, cands)
	}
	if d.ResidentSelectedBytes != 3<<10 {
		t.Fatalf("ResidentSelectedBytes = %d, want %d", d.ResidentSelectedBytes, 3<<10)
	}
}

func TestAdvanceHysteresisDemotion(t *testing.T) {
	o := residencyObj(0, 8<<10, 1<<10)
	r := NewResidency()
	d, _ := r.Advance(planFor(o, nil, [2]int{2, 4}), 2)
	commit(r, o, d)

	// Hot set shifts to chunks 5–6. Epoch 1 after the shift: chunks 2–4
	// are cold for one epoch — candidates, not yet demotions.
	shifted := planFor(o, nil, [2]int{5, 6})
	d, cands := r.Advance(shifted, 2)
	if len(d.Promotions) != 1 || d.Promotions[0].Base != 5<<10 || d.Promotions[0].Size != 2<<10 {
		t.Fatalf("shift promotions %+v", d.Promotions)
	}
	if len(d.Demotions) != 0 {
		t.Fatalf("premature demotions %+v", d.Demotions)
	}
	if len(cands) != 3 {
		t.Fatalf("candidates %v, want chunks 2,3,4", cands)
	}
	if got := r.ColdEpochs(o, 3); got != 1 {
		t.Fatalf("cold(3) = %d, want 1", got)
	}
	commit(r, o, d)

	// Epoch 2: the hysteresis window expires; chunks 2–4 demote as one
	// merged range and stop being candidates.
	d, cands = r.Advance(shifted, 2)
	if len(d.Promotions) != 0 || len(cands) != 0 {
		t.Fatalf("epoch 2 delta %+v cands %v", d, cands)
	}
	if len(d.Demotions) != 1 || d.Demotions[0].Base != 2<<10 || d.Demotions[0].Size != 3<<10 {
		t.Fatalf("demotions %+v", d.Demotions)
	}
	if d.DemoteBytes != 3<<10 {
		t.Fatalf("DemoteBytes = %d", d.DemoteBytes)
	}
	commit(r, o, d)
	if got := r.ResidentBytes(); got != 2<<10 {
		t.Fatalf("ResidentBytes = %d, want %d", got, 2<<10)
	}

	// Epoch 3: converged again.
	if d, cands = r.Advance(shifted, 2); !d.Empty() || len(cands) != 0 {
		t.Fatalf("post-demotion delta %+v cands %v", d, cands)
	}
}

func TestAdvanceReselectionResetsColdCounter(t *testing.T) {
	o := residencyObj(0, 4<<10, 1<<10)
	r := NewResidency()
	hot := planFor(o, nil, [2]int{0, 1})
	d, _ := r.Advance(hot, 3)
	commit(r, o, d)

	cold := planFor(o, nil, [2]int{2, 3})
	d, _ = r.Advance(cold, 3)
	commit(r, o, d)
	d, _ = r.Advance(cold, 3)
	commit(r, o, d)
	if got := r.ColdEpochs(o, 0); got != 2 {
		t.Fatalf("cold(0) = %d, want 2", got)
	}

	// Chunks 0–1 get hot again one epoch before expiry: no demotion, and
	// the counter restarts from zero if they go cold later.
	d, _ = r.Advance(planFor(o, nil, [2]int{0, 3}), 3)
	if len(d.Demotions) != 0 {
		t.Fatalf("unexpected demotions %+v", d.Demotions)
	}
	if got := r.ColdEpochs(o, 0); got != 0 {
		t.Fatalf("cold(0) after reselection = %d, want 0", got)
	}
}

func TestAdvanceCandidatesColdestFirst(t *testing.T) {
	o := residencyObj(0, 4<<10, 1<<10)
	r := NewResidency()
	pr := []float64{3, 1, 2, 0}
	d, _ := r.Advance(planFor(o, pr, [2]int{0, 3}), 2)
	commit(r, o, d)

	// Everything resident, nothing selected: one cold epoch in, all four
	// chunks are candidates ordered by ascending priority (3,1,2,0 →
	// chunks 3,1,2,0).
	_, cands := r.Advance(planFor(o, pr), 2)
	if len(cands) != 4 {
		t.Fatalf("candidates %v", cands)
	}
	wantOrder := []uint64{3 << 10, 1 << 10, 2 << 10, 0}
	for i, want := range wantOrder {
		if cands[i].Range.Base != want {
			t.Errorf("candidate %d at %#x, want %#x", i, cands[i].Range.Base, want)
		}
	}

	// Equal priorities tie-break by address.
	r2 := NewResidency()
	flat := []float64{1, 1, 1, 1}
	d, _ = r2.Advance(planFor(o, flat, [2]int{0, 3}), 2)
	commit(r2, o, d)
	_, cands = r2.Advance(planFor(o, flat), 2)
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Range.Base >= cands[i].Range.Base {
			t.Fatalf("tie-break out of address order: %v", cands)
		}
	}
}

func TestMarkMovedPartialCoverageAndTailClip(t *testing.T) {
	// 3 chunks of 1 KiB plus a short 512 B tail chunk.
	o := residencyObj(0, 3<<10|512, 1<<10)
	r := NewResidency()

	// A range covering only half of chunk 1 must not flip it.
	r.MarkMoved(o, 0, 1<<10|512, true)
	if !r.Resident(o, 0) || r.Resident(o, 1) {
		t.Fatalf("partial coverage flipped wrong chunks: %v %v",
			r.Resident(o, 0), r.Resident(o, 1))
	}

	// A page-aligned move extending past the object's end still covers
	// the short tail chunk.
	r.MarkMoved(o, 3<<10, 4<<10, true)
	if !r.Resident(o, 3) {
		t.Fatal("tail chunk not marked despite full logical coverage")
	}
	if got := r.ResidentBytes(); got != 1<<10+512 {
		t.Fatalf("ResidentBytes = %d, want %d", got, 1<<10+512)
	}

	// Demotion clears.
	r.MarkMoved(o, 0, 1<<10, false)
	if r.Resident(o, 0) {
		t.Fatal("demotion did not clear residency")
	}
}

func TestDropForgetsObjectState(t *testing.T) {
	o := residencyObj(0x4000, 2<<10, 1<<10)
	r := NewResidency()
	d, _ := r.Advance(planFor(o, nil, [2]int{0, 1}), 2)
	commit(r, o, d)
	if !r.Tracked(o.Base) || r.ResidentBytes() == 0 {
		t.Fatal("setup failed")
	}
	r.Drop(o.Base)
	if r.Tracked(o.Base) || r.ResidentBytes() != 0 {
		t.Fatal("Drop left state behind")
	}
	if r.Resident(o, 0) || r.ColdEpochs(o, 0) != 0 {
		t.Fatal("dropped object still reports residency")
	}
}

func TestSelectedChunksIgnoresPartialTail(t *testing.T) {
	o := residencyObj(0, 4<<10, 1<<10)
	op := &ObjectPlan{Object: o, Ranges: []Range{{Base: 0, Size: 2<<10 | 512}}}
	sel := selectedChunks(op)
	want := []bool{true, true, false, false}
	for j, w := range want {
		if sel[j] != w {
			t.Fatalf("sel = %v, want %v", sel, want)
		}
	}
}
