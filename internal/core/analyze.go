package core

import (
	"fmt"
	"math"
	"sort"
)

// Range is one contiguous byte range selected for migration, produced by
// merging adjacent selected chunks. Density carries the mean priority of
// the range's chunks, used to order ranges under a capacity budget.
type Range struct {
	Base    uint64
	Size    uint64
	Density float64
}

// End returns the exclusive upper bound of the range.
func (r Range) End() uint64 { return r.Base + r.Size }

// ObjectPlan is the analyzer's decision for one data object.
type ObjectPlan struct {
	// Object is the planned data object.
	Object *DataObject
	// Local is the stage-1 hybrid local selection result.
	Local LocalSelection
	// TRThreshold is the globally adapted tree-ratio threshold
	// θ(TR_i)' of Eq. 5 applied to this object.
	TRThreshold float64
	// Estimated marks chunks promoted by the tree (estimated
	// selection, §4.3); disjoint from Local.Critical.
	Estimated []bool
	// Ranges is the final merged selection (sampled ∪ estimated),
	// ordered by address.
	Ranges []Range
	// SampledBytes and EstimatedBytes break the selection down by
	// origin.
	SampledBytes   uint64
	EstimatedBytes uint64
}

// SelectedBytes returns the total bytes this object contributes to the
// plan.
func (p *ObjectPlan) SelectedBytes() uint64 {
	return p.SampledBytes + p.EstimatedBytes
}

// Plan is the full placement decision across all registered objects.
type Plan struct {
	// Objects holds one entry per registered object, in address order.
	Objects []ObjectPlan
	// TotalBytes is the registered footprint.
	TotalBytes uint64
	// SelectedBytes is the footprint chosen for fast memory after
	// capacity clipping.
	SelectedBytes uint64
	// ClippedBytes is what the capacity budget forced the plan to drop.
	ClippedBytes uint64
	// Budget echoes the capacity budget applied (0 = unlimited).
	Budget uint64
	// MarginalDensity is the density of the hottest range the capacity
	// budget clipped — the per-byte value the plan would gain from one
	// more byte of fast memory. Zero when the budget was not binding.
	MarginalDensity float64
	// ColdestKeptDensity is the density of the coldest range the plan
	// kept — the per-byte cost of reclaiming fast memory from this
	// plan. Zero when nothing was selected.
	ColdestKeptDensity float64
}

// DataRatio returns SelectedBytes / TotalBytes — the quantity Figures 7–10
// of the paper report on their data-ratio axes.
func (p *Plan) DataRatio() float64 {
	if p.TotalBytes == 0 {
		return 0
	}
	return float64(p.SelectedBytes) / float64(p.TotalBytes)
}

// AllRanges returns every selected range across objects, address-ordered
// within each object.
func (p *Plan) AllRanges() []Range {
	var out []Range
	for i := range p.Objects {
		out = append(out, p.Objects[i].Ranges...)
	}
	return out
}

// StageObserver watches the analyzer walk its pipeline. StageBegin and
// StageEnd bracket each named stage — "rank" (local selection plus the
// global density rescue), "threshold" (Eq. 4–5 adapted thresholds),
// "promote" (tree building and top-down promotion), and "clip" (range
// merging and capacity clipping). StageEnd carries a small summary of
// what the stage decided. Calls arrive on the Analyze goroutine; a nil
// observer disables observation.
type StageObserver interface {
	StageBegin(stage string)
	StageEnd(stage string, summary map[string]any)
}

// Analyze runs the full two-stage analyzer (§4.2–§4.3) over the registry:
// local selection per object, global weight ranking, per-object adapted
// tree-ratio thresholds, top-down promotion, range merging, and capacity
// clipping against budgetBytes of fast memory (0 = unlimited).
//
// period is the sampling period the profiler used, needed to scale sample
// counts back to priority units.
func Analyze(r *Registry, period uint64, budgetBytes uint64) (*Plan, error) {
	return AnalyzeObserved(r, period, budgetBytes, nil)
}

// AnalyzeObserved is Analyze with a StageObserver reporting each pipeline
// stage (obs may be nil, making it exactly Analyze).
func AnalyzeObserved(r *Registry, period uint64, budgetBytes uint64, obs StageObserver) (*Plan, error) {
	if period == 0 {
		return nil, fmt.Errorf("core: Analyze with zero sampling period")
	}
	cfg := r.cfg
	objs := r.Objects()
	plan := &Plan{
		Objects: make([]ObjectPlan, len(objs)),
		Budget:  budgetBytes,
	}

	// Stage 1: hybrid local selection (Eq. 1–3).
	if obs != nil {
		obs.StageBegin("rank")
	}
	for i, o := range objs {
		plan.Objects[i] = ObjectPlan{
			Object: o,
			Local:  SelectLocal(o, period, cfg),
		}
		plan.TotalBytes += o.Size
	}

	// Global density rescue: the local stage ranks chunks only against
	// their own object, so a chunk below its object's knee can still be
	// far hotter per byte than the system average — and a uniform
	// object (no internal structure at all) is decided here as a whole
	// unit, §9's coarse-grained equivalence for regular access. Any
	// chunk whose priority exceeds UniformHotFactor times the weighted
	// cross-object density joins the sampled selection.
	var totalMass float64
	for i := range plan.Objects {
		op := &plan.Objects[i]
		totalMass += op.Local.MeanPR * float64(op.Object.Size)
	}
	// ε is the paper's data-ratio knob (§7.2 sweeps it to trade fast-
	// memory footprint against speed). Promotion thresholds scale with
	// it directly via Eq. 5; the global rescue threshold scales with
	// (ε·M)² so the default ε = 1/M leaves it untouched, ε → 0 pulls
	// every sampled chunk in (data ratio → 1), and ε → 1 leaves only
	// the local knee selection.
	epsScale := cfg.EffectiveEpsilon() * float64(cfg.M)
	for i := range plan.Objects {
		op := &plan.Objects[i]
		// Leave-one-out reference density: an object is compared to
		// the rest of the footprint, so a dominant hot object cannot
		// raise its own bar.
		restBytes := float64(plan.TotalBytes - op.Object.Size)
		var rescue float64
		if restBytes > 0 {
			reference := (totalMass - op.Local.MeanPR*float64(op.Object.Size)) / restBytes
			rescue = cfg.UniformHotFactor * reference * epsScale * epsScale
			if rescue == 0 && op.Local.MeanPR > 0 && op.Local.NumCritical == 0 {
				// The rest of the footprint was never sampled, so the
				// reference density is exactly zero — and the local stage
				// found no internal structure to select either (a Uniform
				// object). Any sampled chunk is infinitely hotter than the
				// idle reference. This shape is common under per-epoch
				// profiling (an epoch samples only what it touched);
				// without this floor a uniformly-hot object next to idle
				// ones would select nothing. Objects with a local knee
				// selection keep it unchanged: the rescue never widens a
				// skewed selection against a zero reference.
				rescue = math.SmallestNonzeroFloat64
			}
		} else if op.Local.MeanPR > 0 {
			// A sole object competes with nothing: any sampled chunk
			// qualifies (the capacity budget still bounds the plan).
			rescue = math.SmallestNonzeroFloat64
		}
		if rescue <= 0 {
			continue
		}
		var prSum float64
		for j := range op.Local.Critical {
			if !op.Local.Critical[j] && op.Local.PR[j] >= rescue {
				op.Local.Critical[j] = true
				op.Local.NumCritical++
			}
			if op.Local.Critical[j] {
				prSum += op.Local.PR[j]
			}
		}
		if op.Local.NumCritical > 0 {
			op.Local.Weight = prSum / float64(op.Local.NumCritical)
		}
	}
	if obs != nil {
		sampled := 0
		for i := range plan.Objects {
			sampled += plan.Objects[i].Local.NumCritical
		}
		obs.StageEnd("rank", map[string]any{
			"objects":        len(plan.Objects),
			"sampled_chunks": sampled,
		})
	}

	// Stage 2: global relative ranking of object weights (Eq. 4) and
	// per-object adapted tree-ratio thresholds (Eq. 5). Thresholds
	// depend only on the weight space, not on promotions, so the two
	// halves of the stage run as separate passes.
	if obs != nil {
		obs.StageBegin("threshold")
	}
	minW, maxW, anyW := weightSpace(plan.Objects)
	eps := cfg.EffectiveEpsilon()
	for i := range plan.Objects {
		op := &plan.Objects[i]
		op.TRThreshold = AdaptTRThreshold(op.Local.Weight, minW, maxW, anyW,
			cfg.BaseTRThreshold, eps)
	}
	if obs != nil {
		obs.StageEnd("threshold", map[string]any{
			"min_weight": minW,
			"max_weight": maxW,
			"epsilon":    eps,
		})
		obs.StageBegin("promote")
	}
	promoted := 0
	for i := range plan.Objects {
		op := &plan.Objects[i]
		tree := BuildTree(op.Local.Critical, cfg.M)
		op.Estimated = tree.Promote(op.TRThreshold, op.Local.Critical)
		for _, est := range op.Estimated {
			if est {
				promoted++
			}
		}
	}
	if obs != nil {
		obs.StageEnd("promote", map[string]any{
			"estimated_chunks": promoted,
			"tree_arity":       cfg.M,
		})
		obs.StageBegin("clip")
	}

	// Merge selections into ranges and clip to the capacity budget.
	buildRanges(plan)
	clipToBudget(plan, budgetBytes)
	for i := range plan.Objects {
		op := &plan.Objects[i]
		for _, rg := range op.Ranges {
			plan.SelectedBytes += rg.Size
			if plan.ColdestKeptDensity == 0 || rg.Density < plan.ColdestKeptDensity {
				plan.ColdestKeptDensity = rg.Density
			}
		}
	}
	if obs != nil {
		obs.StageEnd("clip", map[string]any{
			"selected_bytes": plan.SelectedBytes,
			"clipped_bytes":  plan.ClippedBytes,
			"budget_bytes":   plan.Budget,
		})
	}
	return plan, nil
}

// weightSpace computes the min/max weight over objects that selected at
// least one chunk (objects with empty selections carry no information and
// are excluded, as their trees cannot promote anything anyway).
func weightSpace(objs []ObjectPlan) (minW, maxW float64, any bool) {
	for i := range objs {
		if objs[i].Local.NumCritical == 0 {
			continue
		}
		w := objs[i].Local.Weight
		if !any || w < minW {
			minW = w
		}
		if !any || w > maxW {
			maxW = w
		}
		any = true
	}
	return minW, maxW, any
}

// AdaptTRThreshold implements Eq. 5:
//
//	θ(TR_i)' = ε + θ(TR) · (maxW − W(DO_i)) / ‖minW − maxW‖
//
// A heavier object (few chunks with very high priority) gets a threshold
// closer to ε, promoting more aggressively; the lightest object gets
// ε + θ(TR). When the weight space is empty or degenerate (a single
// object, or all weights equal) every object is at the maximum weight and
// receives ε.
func AdaptTRThreshold(w, minW, maxW float64, space bool, base, eps float64) float64 {
	if !space || maxW == minW {
		return clamp01(eps)
	}
	th := eps + base*(maxW-w)/(maxW-minW)
	return clamp01(th)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// buildRanges merges each object's selected chunks (sampled ∪ estimated)
// into maximal contiguous byte ranges and fills the per-origin byte
// counters.
func buildRanges(plan *Plan) {
	for i := range plan.Objects {
		op := &plan.Objects[i]
		o := op.Object
		var ranges []Range
		j := 0
		for j < o.NumChunks {
			if !op.Local.Critical[j] && !op.Estimated[j] {
				j++
				continue
			}
			start := j
			var prSum float64
			for j < o.NumChunks && (op.Local.Critical[j] || op.Estimated[j]) {
				if op.Local.Critical[j] {
					op.SampledBytes += o.ChunkBytes(j)
				} else {
					op.EstimatedBytes += o.ChunkBytes(j)
				}
				prSum += op.Local.PR[j]
				j++
			}
			lo, _ := o.ChunkRange(start)
			_, hi := o.ChunkRange(j - 1)
			ranges = append(ranges, Range{
				Base:    lo,
				Size:    hi - lo,
				Density: prSum / float64(j-start),
			})
		}
		op.Ranges = ranges
	}
}

// clipToBudget drops the least-dense selected chunks until the plan fits
// in budgetBytes. Clipping operates at range granularity from the sparse
// end: whole ranges are dropped lowest-density-first, and the last range
// kept may be truncated at a chunk boundary (densest chunks within a
// range cannot be distinguished post-merge, so truncation trims the tail).
func clipToBudget(plan *Plan, budget uint64) {
	if budget == 0 {
		return
	}
	var total uint64
	type rref struct {
		obj, idx int
	}
	var refs []rref
	for i := range plan.Objects {
		for k := range plan.Objects[i].Ranges {
			refs = append(refs, rref{i, k})
			total += plan.Objects[i].Ranges[k].Size
		}
	}
	if total <= budget {
		return
	}
	sort.SliceStable(refs, func(a, b int) bool {
		ra := plan.Objects[refs[a].obj].Ranges[refs[a].idx]
		rb := plan.Objects[refs[b].obj].Ranges[refs[b].idx]
		return ra.Density < rb.Density
	})
	drop := total - budget
	dropped := make(map[rref]uint64, len(refs))
	for _, ref := range refs {
		if drop == 0 {
			break
		}
		rg := &plan.Objects[ref.obj].Ranges[ref.idx]
		cs := plan.Objects[ref.obj].Object.ChunkSize
		cut := RoundUpU64(drop, cs)
		if cut >= rg.Size {
			dropped[ref] = rg.Size
			drop -= minU64(drop, rg.Size)
		} else {
			dropped[ref] = cut
			drop = 0
		}
		// refs iterate in ascending density, so the last range clipped
		// from is the hottest denied one.
		plan.MarginalDensity = rg.Density
	}
	for i := range plan.Objects {
		op := &plan.Objects[i]
		kept := op.Ranges[:0]
		for k := range op.Ranges {
			cut, ok := dropped[rref{i, k}]
			rg := op.Ranges[k]
			if !ok {
				kept = append(kept, rg)
				continue
			}
			if cut >= rg.Size {
				plan.ClippedBytes += rg.Size
				continue
			}
			rg.Size -= cut
			plan.ClippedBytes += cut
			kept = append(kept, rg)
		}
		op.Ranges = kept
	}
	// Recompute the per-origin counters against the clipped ranges.
	for i := range plan.Objects {
		recountOrigins(&plan.Objects[i])
	}
}

func recountOrigins(op *ObjectPlan) {
	op.SampledBytes = 0
	op.EstimatedBytes = 0
	o := op.Object
	for _, rg := range op.Ranges {
		firstChunk := int((rg.Base - o.Base) / o.ChunkSize)
		lastChunk := int((rg.End() - o.Base - 1) / o.ChunkSize)
		for j := firstChunk; j <= lastChunk; j++ {
			lo, hi := o.ChunkRange(j)
			if lo < rg.Base {
				lo = rg.Base
			}
			if hi > rg.End() {
				hi = rg.End()
			}
			if hi <= lo {
				continue
			}
			if op.Local.Critical[j] {
				op.SampledBytes += hi - lo
			} else {
				op.EstimatedBytes += hi - lo
			}
		}
	}
}

// RoundUpU64 rounds n up to a multiple of align (align > 0).
func RoundUpU64(n, align uint64) uint64 {
	return (n + align - 1) / align * align
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
