package core

import (
	"reflect"
	"testing"

	"atmem/internal/pebs"
)

// TestAnalyzerPolicyPlansByteIdentical pins the interface migration's
// core promise: the paper policy behind PlacementPolicy produces plans
// indistinguishable from a direct AnalyzeObserved call — same structure
// down to every float, so the refactor cannot have drifted the
// analyzer.
func TestAnalyzerPolicyPlansByteIdentical(t *testing.T) {
	for _, budget := range []uint64{0, 64 << 10, 1 << 20} {
		r := twoObjectRegistry(t)
		direct, err := AnalyzeObserved(r, 64, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		viaPolicy, err := AnalyzerPolicy{}.Rank(PolicyProfile{Registry: r, Period: 64}, budget, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, viaPolicy) {
			t.Errorf("budget %d: policy plan diverged from AnalyzeObserved:\n direct: %+v\n policy: %+v",
				budget, direct, viaPolicy)
		}
	}
}

// TestAnalyzerPolicyNames pins the enum shim naming: every label runs
// the same analyzer under one shared fingerprint, so cached plans
// recorded under the deprecated enum replay under PaperPolicy.
func TestAnalyzerPolicyNames(t *testing.T) {
	if got := (AnalyzerPolicy{}).Name(); got != "paper" {
		t.Errorf("default name = %q, want paper", got)
	}
	if got := (AnalyzerPolicy{Label: "atmem"}).Name(); got != "atmem" {
		t.Errorf("labeled name = %q", got)
	}
	if (AnalyzerPolicy{}).Fingerprint() != (AnalyzerPolicy{Label: "atmem"}).Fingerprint() {
		t.Error("analyzer fingerprint must not depend on the label")
	}
}

// TestStaticFirstFitFreeze pins the static floor's contract: the
// candidate ordering is captured at the first Rank and never revisited,
// so a profile that later crowns different chunks cannot move the
// frozen selection.
func TestStaticFirstFitFreeze(t *testing.T) {
	r := twoObjectRegistry(t)
	s := &StaticFirstFit{}
	budget := uint64(4 * DefaultConfig().MinChunkBytes)
	first, err := s.Rank(PolicyProfile{Registry: r, Period: 64}, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.SelectedBytes == 0 {
		t.Fatal("static policy selected nothing")
	}
	layout := func(p *Plan) map[string][]bool {
		out := make(map[string][]bool)
		for i := range p.Objects {
			out[p.Objects[i].Object.Name] = p.Objects[i].Local.Critical
		}
		return out
	}
	want := layout(first)

	// Flood the registry with a radically different heat profile; the
	// frozen pick list must not care.
	var flood []pebs.Sample
	cold := r.Objects()[1]
	lo, _ := cold.ChunkRange(cold.NumChunks - 1)
	for k := 0; k < 500; k++ {
		flood = append(flood, pebs.Sample{Addr: lo + uint64(k*64)})
	}
	r.AttributeSamples(flood)

	second, err := s.Rank(PolicyProfile{Registry: r, Period: 64, Epoch: 1}, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(layout(second), want) {
		t.Errorf("frozen selection moved between epochs:\n first: %v\n second: %v",
			want, layout(second))
	}
}

// TestOraclePlacementRanksByTrace pins the hindsight policy: it ignores
// the live profile entirely, promotes the traced-hottest chunks, and
// respects the budget.
func TestOraclePlacementRanksByTrace(t *testing.T) {
	r := twoObjectRegistry(t)
	hot := r.Objects()[0]
	// The trace says the LAST chunks are hot — the opposite of the
	// attributed profile, which heats chunks 0-3.
	heat := make([]float64, hot.NumChunks)
	for j := hot.NumChunks - 4; j < hot.NumChunks; j++ {
		heat[j] = 100
	}
	tr := &HeatTrace{Period: 1, Objects: map[string][]float64{"hot": heat}}
	o := &OraclePlacement{Trace: tr}

	budget := uint64(4 * DefaultConfig().MinChunkBytes)
	plan, err := o.Rank(PolicyProfile{Registry: r, Period: 64}, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	var hotPlan *ObjectPlan
	for i := range plan.Objects {
		if plan.Objects[i].Object.Name == "hot" {
			hotPlan = &plan.Objects[i]
		}
	}
	for j := 0; j < hot.NumChunks; j++ {
		wantCrit := j >= hot.NumChunks-4
		if hotPlan.Local.Critical[j] != wantCrit {
			t.Errorf("chunk %d critical = %v, want %v (oracle must follow the trace, not the profile)",
				j, hotPlan.Local.Critical[j], wantCrit)
		}
	}
	if plan.SelectedBytes > budget {
		t.Errorf("selected %d bytes over budget %d", plan.SelectedBytes, budget)
	}
}

// TestOraclePlacementBudgetAndMarginal pins greedyPlan's clipping
// semantics through the oracle: the budget fills densest-first, the
// hottest denied chunk sets MarginalDensity, and the coldest kept range
// sets ColdestKeptDensity.
func TestOraclePlacementBudgetAndMarginal(t *testing.T) {
	r := twoObjectRegistry(t)
	hot := r.Objects()[0]
	heat := make([]float64, hot.NumChunks)
	for j := range heat {
		heat[j] = float64(hot.NumChunks - j) // strictly decreasing
	}
	tr := &HeatTrace{Period: 1, Objects: map[string][]float64{"hot": heat}}
	o := &OraclePlacement{Trace: tr}

	budget := uint64(2 * DefaultConfig().MinChunkBytes)
	plan, err := o.Rank(PolicyProfile{Registry: r, Period: 64}, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.SelectedBytes != budget {
		t.Errorf("selected %d, want the full budget %d", plan.SelectedBytes, budget)
	}
	if plan.ClippedBytes == 0 {
		t.Error("nothing clipped despite a binding budget")
	}
	// Chunks 0 and 1 are hottest; chunk 2 is the first denial. The
	// oracle's reported density is the trace heat itself (already a
	// per-byte quantity).
	if plan.MarginalDensity != heat[2] {
		t.Errorf("MarginalDensity = %v, want first-denied chunk's heat %v",
			plan.MarginalDensity, heat[2])
	}
	if plan.ColdestKeptDensity <= plan.MarginalDensity || plan.ColdestKeptDensity > heat[0] {
		t.Errorf("ColdestKeptDensity = %v, want within kept range (%v, %v]",
			plan.ColdestKeptDensity, heat[1], heat[0])
	}
}

// TestOraclePlacementRatioObjective pins the Dinkelbach path: with the
// measured byte channels present, the oracle maximizes the fast-share
// ratio rather than ranking on scalar heat, and the two diverge when
// the fixed-point share is far from one half. Here the budget captures
// a dominant hot core, so the achieved share θ is high and the last
// slot is decided by slow-byte REMOVAL: the grain-amplified chunk 1
// must beat chunk 0 even though chunk 0's scalar heat is higher.
func TestOraclePlacementRatioObjective(t *testing.T) {
	r := twoObjectRegistry(t)
	hot := r.Objects()[0]
	n := hot.NumChunks
	heat := make([]float64, n)
	fast := make([]float64, n)
	slow := make([]float64, n)
	size := float64(hot.ChunkBytes(0))
	// Chunk 0: stream-like, heat 4.2. Chunk 1: grain-amplified, heat
	// 4.0. Chunks 2..n-3: the hot core the budget always takes.
	// Chunks n-2, n-1: near-idle.
	fast[0], slow[0] = 2.0*size, 2.2*size
	fast[1], slow[1] = 1.0*size, 3.0*size
	for j := 2; j < n-2; j++ {
		fast[j], slow[j] = 10*size, 10*size
	}
	for j := n - 2; j < n; j++ {
		fast[j], slow[j] = 0.01*size, 0.01*size
	}
	for j := 0; j < n; j++ {
		heat[j] = (fast[j] + slow[j]) / size
	}
	tr := &HeatTrace{
		Period:    1,
		Objects:   map[string][]float64{"hot": heat},
		FastBytes: map[string][]float64{"hot": fast},
		SlowBytes: map[string][]float64{"hot": slow},
	}
	o := &OraclePlacement{Trace: tr}
	// Budget = hot core + exactly one of chunks {0, 1}.
	budget := uint64(n-3) * hot.ChunkBytes(0)
	plan, err := o.Rank(PolicyProfile{Registry: r, Period: 64}, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	var hotPlan *ObjectPlan
	for i := range plan.Objects {
		if plan.Objects[i].Object.Name == "hot" {
			hotPlan = &plan.Objects[i]
		}
	}
	// Selecting chunk 1 keeps the larger slow-byte mass OUT of the
	// denominator: share(1) = 121/123.22 > share(0) = 122/125.02.
	if !hotPlan.Local.Critical[1] || hotPlan.Local.Critical[0] {
		t.Errorf("ratio objective kept scalar-heat order (crit[0]=%v crit[1]=%v); "+
			"want the grain-amplified chunk 1",
			hotPlan.Local.Critical[0], hotPlan.Local.Critical[1])
	}
}

// TestOracleValidate pins construction-time validation: a missing trace
// must surface before any Rank.
func TestOracleValidate(t *testing.T) {
	if err := (&OraclePlacement{}).Validate(); err == nil {
		t.Error("nil trace must fail validation")
	}
	if err := (&OraclePlacement{Trace: &HeatTrace{}}).Validate(); err == nil {
		t.Error("empty trace must fail validation")
	}
	tr := &HeatTrace{Objects: map[string][]float64{"x": {1}}}
	if err := (&OraclePlacement{Trace: tr}).Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

// TestHeatTraceFingerprint pins that the fingerprint covers trace
// content — including the byte channels — so a different recording can
// never share a plan-cache signature.
func TestHeatTraceFingerprint(t *testing.T) {
	a := &HeatTrace{Period: 1, Objects: map[string][]float64{"x": {1, 2}}}
	b := &HeatTrace{Period: 1, Objects: map[string][]float64{"x": {1, 2}}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical traces must share a fingerprint")
	}
	c := &HeatTrace{Period: 1, Objects: map[string][]float64{"x": {1, 3}}}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different heat must change the fingerprint")
	}
	d := &HeatTrace{
		Period:    1,
		Objects:   map[string][]float64{"x": {1, 2}},
		FastBytes: map[string][]float64{"x": {64, 64}},
		SlowBytes: map[string][]float64{"x": {256, 64}},
	}
	if a.Fingerprint() == d.Fingerprint() {
		t.Error("byte channels must be covered by the fingerprint")
	}
}
