package core

import (
	"encoding/json"
	"reflect"
	"testing"
)

// syntheticTrainSet builds a deterministic training set whose labels
// are a known monotone function of two features, so a working trainer
// must discover positive weight on both.
func syntheticTrainSet(n int) []TrainSample {
	out := make([]TrainSample, 0, n)
	for i := 0; i < n; i++ {
		var f FeatureVector
		f[FeatBias] = 1
		f[FeatReadDensity] = float64(i%17) * 0.3
		f[FeatWriteDensity] = float64(i%5) * 0.7
		f[FeatSizeLog] = 21
		f[FeatShare] = float64(i%9) / 9
		label := 3*f[FeatReadDensity] + f[FeatWriteDensity]
		out = append(out, TrainSample{F: f, Label: label})
	}
	return out
}

// TestTrainPairwiseLearnsOrdering pins the trainer: on a synthetic set
// with a linear ground truth it must reduce pair violations massively
// and produce scores that rank a clearly hotter sample above a clearly
// colder one.
func TestTrainPairwiseLearnsOrdering(t *testing.T) {
	samples := syntheticTrainSet(300)
	w, st, err := TrainPairwise(samples, TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != 300 || st.Pairs == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.FinalViolations*5 > st.InitialViolations {
		t.Errorf("training barely helped: violations %d -> %d",
			st.InitialViolations, st.FinalViolations)
	}
	var hotF, coldF FeatureVector
	hotF[FeatBias], coldF[FeatBias] = 1, 1
	hotF[FeatSizeLog], coldF[FeatSizeLog] = 21, 21
	hotF[FeatReadDensity] = 4.8 // label 14.4+
	coldF[FeatReadDensity] = 0.3
	if w.Score(hotF) <= w.Score(coldF) {
		t.Errorf("trained model ranks cold above hot: %v vs %v",
			w.Score(hotF), w.Score(coldF))
	}
}

// TestTrainPairwiseDeterministic pins the reproducibility contract:
// identical inputs must produce bit-identical weights.
func TestTrainPairwiseDeterministic(t *testing.T) {
	a, _, err := TrainPairwise(syntheticTrainSet(120), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := TrainPairwise(syntheticTrainSet(120), TrainConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two identical training runs produced different weights")
	}
}

// TestWeightsJSONRoundTrip pins the serialization format cmd/atmem-train
// writes and LearnedPolicy loads.
func TestWeightsJSONRoundTrip(t *testing.T) {
	w, _, err := TrainPairwise(syntheticTrainSet(60), TrainConfig{Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	data, err := w.MarshalJSONIndented()
	if err != nil {
		t.Fatal(err)
	}
	got, err := WeightsFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w, got) {
		t.Errorf("round trip diverged:\n in:  %+v\n out: %+v", w, got)
	}
}

// TestWeightsValidate is the schema gate: version or arity mismatches
// must be rejected before a learned policy can rank anything.
func TestWeightsValidate(t *testing.T) {
	good, _, err := TrainPairwise(syntheticTrainSet(60), TrainConfig{Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("trained weights invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Weights)
	}{
		{"bad-version", func(w *Weights) { w.Version = WeightsVersion + 1 }},
		{"short-weights", func(w *Weights) { w.W = w.W[:NumFeatures-1] }},
		{"short-mean", func(w *Weights) { w.Mean = w.Mean[:1] }},
		{"short-scale", func(w *Weights) { w.Scale = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := good
			w.W = append([]float64(nil), good.W...)
			w.Mean = append([]float64(nil), good.Mean...)
			w.Scale = append([]float64(nil), good.Scale...)
			tc.mutate(&w)
			if err := w.Validate(); err == nil {
				t.Error("mutated weights passed validation")
			}
			data, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := WeightsFromJSON(data); err == nil {
				t.Error("WeightsFromJSON accepted malformed weights")
			}
		})
	}
}

// TestFeaturizeDeterministic pins the extraction contract Featurize
// documents: the same attributed counters produce bit-identical feature
// vectors on repeated calls (the cross-GOMAXPROCS half of the contract
// lives in the root package's TestFeatureExtractionDeterministic, which
// runs full simulated workloads).
func TestFeaturizeDeterministic(t *testing.T) {
	r := twoObjectRegistry(t)
	a := Featurize(r, 64, 3)
	b := Featurize(r, 64, 3)
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated Featurize calls diverged on identical counters")
	}
	if len(a) != r.TotalChunks() {
		t.Errorf("featurized %d chunks, registry has %d", len(a), r.TotalChunks())
	}
	// Spot-check schema invariants: bias is 1, epoch lands in FeatPhase.
	for _, cf := range a {
		if cf.F[FeatBias] != 1 {
			t.Fatalf("chunk %s/%d bias = %v", cf.Object, cf.Chunk, cf.F[FeatBias])
		}
		if cf.F[FeatPhase] != 3 {
			t.Fatalf("chunk %s/%d phase = %v, want 3", cf.Object, cf.Chunk, cf.F[FeatPhase])
		}
	}
}

// TestLearnedRankPolicyEvidenceGate pins the honesty rule: the learned
// policy only ranks chunks with sampled evidence (or a sampled
// immediate neighbor) — it must not promote chunks of an object the
// profiler never saw.
func TestLearnedRankPolicyEvidenceGate(t *testing.T) {
	r := twoObjectRegistry(t) // "hot" sampled everywhere, "cold" unsampled
	w, _, err := TrainPairwise(syntheticTrainSet(60), TrainConfig{Iters: 20})
	if err != nil {
		t.Fatal(err)
	}
	pol := &LearnedRankPolicy{W: w}
	plan, err := pol.Rank(PolicyProfile{Registry: r, Period: 64}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Objects {
		op := &plan.Objects[i]
		if op.Object.Name == "cold" && op.Local.NumCritical != 0 {
			t.Errorf("learned policy promoted %d chunks of the never-sampled object",
				op.Local.NumCritical)
		}
	}
}
