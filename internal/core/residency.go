package core

import "sort"

// Residency tracks, per registered object, which data chunks currently
// reside on the fast tier, plus a per-chunk cold-epoch hysteresis
// counter. It is the state that turns a sequence of independent
// placement plans into delta plans: each epoch the analyzer's fresh
// selection is diffed against residency, so only newly-hot chunks are
// promoted and only chunks cold for DemoteAfterEpochs consecutive
// epochs are demoted back to the slow tier.
//
// Residency state changes only when a migration commits (MarkMoved) —
// a skipped or rolled-back region keeps its previous placement and its
// previous residency, so the two can never drift apart.
//
// Residency is not safe for concurrent use; the runtime serializes
// epochs.
type Residency struct {
	objs map[uint64]*objResidency // keyed by object base
}

type objResidency struct {
	obj      *DataObject
	resident []bool // chunk currently fast-resident
	cold     []int  // consecutive epochs resident but unselected
}

// NewResidency builds an empty residency map.
func NewResidency() *Residency {
	return &Residency{objs: make(map[uint64]*objResidency)}
}

func (r *Residency) ensure(o *DataObject) *objResidency {
	st, ok := r.objs[o.Base]
	if !ok {
		st = &objResidency{
			obj:      o,
			resident: make([]bool, o.NumChunks),
			cold:     make([]int, o.NumChunks),
		}
		r.objs[o.Base] = st
	}
	return st
}

// Drop forgets every chunk of the object based at base. Runtime.Free
// calls it so a freed-then-reallocated address range cannot inherit
// stale residency or hysteresis state.
func (r *Residency) Drop(base uint64) {
	delete(r.objs, base)
}

// Tracked reports whether the object based at base has residency state.
func (r *Residency) Tracked(base uint64) bool {
	_, ok := r.objs[base]
	return ok
}

// Resident reports whether chunk j of o is fast-resident.
func (r *Residency) Resident(o *DataObject, j int) bool {
	st, ok := r.objs[o.Base]
	return ok && st.resident[j]
}

// ColdEpochs returns chunk j's hysteresis counter.
func (r *Residency) ColdEpochs(o *DataObject, j int) int {
	st, ok := r.objs[o.Base]
	if !ok {
		return 0
	}
	return st.cold[j]
}

// ResidentBytes sums the bytes of every fast-resident chunk.
func (r *Residency) ResidentBytes() uint64 {
	var n uint64
	for _, st := range r.objs {
		for j, res := range st.resident {
			if res {
				n += st.obj.ChunkBytes(j)
			}
		}
	}
	return n
}

// MarkMoved records one committed migration range of object o:
// fast=true marks the covered chunks fast-resident (promotion),
// fast=false clears them (demotion). Either way the chunks' hysteresis
// counters reset. Moved regions are built from chunk ranges, so a chunk
// changes state when the region covers it through the object's end;
// page-alignment slack past the object is ignored.
func (r *Residency) MarkMoved(o *DataObject, base, size uint64, fast bool) {
	st := r.ensure(o)
	end := base + size
	if oEnd := o.Base + o.Size; end > oEnd {
		end = oEnd
	}
	for j := 0; j < o.NumChunks; j++ {
		lo, hi := o.ChunkRange(j)
		if hi <= base || lo >= end {
			continue
		}
		if lo >= base && hi <= end {
			st.resident[j] = fast
			st.cold[j] = 0
		}
	}
}

// Delta is the residency-aware difference between a fresh placement
// plan and the current fast-tier residency: what must actually move.
type Delta struct {
	// Promotions are the selected-but-not-resident ranges, in address
	// order; migrating them to the fast tier realizes the plan.
	Promotions []Range
	// Demotions are the resident ranges whose chunks have been outside
	// the selection for at least the hysteresis window, in address
	// order; they return to the slow tier, reclaiming budget.
	Demotions []Range
	// PromoteBytes and DemoteBytes total the two direction's ranges.
	PromoteBytes uint64
	DemoteBytes  uint64
	// ResidentSelectedBytes counts selected bytes already in place —
	// the re-migration the delta avoided.
	ResidentSelectedBytes uint64
}

// Empty reports whether the delta schedules no movement at all — the
// steady state of a converged epoch loop.
func (d *Delta) Empty() bool {
	return len(d.Promotions) == 0 && len(d.Demotions) == 0
}

// Candidate is one fast-resident chunk outside the current selection
// whose hysteresis window has not yet expired — the pool pressure
// demotion draws from, coldest first.
type Candidate struct {
	// Range is the chunk's byte range (clipped to the object).
	Range Range
	// Priority is the chunk's current-epoch priority (misses/byte); the
	// coldest candidate has the lowest.
	Priority float64
}

// Advance folds one epoch's plan into the hysteresis counters and
// returns the delta plus the pressure-demotion candidates:
//
//   - selected chunks reset their cold counters; the ones not yet
//     resident become promotions;
//   - resident chunks outside the selection age one epoch; the ones at
//     or past demoteAfter become demotions, the younger ones become
//     candidates, ordered coldest-first (ties by address);
//   - adjacent chunks merge into maximal contiguous ranges.
//
// Advance must be called exactly once per migrating epoch; breaker-
// skipped epochs do not call it, freezing the counters (a frozen epoch
// carries no placement signal).
func (r *Residency) Advance(plan *Plan, demoteAfter int) (Delta, []Candidate) {
	var d Delta
	var cands []Candidate
	for i := range plan.Objects {
		op := &plan.Objects[i]
		o := op.Object
		st := r.ensure(o)
		selected := selectedChunks(op)

		var promo, demo chunkRun
		for j := 0; j < o.NumChunks; j++ {
			bytes := o.ChunkBytes(j)
			switch {
			case selected[j] && !st.resident[j]:
				st.cold[j] = 0
				promo.extend(o, j, op.Local.PR[j])
				d.PromoteBytes += bytes
			case selected[j]: // and resident
				st.cold[j] = 0
				d.ResidentSelectedBytes += bytes
				promo.flush(&d.Promotions)
			case st.resident[j]: // and not selected
				st.cold[j]++
				promo.flush(&d.Promotions)
				if st.cold[j] >= demoteAfter {
					demo.extend(o, j, op.Local.PR[j])
					d.DemoteBytes += bytes
					continue
				}
				lo, hi := o.ChunkRange(j)
				cands = append(cands, Candidate{
					Range:    Range{Base: lo, Size: hi - lo, Density: op.Local.PR[j]},
					Priority: op.Local.PR[j],
				})
			default:
				st.cold[j] = 0
				promo.flush(&d.Promotions)
			}
			// Reached only when chunk j did not extend the demotion run
			// (that arm continues above), so the run ends here.
			demo.flush(&d.Demotions)
		}
		promo.flush(&d.Promotions)
		demo.flush(&d.Demotions)
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].Priority != cands[b].Priority {
			return cands[a].Priority < cands[b].Priority
		}
		return cands[a].Range.Base < cands[b].Range.Base
	})
	return d, cands
}

// chunkRun accumulates adjacent chunks into one contiguous Range.
type chunkRun struct {
	open  bool
	base  uint64
	end   uint64
	prSum float64
	n     int
}

func (cr *chunkRun) extend(o *DataObject, j int, pr float64) {
	lo, hi := o.ChunkRange(j)
	if !cr.open {
		*cr = chunkRun{open: true, base: lo, end: hi, prSum: pr, n: 1}
		return
	}
	cr.end = hi
	cr.prSum += pr
	cr.n++
}

func (cr *chunkRun) flush(out *[]Range) {
	if !cr.open {
		return
	}
	*out = append(*out, Range{
		Base:    cr.base,
		Size:    cr.end - cr.base,
		Density: cr.prSum / float64(cr.n),
	})
	cr.open = false
}

// selectedChunks maps the plan's (chunk-aligned) ranges back to a
// per-chunk selection mask: a chunk is selected when a range covers it
// fully. Budget truncation trims ranges at chunk boundaries, so partial
// coverage only arises at a clipped tail chunk, which stays unselected
// (the delta migrates slightly less than the plan rather than more).
func selectedChunks(op *ObjectPlan) []bool {
	o := op.Object
	sel := make([]bool, o.NumChunks)
	for _, rg := range op.Ranges {
		first := int((rg.Base - o.Base) / o.ChunkSize)
		for j := first; j < o.NumChunks; j++ {
			lo, hi := o.ChunkRange(j)
			if lo >= rg.End() {
				break
			}
			if lo >= rg.Base && hi <= rg.End() {
				sel[j] = true
			}
		}
	}
	return sel
}
