package core

import (
	"testing"
	"testing/quick"

	"atmem/internal/pebs"
)

// makeObject builds a registered object with the given per-chunk read
// sample counts.
func makeObject(t *testing.T, counts []uint64) (*Registry, *DataObject) {
	t.Helper()
	cfg := DefaultConfig()
	r := NewRegistry(cfg)
	size := uint64(len(counts)) * cfg.MinChunkBytes
	o, err := r.Register("obj", 1<<30, size)
	if err != nil {
		t.Fatal(err)
	}
	if o.NumChunks != len(counts) {
		t.Fatalf("chunks %d, want %d", o.NumChunks, len(counts))
	}
	var samples []pebs.Sample
	for j, c := range counts {
		lo, _ := o.ChunkRange(j)
		for k := uint64(0); k < c; k++ {
			samples = append(samples, pebs.Sample{Addr: lo + k*64})
		}
	}
	r.AttributeSamples(samples)
	return r, o
}

func TestSelectLocalSkewedDistribution(t *testing.T) {
	// Two chunks at ~100 samples, fourteen at ~2: the knee must fall
	// between the clusters, selecting exactly the hot pair (§4.2's
	// skewed case: fewer than top-N%).
	counts := []uint64{100, 98, 2, 3, 1, 2, 3, 2, 1, 3, 2, 2, 1, 3, 2, 2}
	_, o := makeObject(t, counts)
	sel := SelectLocal(o, 64, DefaultConfig())
	if sel.Uniform {
		t.Fatal("skewed distribution classified uniform")
	}
	if sel.NumCritical != 2 || !sel.Critical[0] || !sel.Critical[1] {
		t.Errorf("critical = %v (n=%d), want first two chunks", sel.Critical, sel.NumCritical)
	}
	if sel.Weight == 0 {
		t.Error("weight not computed")
	}
}

func TestSelectLocalUniformDistribution(t *testing.T) {
	// Poisson-ish counts around a common mean: no internal structure,
	// so the object defers to the global stage.
	counts := []uint64{30, 33, 29, 31, 34, 28, 30, 32, 31, 29, 33, 30, 28, 31, 32, 30}
	_, o := makeObject(t, counts)
	sel := SelectLocal(o, 64, DefaultConfig())
	if !sel.Uniform {
		t.Error("uniform distribution not classified uniform")
	}
	if sel.NumCritical != 0 {
		t.Error("uniform object selected chunks locally")
	}
	if sel.MeanPR <= 0 {
		t.Error("mean priority missing")
	}
}

func TestSelectLocalZeroSamples(t *testing.T) {
	_, o := makeObject(t, make([]uint64, 8))
	sel := SelectLocal(o, 64, DefaultConfig())
	if sel.NumCritical != 0 || sel.Uniform {
		t.Errorf("cold object: critical=%d uniform=%v", sel.NumCritical, sel.Uniform)
	}
}

func TestSelectLocalPriorityNormalizedBySize(t *testing.T) {
	counts := []uint64{50, 0, 0, 0, 0, 0, 0, 0, 50, 0, 0, 0, 0, 0, 0, 0}
	_, o := makeObject(t, counts)
	sel := SelectLocal(o, 64, DefaultConfig())
	// PR = count * period / chunkSize (Eq. 1).
	want := 50.0 * 64 / float64(o.ChunkSize)
	if sel.PR[0] != want || sel.PR[8] != want {
		t.Errorf("PR = %v/%v, want %v", sel.PR[0], sel.PR[8], want)
	}
}

func TestSelectLocalFloorExcludesSubSampleChunks(t *testing.T) {
	// The theoretical minimum priority (Eq. 2's sampling-rate term):
	// chunks with zero samples can never be sampled-critical even if
	// the threshold otherwise lands at zero.
	counts := []uint64{5, 0, 0, 0, 0, 0, 0, 0}
	_, o := makeObject(t, counts)
	sel := SelectLocal(o, 64, DefaultConfig())
	for j := 1; j < len(counts); j++ {
		if sel.Critical[j] {
			t.Errorf("zero-sample chunk %d selected", j)
		}
	}
	if !sel.Critical[0] {
		t.Error("the only sampled chunk not selected")
	}
}

func TestSelectLocalEmptyObject(t *testing.T) {
	o := &DataObject{}
	sel := SelectLocal(o, 64, DefaultConfig())
	if sel.NumCritical != 0 || len(sel.PR) != 0 {
		t.Error("empty object misbehaved")
	}
}

func TestDispersionIndex(t *testing.T) {
	if got := dispersionIndex(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := dispersionIndex([]uint64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant counts = %v, want 0", got)
	}
	// Strong structure: variance far above mean.
	hot := dispersionIndex([]uint64{100, 0, 0, 0, 100, 0, 0, 0})
	if hot < 10 {
		t.Errorf("structured dispersion %v too low", hot)
	}
	// Poisson-like: variance ≈ mean.
	poisson := dispersionIndex([]uint64{3, 5, 4, 6, 2, 5, 4, 3, 5, 4, 6, 3})
	if poisson > 2 {
		t.Errorf("noise dispersion %v too high", poisson)
	}
}

// Property: local selection invariants across random sample patterns —
// the threshold never falls below the sampling floor, only sampled
// chunks can be critical, and the weight is the mean priority of the
// selected chunks.
func TestSelectLocalProperties(t *testing.T) {
	cfg := DefaultConfig()
	r := NewRegistry(cfg)
	o, err := r.Register("p", 1<<30, 32*cfg.MinChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	check := func(raw []uint16) bool {
		r.ResetSamples()
		var samples []pebs.Sample
		for j := 0; j < o.NumChunks && j < len(raw); j++ {
			lo, _ := o.ChunkRange(j)
			for k := 0; k < int(raw[j]%512); k++ {
				samples = append(samples, pebs.Sample{Addr: lo + uint64(k*8)%o.ChunkSize})
			}
		}
		r.AttributeSamples(samples)
		sel := SelectLocal(o, 64, cfg)
		floor := cfg.FloorFraction * 64 / float64(o.ChunkSize)
		if len(samples) > 0 && !sel.Uniform && sel.Theta < floor {
			return false
		}
		n := 0
		var prSum float64
		for j, crit := range sel.Critical {
			if crit {
				if o.ReadSamples()[j] == 0 {
					return false // unsampled chunk sampled-critical
				}
				n++
				prSum += sel.PR[j]
			}
		}
		if n != sel.NumCritical {
			return false
		}
		if n > 0 {
			want := prSum / float64(n)
			if diff := sel.Weight - want; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
