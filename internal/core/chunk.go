// Package core implements the paper's primary contribution: ATMem's
// analyzer. It turns registered data objects into adaptive-granularity
// data chunks (§4.1), ranks chunks inside each object with the hybrid
// local selection of Eq. 1–3 (§4.2), patches sampling loss with the m-ary
// tree-based global promotion of Eq. 4–5 (§4.3), and emits a placement
// plan of contiguous ranges for the optimizer to migrate (§4.4).
package core

import (
	"fmt"
	"sort"

	"atmem/internal/pebs"
)

// Config holds the analyzer's tunables. The zero value is not usable; use
// DefaultConfig and override fields.
type Config struct {
	// TargetChunksPerObject controls adaptive chunk granularity: the
	// chunk size of an object is chosen so the object splits into about
	// this many chunks (§4.1), bounded by the chunk size limits below.
	// More chunks means finer placement but more metadata and profiling
	// sensitivity.
	TargetChunksPerObject int
	// MinChunkBytes and MaxChunkBytes bound the adaptive chunk size.
	// The minimum must be at least a page for migration to make sense.
	MinChunkBytes uint64
	MaxChunkBytes uint64
	// PercentileN is the conventional top-N anchor of Eq. 2 (P_n): when
	// the derivative-based split degenerates (a flat priority
	// distribution), the threshold falls back to this percentile.
	PercentileN float64
	// M is the arity of the promotion tree (§4.3.1).
	M int
	// BaseTRThreshold is θ(TR), the pre-adaptation tree-ratio threshold
	// of Eq. 5.
	BaseTRThreshold float64
	// Epsilon is ε of Eq. 5, the theoretical minimum tree-ratio
	// threshold. Zero means "use 1/M" (the paper's octree example uses
	// ε = 0.125 = 1/8). Sweeping this knob produces Figures 9 and 10.
	Epsilon float64
	// FloorFraction scales the theoretical minimum priority floor of
	// Eq. 2: a chunk must have at least FloorFraction of one sample's
	// worth of priority to be sampled-critical.
	FloorFraction float64
	// TargetSamplesPerChunk feeds the profiler's automatic sampling
	// period (§5.1).
	TargetSamplesPerChunk float64
	// DispersionThreshold classifies an object as Uniform when the
	// variance-to-mean ratio of its per-chunk sample counts falls
	// below it (pure Poisson noise gives ≈ 1).
	DispersionThreshold float64
	// UniformHotFactor decides uniform objects globally: a uniform
	// object is selected whole when its mean priority exceeds this
	// multiple of the cross-object average density.
	UniformHotFactor float64
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation unless a knob is being swept.
func DefaultConfig() Config {
	return Config{
		TargetChunksPerObject: 256,
		MinChunkBytes:         16 << 10,
		MaxChunkBytes:         4 << 20,
		PercentileN:           90,
		M:                     4,
		BaseTRThreshold:       0.5,
		Epsilon:               0, // 1/M
		FloorFraction:         0.99,
		TargetSamplesPerChunk: 32,
		DispersionThreshold:   2.5,
		UniformHotFactor:      2,
	}
}

// EffectiveEpsilon resolves the ε default.
func (c Config) EffectiveEpsilon() float64 {
	if c.Epsilon > 0 {
		return c.Epsilon
	}
	if c.M > 0 {
		return 1 / float64(c.M)
	}
	return 0.25
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.TargetChunksPerObject <= 0 {
		return fmt.Errorf("core: TargetChunksPerObject must be positive")
	}
	if c.MinChunkBytes == 0 || c.MinChunkBytes&(c.MinChunkBytes-1) != 0 {
		return fmt.Errorf("core: MinChunkBytes must be a positive power of two")
	}
	if c.MaxChunkBytes < c.MinChunkBytes {
		return fmt.Errorf("core: MaxChunkBytes below MinChunkBytes")
	}
	if c.PercentileN < 0 || c.PercentileN > 100 {
		return fmt.Errorf("core: PercentileN out of [0,100]")
	}
	if c.M < 2 {
		return fmt.Errorf("core: tree arity M must be at least 2")
	}
	if c.BaseTRThreshold <= 0 || c.BaseTRThreshold > 1 {
		return fmt.Errorf("core: BaseTRThreshold must be in (0,1]")
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("core: Epsilon must be in [0,1]")
	}
	if c.DispersionThreshold < 0 {
		return fmt.Errorf("core: DispersionThreshold must be non-negative")
	}
	if c.UniformHotFactor <= 0 {
		return fmt.Errorf("core: UniformHotFactor must be positive")
	}
	return nil
}

// DataObject is one registered allocation (a d_i of §4.1), divided into
// NumChunks equal-sized data chunks DC_ij. The final chunk may be
// logically short when the object size is not a multiple of the chunk
// size; accounting always clips to the object's true size.
type DataObject struct {
	// ID is the registration order index.
	ID int
	// Name is the caller-supplied label (for reports only).
	Name string
	// Base and Size delimit the object's virtual address range.
	Base uint64
	Size uint64
	// ChunkSize is the adaptive chunk granularity chosen at
	// registration.
	ChunkSize uint64
	// NumChunks is ceil(Size/ChunkSize).
	NumChunks int

	// readSamples and writeSamples count attributed profiler samples
	// per chunk.
	readSamples  []uint64
	writeSamples []uint64
}

// ChunkSizeFor computes the adaptive chunk size for an object of the given
// size (§4.1): the largest power of two that still yields about
// TargetChunksPerObject chunks, clamped to the configured bounds.
func ChunkSizeFor(size uint64, cfg Config) uint64 {
	if size == 0 {
		return cfg.MinChunkBytes
	}
	want := size / uint64(cfg.TargetChunksPerObject)
	cs := cfg.MinChunkBytes
	for cs < want && cs < cfg.MaxChunkBytes {
		cs <<= 1
	}
	if cs > cfg.MaxChunkBytes {
		cs = cfg.MaxChunkBytes
	}
	return cs
}

// ChunkRange returns the byte range [lo, hi) of chunk j, clipped to the
// object's size.
func (o *DataObject) ChunkRange(j int) (lo, hi uint64) {
	lo = o.Base + uint64(j)*o.ChunkSize
	hi = lo + o.ChunkSize
	if end := o.Base + o.Size; hi > end {
		hi = end
	}
	return lo, hi
}

// ChunkBytes returns the length of chunk j in bytes.
func (o *DataObject) ChunkBytes(j int) uint64 {
	lo, hi := o.ChunkRange(j)
	return hi - lo
}

// ReadSamples exposes the per-chunk read-miss sample counts.
func (o *DataObject) ReadSamples() []uint64 { return o.readSamples }

// WriteSamples exposes the per-chunk write-miss sample counts.
func (o *DataObject) WriteSamples() []uint64 { return o.writeSamples }

// Registry tracks all registered data objects and attributes profiler
// samples to chunks. It is not safe for concurrent mutation; the runtime
// serializes registration and analysis between phases.
type Registry struct {
	cfg     Config
	objects []*DataObject // sorted by Base
	nextID  int
}

// NewRegistry builds an empty registry. It panics on invalid cfg.
func NewRegistry(cfg Config) *Registry {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Registry{cfg: cfg}
}

// Config returns the analyzer configuration in force.
func (r *Registry) Config() Config { return r.cfg }

// SetConfig replaces the configuration. Chunk sizes of already registered
// objects are unchanged.
func (r *Registry) SetConfig(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	r.cfg = cfg
	return nil
}

// Register adds an object at [base, base+size). Objects must not overlap.
func (r *Registry) Register(name string, base, size uint64) (*DataObject, error) {
	if size == 0 {
		return nil, fmt.Errorf("core: register %q with zero size", name)
	}
	i := sort.Search(len(r.objects), func(i int) bool { return r.objects[i].Base >= base })
	if i < len(r.objects) && r.objects[i].Base < base+size {
		return nil, fmt.Errorf("core: register %q overlaps %q", name, r.objects[i].Name)
	}
	if i > 0 && r.objects[i-1].Base+r.objects[i-1].Size > base {
		return nil, fmt.Errorf("core: register %q overlaps %q", name, r.objects[i-1].Name)
	}
	cs := ChunkSizeFor(size, r.cfg)
	n := int((size + cs - 1) / cs)
	o := &DataObject{
		ID:           r.nextID,
		Name:         name,
		Base:         base,
		Size:         size,
		ChunkSize:    cs,
		NumChunks:    n,
		readSamples:  make([]uint64, n),
		writeSamples: make([]uint64, n),
	}
	r.nextID++
	r.objects = append(r.objects, nil)
	copy(r.objects[i+1:], r.objects[i:])
	r.objects[i] = o
	return o, nil
}

// Unregister removes the object based at base.
func (r *Registry) Unregister(base uint64) error {
	i := sort.Search(len(r.objects), func(i int) bool { return r.objects[i].Base >= base })
	if i == len(r.objects) || r.objects[i].Base != base {
		return fmt.Errorf("core: unregister of unknown base %#x", base)
	}
	r.objects = append(r.objects[:i], r.objects[i+1:]...)
	return nil
}

// Objects returns the registered objects in address order. The slice must
// not be mutated.
func (r *Registry) Objects() []*DataObject { return r.objects }

// Find returns the object containing addr and the chunk index within it.
func (r *Registry) Find(addr uint64) (*DataObject, int, bool) {
	i := sort.Search(len(r.objects), func(i int) bool { return r.objects[i].Base > addr })
	if i == 0 {
		return nil, 0, false
	}
	o := r.objects[i-1]
	if addr >= o.Base+o.Size {
		return nil, 0, false
	}
	return o, int((addr - o.Base) / o.ChunkSize), true
}

// AttributeSamples folds profiler samples into per-chunk counters.
// Samples outside registered objects (stack, runtime noise) are dropped,
// as the real ATMem drops samples that do not resolve to a registered
// allocation. It returns how many samples were attributed.
func (r *Registry) AttributeSamples(samples []pebs.Sample) int {
	attributed := 0
	for _, s := range samples {
		o, j, ok := r.Find(s.Addr)
		if !ok {
			continue
		}
		if s.Write {
			o.writeSamples[j]++
		} else {
			o.readSamples[j]++
		}
		attributed++
	}
	return attributed
}

// ResetSamples zeroes all per-chunk counters.
func (r *Registry) ResetSamples() {
	for _, o := range r.objects {
		for j := range o.readSamples {
			o.readSamples[j] = 0
			o.writeSamples[j] = 0
		}
	}
}

// TotalBytes sums the sizes of all registered objects.
func (r *Registry) TotalBytes() uint64 {
	var n uint64
	for _, o := range r.objects {
		n += o.Size
	}
	return n
}

// TotalChunks sums the chunk counts of all registered objects.
func (r *Registry) TotalChunks() int {
	n := 0
	for _, o := range r.objects {
		n += o.NumChunks
	}
	return n
}
