package core

import (
	"testing"
	"testing/quick"

	"atmem/internal/pebs"
)

func TestChunkSizeAdaptsToObjectSize(t *testing.T) {
	cfg := DefaultConfig()
	small := ChunkSizeFor(64<<10, cfg)
	big := ChunkSizeFor(64<<20, cfg)
	if small != cfg.MinChunkBytes {
		t.Errorf("small object chunk %d, want min %d", small, cfg.MinChunkBytes)
	}
	if big <= small {
		t.Error("bigger object should get bigger chunks")
	}
	if big > cfg.MaxChunkBytes {
		t.Errorf("chunk %d exceeds max", big)
	}
}

// Property: chunks tile the object exactly — sizes sum to the object
// size and ranges are contiguous and non-overlapping.
func TestChunksPartitionObject(t *testing.T) {
	cfg := DefaultConfig()
	check := func(rawSize uint32) bool {
		size := uint64(rawSize)%(64<<20) + 1
		r := NewRegistry(cfg)
		o, err := r.Register("x", 1<<30, size)
		if err != nil {
			return false
		}
		var total uint64
		prevHi := o.Base
		for j := 0; j < o.NumChunks; j++ {
			lo, hi := o.ChunkRange(j)
			if lo != prevHi || hi < lo {
				return false
			}
			total += hi - lo
			prevHi = hi
		}
		return total == size && prevHi == o.Base+size
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestRegisterRejectsOverlap(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	if _, err := r.Register("a", 0x100000, 0x10000); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("b", 0x108000, 0x10000); err == nil {
		t.Error("overlapping registration accepted")
	}
	if _, err := r.Register("c", 0xF8000, 0x10000); err == nil {
		t.Error("overlap from below accepted")
	}
	if _, err := r.Register("d", 0x110000, 0x10000); err != nil {
		t.Errorf("adjacent registration rejected: %v", err)
	}
}

func TestRegisterZeroSize(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	if _, err := r.Register("z", 0, 0); err == nil {
		t.Error("zero-size registration accepted")
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	o, err := r.Register("a", 0x100000, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Unregister(o.Base); err != nil {
		t.Fatal(err)
	}
	if len(r.Objects()) != 0 {
		t.Error("object still registered")
	}
	if err := r.Unregister(o.Base); err == nil {
		t.Error("double unregister accepted")
	}
}

func TestFindResolvesAddressToChunk(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	o, err := r.Register("a", 1<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	obj, chunk, ok := r.Find(o.Base + o.ChunkSize + 5)
	if !ok || obj != o || chunk != 1 {
		t.Errorf("Find = %v,%d,%v", obj, chunk, ok)
	}
	if _, _, ok := r.Find(o.Base - 1); ok {
		t.Error("Find resolved address below object")
	}
	if _, _, ok := r.Find(o.Base + o.Size); ok {
		t.Error("Find resolved address past object")
	}
}

func TestAttributeSamples(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	o, err := r.Register("a", 1<<20, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	samples := []pebs.Sample{
		{Addr: o.Base, Write: false},
		{Addr: o.Base + o.ChunkSize, Write: false},
		{Addr: o.Base + o.ChunkSize, Write: true},
		{Addr: 0x10, Write: false}, // outside any object: dropped
	}
	if n := r.AttributeSamples(samples); n != 3 {
		t.Errorf("attributed %d, want 3", n)
	}
	if o.ReadSamples()[0] != 1 || o.ReadSamples()[1] != 1 {
		t.Errorf("read counts %v", o.ReadSamples()[:2])
	}
	if o.WriteSamples()[1] != 1 {
		t.Errorf("write counts %v", o.WriteSamples()[:2])
	}
	r.ResetSamples()
	if o.ReadSamples()[0] != 0 || o.WriteSamples()[1] != 0 {
		t.Error("ResetSamples left counts")
	}
}

func TestTotals(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	if _, err := r.Register("a", 1<<20, 128<<10); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("b", 1<<21, 64<<10); err != nil {
		t.Fatal(err)
	}
	if got := r.TotalBytes(); got != 192<<10 {
		t.Errorf("TotalBytes = %d", got)
	}
	if got := r.TotalChunks(); got != 12 { // 8 + 4 chunks of 16 KiB
		t.Errorf("TotalChunks = %d", got)
	}
}

func TestObjectsSortedByBase(t *testing.T) {
	r := NewRegistry(DefaultConfig())
	if _, err := r.Register("high", 1<<22, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("low", 1<<20, 4096); err != nil {
		t.Fatal(err)
	}
	objs := r.Objects()
	if len(objs) != 2 || objs[0].Name != "low" || objs[1].Name != "high" {
		t.Errorf("objects out of order: %v, %v", objs[0].Name, objs[1].Name)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.TargetChunksPerObject = 0 },
		func(c *Config) { c.MinChunkBytes = 0 },
		func(c *Config) { c.MinChunkBytes = 3000 },
		func(c *Config) { c.MaxChunkBytes = c.MinChunkBytes / 2 },
		func(c *Config) { c.PercentileN = 150 },
		func(c *Config) { c.M = 1 },
		func(c *Config) { c.BaseTRThreshold = 0 },
		func(c *Config) { c.Epsilon = 2 },
		func(c *Config) { c.DispersionThreshold = -1 },
		func(c *Config) { c.UniformHotFactor = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestEffectiveEpsilon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.M = 8
	cfg.Epsilon = 0
	if got := cfg.EffectiveEpsilon(); got != 0.125 {
		t.Errorf("octree ε = %v, want 0.125 (paper §4.3.2)", got)
	}
	cfg.Epsilon = 0.3
	if got := cfg.EffectiveEpsilon(); got != 0.3 {
		t.Errorf("explicit ε = %v", got)
	}
}
