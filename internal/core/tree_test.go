package core

import (
	"testing"
	"testing/quick"
)

func TestTreeConstructionPaperExample(t *testing.T) {
	// Figure 3a: eight data chunks under a binary tree; chunks 0, 1,
	// and 2 critical gives node values summing up the levels.
	critical := []bool{true, true, true, false, false, false, false, false}
	tree := BuildTree(critical, 2)
	root := tree.Height() - 1
	if got := tree.Value(root, 0); got != 3 {
		t.Errorf("root value %d, want 3", got)
	}
	if got := tree.LeafCount(root, 0); got != 8 {
		t.Errorf("root leaf count %d, want 8", got)
	}
	// Figure 3b's N_11-style internal node: the first 4 leaves hold 3
	// critical chunks, so TR = 3/4.
	level := root - 1
	if got := tree.TR(level, 0); got != 0.75 {
		t.Errorf("TR = %v, want 0.75", got)
	}
	if got := tree.TR(level, 1); got != 0 {
		t.Errorf("right subtree TR = %v, want 0", got)
	}
}

func TestTernaryTree(t *testing.T) {
	critical := make([]bool, 9)
	critical[0] = true
	critical[4] = true
	tree := BuildTree(critical, 3)
	if tree.Height() != 3 {
		t.Errorf("height %d, want 3", tree.Height())
	}
	root := tree.Height() - 1
	if tree.Value(root, 0) != 2 || tree.LeafCount(root, 0) != 9 {
		t.Errorf("root %d/%d", tree.Value(root, 0), tree.LeafCount(root, 0))
	}
}

func TestTreeNonPowerLeafCount(t *testing.T) {
	// 6 leaves under arity 4: two internal nodes with 4 and 2 leaves.
	critical := []bool{true, false, false, false, true, true}
	tree := BuildTree(critical, 4)
	if tree.NodesAt(1) != 2 {
		t.Fatalf("level-1 nodes = %d", tree.NodesAt(1))
	}
	if tree.LeafCount(1, 0) != 4 || tree.LeafCount(1, 1) != 2 {
		t.Errorf("leaf counts %d,%d", tree.LeafCount(1, 0), tree.LeafCount(1, 1))
	}
	if tree.TR(1, 1) != 1.0 {
		t.Errorf("partial node TR = %v, want 1", tree.TR(1, 1))
	}
}

func TestPromotePatchesGap(t *testing.T) {
	// Figure 3c: threshold 0.5; a subtree with TR 0.75 promotes its
	// non-critical leaf, the all-zero subtree stays out.
	critical := []bool{true, true, true, false, false, false, false, false}
	tree := BuildTree(critical, 2)
	promoted := tree.Promote(0.5, critical)
	if !promoted[3] {
		t.Error("gap leaf 3 not promoted despite TR 0.75 >= 0.5")
	}
	for i := 4; i < 8; i++ {
		if promoted[i] {
			t.Errorf("leaf %d promoted from an all-cold subtree", i)
		}
	}
	for i := 0; i < 3; i++ {
		if promoted[i] {
			t.Errorf("critical leaf %d double-marked as promoted", i)
		}
	}
}

func TestPromoteThresholdSensitivity(t *testing.T) {
	critical := []bool{true, false, false, false, false, false, false, false}
	tree := BuildTree(critical, 2)
	// Root TR = 1/8: a threshold at or below it promotes everything.
	all := tree.Promote(0.125, critical)
	for i := 1; i < 8; i++ {
		if !all[i] {
			t.Fatalf("leaf %d not promoted at root-level threshold", i)
		}
	}
	// A threshold above every node's TR except the critical leaf itself
	// promotes nothing.
	none := tree.Promote(0.9, critical)
	for i, p := range none {
		if p {
			t.Errorf("leaf %d promoted at threshold 0.9", i)
		}
	}
}

func TestPromoteEmptyAndDegenerate(t *testing.T) {
	tree := BuildTree(nil, 4)
	if got := tree.Promote(0.5, nil); len(got) != 0 {
		t.Error("empty tree promoted leaves")
	}
	cold := make([]bool, 16)
	tree = BuildTree(cold, 4)
	for _, p := range tree.Promote(0.0001, cold) {
		if p {
			t.Error("promotion without any critical anchor")
		}
	}
}

func TestBuildTreeArityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity 1 should panic")
		}
	}()
	BuildTree([]bool{true}, 1)
}

// Property: tree ratios lie in [0,1], every internal node's value is the
// sum of its children, and leaf counts add up.
func TestTreeInvariants(t *testing.T) {
	check := func(bits []bool, mRaw uint8) bool {
		if len(bits) == 0 {
			return true
		}
		if len(bits) > 4096 {
			bits = bits[:4096]
		}
		m := int(mRaw%7) + 2
		tree := BuildTree(bits, m)
		for level := 0; level < tree.Height(); level++ {
			for idx := 0; idx < tree.NodesAt(level); idx++ {
				tr := tree.TR(level, idx)
				if tr < 0 || tr > 1 {
					return false
				}
				if level == 0 {
					continue
				}
				var vsum, lsum int
				for k := idx * m; k < (idx+1)*m && k < tree.NodesAt(level-1); k++ {
					vsum += tree.Value(level-1, k)
					lsum += tree.LeafCount(level-1, k)
				}
				if vsum != tree.Value(level, idx) || lsum != tree.LeafCount(level, idx) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: promotion is monotone in the threshold — a lower threshold
// never promotes fewer leaves — and never promotes without an anchor.
func TestPromotionMonotone(t *testing.T) {
	check := func(bits []bool, loRaw, hiRaw uint8) bool {
		if len(bits) == 0 {
			return true
		}
		if len(bits) > 1024 {
			bits = bits[:1024]
		}
		lo := float64(loRaw) / 255
		hi := float64(hiRaw) / 255
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == 0 {
			lo = 0.001
		}
		tree := BuildTree(bits, 4)
		pLo := tree.Promote(lo, bits)
		pHi := tree.Promote(hi, bits)
		anyCritical := false
		for _, b := range bits {
			if b {
				anyCritical = true
			}
		}
		for i := range bits {
			if pHi[i] && !pLo[i] {
				return false // lower threshold promoted less
			}
			if pLo[i] && !anyCritical {
				return false // promotion without any anchor
			}
			if pLo[i] && bits[i] {
				return false // critical leaves are never "promoted"
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestAdaptTRThreshold(t *testing.T) {
	// Max-weight object gets ε; min-weight gets ε + base.
	base, eps := 0.5, 0.25
	if got := AdaptTRThreshold(10, 2, 10, true, base, eps); got != eps {
		t.Errorf("max-weight threshold %v, want ε", got)
	}
	if got := AdaptTRThreshold(2, 2, 10, true, base, eps); got != eps+base {
		t.Errorf("min-weight threshold %v, want ε+base", got)
	}
	mid := AdaptTRThreshold(6, 2, 10, true, base, eps)
	if mid <= eps || mid >= eps+base {
		t.Errorf("mid-weight threshold %v out of range", mid)
	}
	// Degenerate weight space: everyone is at the max.
	if got := AdaptTRThreshold(5, 5, 5, true, base, eps); got != eps {
		t.Errorf("degenerate space threshold %v, want ε", got)
	}
	if got := AdaptTRThreshold(0, 0, 0, false, base, eps); got != eps {
		t.Errorf("empty space threshold %v, want ε", got)
	}
	// Clamped to [0,1].
	if got := AdaptTRThreshold(0, 0, 1, true, 0.9, 0.5); got != 1 {
		t.Errorf("threshold %v not clamped to 1", got)
	}
}
