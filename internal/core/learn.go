package core

// This file is the learning-to-rank placement policy (ROADMAP item #2,
// following "Learning to Rank Graph-based Application Objects on
// Heterogeneous Memories"): chunks are featurized from the telemetry
// the runtime already collects, a linear pairwise ranker orders them,
// and a greedy fill turns the ordering into a plan. Training is offline
// (cmd/atmem-train) against full-trace heat labels; the weights
// serialize as JSON.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Feature indices of a FeatureVector. The schema is versioned through
// Weights.Version: a reordered or extended vector must bump it.
const (
	// FeatBias is the constant 1 (irrelevant to ranking; kept so the
	// vector is usable in score-calibration contexts).
	FeatBias = iota
	// FeatReadDensity is log1p of the chunk's read-miss priority
	// (samples x period / byte) — Eq. 1's PR_local.
	FeatReadDensity
	// FeatWriteDensity is log1p of the write-miss priority.
	FeatWriteDensity
	// FeatSizeLog is log2 of the chunk size: granularity context the
	// adaptive chunking encodes.
	FeatSizeLog
	// FeatShare is the chunk's share of its object's samples —
	// intra-object skew.
	FeatShare
	// FeatNeighborHeat is log1p of the mean read density of the
	// adjacent chunks: a reuse-distance proxy (hot neighborhoods keep
	// their lines resident; an isolated spike does not), and the signal
	// the analyzer's tree promotion exploits spatially.
	FeatNeighborHeat
	// FeatObjEntropy is the normalized entropy of the object's
	// per-chunk sample distribution — a stride-entropy proxy (uniform
	// streaming ≈ 1, concentrated hub access ≈ 0).
	FeatObjEntropy
	// FeatObjFraction is the object's share of the registered
	// footprint.
	FeatObjFraction
	// FeatPhase is the governed epoch (phase id) the profile belongs
	// to, 0 on ungoverned runs.
	FeatPhase
	// NumFeatures is the vector length.
	NumFeatures
)

// FeatureNames names the schema positions for the serialized weights.
var FeatureNames = [NumFeatures]string{
	"bias", "read_density", "write_density", "size_log", "share",
	"neighbor_heat", "obj_entropy", "obj_fraction", "phase",
}

// FeatureVector is one chunk's feature values, indexed by the Feat*
// constants.
type FeatureVector [NumFeatures]float64

// ChunkFeatures is one chunk's features with its identity, for joining
// against heat-trace labels.
type ChunkFeatures struct {
	Object string
	Chunk  int
	F      FeatureVector
}

// Featurize extracts the feature vector of every chunk in the registry
// from the attributed sample counters. It is deterministic: objects are
// walked in address order on the calling goroutine only, so the same
// attributed counters produce bit-identical vectors regardless of
// GOMAXPROCS or prior scheduling.
func Featurize(r *Registry, period uint64, epoch int) []ChunkFeatures {
	objs := r.Objects()
	total := r.TotalBytes()
	out := make([]ChunkFeatures, 0, r.TotalChunks())
	for _, o := range objs {
		var objSamples uint64
		for j := 0; j < o.NumChunks; j++ {
			objSamples += o.readSamples[j] + o.writeSamples[j]
		}
		entropy := sampleEntropy(o)
		objFrac := 0.0
		if total > 0 {
			objFrac = float64(o.Size) / float64(total)
		}
		for j := 0; j < o.NumChunks; j++ {
			var f FeatureVector
			f[FeatBias] = 1
			f[FeatReadDensity] = math.Log1p(readDensity(o, j, period))
			f[FeatWriteDensity] = math.Log1p(writeDensity(o, j, period))
			f[FeatSizeLog] = math.Log2(float64(o.ChunkBytes(j)))
			if objSamples > 0 {
				f[FeatShare] = float64(o.readSamples[j]+o.writeSamples[j]) / float64(objSamples)
			}
			var nsum float64
			var ncnt int
			if j > 0 {
				nsum += readDensity(o, j-1, period)
				ncnt++
			}
			if j+1 < o.NumChunks {
				nsum += readDensity(o, j+1, period)
				ncnt++
			}
			if ncnt > 0 {
				f[FeatNeighborHeat] = math.Log1p(nsum / float64(ncnt))
			}
			f[FeatObjEntropy] = entropy
			f[FeatObjFraction] = objFrac
			f[FeatPhase] = float64(epoch)
			out = append(out, ChunkFeatures{Object: o.Name, Chunk: j, F: f})
		}
	}
	return out
}

// writeDensity returns chunk j's write-miss priority in PR units.
func writeDensity(o *DataObject, j int, period uint64) float64 {
	b := o.ChunkBytes(j)
	if b == 0 {
		return 0
	}
	return float64(o.writeSamples[j]) * float64(period) / float64(b)
}

// sampleEntropy computes the normalized Shannon entropy of an object's
// per-chunk total-sample distribution: 1 for perfectly uniform access,
// 0 for all samples on one chunk (or no samples / a single chunk).
func sampleEntropy(o *DataObject) float64 {
	if o.NumChunks < 2 {
		return 0
	}
	var total float64
	for j := 0; j < o.NumChunks; j++ {
		total += float64(o.readSamples[j] + o.writeSamples[j])
	}
	if total == 0 {
		return 0
	}
	var h float64
	for j := 0; j < o.NumChunks; j++ {
		p := float64(o.readSamples[j]+o.writeSamples[j]) / total
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h / math.Log(float64(o.NumChunks))
}

// Weights is a trained linear ranking model over the feature schema,
// serialized as JSON by cmd/atmem-train and loaded by the learned
// policy. Scores are computed on standardized features:
// score = Σ w_i · (f_i − mean_i) / scale_i.
type Weights struct {
	// Version is the feature-schema version; see WeightsVersion.
	Version int `json:"version"`
	// Features echoes FeatureNames at training time, as a
	// human-readable schema check.
	Features []string `json:"features"`
	// Mean and Scale standardize features to the training
	// distribution.
	Mean  []float64 `json:"mean"`
	Scale []float64 `json:"scale"`
	// W are the learned weights.
	W []float64 `json:"weights"`
}

// WeightsVersion is the current feature-schema version.
const WeightsVersion = 1

// Validate reports schema mismatches between the weights and this
// build's feature extractor.
func (w *Weights) Validate() error {
	if w.Version != WeightsVersion {
		return fmt.Errorf("core: weights version %d, want %d", w.Version, WeightsVersion)
	}
	if len(w.W) != NumFeatures || len(w.Mean) != NumFeatures || len(w.Scale) != NumFeatures {
		return fmt.Errorf("core: weights carry %d/%d/%d weight/mean/scale entries, want %d",
			len(w.W), len(w.Mean), len(w.Scale), NumFeatures)
	}
	for i, s := range w.Scale {
		if s <= 0 {
			return fmt.Errorf("core: non-positive feature scale at %q", FeatureNames[i])
		}
	}
	return nil
}

// Score returns the ranking score of one feature vector.
func (w *Weights) Score(f FeatureVector) float64 {
	var s float64
	for i := 0; i < NumFeatures; i++ {
		s += w.W[i] * (f[i] - w.Mean[i]) / w.Scale[i]
	}
	return s
}

// MarshalJSONIndented serializes the weights for the on-disk format.
func (w *Weights) MarshalJSONIndented() ([]byte, error) {
	return json.MarshalIndent(w, "", "  ")
}

// WeightsFromJSON parses and validates serialized weights.
func WeightsFromJSON(data []byte) (Weights, error) {
	var w Weights
	if err := json.Unmarshal(data, &w); err != nil {
		return Weights{}, fmt.Errorf("core: parse weights: %w", err)
	}
	if err := w.Validate(); err != nil {
		return Weights{}, err
	}
	return w, nil
}

// TrainSample is one labeled chunk: its features from a sampled
// profile, and its true heat (PR units) from a full-trace recording of
// the same workload.
type TrainSample struct {
	F     FeatureVector
	Label float64
}

// TrainConfig tunes the pairwise trainer. The zero value takes the
// defaults.
type TrainConfig struct {
	// Iters is the number of full-batch gradient iterations (default
	// 200).
	Iters int
	// LearnRate is the gradient step (default 0.05).
	LearnRate float64
	// L2 is the ridge penalty (default 1e-3).
	L2 float64
	// MarginFactor is the minimum relative label gap for a pair to
	// train on: hi > lo·MarginFactor (default 1.05) — near-ties carry
	// no ordering signal.
	MarginFactor float64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Iters == 0 {
		c.Iters = 200
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.05
	}
	if c.L2 == 0 {
		c.L2 = 1e-3
	}
	if c.MarginFactor == 0 {
		c.MarginFactor = 1.05
	}
	return c
}

// TrainStats summarizes a training run.
type TrainStats struct {
	// Samples and Pairs count the inputs.
	Samples int
	Pairs   int
	// InitialViolations and FinalViolations count misordered pairs
	// before and after training.
	InitialViolations int
	FinalViolations   int
	// Loss is the final mean logistic pair loss.
	Loss float64
}

// TrainPairwise fits a linear RankNet-style pairwise ranker: samples
// are sorted by label, pairs are enumerated at exponentially growing
// offsets (so both near and far orderings constrain the model), and
// full-batch gradient descent minimizes the logistic pair loss
// log(1+exp(−(s_hi − s_lo))). The procedure is deterministic — fixed
// iteration order, no randomness — so identical inputs produce
// identical weights.
func TrainPairwise(samples []TrainSample, cfg TrainConfig) (Weights, TrainStats, error) {
	cfg = cfg.withDefaults()
	st := TrainStats{Samples: len(samples)}
	if len(samples) < 2 {
		return Weights{}, st, fmt.Errorf("core: pairwise training needs at least 2 samples, got %d", len(samples))
	}

	// Standardize features to the training distribution.
	w := Weights{
		Version:  WeightsVersion,
		Features: FeatureNames[:],
		Mean:     make([]float64, NumFeatures),
		Scale:    make([]float64, NumFeatures),
		W:        make([]float64, NumFeatures),
	}
	n := float64(len(samples))
	for i := 0; i < NumFeatures; i++ {
		var sum float64
		for _, s := range samples {
			sum += s.F[i]
		}
		w.Mean[i] = sum / n
		var varSum float64
		for _, s := range samples {
			d := s.F[i] - w.Mean[i]
			varSum += d * d
		}
		w.Scale[i] = math.Sqrt(varSum / n)
		if w.Scale[i] < 1e-12 {
			// A constant feature (bias, single-phase runs): neutralize
			// rather than divide by ~0.
			w.Scale[i] = 1
		}
	}
	norm := make([]FeatureVector, len(samples))
	for k, s := range samples {
		for i := 0; i < NumFeatures; i++ {
			norm[k][i] = (s.F[i] - w.Mean[i]) / w.Scale[i]
		}
	}

	// Pair enumeration: indices sorted by descending label, each
	// paired with the sample offset positions below it.
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return samples[order[a]].Label > samples[order[b]].Label
	})
	type pair struct{ hi, lo int }
	var pairs []pair
	for off := 1; off < len(samples); off *= 2 {
		for i := 0; i+off < len(order); i++ {
			hi, lo := order[i], order[i+off]
			lh, ll := samples[hi].Label, samples[lo].Label
			if lh <= ll*cfg.MarginFactor || lh-ll < 1e-12 {
				continue
			}
			pairs = append(pairs, pair{hi, lo})
		}
	}
	st.Pairs = len(pairs)
	if len(pairs) == 0 {
		return Weights{}, st, fmt.Errorf("core: no informative pairs (flat labels)")
	}

	score := func(weights []float64, k int) float64 {
		var s float64
		for i := 0; i < NumFeatures; i++ {
			s += weights[i] * norm[k][i]
		}
		return s
	}
	violations := func(weights []float64) int {
		v := 0
		for _, p := range pairs {
			if score(weights, p.hi) <= score(weights, p.lo) {
				v++
			}
		}
		return v
	}
	st.InitialViolations = violations(w.W)

	grad := make([]float64, NumFeatures)
	for iter := 0; iter < cfg.Iters; iter++ {
		for i := range grad {
			grad[i] = cfg.L2 * w.W[i]
		}
		for _, p := range pairs {
			d := score(w.W, p.hi) - score(w.W, p.lo)
			// dLoss/dd = −σ(−d); clamp the exponent for numeric safety.
			var sig float64
			switch {
			case d > 30:
				sig = 0
			case d < -30:
				sig = 1
			default:
				sig = 1 / (1 + math.Exp(d))
			}
			for i := 0; i < NumFeatures; i++ {
				grad[i] -= sig * (norm[p.hi][i] - norm[p.lo][i]) / float64(len(pairs))
			}
		}
		for i := range w.W {
			w.W[i] -= cfg.LearnRate * grad[i]
		}
	}

	st.FinalViolations = violations(w.W)
	var loss float64
	for _, p := range pairs {
		d := score(w.W, p.hi) - score(w.W, p.lo)
		loss += math.Log1p(math.Exp(-d))
	}
	st.Loss = loss / float64(len(pairs))
	return w, st, nil
}

// LearnedRankPolicy scores chunks with trained weights and fills the
// budget greedily by score. An evidence gate keeps it honest: only
// chunks that were sampled, or whose immediate neighbor was (the same
// spatial benefit-of-the-doubt as the analyzer's tree promotion), are
// candidates — the model ranks observed heat, it does not hallucinate
// placement for untouched data.
type LearnedRankPolicy struct {
	// W are the trained, validated weights.
	W Weights
	// Source labels where the weights came from (a path for
	// file-loaded weights); it feeds the fingerprint only.
	Source string
}

// Name implements PlacementPolicy.
func (l *LearnedRankPolicy) Name() string { return "learned" }

// Fingerprint implements PlacementPolicy: it covers the weight values,
// so retrained weights invalidate cached plans.
func (l *LearnedRankPolicy) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	for _, vs := range [][]float64{l.W.W, l.W.Mean, l.W.Scale} {
		for _, v := range vs {
			bits := math.Float64bits(v)
			for k := 0; k < 8; k++ {
				buf[k] = byte(bits >> (8 * k))
			}
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("learned/v%d weights=%016x", l.W.Version, h.Sum64())
}

// Validate reports malformed weights; the runtime surfaces it at
// construction.
func (l *LearnedRankPolicy) Validate() error { return l.W.Validate() }

// Rank implements PlacementPolicy.
func (l *LearnedRankPolicy) Rank(p PolicyProfile, budgetBytes uint64, obs StageObserver) (*Plan, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	objs := p.Registry.Objects()
	if obs != nil {
		obs.StageBegin("rank")
	}
	feats := Featurize(p.Registry, p.Period, p.Epoch)
	cs := newChunkScores(objs)
	index := make(map[string]int, len(objs))
	for i, o := range objs {
		index[o.Name] = i
	}
	cands := 0
	for _, cf := range feats {
		i, ok := index[cf.Object]
		if !ok {
			continue
		}
		o := objs[i]
		j := cf.Chunk
		sampled := o.readSamples[j]+o.writeSamples[j] > 0
		neighbor := (j > 0 && o.readSamples[j-1]+o.writeSamples[j-1] > 0) ||
			(j+1 < o.NumChunks && o.readSamples[j+1]+o.writeSamples[j+1] > 0)
		if !sampled && !neighbor {
			continue
		}
		cs.Cand[i][j] = true
		cs.Score[i][j] = l.W.Score(cf.F)
		cs.Density[i][j] = totalDensity(o, j, p.Period)
		cands++
	}
	if obs != nil {
		obs.StageEnd("rank", map[string]any{
			"objects":          len(objs),
			"candidate_chunks": cands,
		})
	}
	return greedyPlan(objs, cs, budgetBytes, obs), nil
}
