package metrics

// Prometheus text exposition (version 0.0.4) of the registry: families
// sorted by name, series sorted by canonical label key, HELP/TYPE
// lines per family, exposition-format escaping in help text and label
// values. The output is deterministic for a given registry state —
// the golden-file test pins it.

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// escapeHelp escapes a HELP line per the exposition format: backslash
// and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value: backslash, double-quote,
// newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeSeriesLine writes `name{labels} value`, merging extra labels
// (already escaped, e.g. a histogram's le) after the series labels.
func writeSeriesLine(w *bufio.Writer, name, labelKey, extra, value string) {
	w.WriteString(name)
	if labelKey != "" || extra != "" {
		w.WriteByte('{')
		w.WriteString(labelKey)
		if labelKey != "" && extra != "" {
			w.WriteByte(',')
		}
		w.WriteString(extra)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// WritePrometheus renders the registry in Prometheus text exposition
// format. Safe concurrently with recording (values are read
// atomically; the registration lock pins the series set). A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.sortedFamilies() {
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(escapeHelp(f.help))
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ.String())
		bw.WriteByte('\n')
		for _, s := range f.sortedSeries() {
			switch f.typ {
			case typeCounter:
				writeSeriesLine(bw, f.name, s.labelKey, "",
					strconv.FormatUint(s.c.Value(), 10))
			case typeGauge:
				writeSeriesLine(bw, f.name, s.labelKey, "", formatFloat(s.g.Value()))
			case typeHistogram:
				hs := s.h.snapshot()
				var cum uint64
				for _, b := range hs.Buckets {
					cum += b.Count
					writeSeriesLine(bw, f.name+"_bucket", s.labelKey,
						`le="`+strconv.FormatUint(b.UpperBound, 10)+`"`,
						strconv.FormatUint(cum, 10))
				}
				writeSeriesLine(bw, f.name+"_bucket", s.labelKey, `le="+Inf"`,
					strconv.FormatUint(hs.Count, 10))
				writeSeriesLine(bw, f.name+"_sum", s.labelKey, "",
					strconv.FormatUint(hs.Sum, 10))
				writeSeriesLine(bw, f.name+"_count", s.labelKey, "",
					strconv.FormatUint(hs.Count, 10))
			}
		}
	}
	return bw.Flush()
}
