package metrics

import (
	"math/bits"
	"sync"
	"testing"
)

func TestCounterShards(t *testing.T) {
	r := New(4)
	c := r.Counter("x_total", "x", nil)
	c.Add(0, 5)
	c.Add(1, 7)
	c.Add(3, 1)
	c.Inc(2)
	if got := c.Value(); got != 14 {
		t.Fatalf("Value = %d, want 14", got)
	}
	// Out-of-range shards clamp to 0 instead of dropping the count.
	c.Add(99, 2)
	c.Add(-1, 3)
	if got := c.Value(); got != 19 {
		t.Fatalf("Value after clamped shards = %d, want 19", got)
	}
}

func TestRegistryResolvesSameSeries(t *testing.T) {
	r := New(1)
	a := r.Counter("dup_total", "dup", Labels{"tier": "dram"})
	b := r.Counter("dup_total", "dup", Labels{"tier": "dram"})
	if a != b {
		t.Fatal("same (name, labels) did not resolve to the same counter")
	}
	other := r.Counter("dup_total", "dup", Labels{"tier": "optane"})
	if other == a {
		t.Fatal("different labels resolved to the same counter")
	}
	a.Add(0, 3)
	b.Add(0, 2)
	if a.Value() != 5 {
		t.Fatalf("shared series Value = %d, want 5", a.Value())
	}
	// A type conflict yields a disabled instrument, not a crash or a
	// silently detached series.
	if g := r.Gauge("dup_total", "dup", nil); g != nil {
		t.Fatal("type-conflicting registration returned a live gauge")
	}
}

func TestGaugeSetAndValue(t *testing.T) {
	r := New(1)
	g := r.Gauge("level", "level", nil)
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("Value = %g, want 0.25", g.Value())
	}
	g.SetUint(1 << 40)
	if g.Value() != float64(uint64(1)<<40) {
		t.Fatalf("SetUint round-trip failed: %g", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	// Every value must land in a bucket whose bound is >= the value and
	// whose predecessor's bound is < the value.
	for _, v := range []uint64{0, 1, 3, 4, 5, 7, 8, 9, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		i := bucketIndex(v)
		if ub := bucketUpperBound(i); ub < v {
			t.Fatalf("value %d: bucket %d bound %d < value", v, i, ub)
		}
		if i > 0 {
			if lb := bucketUpperBound(i - 1); lb >= v {
				t.Fatalf("value %d: previous bucket bound %d >= value", v, lb)
			}
		}
	}
	// Bounds are strictly increasing (cumulative exposition depends on it).
	for i := 1; i < histBuckets; i++ {
		if bucketUpperBound(i) <= bucketUpperBound(i-1) {
			t.Fatalf("bucket bounds not increasing at %d: %d <= %d",
				i, bucketUpperBound(i), bucketUpperBound(i-1))
		}
	}
	// Relative resolution stays within one sub-bucket (~25%).
	for _, v := range []uint64{10, 1000, 1e6, 1e9, 1e12} {
		ub := bucketUpperBound(bucketIndex(v))
		if float64(ub-v) > 0.25*float64(v)+1 {
			t.Fatalf("value %d: bound %d overshoots by more than 25%%", v, ub)
		}
	}
	_ = bits.Len64 // keep the import honest if the test shrinks
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	r := New(1)
	h := r.Histogram("lat_ns", "latency", nil)
	for _, v := range []uint64{1, 1, 5, 5, 5, 1000} {
		h.Observe(v)
	}
	h.ObserveSeconds(2e-6) // 2000 ns
	hs := h.snapshot()
	if hs.Count != 7 {
		t.Fatalf("Count = %d, want 7", hs.Count)
	}
	if hs.Sum != 1+1+5+5+5+1000+2000 {
		t.Fatalf("Sum = %d", hs.Sum)
	}
	var total uint64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != hs.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, hs.Count)
	}
	// A value beyond the largest finite bucket still counts and sums.
	h.Observe(1 << 60)
	if h.Count() != 8 {
		t.Fatalf("overflow observation lost: count %d", h.Count())
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New(2)
	c := r.Counter("ops_total", "ops", nil)
	g := r.Gauge("level", "level", nil)
	h := r.Histogram("lat_ns", "latency", nil)
	c.Add(0, 10)
	g.Set(1)
	h.Observe(5)
	before := r.Snapshot()
	c.Add(1, 4)
	g.Set(9)
	h.Observe(5)
	h.Observe(700)
	d := r.Snapshot().Delta(before)
	if d.Counters["ops_total"] != 4 {
		t.Fatalf("counter delta = %d, want 4", d.Counters["ops_total"])
	}
	if d.Gauges["level"] != 9 {
		t.Fatalf("gauge in delta = %g, want current value 9", d.Gauges["level"])
	}
	dh := d.Histograms["lat_ns"]
	if dh.Count != 2 {
		t.Fatalf("histogram delta count = %d, want 2", dh.Count)
	}
	if dh.Sum != 705 {
		t.Fatalf("histogram delta sum = %d, want 705", dh.Sum)
	}
	var total uint64
	for _, b := range dh.Buckets {
		total += b.Count
	}
	if total != 2 {
		t.Fatalf("histogram delta buckets sum to %d, want 2", total)
	}
}

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry claims enabled")
	}
	c := r.Counter("x_total", "x", nil)
	g := r.Gauge("y", "y", nil)
	h := r.Histogram("z_ns", "z", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	// Every record and read path must be inert, not crash.
	c.Add(0, 1)
	c.Inc(3)
	g.Set(1)
	g.SetUint(2)
	h.Observe(1)
	h.ObserveSeconds(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("disabled instruments reported non-zero values")
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if err := r.WritePrometheus(discard{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestConcurrentRecordAndSnapshot is the -race guard for the scrape
// path: per-shard writers, a histogram and gauge writer, and a
// concurrent snapshotter + exposition writer must be data-race free,
// and no increments may be lost.
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	const shards, perShard = 4, 2000
	r := New(shards)
	c := r.Counter("ops_total", "ops", nil)
	g := r.Gauge("level", "level", nil)
	h := r.Histogram("lat_ns", "latency", nil)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perShard; i++ {
				c.Inc(s)
				h.Observe(uint64(i))
				if s == 0 {
					g.Set(float64(i))
				}
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			snap := r.Snapshot()
			if snap.Counters["ops_total"] > shards*perShard {
				t.Errorf("snapshot over-counted: %d", snap.Counters["ops_total"])
				return
			}
			if err := r.WritePrometheus(discard{}); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != shards*perShard {
		t.Fatalf("lost increments: %d, want %d", got, shards*perShard)
	}
	if got := h.Count(); got != shards*perShard {
		t.Fatalf("lost observations: %d, want %d", got, shards*perShard)
	}
}

// BenchmarkDisabledMetrics is the CI guard for the disabled fast path:
// a record site on a nil instrument must cost ~one predictable branch
// (≤ a few ns for the three calls together, allocation-free) — the
// price every instrumented layer pays when metrics are off.
func BenchmarkDisabledMetrics(b *testing.B) {
	var r *Registry
	c := r.Counter("x_total", "x", nil)
	g := r.Gauge("y", "y", nil)
	h := r.Histogram("z_ns", "z", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
		g.Set(1)
		h.Observe(uint64(i))
	}
}

// BenchmarkEnabledCounter sizes the hot cost of one recorded increment.
func BenchmarkEnabledCounter(b *testing.B) {
	r := New(2)
	c := r.Counter("x_total", "x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(0, 1)
	}
}

// BenchmarkEnabledHistogram sizes the hot cost of one observation.
func BenchmarkEnabledHistogram(b *testing.B) {
	r := New(2)
	h := r.Histogram("z_ns", "z", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
