// Package metrics is the runtime's live, queryable metrics layer: a
// zero-dependency registry of counters, gauges, and log-linear
// histograms that stays allocation-free on the record path and can be
// scraped concurrently with recording (the debug HTTP listener's
// /metrics endpoint reads it from another goroutine mid-run).
//
// The design mirrors the telemetry recorder's single-writer shard
// discipline (internal/telemetry): a Counter owns one 64-byte-padded
// cell per shard, each written by exactly one goroutine (shard 0 is the
// runtime's control plane, shard 1 the background placement worker), so
// recording never contends on a cache line. Reads sum the cells with
// atomic loads, which is why a scrape is safe at any time without
// stopping the writers.
//
// A nil *Registry is the disabled registry: instrument constructors
// return nil instruments, and every record method on a nil instrument
// returns immediately — one predictable branch per record site, the
// same contract as the nil telemetry recorder (benchmark-guarded at
// ≤ a few ns in CI, see BenchmarkDisabledMetrics).
//
// Snapshots (snapshot.go) read every series at one point in time and
// support delta diffing between two snapshots; the Prometheus text
// exposition writer (prometheus.go) renders the registry with stable
// ordering and escaping.
package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an instrument's fixed label set, bound at registration.
// Each distinct (name, labels) pair is its own series.
type Labels map[string]string

// seriesType discriminates the instrument kinds of a family.
type seriesType int

const (
	typeCounter seriesType = iota
	typeGauge
	typeHistogram
)

func (t seriesType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// cell is one shard's counter slot, padded to a cache line so two
// shards never false-share.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// Counter is a monotonically-increasing per-shard counter. Each shard
// must have a single writer (the telemetry recorder's discipline); any
// goroutine may read. A nil Counter is the disabled counter.
type Counter struct {
	cells []cell
}

// Add increments the shard's cell. Out-of-range shards clamp to 0, so
// a registry built with fewer shards than the caller uses stays
// correct (merely contended).
func (c *Counter) Add(shard int, v uint64) {
	if c == nil {
		return
	}
	if shard < 0 || shard >= len(c.cells) {
		shard = 0
	}
	c.cells[shard].n.Add(v)
}

// Inc is Add(shard, 1).
func (c *Counter) Inc(shard int) { c.Add(shard, 1) }

// Value sums every shard's cell.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var n uint64
	for i := range c.cells {
		n += c.cells[i].n.Load()
	}
	return n
}

// Gauge is a last-value-wins float64 instrument. Set and Value are
// atomic; a nil Gauge is the disabled gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetUint stores an integral value (exact up to 2^53).
func (g *Gauge) SetUint(v uint64) { g.Set(float64(v)) }

// Value loads the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// series is one registered (name, labels) pair.
type series struct {
	labels   Labels
	labelKey string // canonical sorted `k="v",...` form, "" when unlabeled
	c        *Counter
	g        *Gauge
	h        *Histogram
}

// family groups every series of one metric name under one HELP/TYPE.
type family struct {
	name   string
	help   string
	typ    seriesType
	series map[string]*series
}

// Registry holds the instrument families. Registration takes the
// registry lock (construction-time, not hot path); recording touches
// only the instrument's own atomics. A nil *Registry disables
// everything.
type Registry struct {
	shards int

	mu       sync.Mutex
	families map[string]*family
}

// New builds a registry whose counters carry one padded cell per
// shard. Shard 0 is conventionally the control plane; the runtime uses
// shard 1 for the background placement worker. shards < 1 is clamped
// to 1.
func New(shards int) *Registry {
	if shards < 1 {
		shards = 1
	}
	return &Registry{shards: shards, families: make(map[string]*family)}
}

// Enabled reports whether the registry records (false for nil).
func (r *Registry) Enabled() bool { return r != nil }

// labelKey renders labels in canonical sorted form.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// SeriesID is the canonical `name{labels}` identity of a series — the
// key Snapshot maps use.
func SeriesID(name string, labels Labels) string {
	lk := labelKey(labels)
	if lk == "" {
		return name
	}
	return name + "{" + lk + "}"
}

// register resolves or creates the series for (name, labels). A name
// re-registered under a different type returns nil (a detached series
// would hide the bug; a nil instrument is at least inert and the
// conflict shows up as a missing metric).
func (r *Registry) register(name, help string, typ seriesType, labels Labels) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.typ != typ {
		return nil
	}
	lk := labelKey(labels)
	s, ok := f.series[lk]
	if !ok {
		cp := make(Labels, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		s = &series{labels: cp, labelKey: lk}
		switch typ {
		case typeCounter:
			s.c = &Counter{cells: make([]cell, r.shards)}
		case typeGauge:
			s.g = &Gauge{}
		case typeHistogram:
			s.h = newHistogram()
		}
		f.series[lk] = s
	}
	return s
}

// Counter registers (or resolves) a counter series. Nil registry or a
// type conflict yields a nil (disabled) counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	if s := r.register(name, help, typeCounter, labels); s != nil {
		return s.c
	}
	return nil
}

// Gauge registers (or resolves) a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	if s := r.register(name, help, typeGauge, labels); s != nil {
		return s.g
	}
	return nil
}

// Histogram registers (or resolves) a log-linear histogram series.
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	if s := r.register(name, help, typeHistogram, labels); s != nil {
		return s.h
	}
	return nil
}

// sortedFamilies returns the families ordered by name, each with its
// series ordered by label key — the stable iteration order the
// exposition writer and snapshots share.
func (r *Registry) sortedFamilies() []*family {
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// sortedSeries returns one family's series ordered by label key.
func (f *family) sortedSeries() []*series {
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].labelKey < out[j].labelKey })
	return out
}
