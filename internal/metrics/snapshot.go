package metrics

// Point-in-time snapshots and delta diffing. A snapshot reads every
// series under the registration lock (so the series set is stable) with
// atomic value loads, concurrently with recording: each individual
// value is exact at its read instant, and no writer is ever stalled.
// Delta subtracts an earlier snapshot's counters and histogram counts
// from a later one — the per-interval view the scorecards and tests
// build on.

// HistogramSnapshot is one histogram's state at snapshot time.
type HistogramSnapshot struct {
	// Count and Sum cover every observation, including values beyond
	// the largest finite bucket.
	Count uint64
	Sum   uint64
	// Buckets are the non-empty buckets, ascending by bound, with
	// non-cumulative counts (the exposition writer accumulates).
	Buckets []Bucket
}

// Snapshot is a point-in-time copy of every registered series, keyed by
// SeriesID (`name` or `name{k="v",...}`).
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every series' current value. Safe concurrently
// with recording; nil registries return an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		for _, s := range f.series {
			id := SeriesID(f.name, s.labels)
			switch f.typ {
			case typeCounter:
				snap.Counters[id] = s.c.Value()
			case typeGauge:
				snap.Gauges[id] = s.g.Value()
			case typeHistogram:
				snap.Histograms[id] = s.h.snapshot()
			}
		}
	}
	return snap
}

// Delta returns s minus prev: counter values and histogram counts/sums
// subtract (series absent from prev diff against zero; a counter that
// went backwards — a restarted registry — clamps to its current value),
// gauges keep their current value (a gauge is a level, not a flow).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for id, v := range s.Counters {
		if p, ok := prev.Counters[id]; ok && p <= v {
			v -= p
		}
		out.Counters[id] = v
	}
	for id, v := range s.Gauges {
		out.Gauges[id] = v
	}
	for id, h := range s.Histograms {
		p, ok := prev.Histograms[id]
		if !ok || p.Count > h.Count {
			out.Histograms[id] = h
			continue
		}
		d := HistogramSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum}
		pb := make(map[uint64]uint64, len(p.Buckets))
		for _, b := range p.Buckets {
			pb[b.UpperBound] = b.Count
		}
		for _, b := range h.Buckets {
			if n := b.Count - pb[b.UpperBound]; n > 0 {
				d.Buckets = append(d.Buckets, Bucket{UpperBound: b.UpperBound, Count: n})
			}
		}
		out.Histograms[id] = d
	}
	return out
}
