package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden pins the exposition format byte-for-byte:
// family ordering, series ordering, escaping, histogram cumulation.
func TestPrometheusGolden(t *testing.T) {
	r := New(2)
	reads := r.Counter("atmem_tier_read_bytes_total", "Bytes read per tier.", Labels{"tier": "dram"})
	reads.Add(0, 4096)
	reads.Add(1, 512)
	r.Counter("atmem_tier_read_bytes_total", "Bytes read per tier.", Labels{"tier": "optane"}).Add(0, 65536)
	r.Gauge("atmem_tier_occupancy_ratio", "Occupied fraction of tier capacity.", Labels{"tier": "dram"}).Set(0.75)
	r.Gauge("atmem_governor_breaker_state", "Breaker state (0 closed, 1 half-open, 2 open).", nil).Set(0)
	h := r.Histogram("atmem_epoch_phase_seconds", "Simulated phase wall time.", nil)
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	h.Observe(17)
	h.Observe(1 << 20)
	h.Observe(1 << 62) // beyond the finite buckets: +Inf only
	r.Counter("esc_total", `help with \ backslash`+"\nand newline", Labels{"path": `a"b\c`}).Inc(0)
	// Multi-tenant series: the broker attaches a "tenant" label to every
	// family of a tenant runtime. Label keys render alphabetically
	// ("tenant" < "tier"), and series within a family order by their
	// canonical label string — pin both.
	r.Counter("atmem_tier_write_bytes_total", "Bytes written per tier.", Labels{"tenant": "analytics", "tier": "dram"}).Add(0, 128)
	r.Counter("atmem_tier_write_bytes_total", "Bytes written per tier.", Labels{"tenant": "batch", "tier": "dram"}).Add(0, 256)
	r.Counter("atmem_tier_write_bytes_total", "Bytes written per tier.", Labels{"tenant": "analytics", "tier": "optane"}).Add(0, 64)
	r.Gauge("atmem_scorecard_fast_access_share", "Fraction of traffic served fast.", Labels{"tenant": "analytics"}).Set(0.875)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	// The output must be stable across repeated renders (map iteration
	// must not leak into the format).
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renders of the same registry differ")
	}
}
