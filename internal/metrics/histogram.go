package metrics

// Log-linear histogram: each power-of-two octave of the value domain is
// split into histSub linear sub-buckets, so relative resolution stays
// ~25% across twelve orders of magnitude with a fixed, small bucket
// array — the classic HDR shape, sized for nanosecond latencies and
// byte volumes. Values are unsigned integers; callers pick the unit
// (the runtime records nanoseconds and bytes) and name the metric
// accordingly.

import (
	"math/bits"
	"sync/atomic"
)

const (
	// histSubBits is log2 of the linear sub-buckets per octave.
	histSubBits = 2
	histSub     = 1 << histSubBits
	// histOctaves bounds the tracked octaves: the largest finite bucket
	// boundary is 2^(histOctaves+histSubBits)-1 ≈ 1.1e15 — almost two
	// weeks in nanoseconds, a petabyte in bytes. Larger values count
	// only toward Count/Sum (the +Inf bucket).
	histOctaves = 48
	// histBuckets is the finite bucket count: histSub unit buckets for
	// values < histSub, then histSub per octave.
	histBuckets = histSub + histSub*histOctaves
)

// Histogram is a concurrent log-linear histogram. Observe is safe from
// any goroutine (atomic adds); a nil Histogram is the disabled
// histogram.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value onto its log-linear bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	msb := bits.Len64(v) - 1 // >= histSubBits
	sub := int(v>>(uint(msb)-histSubBits)) & (histSub - 1)
	return (msb-histSubBits+1)*histSub + sub
}

// bucketUpperBound is the largest value bucket i holds (the Prometheus
// `le` boundary; exposition treats it as inclusive, which is exact for
// integer domains).
func bucketUpperBound(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	msb := uint(i/histSub) + histSubBits - 1
	sub := uint64(i%histSub) + 1
	return 1<<msb + sub<<(msb-histSubBits) - 1
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	if i := bucketIndex(v); i < histBuckets {
		h.buckets[i].Add(1)
	}
}

// ObserveSeconds records a duration in nanoseconds (negative durations
// clamp to zero).
func (h *Histogram) ObserveSeconds(s float64) {
	if h == nil {
		return
	}
	if s < 0 {
		s = 0
	}
	h.Observe(uint64(s * 1e9))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the largest value the bucket holds (inclusive).
	UpperBound uint64
	// Count is the bucket's own (non-cumulative) observation count.
	Count uint64
}

// snapshot reads the histogram's state: count, sum, and the non-empty
// buckets in ascending bound order.
func (h *Histogram) snapshot() HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			hs.Buckets = append(hs.Buckets, Bucket{UpperBound: bucketUpperBound(i), Count: n})
		}
	}
	return hs
}
