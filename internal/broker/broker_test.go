package broker

import (
	"errors"
	"testing"

	"atmem/internal/governor"
	"atmem/internal/memsim"
)

const mib = 1 << 20

// testSystem builds a small two-tier system: 16 MiB fast, 64 MiB slow.
func testSystem(t *testing.T) *memsim.System {
	t.Helper()
	p := memsim.NVMDRAMParams()
	p.Tiers[memsim.TierFast].CapacityBytes = 16 * mib
	p.Tiers[memsim.TierSlow].CapacityBytes = 64 * mib
	return memsim.NewSystem(p)
}

func spec(name string, class QoSClass, floor, burst uint64) TenantSpec {
	return TenantSpec{Name: name, Class: class, FloorBytes: floor, BurstBytes: burst}
}

// TestAdmitExactlyFullFloor: admission at exactly `capacity −
// quarantined` worth of floors succeeds; one more byte is rejected
// with ErrAdmission.
func TestAdmitExactlyFullFloor(t *testing.T) {
	b := New(testSystem(t), Config{})
	if _, err := b.Admit(spec("a", ClassGuaranteed, 10*mib, 0)); err != nil {
		t.Fatal(err)
	}
	// Exactly full: 10 + 6 == 16 MiB.
	tb, err := b.Admit(spec("b", ClassGuaranteed, 6*mib, 0))
	if err != nil {
		t.Fatalf("admit at exactly-full floor: %v", err)
	}
	if got := tb.Share(); got != 6*mib {
		t.Errorf("share = %d, want floor %d", got, 6*mib)
	}
	// One more byte of floor must be rejected, wrapping the sentinel.
	_, err = b.Admit(spec("c", ClassGuaranteed, 1, 0))
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("oversubscribing admit: err = %v, want ErrAdmission", err)
	}
	// Best-effort tenants carry no floor and still fit.
	if _, err := b.Admit(spec("d", ClassBestEffort, 0, 4*mib)); err != nil {
		t.Fatalf("best-effort admit at full floors: %v", err)
	}
}

// TestQueuedAdmittedAfterDeparture: a queued tenant is delivered on
// its Ready channel once a departure frees floor budget, FIFO.
func TestQueuedAdmittedAfterDeparture(t *testing.T) {
	b := New(testSystem(t), Config{})
	ta, err := b.Admit(spec("a", ClassGuaranteed, 12*mib, 0))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := b.Enqueue(spec("q1", ClassGuaranteed, 8*mib, 0))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Enqueue(spec("q2", ClassGuaranteed, 4*mib, 0))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-p1.Ready():
		t.Fatal("q1 admitted while floors oversubscribed")
	default:
	}

	ta.Depart()
	tq1 := <-p1.Ready()
	if tq1 == nil || tq1.Name() != "q1" {
		t.Fatalf("q1 not admitted after departure: %v", tq1)
	}
	// q2's 4 MiB also fits beside q1's 8 MiB (12 ≤ 16).
	tq2 := <-p2.Ready()
	if tq2 == nil || tq2.Name() != "q2" {
		t.Fatalf("q2 not admitted after departure: %v", tq2)
	}
	// Depart is idempotent.
	ta.Depart()
}

// TestEnqueueAdmitsImmediately: Enqueue with room delivers at once.
func TestEnqueueAdmitsImmediately(t *testing.T) {
	b := New(testSystem(t), Config{})
	p, err := b.Enqueue(spec("a", ClassBurstable, 4*mib, 8*mib))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case tn := <-p.Ready():
		if tn.Name() != "a" {
			t.Fatalf("admitted %q, want a", tn.Name())
		}
	default:
		t.Fatal("tenant with room was queued instead of admitted")
	}
}

// TestAdmissionShrinksUnderQuarantine: live quarantine growth shrinks
// what admission may promise — a floor that fit before RetirePages is
// rejected after.
func TestAdmissionShrinksUnderQuarantine(t *testing.T) {
	sys := testSystem(t)
	b := New(sys, Config{})

	// Retire 4 MiB of pages into the quarantine ledger (retirement
	// requires the range evacuated off the fast tier first).
	addr, err := sys.Alloc(4*mib, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RetirePages(addr, 4*mib); err != nil {
		t.Fatal(err)
	}

	// 16 − 4 = 12 MiB promisable: 12 MiB of floors fit, 13 do not.
	if _, err := b.Admit(spec("a", ClassGuaranteed, 12*mib, 0)); err != nil {
		t.Fatalf("admit within shrunk capacity: %v", err)
	}
	_, err = b.Admit(spec("b", ClassGuaranteed, 1*mib, 0))
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("admit over shrunk capacity: err = %v, want ErrAdmission", err)
	}
}

// TestBudgetChargesOwnQuarantine: a tenant's quarantine debit shrinks
// only its own budget; a sibling's budget is untouched.
func TestBudgetChargesOwnQuarantine(t *testing.T) {
	sys := testSystem(t)
	b := New(sys, Config{})
	ta, err := b.Admit(spec("victim", ClassGuaranteed, 6*mib, 0))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := b.Admit(spec("bystander", ClassGuaranteed, 6*mib, 0))
	if err != nil {
		t.Fatal(err)
	}

	addr, err := sys.Alloc(4*mib, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	sys.AdoptRange(ta.ID(), addr, 4*mib)
	if err := sys.RetirePages(addr, 2*mib); err != nil {
		t.Fatal(err)
	}

	if got := ta.Budget(); got != 4*mib {
		t.Errorf("victim budget = %d, want %d (floor 6 − 2 quarantined)", got, 4*mib)
	}
	if got := tb.Budget(); got != 6*mib {
		t.Errorf("bystander budget = %d, want full floor %d", got, 6*mib)
	}
}

// TestArbiterGrantsHottestMarginal: the epoch grant goes to the tenant
// whose clipped chunk is hottest, and reclaims from the coldest
// burstable donor once the free pool is exhausted.
func TestArbiterGrantsHottestMarginal(t *testing.T) {
	b := New(testSystem(t), Config{QuantumBytes: 2 * mib})
	hot, err := b.Admit(spec("hot", ClassBurstable, 2*mib, 12*mib))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := b.Admit(spec("warm", ClassBurstable, 2*mib, 12*mib))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := b.Admit(spec("cold", ClassBurstable, 2*mib, 12*mib))
	if err != nil {
		t.Fatal(err)
	}

	hot.Report(Signal{MarginalDensity: 9.0, ColdestDensity: 5.0})
	warm.Report(Signal{MarginalDensity: 3.0, ColdestDensity: 2.0})
	cold.Report(Signal{MarginalDensity: 0, ColdestDensity: 0.1})

	rep := b.Rebalance()
	if rep.GrantedTo != "hot" || rep.GrantedBytes != 2*mib {
		t.Fatalf("grant = %q/%d, want hot/%d", rep.GrantedTo, rep.GrantedBytes, 2*mib)
	}
	if rep.ReclaimedFrom != "" {
		t.Fatalf("reclaimed from %q with a free pool available", rep.ReclaimedFrom)
	}
	if got := hot.Share(); got != 4*mib {
		t.Errorf("hot share = %d, want %d", got, 4*mib)
	}

	// Exhaust the free pool: grow cold to cover the remaining capacity,
	// then the next grant must reclaim from it (the only donor whose
	// budget is not binding).
	b.mu.Lock()
	cold.share.Store(10 * mib) // 4 + 2 + 10 = 16 MiB: pool empty
	b.mu.Unlock()
	rep = b.Rebalance()
	if rep.GrantedTo != "hot" || rep.ReclaimedFrom != "cold" {
		t.Fatalf("grant = %q reclaimed from %q, want hot from cold", rep.GrantedTo, rep.ReclaimedFrom)
	}
	if got := cold.Share(); got != 8*mib {
		t.Errorf("cold share = %d, want %d after reclaim", got, 8*mib)
	}
	_ = warm
}

// TestGuaranteedNeverDonates: a guaranteed tenant's share is never
// reclaimed, and a burstable tenant is never taken below its floor.
func TestGuaranteedNeverDonates(t *testing.T) {
	b := New(testSystem(t), Config{QuantumBytes: 4 * mib})
	g, err := b.Admit(spec("g", ClassGuaranteed, 8*mib, 0))
	if err != nil {
		t.Fatal(err)
	}
	bu, err := b.Admit(spec("bu", ClassBurstable, 4*mib, 16*mib))
	if err != nil {
		t.Fatal(err)
	}
	hungry, err := b.Admit(spec("hungry", ClassBurstable, 2*mib, 16*mib))
	if err != nil {
		t.Fatal(err)
	}
	// Pool: 16 − (8+4+2) = 2 MiB. Everyone cold except hungry.
	g.Report(Signal{MarginalDensity: 0, ColdestDensity: 0.01})
	bu.Report(Signal{MarginalDensity: 0, ColdestDensity: 0.02})
	hungry.Report(Signal{MarginalDensity: 10})

	rep := b.Rebalance()
	if rep.GrantedTo != "hungry" {
		t.Fatalf("granted to %q, want hungry", rep.GrantedTo)
	}
	if got := g.Share(); got != 8*mib {
		t.Errorf("guaranteed share = %d, want untouched %d", got, 8*mib)
	}
	// bu was at its floor, so only the 2 MiB pool could be granted.
	if got := bu.Share(); got != 4*mib {
		t.Errorf("burstable-at-floor share = %d, want %d", got, 4*mib)
	}
	if rep.GrantedBytes != 2*mib {
		t.Errorf("granted %d, want pool-limited %d", rep.GrantedBytes, 2*mib)
	}
}

// TestShedLadderAndRestore drives the broker breaker through a
// pressure storm: consecutive degraded epochs open it and shed
// best-effort tenants in shed-priority order; once pressure recedes
// and the cooldown elapses, the half-open probe restores them and the
// breaker closes.
func TestShedLadderAndRestore(t *testing.T) {
	sys := testSystem(t)
	cfg := Config{
		HighWatermark: 0.50, LowWatermark: 0.30,
		Breaker: governor.Config{BreakerThreshold: 2, BreakerCooldown: 1},
	}
	b := New(sys, cfg)
	g, err := b.Admit(spec("g", ClassGuaranteed, 4*mib, 0))
	if err != nil {
		t.Fatal(err)
	}
	be1, err := b.Admit(TenantSpec{Name: "be1", Class: ClassBestEffort, BurstBytes: 8 * mib, ShedPriority: 1})
	if err != nil {
		t.Fatal(err)
	}
	be2, err := b.Admit(TenantSpec{Name: "be2", Class: ClassBestEffort, BurstBytes: 8 * mib, ShedPriority: 2})
	if err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	be1.share.Store(4 * mib)
	be2.share.Store(4 * mib)
	b.mu.Unlock()

	// Storm: 12 of 16 MiB fast mapped → pressure 0.75 > 0.50.
	addr, err := sys.Alloc(12*mib, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}

	r1 := b.Rebalance()
	if len(r1.Shed) != 0 || b.Shedding() {
		t.Fatalf("shed after one degraded epoch: %v", r1.Shed)
	}
	r2 := b.Rebalance()
	if b.breakerState() != governor.StateOpen {
		t.Fatalf("breaker %v after threshold, want open", b.breakerState())
	}
	// Target: drain from 12 MiB to 0.30·16 = 4.8 MiB → 7.2 MiB to
	// reclaim; both 4 MiB rungs shed, lowest shed-priority first.
	if len(r2.Shed) != 2 || r2.Shed[0] != "be1" || r2.Shed[1] != "be2" {
		t.Fatalf("shed = %v, want [be1 be2]", r2.Shed)
	}
	if !b.Shedding() || !be1.IsShed() || !be2.IsShed() || g.IsShed() {
		t.Fatal("shed flags wrong after ladder")
	}
	if be1.Share() != 0 || be2.Share() != 0 {
		t.Fatal("shed tenants keep nonzero shares")
	}

	// Pressure persists one cooldown epoch (skip), then recedes.
	b.Rebalance()
	if err := sys.Free(addr, 12*mib); err != nil {
		t.Fatal(err)
	}
	// Half-open probe restores one rung (most recently shed first).
	r4 := b.Rebalance()
	if len(r4.Restored) == 0 {
		t.Fatalf("probe restored nothing: %+v", r4)
	}
	if b.Shedding() {
		t.Fatal("still shedding after probe succeeded with receded pressure")
	}
	if be1.IsShed() || be2.IsShed() {
		t.Fatal("tenants remain shed after restore")
	}
	if b.breakerState() != governor.StateClosed {
		t.Fatalf("breaker %v after successful probe, want closed", b.breakerState())
	}
}

// breakerState exposes the broker breaker for tests.
func (b *Broker) breakerState() governor.State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.breaker.State()
}

// TestDepartReturnsShareToPool: departure frees the tenant's share for
// the arbiter's next grant.
func TestDepartReturnsShareToPool(t *testing.T) {
	b := New(testSystem(t), Config{QuantumBytes: 8 * mib})
	a, err := b.Admit(spec("a", ClassBurstable, 8*mib, 16*mib))
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.Admit(spec("c", ClassBurstable, 8*mib, 16*mib))
	if err != nil {
		t.Fatal(err)
	}
	c.Report(Signal{MarginalDensity: 5})
	// Pool is empty (8+8=16) and a reported nothing → no donor.
	rep := b.Rebalance()
	if rep.GrantedBytes != 0 {
		t.Fatalf("granted %d from an empty pool without donors", rep.GrantedBytes)
	}
	a.Depart()
	rep = b.Rebalance()
	if rep.GrantedTo != "c" || rep.GrantedBytes != 8*mib {
		t.Fatalf("grant after departure = %q/%d, want c/%d", rep.GrantedTo, rep.GrantedBytes, 8*mib)
	}
}
