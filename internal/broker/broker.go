// Package broker arbitrates one shared fast tier between N concurrent
// runtime tenants. Its contract is robustness: no tenant can take the
// shared memory system down or starve the others.
//
// Each tenant is admitted under a QoS class with a guaranteed floor
// and a burst limit on its fast-tier share. Admission control rejects
// (or queues) a tenant whose guaranteed floor would oversubscribe the
// fast tier — shrunk by the quarantine ledger, so capacity the health
// subsystem has retired is never promised twice. A global arbiter
// rebalances shares once per epoch from per-tenant scorecard signals:
// the tenant whose marginal (budget-clipped) chunk is hottest gains a
// quantum, reclaimed from the free pool first and from the coldest
// burstable tenant above its floor second.
//
// Fault domains stay isolated through the memsim tenant sub-ledgers:
// a tenant's quarantine debits shrink only its own effective budget
// (Tenant.Budget), and its circuit breaker, watermark demotions, and
// degradation ladder live in its own runtime. The broker adds one
// broker-level breaker driven by aggregate fast-tier pressure: when
// the pool as a whole crosses the global high watermark for
// consecutive epochs, the broker sheds best-effort tenants in declared
// shed-priority order (governor.PlanShed) instead of letting capacity
// errors propagate, and restores them through the breaker's half-open
// probe once pressure recedes.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"atmem/internal/governor"
	"atmem/internal/memsim"
)

// ErrAdmission is the sentinel wrapped by every admission rejection,
// so callers can distinguish "the fast tier is promised out" from
// structural errors with errors.Is and queue or degrade instead of
// aborting.
var ErrAdmission = errors.New("broker: admission denied")

// QoSClass is a tenant's service class.
type QoSClass int

const (
	// ClassGuaranteed: the tenant's share is pinned to its floor. It is
	// never shed and never donates to the arbiter.
	ClassGuaranteed QoSClass = iota
	// ClassBurstable: the share floats between the floor and the burst
	// limit under arbiter control. Never shed.
	ClassBurstable
	// ClassBestEffort: no floor; the share floats between zero and the
	// burst limit, and the broker-level breaker may shed it entirely
	// under aggregate pressure.
	ClassBestEffort
)

func (c QoSClass) String() string {
	switch c {
	case ClassGuaranteed:
		return "guaranteed"
	case ClassBurstable:
		return "burstable"
	case ClassBestEffort:
		return "best-effort"
	}
	return fmt.Sprintf("QoSClass(%d)", int(c))
}

// TenantSpec declares one tenant's demands on the shared fast tier.
type TenantSpec struct {
	// Name identifies the tenant (metrics label, reports). Must be
	// unique among live tenants.
	Name string
	// Class is the QoS class.
	Class QoSClass
	// FloorBytes is the guaranteed fast-tier share. Admission promises
	// it; the arbiter never reclaims below it. Must be zero for
	// best-effort tenants.
	FloorBytes uint64
	// BurstBytes caps the share the arbiter may grant. Zero means the
	// floor (guaranteed semantics) for guaranteed tenants and
	// "unlimited" for the other classes.
	BurstBytes uint64
	// ShedPriority orders best-effort shedding: lower sheds first.
	ShedPriority int
	// SLOSeconds is the tenant's per-epoch simulated-latency SLO, for
	// reports (the broker does not enforce it; the harness asserts it).
	SLOSeconds float64
}

// limit returns the spec's effective share cap.
func (s TenantSpec) limit() uint64 {
	if s.BurstBytes == 0 {
		if s.Class == ClassGuaranteed {
			return s.FloorBytes
		}
		return ^uint64(0)
	}
	return s.BurstBytes
}

// Validate rejects specs that can never work.
func (s TenantSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("broker: tenant spec without a name")
	}
	if s.Class == ClassBestEffort && s.FloorBytes != 0 {
		return fmt.Errorf("broker: best-effort tenant %q with a %d-byte floor", s.Name, s.FloorBytes)
	}
	if s.BurstBytes != 0 && s.BurstBytes < s.FloorBytes {
		return fmt.Errorf("broker: tenant %q burst %d below floor %d", s.Name, s.BurstBytes, s.FloorBytes)
	}
	return nil
}

// Config holds the broker's tunables. The zero value takes defaults
// via WithDefaults.
type Config struct {
	// HighWatermark is the aggregate fast-tier occupancy fraction
	// (mapped + quarantined over capacity) above which the broker
	// breaker counts the epoch as degraded. Default 0.92.
	HighWatermark float64
	// LowWatermark is the occupancy the shed ladder drains down to.
	// Default 0.80.
	LowWatermark float64
	// QuantumBytes is the share the arbiter moves per rebalance grant.
	// Default 4 MiB.
	QuantumBytes uint64
	// Breaker configures the broker-level breaker (governor defaults).
	Breaker governor.Config
}

// WithDefaults fills zero fields.
func (c Config) WithDefaults() Config {
	if c.HighWatermark == 0 {
		c.HighWatermark = 0.92
	}
	if c.LowWatermark == 0 {
		c.LowWatermark = 0.80
	}
	if c.QuantumBytes == 0 {
		c.QuantumBytes = 4 << 20
	}
	c.Breaker = c.Breaker.WithDefaults()
	return c
}

// Signal is one tenant's per-epoch scorecard report to the arbiter.
type Signal struct {
	// Epoch is the tenant's own governed epoch (1-based).
	Epoch int
	// FastAccessShare is the fraction of the epoch's accesses served
	// from the fast tier.
	FastAccessShare float64
	// ResidentBytes is the tenant's fast-resident footprint.
	ResidentBytes uint64
	// EpochSeconds is the epoch's simulated wall time.
	EpochSeconds float64
	// MarginalDensity is the heat of the hottest chunk the tenant's
	// budget clipped — zero when the budget was not binding. The
	// arbiter grants the next quantum to the tenant with the hottest
	// marginal chunk.
	MarginalDensity float64
	// ColdestDensity is the heat of the coldest chunk the tenant kept.
	// The arbiter reclaims from the burstable tenant whose coldest
	// kept chunk is coldest.
	ColdestDensity float64
	// ClippedBytes is how much the budget forced the tenant's plan to
	// drop.
	ClippedBytes uint64
}

// Tenant is one admitted runtime's handle on the broker.
type Tenant struct {
	b    *Broker
	id   int
	spec TenantSpec

	share atomic.Uint64 // granted fast-tier share; written under b.mu
	shed  atomic.Bool   // true while the shed ladder holds the share at 0

	// Guarded by b.mu.
	sig      Signal
	reported bool
	departed bool
}

// ID is the tenant's memsim sub-ledger owner id (> 0).
func (t *Tenant) ID() int { return t.id }

// Broker returns the broker the tenant is admitted to.
func (t *Tenant) Broker() *Broker { return t.b }

// Name returns the spec name.
func (t *Tenant) Name() string { return t.spec.Name }

// Spec returns the admitted spec.
func (t *Tenant) Spec() TenantSpec { return t.spec }

// Share returns the currently granted share in bytes (zero while
// shed). Lock-free.
func (t *Tenant) Share() uint64 { return t.share.Load() }

// IsShed reports whether the broker-level breaker is currently
// shedding this tenant. Lock-free.
func (t *Tenant) IsShed() bool { return t.shed.Load() }

// Budget returns the tenant's effective fast-tier budget: the granted
// share minus the quarantine debit its own faults have retired from
// the shared tier. This is the fault-domain charge: a tenant's storm
// shrinks only its own budget.
func (t *Tenant) Budget() uint64 {
	share := t.share.Load()
	debit := t.b.sys.TenantUsage(t.id).QuarantinedBytes
	if debit >= share {
		return 0
	}
	return share - debit
}

// Report publishes the tenant's epoch signal to the arbiter.
func (t *Tenant) Report(sig Signal) {
	t.b.mu.Lock()
	defer t.b.mu.Unlock()
	t.sig = sig
	t.reported = true
}

// Depart detaches the tenant: its share returns to the pool and any
// queued tenant that now fits is admitted. Idempotent. The caller must
// have freed (or be about to free) the tenant's allocations; the
// memsim sub-ledger disowns them on Free.
func (t *Tenant) Depart() {
	t.b.depart(t)
}

// Pending is a queued admission. Ready is closed with the tenant once
// a departure frees enough floor budget.
type Pending struct {
	spec  TenantSpec
	ready chan *Tenant
}

// Ready returns the channel the admitted tenant is delivered on.
func (p *Pending) Ready() <-chan *Tenant { return p.ready }

// RebalanceReport describes one arbiter epoch, for reports and tests.
type RebalanceReport struct {
	// Epoch counts Rebalance calls (1-based).
	Epoch int
	// Pressure is the aggregate fast-tier occupancy fraction observed.
	Pressure float64
	// Breaker is the broker breaker's state after the epoch.
	Breaker governor.State
	// GrantedTo and GrantedBytes describe the epoch's grant ("" when
	// no tenant had a binding budget).
	GrantedTo    string
	GrantedBytes uint64
	// ReclaimedFrom names the burstable donor ("" when the free pool
	// covered the grant).
	ReclaimedFrom string
	// Shed and Restored name tenants the shed ladder dropped/restored
	// this epoch.
	Shed     []string
	Restored []string
}

// Broker arbitrates one shared System between tenants.
type Broker struct {
	sys *memsim.System
	cfg Config

	// placeMu serializes cross-tenant migrations and health passes:
	// the migration engines' staging reservations and the runtimes'
	// post-migration invariants assume no foreign migration is in
	// flight. Kernel phases do not take it.
	placeMu sync.Mutex

	mu       sync.Mutex
	nextID   int
	tenants  map[string]*Tenant
	queue    []*Pending
	breaker  *governor.Breaker
	epoch    int
	shedList []*Tenant // tenants currently shed, in shed order
	shedding atomic.Bool
}

// New builds a broker over the shared system.
func New(sys *memsim.System, cfg Config) *Broker {
	cfg = cfg.WithDefaults()
	return &Broker{
		sys:     sys,
		cfg:     cfg,
		tenants: make(map[string]*Tenant),
		breaker: governor.NewBreaker(cfg.Breaker),
	}
}

// System returns the shared memory system.
func (b *Broker) System() *memsim.System { return b.sys }

// LockPlacement serializes a migration or health pass against every
// other tenant's; pair with UnlockPlacement.
func (b *Broker) LockPlacement() { b.placeMu.Lock() }

// UnlockPlacement releases LockPlacement.
func (b *Broker) UnlockPlacement() { b.placeMu.Unlock() }

// Shedding reports whether the shed ladder currently holds any tenant
// at zero share. Lock-free (the /healthz endpoint reads it).
func (b *Broker) Shedding() bool { return b.shedding.Load() }

// Capacity returns the fast tier's configured capacity.
func (b *Broker) Capacity() uint64 {
	return b.sys.P.Tiers[memsim.TierFast].CapacityBytes
}

// floorsLocked sums the guaranteed floors of live tenants.
func (b *Broker) floorsLocked() uint64 {
	var sum uint64
	for _, t := range b.tenants {
		sum += t.spec.FloorBytes
	}
	return sum
}

// admissible reports whether spec's floor fits beside the live floors
// in `fast capacity − quarantined bytes` — the admission invariant.
// Callers hold b.mu.
func (b *Broker) admissibleLocked(spec TenantSpec) bool {
	avail := b.Capacity() - minU64(b.Capacity(), b.sys.Quarantined())
	return b.floorsLocked()+spec.FloorBytes <= avail
}

// Admit admits a tenant or rejects it with an error wrapping
// ErrAdmission when its guaranteed floor would oversubscribe the fast
// tier (shrunk by the quarantine ledger).
func (b *Broker) Admit(spec TenantSpec) (*Tenant, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.admitLocked(spec)
}

func (b *Broker) admitLocked(spec TenantSpec) (*Tenant, error) {
	if _, live := b.tenants[spec.Name]; live {
		return nil, fmt.Errorf("broker: tenant %q already admitted", spec.Name)
	}
	if !b.admissibleLocked(spec) {
		return nil, fmt.Errorf("%w: tenant %q floor %d over capacity %d − %d quarantined − %d promised",
			ErrAdmission, spec.Name, spec.FloorBytes,
			b.Capacity(), b.sys.Quarantined(), b.floorsLocked())
	}
	b.nextID++
	t := &Tenant{b: b, id: b.nextID, spec: spec}
	t.share.Store(spec.FloorBytes)
	b.tenants[spec.Name] = t
	return t, nil
}

// Enqueue admits the tenant immediately when its floor fits, and
// otherwise queues it; the Pending's Ready channel delivers the tenant
// once a departure frees enough floor budget. Spec errors surface
// immediately.
func (b *Broker) Enqueue(spec TenantSpec) (*Pending, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &Pending{spec: spec, ready: make(chan *Tenant, 1)}
	b.mu.Lock()
	defer b.mu.Unlock()
	if t, err := b.admitLocked(spec); err == nil {
		p.ready <- t
		close(p.ready)
		return p, nil
	} else if !errors.Is(err, ErrAdmission) {
		return nil, err
	}
	b.queue = append(b.queue, p)
	return p, nil
}

// depart removes the tenant and drains the admission queue.
func (b *Broker) depart(t *Tenant) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.departed {
		return
	}
	t.departed = true
	delete(b.tenants, t.spec.Name)
	for i, s := range b.shedList {
		if s == t {
			b.shedList = append(b.shedList[:i], b.shedList[i+1:]...)
			break
		}
	}
	b.shedding.Store(len(b.shedList) > 0)
	t.share.Store(0)
	b.drainQueueLocked()
}

// drainQueueLocked admits queued tenants FIFO while they fit.
func (b *Broker) drainQueueLocked() {
	kept := b.queue[:0]
	for _, p := range b.queue {
		t, err := b.admitLocked(p.spec)
		if err != nil {
			kept = append(kept, p)
			continue
		}
		p.ready <- t
		close(p.ready)
	}
	b.queue = kept
}

// Tenants returns the live tenants sorted by name.
func (b *Broker) Tenants() []*Tenant {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*Tenant, 0, len(b.tenants))
	for _, t := range b.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].spec.Name < out[j].spec.Name })
	return out
}

// pressureLocked returns aggregate fast-tier occupancy: mapped plus
// quarantined bytes over capacity.
func (b *Broker) pressureLocked() float64 {
	cap := b.Capacity()
	if cap == 0 {
		return 1
	}
	return float64(b.sys.Used(memsim.TierFast)+b.sys.Quarantined()) / float64(cap)
}

// Rebalance runs one arbiter epoch: drive the broker-level breaker
// from aggregate pressure (shedding/restoring best-effort tenants
// through its state machine), then move one quantum of share to the
// tenant whose marginal chunk is hottest — from the free pool when it
// covers the grant, otherwise reclaimed from the burstable tenant
// whose coldest kept chunk is coldest. Call it between epoch rounds,
// with no tenant mid-migration.
func (b *Broker) Rebalance() RebalanceReport {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.epoch++
	rep := RebalanceReport{Epoch: b.epoch, Pressure: b.pressureLocked()}
	degraded := rep.Pressure > b.cfg.HighWatermark

	switch b.breaker.Decide() {
	case governor.DecisionSkip:
		// Open: the shed set holds while the cooldown runs down.
	case governor.DecisionProbe:
		// Half-open: when pressure has receded, restore one rung as
		// the probe; the breaker judges the epoch either way.
		if !degraded {
			if name := b.restoreOneLocked(); name != "" {
				rep.Restored = append(rep.Restored, name)
			}
		}
		b.breaker.Observe(degraded)
		if b.breaker.State() == governor.StateClosed {
			// Probe succeeded: the storm is over, restore the rest.
			for {
				name := b.restoreOneLocked()
				if name == "" {
					break
				}
				rep.Restored = append(rep.Restored, name)
			}
		}
	default: // run
		b.breaker.Observe(degraded)
		if b.breaker.State() == governor.StateOpen {
			target := governor.DemotionTarget(b.sys.Used(memsim.TierFast)+b.sys.Quarantined(),
				b.Capacity(), b.cfg.HighWatermark, b.cfg.LowWatermark)
			rep.Shed = b.shedLocked(target)
		}
	}
	rep.Breaker = b.breaker.State()

	if b.breaker.State() == governor.StateClosed {
		b.arbitrateLocked(&rep)
	}
	return rep
}

// shedLocked walks the best-effort shed ladder until target bytes of
// share are reclaimed, returning the shed tenant names.
func (b *Broker) shedLocked(target uint64) []string {
	var ladder []*Tenant
	for _, t := range b.tenants {
		if t.spec.Class == ClassBestEffort && !t.shed.Load() {
			ladder = append(ladder, t)
		}
	}
	sort.Slice(ladder, func(i, j int) bool {
		if ladder[i].spec.ShedPriority != ladder[j].spec.ShedPriority {
			return ladder[i].spec.ShedPriority < ladder[j].spec.ShedPriority
		}
		return ladder[i].spec.Name < ladder[j].spec.Name
	})
	steps := make([]governor.ShedStep, len(ladder))
	for i, t := range ladder {
		steps[i] = governor.ShedStep{Name: t.spec.Name, Bytes: t.share.Load()}
	}
	n := governor.PlanShed(steps, target)
	shed := make([]string, 0, n)
	for _, t := range ladder[:n] {
		t.share.Store(0)
		t.shed.Store(true)
		b.shedList = append(b.shedList, t)
		shed = append(shed, t.spec.Name)
	}
	b.shedding.Store(len(b.shedList) > 0)
	return shed
}

// restoreOneLocked un-sheds the most recently shed tenant (reverse
// shed order: the highest-priority share returns first) and returns
// its name, or "" when nothing is shed. The restored tenant restarts
// from zero share and re-earns it through the arbiter.
func (b *Broker) restoreOneLocked() string {
	if len(b.shedList) == 0 {
		return ""
	}
	t := b.shedList[len(b.shedList)-1]
	b.shedList = b.shedList[:len(b.shedList)-1]
	t.shed.Store(false)
	b.shedding.Store(len(b.shedList) > 0)
	return t.spec.Name
}

// arbitrateLocked performs the epoch's share moves. Every tenant whose
// budget was binding (nonzero marginal density) is a grant candidate,
// served hottest-marginal first from the free pool; only the hottest
// may additionally reclaim from the coldest burstable donor above its
// floor when the pool runs dry.
func (b *Broker) arbitrateLocked(rep *RebalanceReport) {
	var hungry []*Tenant
	for _, t := range b.tenants {
		if t.shed.Load() || !t.reported || t.sig.MarginalDensity <= 0 {
			continue
		}
		if t.share.Load() >= t.spec.limit() {
			continue
		}
		hungry = append(hungry, t)
	}
	if len(hungry) == 0 {
		return
	}
	sort.Slice(hungry, func(i, j int) bool {
		if hungry[i].sig.MarginalDensity != hungry[j].sig.MarginalDensity {
			return hungry[i].sig.MarginalDensity > hungry[j].sig.MarginalDensity
		}
		return hungry[i].spec.Name < hungry[j].spec.Name
	})

	// Free pool: capacity minus quarantine not attributed to any
	// tenant (attributed debits are already charged inside the owning
	// tenant's budget) minus the promised shares.
	var shares, attributed uint64
	for _, t := range b.tenants {
		shares += t.share.Load()
		attributed += b.sys.TenantUsage(t.id).QuarantinedBytes
	}
	unattr := b.sys.Quarantined() - minU64(b.sys.Quarantined(), attributed)
	pool := b.Capacity() - minU64(b.Capacity(), unattr+shares)

	for i, t := range hungry {
		quantum := minU64(b.cfg.QuantumBytes, t.spec.limit()-t.share.Load())
		grant := minU64(quantum, pool)
		pool -= grant
		if i == 0 && grant < quantum {
			// The hottest tenant outranks cold shares: reclaim the
			// remainder from the coldest donor above its floor.
			if donor := b.coldestDonorLocked(t); donor != nil {
				take := minU64(quantum-grant, donor.share.Load()-donor.spec.FloorBytes)
				donor.share.Store(donor.share.Load() - take)
				grant += take
				rep.ReclaimedFrom = donor.spec.Name
			}
		}
		if grant == 0 {
			continue
		}
		t.share.Store(t.share.Load() + grant)
		if rep.GrantedTo == "" {
			rep.GrantedTo = t.spec.Name
			rep.GrantedBytes = grant
		}
	}
}

// coldestDonorLocked picks the reclaim victim: a non-guaranteed tenant
// above its floor whose own budget is not binding, coldest kept chunk
// first, deterministic name tie-break.
func (b *Broker) coldestDonorLocked(grantee *Tenant) *Tenant {
	var donor *Tenant
	for _, t := range b.tenants {
		if t == grantee || t.shed.Load() || !t.reported {
			continue
		}
		if t.spec.Class == ClassGuaranteed || t.share.Load() <= t.spec.FloorBytes {
			continue
		}
		if t.sig.MarginalDensity > 0 {
			continue // its own budget is binding; not a donor
		}
		if donor == nil ||
			t.sig.ColdestDensity < donor.sig.ColdestDensity ||
			(t.sig.ColdestDensity == donor.sig.ColdestDensity && t.spec.Name < donor.spec.Name) {
			donor = t
		}
	}
	return donor
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
