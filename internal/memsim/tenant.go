package memsim

import (
	"fmt"
	"sort"
)

// Tenant sub-ledgers: the system can attribute fast-tier occupancy and
// quarantine debits to the tenant that owns each address range, so a
// broker sharing one System across runtimes can charge every byte —
// including retired ones — to the runtime that placed it there.
//
// Ownership is declarative: a runtime adopts the ranges it allocated
// (AdoptRange after a successful allocation) and the system keeps the
// per-tenant counters current at every mutation point that changes a
// page's tier (Retier, RestoreTiers, Free) or retires pages
// (RetirePages). All bookkeeping happens under the existing system
// lock on control-plane paths only; the kernel access fast path never
// consults the owner table, and a system with no adopted ranges pays
// nothing.

// ownerRange is one adopted stretch of the address space.
type ownerRange struct {
	base, size uint64
	owner      int
}

// tenantUsage is one tenant's sub-ledger. Plain counters: every
// mutation and read happens under s.mu.
type tenantUsage struct {
	fast        uint64 // owned bytes currently mapped on the fast tier
	quarantined uint64 // quarantine debits attributed to the owner
}

// TenantUsage is a snapshot of one tenant's sub-ledger.
type TenantUsage struct {
	// FastBytes is how many of the tenant's owned bytes are mapped on
	// the fast tier right now.
	FastBytes uint64
	// QuarantinedBytes is the share of the quarantine ledger retired
	// out of ranges the tenant currently owns — the capacity debit the
	// tenant's faults cost the shared fast tier.
	QuarantinedBytes uint64
}

// AdoptRange records that owner (> 0) owns [base, base+size) and folds
// the range's current fast-tier bytes into the owner's sub-ledger.
// Adopting an already-owned stretch re-owns it (the previous owner's
// counters are adjusted). Zero-size adoptions are ignored.
func (s *System) AdoptRange(owner int, base, size uint64) {
	if size == 0 || owner <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disownLocked(base, size)
	s.owners = append(s.owners, ownerRange{base: base, size: size, owner: owner})
	sort.Slice(s.owners, func(i, j int) bool { return s.owners[i].base < s.owners[j].base })
	u := s.tenantLocked(owner)
	u.fast += s.fastBytesLocked(base, size)
	u.quarantined += s.quarOverlapBytesLocked(base, size)
}

// DisownRange removes ownership of any stretch of [base, base+size),
// clipping partially-overlapping owner ranges. The owners' fast and
// quarantine counters drop by the disowned bytes' contributions; the
// global ledgers are untouched (a freed range's quarantined pages stay
// retired, they just stop being charged to a tenant).
func (s *System) DisownRange(base, size uint64) {
	if size == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disownLocked(base, size)
}

func (s *System) disownLocked(base, size uint64) {
	var next []ownerRange
	for _, or := range s.owners {
		lo, hi := maxU64(or.base, base), minU64(or.base+or.size, base+size)
		if lo >= hi { // no overlap
			next = append(next, or)
			continue
		}
		u := s.tenantLocked(or.owner)
		u.fast -= s.fastBytesLocked(lo, hi-lo)
		u.quarantined -= s.quarOverlapBytesLocked(lo, hi-lo)
		if or.base < lo {
			next = append(next, ownerRange{base: or.base, size: lo - or.base, owner: or.owner})
		}
		if or.base+or.size > hi {
			next = append(next, ownerRange{base: hi, size: or.base + or.size - hi, owner: or.owner})
		}
	}
	s.owners = next
}

// TenantUsage returns owner's sub-ledger snapshot (zero for unknown
// owners).
func (s *System) TenantUsage(owner int) TenantUsage {
	s.mu.Lock()
	defer s.mu.Unlock()
	u := s.tenants[owner]
	if u == nil {
		return TenantUsage{}
	}
	return TenantUsage{FastBytes: u.fast, QuarantinedBytes: u.quarantined}
}

// tenantLocked resolves (or creates) owner's sub-ledger; callers hold
// s.mu.
func (s *System) tenantLocked(owner int) *tenantUsage {
	if s.tenants == nil {
		s.tenants = make(map[int]*tenantUsage)
	}
	u := s.tenants[owner]
	if u == nil {
		u = &tenantUsage{}
		s.tenants[owner] = u
	}
	return u
}

// forEachOwnedOverlapLocked calls fn once per owner range overlapping
// [base, base+size) with the overlap's byte count. Owner ranges are
// byte-granular (an adopted object need not end on a page boundary),
// so per-page attribution must clip to the owned stretch — charging
// whole pages would drift from the recomputed ledger on the last,
// partially-owned page. Callers hold s.mu.
func (s *System) forEachOwnedOverlapLocked(base, size uint64, fn func(u *tenantUsage, bytes uint64)) {
	n := len(s.owners)
	if n == 0 {
		return
	}
	end := base + size
	i := sort.Search(n, func(i int) bool { return s.owners[i].base+s.owners[i].size > base })
	for ; i < n && s.owners[i].base < end; i++ {
		or := s.owners[i]
		lo, hi := maxU64(or.base, base), minU64(or.base+or.size, end)
		if lo < hi {
			fn(s.tenantLocked(or.owner), hi-lo)
		}
	}
}

// tenantRetierLocked charges one page's tier change to the owners it
// overlaps (if any); callers hold s.mu and call it exactly where the
// global used ledger moves.
func (s *System) tenantRetierLocked(pageAddr uint64, from, to Tier) {
	if len(s.owners) == 0 || from == to {
		return
	}
	s.forEachOwnedOverlapLocked(pageAddr, SmallPage, func(u *tenantUsage, bytes uint64) {
		if from == TierFast {
			u.fast -= bytes
		}
		if to == TierFast {
			u.fast += bytes
		}
	})
}

// tenantFreeLocked drops one freed fast-mapped page's owned bytes from
// its owners' fast counters; callers hold s.mu.
func (s *System) tenantFreeLocked(pageAddr uint64, t Tier) {
	if len(s.owners) == 0 || t != TierFast {
		return
	}
	s.forEachOwnedOverlapLocked(pageAddr, SmallPage, func(u *tenantUsage, bytes uint64) {
		u.fast -= bytes
	})
}

// tenantRetireLocked attributes one newly-quarantined range to the
// owners it overlaps; callers hold s.mu.
func (s *System) tenantRetireLocked(base, size uint64) {
	for _, or := range s.owners {
		lo, hi := maxU64(or.base, base), minU64(or.base+or.size, base+size)
		if lo < hi {
			s.tenantLocked(or.owner).quarantined += hi - lo
		}
	}
}

// fastBytesLocked counts the fast-mapped bytes of [base, base+size);
// callers hold s.mu.
func (s *System) fastBytesLocked(base, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	var out uint64
	first := base >> smallShift
	last := (base + size - 1) >> smallShift
	for i := first; i <= last; i++ {
		pi, err := s.pt.lookup(i)
		if err != nil || !pi.Mapped || pi.Tier != TierFast {
			continue
		}
		lo, hi := i<<smallShift, i<<smallShift+SmallPage
		if lo < base {
			lo = base
		}
		if hi > base+size {
			hi = base + size
		}
		out += hi - lo
	}
	return out
}

// quarOverlapBytesLocked counts the quarantined bytes inside
// [base, base+size); callers hold s.mu.
func (s *System) quarOverlapBytesLocked(base, size uint64) uint64 {
	var out uint64
	for _, q := range s.quarRanges {
		lo, hi := maxU64(q.Base, base), minU64(q.Base+q.Size, base+size)
		if lo < hi {
			out += hi - lo
		}
	}
	return out
}

// checkTenantsLocked recomputes every tenant's sub-ledger from the
// page table, owner table, and quarantine ledger, and compares it to
// the running counters — the tenant-attribution half of
// CheckConsistency. Callers hold s.mu.
func (s *System) checkTenantsLocked() error {
	want := make(map[int]tenantUsage, len(s.tenants))
	for _, or := range s.owners {
		w := want[or.owner]
		w.fast += s.fastBytesLocked(or.base, or.size)
		w.quarantined += s.quarOverlapBytesLocked(or.base, or.size)
		want[or.owner] = w
	}
	for owner, u := range s.tenants {
		w := want[owner]
		if u.fast != w.fast || u.quarantined != w.quarantined {
			return fmt.Errorf("memsim: tenant %d sub-ledger drift: fast %d (recomputed %d), quarantined %d (recomputed %d)",
				owner, u.fast, w.fast, u.quarantined, w.quarantined)
		}
	}
	return nil
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
