package memsim

import (
	"testing"
	"testing/quick"
)

// Property: AllocPrefer always maps the full requested range, never
// exceeds either tier's capacity, and fills the fast tier before
// spilling.
func TestAllocPreferProperty(t *testing.T) {
	check := func(sizes []uint16) bool {
		p := testParams()
		p.Tiers[TierFast].CapacityBytes = 2 * MiB
		p.Tiers[TierSlow].CapacityBytes = 64 * MiB
		s := NewSystem(p)
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		for _, raw := range sizes {
			size := uint64(raw)%(512*KiB) + 1
			base, err := s.AllocPrefer(size)
			if err != nil {
				// Only acceptable once the slow tier is exhausted,
				// which these sizes cannot reach.
				return false
			}
			on := s.BytesOnTier(base, size)
			if on[TierFast]+on[TierSlow] != size {
				return false // unmapped hole inside the object
			}
			// If any byte spilled to slow, fast must be nearly full.
			if on[TierSlow] > 0 && s.FreeCapacity(TierFast) > HugePage {
				return false
			}
		}
		return s.Used(TierFast) <= p.Tiers[TierFast].CapacityBytes &&
			s.Used(TierSlow) <= p.Tiers[TierSlow].CapacityBytes
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAllocPreferExactFit(t *testing.T) {
	p := testParams()
	p.Tiers[TierFast].CapacityBytes = HugePage
	s := NewSystem(p)
	base, err := s.AllocPrefer(HugePage)
	if err != nil {
		t.Fatal(err)
	}
	if tier, _ := s.TierOf(base); tier != TierFast {
		t.Error("exact-fit allocation not on fast tier")
	}
	if s.FreeCapacity(TierFast) != 0 {
		t.Errorf("free capacity %d after exact fit", s.FreeCapacity(TierFast))
	}
	// The next allocation goes entirely slow.
	b2, err := s.AllocPrefer(SmallPage)
	if err != nil {
		t.Fatal(err)
	}
	if tier, _ := s.TierOf(b2); tier != TierSlow {
		t.Error("allocation after exhaustion not on slow tier")
	}
}

func TestAllocPreferSlowExhaustion(t *testing.T) {
	p := testParams()
	p.Tiers[TierFast].CapacityBytes = HugePage
	p.Tiers[TierSlow].CapacityBytes = HugePage
	s := NewSystem(p)
	if _, err := s.AllocPrefer(4 * HugePage); err == nil {
		t.Error("allocation exceeding both tiers accepted")
	}
}

func TestAllocPreferSpillIsSmallPaged(t *testing.T) {
	p := testParams()
	p.Tiers[TierFast].CapacityBytes = 3 * HugePage
	s := NewSystem(p)
	// Consume most of the fast tier so the next big allocation splits.
	if _, err := s.AllocPrefer(2 * HugePage); err != nil {
		t.Fatal(err)
	}
	base, err := s.AllocPrefer(4 * HugePage)
	if err != nil {
		t.Fatal(err)
	}
	// A split allocation cannot promise huge pages.
	if s.PageTable().Translate(base).Huge {
		t.Error("split preferred allocation kept huge pages at its head")
	}
	on := s.BytesOnTier(base, 4*HugePage)
	if on[TierFast] != HugePage || on[TierSlow] != 3*HugePage {
		t.Errorf("split %v, want 1/3 huge pages", on)
	}
}
