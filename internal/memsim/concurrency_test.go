package memsim

import (
	"sync"
	"testing"
	"time"
)

// These tests exercise the concurrency machinery that makes migration
// safe while accessors run: the per-page seqlock (generation + busy
// bit), the epoch-based shootdown log, the quiesce write gates, and the
// atomic capacity ledgers. Run them with -race.

func TestTranslateStableWaitsOutBusyPage(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, SmallPage, TierSlow, false); err != nil {
		t.Fatal(err)
	}
	pt.markBusy(0)

	type result struct {
		pi      PageInfo
		retries int
	}
	started := make(chan struct{})
	got := make(chan result, 1)
	go func() {
		close(started)
		pi, retries := pt.TranslateStable(0)
		got <- result{pi, retries}
	}()
	<-started
	// Hold the write window open long enough that the reader observes
	// the busy word, then commit the new tier (set clears busy and
	// bumps the generation).
	time.Sleep(5 * time.Millisecond)
	pi := unpackPTE(pt.word(0))
	pi.Tier = TierFast
	pt.set(0, pi)

	r := <-got
	if !r.pi.Mapped || r.pi.Tier != TierFast {
		t.Fatalf("TranslateStable returned %+v, want mapped fast-tier page", r.pi)
	}
	if r.retries == 0 {
		t.Error("TranslateStable reported no retries despite spinning on a busy page")
	}
}

func TestTranslateStableFastPathNoRetries(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, SmallPage, TierFast, false); err != nil {
		t.Fatal(err)
	}
	pi, retries := pt.TranslateStable(123)
	if retries != 0 {
		t.Fatalf("uncontended translation retried %d times", retries)
	}
	if !pi.Mapped || pi.Tier != TierFast {
		t.Fatalf("got %+v, want mapped fast-tier page", pi)
	}
}

func TestTierOfDoesNotBlockOnBusyPage(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, SmallPage, TierSlow, false); err != nil {
		t.Fatal(err)
	}
	pt.markBusy(0)
	defer pt.clearBusy(0)
	// TierOf serves the writeback/eviction path, which must never wait
	// out a remap in progress: it returns the last committed tier.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if tier, ok := pt.TierOf(0); !ok || tier != TierSlow {
			t.Errorf("TierOf = %v,%v, want last committed tier %v", tier, ok, TierSlow)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("TierOf blocked on a busy page")
	}
}

func TestGenerationBumpsOnRetier(t *testing.T) {
	s := NewSystem(NVMDRAMParams())
	base, err := s.Alloc(4*SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	gen0 := s.pt.Generation(base)
	if err := s.Retier(base, 4*SmallPage, TierFast); err != nil {
		t.Fatal(err)
	}
	if gen1 := s.pt.Generation(base); gen1 <= gen0 {
		t.Errorf("generation did not advance across retier: %d -> %d", gen0, gen1)
	}
}

func TestShootdownLogDrains(t *testing.T) {
	s := NewSystem(NVMDRAMParams())
	base, err := s.Alloc(2*SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	a1 := s.NewAccessor()
	a2 := s.NewAccessor()
	// Warm both TLBs so the shootdown has something to invalidate.
	a1.Load(base, 8)
	a2.Load(base, 8)

	s.Shootdown(base, 2*SmallPage)
	s.Shootdown(base, SmallPage)
	if got := s.ShootdownGen(); got != 2 {
		t.Fatalf("ShootdownGen = %d, want 2", got)
	}

	a1.DrainShootdowns()
	if a1.ShootdownsApplied != 2 {
		t.Errorf("explicit drain applied %d shootdowns, want 2", a1.ShootdownsApplied)
	}
	a1.DrainShootdowns() // idempotent: nothing new published
	if a1.ShootdownsApplied != 2 {
		t.Errorf("re-drain applied more shootdowns: %d", a1.ShootdownsApplied)
	}

	// The other accessor picks the log up lazily at its next access.
	a2.Load(base, 8)
	if a2.ShootdownsApplied != 2 {
		t.Errorf("access-entry drain applied %d shootdowns, want 2", a2.ShootdownsApplied)
	}
}

func TestQuiesceGateBlocksWritersNotReaders(t *testing.T) {
	s := NewSystem(NVMDRAMParams())
	base, err := s.Alloc(4*SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	writer := s.NewAccessor()
	reader := s.NewAccessor()

	g := s.QuiesceBegin(base, 2*SmallPage)

	// Reads never wait at the gate: the staged copy leaves a valid
	// committed mapping readable throughout.
	readDone := make(chan struct{})
	go func() {
		defer close(readDone)
		reader.Load(base, 8)
	}()
	select {
	case <-readDone:
	case <-time.After(2 * time.Second):
		t.Fatal("read blocked at a quiesce gate")
	}

	// A store inside the gated range must wait for QuiesceEnd.
	writeDone := make(chan struct{})
	go func() {
		defer close(writeDone)
		writer.Store(base, 8)
	}()
	select {
	case <-writeDone:
		t.Fatal("store completed while the quiesce gate was held")
	case <-time.After(10 * time.Millisecond):
	}
	// A store outside the gated range passes immediately.
	writer2 := s.NewAccessor()
	outsideDone := make(chan struct{})
	go func() {
		defer close(outsideDone)
		writer2.Store(base+3*SmallPage, 8)
	}()
	select {
	case <-outsideDone:
	case <-time.After(2 * time.Second):
		t.Fatal("store outside the gated range blocked")
	}

	s.QuiesceEnd(g)
	select {
	case <-writeDone:
	case <-time.After(2 * time.Second):
		t.Fatal("store still blocked after QuiesceEnd")
	}
	if writer.QuiesceStalls == 0 {
		t.Error("gated store recorded no quiesce stall")
	}
	if writer2.QuiesceStalls != 0 {
		t.Errorf("ungated store recorded %d quiesce stalls", writer2.QuiesceStalls)
	}
}

func TestLedgersStayConsistentUnderConcurrency(t *testing.T) {
	s := NewSystem(NVMDRAMParams())
	if _, err := s.Alloc(8*SmallPage, TierSlow); err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		rounds  = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := s.Reserve(SmallPage, TierFast); err == nil {
					s.Unreserve(SmallPage, TierFast)
				}
				// Lock-free readers race the mutators.
				_ = s.Used(TierFast)
				_ = s.Reserved(TierFast)
				_ = s.FreeCapacity(TierFast)
				_, _ = s.TierUsage(TierSlow)
			}
		}()
	}
	wg.Wait()
	for tr := Tier(0); tr < NumTiers; tr++ {
		if res := s.Reserved(tr); res != 0 {
			t.Errorf("tier %s: %d bytes still reserved after balanced reserve/unreserve", tr, res)
		}
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestConcurrentRetierAndAccess(t *testing.T) {
	s := NewSystem(NVMDRAMParams())
	const pages = 64
	base, err := s.Alloc(pages*SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := s.NewAccessor()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a.Load(base+uint64(i%pages)*SmallPage, 8)
			}
		}()
	}
	// Bounce the region between tiers while the readers hammer it; every
	// translation must come back self-consistent (the seqlock guarantees
	// no torn tier/generation pair, which -race plus CheckConsistency
	// verifies).
	for i := 0; i < 50; i++ {
		tier := TierFast
		if i%2 == 1 {
			tier = TierSlow
		}
		if err := s.Retier(base, pages*SmallPage, tier); err != nil {
			t.Fatal(err)
		}
		s.Shootdown(base, pages*SmallPage)
	}
	close(stop)
	wg.Wait()
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}
