package memsim

import (
	"testing"
)

// TestTenantLedgerRetier pins the sub-ledger across the tier-mutation
// points: adoption snapshots current placement, retiers move the fast
// charge between owners and the unowned pool, and CheckConsistency
// recomputes the counters.
func TestTenantLedgerRetier(t *testing.T) {
	s := NewSystem(testParams())
	a, err := s.Alloc(8*SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(4*SmallPage, TierFast)
	if err != nil {
		t.Fatal(err)
	}
	s.AdoptRange(1, a, 8*SmallPage)
	s.AdoptRange(2, b, 4*SmallPage)
	if got := s.TenantUsage(1).FastBytes; got != 0 {
		t.Fatalf("tenant 1 fast = %d, want 0", got)
	}
	if got := s.TenantUsage(2).FastBytes; got != 4*SmallPage {
		t.Fatalf("tenant 2 fast = %d, want %d", got, 4*SmallPage)
	}

	if err := s.Retier(a, 2*SmallPage, TierFast); err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(b, 1*SmallPage, TierSlow); err != nil {
		t.Fatal(err)
	}
	if got := s.TenantUsage(1).FastBytes; got != 2*SmallPage {
		t.Errorf("tenant 1 fast = %d, want %d", got, 2*SmallPage)
	}
	if got := s.TenantUsage(2).FastBytes; got != 3*SmallPage {
		t.Errorf("tenant 2 fast = %d, want %d", got, 3*SmallPage)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// RestoreTiers (the rollback primitive) keeps the sub-ledger too.
	snap, err := s.TierSnapshot(a, 2*SmallPage)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(a, 2*SmallPage, TierSlow); err != nil {
		t.Fatal(err)
	}
	if err := s.RestoreTiers(a, snap); err != nil {
		t.Fatal(err)
	}
	if got := s.TenantUsage(1).FastBytes; got != 2*SmallPage {
		t.Errorf("tenant 1 fast after restore = %d, want %d", got, 2*SmallPage)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantLedgerQuarantineAndFree pins quarantine attribution — a
// retirement inside an owned range debits the owner — and that Free
// disowns the range, returning its charges to the unowned pool.
func TestTenantLedgerQuarantineAndFree(t *testing.T) {
	s := NewSystem(testParams())
	a, err := s.Alloc(8*SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	s.AdoptRange(7, a, 8*SmallPage)
	if err := s.RetirePages(a, 2*SmallPage); err != nil {
		t.Fatal(err)
	}
	u := s.TenantUsage(7)
	if u.QuarantinedBytes != 2*SmallPage {
		t.Errorf("quarantined debit = %d, want %d", u.QuarantinedBytes, 2*SmallPage)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	if err := s.Free(a, 8*SmallPage); err != nil {
		t.Fatal(err)
	}
	u = s.TenantUsage(7)
	if u.FastBytes != 0 || u.QuarantinedBytes != 0 {
		t.Errorf("after free: usage = %+v, want zero", u)
	}
	if got := s.Quarantined(); got != 2*SmallPage {
		t.Errorf("global quarantine = %d, want %d (retired pages stay retired)", got, 2*SmallPage)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantLedgerPartialPage pins byte-granular attribution: an
// adopted range that ends mid-page (real graph objects rarely end on a
// page boundary) charges only its owned bytes at every mutation point,
// so the incremental counters match the recomputed ledger exactly.
func TestTenantLedgerPartialPage(t *testing.T) {
	s := NewSystem(testParams())
	const size = 3*SmallPage + 8 // last page only 8 bytes owned
	a, err := s.Alloc(size, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	s.AdoptRange(1, a, size)
	if got := s.TenantUsage(1).FastBytes; got != 0 {
		t.Fatalf("fast before retier = %d, want 0", got)
	}

	// Promote the whole (page-rounded) allocation: the owner is charged
	// for its owned bytes only, not the 4 mapped pages.
	mapped := uint64(4 * SmallPage)
	if err := s.Retier(a, mapped, TierFast); err != nil {
		t.Fatal(err)
	}
	if got := s.TenantUsage(1).FastBytes; got != size {
		t.Errorf("fast after promote = %d, want %d", got, size)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	// Demote just the partially-owned last page: only the 8 owned bytes
	// come off the counter.
	if err := s.Retier(a+3*SmallPage, SmallPage, TierSlow); err != nil {
		t.Fatal(err)
	}
	if got := s.TenantUsage(1).FastBytes; got != 3*SmallPage {
		t.Errorf("fast after partial demote = %d, want %d", got, 3*SmallPage)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	if err := s.Free(a, size); err != nil {
		t.Fatal(err)
	}
	if got := s.TenantUsage(1).FastBytes; got != 0 {
		t.Errorf("fast after free = %d, want 0", got)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestTenantAdoptSeesQuarantine: adopting a range that already overlaps
// the quarantine ledger inherits the debit (a tenant that maps around
// damaged space still pays for what its span retired).
func TestTenantAdoptSeesQuarantine(t *testing.T) {
	s := NewSystem(testParams())
	a, err := s.Alloc(4*SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RetirePages(a, SmallPage); err != nil {
		t.Fatal(err)
	}
	s.AdoptRange(3, a, 4*SmallPage)
	if got := s.TenantUsage(3).QuarantinedBytes; got != SmallPage {
		t.Errorf("adopted quarantine debit = %d, want %d", got, SmallPage)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}
