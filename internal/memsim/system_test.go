package memsim

import (
	"testing"
)

func testParams() SystemParams {
	p := NVMDRAMParams()
	p.Tiers[TierFast].CapacityBytes = 4 * MiB
	p.Tiers[TierSlow].CapacityBytes = 32 * MiB
	return p
}

func TestAllocBasics(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(3*SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if base%HugePage != 0 {
		t.Errorf("base %#x not huge-aligned", base)
	}
	if tier, ok := s.TierOf(base); !ok || tier != TierSlow {
		t.Errorf("TierOf = %v,%v", tier, ok)
	}
	if used := s.Used(TierSlow); used != 3*SmallPage {
		t.Errorf("used = %d", used)
	}
}

func TestAllocHugeBacking(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(HugePage+1, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if !s.PageTable().Translate(base).Huge {
		t.Error("large allocation should be huge-backed")
	}
	small, err := s.Alloc(SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if s.PageTable().Translate(small).Huge {
		t.Error("small allocation should use base pages")
	}
}

func TestAllocCapacityEnforced(t *testing.T) {
	s := NewSystem(testParams())
	if _, err := s.Alloc(5*MiB, TierFast); err == nil {
		t.Error("over-capacity allocation accepted")
	}
	if _, err := s.Alloc(3*MiB, TierFast); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc(2*MiB, TierFast); err == nil {
		t.Error("cumulative over-capacity allocation accepted")
	}
}

func TestFreeReleasesCapacity(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(2*MiB, TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Free(base, 2*MiB); err != nil {
		t.Fatal(err)
	}
	if used := s.Used(TierFast); used != 0 {
		t.Errorf("used = %d after free", used)
	}
	if _, ok := s.TierOf(base); ok {
		t.Error("freed range still mapped")
	}
}

func TestFreePartiallyMigratedObject(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(4*HugePage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(base, HugePage, TierFast); err != nil {
		t.Fatal(err)
	}
	if err := s.Free(base, 4*HugePage); err != nil {
		t.Fatal(err)
	}
	if s.Used(TierFast) != 0 || s.Used(TierSlow) != 0 {
		t.Errorf("capacity accounting broken: fast=%d slow=%d",
			s.Used(TierFast), s.Used(TierSlow))
	}
}

func TestRetierAccounting(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(HugePage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(base, HugePage, TierFast); err != nil {
		t.Fatal(err)
	}
	if s.Used(TierFast) != HugePage || s.Used(TierSlow) != 0 {
		t.Errorf("fast=%d slow=%d", s.Used(TierFast), s.Used(TierSlow))
	}
	// Retier is idempotent in accounting.
	if err := s.Retier(base, HugePage, TierFast); err != nil {
		t.Fatal(err)
	}
	if s.Used(TierFast) != HugePage {
		t.Error("double retier double-counted")
	}
}

func TestRetierCapacityFailureLeavesStateIntact(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(8*MiB, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(base, 8*MiB, TierFast); err == nil {
		t.Fatal("retier beyond fast capacity accepted")
	}
	if tier, _ := s.TierOf(base); tier != TierSlow {
		t.Error("failed retier moved pages")
	}
	if s.Used(TierFast) != 0 {
		t.Error("failed retier charged capacity")
	}
}

func TestRetierDemotionRoundTrip(t *testing.T) {
	// The demotion direction (fast → slow) the governor relies on:
	// accounting and placement must mirror the promotion path exactly.
	s := NewSystem(testParams())
	base, err := s.Alloc(HugePage, TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(base, HugePage, TierSlow); err != nil {
		t.Fatal(err)
	}
	if s.Used(TierFast) != 0 || s.Used(TierSlow) != HugePage {
		t.Errorf("fast=%d slow=%d after demotion", s.Used(TierFast), s.Used(TierSlow))
	}
	if tier, _ := s.TierOf(base); tier != TierSlow {
		t.Error("demoted page still on fast tier")
	}
	if err := s.Retier(base, HugePage, TierFast); err != nil {
		t.Fatal(err)
	}
	if s.Used(TierFast) != HugePage || s.Used(TierSlow) != 0 {
		t.Errorf("fast=%d slow=%d after re-promotion", s.Used(TierFast), s.Used(TierSlow))
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestEffectiveOccupancy(t *testing.T) {
	s := NewSystem(testParams()) // 4 MiB fast tier
	if got := s.EffectiveOccupancy(TierFast, 0); got != 0 {
		t.Errorf("empty occupancy %v", got)
	}
	if _, err := s.Alloc(MiB, TierFast); err != nil {
		t.Fatal(err)
	}
	if got := s.EffectiveOccupancy(TierFast, 0); got != 0.25 {
		t.Errorf("occupancy %v, want 0.25", got)
	}
	// A holdback shrinks the denominator: 1 MiB of 2 MiB effective.
	if got := s.EffectiveOccupancy(TierFast, 2*MiB); got != 0.5 {
		t.Errorf("held-back occupancy %v, want 0.5", got)
	}
	// Reservations count as committed.
	if err := s.Reserve(MiB, TierFast); err != nil {
		t.Fatal(err)
	}
	if got := s.EffectiveOccupancy(TierFast, 0); got != 0.5 {
		t.Errorf("occupancy with reservation %v, want 0.5", got)
	}
	s.Unreserve(MiB, TierFast)
	// A holdback at or above capacity reads as fully pressured.
	if got := s.EffectiveOccupancy(TierFast, 4*MiB); got != 1 {
		t.Errorf("fully-held-back occupancy %v, want 1", got)
	}
}

func TestReserveUnreserve(t *testing.T) {
	s := NewSystem(testParams())
	if err := s.Reserve(MiB, TierFast); err != nil {
		t.Fatal(err)
	}
	if s.FreeCapacity(TierFast) != 3*MiB {
		t.Errorf("free capacity %d", s.FreeCapacity(TierFast))
	}
	s.Unreserve(MiB, TierFast)
	if s.FreeCapacity(TierFast) != 4*MiB {
		t.Errorf("free capacity %d after unreserve", s.FreeCapacity(TierFast))
	}
	if err := s.Reserve(5*MiB, TierFast); err == nil {
		t.Error("over-capacity reserve accepted")
	}
}

func TestBytesOnTier(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(4*SmallPage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(base, 2*SmallPage, TierFast); err != nil {
		t.Fatal(err)
	}
	on := s.BytesOnTier(base, 4*SmallPage)
	if on[TierFast] != 2*SmallPage || on[TierSlow] != 2*SmallPage {
		t.Errorf("split accounting wrong: %v", on)
	}
	// Sub-page range accounting clips to the byte range.
	on = s.BytesOnTier(base+100, 200)
	if on[TierFast] != 200 || on[TierSlow] != 0 {
		t.Errorf("sub-page accounting wrong: %v", on)
	}
}

func TestAllocPreferFillsFastFirst(t *testing.T) {
	p := testParams()
	p.Tiers[TierFast].CapacityBytes = 1 * MiB
	s := NewSystem(p)
	// Fits wholly: goes fast, huge-backed.
	b1, err := s.AllocPrefer(512 * KiB)
	if err != nil {
		t.Fatal(err)
	}
	if tier, _ := s.TierOf(b1); tier != TierFast {
		t.Error("first allocation should land on fast memory")
	}
	// Does not fit wholly: leading pages fast, rest slow.
	b2, err := s.AllocPrefer(1 * MiB)
	if err != nil {
		t.Fatal(err)
	}
	on := s.BytesOnTier(b2, 1*MiB)
	if on[TierFast] == 0 || on[TierSlow] == 0 {
		t.Errorf("spill allocation not split: %v", on)
	}
	if on[TierFast]+on[TierSlow] != 1*MiB {
		t.Errorf("split does not cover object: %v", on)
	}
	// Fast is now exhausted: whole allocation goes slow, huge-backed.
	b3, err := s.AllocPrefer(HugePage)
	if err != nil {
		t.Fatal(err)
	}
	if tier, _ := s.TierOf(b3); tier != TierSlow {
		t.Error("post-exhaustion allocation should land on slow memory")
	}
	if !s.PageTable().Translate(b3).Huge {
		t.Error("whole-slow preferred allocation should keep huge pages")
	}
}

func TestAllocZeroSize(t *testing.T) {
	s := NewSystem(testParams())
	if _, err := s.Alloc(0, TierFast); err == nil {
		t.Error("zero-size Alloc accepted")
	}
	if _, err := s.AllocPrefer(0); err == nil {
		t.Error("zero-size AllocPrefer accepted")
	}
}

func TestValidatePresets(t *testing.T) {
	for _, p := range []SystemParams{NVMDRAMParams(), MCDRAMDRAMParams()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mutations := []func(*SystemParams){
		func(p *SystemParams) { p.ClockGHz = 0 },
		func(p *SystemParams) { p.Threads = 0 },
		func(p *SystemParams) { p.LineBytes = 48 },
		func(p *SystemParams) { p.L1Bytes = 0 },
		func(p *SystemParams) { p.MLP = 0 },
		func(p *SystemParams) { p.GangSize = 0 },
		func(p *SystemParams) { p.PrefetchFactor = 0 },
		func(p *SystemParams) { p.PrefetchDemandInterval = 0 },
		func(p *SystemParams) { p.Tiers[0].CapacityBytes = 0 },
		func(p *SystemParams) { p.Tiers[1].ReadBWGBs = 0 },
		func(p *SystemParams) { p.Tiers[0].LoadLatencyNS = 0 },
		func(p *SystemParams) { p.Tiers[1].AccessGrainBytes = 1 },
	}
	for i, mut := range mutations {
		p := NVMDRAMParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestTierString(t *testing.T) {
	if TierFast.String() != "fast" || TierSlow.String() != "slow" {
		t.Error("unexpected tier names")
	}
	if TierFast.Other() != TierSlow || TierSlow.Other() != TierFast {
		t.Error("Other() broken")
	}
}
