package memsim

// TLB models one translation lookaside buffer as a set-associative array
// of page-number tags with LRU replacement per set. Each simulated thread
// owns two TLBs, one for 4 KiB and one for 2 MiB mappings, mirroring real
// split dTLBs. The reach difference between the two is what turns the
// mbind engine's huge-page splintering into the post-migration TLB-miss
// gap of the paper's Table 4.
type TLB struct {
	setMask uint64
	ways    int
	tags    []uint64
	stamps  []uint64
	clock   uint64
	shift   uint // page shift: 12 for 4 KiB, 21 for 2 MiB
	misses  uint64
	lookups uint64
}

// NewTLB builds a TLB with the given number of entries (rounded down to a
// power of two, minimum one set) covering pages of size 1<<pageShift.
func NewTLB(entries int, pageShift uint) *TLB {
	const ways = 4
	sets := entries / ways
	if sets < 1 {
		sets = 1
	}
	for sets&(sets-1) != 0 {
		sets &= sets - 1
	}
	return &TLB{
		setMask: uint64(sets - 1),
		ways:    ways,
		tags:    make([]uint64, sets*ways),
		stamps:  make([]uint64, sets*ways),
		shift:   pageShift,
	}
}

// Lookup translates addr, returning true on a TLB hit. On a miss the
// translation is installed (the page walk is charged by the caller).
func (t *TLB) Lookup(addr uint64) bool {
	t.lookups++
	vpn := addr >> t.shift
	tag := vpn + 1
	set := int(vpn&t.setMask) * t.ways
	t.clock++
	victim := set
	oldest := ^uint64(0)
	for i := set; i < set+t.ways; i++ {
		if t.tags[i] == tag {
			t.stamps[i] = t.clock
			return true
		}
		if t.stamps[i] < oldest {
			oldest = t.stamps[i]
			victim = i
		}
	}
	t.tags[victim] = tag
	t.stamps[victim] = t.clock
	t.misses++
	return false
}

// InvalidateRange drops translations for pages intersecting
// [base, base+size): a TLB shootdown over that range.
func (t *TLB) InvalidateRange(base, size uint64) {
	if size == 0 {
		return
	}
	lo := base >> t.shift
	hi := (base + size - 1) >> t.shift
	for i, tag := range t.tags {
		if tag == 0 {
			continue
		}
		vpn := tag - 1
		if vpn >= lo && vpn <= hi {
			t.tags[i] = 0
			t.stamps[i] = 0
		}
	}
}

// Flush empties the TLB without resetting counters.
func (t *TLB) Flush() {
	for i := range t.tags {
		t.tags[i] = 0
		t.stamps[i] = 0
	}
}

// Misses returns the miss count since construction.
func (t *TLB) Misses() uint64 { return t.misses }

// Lookups returns the lookup count since construction.
func (t *TLB) Lookups() uint64 { return t.lookups }
