package memsim

import (
	"testing"
	"testing/quick"
)

func TestMapTranslate(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0x10000, 2*SmallPage, TierSlow, false); err != nil {
		t.Fatal(err)
	}
	pi := pt.Translate(0x10000)
	if pi.Tier != TierSlow || pi.Huge {
		t.Errorf("unexpected mapping %+v", pi)
	}
	pi = pt.Translate(0x10000 + 2*SmallPage - 1)
	if pi.Tier != TierSlow {
		t.Errorf("last byte mistranslated: %+v", pi)
	}
}

func TestTranslateUnmappedPanics(t *testing.T) {
	pt := NewPageTable()
	defer func() {
		if recover() == nil {
			t.Error("unmapped translate should panic (simulated segfault)")
		}
	}()
	pt.Translate(0x123456)
}

func TestMapAlignmentErrors(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(100, SmallPage, TierFast, false); err == nil {
		t.Error("unaligned base accepted")
	}
	if err := pt.Map(0, SmallPage+1, TierFast, false); err == nil {
		t.Error("unaligned size accepted")
	}
	if err := pt.Map(SmallPage, HugePage, TierFast, true); err == nil {
		t.Error("huge mapping with small alignment accepted")
	}
}

func TestDoubleMapRejected(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, 4*SmallPage, TierFast, false); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(2*SmallPage, 4*SmallPage, TierSlow, false); err == nil {
		t.Error("overlapping map accepted")
	}
	// The failed map must not have modified anything.
	if pi := pt.Translate(3 * SmallPage); pi.Tier != TierFast {
		t.Error("failed map mutated existing mapping")
	}
}

func TestRetierKeepsPageSize(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, 2*HugePage, TierSlow, true); err != nil {
		t.Fatal(err)
	}
	if err := pt.Retier(0, HugePage, TierFast); err != nil {
		t.Fatal(err)
	}
	pi := pt.Translate(0)
	if pi.Tier != TierFast || !pi.Huge {
		t.Errorf("retier broke mapping: %+v", pi)
	}
	pi = pt.Translate(HugePage)
	if pi.Tier != TierSlow || !pi.Huge {
		t.Errorf("retier touched pages outside range: %+v", pi)
	}
}

func TestSplinterBreaksWholeHugePages(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, 2*HugePage, TierSlow, true); err != nil {
		t.Fatal(err)
	}
	// Splinter a byte range inside the first huge page only.
	if err := pt.Splinter(SmallPage, SmallPage); err != nil {
		t.Fatal(err)
	}
	if pt.Translate(0).Huge {
		t.Error("first huge page should be splintered")
	}
	if !pt.Translate(HugePage).Huge {
		t.Error("second huge page should be intact")
	}
	huge, total := pt.HugePages(0, 2*HugePage)
	if total != 2*PagesPerHuge || huge != PagesPerHuge {
		t.Errorf("huge=%d total=%d", huge, total)
	}
}

func TestUnmap(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, 2*SmallPage, TierFast, false); err != nil {
		t.Fatal(err)
	}
	if err := pt.Unmap(0, 2*SmallPage); err != nil {
		t.Fatal(err)
	}
	if _, ok := pt.TierOf(0); ok {
		t.Error("page still mapped after unmap")
	}
	if err := pt.Unmap(0, SmallPage); err == nil {
		t.Error("unmap of unmapped range accepted")
	}
}

// Unmap must refuse to split a huge mapping: a range that starts or ends
// mid-huge-page is rejected without modifying the table, while unmapping
// whole huge pages succeeds.
func TestUnmapHugeSplitRejected(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, 2*HugePage, TierSlow, true); err != nil {
		t.Fatal(err)
	}
	// Range ending mid-huge-page: covers the first huge page plus the
	// leading 4 KiB pages of the second.
	if err := pt.Unmap(0, HugePage+SmallPage); err == nil {
		t.Error("unmap ending mid-huge-page accepted")
	}
	// Range starting mid-huge-page.
	if err := pt.Unmap(SmallPage, HugePage); err == nil {
		t.Error("unmap starting mid-huge-page accepted")
	}
	// Range entirely inside one huge page.
	if err := pt.Unmap(SmallPage, 2*SmallPage); err == nil {
		t.Error("unmap inside one huge page accepted")
	}
	// Failed unmaps must leave every page mapped and huge.
	huge, total := pt.HugePages(0, 2*HugePage)
	if huge != 2*PagesPerHuge || total != 2*PagesPerHuge {
		t.Errorf("failed unmap mutated table: huge=%d total=%d", huge, total)
	}
	// Whole huge pages unmap cleanly.
	if err := pt.Unmap(HugePage, HugePage); err != nil {
		t.Fatal(err)
	}
	if _, ok := pt.TierOf(HugePage); ok {
		t.Error("second huge page still mapped")
	}
	if pi := pt.Translate(0); !pi.Huge || pi.Tier != TierSlow {
		t.Errorf("first huge page damaged: %+v", pi)
	}
}

// Splinter expands partial ranges to whole-huge-page boundaries: a range
// starting or ending mid-huge-page splinters every huge page it touches
// and leaves neighbours intact.
func TestSplinterBoundaryRanges(t *testing.T) {
	for _, tc := range []struct {
		name       string
		base, size uint64
		wantSplit  [3]bool // which of the three huge pages end up split
	}{
		{"starts-mid-first", HugePage / 2, HugePage / 4, [3]bool{true, false, false}},
		{"spans-mid-to-mid", HugePage / 2, HugePage, [3]bool{true, true, false}},
		{"ends-mid-last", HugePage, HugePage + SmallPage, [3]bool{false, true, true}},
		{"single-byte", 2*HugePage + 5, 1, [3]bool{false, false, true}},
		{"zero-size", HugePage, 0, [3]bool{false, false, false}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pt := NewPageTable()
			if err := pt.Map(0, 3*HugePage, TierSlow, true); err != nil {
				t.Fatal(err)
			}
			if err := pt.Splinter(tc.base, tc.size); err != nil {
				t.Fatal(err)
			}
			for hp := uint64(0); hp < 3; hp++ {
				got := !pt.Translate(hp * HugePage).Huge
				if got != tc.wantSplit[hp] {
					t.Errorf("huge page %d: split=%v, want %v", hp, got, tc.wantSplit[hp])
				}
				// Splintering never unmaps or retiers.
				if tier, ok := pt.TierOf(hp * HugePage); !ok || tier != TierSlow {
					t.Errorf("huge page %d: mapping damaged (ok=%v tier=%v)", hp, ok, tier)
				}
			}
		})
	}
}

// Splinter past the end of the table must not grow it or panic.
func TestSplinterBeyondTable(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, HugePage, TierFast, true); err != nil {
		t.Fatal(err)
	}
	if err := pt.Splinter(0, 16*HugePage); err != nil {
		t.Fatal(err)
	}
	if pt.Translate(0).Huge {
		t.Error("mapped huge page not splintered")
	}
}

// grow must expand geometrically from the current length: repeated
// first-touches of ascending high pages should not over-allocate 2x of
// the touched index each time.
func TestGrowGeometric(t *testing.T) {
	pt := NewPageTable()
	if err := pt.Map(0, SmallPage, TierFast, false); err != nil {
		t.Fatal(err)
	}
	if err := pt.Map(1024*SmallPage, SmallPage, TierFast, false); err != nil {
		t.Fatal(err)
	}
	if got, want := len(pt.slice()), 1025; got != want {
		t.Errorf("grow to high page allocated %d entries, want %d (exact need)", got, want)
	}
	// A touch just past the end doubles instead of reallocating per page.
	if err := pt.Map(1025*SmallPage, SmallPage, TierFast, false); err != nil {
		t.Fatal(err)
	}
	if got, want := len(pt.slice()), 2050; got != want {
		t.Errorf("incremental grow allocated %d entries, want %d (2x previous)", got, want)
	}
}

// Property: Map then Translate agrees over every page of the range, and
// TierOf is false outside it.
func TestMapTranslateProperty(t *testing.T) {
	check := func(pages uint8, tierBit bool) bool {
		n := uint64(pages%16) + 1
		pt := NewPageTable()
		tier := TierFast
		if tierBit {
			tier = TierSlow
		}
		base := uint64(HugePage)
		if err := pt.Map(base, n*SmallPage, tier, false); err != nil {
			return false
		}
		for p := uint64(0); p < n; p++ {
			got, ok := pt.TierOf(base + p*SmallPage)
			if !ok || got != tier {
				return false
			}
		}
		_, okBefore := pt.TierOf(base - 1)
		_, okAfter := pt.TierOf(base + n*SmallPage)
		return !okBefore && !okAfter
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBHitsAfterInstall(t *testing.T) {
	tlb := NewTLB(16, 12)
	addr := uint64(0x5000)
	if tlb.Lookup(addr) {
		t.Error("cold TLB should miss")
	}
	if !tlb.Lookup(addr) {
		t.Error("second lookup should hit")
	}
	if !tlb.Lookup(addr + 0xfff) {
		t.Error("same page should hit")
	}
	if tlb.Lookup(addr + 0x1000) {
		t.Error("next page should miss")
	}
	if tlb.Misses() != 2 || tlb.Lookups() != 4 {
		t.Errorf("misses=%d lookups=%d", tlb.Misses(), tlb.Lookups())
	}
}

func TestTLBInvalidateRange(t *testing.T) {
	tlb := NewTLB(64, 12)
	for p := uint64(0); p < 8; p++ {
		tlb.Lookup(p << 12)
	}
	tlb.InvalidateRange(2<<12, 3<<12) // pages 2,3,4
	for p := uint64(0); p < 8; p++ {
		hit := tlb.Lookup(p << 12)
		want := p < 2 || p > 4
		if hit != want {
			t.Errorf("page %d: hit=%v want %v", p, hit, want)
		}
	}
}

func TestTLBPageSizeShift(t *testing.T) {
	tlb := NewTLB(16, hugeShift)
	tlb.Lookup(0)
	if !tlb.Lookup(HugePage - 1) {
		t.Error("address within same huge page should hit")
	}
	if tlb.Lookup(HugePage) {
		t.Error("next huge page should miss")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(16, 12)
	tlb.Lookup(0x1000)
	tlb.Flush()
	if tlb.Lookup(0x1000) {
		t.Error("flushed entry still hit")
	}
}
