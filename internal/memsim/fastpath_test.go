package memsim

import (
	"math/rand"
	"testing"
)

// The bulk fast path (LoadRange/StoreRange, the same-line register, and
// the fused L1 probe) must be *bit-identical* in every observable — cycle
// count, per-tier traffic, writebacks, miss/TLB/prefetch counters, and
// the reduced PhaseStats — to the element-at-a-time reference path, or
// the paper's regenerated tables would silently drift. These tests replay
// identical seeded workloads through both paths on two fresh systems and
// compare everything.

// rangeOp is one simulated operation of a replayable workload: a
// sequential run of count elemSize-byte accesses starting at addr
// (count == 1 covers single/random accesses).
type rangeOp struct {
	addr     uint64
	elemSize uint32
	count    int
	write    bool
}

// runElementwise replays ops through the per-element reference path.
func runElementwise(a *Accessor, ops []rangeOp) {
	for _, op := range ops {
		for i := 0; i < op.count; i++ {
			addr := op.addr + uint64(i)*uint64(op.elemSize)
			if op.write {
				a.Store(addr, op.elemSize)
			} else {
				a.Load(addr, op.elemSize)
			}
		}
	}
}

// runBulk replays ops through LoadRange/StoreRange.
func runBulk(a *Accessor, ops []rangeOp) {
	for _, op := range ops {
		if op.write {
			a.StoreRange(op.addr, op.elemSize, op.count)
		} else {
			a.LoadRange(op.addr, op.elemSize, op.count)
		}
	}
}

// compareAccessors fails the test on any observable divergence.
func compareAccessors(t *testing.T, ref, fast *Accessor, sysRef, sysFast *System) {
	t.Helper()
	if ref.Cycles != fast.Cycles {
		t.Errorf("Cycles: ref %v, fast %v", ref.Cycles, fast.Cycles)
	}
	if ref.Accesses != fast.Accesses {
		t.Errorf("Accesses: ref %d, fast %d", ref.Accesses, fast.Accesses)
	}
	if ref.L1Hits != fast.L1Hits {
		t.Errorf("L1Hits: ref %d, fast %d", ref.L1Hits, fast.L1Hits)
	}
	if ref.LLCHits != fast.LLCHits {
		t.Errorf("LLCHits: ref %d, fast %d", ref.LLCHits, fast.LLCHits)
	}
	if ref.LLCMisses != fast.LLCMisses {
		t.Errorf("LLCMisses: ref %d, fast %d", ref.LLCMisses, fast.LLCMisses)
	}
	if ref.PrefetchedLines != fast.PrefetchedLines {
		t.Errorf("PrefetchedLines: ref %d, fast %d", ref.PrefetchedLines, fast.PrefetchedLines)
	}
	if ref.TLBMisses != fast.TLBMisses {
		t.Errorf("TLBMisses: ref %d, fast %d", ref.TLBMisses, fast.TLBMisses)
	}
	if ref.Writebacks != fast.Writebacks {
		t.Errorf("Writebacks: ref %d, fast %d", ref.Writebacks, fast.Writebacks)
	}
	for tier := Tier(0); tier < NumTiers; tier++ {
		if ref.ReadBytes[tier] != fast.ReadBytes[tier] {
			t.Errorf("ReadBytes[%v]: ref %d, fast %d", tier, ref.ReadBytes[tier], fast.ReadBytes[tier])
		}
		if ref.WriteBytes[tier] != fast.WriteBytes[tier] {
			t.Errorf("WriteBytes[%v]: ref %d, fast %d", tier, ref.WriteBytes[tier], fast.WriteBytes[tier])
		}
		if ref.WritebackBytes[tier] != fast.WritebackBytes[tier] {
			t.Errorf("WritebackBytes[%v]: ref %d, fast %d", tier, ref.WritebackBytes[tier], fast.WritebackBytes[tier])
		}
	}
	psRef := sysRef.ReducePhase([]*Accessor{ref})
	psFast := sysFast.ReducePhase([]*Accessor{fast})
	if psRef != psFast {
		t.Errorf("PhaseStats diverge:\nref  %+v\nfast %+v", psRef, psFast)
	}
}

// equivFixture builds two identical systems, each with a 1 MiB object on
// each tier, and one accessor per system (with a miss hook charging
// overhead, so hook-cycle accounting is compared too).
func equivFixture(t *testing.T) (sysRef, sysFast *System, ref, fast *Accessor, fastBase, slowBase uint64) {
	t.Helper()
	build := func() (*System, *Accessor, uint64, uint64) {
		s := NewSystem(testParams())
		fb, err := s.Alloc(1*MiB, TierFast)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := s.Alloc(1*MiB, TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		a := s.NewAccessor()
		a.SetMissHook(func(addr uint64, write bool) float64 { return 17 })
		return s, a, fb, sb
	}
	sysRef, ref, fastBase, slowBase = build()
	var fb2, sb2 uint64
	sysFast, fast, fb2, sb2 = build()
	if fb2 != fastBase || sb2 != slowBase {
		t.Fatal("fixture systems laid out differently")
	}
	return sysRef, sysFast, ref, fast, fastBase, slowBase
}

func runEquivalence(t *testing.T, ops []rangeOp) {
	t.Helper()
	sysRef, sysFast, ref, fast, _, _ := equivFixture(t)
	runElementwise(ref, ops)
	runBulk(fast, ops)
	compareAccessors(t, ref, fast, sysRef, sysFast)
}

func TestBulkEquivalenceSequential(t *testing.T) {
	_, _, _, _, fb, sb := equivFixture(t)
	var ops []rangeOp
	// Forward scans over both tiers, element sizes that divide the line
	// (4, 8), do not divide it (12, 24), and exceed it (96), plus
	// line-unaligned bases so elements straddle line boundaries.
	for _, es := range []uint32{4, 8, 12, 24, 96} {
		ops = append(ops,
			rangeOp{addr: sb, elemSize: es, count: 4096, write: false},
			rangeOp{addr: fb + 20, elemSize: es, count: 2048, write: false},
			rangeOp{addr: sb + 128*KiB + 4, elemSize: es, count: 2048, write: true},
		)
	}
	runEquivalence(t, ops)
}

func TestBulkEquivalenceRandom(t *testing.T) {
	_, _, _, _, fb, sb := equivFixture(t)
	rng := rand.New(rand.NewSource(42))
	var ops []rangeOp
	span := uint64(1*MiB - 256)
	for i := 0; i < 8192; i++ {
		base := fb
		if rng.Intn(2) == 0 {
			base = sb
		}
		ops = append(ops, rangeOp{
			addr:     base + uint64(rng.Int63())%span,
			elemSize: uint32(1 + rng.Intn(16)),
			count:    1,
			write:    rng.Intn(3) == 0,
		})
	}
	runEquivalence(t, ops)
}

func TestBulkEquivalenceMixed(t *testing.T) {
	_, _, _, _, fb, sb := equivFixture(t)
	rng := rand.New(rand.NewSource(7))
	var ops []rangeOp
	span := uint64(1*MiB - 64*KiB)
	for i := 0; i < 512; i++ {
		base := fb
		if rng.Intn(2) == 0 {
			base = sb
		}
		switch rng.Intn(4) {
		case 0: // sequential read run (stream + prefetch counters)
			ops = append(ops, rangeOp{
				addr:     base + uint64(rng.Int63())%span,
				elemSize: uint32(4 * (1 + rng.Intn(4))),
				count:    64 + rng.Intn(2048),
				write:    false,
			})
		case 1: // sequential write run (writeback coalescing)
			ops = append(ops, rangeOp{
				addr:     base + uint64(rng.Int63())%span,
				elemSize: 8,
				count:    64 + rng.Intn(1024),
				write:    true,
			})
		case 2: // random pokes, including repeated same-line accesses
			addr := base + uint64(rng.Int63())%span
			for j := 0; j < 16; j++ {
				ops = append(ops, rangeOp{
					addr:     addr + uint64(rng.Intn(8)),
					elemSize: 8,
					count:    1,
					write:    rng.Intn(2) == 0,
				})
			}
		case 3: // strided (non-unit, lands on every 4th line)
			addr := base + uint64(rng.Int63())%span
			for j := 0; j < 64; j++ {
				ops = append(ops, rangeOp{
					addr:     addr + uint64(j)*256,
					elemSize: 8,
					count:    1,
					write:    false,
				})
			}
		}
	}
	runEquivalence(t, ops)
}

// TestBulkEquivalenceAcrossInvalidation checks that the same-line
// register survives cache invalidation correctly: invalidating a range
// mid-stream must leave both paths in identical states.
func TestBulkEquivalenceAcrossInvalidation(t *testing.T) {
	sysRef, sysFast, ref, fast, fb, _ := equivFixture(t)
	pre := []rangeOp{{addr: fb, elemSize: 8, count: 4096, write: true}}
	runElementwise(ref, pre)
	runBulk(fast, pre)
	ref.InvalidateCacheRange(fb, 64*KiB)
	fast.InvalidateCacheRange(fb, 64*KiB)
	post := []rangeOp{
		{addr: fb, elemSize: 8, count: 1, write: true},  // repeat of last line
		{addr: fb, elemSize: 8, count: 1, write: false}, // and again
		{addr: fb, elemSize: 8, count: 2048, write: false},
	}
	runElementwise(ref, post)
	runBulk(fast, post)
	compareAccessors(t, ref, fast, sysRef, sysFast)
}

// TestBulkEquivalenceZeroSize pins the degenerate elemSize-0 behaviour
// (one line touch per access) to the reference path.
func TestBulkEquivalenceZeroSize(t *testing.T) {
	_, _, _, _, fb, _ := equivFixture(t)
	runEquivalence(t, []rangeOp{
		{addr: fb + 64, elemSize: 0, count: 3, write: false},
		{addr: fb + 64, elemSize: 0, count: 2, write: true},
	})
}

// TestSameLineRegisterSkipsCacheWalk verifies the register actually
// short-circuits: repeated same-line accesses count as L1 hits and a
// repeated store still dirties the LLC copy exactly once.
func TestSameLineRegisterSkipsCacheWalk(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(1*MiB, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	a := s.NewAccessor()
	a.Load(base, 8)
	if a.L1Hits != 0 {
		t.Fatalf("cold access hit L1: %d", a.L1Hits)
	}
	for i := 0; i < 7; i++ {
		a.Load(base+uint64(i)*8, 8)
	}
	if a.L1Hits != 7 {
		t.Errorf("same-line repeats: L1Hits = %d, want 7", a.L1Hits)
	}
	// A store on the registered line must mark the LLC copy dirty so
	// its eventual eviction writes back.
	a.Store(base+16, 8)
	wbBefore := a.Writebacks
	a.InvalidateCacheRange(base, 64) // drops the line silently (no writeback modelled)
	_ = wbBefore
	// Dirty many lines to force evictions; the dirtied line's traffic is
	// covered by the equivalence suite — here we just assert counters
	// advanced consistently.
	if a.Accesses != 9 {
		t.Errorf("Accesses = %d, want 9", a.Accesses)
	}
}

// TestSealedEquivalence proves the sealed fast path is free: with no
// concurrent migration, a sealed accessor must produce bit-identical
// counters, cycles, and PhaseStats to an unsealed one over the same
// workload — sealing only removes the sync-word check, never simulation
// state.
func TestSealedEquivalence(t *testing.T) {
	_, _, _, _, fb, sb := equivFixture(t)
	rng := rand.New(rand.NewSource(99))
	var ops []rangeOp
	span := uint64(1*MiB - 64*KiB)
	for i := 0; i < 4096; i++ {
		base := fb
		if rng.Intn(2) == 0 {
			base = sb
		}
		ops = append(ops, rangeOp{
			addr:     base + uint64(rng.Int63())%span,
			elemSize: uint32(1 + rng.Intn(16)),
			count:    1 + rng.Intn(64),
			write:    rng.Intn(3) == 0,
		})
	}
	sysRef, sysFast, ref, sealed, _, _ := equivFixture(t)
	sealed.SetSealed(true)
	runBulk(ref, ops)
	runBulk(sealed, ops)
	sealed.SetSealed(false)
	compareAccessors(t, ref, sealed, sysRef, sysFast)
}

// TestSealedAppliesPendingShootdownsOnSeal pins the seal-entry contract:
// a shootdown published before sealing is applied by SetSealed(true)
// itself, so the sealed window never runs on stale translations.
func TestSealedAppliesPendingShootdownsOnSeal(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(1*MiB, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	a := s.NewAccessor()
	a.Load(base, 8)
	s.Shootdown(base, 64*KiB)
	a.SetSealed(true)
	if a.ShootdownsApplied != 1 {
		t.Fatalf("ShootdownsApplied = %d, want 1 (seal must drain)", a.ShootdownsApplied)
	}
	// Sealed accesses must not observe anything published afterwards…
	s.Shootdown(base, 64*KiB)
	a.Load(base, 8)
	if a.ShootdownsApplied != 1 {
		t.Fatalf("sealed access drained the log (applied=%d)", a.ShootdownsApplied)
	}
	// …until unsealed, when the next access picks it up.
	a.SetSealed(false)
	a.Load(base+128, 8)
	if a.ShootdownsApplied != 2 {
		t.Fatalf("unsealed access did not drain (applied=%d)", a.ShootdownsApplied)
	}
}

// TestSyncWordHoisting verifies the once-per-range sync check of the bulk
// path observes a shootdown at the range boundary exactly like the
// element path does at its first element: a log published between two
// bulk calls lands before the second call's first access in both paths,
// keeping PhaseStats bit-identical.
func TestSyncWordHoisting(t *testing.T) {
	sysRef, sysFast, ref, fast, fb, _ := equivFixture(t)
	pre := []rangeOp{{addr: fb, elemSize: 8, count: 8192, write: true}}
	runElementwise(ref, pre)
	runBulk(fast, pre)
	sysRef.Shootdown(fb, 128*KiB)
	sysFast.Shootdown(fb, 128*KiB)
	post := []rangeOp{
		{addr: fb, elemSize: 8, count: 4096, write: false},
		{addr: fb + 256*KiB, elemSize: 8, count: 1024, write: true},
	}
	runElementwise(ref, post)
	runBulk(fast, post)
	compareAccessors(t, ref, fast, sysRef, sysFast)
	if ref.ShootdownsApplied != 1 || fast.ShootdownsApplied != 1 {
		t.Fatalf("ShootdownsApplied: ref %d fast %d, want 1/1",
			ref.ShootdownsApplied, fast.ShootdownsApplied)
	}
}
