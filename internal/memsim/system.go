package memsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"atmem/internal/faultinject"
)

// ErrNoCapacity is the sentinel wrapped by every capacity-exhaustion
// failure of the system (Alloc, AllocPrefer, Reserve, Retier), so callers
// can distinguish "the tier is full" from structural errors with
// errors.Is and degrade instead of aborting.
var ErrNoCapacity = errors.New("memsim: out of capacity")

// ErrQuarantined is the sentinel wrapped by operations that would map
// data onto retired fast-tier pages. It is a backstop: the governor and
// plan replayer filter their schedules against the quarantine ledger, so
// hitting this error means a caller bypassed them.
var ErrQuarantined = errors.New("memsim: range quarantined")

// FaultHook is consulted on entry of the system's fault-pointed
// operations (Alloc/AllocPrefer → OpAlloc, Reserve, Retier, Splinter). A
// non-nil return makes the operation fail before mutating any state —
// the contract fault-injection tests rely on. RestoreTiers, the
// transactional rollback primitive, deliberately bypasses the hook: an
// unwind path must not itself fault.
type FaultHook interface {
	Check(op faultinject.Op) error
}

// RangeFaultHook is optionally implemented by fault hooks that also
// match the touched address range (persistent device faults pin an
// injected failure to a range). Address-carrying operations (Retier,
// Splinter) pass their range through it; hooks without the method fall
// back to the rangeless Check.
type RangeFaultHook interface {
	CheckRange(op faultinject.Op, base, size uint64) error
}

// QuarantinedRange is one retired stretch of the virtual address space:
// its pages may never be mapped to the fast tier again, and its size
// stays charged against fast-tier capacity (the device region behind it
// is gone for good).
type QuarantinedRange struct {
	Base, Size uint64
}

// DegradedRange is one latency-degraded stretch of the address space:
// accesses that miss into it cost Factor times the modelled tier
// latency (a worn device region that still works, slowly).
type DegradedRange struct {
	Base, Size uint64
	Factor     float64
}

// ShootdownRange is one pending TLB-invalidation request: a migration
// committed a remap of [Base, Base+Size) and every accessor must drop its
// cached translations of the range before trusting them again.
type ShootdownRange struct {
	Base, Size uint64
}

// System is one simulated heterogeneous memory machine: a virtual address
// space backed by two memory tiers.
//
// Concurrency contract: mutating operations are serialized by an internal
// lock; the hot read path used by accessors (Translate/TierOf and the
// capacity getters) takes no locks. Translation is safe against a
// concurrent Retier/RestoreTiers through the page table's per-page
// seqlock (see PageTable), tier ledgers are atomic counters, and remap
// visibility reaches accessors through the shootdown log: a committed
// remap appends a ShootdownRange, and each accessor drains the log at its
// next access. Alloc/Free still must not overlap running kernels — the
// runtime never allocates mid-phase — because growing the page table
// swaps the entry slice.
type System struct {
	P SystemParams

	mu       sync.Mutex
	pt       *PageTable
	nextVA   uint64
	used     [NumTiers]atomic.Uint64 // bytes mapped in the page table
	reserved [NumTiers]atomic.Uint64 // bytes held by Reserve (staging buffers)
	faults   FaultHook

	// Shootdown log: every committed remap appends its range and bumps
	// the sync word's generation field, so an accessor whose
	// seen-generation trails can replay exactly the ranges it missed.
	// Appends happen under shootMu; the generation is atomic so the
	// accessor fast path (gen unchanged → nothing to drain) stays
	// lock-free.
	shootMu  sync.Mutex
	shootLog []ShootdownRange

	// sync packs the two cross-thread signals the access fast path must
	// observe — the shootdown-log generation (low 48 bits) and the count
	// of active quiesce gates (high 16 bits) — into one word, so the
	// per-access check is a single uncontended atomic load instead of
	// two. An accessor caches the last word it acted on; an unchanged
	// word with a zero gate field means there is nothing to drain and no
	// store can be gated (see Accessor.syncCheck).
	sync atomic.Uint64

	// Quiesce gates: writers to a gated range block until the gate
	// lifts. The sync word's gate count is the lock-free fast path (no
	// gates → no check).
	quiesceMu sync.Mutex
	gates     []*QuiesceGate

	// Quarantine ledger: retired fast-tier ranges. The byte total is
	// atomic so the lock-free capacity getters can charge it; the range
	// list is guarded by mu. healthGen counts every health mutation
	// (retirement, degradation) and keys plan-staleness fingerprints.
	quarantined atomic.Uint64
	quarRanges  []QuarantinedRange
	healthGen   atomic.Uint64

	// Degraded ranges, published as an immutable slice so the accessor
	// miss path reads them with one atomic load (nil means none).
	degrades atomic.Pointer[[]DegradedRange]

	// Tenant sub-ledgers (tenant.go): adopted owner ranges sorted by
	// base, and per-owner fast/quarantine counters. Guarded by mu;
	// empty on a single-tenant system, costing the mutation paths one
	// length check.
	owners  []ownerRange
	tenants map[int]*tenantUsage
}

// sync word layout: shootdown generation in the low syncGenBits bits,
// quiesce-gate count above. 48 bits of generation cannot wrap in any
// feasible run (one remap per published range), and 16 bits of gates far
// exceeds the engines' bounded staging concurrency.
const (
	syncGenBits = 48
	syncGenMask = uint64(1)<<syncGenBits - 1
	syncGateOne = uint64(1) << syncGenBits
)

// NewSystem builds a System from params. It panics if params are invalid,
// since every preset in this module must validate.
func NewSystem(p SystemParams) *System {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &System{
		P:      p,
		pt:     NewPageTable(),
		nextVA: HugePage, // keep address 0 unmapped
	}
}

// PageTable exposes the system page table to migration engines.
func (s *System) PageTable() *PageTable { return s.pt }

// SetFaultHook attaches a fault hook (typically a *faultinject.Injector)
// to the system's fault points. Pass nil to detach. Install it before
// concurrent use; the hook itself must be safe for concurrent calls.
func (s *System) SetFaultHook(h FaultHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = h
}

// faultCheckLocked evaluates the fault hook for op; callers hold s.mu.
func (s *System) faultCheckLocked(op faultinject.Op) error {
	if s.faults == nil {
		return nil
	}
	return s.faults.Check(op)
}

// faultCheckRangeLocked evaluates the fault hook for an address-carrying
// operation. Hooks implementing RangeFaultHook see the touched range (so
// persistent range rules can match); others get a plain Check. Callers
// hold s.mu.
func (s *System) faultCheckRangeLocked(op faultinject.Op, base, size uint64) error {
	if s.faults == nil {
		return nil
	}
	if rh, ok := s.faults.(RangeFaultHook); ok {
		return rh.CheckRange(op, base, size)
	}
	return s.faults.Check(op)
}

// ledgerAdd / ledgerSub mutate a tier ledger. Callers hold s.mu (the
// atomics exist for the lock-free readers, not to serialize writers).
func ledgerAdd(l *atomic.Uint64, d uint64) { l.Add(d) }
func ledgerSub(l *atomic.Uint64, d uint64) { l.Add(^(d - 1)) }

// RoundUp rounds size up to a multiple of align (a power of two).
func RoundUp(size, align uint64) uint64 {
	return (size + align - 1) &^ (align - 1)
}

// Alloc reserves a virtual range of at least size bytes backed by tier t
// and returns its base address. Allocations of at least one huge page are
// huge-page backed (the transparent-huge-page behaviour large graph
// allocations get on the real testbeds); smaller ones use 4 KiB pages.
// Alloc fails when the tier lacks capacity.
func (s *System) Alloc(size uint64, t Tier) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("memsim: zero-size allocation")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.faultCheckLocked(faultinject.OpAlloc); err != nil {
		return 0, err
	}
	huge := size >= HugePage
	align := uint64(SmallPage)
	if huge {
		align = HugePage
	}
	mapped := RoundUp(size, align)
	if s.committedLocked(t)+mapped > s.P.Tiers[t].CapacityBytes {
		return 0, fmt.Errorf("%w: tier %s: used %d + %d > %d",
			ErrNoCapacity, t, s.committedLocked(t), mapped, s.P.Tiers[t].CapacityBytes)
	}
	base := RoundUp(s.nextVA, HugePage) // huge-align every object's base
	if err := s.pt.Map(base, mapped, t, huge); err != nil {
		return 0, err
	}
	s.nextVA = base + mapped
	ledgerAdd(&s.used[t], mapped)
	return base, nil
}

// AllocPrefer reserves a virtual range backed by the fast tier for as
// many leading pages as its remaining capacity allows, spilling the rest
// to the slow tier — the page-granular behaviour of a preferred NUMA
// policy (`numactl -p`, the paper's MCDRAM-p reference): capacity is
// consumed in allocation order with no regard for criticality. The range
// is 4 KiB-mapped when split across tiers (a preferred-policy allocation
// cannot promise huge-page backing across the spill point).
func (s *System) AllocPrefer(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("memsim: zero-size allocation")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.faultCheckLocked(faultinject.OpAlloc); err != nil {
		return 0, err
	}
	base := RoundUp(s.nextVA, HugePage)
	huge := size >= HugePage

	// Whole-object placement (huge pages preserved) when a tier has
	// room for the full aligned size.
	tryWhole := func(t Tier) (bool, error) {
		align := uint64(SmallPage)
		if huge {
			align = HugePage
		}
		aligned := RoundUp(size, align)
		if s.committedLocked(t)+aligned > s.P.Tiers[t].CapacityBytes {
			return false, nil
		}
		if err := s.pt.Map(base, aligned, t, huge); err != nil {
			return false, err
		}
		s.nextVA = base + aligned
		ledgerAdd(&s.used[t], aligned)
		return true, nil
	}
	if ok, err := tryWhole(TierFast); err != nil || ok {
		return base, err
	}

	// Page-granular spill: leading pages on the fast tier until it is
	// full, the rest on the slow tier (both 4 KiB-mapped; a preferred
	// policy cannot promise huge pages across the spill point).
	mapped := RoundUp(size, SmallPage)
	freeFast := (s.P.Tiers[TierFast].CapacityBytes - s.committedLocked(TierFast)) &^ (SmallPage - 1)
	fastPart := mapped
	if fastPart > freeFast {
		fastPart = freeFast
	}
	slowPart := mapped - fastPart
	if fastPart == 0 {
		if ok, err := tryWhole(TierSlow); err != nil || ok {
			return base, err
		}
	}
	if s.committedLocked(TierSlow)+slowPart > s.P.Tiers[TierSlow].CapacityBytes {
		return 0, fmt.Errorf("%w: tier %s: preferred spill of %d bytes",
			ErrNoCapacity, TierSlow, slowPart)
	}
	if fastPart > 0 {
		if err := s.pt.Map(base, fastPart, TierFast, false); err != nil {
			return 0, err
		}
	}
	if slowPart > 0 {
		if err := s.pt.Map(base+fastPart, slowPart, TierSlow, false); err != nil {
			return 0, err
		}
	}
	s.nextVA = base + mapped
	ledgerAdd(&s.used[TierFast], fastPart)
	ledgerAdd(&s.used[TierSlow], slowPart)
	return base, nil
}

// Free releases the mapping of the object at [base, base+size). size must
// be the original requested size.
func (s *System) Free(base, size uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	align := uint64(SmallPage)
	if size >= HugePage {
		align = HugePage
	}
	mapped := RoundUp(size, align)
	// Account per-page so partially migrated objects are handled.
	first, n := base>>smallShift, mapped>>smallShift
	for i := first; i < first+n; i++ {
		pi, err := s.pt.lookup(i)
		if err != nil {
			return err
		}
		ledgerSub(&s.used[pi.Tier], SmallPage)
		s.tenantFreeLocked(i<<smallShift, pi.Tier)
	}
	for i := first; i < first+n; i++ {
		s.pt.set(i, PageInfo{})
	}
	// A freed range stops being owned: its remaining (slow-tier) bytes
	// and any quarantine overlap no longer charge the tenant.
	s.disownLocked(base, mapped)
	return nil
}

// Retier changes the backing tier of the page-aligned range
// [base, base+size), preserving page sizes and updating capacity
// accounting. It fails (without changes) when the destination tier lacks
// capacity.
func (s *System) Retier(base, size uint64, t Tier) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The fault hook sees the touched range only when data moves toward
	// the fast tier: a persistent fault models a bad fast-tier device
	// region, and evacuating data off it must stay possible.
	fb, fs := base, size
	if t != TierFast {
		fb, fs = 0, 0
	}
	if err := s.faultCheckRangeLocked(faultinject.OpRetier, fb, fs); err != nil {
		return err
	}
	return s.retierLocked(base, size, t)
}

func (s *System) retierLocked(base, size uint64, t Tier) error {
	if base%SmallPage != 0 || size%SmallPage != 0 {
		return fmt.Errorf("memsim: Retier [%#x,+%#x) not page-aligned", base, size)
	}
	if t == TierFast && s.quarOverlapLocked(base, size) {
		return fmt.Errorf("%w: retier [%#x,+%#x) toward %s", ErrQuarantined, base, size, t)
	}
	first, n := base>>smallShift, size>>smallShift
	var moving uint64
	for i := first; i < first+n; i++ {
		pi, err := s.pt.lookup(i)
		if err != nil {
			return err
		}
		if pi.Tier != t {
			moving += SmallPage
		}
	}
	if s.committedLocked(t)+moving > s.P.Tiers[t].CapacityBytes {
		return fmt.Errorf("%w: tier %s: retier of %d bytes", ErrNoCapacity, t, moving)
	}
	for i := first; i < first+n; i++ {
		pi := unpackPTE(s.pt.word(i))
		if pi.Tier == t {
			continue
		}
		// Seqlock write window per page: readers that catch the busy
		// bit retry; the ledger moves with the commit so the lock-free
		// capacity getters never see the page double-counted.
		s.pt.markBusy(i)
		ledgerSub(&s.used[pi.Tier], SmallPage)
		ledgerAdd(&s.used[t], SmallPage)
		s.tenantRetierLocked(i<<smallShift, pi.Tier, t)
		pi.Tier = t
		s.pt.set(i, pi)
	}
	return nil
}

// Splinter breaks huge mappings intersecting [base, base+size) into 4 KiB
// mappings (see PageTable.Splinter).
func (s *System) Splinter(base, size uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.faultCheckRangeLocked(faultinject.OpSplinter, base, size); err != nil {
		return err
	}
	return s.pt.Splinter(base, size)
}

// committedLocked is the capacity charge against tier t: mapped bytes,
// outstanding reservations, and — on the fast tier — quarantined bytes,
// so every capacity check automatically sees retired pages as capacity
// that no longer exists. Callers hold s.mu.
func (s *System) committedLocked(t Tier) uint64 {
	c := s.used[t].Load() + s.reserved[t].Load()
	if t == TierFast {
		c += s.quarantined.Load()
	}
	return c
}

// Reserve charges size bytes against tier t without mapping anything —
// used for transient staging buffers during migration. Release with
// Unreserve.
func (s *System) Reserve(size uint64, t Tier) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.faultCheckLocked(faultinject.OpReserve); err != nil {
		return err
	}
	if s.committedLocked(t)+size > s.P.Tiers[t].CapacityBytes {
		return fmt.Errorf("%w: tier %s: %d-byte reservation", ErrNoCapacity, t, size)
	}
	ledgerAdd(&s.reserved[t], size)
	return nil
}

// Unreserve returns a Reserve'd charge.
func (s *System) Unreserve(size uint64, t Tier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reserved[t].Load() < size {
		panic("memsim: Unreserve below zero")
	}
	ledgerSub(&s.reserved[t], size)
}

// Used returns the bytes currently mapped or reserved on tier t. It is a
// lock-free atomic read, safe from kernel threads while a migration runs.
func (s *System) Used(t Tier) uint64 {
	return s.used[t].Load() + s.reserved[t].Load()
}

// Reserved returns the bytes currently held by Reserve on tier t. After
// a completed migration it must be zero — the no-leaked-reservations
// invariant the runtime's post-migration checker enforces.
func (s *System) Reserved(t Tier) uint64 {
	return s.reserved[t].Load()
}

// TierUsage returns the mapped and reserved byte counts of tier t. Each
// counter is read atomically; the pair may straddle a concurrent
// migration step, which telemetry snapshots tolerate.
func (s *System) TierUsage(t Tier) (mapped, reserved uint64) {
	return s.used[t].Load(), s.reserved[t].Load()
}

// FreeCapacity returns the free capacity remaining on tier t, after
// mapped bytes, reservations, and (fast tier) quarantined bytes.
func (s *System) FreeCapacity(t Tier) uint64 {
	committed := s.used[t].Load() + s.reserved[t].Load()
	if t == TierFast {
		committed += s.quarantined.Load()
	}
	cap := s.P.Tiers[t].CapacityBytes
	if committed > cap {
		return 0
	}
	return cap - committed
}

// EffectiveOccupancy returns committed bytes on tier t as a fraction of
// the tier's capacity after subtracting holdback bytes (a caller-owned
// reserve, e.g. the runtime's CapacityReserve) and, on the fast tier,
// quarantined bytes — retired pages shrink the denominator, so pressure
// rises as the device loses capacity. The governor compares this against
// its watermarks. Occupancy of a fully-held-back tier is reported as 1
// (maximally pressured), and the fraction may exceed 1 when committed
// bytes eat into the holdback.
func (s *System) EffectiveOccupancy(t Tier, holdback uint64) float64 {
	if t == TierFast {
		holdback += s.quarantined.Load()
	}
	cap := s.P.Tiers[t].CapacityBytes
	if cap <= holdback {
		return 1
	}
	committed := s.used[t].Load() + s.reserved[t].Load()
	return float64(committed) / float64(cap-holdback)
}

// TierOf returns the tier currently backing addr. Lock-free; mid-remap it
// reports the last committed tier.
func (s *System) TierOf(addr uint64) (Tier, bool) {
	return s.pt.TierOf(addr)
}

// BytesOnTier reports how many bytes of the page-spanning range
// [base, base+size) are on each tier.
func (s *System) BytesOnTier(base, size uint64) [NumTiers]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [NumTiers]uint64
	if size == 0 {
		return out
	}
	first := base >> smallShift
	last := (base + size - 1) >> smallShift
	for i := first; i <= last; i++ {
		pi, err := s.pt.lookup(i)
		if err != nil {
			continue
		}
		lo := i << smallShift
		hi := lo + SmallPage
		if lo < base {
			lo = base
		}
		if hi > base+size {
			hi = base + size
		}
		out[pi.Tier] += hi - lo
	}
	return out
}

// TierSnapshot captures the tier of every 4 KiB page of the page-aligned
// range [base, base+size), in address order — the undo log a
// transactional migration takes before remapping a region.
func (s *System) TierSnapshot(base, size uint64) ([]Tier, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if base%SmallPage != 0 || size%SmallPage != 0 {
		return nil, fmt.Errorf("memsim: TierSnapshot [%#x,+%#x) not page-aligned", base, size)
	}
	first, n := base>>smallShift, size>>smallShift
	out := make([]Tier, n)
	for i := uint64(0); i < n; i++ {
		pi, err := s.pt.lookup(first + i)
		if err != nil {
			return nil, err
		}
		out[i] = pi.Tier
	}
	return out, nil
}

// RestoreTiers reverts the pages starting at base to a TierSnapshot
// prefix: page i of the range returns to tiers[i]. It is the rollback
// primitive of the transactional migration engines, so it deliberately
// bypasses the fault hook (an unwind path must not itself fault) and
// performs no capacity check: restoring a snapshot only returns bytes to
// tiers they were charged to when the snapshot was taken, and the
// migration that took the snapshot still holds the reservations covering
// any interim growth.
func (s *System) RestoreTiers(base uint64, tiers []Tier) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if base%SmallPage != 0 {
		return fmt.Errorf("memsim: RestoreTiers base %#x not page-aligned", base)
	}
	first := base >> smallShift
	for i := range tiers {
		if _, err := s.pt.lookup(first + uint64(i)); err != nil {
			return err
		}
	}
	for i, t := range tiers {
		vpage := first + uint64(i)
		pi := unpackPTE(s.pt.word(vpage))
		if pi.Tier == t {
			continue
		}
		s.pt.markBusy(vpage)
		ledgerSub(&s.used[pi.Tier], SmallPage)
		ledgerAdd(&s.used[t], SmallPage)
		s.tenantRetierLocked(vpage<<smallShift, pi.Tier, t)
		pi.Tier = t
		s.pt.set(vpage, pi)
	}
	return nil
}

// Shootdown publishes a TLB-invalidation request for [base, base+size):
// the range is appended to the shootdown log and the generation advances,
// so every accessor drops its cached translations of the range at its
// next access (see Accessor.drainShootdowns). This is the lazy, epoch-
// based equivalent of the direct InvalidateTLBRange broadcast the
// stop-the-world path uses.
func (s *System) Shootdown(base, size uint64) {
	s.shootMu.Lock()
	s.shootLog = append(s.shootLog, ShootdownRange{Base: base, Size: size})
	// Bump inside the lock so log length == generation always holds for
	// a drainer that reads the generation first.
	s.sync.Add(1)
	s.shootMu.Unlock()
}

// ShootdownGen returns the current shootdown generation — the total
// number of ranges ever published. Lock-free.
func (s *System) ShootdownGen() uint64 { return s.sync.Load() & syncGenMask }

// shootdownsSince returns the log entries after generation seen, along
// with the new generation. The log only grows, so the copy is stable.
func (s *System) shootdownsSince(seen uint64) ([]ShootdownRange, uint64) {
	gen := s.sync.Load() & syncGenMask
	if gen == seen {
		return nil, seen
	}
	s.shootMu.Lock()
	out := make([]ShootdownRange, gen-seen)
	copy(out, s.shootLog[seen:gen])
	s.shootMu.Unlock()
	return out, gen
}

// QuiesceGate write-blocks a virtual address range while a migration
// remaps it: kernel threads that try to store into the range wait on the
// gate's channel until QuiesceEnd. Reads are never blocked (the staging
// protocol keeps a valid copy readable throughout); only stores must not
// land between the copy and the remap commit.
type QuiesceGate struct {
	base, size uint64
	done       chan struct{}
}

// QuiesceBegin installs a write gate over [base, base+size) and returns
// it. The caller must QuiesceEnd the gate; typically both calls bracket
// only the Retier step of a staged region copy.
func (s *System) QuiesceBegin(base, size uint64) *QuiesceGate {
	g := &QuiesceGate{base: base, size: size, done: make(chan struct{})}
	s.quiesceMu.Lock()
	s.gates = append(s.gates, g)
	s.quiesceMu.Unlock()
	s.sync.Add(syncGateOne)
	return g
}

// QuiesceEnd lifts the gate and wakes every blocked writer.
func (s *System) QuiesceEnd(g *QuiesceGate) {
	s.quiesceMu.Lock()
	for i, cur := range s.gates {
		if cur == g {
			s.gates = append(s.gates[:i], s.gates[i+1:]...)
			break
		}
	}
	s.quiesceMu.Unlock()
	// Drop the fast-path count before closing so a writer re-scanning
	// the gate list cannot find the gate again after waking.
	s.sync.Add(^(syncGateOne - 1))
	close(g.done)
}

// quiesceWait blocks until no installed gate covers addr, returning how
// many gates the caller waited out. The sync word's gate field keeps the
// no-migration case a single atomic load.
func (s *System) quiesceWait(addr uint64) int {
	waited := 0
	for s.sync.Load()>>syncGenBits > 0 {
		var blocking *QuiesceGate
		s.quiesceMu.Lock()
		for _, g := range s.gates {
			if addr >= g.base && addr < g.base+g.size {
				blocking = g
				break
			}
		}
		s.quiesceMu.Unlock()
		if blocking == nil {
			return waited
		}
		waited++
		<-blocking.done
	}
	return waited
}

// quarOverlapLocked reports whether [base, base+size) intersects any
// quarantined range. Callers hold s.mu.
func (s *System) quarOverlapLocked(base, size uint64) bool {
	for _, q := range s.quarRanges {
		if base < q.Base+q.Size && q.Base < base+size {
			return true
		}
	}
	return false
}

// RetirePages quarantines the page-aligned range [base, base+size): its
// pages may never be mapped to the fast tier again, and the bytes stay
// charged against fast-tier capacity forever (the device region is
// gone). Every page of the range must already be off the fast tier —
// evacuate first, retire second — and the charge must fit the remaining
// capacity. Already-quarantined stretches of the range are skipped, so
// overlapping retirements (scoreboard and scrubber condemning the same
// granule) are safe. Each retirement bumps the health generation.
func (s *System) RetirePages(base, size uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if base%SmallPage != 0 || size%SmallPage != 0 {
		return fmt.Errorf("memsim: RetirePages [%#x,+%#x) not page-aligned", base, size)
	}
	if size == 0 {
		return nil
	}
	first, n := base>>smallShift, size>>smallShift
	for i := first; i < first+n; i++ {
		pi, err := s.pt.lookup(i)
		if err != nil {
			continue // never-mapped stretches of a device range retire fine
		}
		if pi.Mapped && pi.Tier == TierFast {
			return fmt.Errorf("memsim: RetirePages [%#x,+%#x): page %#x still fast-mapped; evacuate before retiring",
				base, size, i<<smallShift)
		}
	}
	// Clip out stretches already retired; charge and record the rest.
	adds := s.quarSubtractLocked(base, size)
	var adding uint64
	for _, add := range adds {
		adding += add.Size
	}
	if adding == 0 {
		return nil
	}
	if s.committedLocked(TierFast)+adding > s.P.Tiers[TierFast].CapacityBytes {
		return fmt.Errorf("%w: tier %s: retiring %d bytes", ErrNoCapacity, TierFast, adding)
	}
	s.quarRanges = append(s.quarRanges, adds...)
	for _, add := range adds {
		s.tenantRetireLocked(add.Base, add.Size)
	}
	s.quarantined.Add(adding)
	s.healthGen.Add(1)
	return nil
}

// quarSubtractLocked returns the sub-ranges of [base, base+size) not yet
// covered by the quarantine ledger. Callers hold s.mu.
func (s *System) quarSubtractLocked(base, size uint64) []QuarantinedRange {
	pending := []QuarantinedRange{{Base: base, Size: size}}
	for _, q := range s.quarRanges {
		var next []QuarantinedRange
		for _, p := range pending {
			if p.Base >= q.Base+q.Size || q.Base >= p.Base+p.Size {
				next = append(next, p)
				continue
			}
			if p.Base < q.Base {
				next = append(next, QuarantinedRange{Base: p.Base, Size: q.Base - p.Base})
			}
			if p.Base+p.Size > q.Base+q.Size {
				next = append(next, QuarantinedRange{Base: q.Base + q.Size, Size: p.Base + p.Size - (q.Base + q.Size)})
			}
		}
		pending = next
	}
	return pending
}

// Quarantined returns the total bytes retired from the fast tier. It is
// a lock-free atomic read, safe from any thread.
func (s *System) Quarantined() uint64 { return s.quarantined.Load() }

// QuarantinedRanges returns a copy of the quarantine ledger, in
// retirement order.
func (s *System) QuarantinedRanges() []QuarantinedRange {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QuarantinedRange, len(s.quarRanges))
	copy(out, s.quarRanges)
	return out
}

// IsQuarantined reports whether any page of [base, base+size) is
// retired. The governor and plan replayer consult it before scheduling
// a promotion.
func (s *System) IsQuarantined(base, size uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarOverlapLocked(base, size)
}

// HealthGen returns the health generation: a counter bumped on every
// page retirement and range degradation. Compiled-plan signatures embed
// it, so any health change makes a recorded plan stale (the plan was
// recorded against capacity that no longer exists). Lock-free.
func (s *System) HealthGen() uint64 { return s.healthGen.Load() }

// DegradeRange installs a latency degradation over [base, base+size):
// accesses missing into the range cost factor times the modelled
// latency from now on. Overlapping degradations compound (each matching
// range contributes its factor). Factors at or below 1 are ignored.
func (s *System) DegradeRange(base, size uint64, factor float64) {
	if size == 0 || factor <= 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var next []DegradedRange
	if cur := s.degrades.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, DegradedRange{Base: base, Size: size, Factor: factor})
	s.degrades.Store(&next)
	s.healthGen.Add(1)
}

// DegradeFactor returns the combined latency multiplier for addr (1 when
// the address is healthy). One atomic load on the common no-degradation
// path; accessors call it only on cache misses.
func (s *System) DegradeFactor(addr uint64) float64 {
	p := s.degrades.Load()
	if p == nil {
		return 1
	}
	f := 1.0
	for _, d := range *p {
		if addr >= d.Base && addr < d.Base+d.Size {
			f *= d.Factor
		}
	}
	return f
}

// Degraded returns a copy of the installed degradations, in install
// order.
func (s *System) Degraded() []DegradedRange {
	p := s.degrades.Load()
	if p == nil {
		return nil
	}
	out := make([]DegradedRange, len(*p))
	copy(out, *p)
	return out
}

// CheckConsistency verifies the capacity-accounting invariants: the page
// table's per-tier mapped-byte totals match the used ledger, the
// quarantine ledger's byte total matches its ranges and covers no
// fast-mapped page, and no tier is committed (mapped + reserved +
// quarantined) beyond its capacity. The runtime's post-migration
// invariant checker calls it after every Optimize.
func (s *System) CheckConsistency() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var mapped [NumTiers]uint64
	pages := s.pt.slice()
	for i := range pages {
		pi := unpackPTE(pages[i].Load())
		if pi.Mapped {
			mapped[pi.Tier] += SmallPage
		}
	}
	for t := Tier(0); t < NumTiers; t++ {
		if mapped[t] != s.used[t].Load() {
			return fmt.Errorf("memsim: tier %s accounting drift: page table maps %d bytes, ledger says %d",
				t, mapped[t], s.used[t].Load())
		}
		if s.committedLocked(t) > s.P.Tiers[t].CapacityBytes {
			return fmt.Errorf("memsim: tier %s over-committed: %d mapped + %d reserved + %d quarantined > %d capacity",
				t, s.used[t].Load(), s.reserved[t].Load(), s.quarantined.Load(), s.P.Tiers[t].CapacityBytes)
		}
	}
	var quarTotal uint64
	for _, q := range s.quarRanges {
		quarTotal += q.Size
		first, n := q.Base>>smallShift, q.Size>>smallShift
		for i := first; i < first+n; i++ {
			pi, err := s.pt.lookup(i)
			if err != nil {
				continue
			}
			if pi.Mapped && pi.Tier == TierFast {
				return fmt.Errorf("memsim: quarantined page %#x is fast-mapped", i<<smallShift)
			}
		}
	}
	if quarTotal != s.quarantined.Load() {
		return fmt.Errorf("memsim: quarantine drift: ranges cover %d bytes, ledger says %d",
			quarTotal, s.quarantined.Load())
	}
	return s.checkTenantsLocked()
}
