package memsim

import (
	"fmt"
	"sync"
)

// System is one simulated heterogeneous memory machine: a virtual address
// space backed by two memory tiers. All mutating operations are
// goroutine-safe; the hot read path used by accessors takes no locks and
// relies on the runtime's phase structure (no allocation or migration
// happens while kernels run).
type System struct {
	P SystemParams

	mu     sync.Mutex
	pt     *PageTable
	nextVA uint64
	used   [NumTiers]uint64
}

// NewSystem builds a System from params. It panics if params are invalid,
// since every preset in this module must validate.
func NewSystem(p SystemParams) *System {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &System{
		P:      p,
		pt:     NewPageTable(),
		nextVA: HugePage, // keep address 0 unmapped
	}
}

// PageTable exposes the system page table to migration engines.
func (s *System) PageTable() *PageTable { return s.pt }

// RoundUp rounds size up to a multiple of align (a power of two).
func RoundUp(size, align uint64) uint64 {
	return (size + align - 1) &^ (align - 1)
}

// Alloc reserves a virtual range of at least size bytes backed by tier t
// and returns its base address. Allocations of at least one huge page are
// huge-page backed (the transparent-huge-page behaviour large graph
// allocations get on the real testbeds); smaller ones use 4 KiB pages.
// Alloc fails when the tier lacks capacity.
func (s *System) Alloc(size uint64, t Tier) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("memsim: zero-size allocation")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	huge := size >= HugePage
	align := uint64(SmallPage)
	if huge {
		align = HugePage
	}
	mapped := RoundUp(size, align)
	if s.used[t]+mapped > s.P.Tiers[t].CapacityBytes {
		return 0, fmt.Errorf("memsim: tier %s out of capacity: used %d + %d > %d",
			t, s.used[t], mapped, s.P.Tiers[t].CapacityBytes)
	}
	base := RoundUp(s.nextVA, HugePage) // huge-align every object's base
	if err := s.pt.Map(base, mapped, t, huge); err != nil {
		return 0, err
	}
	s.nextVA = base + mapped
	s.used[t] += mapped
	return base, nil
}

// AllocPrefer reserves a virtual range backed by the fast tier for as
// many leading pages as its remaining capacity allows, spilling the rest
// to the slow tier — the page-granular behaviour of a preferred NUMA
// policy (`numactl -p`, the paper's MCDRAM-p reference): capacity is
// consumed in allocation order with no regard for criticality. The range
// is 4 KiB-mapped when split across tiers (a preferred-policy allocation
// cannot promise huge-page backing across the spill point).
func (s *System) AllocPrefer(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("memsim: zero-size allocation")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := RoundUp(s.nextVA, HugePage)
	huge := size >= HugePage

	// Whole-object placement (huge pages preserved) when a tier has
	// room for the full aligned size.
	tryWhole := func(t Tier) (bool, error) {
		align := uint64(SmallPage)
		if huge {
			align = HugePage
		}
		aligned := RoundUp(size, align)
		if s.used[t]+aligned > s.P.Tiers[t].CapacityBytes {
			return false, nil
		}
		if err := s.pt.Map(base, aligned, t, huge); err != nil {
			return false, err
		}
		s.nextVA = base + aligned
		s.used[t] += aligned
		return true, nil
	}
	if ok, err := tryWhole(TierFast); err != nil || ok {
		return base, err
	}

	// Page-granular spill: leading pages on the fast tier until it is
	// full, the rest on the slow tier (both 4 KiB-mapped; a preferred
	// policy cannot promise huge pages across the spill point).
	mapped := RoundUp(size, SmallPage)
	freeFast := (s.P.Tiers[TierFast].CapacityBytes - s.used[TierFast]) &^ (SmallPage - 1)
	fastPart := mapped
	if fastPart > freeFast {
		fastPart = freeFast
	}
	slowPart := mapped - fastPart
	if fastPart == 0 {
		if ok, err := tryWhole(TierSlow); err != nil || ok {
			return base, err
		}
	}
	if s.used[TierSlow]+slowPart > s.P.Tiers[TierSlow].CapacityBytes {
		return 0, fmt.Errorf("memsim: tier %s out of capacity for preferred spill of %d bytes",
			TierSlow, slowPart)
	}
	if fastPart > 0 {
		if err := s.pt.Map(base, fastPart, TierFast, false); err != nil {
			return 0, err
		}
	}
	if slowPart > 0 {
		if err := s.pt.Map(base+fastPart, slowPart, TierSlow, false); err != nil {
			return 0, err
		}
	}
	s.nextVA = base + mapped
	s.used[TierFast] += fastPart
	s.used[TierSlow] += slowPart
	return base, nil
}

// Free releases the mapping of the object at [base, base+size). size must
// be the original requested size.
func (s *System) Free(base, size uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	align := uint64(SmallPage)
	if size >= HugePage {
		align = HugePage
	}
	mapped := RoundUp(size, align)
	// Account per-page so partially migrated objects are handled.
	first, n := base>>smallShift, mapped>>smallShift
	for i := first; i < first+n; i++ {
		pi, err := s.pt.lookup(i)
		if err != nil {
			return err
		}
		s.used[pi.Tier] -= SmallPage
	}
	for i := first; i < first+n; i++ {
		s.pt.pages[i] = PageInfo{}
	}
	return nil
}

// Retier changes the backing tier of the page-aligned range
// [base, base+size), preserving page sizes and updating capacity
// accounting. It fails (without changes) when the destination tier lacks
// capacity.
func (s *System) Retier(base, size uint64, t Tier) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retierLocked(base, size, t)
}

func (s *System) retierLocked(base, size uint64, t Tier) error {
	if base%SmallPage != 0 || size%SmallPage != 0 {
		return fmt.Errorf("memsim: Retier [%#x,+%#x) not page-aligned", base, size)
	}
	first, n := base>>smallShift, size>>smallShift
	var moving uint64
	for i := first; i < first+n; i++ {
		pi, err := s.pt.lookup(i)
		if err != nil {
			return err
		}
		if pi.Tier != t {
			moving += SmallPage
		}
	}
	if s.used[t]+moving > s.P.Tiers[t].CapacityBytes {
		return fmt.Errorf("memsim: tier %s out of capacity for retier of %d bytes", t, moving)
	}
	for i := first; i < first+n; i++ {
		if s.pt.pages[i].Tier != t {
			s.used[s.pt.pages[i].Tier] -= SmallPage
			s.used[t] += SmallPage
			s.pt.pages[i].Tier = t
		}
	}
	return nil
}

// Splinter breaks huge mappings intersecting [base, base+size) into 4 KiB
// mappings (see PageTable.Splinter).
func (s *System) Splinter(base, size uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pt.Splinter(base, size)
}

// Reserve charges size bytes against tier t without mapping anything —
// used for transient staging buffers during migration. Release with
// Unreserve.
func (s *System) Reserve(size uint64, t Tier) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used[t]+size > s.P.Tiers[t].CapacityBytes {
		return fmt.Errorf("memsim: tier %s out of capacity for %d-byte reservation", t, size)
	}
	s.used[t] += size
	return nil
}

// Unreserve returns a Reserve'd charge.
func (s *System) Unreserve(size uint64, t Tier) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used[t] < size {
		panic("memsim: Unreserve below zero")
	}
	s.used[t] -= size
}

// Used returns the bytes currently mapped or reserved on tier t.
func (s *System) Used(t Tier) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used[t]
}

// Free capacity remaining on tier t.
func (s *System) FreeCapacity(t Tier) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.P.Tiers[t].CapacityBytes - s.used[t]
}

// TierOf returns the tier currently backing addr.
func (s *System) TierOf(addr uint64) (Tier, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pt.TierOf(addr)
}

// BytesOnTier reports how many bytes of the page-spanning range
// [base, base+size) are on each tier.
func (s *System) BytesOnTier(base, size uint64) [NumTiers]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out [NumTiers]uint64
	if size == 0 {
		return out
	}
	first := base >> smallShift
	last := (base + size - 1) >> smallShift
	for i := first; i <= last; i++ {
		pi, err := s.pt.lookup(i)
		if err != nil {
			continue
		}
		lo := i << smallShift
		hi := lo + SmallPage
		if lo < base {
			lo = base
		}
		if hi > base+size {
			hi = base + size
		}
		out[pi.Tier] += hi - lo
	}
	return out
}
