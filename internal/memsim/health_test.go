package memsim

import (
	"errors"
	"testing"

	"atmem/internal/faultinject"
)

// Tests for the tier-health primitives: the quarantine ledger
// (RetirePages) and latency degradation (DegradeRange).

func TestRetirePagesShrinksCapacity(t *testing.T) {
	s := NewSystem(testParams()) // 4 MiB fast tier
	base, err := s.Alloc(HugePage, TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(base, HugePage, TierSlow); err != nil {
		t.Fatal(err)
	}
	gen := s.HealthGen()
	if err := s.RetirePages(base, HugePage); err != nil {
		t.Fatal(err)
	}
	if got := s.Quarantined(); got != HugePage {
		t.Errorf("Quarantined() = %d, want %d", got, HugePage)
	}
	if s.HealthGen() != gen+1 {
		t.Errorf("health generation did not advance")
	}
	if got := s.FreeCapacity(TierFast); got != 4*MiB-HugePage {
		t.Errorf("FreeCapacity = %d, want %d", got, 4*MiB-HugePage)
	}
	// The charge is permanent: an allocation needing the full tier fails.
	if _, err := s.Alloc(4*MiB, TierFast); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("full-tier alloc after retirement: %v, want ErrNoCapacity", err)
	}
	// But capacity minus the quarantine still allocates.
	if _, err := s.Alloc(2*MiB, TierFast); err != nil {
		t.Errorf("alloc within shrunk capacity: %v", err)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestRetirePagesRequiresEvacuation(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(HugePage, TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RetirePages(base, HugePage); err == nil {
		t.Fatal("retired a fast-mapped range without evacuation")
	}
	if s.Quarantined() != 0 {
		t.Errorf("failed retirement charged %d bytes", s.Quarantined())
	}
}

func TestRetierIntoQuarantineFails(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(2*HugePage, TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(base, 2*HugePage, TierSlow); err != nil {
		t.Fatal(err)
	}
	if err := s.RetirePages(base, HugePage); err != nil {
		t.Fatal(err)
	}
	// Promotion overlapping the quarantine is rejected with the typed
	// sentinel and no state change.
	err = s.Retier(base, 2*HugePage, TierFast)
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("promotion into quarantine: %v, want ErrQuarantined", err)
	}
	if s.Used(TierFast) != 0 {
		t.Error("rejected promotion moved pages")
	}
	// The untouched second huge page still promotes.
	if err := s.Retier(base+HugePage, HugePage, TierFast); err != nil {
		t.Fatal(err)
	}
	// Demotion of a quarantine-overlapping range must always pass (the
	// self-healing path evacuates before retiring).
	if err := s.Retier(base+HugePage, HugePage, TierSlow); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestRetirePagesOverlapChargesOnce(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(2*HugePage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RetirePages(base, HugePage); err != nil {
		t.Fatal(err)
	}
	// Exact re-retirement: no double charge, no generation bump.
	gen := s.HealthGen()
	if err := s.RetirePages(base, HugePage); err != nil {
		t.Fatal(err)
	}
	if s.Quarantined() != HugePage || s.HealthGen() != gen {
		t.Errorf("re-retirement charged again: quarantined=%d gen=%d", s.Quarantined(), s.HealthGen())
	}
	// Partial overlap charges only the new stretch.
	if err := s.RetirePages(base+HugePage/2, HugePage); err != nil {
		t.Fatal(err)
	}
	if got := s.Quarantined(); got != HugePage+HugePage/2 {
		t.Errorf("Quarantined() = %d, want %d", got, HugePage+HugePage/2)
	}
	if !s.IsQuarantined(base+HugePage, SmallPage) {
		t.Error("newly covered page not quarantined")
	}
	if s.IsQuarantined(base+3*HugePage/2, SmallPage) {
		t.Error("uncovered page reported quarantined")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestDegradeFactorComposition(t *testing.T) {
	s := NewSystem(testParams())
	if got := s.DegradeFactor(0x1000); got != 1 {
		t.Fatalf("healthy DegradeFactor = %g", got)
	}
	gen := s.HealthGen()
	s.DegradeRange(0x1000, 0x1000, 3)
	s.DegradeRange(0x1800, 0x1000, 2)
	if s.HealthGen() != gen+2 {
		t.Error("degradations did not advance the health generation")
	}
	if got := s.DegradeFactor(0x1000); got != 3 {
		t.Errorf("single-range factor = %g, want 3", got)
	}
	if got := s.DegradeFactor(0x1900); got != 6 {
		t.Errorf("overlapping factor = %g, want 6", got)
	}
	if got := s.DegradeFactor(0x2400); got != 2 {
		t.Errorf("second-range factor = %g, want 2", got)
	}
	if got := s.DegradeFactor(0x3000); got != 1 {
		t.Errorf("outside factor = %g, want 1", got)
	}
	// Ignored installs: zero size, factor <= 1.
	s.DegradeRange(0x1000, 0, 9)
	s.DegradeRange(0x1000, 0x1000, 1)
	if len(s.Degraded()) != 2 {
		t.Errorf("Degraded() = %v, want 2 ranges", s.Degraded())
	}
}

func TestDegradedAccessCostsMore(t *testing.T) {
	s, fast, _ := accessorFixture(t)
	// Random-stride loads so every miss is a demand miss, measured
	// before and after degrading the object's range.
	run := func() float64 {
		a := s.NewAccessor()
		for i := uint64(0); i < 512; i++ {
			a.Load(fast+(i*7919*64)%(1*MiB), 8)
		}
		return a.Cycles
	}
	healthy := run()
	s.DegradeRange(fast, 1*MiB, 8)
	degraded := run()
	if degraded <= healthy*2 {
		t.Errorf("8x degradation barely moved cost: healthy=%.0f degraded=%.0f", healthy, degraded)
	}
}

func TestFaultHookSeesPromotionRangeOnly(t *testing.T) {
	s := NewSystem(testParams())
	base, err := s.Alloc(HugePage, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	hook := &rangeRecordingHook{}
	s.SetFaultHook(hook)
	if err := s.Retier(base, HugePage, TierFast); err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(base, HugePage, TierSlow); err != nil {
		t.Fatal(err)
	}
	if len(hook.ranges) != 2 {
		t.Fatalf("hook saw %d calls", len(hook.ranges))
	}
	if hook.ranges[0] != [2]uint64{base, HugePage} {
		t.Errorf("promotion range = %v, want [%#x %#x]", hook.ranges[0], base, HugePage)
	}
	if hook.ranges[1] != [2]uint64{0, 0} {
		t.Errorf("demotion range = %v, want rangeless", hook.ranges[1])
	}
}

type rangeRecordingHook struct {
	ranges [][2]uint64
}

func (h *rangeRecordingHook) Check(op faultinject.Op) error { return h.CheckRange(op, 0, 0) }

func (h *rangeRecordingHook) CheckRange(op faultinject.Op, base, size uint64) error {
	h.ranges = append(h.ranges, [2]uint64{base, size})
	return nil
}
