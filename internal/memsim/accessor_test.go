package memsim

import (
	"testing"
)

// accessorFixture builds a system with one object on each tier.
func accessorFixture(t *testing.T) (*System, uint64, uint64) {
	t.Helper()
	s := NewSystem(testParams())
	fast, err := s.Alloc(1*MiB, TierFast)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := s.Alloc(1*MiB, TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	return s, fast, slow
}

func TestAccessorCountsAccesses(t *testing.T) {
	s, fast, _ := accessorFixture(t)
	a := s.NewAccessor()
	a.Load(fast, 8)
	a.Store(fast+64, 8)
	if a.Accesses != 2 {
		t.Errorf("accesses = %d", a.Accesses)
	}
	if a.Cycles <= 0 {
		t.Error("no cycles charged")
	}
}

func TestAccessCrossingLines(t *testing.T) {
	s, fast, _ := accessorFixture(t)
	a := s.NewAccessor()
	// An 8-byte access straddling a line boundary touches two lines.
	a.Load(fast+60, 8)
	if a.L1Hits+a.LLCHits+a.LLCMisses+a.PrefetchedLines != 2 {
		t.Errorf("expected 2 line touches, got hits=%d+%d misses=%d pf=%d",
			a.L1Hits, a.LLCHits, a.LLCMisses, a.PrefetchedLines)
	}
}

func TestRepeatedAccessHitsL1(t *testing.T) {
	s, fast, _ := accessorFixture(t)
	a := s.NewAccessor()
	a.Load(fast, 8)
	before := a.L1Hits
	a.Load(fast, 8)
	if a.L1Hits != before+1 {
		t.Error("repeated access should hit L1")
	}
}

func TestTierTrafficAttribution(t *testing.T) {
	s, fast, slow := accessorFixture(t)
	a := s.NewAccessor()
	// Random-stride reads so nothing is classified sequential.
	for i := uint64(0); i < 64; i++ {
		a.Load(fast+i*577*64%MiB, 8)
	}
	if a.ReadBytes[TierFast] == 0 {
		t.Error("no fast-tier read bytes recorded")
	}
	if a.ReadBytes[TierSlow] != 0 {
		t.Error("slow-tier bytes recorded for fast-only accesses")
	}
	for i := uint64(0); i < 64; i++ {
		a.Load(slow+i*577*64%MiB, 8)
	}
	if a.ReadBytes[TierSlow] == 0 {
		t.Error("no slow-tier read bytes recorded")
	}
}

func TestGrainAmplificationOnRandomSlowReads(t *testing.T) {
	s, _, slow := accessorFixture(t)
	a := s.NewAccessor()
	// Two random (non-adjacent) misses on the slow tier.
	a.Load(slow, 8)
	a.Load(slow+512*64, 8)
	grain := uint64(s.P.Tiers[TierSlow].AccessGrainBytes)
	if a.ReadBytes[TierSlow] != 2*grain {
		t.Errorf("read bytes %d, want %d (device grain amplification)",
			a.ReadBytes[TierSlow], 2*grain)
	}
}

func TestSequentialStreamCoalescesGrain(t *testing.T) {
	s, _, slow := accessorFixture(t)
	a := s.NewAccessor()
	const lines = 64
	for i := uint64(0); i < lines*64; i += 64 {
		a.Load(slow+i, 8)
	}
	// First line is a random miss (grain), the remaining 63 are
	// sequential (line-sized).
	grain := uint64(s.P.Tiers[TierSlow].AccessGrainBytes)
	want := grain + (lines-1)*64
	if a.ReadBytes[TierSlow] != want {
		t.Errorf("stream read bytes %d, want %d", a.ReadBytes[TierSlow], want)
	}
}

func TestPrefetchCoverageHidesDemandMisses(t *testing.T) {
	s, _, slow := accessorFixture(t)
	a := s.NewAccessor()
	const lines = 512
	for i := uint64(0); i < lines*64; i += 64 {
		a.Load(slow+i, 8)
	}
	if a.PrefetchedLines == 0 {
		t.Error("no prefetch-covered lines on a long stream")
	}
	// Roughly 1/PrefetchDemandInterval of stream lines surface as
	// demand misses.
	demand := a.LLCMisses
	if demand == 0 {
		t.Error("prefetcher hid every demand miss")
	}
	frac := float64(demand) / float64(lines)
	wantFrac := 1 / float64(s.P.PrefetchDemandInterval)
	if frac > 3*wantFrac {
		t.Errorf("demand fraction %.3f, want about %.3f", frac, wantFrac)
	}
}

func TestMissHookSeesOnlyDemandMisses(t *testing.T) {
	s, _, slow := accessorFixture(t)
	a := s.NewAccessor()
	var hookCalls uint64
	a.SetMissHook(func(addr uint64, write bool) float64 {
		hookCalls++
		return 0
	})
	for i := uint64(0); i < 512*64; i += 64 {
		a.Load(slow+i, 8)
	}
	if hookCalls != a.LLCMisses {
		t.Errorf("hook calls %d != demand misses %d", hookCalls, a.LLCMisses)
	}
}

func TestMissHookOverheadCharged(t *testing.T) {
	s, _, slow := accessorFixture(t)
	a := s.NewAccessor()
	a.Load(slow, 8) // cold miss without hook
	base := a.Cycles
	a.SetMissHook(func(addr uint64, write bool) float64 { return 1000 })
	a.Load(slow+999*64, 8) // another random miss
	if a.Cycles < base+1000 {
		t.Error("hook overhead not charged")
	}
}

func TestTLBMissOnFirstTouch(t *testing.T) {
	s, _, slow := accessorFixture(t)
	a := s.NewAccessor()
	a.Load(slow, 8)
	if a.TLBMisses != 1 {
		t.Errorf("TLB misses = %d, want 1", a.TLBMisses)
	}
	// Same huge page: no further walk even for a different line.
	a.Load(slow+8192, 8)
	if a.TLBMisses != 1 {
		t.Errorf("TLB misses = %d after same-page access", a.TLBMisses)
	}
}

func TestWritebackOnDirtyEviction(t *testing.T) {
	s, _, slow := accessorFixture(t)
	a := s.NewAccessor()
	// Dirty many random lines, far exceeding LLC capacity, to force
	// dirty evictions.
	span := uint64(1 * MiB)
	for i := uint64(0); i < 32768; i++ {
		a.Store(slow+(i*7919*64)%span, 8)
	}
	if a.WritebackBytes[TierSlow] == 0 {
		t.Error("no writeback traffic from dirty evictions")
	}
	if a.Writebacks == 0 {
		t.Error("no writebacks counted")
	}
}

func TestInvalidateCacheRangeForcesMisses(t *testing.T) {
	s, fast, _ := accessorFixture(t)
	a := s.NewAccessor()
	a.Load(fast, 8)
	a.InvalidateCacheRange(fast, 64)
	missesBefore := a.LLCMisses
	a.Load(fast, 8)
	if a.LLCMisses != missesBefore+1 {
		t.Error("invalidated line did not miss")
	}
}

func TestResetCountersKeepsCacheWarm(t *testing.T) {
	s, fast, _ := accessorFixture(t)
	a := s.NewAccessor()
	a.Load(fast, 8)
	a.ResetCounters()
	if a.Cycles != 0 || a.Accesses != 0 || a.LLCMisses != 0 {
		t.Error("counters not reset")
	}
	a.Load(fast, 8)
	if a.L1Hits != 1 {
		t.Error("cache state lost across reset")
	}
}

func TestReducePhaseWallTime(t *testing.T) {
	s, _, slow := accessorFixture(t)
	a1 := s.NewAccessor()
	a2 := s.NewAccessor()
	for i := uint64(0); i < 1024; i++ {
		a1.Load(slow+(i*577*64)%MiB, 8)
	}
	a2.Compute(1e6)
	ps := s.ReducePhase([]*Accessor{a1, a2})
	if ps.WallSeconds <= 0 {
		t.Fatal("no wall time")
	}
	if ps.WallSeconds < ps.BandwidthSeconds || ps.WallSeconds < ps.LatencySeconds {
		t.Error("wall time below its components")
	}
	// Latency path reflects the slowest thread divided by the gang.
	wantLat := 1e6 / (s.P.ClockGHz * 1e9 * float64(s.P.GangSize))
	if ps.LatencySeconds < wantLat {
		t.Errorf("latency path %v below compute-bound thread %v", ps.LatencySeconds, wantLat)
	}
}

func TestSharedChannelsSerializeTraffic(t *testing.T) {
	p := testParams()
	p.SharedChannels = true
	s := NewSystem(p)
	fast, _ := s.Alloc(MiB, TierFast)
	slow, _ := s.Alloc(MiB, TierSlow)
	a := s.NewAccessor()
	for i := uint64(0); i < 512; i++ {
		a.Load(fast+(i*577*64)%MiB, 8)
		a.Load(slow+(i*577*64)%MiB, 8)
	}
	shared := s.ReducePhase([]*Accessor{a}).BandwidthSeconds

	p2 := testParams()
	p2.SharedChannels = false
	s2 := NewSystem(p2)
	fast2, _ := s2.Alloc(MiB, TierFast)
	slow2, _ := s2.Alloc(MiB, TierSlow)
	b := s2.NewAccessor()
	for i := uint64(0); i < 512; i++ {
		b.Load(fast2+(i*577*64)%MiB, 8)
		b.Load(slow2+(i*577*64)%MiB, 8)
	}
	independent := s2.ReducePhase([]*Accessor{b}).BandwidthSeconds
	if shared <= independent {
		t.Errorf("shared channels (%v) should cost more than independent (%v)",
			shared, independent)
	}
}

func TestSlowTierCostsMoreThanFast(t *testing.T) {
	s, fast, slow := accessorFixture(t)
	run := func(base uint64) float64 {
		a := s.NewAccessor()
		for i := uint64(0); i < 4096; i++ {
			a.Load(base+(i*577*64)%MiB, 8)
		}
		return s.ReducePhase([]*Accessor{a}).WallSeconds
	}
	tFast, tSlow := run(fast), run(slow)
	if tSlow <= tFast {
		t.Errorf("slow tier (%v) not slower than fast tier (%v)", tSlow, tFast)
	}
	if tSlow < 2*tFast {
		t.Errorf("random-access tier gap only %.2fx, want >= 2x", tSlow/tFast)
	}
}
