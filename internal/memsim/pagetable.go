package memsim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// PageInfo describes the mapping of one 4 KiB virtual page.
type PageInfo struct {
	// Mapped is false for unmapped address space.
	Mapped bool
	// Huge is true when the page is part of a 2 MiB mapping.
	Huge bool
	// Tier is the physical memory the page resides on.
	Tier Tier
}

// Each page-table entry packs into one atomic 64-bit word so a single
// load observes a self-consistent mapping while a remap runs on another
// goroutine. The layout is a per-page seqlock: the busy bit is the
// writer's lock (translation spins while it is set), and the generation
// counter advances on every committed change, so a stable word is always
// either the pre-remap or the post-remap mapping — never a torn mix.
const (
	pteMapped uint64 = 1 << 0
	pteHuge   uint64 = 1 << 1
	// pteBusy marks a page mid-remap: the stored tier is the last
	// committed one, and translation retries until the writer commits.
	pteBusy uint64 = 1 << 2

	pteTierShift = 8
	pteTierMask  = uint64(0xff) << pteTierShift
	pteGenShift  = 16
)

// packPTE encodes pi with the given generation (busy clear).
func packPTE(pi PageInfo, gen uint64) uint64 {
	var w uint64
	if pi.Mapped {
		w |= pteMapped
	}
	if pi.Huge {
		w |= pteHuge
	}
	w |= uint64(pi.Tier) << pteTierShift
	w |= gen << pteGenShift
	return w
}

// unpackPTE decodes the mapping bits of a word (the busy bit and
// generation are protocol state, not part of the mapping).
func unpackPTE(w uint64) PageInfo {
	return PageInfo{
		Mapped: w&pteMapped != 0,
		Huge:   w&pteHuge != 0,
		Tier:   Tier((w & pteTierMask) >> pteTierShift),
	}
}

func pteGen(w uint64) uint64 { return w >> pteGenShift }

// PageTable maps a flat virtual address space to memory tiers at 4 KiB
// granularity, with huge-page (2 MiB) mappings represented as 512
// consecutive entries flagged Huge. It is the substrate both migration
// engines manipulate: the ATMem engine remaps ranges wholesale and keeps
// huge mappings, while the mbind-style engine splinters them into 4 KiB
// pages (§2.3, §7.3).
//
// Entries are packed atomic words (see packPTE), so the accessor
// translation path is safe against a concurrent remap: mutators are
// serialized by the owning System's lock, while readers take no locks
// and spin only across a remap's brief busy window. The entry slice
// itself grows only at Alloc time, which the runtime never overlaps
// with running kernels; the atomic.Pointer swap keeps even that case
// well-defined for a racing reader (it sees the pre-grow entries, all
// of which were copied verbatim).
type PageTable struct {
	pages atomic.Pointer[[]atomic.Uint64] // indexed by vaddr >> 12
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	pt := &PageTable{}
	empty := make([]atomic.Uint64, 0)
	pt.pages.Store(&empty)
	return pt
}

const (
	smallShift = 12
	hugeShift  = 16 // log2(HugePage)
	// PagesPerHuge is the number of 4 KiB entries in one huge mapping.
	PagesPerHuge = 1 << (hugeShift - smallShift)
)

// slice returns the current entry array.
func (pt *PageTable) slice() []atomic.Uint64 { return *pt.pages.Load() }

func (pt *PageTable) grow(vpage uint64) {
	old := pt.slice()
	if need := int(vpage) + 1; need > len(old) {
		// Grow geometrically from the current length, not from the
		// requested index: doubling `need` would over-allocate 2x on
		// every first touch of a high page.
		newLen := 2 * len(old)
		if newLen < need {
			newLen = need
		}
		grown := make([]atomic.Uint64, newLen)
		for i := range old {
			grown[i].Store(old[i].Load())
		}
		pt.pages.Store(&grown)
	}
}

// word returns the raw entry of vpage (0 for out-of-range).
func (pt *PageTable) word(vpage uint64) uint64 {
	p := pt.slice()
	if int(vpage) >= len(p) {
		return 0
	}
	return p[vpage].Load()
}

// set commits a new mapping for vpage, bumping its generation and
// clearing any busy bit. Callers are serialized by the System's lock.
func (pt *PageTable) set(vpage uint64, pi PageInfo) {
	p := pt.slice()
	old := p[vpage].Load()
	p[vpage].Store(packPTE(pi, pteGen(old)+1))
}

// markBusy opens the seqlock write window of vpage: the committed
// mapping stays readable in the word, but TranslateStable spins until
// the writer commits via set. Callers are serialized by the System's
// lock.
func (pt *PageTable) markBusy(vpage uint64) {
	p := pt.slice()
	p[vpage].Store(p[vpage].Load() | pteBusy)
}

// clearBusy closes a busy window without changing the mapping (used
// when a validated range turns out to need no change).
func (pt *PageTable) clearBusy(vpage uint64) {
	p := pt.slice()
	p[vpage].Store(p[vpage].Load() &^ pteBusy)
}

// Map establishes a mapping for [base, base+size) on the given tier. base
// and size must be 4 KiB aligned; when huge is true they must be 2 MiB
// aligned. Remapping an already-mapped page is an error (use Remap).
func (pt *PageTable) Map(base, size uint64, t Tier, huge bool) error {
	align := uint64(SmallPage)
	if huge {
		align = HugePage
	}
	if base%align != 0 || size%align != 0 {
		return fmt.Errorf("memsim: Map [%#x,+%#x) not %d-aligned", base, size, align)
	}
	first, n := base>>smallShift, size>>smallShift
	pt.grow(first + n - 1)
	for i := first; i < first+n; i++ {
		if pt.word(i)&pteMapped != 0 {
			return fmt.Errorf("memsim: Map would double-map page %#x", i<<smallShift)
		}
	}
	for i := first; i < first+n; i++ {
		pt.set(i, PageInfo{Mapped: true, Huge: huge, Tier: t})
	}
	return nil
}

// Unmap removes the mapping of [base, base+size). It is an error if any
// page in the range is unmapped, or if the range splits a huge mapping.
func (pt *PageTable) Unmap(base, size uint64) error {
	if base%SmallPage != 0 || size%SmallPage != 0 {
		return fmt.Errorf("memsim: Unmap [%#x,+%#x) not page-aligned", base, size)
	}
	first, n := base>>smallShift, size>>smallShift
	for i := first; i < first+n; i++ {
		pi, err := pt.lookup(i)
		if err != nil {
			return err
		}
		if pi.Huge && (i%PagesPerHuge == 0 && i+PagesPerHuge > first+n ||
			i == first && i%PagesPerHuge != 0) {
			return fmt.Errorf("memsim: Unmap [%#x,+%#x) splits a huge page", base, size)
		}
	}
	for i := first; i < first+n; i++ {
		pt.set(i, PageInfo{})
	}
	return nil
}

func (pt *PageTable) lookup(vpage uint64) (PageInfo, error) {
	w := pt.word(vpage)
	if w&pteMapped == 0 {
		return PageInfo{}, fmt.Errorf("memsim: fault at unmapped page %#x", vpage<<smallShift)
	}
	return unpackPTE(w), nil
}

// Translate returns the mapping of the page containing addr. It panics on
// an unmapped address: a simulated segfault, which always indicates a bug
// in the runtime or a kernel accessing unregistered memory.
func (pt *PageTable) Translate(addr uint64) PageInfo {
	pi, _ := pt.TranslateStable(addr)
	return pi
}

// TranslateStable returns the mapping of the page containing addr along
// with the number of seqlock retries taken: if the page is mid-remap
// (busy bit set), the read spins until the writer commits, so the
// returned mapping is always a committed one — either the pre-remap or
// the post-remap tier, never a transitional state. Like Translate it
// panics on an unmapped address (a simulated segfault).
func (pt *PageTable) TranslateStable(addr uint64) (PageInfo, int) {
	vpage := addr >> smallShift
	retries := 0
	for {
		w := pt.word(vpage)
		if w&pteMapped == 0 {
			panic(fmt.Sprintf("memsim: simulated segfault at %#x", addr))
		}
		if w&pteBusy == 0 {
			return unpackPTE(w), retries
		}
		retries++
		if retries&15 == 0 {
			// The remap writer holds no lock the reader could wait on;
			// yield so a single-P test run cannot live-lock the spin.
			runtime.Gosched()
		}
	}
}

// Generation returns the seqlock generation of the page containing addr.
// It advances on every committed mapping change; tests use it to assert
// that a remap was (or was not) observed.
func (pt *PageTable) Generation(addr uint64) uint64 {
	return pteGen(pt.word(addr >> smallShift))
}

// TierOf returns the tier of the page containing addr and whether the page
// is mapped at all. Unlike TranslateStable it does not wait out a busy
// window: mid-remap it reports the last committed tier, which is what the
// writeback path (cache evictions racing a migration) wants.
func (pt *PageTable) TierOf(addr uint64) (Tier, bool) {
	w := pt.word(addr >> smallShift)
	if w&pteMapped == 0 {
		return 0, false
	}
	return unpackPTE(w).Tier, true
}

// Retier moves every page of [base, base+size) to tier t, preserving the
// page granularity (huge mappings stay huge). This models the ATMem remap
// step: the virtual addresses are untouched, only the physical backing
// changes (§4.4). The range transitions through the seqlock busy window
// as a unit: readers that land inside the window retry until the new
// tiers commit.
func (pt *PageTable) Retier(base, size uint64, t Tier) error {
	if base%SmallPage != 0 || size%SmallPage != 0 {
		return fmt.Errorf("memsim: Retier [%#x,+%#x) not page-aligned", base, size)
	}
	first, n := base>>smallShift, size>>smallShift
	for i := first; i < first+n; i++ {
		if _, err := pt.lookup(i); err != nil {
			return err
		}
	}
	for i := first; i < first+n; i++ {
		pt.markBusy(i)
	}
	for i := first; i < first+n; i++ {
		pi := unpackPTE(pt.word(i))
		pi.Tier = t
		pt.set(i, pi)
	}
	return nil
}

// Splinter converts every huge mapping intersecting [base, base+size) into
// 4 KiB mappings (whole huge pages are split, as the kernel does when
// migrate_pages touches part of a THP). This models the mbind engine's
// side effect that inflates post-migration TLB misses (§2.3, Table 4).
// Each page flips in one atomic commit — a huge→small transition needs no
// busy window because either word is a valid committed mapping.
func (pt *PageTable) Splinter(base, size uint64) error {
	if size == 0 {
		return nil
	}
	first := base >> smallShift
	last := (base + size - 1) >> smallShift
	// Expand to huge-page boundaries of any huge mapping touched.
	firstHuge := first / PagesPerHuge * PagesPerHuge
	lastHuge := (last/PagesPerHuge + 1) * PagesPerHuge
	p := pt.slice()
	for i := firstHuge; i < lastHuge && int(i) < len(p); i++ {
		w := p[i].Load()
		if w&pteMapped != 0 && w&pteHuge != 0 {
			pi := unpackPTE(w)
			pi.Huge = false
			pt.set(i, pi)
		}
	}
	return nil
}

// HugePages returns how many of the mapped pages in [base, base+size) are
// part of huge mappings, and the total mapped page count.
func (pt *PageTable) HugePages(base, size uint64) (huge, total int) {
	first, n := base>>smallShift, (size+SmallPage-1)>>smallShift
	p := pt.slice()
	for i := first; i < first+n && int(i) < len(p); i++ {
		w := p[i].Load()
		if w&pteMapped == 0 {
			continue
		}
		total++
		if w&pteHuge != 0 {
			huge++
		}
	}
	return huge, total
}
