package memsim

import "fmt"

// PageInfo describes the mapping of one 4 KiB virtual page.
type PageInfo struct {
	// Mapped is false for unmapped address space.
	Mapped bool
	// Huge is true when the page is part of a 2 MiB mapping.
	Huge bool
	// Tier is the physical memory the page resides on.
	Tier Tier
}

// PageTable maps a flat virtual address space to memory tiers at 4 KiB
// granularity, with huge-page (2 MiB) mappings represented as 512
// consecutive entries flagged Huge. It is the substrate both migration
// engines manipulate: the ATMem engine remaps ranges wholesale and keeps
// huge mappings, while the mbind-style engine splinters them into 4 KiB
// pages (§2.3, §7.3).
type PageTable struct {
	pages []PageInfo // indexed by vaddr >> 12
}

// NewPageTable returns an empty page table.
func NewPageTable() *PageTable {
	return &PageTable{}
}

const (
	smallShift = 12
	hugeShift  = 16 // log2(HugePage)
	// PagesPerHuge is the number of 4 KiB entries in one huge mapping.
	PagesPerHuge = 1 << (hugeShift - smallShift)
)

func (pt *PageTable) grow(vpage uint64) {
	if need := int(vpage) + 1; need > len(pt.pages) {
		// Grow geometrically from the current length, not from the
		// requested index: doubling `need` would over-allocate 2x on
		// every first touch of a high page.
		newLen := 2 * len(pt.pages)
		if newLen < need {
			newLen = need
		}
		grown := make([]PageInfo, newLen)
		copy(grown, pt.pages)
		pt.pages = grown
	}
}

// Map establishes a mapping for [base, base+size) on the given tier. base
// and size must be 4 KiB aligned; when huge is true they must be 2 MiB
// aligned. Remapping an already-mapped page is an error (use Remap).
func (pt *PageTable) Map(base, size uint64, t Tier, huge bool) error {
	align := uint64(SmallPage)
	if huge {
		align = HugePage
	}
	if base%align != 0 || size%align != 0 {
		return fmt.Errorf("memsim: Map [%#x,+%#x) not %d-aligned", base, size, align)
	}
	first, n := base>>smallShift, size>>smallShift
	pt.grow(first + n - 1)
	for i := first; i < first+n; i++ {
		if pt.pages[i].Mapped {
			return fmt.Errorf("memsim: Map would double-map page %#x", i<<smallShift)
		}
	}
	for i := first; i < first+n; i++ {
		pt.pages[i] = PageInfo{Mapped: true, Huge: huge, Tier: t}
	}
	return nil
}

// Unmap removes the mapping of [base, base+size). It is an error if any
// page in the range is unmapped, or if the range splits a huge mapping.
func (pt *PageTable) Unmap(base, size uint64) error {
	if base%SmallPage != 0 || size%SmallPage != 0 {
		return fmt.Errorf("memsim: Unmap [%#x,+%#x) not page-aligned", base, size)
	}
	first, n := base>>smallShift, size>>smallShift
	for i := first; i < first+n; i++ {
		pi, err := pt.lookup(i)
		if err != nil {
			return err
		}
		if pi.Huge && (i%PagesPerHuge == 0 && i+PagesPerHuge > first+n ||
			i == first && i%PagesPerHuge != 0) {
			return fmt.Errorf("memsim: Unmap [%#x,+%#x) splits a huge page", base, size)
		}
	}
	for i := first; i < first+n; i++ {
		pt.pages[i] = PageInfo{}
	}
	return nil
}

func (pt *PageTable) lookup(vpage uint64) (PageInfo, error) {
	if int(vpage) >= len(pt.pages) || !pt.pages[vpage].Mapped {
		return PageInfo{}, fmt.Errorf("memsim: fault at unmapped page %#x", vpage<<smallShift)
	}
	return pt.pages[vpage], nil
}

// Translate returns the mapping of the page containing addr. It panics on
// an unmapped address: a simulated segfault, which always indicates a bug
// in the runtime or a kernel accessing unregistered memory.
func (pt *PageTable) Translate(addr uint64) PageInfo {
	vpage := addr >> smallShift
	if int(vpage) >= len(pt.pages) || !pt.pages[vpage].Mapped {
		panic(fmt.Sprintf("memsim: simulated segfault at %#x", addr))
	}
	return pt.pages[vpage]
}

// TierOf returns the tier of the page containing addr and whether the page
// is mapped at all.
func (pt *PageTable) TierOf(addr uint64) (Tier, bool) {
	vpage := addr >> smallShift
	if int(vpage) >= len(pt.pages) || !pt.pages[vpage].Mapped {
		return 0, false
	}
	return pt.pages[vpage].Tier, true
}

// Retier moves every page of [base, base+size) to tier t, preserving the
// page granularity (huge mappings stay huge). This models the ATMem remap
// step: the virtual addresses are untouched, only the physical backing
// changes (§4.4).
func (pt *PageTable) Retier(base, size uint64, t Tier) error {
	if base%SmallPage != 0 || size%SmallPage != 0 {
		return fmt.Errorf("memsim: Retier [%#x,+%#x) not page-aligned", base, size)
	}
	first, n := base>>smallShift, size>>smallShift
	for i := first; i < first+n; i++ {
		if _, err := pt.lookup(i); err != nil {
			return err
		}
	}
	for i := first; i < first+n; i++ {
		pt.pages[i].Tier = t
	}
	return nil
}

// Splinter converts every huge mapping intersecting [base, base+size) into
// 4 KiB mappings (whole huge pages are split, as the kernel does when
// migrate_pages touches part of a THP). This models the mbind engine's
// side effect that inflates post-migration TLB misses (§2.3, Table 4).
func (pt *PageTable) Splinter(base, size uint64) error {
	if size == 0 {
		return nil
	}
	first := base >> smallShift
	last := (base + size - 1) >> smallShift
	// Expand to huge-page boundaries of any huge mapping touched.
	firstHuge := first / PagesPerHuge * PagesPerHuge
	lastHuge := (last/PagesPerHuge + 1) * PagesPerHuge
	for i := firstHuge; i < lastHuge && int(i) < len(pt.pages); i++ {
		if pt.pages[i].Mapped && pt.pages[i].Huge {
			pt.pages[i].Huge = false
		}
	}
	return nil
}

// HugePages returns how many of the mapped pages in [base, base+size) are
// part of huge mappings, and the total mapped page count.
func (pt *PageTable) HugePages(base, size uint64) (huge, total int) {
	first, n := base>>smallShift, (size+SmallPage-1)>>smallShift
	for i := first; i < first+n && int(i) < len(pt.pages); i++ {
		if !pt.pages[i].Mapped {
			continue
		}
		total++
		if pt.pages[i].Huge {
			huge++
		}
	}
	return huge, total
}
