package memsim

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// The sharded hot path exists so simulation throughput scales with host
// cores: every per-access touch is accessor-private (counters, caches,
// TLBs, sample buffers) and the only shared state — the sync word — is
// skipped entirely by sealed phases. BenchmarkAccessorParallel sweeps
// GOMAXPROCS to expose the scaling curve, and the efficiency test holds
// the floor on machines with enough cores.

// parallelWorkers builds one shared system with a 4 MiB slow-tier object
// and one sealed accessor per worker — the shape of a governed phase
// with no background placement.
func parallelWorkers(tb testing.TB, workers int) (*System, []*Accessor, []uint64) {
	tb.Helper()
	s := NewSystem(testParams())
	accs := make([]*Accessor, workers)
	bases := make([]uint64, workers)
	for i := range accs {
		base, err := s.Alloc(4*MiB, TierSlow)
		if err != nil {
			tb.Fatal(err)
		}
		accs[i] = s.NewAccessor()
		accs[i].SetSealed(true)
		bases[i] = base
	}
	return s, accs, bases
}

// parallelWorkload drives one worker: a graph-kernel-like mix of random
// single accesses and short sequential runs over the worker's region.
func parallelWorkload(a *Accessor, base uint64, ops int, seed uint64) {
	rng := seed*0x9e3779b97f4a7c15 + 1
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	span := uint64(4*MiB - 64*KiB)
	for i := 0; i < ops; i++ {
		r := next()
		addr := base + r%span
		switch r % 8 {
		case 0:
			a.StoreRange(addr, 8, 64)
		case 1:
			a.LoadRange(addr, 8, 256)
		case 2:
			a.Store(addr, 8)
		default:
			a.Load(addr, 8)
		}
	}
}

// runParallel executes the workload on every worker concurrently and
// returns total simulated accesses and elapsed host time.
func runParallel(accs []*Accessor, bases []uint64, opsPerWorker int) (uint64, time.Duration) {
	var wg sync.WaitGroup
	start := time.Now()
	for i := range accs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parallelWorkload(accs[i], bases[i], opsPerWorker, uint64(i+1))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var total uint64
	for _, a := range accs {
		total += a.Accesses
	}
	return total, elapsed
}

// BenchmarkAccessorParallel sweeps host parallelism over a fixed gang of
// 8 simulated threads: near-linear accesses/sec growth up to the
// machine's core count is the sharding contract. Metric of record:
// simacc/s (simulated accesses per host second).
func BenchmarkAccessorParallel(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("procs-%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			_, accs, bases := parallelWorkers(b, 8)
			b.ResetTimer()
			var total uint64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				for _, a := range accs {
					a.ResetCounters()
				}
				n, d := runParallel(accs, bases, 4096)
				total += n
				elapsed += d
			}
			b.ReportMetric(float64(total)/elapsed.Seconds(), "simacc/s")
			b.ReportMetric(elapsed.Seconds()*1e9/float64(total), "ns/simacc")
		})
	}
}

// TestParallelScalingEfficiency holds the scaling floor: with 4 host
// cores, 4 workers must reach at least 70% parallel efficiency (≥ 2.8x
// the single-core throughput). Guarded for short runs and skipped on
// hosts without enough cores, where the measurement is meaningless.
func TestParallelScalingEfficiency(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("needs >= 4 host cores, have %d", runtime.NumCPU())
	}
	const workers, ops = 4, 1 << 15
	measure := func(procs int) float64 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			_, accs, bases := parallelWorkers(t, workers)
			n, d := runParallel(accs, bases, ops)
			if tput := float64(n) / d.Seconds(); tput > best {
				best = tput
			}
		}
		return best
	}
	t1 := measure(1)
	t4 := measure(4)
	eff := t4 / (4 * t1)
	t.Logf("throughput: 1 core %.3g acc/s, 4 cores %.3g acc/s, efficiency %.1f%%", t1, t4, eff*100)
	if eff < 0.70 {
		t.Errorf("parallel efficiency %.1f%% below the 70%% floor (1-core %.3g, 4-core %.3g acc/s)",
			eff*100, t1, t4)
	}
}
