// Package memsim simulates a heterogeneous memory system (HMS): two memory
// tiers with asymmetric latency, bandwidth, capacity, and device access
// granularity, behind a virtual address space with 4 KiB and 2 MiB pages,
// per-thread TLBs, and a cycle/bandwidth execution cost model.
//
// The package substitutes for the paper's two hardware testbeds (Table 1):
// the Intel Optane NVM-DRAM platform and the Knights Landing MCDRAM-DRAM
// platform. Parameters are calibrated to the numbers the paper cites
// (§2.1, [25], [31]); capacities are scaled down by the same factor as the
// graph datasets so capacity pressure is preserved (see DESIGN.md §4–5).
package memsim

import "fmt"

// Tier identifies one of the two memories of the HMS.
type Tier uint8

const (
	// TierFast is the small high-performance memory (DRAM on the
	// NVM-DRAM testbed, MCDRAM on the MCDRAM-DRAM testbed).
	TierFast Tier = 0
	// TierSlow is the large low-performance memory (Optane NVM on the
	// NVM-DRAM testbed, DDR4 DRAM on the MCDRAM-DRAM testbed).
	TierSlow Tier = 1

	// NumTiers is the number of memory tiers in the system.
	NumTiers = 2
)

func (t Tier) String() string {
	switch t {
	case TierFast:
		return "fast"
	case TierSlow:
		return "slow"
	}
	return fmt.Sprintf("Tier(%d)", uint8(t))
}

// Other returns the opposite tier.
func (t Tier) Other() Tier { return 1 - t }

// TierParams describes one memory device.
type TierParams struct {
	// Name is a human-readable device name ("DDR4", "OptaneNVM", ...).
	Name string
	// CapacityBytes is the usable capacity of the tier.
	CapacityBytes uint64
	// LoadLatencyNS is the load-to-use latency of a random 64 B read.
	LoadLatencyNS float64
	// StoreLatencyNS is the effective latency charged per store miss
	// (stores are mostly buffered, so this is small).
	StoreLatencyNS float64
	// ReadBWGBs and WriteBWGBs are device-level aggregate bandwidths in
	// GB/s (1e9 bytes per second).
	ReadBWGBs  float64
	WriteBWGBs float64
	// AccessGrainBytes is the internal device transfer granularity. A
	// random 64 B read occupies this many bytes of device bandwidth
	// (256 B for Optane media, 64 B for DRAM). This amplification is
	// what makes random access on NVM so much worse than its headline
	// bandwidth ratio suggests and produces the up-to-10x slowdowns of
	// the paper's Figure 1a.
	AccessGrainBytes int
}

// SystemParams describes a full HMS testbed.
type SystemParams struct {
	// Name identifies the testbed ("nvm-dram", "mcdram-dram").
	Name string
	// ClockGHz converts cycles to seconds.
	ClockGHz float64
	// Threads is the number of hardware threads the workload uses.
	Threads int
	// LLCBytes, LLCWays, LineBytes parameterize the shared LLC model
	// (partitioned evenly across threads).
	LLCBytes  int
	LLCWays   int
	LineBytes int
	// L1Bytes sizes the per-thread first-level cache filter
	// (direct-mapped); accesses that hit it cost L1HitCycles and never
	// reach the LLC model.
	L1Bytes     int
	L1HitCycles float64
	// LLCHitNS is the latency of an LLC hit (after an L1 miss).
	LLCHitNS float64
	// MLP is the per-hardware-thread memory-level parallelism: the
	// average number of outstanding misses that overlap, dividing the
	// exposed miss latency.
	MLP float64
	// GangSize is how many hardware threads of the real testbed each
	// simulated worker stands for (DESIGN.md §4). All of a worker's
	// accumulated cycles — compute, cache hits, exposed miss latency —
	// are divided by GangSize when converting to time, modelling the
	// gang executing its partition in parallel. Threads x GangSize is
	// the real machine's thread count.
	GangSize int
	// PrefetchFactor scales the exposed latency of a sequential
	// (next-line) demand miss: hardware prefetchers hide most of it.
	PrefetchFactor float64
	// PrefetchDemandInterval is the fraction of sequential-stream line
	// fetches that still surface as demand LLC misses (1 in every N;
	// the rest arrive early and behave as hits). Prefetch-covered
	// lines consume memory bandwidth but are invisible to PEBS demand
	// -miss sampling — which is why streamed arrays profile as cold in
	// the paper despite their traffic. Must be >= 1; 1 disables
	// prefetching.
	PrefetchDemandInterval int
	// PageWalkNS is the cost of a TLB miss (page table walk).
	PageWalkNS float64
	// TLB4KEntries and TLB2MEntries size the per-thread TLBs for small
	// and huge mappings respectively.
	TLB4KEntries int
	TLB2MEntries int
	// Tiers holds the two memories, indexed by Tier.
	Tiers [NumTiers]TierParams
	// SharedChannels is true when both tiers share the same memory
	// channels (Optane DIMMs share channels with DRAM, §9), so their
	// traffic serializes; false when channels are independent (KNL).
	SharedChannels bool
	// DefaultTier is where unregistered allocations and the baseline
	// placement go (the large-capacity memory in both testbeds' baseline
	// configurations is chosen per experiment, so this is just the
	// initial policy default).
	DefaultTier Tier

	// Migration cost parameters (§4.4, §7.3).

	// CopySingleThreadGBs bounds a single-threaded memcpy (what mbind's
	// kernel path achieves per page).
	CopySingleThreadGBs float64
	// CopyPerThreadGBs is the per-thread bandwidth of the parallel
	// application-level copy; aggregate is capped by device bandwidths.
	CopyPerThreadGBs float64
	// SyscallNSPerPage is mbind's per-4KiB-page bookkeeping cost
	// (syscall entry, rmap walk, page (un)mapping).
	SyscallNSPerPage float64
	// TLBShootdownNS is the cost of one inter-processor TLB shootdown.
	TLBShootdownNS float64
	// RemapNSPerRegion is the fixed cost of remapping one contiguous
	// region in the ATMem migration path.
	RemapNSPerRegion float64
}

// Validate checks the parameter set for obvious inconsistencies.
func (p *SystemParams) Validate() error {
	if p.ClockGHz <= 0 {
		return fmt.Errorf("memsim: %s: ClockGHz must be positive", p.Name)
	}
	if p.Threads <= 0 {
		return fmt.Errorf("memsim: %s: Threads must be positive", p.Name)
	}
	if p.LineBytes <= 0 || p.LineBytes&(p.LineBytes-1) != 0 {
		return fmt.Errorf("memsim: %s: LineBytes must be a positive power of two", p.Name)
	}
	if p.L1Bytes < p.LineBytes {
		return fmt.Errorf("memsim: %s: L1Bytes must hold at least one line", p.Name)
	}
	if p.MLP <= 0 {
		return fmt.Errorf("memsim: %s: MLP must be positive", p.Name)
	}
	if p.GangSize <= 0 {
		return fmt.Errorf("memsim: %s: GangSize must be positive", p.Name)
	}
	if p.PrefetchFactor <= 0 || p.PrefetchFactor > 1 {
		return fmt.Errorf("memsim: %s: PrefetchFactor must be in (0,1]", p.Name)
	}
	if p.PrefetchDemandInterval < 1 {
		return fmt.Errorf("memsim: %s: PrefetchDemandInterval must be at least 1", p.Name)
	}
	for i, t := range p.Tiers {
		if t.CapacityBytes == 0 {
			return fmt.Errorf("memsim: %s: tier %d has zero capacity", p.Name, i)
		}
		if t.ReadBWGBs <= 0 || t.WriteBWGBs <= 0 {
			return fmt.Errorf("memsim: %s: tier %d has non-positive bandwidth", p.Name, i)
		}
		if t.LoadLatencyNS <= 0 {
			return fmt.Errorf("memsim: %s: tier %d has non-positive latency", p.Name, i)
		}
		if t.AccessGrainBytes < p.LineBytes {
			return fmt.Errorf("memsim: %s: tier %d grain smaller than a line", p.Name, i)
		}
	}
	return nil
}

const (
	// SmallPage is the base page size.
	SmallPage = 4 << 10
	// HugePage is the huge page size. The real testbeds back multi-GB
	// arrays with 2 MiB transparent huge pages; datasets here are
	// scaled ~1000x, so the huge page scales to 64 KiB to keep the
	// pages-per-array and TLB-reach ratios (DESIGN.md) -- this is what
	// lets the mbind engine's huge-page splintering reproduce the
	// post-migration TLB blow-up of the paper's Table 4.
	HugePage = 64 << 10

	// KiB, MiB, GiB are byte-size helpers.
	KiB = 1 << 10
	MiB = 1 << 20
	GiB = 1 << 30
)

// NVMDRAMParams returns the scaled NVM-DRAM testbed: 2nd-gen Xeon Scalable
// with Optane DC NVM (Table 1). DRAM is the fast tier; Optane is the slow,
// large tier. Capacities are scaled ~1000x with the datasets.
func NVMDRAMParams() SystemParams {
	return SystemParams{
		Name:                   "nvm-dram",
		ClockGHz:               2.4,
		Threads:                8, // each worker stands for 6 of the 48 HW threads
		LLCBytes:               512 * KiB,
		LLCWays:                8,
		LineBytes:              64,
		L1Bytes:                8 * KiB,
		L1HitCycles:            0.5,
		LLCHitNS:               5,
		MLP:                    5,
		GangSize:               6, // 8 workers x 6 = 48 HW threads
		PrefetchFactor:         0.18,
		PrefetchDemandInterval: 8,
		PageWalkNS:             60,
		TLB4KEntries:           64,
		TLB2MEntries:           16,
		Tiers: [NumTiers]TierParams{
			TierFast: {
				Name:             "DDR4-DRAM",
				CapacityBytes:    96 * MiB, // scaled from 96 GB
				LoadLatencyNS:    81,
				StoreLatencyNS:   12,
				ReadBWGBs:        104,
				WriteBWGBs:       80,
				AccessGrainBytes: 64,
			},
			TierSlow: {
				Name:             "Optane-NVM",
				CapacityBytes:    768 * MiB, // scaled from 768 GB
				LoadLatencyNS:    250,       // ~3x DRAM [25]
				StoreLatencyNS:   90,
				ReadBWGBs:        39, // [25]
				WriteBWGBs:       13,
				AccessGrainBytes: 256, // Optane media block
			},
		},
		SharedChannels:      true, // Optane shares channels with DRAM (§9)
		DefaultTier:         TierSlow,
		CopySingleThreadGBs: 8,
		CopyPerThreadGBs:    3,
		SyscallNSPerPage:    300,
		TLBShootdownNS:      4000,
		RemapNSPerRegion:    3000,
	}
}

// MCDRAMDRAMParams returns the scaled MCDRAM-DRAM testbed: Knights Landing
// with 16 GB MCDRAM in flat mode next to 96 GB DDR4 (Table 1). MCDRAM is
// the fast tier (4.4x bandwidth, slightly higher latency); DDR4 is the
// large tier. MCDRAM capacity is scaled so that the three largest datasets
// do not fit, as on the real machine (§7.2).
func MCDRAMDRAMParams() SystemParams {
	return SystemParams{
		Name:                   "mcdram-dram",
		ClockGHz:               1.1,
		Threads:                8, // each worker stands for 32 of the 256 HW threads
		LLCBytes:               256 * KiB,
		LLCWays:                8,
		LineBytes:              64,
		L1Bytes:                8 * KiB,
		L1HitCycles:            1,
		LLCHitNS:               8,
		MLP:                    2,
		GangSize:               32, // 8 workers x 32 = 256 HW threads
		PrefetchFactor:         0.22,
		PrefetchDemandInterval: 8,
		PageWalkNS:             100,
		TLB4KEntries:           192,
		TLB2MEntries:           16,
		Tiers: [NumTiers]TierParams{
			TierFast: {
				Name:             "MCDRAM",
				CapacityBytes:    8 * MiB, // scaled from 16 GB
				LoadLatencyNS:    155,     // MCDRAM latency > DDR4 on KNL
				StoreLatencyNS:   16,
				ReadBWGBs:        400, // [31]
				WriteBWGBs:       200,
				AccessGrainBytes: 64,
			},
			TierSlow: {
				Name:             "DDR4-DRAM",
				CapacityBytes:    256 * MiB, // scaled from 96 GB
				LoadLatencyNS:    130,
				StoreLatencyNS:   14,
				ReadBWGBs:        90, // [31]
				WriteBWGBs:       55,
				AccessGrainBytes: 64,
			},
		},
		SharedChannels:      false, // independent channels on KNL (§9)
		DefaultTier:         TierSlow,
		CopySingleThreadGBs: 4, // KNL single-thread copy is weak
		CopyPerThreadGBs:    3,
		SyscallNSPerPage:    800, // slow cores pay more per syscall
		TLBShootdownNS:      9000,
		RemapNSPerRegion:    6000,
	}
}
