package memsim

import (
	"math/bits"

	"atmem/internal/cache"
)

// TrafficHook observes every line of memory traffic an accessor
// generates — demand misses, prefetched stream fills, and dirty
// writebacks. slowBytes is the device bytes the event WOULD charge on
// the slow tier (its access grain for random traffic, one cache line
// for coalesced stream traffic) regardless of where the line actually
// lives, so a recorded trace stays comparable across placements: the
// fast-tier charge is always one cache line, and the slow-tier charge
// is this value. Unlike MissHook it sees the complete byte stream, not
// just the profiler-visible demand misses: prefetch-covered sequential
// fetches never surface as demand misses but still consume device
// bandwidth. It exists for hindsight measurement (the oracle placement
// policy's trace); the online profiler models real PEBS and must keep
// using MissHook.
type TrafficHook func(addr uint64, slowBytes uint64, write bool)

// MissHook observes every LLC miss an accessor takes (the event stream a
// PEBS-style profiler samples). It returns extra cycles to charge the
// accessing thread — the profiler's interrupt/capture overhead, so that
// profiling cost shows up in simulated time exactly where it would on
// hardware (§7.4).
type MissHook func(addr uint64, write bool) float64

// Accessor is the per-thread memory access path: a private LLC partition,
// split 4 KiB/2 MiB TLBs, a sequential-miss (prefetch) detector, and cycle
// and byte accounting. Kernels call Load/Store for every simulated memory
// access and Compute for ALU work.
//
// Accessors are not safe for concurrent use; each simulated thread owns
// one. Accessors do tolerate a concurrent migration retiering mapped
// pages: translation reads a seqlock-stable page-table word, cached
// translations are dropped via the system's shootdown log (drained at
// each access), and stores into a range mid-remap wait on its quiesce
// gate. Only Alloc/Free must not overlap a running phase.
type Accessor struct {
	sys   *System
	llc   *cache.Cache
	tlb4k *TLB
	tlb2m *TLB

	// syncSeen caches the last system sync word this accessor acted on,
	// always with a zero gate field: matching the live word means no
	// shootdown has been published since the last drain AND no quiesce
	// gate is installed, so the whole cross-thread protocol collapses to
	// one atomic load per Load/Store call. The low bits double as the
	// shootdown-log generation this accessor has applied.
	syncSeen uint64

	// sealed declares a phase-stability contract: no concurrent
	// migration (shootdown publish or quiesce gate) can occur until the
	// accessor is unsealed, so the access path skips even the one-load
	// sync check. The runtime seals accessors for phases that run with
	// no background placement worker; direct users leave it false and
	// get the full protocol.
	sealed bool

	// l1 is a small set-associative first-level filter; hits cost
	// almost nothing and never reach the LLC model.
	l1 *cache.Cache

	lineShift uint
	hook      MissHook
	traffic   TrafficHook

	// Same-line fast-path register: after any access to lastLine the
	// line is guaranteed L1-resident, so a repeat access can be answered
	// as an L1 hit without walking any cache structure. lastDirty
	// records whether the LLC copy has already been marked dirty, making
	// the repeated-store MarkDirty walk skippable too. The register is
	// purely an optimization: clearing it (lastValid=false) never
	// changes simulated state, only costs the L1 walk again.
	lastLine  uint64
	lastValid bool
	lastDirty bool

	// lastWb is the writeback-coalescing register: the line number of
	// the most recent dirty eviction, letting consecutive writebacks
	// share one device block. Held in the struct (not an OnEvict
	// closure) so ResetCounters can clear it between phases.
	lastWb uint64

	// cost constants in cycles, precomputed from SystemParams
	l1HitCycles        float64
	llcHitCycles       float64
	pageWalkCycles     float64
	loadMissCycles     [NumTiers]float64 // exposed latency per random miss
	storeMissCycles    [NumTiers]float64
	prefetchedCycles   [NumTiers]float64 // exposed latency per sequential miss
	grain              [NumTiers]uint64
	quiesceStallCycles float64 // charge per quiesce-gate wait

	// Cycles is the accumulated simulated time of this thread, in core
	// cycles (compute + exposed memory latency + profiling overhead).
	Cycles float64

	// Traffic counters, indexed by tier. WritebackBytes counts dirty
	// LLC evictions (asynchronous traffic: it consumes bandwidth but
	// exposes no latency).
	ReadBytes      [NumTiers]uint64
	WriteBytes     [NumTiers]uint64
	WritebackBytes [NumTiers]uint64
	Writebacks     uint64

	// Event counters. PrefetchedLines counts sequential line fetches
	// covered by the prefetcher: they consume bandwidth but are not
	// demand LLC misses and are invisible to the profiler.
	Accesses        uint64
	L1Hits          uint64
	LLCHits         uint64
	LLCMisses       uint64
	PrefetchedLines uint64
	TLBMisses       uint64

	// Concurrent-migration counters: translation retries against a
	// mid-remap page, stores that waited out a quiesce gate, and
	// shootdown-log ranges this accessor has applied.
	SeqlockRetries    uint64
	QuiesceStalls     uint64
	ShootdownsApplied uint64
}

// NewAccessor creates the access path for one simulated thread. Each
// worker models its gang's view of the shared LLC with a private replica
// of the full capacity: graph properties are read-shared by every thread
// on the real machine, so one shared copy serves all gangs — a replica
// per worker approximates that without cross-thread locking (private
// streaming data does not benefit because it is inserted at LRU).
func (s *System) NewAccessor() *Accessor {
	p := &s.P
	a := &Accessor{
		sys:            s,
		llc:            cache.New(p.LLCBytes, p.LineBytes, p.LLCWays),
		tlb4k:          NewTLB(p.TLB4KEntries, smallShift),
		tlb2m:          NewTLB(p.TLB2MEntries, hugeShift),
		l1:             cache.New(p.L1Bytes, p.LineBytes, 4),
		lineShift:      uint(bits.TrailingZeros64(uint64(p.LineBytes))),
		l1HitCycles:    p.L1HitCycles,
		llcHitCycles:   p.LLCHitNS * p.ClockGHz,
		pageWalkCycles: p.PageWalkNS * p.ClockGHz,
		// A store that catches a region mid-remap stalls for roughly one
		// remote-invalidation round trip, the same scale as a shootdown.
		quiesceStallCycles: p.TLBShootdownNS * p.ClockGHz,
	}
	for t := Tier(0); t < NumTiers; t++ {
		tp := p.Tiers[t]
		a.loadMissCycles[t] = tp.LoadLatencyNS * p.ClockGHz / p.MLP
		a.storeMissCycles[t] = tp.StoreLatencyNS * p.ClockGHz / p.MLP
		a.prefetchedCycles[t] = a.loadMissCycles[t] * p.PrefetchFactor
		a.grain[t] = uint64(tp.AccessGrainBytes)
	}
	// Dirty LLC evictions write their line back to whichever memory
	// backs it. Random writebacks pay the device grain (the dominant
	// cost of scatter-write kernels on Optane media); consecutive
	// lines coalesce into one device block, as sequentially-written
	// buffers evict in order.
	a.lastWb = ^uint64(0)
	a.llc.OnEvict = func(line uint64, dirty bool) {
		if !dirty {
			return
		}
		t, ok := s.pt.TierOf(line << a.lineShift)
		if !ok {
			return // freed mapping; writeback dropped
		}
		bytes := a.grain[t]
		slowBytes := a.grain[TierSlow]
		if line == a.lastWb+1 {
			bytes = uint64(1) << a.lineShift
			slowBytes = bytes
		}
		a.lastWb = line
		a.WritebackBytes[t] += bytes
		a.Writebacks++
		if a.traffic != nil {
			a.traffic(line<<a.lineShift, slowBytes, true)
		}
	}
	return a
}

// SetMissHook installs (or clears, with nil) the profiler hook.
func (a *Accessor) SetMissHook(h MissHook) { a.hook = h }

// SetTrafficHook installs (or clears, with nil) the full-traffic
// observer. The hook is called on this accessor's goroutine for every
// line fetch and writeback; installing one per accessor with private
// accumulation buffers needs no synchronization.
func (a *Accessor) SetTrafficHook(h TrafficHook) { a.traffic = h }

// Compute charges cycles of ALU/control work to this thread.
func (a *Accessor) Compute(cycles float64) { a.Cycles += cycles }

// Load simulates a read of size bytes at addr.
func (a *Accessor) Load(addr uint64, size uint32) { a.access(addr, size, false) }

// Store simulates a write of size bytes at addr.
func (a *Accessor) Store(addr uint64, size uint32) { a.access(addr, size, true) }

// LoadRange simulates count back-to-back reads of elemSize bytes each,
// starting at addr — exactly equivalent (same cycles, counters, cache,
// TLB, and writeback state) to count individual Load calls at stride
// elemSize, but charged analytically: one pipeline transition per cache
// line plus a constant-time credit for the same-line repeats.
func (a *Accessor) LoadRange(addr uint64, elemSize uint32, count int) {
	a.accessRange(addr, elemSize, count, false)
}

// StoreRange is LoadRange for writes.
func (a *Accessor) StoreRange(addr uint64, elemSize uint32, count int) {
	a.accessRange(addr, elemSize, count, true)
}

// syncCheck is the per-call cross-thread protocol: one atomic load of
// the system sync word covers both the shootdown-log drain (any
// generation advance since the last drain) and the store quiesce barrier
// (any installed gate). The fast path — word unchanged, gate field
// zero — is the overwhelmingly common case and branches straight back to
// the caller; syncSlow handles the rest.
func (a *Accessor) syncCheck(addr uint64, write bool) {
	if w := a.sys.sync.Load(); w != a.syncSeen {
		a.syncSlow(w, addr, write)
	}
}

// syncSlow drains newly published shootdowns and, for stores, waits out
// any quiesce gate covering addr. It records syncSeen with a zero gate
// field, so every access while gates are installed re-enters this slow
// path — exactly the window in which stores must keep checking.
func (a *Accessor) syncSlow(w, addr uint64, write bool) {
	if gen := w & syncGenMask; gen != a.syncSeen {
		a.applyShootdowns()
	}
	if write && w>>syncGenBits != 0 {
		if waited := a.sys.quiesceWait(addr); waited > 0 {
			a.QuiesceStalls += uint64(waited)
			a.Cycles += float64(waited) * a.quiesceStallCycles
			// The gate lifted because a remap committed; pick up its
			// shootdown before translating.
			a.applyShootdowns()
		}
	}
}

// applyShootdowns applies every shootdown-log range published since this
// accessor last drained: cached translations and cache lines of each
// range are dropped, exactly as the stop-the-world invalidation broadcast
// would have done at the phase barrier.
func (a *Accessor) applyShootdowns() {
	ranges, gen := a.sys.shootdownsSince(a.syncSeen & syncGenMask)
	for _, r := range ranges {
		a.InvalidateTLBRange(r.Base, r.Size)
		a.InvalidateCacheRange(r.Base, r.Size)
		a.ShootdownsApplied++
	}
	a.syncSeen = gen
}

// DrainShootdowns applies pending shootdowns immediately — the runtime
// calls it at phase boundaries so an idle thread does not carry stale
// translations into the next phase.
func (a *Accessor) DrainShootdowns() {
	if a.sys.sync.Load()&syncGenMask != a.syncSeen&syncGenMask {
		a.applyShootdowns()
	}
}

// SetSealed toggles the phase-stability contract: while sealed, the
// accessor trusts that no shootdown will be published and no quiesce
// gate installed, and skips the per-access sync check entirely — the
// cross-thread protocol costs literally zero loads. Sealing drains any
// already-pending shootdowns first, so the accessor enters the sealed
// window with clean translations. The caller (the runtime's RunPhase)
// guarantees stability by only sealing phases that run with no
// background placement worker; sealing during concurrent migration
// would let accessors run on stale translations.
func (a *Accessor) SetSealed(sealed bool) {
	if sealed {
		a.DrainShootdowns()
	}
	a.sealed = sealed
}

func (a *Accessor) access(addr uint64, size uint32, write bool) {
	if !a.sealed {
		a.syncCheck(addr, write)
	}
	a.Accesses++
	line := addr >> a.lineShift
	lastTouched := (addr + uint64(size) - 1) >> a.lineShift
	for {
		a.accessLine(line, write)
		if line >= lastTouched {
			break
		}
		line++
	}
}

// accessRange is the bulk fast path behind LoadRange/StoreRange. The
// element-at-a-time reference touches a non-decreasing line sequence in
// which every touch of a line after its first is a guaranteed L1 hit
// (the first touch leaves the line L1-resident and no other line
// intervenes), so per line it suffices to run the real pipeline once
// and credit the remaining touches as L1 hits in O(1).
func (a *Accessor) accessRange(addr uint64, elemSize uint32, count int, write bool) {
	if count <= 0 {
		return
	}
	// One sync check covers the whole range: the reference path checks
	// per element, but all checks after the first are no-ops unless a
	// migration intervenes mid-range, which the unsealed contract already
	// tolerates at the next call (stale translations are bounded by one
	// bulk call, same as one store's gate window).
	if !a.sealed {
		a.syncCheck(addr, write)
	}
	es := uint64(elemSize)
	if es == 0 {
		// Degenerate zero-size accesses still touch one line each;
		// keep the reference path.
		for i := 0; i < count; i++ {
			a.access(addr, 0, write)
		}
		return
	}
	a.Accesses += uint64(count)
	lineBytes := uint64(1) << a.lineShift
	first := addr >> a.lineShift
	last := (addr + es*uint64(count) - 1) >> a.lineShift
	// f and l index the first and last element whose byte span
	// intersects the current line; both advance with division-free
	// Bresenham steps (q/r precomputed once). rem is the offset of the
	// line's final byte within element l.
	q, r := lineBytes/es, lineBytes%es
	f := uint64(0)
	l := (first<<a.lineShift + lineBytes - addr - 1) / es
	rem := (first<<a.lineShift + lineBytes - addr - 1) % es
	for line := first; ; line++ {
		cl := l
		if cl > uint64(count-1) {
			cl = uint64(count - 1)
		}
		a.accessLine(line, write)
		if extra := cl - f; extra > 0 {
			a.L1Hits += extra
			a.Cycles += float64(extra) * a.l1HitCycles
			a.l1.AddHits(extra)
		}
		if line == last {
			break
		}
		// Element l straddles into the next line iff it has bytes past
		// this line's final byte (rem < es-1).
		if rem < es-1 {
			f = l
		} else {
			f = l + 1
		}
		l += q
		rem += r
		if rem >= es {
			rem -= es
			l++
		}
	}
}

func (a *Accessor) accessLine(line uint64, write bool) {
	// Same-line register: a repeat of the previous access is an L1 hit
	// by construction and needs no cache walk at all.
	if a.lastValid && line == a.lastLine {
		a.L1Hits++
		a.Cycles += a.l1HitCycles
		a.l1.AddHits(1)
		if write && !a.lastDirty {
			a.llc.MarkDirty(line)
			a.lastDirty = true
		}
		return
	}
	a.lastLine, a.lastValid, a.lastDirty = line, true, write

	// L1 filter: a hit is the common case for sequential and
	// register-blocked access and costs almost nothing. Stores dirty
	// the LLC copy of the line (caches are modelled inclusive). The
	// fused probe also answers the stream-detection question ("is the
	// predecessor line resident?") in the same call on a miss.
	l1Hit, sequential := a.l1.AccessSeq(line)
	if l1Hit {
		a.L1Hits++
		a.Cycles += a.l1HitCycles
		if write {
			a.llc.MarkDirty(line)
		}
		return
	}
	// sequential: an active forward stream fetched line-1 only a
	// handful of accesses ago, so its L1 residency is robust to
	// arbitrarily interleaved parallel-array streams, while a random
	// miss rarely lands one line past recently-touched data. The LLC
	// uses it for stream-resistant insertion and the cost model applies
	// prefetch coverage below.
	// Stores go through the fused dirty probe: one set walk both looks
	// the line up (or installs it) and flags the entry dirty, replacing
	// the AccessHint + MarkDirty pair with identical state and counters.
	var llcHit bool
	if write {
		llcHit = a.llc.AccessDirty(line, sequential)
	} else {
		llcHit = a.llc.AccessHint(line, sequential)
	}
	if llcHit {
		a.LLCHits++
		a.Cycles += a.llcHitCycles
		return
	}
	addr := line << a.lineShift
	pi, retries := a.sys.pt.TranslateStable(addr)
	if retries > 0 {
		// The page committed a remap while we spun; our cached
		// translation (if any) is stale. Apply the shootdown eagerly
		// rather than waiting for the log to reach us.
		a.SeqlockRetries += uint64(retries)
		tlb := a.tlb4k
		if pi.Huge {
			tlb = a.tlb2m
		}
		tlb.InvalidateRange(addr, 1)
	}

	// Translation: consult the TLB matching the mapping's page size.
	tlb := a.tlb4k
	if pi.Huge {
		tlb = a.tlb2m
	}
	if !tlb.Lookup(addr) {
		a.TLBMisses++
		a.Cycles += a.pageWalkCycles
	}

	t := pi.Tier

	lineBytes := uint64(1) << a.lineShift
	grainBytes := a.grain[t]
	demand := true
	if sequential {
		// Consecutive lines of a stream share the device access grain,
		// and the prefetcher covers most of them: only ~1/N of line
		// fetches surface as demand misses the profiler can observe.
		// The choice hashes the line number so it is deterministic yet
		// decorrelated across interleaved streams (a shared counter
		// phase-locks onto one stream and biases the sampler).
		grainBytes = lineBytes
		demand = mix64(line)%uint64(a.sys.P.PrefetchDemandInterval) == 0
	}
	// Degraded device regions (injected wear faults) multiply the
	// exposed miss latency. The healthy-path cost is one atomic nil
	// check inside DegradeFactor, and only misses pay it.
	deg := a.sys.DegradeFactor(addr)
	if write {
		if sequential {
			a.Cycles += a.storeMissCycles[t] * a.sys.P.PrefetchFactor * deg
		} else {
			a.Cycles += a.storeMissCycles[t] * deg
		}
		a.WriteBytes[t] += grainBytes
	} else {
		if sequential {
			a.Cycles += a.prefetchedCycles[t] * deg
		} else {
			a.Cycles += a.loadMissCycles[t] * deg
		}
		a.ReadBytes[t] += grainBytes
	}
	if a.traffic != nil {
		slowBytes := a.grain[TierSlow]
		if sequential {
			slowBytes = lineBytes
		}
		a.traffic(addr, slowBytes, write)
	}
	if !demand {
		a.PrefetchedLines++
		return
	}
	a.LLCMisses++
	if a.hook != nil {
		a.Cycles += a.hook(addr, write)
	}
}

// mix64 is a SplitMix64-style finalizer used to decorrelate per-line
// decisions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// InvalidateTLBRange models a TLB shootdown over [base, base+size) for
// this thread.
func (a *Accessor) InvalidateTLBRange(base, size uint64) {
	a.tlb4k.InvalidateRange(base, size)
	a.tlb2m.InvalidateRange(base, size)
}

// InvalidateCacheRange drops cached lines in the byte range
// [base, base+size).
func (a *Accessor) InvalidateCacheRange(base, size uint64) {
	if size == 0 {
		return
	}
	lo := base >> a.lineShift
	hi := (base+size-1)>>a.lineShift + 1
	a.llc.InvalidateRange(lo, hi)
	a.l1.InvalidateRange(lo, hi)
	a.lastValid = false // the register's line may be among the dropped
}

// ResetCounters zeroes time and traffic counters while keeping cache and
// TLB state warm — used between a warm-up and a measured phase.
func (a *Accessor) ResetCounters() {
	a.Cycles = 0
	a.ReadBytes = [NumTiers]uint64{}
	a.WriteBytes = [NumTiers]uint64{}
	a.WritebackBytes = [NumTiers]uint64{}
	a.Writebacks = 0
	a.Accesses = 0
	a.L1Hits = 0
	a.LLCHits = 0
	a.LLCMisses = 0
	a.PrefetchedLines = 0
	a.TLBMisses = 0
	a.SeqlockRetries = 0
	a.QuiesceStalls = 0
	a.ShootdownsApplied = 0
	// A new phase starts a new writeback stream: do not let the last
	// phase's final eviction coalesce across the barrier.
	a.lastWb = ^uint64(0)
}

// PhaseStats aggregates the execution of one phase (e.g. one benchmark
// iteration) across all threads and converts it into simulated wall time.
type PhaseStats struct {
	// WallSeconds is the simulated elapsed time of the phase.
	WallSeconds float64
	// LatencySeconds is the latency-path component (slowest thread).
	LatencySeconds float64
	// BandwidthSeconds is the traffic-path component.
	BandwidthSeconds float64
	// ReadBytes / WriteBytes / WritebackBytes per tier, summed over
	// threads.
	ReadBytes       [NumTiers]uint64
	WriteBytes      [NumTiers]uint64
	WritebackBytes  [NumTiers]uint64
	Accesses        uint64
	L1Hits          uint64
	LLCHits         uint64
	LLCMisses       uint64
	PrefetchedLines uint64
	TLBMisses       uint64

	// Concurrent-migration totals (always zero under stop-the-world
	// placement).
	SeqlockRetries    uint64
	QuiesceStalls     uint64
	ShootdownsApplied uint64
}

// ReducePhase folds per-thread accessor state into PhaseStats. Simulated
// wall time is the maximum of the slowest thread's cycle time and the
// per-tier bandwidth time; when the tiers share memory channels (Optane)
// their transfer times serialize, otherwise they overlap (KNL).
func (s *System) ReducePhase(accs []*Accessor) PhaseStats {
	var ps PhaseStats
	var maxCycles float64
	for _, a := range accs {
		if a.Cycles > maxCycles {
			maxCycles = a.Cycles
		}
		for t := 0; t < NumTiers; t++ {
			ps.ReadBytes[t] += a.ReadBytes[t]
			ps.WriteBytes[t] += a.WriteBytes[t]
			ps.WritebackBytes[t] += a.WritebackBytes[t]
		}
		ps.Accesses += a.Accesses
		ps.L1Hits += a.L1Hits
		ps.LLCHits += a.LLCHits
		ps.LLCMisses += a.LLCMisses
		ps.PrefetchedLines += a.PrefetchedLines
		ps.TLBMisses += a.TLBMisses
		ps.SeqlockRetries += a.SeqlockRetries
		ps.QuiesceStalls += a.QuiesceStalls
		ps.ShootdownsApplied += a.ShootdownsApplied
	}
	ps.LatencySeconds = maxCycles / (s.P.ClockGHz * 1e9 * float64(s.P.GangSize))

	var tierSeconds [NumTiers]float64
	for t := Tier(0); t < NumTiers; t++ {
		tp := s.P.Tiers[t]
		tierSeconds[t] = float64(ps.ReadBytes[t])/(tp.ReadBWGBs*1e9) +
			float64(ps.WriteBytes[t]+ps.WritebackBytes[t])/(tp.WriteBWGBs*1e9)
	}
	if s.P.SharedChannels {
		ps.BandwidthSeconds = tierSeconds[TierFast] + tierSeconds[TierSlow]
	} else {
		ps.BandwidthSeconds = tierSeconds[TierFast]
		if tierSeconds[TierSlow] > ps.BandwidthSeconds {
			ps.BandwidthSeconds = tierSeconds[TierSlow]
		}
	}
	ps.WallSeconds = ps.LatencySeconds
	if ps.BandwidthSeconds > ps.WallSeconds {
		ps.WallSeconds = ps.BandwidthSeconds
	}
	return ps
}
