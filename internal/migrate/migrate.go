// Package migrate implements the two data-migration mechanisms the paper
// compares (§4.4, §7.3):
//
//   - the ATMem multi-stage multi-threaded engine: copy the source region
//     into a staging buffer on the target memory with many threads, remap
//     the virtual pages of the region onto (empty) target-memory pages,
//     then copy the staged values back — two copies, both at device
//     bandwidth, with virtual addresses intact and huge-page mappings
//     preserved (Figure 4);
//
//   - an mbind-style system-service baseline: single-threaded, page-by-
//     page, paying per-page syscall/bookkeeping overhead and TLB
//     shootdowns, and splintering transparent huge pages — the behaviour
//     that inflates post-migration TLB misses in Table 4.
//
// Both engines operate on the memsim.System page table and return the
// modelled migration time; they do not touch simulated object contents
// (virtual addresses never change in either mechanism, so the Go slices
// backing objects are unaffected — asserted by tests).
package migrate

import (
	"atmem/internal/memsim"
)

// Region is one contiguous virtual byte range to migrate.
type Region struct {
	Base uint64
	Size uint64
}

// Stats reports one migration run.
type Stats struct {
	// Engine names the mechanism used.
	Engine string
	// Seconds is the modelled migration time.
	Seconds float64
	// BytesRequested is the total size of the input regions.
	BytesRequested uint64
	// BytesMoved is how much actually changed tier.
	BytesMoved uint64
	// Regions is the number of contiguous regions processed.
	Regions int
	// PagesMoved counts 4 KiB pages that changed tier.
	PagesMoved int
	// HugePagesSplit counts 2 MiB mappings splintered into 4 KiB.
	HugePagesSplit int
	// TLBShootdowns counts modelled inter-processor shootdowns.
	TLBShootdowns int
}

// Engine migrates regions to the target tier on a system.
type Engine interface {
	// Name identifies the engine ("atmem" or "mbind").
	Name() string
	// Migrate moves every page of the given regions to the target
	// tier and returns timing and accounting. Regions are page-aligned
	// outward before moving. Migration is all-or-nothing per region:
	// a capacity failure aborts with the already-migrated regions in
	// place and an error describing the failure.
	Migrate(sys *memsim.System, regions []Region, target memsim.Tier) (Stats, error)
}

// alignRegion expands r outward to 4 KiB page boundaries.
func alignRegion(r Region) Region {
	lo := r.Base &^ (memsim.SmallPage - 1)
	hi := memsim.RoundUp(r.Base+r.Size, memsim.SmallPage)
	return Region{Base: lo, Size: hi - lo}
}

// movingBytes returns how many bytes of the (aligned) region are not yet
// on the target tier.
func movingBytes(sys *memsim.System, r Region, target memsim.Tier) uint64 {
	onTier := sys.BytesOnTier(r.Base, r.Size)
	var moving uint64
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if t != target {
			moving += onTier[t]
		}
	}
	return moving
}

// copySeconds models a bulk copy of bytes from tier src to tier dst using
// the given number of threads. The copy is bounded by the source read
// bandwidth, the destination write bandwidth, and the threads' aggregate
// copy capability; on shared-channel systems source reads and destination
// writes serialize on the bus instead of overlapping.
func copySeconds(p *memsim.SystemParams, bytes uint64, src, dst memsim.Tier, threads int) float64 {
	if bytes == 0 {
		return 0
	}
	threadBW := float64(threads) * p.CopyPerThreadGBs * 1e9
	readBW := p.Tiers[src].ReadBWGBs * 1e9
	writeBW := p.Tiers[dst].WriteBWGBs * 1e9
	b := float64(bytes)
	if p.SharedChannels && src != dst {
		// Reads and writes contend for the same channels: total bus
		// occupancy is the sum of both transfers.
		busSeconds := b/readBW + b/writeBW
		threadSeconds := b / threadBW
		if threadSeconds > busSeconds {
			return threadSeconds
		}
		return busSeconds
	}
	bw := readBW
	if writeBW < bw {
		bw = writeBW
	}
	if threadBW < bw {
		bw = threadBW
	}
	return b / bw
}
