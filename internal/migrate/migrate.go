// Package migrate implements the two data-migration mechanisms the paper
// compares (§4.4, §7.3):
//
//   - the ATMem multi-stage multi-threaded engine: copy the source region
//     into a staging buffer on the target memory with many threads, remap
//     the virtual pages of the region onto (empty) target-memory pages,
//     then copy the staged values back — two copies, both at device
//     bandwidth, with virtual addresses intact and huge-page mappings
//     preserved (Figure 4);
//
//   - an mbind-style system-service baseline: single-threaded, page-by-
//     page, paying per-page syscall/bookkeeping overhead and TLB
//     shootdowns, and splintering transparent huge pages — the behaviour
//     that inflates post-migration TLB misses in Table 4.
//
// Both engines operate on the memsim.System page table and return the
// modelled migration time; they do not touch simulated object contents
// (virtual addresses never change in either mechanism, so the Go slices
// backing objects are unaffected — asserted by tests).
package migrate

import (
	"context"
	"errors"
	"fmt"

	"atmem/internal/memsim"
)

// ErrStaging marks a staging-buffer reservation failure during the ATMem
// engine's multi-stage copy. It is wrapped alongside the underlying
// cause, so errors.Is distinguishes both the stage that failed
// (ErrStaging) and why (e.g. memsim.ErrNoCapacity).
var ErrStaging = errors.New("migrate: staging reservation failed")

// ErrRollback marks an unrecoverable failure while unwinding a partially
// remapped region. It is the only per-region condition Migrate surfaces
// as an error rather than a skipped outcome: a failed rollback means the
// system may be inconsistent and the caller must not continue.
var ErrRollback = errors.New("migrate: rollback failed")

// Region is one contiguous virtual byte range to migrate.
type Region struct {
	Base uint64
	Size uint64
}

// RetryPolicy parameterizes the per-region degradation ladder the
// engines (and the runtime's emergency-demotion path) walk when a
// migration attempt fails. The zero value reproduces each engine's
// historical behaviour: the ATMem engine halves its staging buffer down
// to one small page with no attempt cap, and the mbind engine gives a
// region one syscall-style retry (two attempts) before skipping it.
type RetryPolicy struct {
	// MaxAttempts bounds attempts per region; 0 means the engine
	// default (unbounded for atmem — the staging floor terminates the
	// ladder — and 2 for mbind).
	MaxAttempts int
	// MinStaging is the floor the ATMem engine halves its staging
	// buffer down to; 0 means one small page. Rounded up to a page.
	MinStaging uint64
}

// Exhausted reports whether the ladder must stop after the given number
// of attempts, given the engine's default cap.
func (rp RetryPolicy) Exhausted(attempts, engineDefault int) bool {
	limit := rp.MaxAttempts
	if limit == 0 {
		limit = engineDefault
	}
	return limit > 0 && attempts >= limit
}

// NextStaging returns the next rung down the staging ladder, or false
// when the current size has reached the floor.
func (rp RetryPolicy) NextStaging(stg uint64) (uint64, bool) {
	floor := memsim.RoundUp(rp.MinStaging, memsim.SmallPage)
	if floor == 0 {
		floor = memsim.SmallPage
	}
	if stg <= floor {
		return 0, false
	}
	next := memsim.RoundUp(stg/2, memsim.SmallPage)
	if next < floor {
		next = floor
	}
	return next, true
}

// Outcome classifies how one region fared under the transactional
// migration protocol.
type Outcome int

const (
	// OutcomeMigrated: the region moved (or already resided) on the
	// target tier on the first attempt.
	OutcomeMigrated Outcome = iota
	// OutcomeRetried: at least one attempt failed and was rolled back,
	// but a retry further down the degradation ladder succeeded.
	OutcomeRetried
	// OutcomeSkipped: every rung of the ladder failed; the region was
	// rolled back to its pre-migration placement and left behind.
	OutcomeSkipped
)

func (o Outcome) String() string {
	switch o {
	case OutcomeMigrated:
		return "migrated"
	case OutcomeRetried:
		return "retried"
	case OutcomeSkipped:
		return "skipped"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// RegionOutcome reports the fate of one input region.
type RegionOutcome struct {
	// Region is the page-aligned region as migrated.
	Region Region
	// Outcome classifies the result.
	Outcome Outcome
	// Attempts counts migration attempts (1 = succeeded first try).
	Attempts int
	// Err is the last failure for skipped regions, nil otherwise.
	Err error
}

// Stats reports one migration run.
type Stats struct {
	// Engine names the mechanism used.
	Engine string
	// Seconds is the modelled migration time.
	Seconds float64
	// BytesRequested is the total size of the input regions.
	BytesRequested uint64
	// BytesMoved is how much actually changed tier.
	BytesMoved uint64
	// Regions is the number of contiguous regions processed.
	Regions int
	// PagesMoved counts 4 KiB pages that changed tier.
	PagesMoved int
	// HugePagesSplit counts 2 MiB mappings splintered into 4 KiB.
	HugePagesSplit int
	// TLBShootdowns counts modelled inter-processor shootdowns.
	TLBShootdowns int
	// RegionsMigrated, RegionsRetried, and RegionsSkipped classify the
	// per-region outcomes of the transactional protocol; they sum to
	// Regions.
	RegionsMigrated int
	RegionsRetried  int
	RegionsSkipped  int
	// Outcomes records each region's fate in input order.
	Outcomes []RegionOutcome
	// Moved lists the page ranges whose remap committed — exactly the
	// ranges whose stale TLB and cache entries the caller must
	// invalidate. Rolled-back and skipped regions do not appear.
	Moved []Region
}

// recordOutcome appends out and maintains the per-outcome counters.
func (st *Stats) recordOutcome(out RegionOutcome) {
	st.Outcomes = append(st.Outcomes, out)
	switch out.Outcome {
	case OutcomeRetried:
		st.RegionsRetried++
	case OutcomeSkipped:
		st.RegionsSkipped++
	default:
		st.RegionsMigrated++
	}
}

// EventKind classifies one migration telemetry event.
type EventKind string

const (
	// EventAttempt fires at the start of each per-region migration
	// attempt (one per degradation-ladder rung).
	EventAttempt EventKind = "attempt"
	// EventRollback fires after a failed attempt has been unwound: the
	// region is back on its pre-attempt placement.
	EventRollback EventKind = "rollback"
	// EventMigrated fires when a region commits on the first attempt
	// (or was already resident on the target tier).
	EventMigrated EventKind = "migrated"
	// EventRetried fires when a region commits after walking the
	// degradation ladder (attempts > 1).
	EventRetried EventKind = "retried"
	// EventSkipped fires when every rung failed and the region stays on
	// its original tier.
	EventSkipped EventKind = "skipped"
)

// Event is one per-region migration telemetry event. Seconds is the
// engine's modelled elapsed migration time at emission, which lets an
// observer place the event on the simulated clock inside the Optimize
// window. Terminal kinds (migrated/retried/skipped) arrive exactly once
// per region and partition the regions the same way the Stats
// RegionsMigrated/Retried/Skipped counters do.
type Event struct {
	// Kind classifies the event.
	Kind EventKind
	// Region is the page-aligned region concerned.
	Region Region
	// Attempt is the 1-based attempt number (0 for the already-resident
	// fast path, which never runs an attempt).
	Attempt int
	// StagingBytes is the staging-buffer size of the attempt (ATMem
	// engine only; 0 for mbind).
	StagingBytes uint64
	// Target is the tier the region was being migrated toward, which
	// distinguishes demotion events from promotion events in a
	// mixed-direction schedule.
	Target memsim.Tier
	// Seconds is the engine's modelled elapsed time at emission.
	Seconds float64
	// Err carries the failure of rollback/skipped events.
	Err error
}

// EventSink observes migration events. Sinks are called synchronously
// from the (single-threaded) migration path; a nil sink disables
// emission at the cost of one pointer test.
type EventSink func(Event)

// Engine migrates regions to the target tier on a system.
type Engine interface {
	// Name identifies the engine ("atmem" or "mbind").
	Name() string
	// SetEventSink installs (or clears, with nil) the per-region event
	// observer for subsequent Migrate calls.
	SetEventSink(EventSink)
	// Migrate moves every page of the given regions to the target tier
	// and returns timing and accounting. Regions are page-aligned
	// outward before moving. Migration is transactional per region: a
	// mid-region failure rolls the region back to its pre-migration
	// placement, walks the engine's degradation ladder (retry with a
	// smaller staging buffer, then skip), and continues with the rest
	// of the plan — recoverable faults are reported as per-region
	// Outcomes, not as an error. Cancelling ctx stops the plan at the
	// next region (or staging-slice) boundary: a region caught mid-copy
	// rolls back via the same transaction, and every region not
	// completed reports OutcomeSkipped with the context's error.
	// Migrate returns an error only for unrecoverable conditions (a
	// failed rollback, wrapping ErrRollback), after which the system
	// must be considered inconsistent.
	Migrate(ctx context.Context, sys *memsim.System, regions []Region, target memsim.Tier) (Stats, error)
}

// Schedule is a mixed-direction migration plan for one governed epoch:
// demotions move to the slow tier first, so the fast-tier capacity they
// reclaim funds the promotions that follow.
type Schedule struct {
	// Demotions are migrated to memsim.TierSlow, in order.
	Demotions []Region
	// Promotions are migrated to memsim.TierFast, in order, after every
	// demotion has run.
	Promotions []Region
}

// Empty reports whether the schedule moves nothing.
func (s *Schedule) Empty() bool {
	return len(s.Demotions) == 0 && len(s.Promotions) == 0
}

// ScheduleResult reports one RunSchedule: the per-direction stats plus a
// merged view equivalent to what a single Migrate call would report.
type ScheduleResult struct {
	// Demotions and Promotions are the per-pass stats. Their Seconds and
	// Moved/Outcomes are pass-local; events emitted during the promotion
	// pass already carry schedule-relative Seconds.
	Demotions  Stats
	Promotions Stats
	// Merged combines both passes: summed counters, concatenated
	// Outcomes and Moved (demotions first), total Seconds.
	Merged Stats
}

// RunSchedule executes a mixed-direction schedule on one engine:
// demotion pass to the slow tier, then promotion pass to the fast tier.
// Events from both passes flow to sink on a single schedule-relative
// time axis (promotion-pass events are offset by the demotion pass's
// elapsed seconds); each event's Target tier tells the passes apart. The
// engine's sink is restored to nil afterwards. An unrecoverable engine
// error aborts the schedule (a failed demotion pass skips promotions
// entirely), with the partial result still populated. Cancelling ctx
// skips the remainder of both passes (see Engine.Migrate).
func RunSchedule(ctx context.Context, e Engine, sys *memsim.System, sched Schedule, sink EventSink) (ScheduleResult, error) {
	res := ScheduleResult{
		Demotions:  Stats{Engine: e.Name()},
		Promotions: Stats{Engine: e.Name()},
	}
	defer e.SetEventSink(nil)

	var err error
	if len(sched.Demotions) > 0 {
		e.SetEventSink(sink)
		res.Demotions, err = e.Migrate(ctx, sys, sched.Demotions, memsim.TierSlow)
	}
	if err == nil && len(sched.Promotions) > 0 {
		offset := res.Demotions.Seconds
		if sink != nil && offset > 0 {
			e.SetEventSink(func(ev Event) {
				ev.Seconds += offset
				sink(ev)
			})
		} else {
			e.SetEventSink(sink)
		}
		res.Promotions, err = e.Migrate(ctx, sys, sched.Promotions, memsim.TierFast)
	}
	res.Merged = mergeStats(e.Name(), res.Demotions, res.Promotions)
	return res, err
}

// mergeStats combines the demotion and promotion pass stats.
func mergeStats(engine string, dem, pro Stats) Stats {
	m := Stats{
		Engine:          engine,
		Seconds:         dem.Seconds + pro.Seconds,
		BytesRequested:  dem.BytesRequested + pro.BytesRequested,
		BytesMoved:      dem.BytesMoved + pro.BytesMoved,
		Regions:         dem.Regions + pro.Regions,
		PagesMoved:      dem.PagesMoved + pro.PagesMoved,
		HugePagesSplit:  dem.HugePagesSplit + pro.HugePagesSplit,
		TLBShootdowns:   dem.TLBShootdowns + pro.TLBShootdowns,
		RegionsMigrated: dem.RegionsMigrated + pro.RegionsMigrated,
		RegionsRetried:  dem.RegionsRetried + pro.RegionsRetried,
		RegionsSkipped:  dem.RegionsSkipped + pro.RegionsSkipped,
	}
	m.Outcomes = append(append([]RegionOutcome(nil), dem.Outcomes...), pro.Outcomes...)
	m.Moved = append(append([]Region(nil), dem.Moved...), pro.Moved...)
	return m
}

// alignRegion expands r outward to 4 KiB page boundaries.
func alignRegion(r Region) Region {
	lo := r.Base &^ (memsim.SmallPage - 1)
	hi := memsim.RoundUp(r.Base+r.Size, memsim.SmallPage)
	return Region{Base: lo, Size: hi - lo}
}

// movingBytes returns how many bytes of the (aligned) region are not yet
// on the target tier.
func movingBytes(sys *memsim.System, r Region, target memsim.Tier) uint64 {
	onTier := sys.BytesOnTier(r.Base, r.Size)
	var moving uint64
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if t != target {
			moving += onTier[t]
		}
	}
	return moving
}

// copySeconds models a bulk copy of bytes from tier src to tier dst using
// the given number of threads. The copy is bounded by the source read
// bandwidth, the destination write bandwidth, and the threads' aggregate
// copy capability; on shared-channel systems source reads and destination
// writes serialize on the bus instead of overlapping.
func copySeconds(p *memsim.SystemParams, bytes uint64, src, dst memsim.Tier, threads int) float64 {
	if bytes == 0 {
		return 0
	}
	threadBW := float64(threads) * p.CopyPerThreadGBs * 1e9
	readBW := p.Tiers[src].ReadBWGBs * 1e9
	writeBW := p.Tiers[dst].WriteBWGBs * 1e9
	b := float64(bytes)
	if p.SharedChannels && src != dst {
		// Reads and writes contend for the same channels: total bus
		// occupancy is the sum of both transfers.
		busSeconds := b/readBW + b/writeBW
		threadSeconds := b / threadBW
		if threadSeconds > busSeconds {
			return threadSeconds
		}
		return busSeconds
	}
	bw := readBW
	if writeBW < bw {
		bw = writeBW
	}
	if threadBW < bw {
		bw = threadBW
	}
	return b / bw
}
