package migrate

import (
	"context"
	"testing"

	"atmem/internal/memsim"
)

func TestDemotionDirection(t *testing.T) {
	// Both engines must handle target = TierSlow: the governor's
	// demotion pass is just a migration with the tiers swapped.
	for _, e := range engines() {
		s := testSystem(t)
		base, err := s.Alloc(2*memsim.HugePage, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: 2 * memsim.HugePage}}, memsim.TierSlow)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if st.BytesMoved != 2*memsim.HugePage {
			t.Errorf("%s: demoted %d bytes", e.Name(), st.BytesMoved)
		}
		on := s.BytesOnTier(base, 2*memsim.HugePage)
		if on[memsim.TierSlow] != 2*memsim.HugePage || on[memsim.TierFast] != 0 {
			t.Errorf("%s: placement after demotion %v", e.Name(), on)
		}
		if err := s.CheckConsistency(); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}

func TestRunScheduleDemotionsFundPromotions(t *testing.T) {
	// Fast tier: 2.5 MiB. Object A (2 MiB) is fast-resident, object B
	// (2 MiB) is slow. Promoting B alone must fail for capacity; the
	// schedule demotes A first, and the reclaimed capacity funds B.
	p := memsim.NVMDRAMParams()
	p.Tiers[memsim.TierFast].CapacityBytes = 2*memsim.MiB + 512*memsim.KiB
	s := memsim.NewSystem(p)
	a, err := s.Alloc(2*memsim.MiB, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Alloc(2*memsim.MiB, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	e := &ATMemEngine{StagingBytes: 256 * memsim.KiB}

	// Control: promotion without the demotion pass is skipped.
	ctl, err := e.Migrate(context.Background(), s, []Region{{Base: b, Size: 2 * memsim.MiB}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.RegionsSkipped != 1 || ctl.BytesMoved != 0 {
		t.Fatalf("control promotion: %+v", ctl.Outcomes)
	}

	var events []Event
	res, err := RunSchedule(context.Background(), e, s, Schedule{
		Demotions:  []Region{{Base: a, Size: 2 * memsim.MiB}},
		Promotions: []Region{{Base: b, Size: 2 * memsim.MiB}},
	}, func(ev Event) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Demotions.BytesMoved != 2*memsim.MiB {
		t.Errorf("demotion pass moved %d", res.Demotions.BytesMoved)
	}
	if res.Promotions.RegionsSkipped != 0 || res.Promotions.BytesMoved != 2*memsim.MiB {
		t.Errorf("promotion pass: moved=%d outcomes=%+v",
			res.Promotions.BytesMoved, res.Promotions.Outcomes)
	}
	if res.Merged.BytesMoved != 4*memsim.MiB || res.Merged.Regions != 2 {
		t.Errorf("merged: %+v", res.Merged)
	}
	if res.Merged.Seconds != res.Demotions.Seconds+res.Promotions.Seconds {
		t.Error("merged Seconds is not the sum of the passes")
	}
	if len(res.Merged.Moved) != 2 || res.Merged.Moved[0].Base != a || res.Merged.Moved[1].Base != b {
		t.Errorf("merged Moved %v (want demotion range first)", res.Merged.Moved)
	}

	onA := s.BytesOnTier(a, 2*memsim.MiB)
	onB := s.BytesOnTier(b, 2*memsim.MiB)
	if onA[memsim.TierSlow] != 2*memsim.MiB || onB[memsim.TierFast] != 2*memsim.MiB {
		t.Errorf("final placement: A %v, B %v", onA, onB)
	}

	// Events carry the pass direction and share one time axis: every
	// promotion event is stamped TierFast and starts no earlier than the
	// demotion pass's elapsed time.
	var sawDem, sawPro bool
	for _, ev := range events {
		switch ev.Target {
		case memsim.TierSlow:
			sawDem = true
		case memsim.TierFast:
			sawPro = true
			if ev.Seconds < res.Demotions.Seconds {
				t.Errorf("promotion event %s at %.9fs precedes demotion pass end %.9fs",
					ev.Kind, ev.Seconds, res.Demotions.Seconds)
			}
		}
	}
	if !sawDem || !sawPro {
		t.Errorf("events missing a direction: dem=%v pro=%v", sawDem, sawPro)
	}
	if e.Sink != nil {
		t.Error("RunSchedule left the engine sink installed")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestRunScheduleEmpty(t *testing.T) {
	s := testSystem(t)
	res, err := RunSchedule(context.Background(), &ATMemEngine{}, s, Schedule{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Merged.Regions != 0 || res.Merged.Seconds != 0 || res.Merged.BytesMoved != 0 {
		t.Errorf("empty schedule produced stats %+v", res.Merged)
	}
	sched := Schedule{}
	if !sched.Empty() {
		t.Error("Schedule.Empty() = false for zero value")
	}
}
