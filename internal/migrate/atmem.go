package migrate

import (
	"context"
	"errors"
	"fmt"

	"atmem/internal/memsim"
)

// ATMemEngine is the multi-stage multi-threaded application-level
// migration of §4.4 (Figure 4).
type ATMemEngine struct {
	// Threads is the copy concurrency; 0 means use the system's thread
	// count.
	Threads int
	// StagingBytes caps the staging buffer; regions larger than this
	// are migrated in staging-sized slices so the mechanism works even
	// when the target tier is nearly full. 0 means 8 MiB.
	StagingBytes uint64
	// Retry shapes the per-region degradation ladder; the zero value is
	// the historical unbounded halving ladder down to one small page.
	Retry RetryPolicy
	// Sink, when non-nil, observes per-region attempt/rollback/outcome
	// events (see SetEventSink).
	Sink EventSink

	// target is the tier of the Migrate call in progress, stamped onto
	// every emitted event.
	target memsim.Tier
}

// Name implements Engine.
func (e *ATMemEngine) Name() string { return "atmem" }

// SetEventSink implements Engine.
func (e *ATMemEngine) SetEventSink(s EventSink) { e.Sink = s }

// emit sends ev to the sink, if any, stamped with the migration target.
func (e *ATMemEngine) emit(ev Event) {
	if e.Sink != nil {
		ev.Target = e.target
		e.Sink(ev)
	}
}

// Migrate implements Engine. For each region it stages the live values on
// the target memory with a parallel copy, remaps the region's virtual
// pages to fresh target-memory pages (splitting only the boundary huge
// pages when the region does not cover them fully — interior huge
// mappings survive, which preserves TLB reach), then copies the staged
// values back in parallel. Data crosses the inter-memory link once and
// moves once more within the target memory, exactly the two transfers the
// paper describes.
//
// Migration is transactional per region: a mid-region failure (staging
// reservation, remap) restores the region's pre-migration tier snapshot,
// then walks the degradation ladder — retry with the staging buffer
// halved, down to a single small page, and finally skip the region and
// continue with the rest of the plan. Skipped regions carry their last
// error in the Stats outcomes; only a failed rollback aborts the run.
func (e *ATMemEngine) Migrate(ctx context.Context, sys *memsim.System, regions []Region, target memsim.Tier) (Stats, error) {
	e.target = target
	p := &sys.P
	threads := e.Threads
	if threads <= 0 {
		threads = p.Threads
	}
	staging := e.StagingBytes
	if staging == 0 {
		staging = 8 << 20
	}
	staging = memsim.RoundUp(staging, memsim.SmallPage)

	st := Stats{Engine: e.Name()}
	for _, raw := range regions {
		r := alignRegion(raw)
		st.Regions++
		st.BytesRequested += r.Size
		if err := ctx.Err(); err != nil {
			// Cancelled between regions: the rest of the plan is
			// skipped without walking the degradation ladder.
			st.recordOutcome(RegionOutcome{Region: r, Outcome: OutcomeSkipped, Err: err})
			e.emit(Event{Kind: EventSkipped, Region: r, Seconds: st.Seconds, Err: err})
			continue
		}
		moving := movingBytes(sys, r, target)
		if moving == 0 {
			st.recordOutcome(RegionOutcome{Region: r, Outcome: OutcomeMigrated})
			e.emit(Event{Kind: EventMigrated, Region: r, Seconds: st.Seconds})
			continue
		}
		out, err := e.migrateRegion(ctx, sys, r, target, staging, threads, &st)
		st.recordOutcome(out)
		if err != nil {
			return st, err
		}
		if out.Outcome != OutcomeSkipped {
			st.BytesMoved += moving
			st.PagesMoved += int(moving / memsim.SmallPage)
			st.Moved = append(st.Moved, r)
		}
	}
	return st, nil
}

// migrateRegion drives one region down the degradation ladder: attempt
// the multi-stage copy at the given staging size; on failure (after the
// attempt rolled itself back) halve the staging buffer — a smaller
// transient reservation fits a tighter target tier — down to one small
// page, then give up and leave the region in its original placement.
func (e *ATMemEngine) migrateRegion(ctx context.Context, sys *memsim.System, r Region, target memsim.Tier, staging uint64, threads int, st *Stats) (RegionOutcome, error) {
	out := RegionOutcome{Region: r}
	for stg := staging; ; {
		out.Attempts++
		e.emit(Event{Kind: EventAttempt, Region: r, Attempt: out.Attempts,
			StagingBytes: stg, Seconds: st.Seconds})
		err := e.attemptRegion(ctx, sys, r, target, stg, threads, st)
		if err == nil {
			kind := EventMigrated
			if out.Attempts > 1 {
				out.Outcome = OutcomeRetried
				kind = EventRetried
			}
			e.emit(Event{Kind: kind, Region: r, Attempt: out.Attempts,
				StagingBytes: stg, Seconds: st.Seconds})
			return out, nil
		}
		out.Err = err
		if errors.Is(err, ErrRollback) {
			return out, err
		}
		// The failed attempt unwound itself (see attemptRegion); the
		// region is back on its pre-attempt placement.
		e.emit(Event{Kind: EventRollback, Region: r, Attempt: out.Attempts,
			StagingBytes: stg, Seconds: st.Seconds, Err: err})
		if ctx.Err() != nil {
			// Cancellation is not a capacity problem: retrying with a
			// smaller staging buffer cannot help, so skip directly.
			out.Outcome = OutcomeSkipped
			e.emit(Event{Kind: EventSkipped, Region: r, Attempt: out.Attempts,
				StagingBytes: stg, Seconds: st.Seconds, Err: err})
			return out, nil
		}
		next, more := e.Retry.NextStaging(stg)
		if !more || e.Retry.Exhausted(out.Attempts, 0) {
			out.Outcome = OutcomeSkipped
			e.emit(Event{Kind: EventSkipped, Region: r, Attempt: out.Attempts,
				StagingBytes: stg, Seconds: st.Seconds, Err: err})
			return out, nil
		}
		stg = next
	}
}

// attemptRegion runs one transactional migration attempt: it snapshots
// the region's tiers, then either completes every staging slice or
// restores the snapshot for the slices already remapped before returning
// the failure. Boundary huge pages split by a failed attempt are not
// re-merged — collapsing THPs back is khugepaged's job, not the unwind
// path's — which only costs TLB reach, never consistency.
func (e *ATMemEngine) attemptRegion(ctx context.Context, sys *memsim.System, r Region, target memsim.Tier, staging uint64, threads int, st *Stats) error {
	p := &sys.P
	src := target.Other()
	snap, err := sys.TierSnapshot(r.Base, r.Size)
	if err != nil {
		return err
	}

	// rollback restores the already-remapped prefix [r.Base, r.Base+done)
	// to its snapshot and returns cause; the restore is one batched
	// remap plus one shootdown. Like the forward remap it runs under a
	// quiesce gate: concurrent stores must not land between the restore
	// decision and the committed tiers. A failed restore is
	// unrecoverable.
	rollback := func(done uint64, cause error) error {
		if done == 0 {
			return cause
		}
		g := sys.QuiesceBegin(r.Base, done)
		rerr := sys.RestoreTiers(r.Base, snap[:done/memsim.SmallPage])
		sys.QuiesceEnd(g)
		if rerr != nil {
			return fmt.Errorf("%w: %v (while handling: %v)", ErrRollback, rerr, cause)
		}
		st.Seconds += p.RemapNSPerRegion * 1e-9
		st.Seconds += p.TLBShootdownNS * 1e-9
		st.TLBShootdowns++
		return cause
	}

	// Boundary huge pages not fully covered by the region must be
	// split before a partial remap is possible; interior huge
	// mappings are remapped wholesale and stay huge.
	split, err := splitBoundaryHugePages(sys, r)
	st.HugePagesSplit += split
	if err != nil {
		return err // nothing remapped yet, nothing to roll back
	}

	for off := uint64(0); off < r.Size; off += staging {
		if err := ctx.Err(); err != nil {
			return rollback(off, fmt.Errorf("migrate/atmem: cancelled: %w", err))
		}
		slice := staging
		if off+slice > r.Size {
			slice = r.Size - off
		}
		if err := sys.Reserve(slice, target); err != nil {
			return rollback(off, fmt.Errorf("%w: %w", ErrStaging, err))
		}
		// Stage 1: parallel copy source region -> staging buffer
		// (staging lives on the target memory, Figure 4a).
		st.Seconds += copySeconds(p, slice, src, target, threads)
		// Stage 2: remap the virtual pages onto empty target pages (no
		// data moves, Figure 4b). Only this step write-blocks the slice:
		// a store landing after the stage-1 copy but before the remap
		// commit would be lost on the staged copy-back, so writers wait
		// at the gate while readers continue against the committed
		// mapping (the seqlock keeps their view consistent).
		g := sys.QuiesceBegin(r.Base+off, slice)
		err := sys.Retier(r.Base+off, slice, target)
		sys.QuiesceEnd(g)
		if err != nil {
			sys.Unreserve(slice, target)
			return rollback(off, fmt.Errorf("migrate/atmem: remap: %w", err))
		}
		st.Seconds += p.RemapNSPerRegion * 1e-9
		// One shootdown per remapped slice: every thread's stale
		// translation of the region must be dropped once.
		st.Seconds += p.TLBShootdownNS * 1e-9
		st.TLBShootdowns++
		// Stage 3: parallel copy staging buffer -> remapped
		// region, entirely within the target memory (Figure 4c).
		st.Seconds += copySeconds(p, slice, target, target, threads)
		sys.Unreserve(slice, target)
	}
	return nil
}

// splitBoundaryHugePages splinters the huge mappings that the region only
// partially covers — at most one at each end — returning how many were
// split. When both boundaries fall inside the same huge page it is split
// once.
func splitBoundaryHugePages(sys *memsim.System, r Region) (int, error) {
	pt := sys.PageTable()
	split := 0
	splitAt := func(addr uint64) error {
		page := addr &^ (memsim.HugePage - 1)
		if huge, _ := pt.HugePages(page, memsim.HugePage); huge == 0 {
			return nil
		}
		if err := sys.Splinter(page, memsim.HugePage); err != nil {
			return err
		}
		split++
		return nil
	}
	end := r.Base + r.Size
	if r.Base%memsim.HugePage != 0 {
		if err := splitAt(r.Base); err != nil {
			return split, err
		}
	}
	if end%memsim.HugePage != 0 {
		if err := splitAt(end - 1); err != nil {
			return split, err
		}
	}
	return split, nil
}
