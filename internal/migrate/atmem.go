package migrate

import (
	"fmt"

	"atmem/internal/memsim"
)

// ATMemEngine is the multi-stage multi-threaded application-level
// migration of §4.4 (Figure 4).
type ATMemEngine struct {
	// Threads is the copy concurrency; 0 means use the system's thread
	// count.
	Threads int
	// StagingBytes caps the staging buffer; regions larger than this
	// are migrated in staging-sized slices so the mechanism works even
	// when the target tier is nearly full. 0 means 8 MiB.
	StagingBytes uint64
}

// Name implements Engine.
func (e *ATMemEngine) Name() string { return "atmem" }

// Migrate implements Engine. For each region it stages the live values on
// the target memory with a parallel copy, remaps the region's virtual
// pages to fresh target-memory pages (splitting only the boundary huge
// pages when the region does not cover them fully — interior huge
// mappings survive, which preserves TLB reach), then copies the staged
// values back in parallel. Data crosses the inter-memory link once and
// moves once more within the target memory, exactly the two transfers the
// paper describes.
func (e *ATMemEngine) Migrate(sys *memsim.System, regions []Region, target memsim.Tier) (Stats, error) {
	p := &sys.P
	threads := e.Threads
	if threads <= 0 {
		threads = p.Threads
	}
	staging := e.StagingBytes
	if staging == 0 {
		staging = 8 << 20
	}
	staging = memsim.RoundUp(staging, memsim.SmallPage)

	st := Stats{Engine: e.Name()}
	for _, raw := range regions {
		r := alignRegion(raw)
		st.Regions++
		st.BytesRequested += r.Size
		moving := movingBytes(sys, r, target)
		if moving == 0 {
			continue
		}
		src := target.Other()

		// Boundary huge pages not fully covered by the region must be
		// split before a partial remap is possible; interior huge
		// mappings are remapped wholesale and stay huge.
		split, err := splitBoundaryHugePages(sys, r)
		if err != nil {
			return st, err
		}
		st.HugePagesSplit += split

		for off := uint64(0); off < r.Size; off += staging {
			slice := staging
			if off+slice > r.Size {
				slice = r.Size - off
			}
			if err := sys.Reserve(slice, target); err != nil {
				return st, fmt.Errorf("migrate/atmem: staging buffer: %w", err)
			}
			// Stage 1: parallel copy source region -> staging buffer
			// (staging lives on the target memory, Figure 4a).
			st.Seconds += copySeconds(p, slice, src, target, threads)
			// Stage 2: remap the virtual pages onto empty target
			// pages (no data moves, Figure 4b).
			if err := sys.Retier(r.Base+off, slice, target); err != nil {
				sys.Unreserve(slice, target)
				return st, fmt.Errorf("migrate/atmem: remap: %w", err)
			}
			st.Seconds += p.RemapNSPerRegion * 1e-9
			// One shootdown per remapped slice: every thread's stale
			// translation of the region must be dropped once.
			st.Seconds += p.TLBShootdownNS * 1e-9
			st.TLBShootdowns++
			// Stage 3: parallel copy staging buffer -> remapped
			// region, entirely within the target memory (Figure 4c).
			st.Seconds += copySeconds(p, slice, target, target, threads)
			sys.Unreserve(slice, target)
		}
		st.BytesMoved += moving
		st.PagesMoved += int(moving / memsim.SmallPage)
	}
	return st, nil
}

// splitBoundaryHugePages splinters the huge mappings that the region only
// partially covers — at most one at each end — returning how many were
// split. When both boundaries fall inside the same huge page it is split
// once.
func splitBoundaryHugePages(sys *memsim.System, r Region) (int, error) {
	pt := sys.PageTable()
	split := 0
	splitAt := func(addr uint64) error {
		page := addr &^ (memsim.HugePage - 1)
		if huge, _ := pt.HugePages(page, memsim.HugePage); huge == 0 {
			return nil
		}
		if err := sys.Splinter(page, memsim.HugePage); err != nil {
			return err
		}
		split++
		return nil
	}
	end := r.Base + r.Size
	if r.Base%memsim.HugePage != 0 {
		if err := splitAt(r.Base); err != nil {
			return split, err
		}
	}
	if end%memsim.HugePage != 0 {
		if err := splitAt(end - 1); err != nil {
			return split, err
		}
	}
	return split, nil
}
