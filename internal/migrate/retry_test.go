package migrate

import (
	"context"
	"testing"

	"atmem/internal/faultinject"
	"atmem/internal/memsim"
)

func TestRetryPolicyDefaults(t *testing.T) {
	var rp RetryPolicy
	// Zero value: unbounded when the engine default is 0 (atmem),
	// capped at the engine default otherwise (mbind's 2).
	if rp.Exhausted(100, 0) {
		t.Error("zero policy exhausted under unbounded engine default")
	}
	if rp.Exhausted(1, 2) || !rp.Exhausted(2, 2) {
		t.Error("zero policy does not reproduce the two-attempt mbind ladder")
	}
	// The staging ladder halves down to one small page.
	sizes := []uint64{}
	for stg := uint64(8 * memsim.SmallPage); ; {
		next, more := rp.NextStaging(stg)
		if !more {
			break
		}
		sizes = append(sizes, next)
		stg = next
	}
	want := []uint64{4 * memsim.SmallPage, 2 * memsim.SmallPage, memsim.SmallPage}
	if len(sizes) != len(want) {
		t.Fatalf("ladder = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("ladder = %v, want %v", sizes, want)
		}
	}
}

func TestRetryPolicyCustomFloorAndCap(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 3, MinStaging: 4 * memsim.SmallPage}
	if !rp.Exhausted(3, 0) || rp.Exhausted(2, 0) {
		t.Error("MaxAttempts override not honoured")
	}
	if _, more := rp.NextStaging(4 * memsim.SmallPage); more {
		t.Error("ladder descended below MinStaging")
	}
	if next, more := rp.NextStaging(6 * memsim.SmallPage); !more || next != 4*memsim.SmallPage {
		t.Errorf("NextStaging clamped wrong: %d, %t", next, more)
	}
}

// TestRetryPolicyBoundsEngineAttempts arms a persistent fault over the
// target range so every attempt fails, and checks both engines stop at
// the policy's attempt cap instead of walking their full default ladder.
func TestRetryPolicyBoundsEngineAttempts(t *testing.T) {
	for _, mk := range []func(RetryPolicy) Engine{
		func(rp RetryPolicy) Engine { return &ATMemEngine{StagingBytes: 64 * memsim.SmallPage, Retry: rp} },
		func(rp RetryPolicy) Engine { return &MbindEngine{Retry: rp} },
	} {
		e := mk(RetryPolicy{MaxAttempts: 1})
		s := testSystem(t)
		base, err := s.Alloc(memsim.HugePage, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		s.SetFaultHook(faultinject.New(faultinject.Schedule{Faults: []faultinject.Fault{
			{Kind: faultinject.Persistent, Op: faultinject.OpRetier, Base: base, Size: memsim.HugePage},
		}}))
		st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: memsim.HugePage}}, memsim.TierFast)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if st.RegionsSkipped != 1 {
			t.Errorf("%s: skipped %d regions, want 1", e.Name(), st.RegionsSkipped)
		}
		if got := st.Outcomes[0].Attempts; got != 1 {
			t.Errorf("%s: %d attempts, want 1 (MaxAttempts)", e.Name(), got)
		}
		if on := s.BytesOnTier(base, memsim.HugePage); on[memsim.TierFast] != 0 {
			t.Errorf("%s: persistent-faulted region reached the fast tier", e.Name())
		}
	}
}
