package migrate

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"atmem/internal/memsim"
)

// countdownCtx reports Canceled starting with the Nth Err() call. It
// lets a test cancel at an exact point in the migration protocol — here,
// between staging slices of one region — without racing a timer.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64 // Err() calls that still return nil
}

func newCountdownCtx(nilCalls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(nilCalls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestCancelledPlanSkipsEveryRegion: a context cancelled before Migrate
// starts skips the whole plan without touching placement.
func TestCancelledPlanSkipsEveryRegion(t *testing.T) {
	for _, e := range engines() {
		s := testSystem(t)
		base, err := s.Alloc(8*memsim.SmallPage, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		st, err := e.Migrate(ctx, s, []Region{
			{Base: base, Size: 4 * memsim.SmallPage},
			{Base: base + 4*memsim.SmallPage, Size: 4 * memsim.SmallPage},
		}, memsim.TierFast)
		if err != nil {
			t.Fatalf("%s: cancelled plan returned a hard error: %v", e.Name(), err)
		}
		if st.RegionsSkipped != 2 || st.BytesMoved != 0 {
			t.Errorf("%s: skipped %d regions, moved %d bytes; want 2 skipped, 0 moved",
				e.Name(), st.RegionsSkipped, st.BytesMoved)
		}
		if on := s.BytesOnTier(base, 8*memsim.SmallPage); on[memsim.TierSlow] != 8*memsim.SmallPage {
			t.Errorf("%s: cancelled plan changed placement: %v", e.Name(), on)
		}
		for _, o := range st.Outcomes {
			if !errors.Is(o.Err, context.Canceled) {
				t.Errorf("%s: skip cause = %v, want context.Canceled", e.Name(), o.Err)
			}
		}
	}
}

// TestCancelMidRegionRollsBackRemappedPrefix cancels between staging
// slices: the region-entry check and the first slice pass, the second
// slice's check fires. The slice already remapped to the fast tier must
// be restored to the snapshot, the region skipped directly (cancellation
// never walks the staging-halving ladder), and no reservation leaked.
func TestCancelMidRegionRollsBackRemappedPrefix(t *testing.T) {
	s := testSystem(t)
	const pages = 4
	base, err := s.Alloc(pages*memsim.SmallPage, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	// Err() call sequence: Migrate region entry, then one check per
	// staging slice. Two nil calls let slice 0 remap; slice 1 cancels.
	ctx := newCountdownCtx(2)
	e := &ATMemEngine{StagingBytes: memsim.SmallPage}
	var events []Event
	e.SetEventSink(func(ev Event) { events = append(events, ev) })

	st, err := e.Migrate(ctx, s, []Region{{Base: base, Size: pages * memsim.SmallPage}}, memsim.TierFast)
	if err != nil {
		t.Fatalf("mid-region cancellation escalated to a hard error: %v", err)
	}
	if st.RegionsSkipped != 1 || st.BytesMoved != 0 {
		t.Errorf("skipped %d, moved %d; want the one region skipped with nothing moved",
			st.RegionsSkipped, st.BytesMoved)
	}
	if len(st.Outcomes) != 1 {
		t.Fatalf("outcomes: %+v", st.Outcomes)
	}
	o := st.Outcomes[0]
	if o.Outcome != OutcomeSkipped || !errors.Is(o.Err, context.Canceled) {
		t.Errorf("outcome %v err %v, want skipped on context.Canceled", o.Outcome, o.Err)
	}
	if o.Attempts != 1 {
		t.Errorf("cancellation walked the retry ladder: %d attempts", o.Attempts)
	}
	// The rollback restored the remapped first slice.
	if on := s.BytesOnTier(base, pages*memsim.SmallPage); on[memsim.TierSlow] != pages*memsim.SmallPage {
		t.Errorf("placement after rollback: %v, want everything back on the slow tier", on)
	}
	if res := s.Reserved(memsim.TierFast); res != 0 {
		t.Errorf("leaked %d reserved staging bytes", res)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
	// The sink saw the unwind: a rollback event then the skip.
	var sawRollback, sawSkip bool
	for _, ev := range events {
		switch ev.Kind {
		case EventRollback:
			sawRollback = true
		case EventSkipped:
			sawSkip = true
		}
	}
	if !sawRollback || !sawSkip {
		t.Errorf("event stream missing rollback/skip: %+v", events)
	}
}

// TestCancelMidScheduleStopsLater verifies RunSchedule under the same
// countdown: cancellation during the promotion pass leaves the demotion
// results intact and reports the untouched regions as skipped.
func TestCancelMidScheduleStopsLater(t *testing.T) {
	s := testSystem(t)
	base, err := s.Alloc(8*memsim.SmallPage, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	sched := Schedule{
		Promotions: []Region{
			{Base: base, Size: 2 * memsim.SmallPage},
			{Base: base + 2*memsim.SmallPage, Size: 2 * memsim.SmallPage},
		},
	}
	// One nil Err() call: the first promotion region enters and there is
	// one slice check... so give it exactly enough to finish region 1
	// (entry + 1 slice with a region-sized staging buffer) and cancel
	// region 2 at entry.
	ctx := newCountdownCtx(2)
	e := &ATMemEngine{StagingBytes: 2 * memsim.SmallPage}
	res, err := RunSchedule(ctx, e, s, sched, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Promotions
	if total.RegionsMigrated != 1 || total.RegionsSkipped != 1 {
		t.Errorf("migrated %d skipped %d, want 1 and 1", total.RegionsMigrated, total.RegionsSkipped)
	}
	on := s.BytesOnTier(base, 8*memsim.SmallPage)
	if on[memsim.TierFast] != 2*memsim.SmallPage {
		t.Errorf("placement %v, want exactly the first region promoted", on)
	}
	if res := s.Reserved(memsim.TierFast); res != 0 {
		t.Errorf("leaked %d reserved bytes", res)
	}
}
