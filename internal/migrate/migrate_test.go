package migrate

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"atmem/internal/faultinject"
	"atmem/internal/memsim"
)

func testSystem(t *testing.T) *memsim.System {
	if t != nil {
		t.Helper()
	}
	p := memsim.NVMDRAMParams()
	p.Tiers[memsim.TierFast].CapacityBytes = 16 * memsim.MiB
	p.Tiers[memsim.TierSlow].CapacityBytes = 64 * memsim.MiB
	return memsim.NewSystem(p)
}

func engines() []Engine {
	return []Engine{&ATMemEngine{}, &MbindEngine{}}
}

func TestMigrationMovesPages(t *testing.T) {
	for _, e := range engines() {
		s := testSystem(t)
		base, err := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: 2 * memsim.HugePage}}, memsim.TierFast)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if st.BytesMoved != 2*memsim.HugePage {
			t.Errorf("%s: moved %d", e.Name(), st.BytesMoved)
		}
		if st.Seconds <= 0 {
			t.Errorf("%s: no time charged", e.Name())
		}
		on := s.BytesOnTier(base, 4*memsim.HugePage)
		if on[memsim.TierFast] != 2*memsim.HugePage || on[memsim.TierSlow] != 2*memsim.HugePage {
			t.Errorf("%s: placement %v", e.Name(), on)
		}
	}
}

func TestMigrationIdempotent(t *testing.T) {
	for _, e := range engines() {
		s := testSystem(t)
		base, _ := s.Alloc(memsim.HugePage, memsim.TierSlow)
		r := []Region{{Base: base, Size: memsim.HugePage}}
		if _, err := e.Migrate(context.Background(), s, r, memsim.TierFast); err != nil {
			t.Fatal(err)
		}
		st, err := e.Migrate(context.Background(), s, r, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		if st.BytesMoved != 0 {
			t.Errorf("%s: re-migration moved %d bytes", e.Name(), st.BytesMoved)
		}
	}
}

func TestATMemPreservesInteriorHugePages(t *testing.T) {
	s := testSystem(t)
	base, _ := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
	e := &ATMemEngine{}
	// Migrate a region covering huge pages 1 and 2 exactly.
	if _, err := e.Migrate(context.Background(), s, []Region{{Base: base + memsim.HugePage, Size: 2 * memsim.HugePage}}, memsim.TierFast); err != nil {
		t.Fatal(err)
	}
	huge, total := s.PageTable().HugePages(base, 4*memsim.HugePage)
	if huge != total {
		t.Errorf("aligned ATMem migration splintered pages: %d/%d huge", huge, total)
	}
}

func TestATMemSplitsOnlyBoundaryHugePages(t *testing.T) {
	s := testSystem(t)
	base, _ := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
	e := &ATMemEngine{}
	// Region starts halfway into huge page 0 and ends halfway into
	// huge page 2: pages 0 and 2 split, page 1 stays huge.
	st, err := e.Migrate(context.Background(), s, []Region{{
		Base: base + memsim.HugePage/2,
		Size: 2 * memsim.HugePage,
	}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.HugePagesSplit != 2 {
		t.Errorf("split %d huge pages, want 2", st.HugePagesSplit)
	}
	if s.PageTable().Translate(base).Huge {
		t.Error("leading boundary page still huge")
	}
	if !s.PageTable().Translate(base + memsim.HugePage).Huge {
		t.Error("interior page splintered")
	}
	if s.PageTable().Translate(base + 2*memsim.HugePage).Huge {
		t.Error("trailing boundary page still huge")
	}
	if !s.PageTable().Translate(base + 3*memsim.HugePage).Huge {
		t.Error("untouched page splintered")
	}
}

func TestMbindSplintersEverything(t *testing.T) {
	s := testSystem(t)
	base, _ := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
	e := &MbindEngine{}
	st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: 2 * memsim.HugePage}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.HugePagesSplit != 2 {
		t.Errorf("split %d, want 2", st.HugePagesSplit)
	}
	if s.PageTable().Translate(base).Huge || s.PageTable().Translate(base+memsim.HugePage).Huge {
		t.Error("mbind left moved huge pages intact")
	}
	if !s.PageTable().Translate(base + 2*memsim.HugePage).Huge {
		t.Error("mbind splintered pages outside the moved range")
	}
	if st.TLBShootdowns == 0 {
		t.Error("mbind reported no shootdowns")
	}
}

func TestATMemFasterThanMbind(t *testing.T) {
	// The headline claim of §7.3: the multi-stage multi-threaded
	// migration beats the system service on both testbed parameter
	// sets.
	for _, params := range []memsim.SystemParams{memsim.NVMDRAMParams(), memsim.MCDRAMDRAMParams()} {
		s1 := memsim.NewSystem(params)
		base1, err := s1.Alloc(4*memsim.MiB, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		at, err := (&ATMemEngine{}).Migrate(context.Background(), s1, []Region{{Base: base1, Size: 4 * memsim.MiB}}, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		s2 := memsim.NewSystem(params)
		base2, err := s2.Alloc(4*memsim.MiB, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := (&MbindEngine{}).Migrate(context.Background(), s2, []Region{{Base: base2, Size: 4 * memsim.MiB}}, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		ratio := mb.Seconds / at.Seconds
		if ratio < 1.3 {
			t.Errorf("%s: mbind/atmem = %.2f, want >= 1.3 (paper: 1.3x-8.2x)", params.Name, ratio)
		}
		if ratio > 12 {
			t.Errorf("%s: mbind/atmem = %.2f suspiciously high", params.Name, ratio)
		}
	}
}

func TestStagingBufferRespectsCapacity(t *testing.T) {
	p := memsim.NVMDRAMParams()
	// Fast tier barely bigger than the region: staging must slice.
	p.Tiers[memsim.TierFast].CapacityBytes = 5 * memsim.MiB
	s := memsim.NewSystem(p)
	base, err := s.Alloc(4*memsim.MiB, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	e := &ATMemEngine{StagingBytes: 512 * memsim.KiB}
	if _, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: 4 * memsim.MiB}}, memsim.TierFast); err != nil {
		t.Fatal(err)
	}
	if got := s.BytesOnTier(base, 4*memsim.MiB)[memsim.TierFast]; got != 4*memsim.MiB {
		t.Errorf("only %d bytes migrated", got)
	}
	// All staging reservations must have been released.
	if used := s.Used(memsim.TierFast); used != 4*memsim.MiB {
		t.Errorf("fast tier used %d, staging leak?", used)
	}
}

func TestMigrationDegradesWhenTargetFull(t *testing.T) {
	// A region that cannot fit on the target tier is no longer a fatal
	// error: the engine walks its degradation ladder, rolls the region
	// back, and reports it skipped.
	p := memsim.NVMDRAMParams()
	p.Tiers[memsim.TierFast].CapacityBytes = 1 * memsim.MiB
	for _, e := range engines() {
		s := memsim.NewSystem(p)
		base, err := s.Alloc(8*memsim.MiB, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: 8 * memsim.MiB}}, memsim.TierFast)
		if err != nil {
			t.Fatalf("%s: over-capacity migration errored instead of degrading: %v", e.Name(), err)
		}
		if st.RegionsSkipped != 1 || st.BytesMoved != 0 || len(st.Moved) != 0 {
			t.Errorf("%s: skipped=%d moved=%d, want a clean skip", e.Name(), st.RegionsSkipped, st.BytesMoved)
		}
		if len(st.Outcomes) != 1 || st.Outcomes[0].Outcome != OutcomeSkipped || st.Outcomes[0].Err == nil {
			t.Errorf("%s: outcomes %+v", e.Name(), st.Outcomes)
		}
		if !errors.Is(st.Outcomes[0].Err, memsim.ErrNoCapacity) {
			t.Errorf("%s: skip error %v does not wrap ErrNoCapacity", e.Name(), st.Outcomes[0].Err)
		}
		// Everything rolled back: region intact on the slow tier, no
		// reservation leaked.
		if on := s.BytesOnTier(base, 8*memsim.MiB); on[memsim.TierSlow] != 8*memsim.MiB {
			t.Errorf("%s: placement after skip %v", e.Name(), on)
		}
		if res := s.Reserved(memsim.TierFast); res != 0 {
			t.Errorf("%s: leaked %d reserved bytes", e.Name(), res)
		}
	}
}

func TestUnalignedRegionsAreExpanded(t *testing.T) {
	for _, e := range engines() {
		s := testSystem(t)
		base, _ := s.Alloc(memsim.HugePage, memsim.TierSlow)
		st, err := e.Migrate(context.Background(), s, []Region{{Base: base + 100, Size: 50}}, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		if st.BytesMoved != memsim.SmallPage {
			t.Errorf("%s: moved %d, want one page", e.Name(), st.BytesMoved)
		}
		if tier, _ := s.TierOf(base); tier != memsim.TierFast {
			t.Errorf("%s: containing page not moved", e.Name())
		}
	}
}

// Property: after migrating random page-aligned subranges, every page of
// the object is still mapped, and bytes-on-tier accounting is conserved.
func TestMigrationPreservesMappingTotality(t *testing.T) {
	check := func(startPage, pages uint8, engineSel bool) bool {
		const objPages = 64
		s := testSystem(nil)
		base, err := s.Alloc(objPages*memsim.SmallPage, memsim.TierSlow)
		if err != nil {
			return false
		}
		sp := uint64(startPage) % objPages
		np := uint64(pages)%(objPages-sp) + 1
		var e Engine = &ATMemEngine{}
		if engineSel {
			e = &MbindEngine{}
		}
		if _, err := e.Migrate(context.Background(), s, []Region{{
			Base: base + sp*memsim.SmallPage,
			Size: np * memsim.SmallPage,
		}}, memsim.TierFast); err != nil {
			return false
		}
		on := s.BytesOnTier(base, objPages*memsim.SmallPage)
		return on[memsim.TierFast]+on[memsim.TierSlow] == objPages*memsim.SmallPage &&
			on[memsim.TierFast] == np*memsim.SmallPage
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineNames(t *testing.T) {
	if (&ATMemEngine{}).Name() != "atmem" || (&MbindEngine{}).Name() != "mbind" {
		t.Error("unexpected engine names")
	}
}

func TestFaultMidRegionRetierRollsBackAndRetries(t *testing.T) {
	// The second remap of the run fails: the first slice must be rolled
	// back, and the retry (one rung down the ladder) must complete the
	// whole region.
	s := testSystem(t)
	base, err := s.Alloc(8*memsim.SmallPage, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(faultinject.New(faultinject.Schedule{
		Faults: []faultinject.Fault{{Op: faultinject.OpRetier, Nth: 2}},
	}))
	e := &ATMemEngine{StagingBytes: 2 * memsim.SmallPage}
	st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: 8 * memsim.SmallPage}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.RegionsRetried != 1 || st.RegionsSkipped != 0 {
		t.Errorf("retried=%d skipped=%d, want 1/0", st.RegionsRetried, st.RegionsSkipped)
	}
	if len(st.Outcomes) != 1 || st.Outcomes[0].Attempts != 2 {
		t.Errorf("outcomes %+v", st.Outcomes)
	}
	if on := s.BytesOnTier(base, 8*memsim.SmallPage); on[memsim.TierFast] != 8*memsim.SmallPage {
		t.Errorf("placement after retry %v", on)
	}
	if st.BytesMoved != 8*memsim.SmallPage || len(st.Moved) != 1 {
		t.Errorf("moved %d bytes, ranges %v", st.BytesMoved, st.Moved)
	}
	if s.Reserved(memsim.TierFast) != 0 {
		t.Error("staging reservation leaked")
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestFaultStagingReserveWalksLadder(t *testing.T) {
	// The first staging reservation fails; the ladder's halved retry
	// succeeds, and the failure is typed as a staging fault.
	s := testSystem(t)
	base, err := s.Alloc(4*memsim.SmallPage, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(faultinject.New(faultinject.Schedule{
		Faults: []faultinject.Fault{{Op: faultinject.OpReserve, Nth: 1, Err: memsim.ErrNoCapacity}},
	}))
	e := &ATMemEngine{StagingBytes: 4 * memsim.SmallPage}
	st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: 4 * memsim.SmallPage}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.RegionsRetried != 1 {
		t.Fatalf("retried=%d, want 1 (outcomes %+v)", st.RegionsRetried, st.Outcomes)
	}
	if on := s.BytesOnTier(base, 4*memsim.SmallPage); on[memsim.TierFast] != 4*memsim.SmallPage {
		t.Errorf("placement %v", on)
	}
}

func TestFaultPersistentReserveSkipsRegion(t *testing.T) {
	// Every staging reservation fails: the ladder bottoms out at one
	// small page and the region is skipped with a typed error chain.
	s := testSystem(t)
	base, err := s.Alloc(4*memsim.SmallPage, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(faultinject.New(faultinject.Schedule{
		Faults: []faultinject.Fault{{Op: faultinject.OpReserve, Prob: 1}},
	}))
	e := &ATMemEngine{StagingBytes: 8 * memsim.SmallPage}
	st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: 4 * memsim.SmallPage}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.RegionsSkipped != 1 || st.BytesMoved != 0 {
		t.Fatalf("skipped=%d moved=%d (outcomes %+v)", st.RegionsSkipped, st.BytesMoved, st.Outcomes)
	}
	ferr := st.Outcomes[0].Err
	if !errors.Is(ferr, ErrStaging) || !errors.Is(ferr, faultinject.ErrInjected) {
		t.Errorf("skip error %v lacks ErrStaging/ErrInjected", ferr)
	}
	if on := s.BytesOnTier(base, 4*memsim.SmallPage); on[memsim.TierSlow] != 4*memsim.SmallPage {
		t.Errorf("placement changed despite skip: %v", on)
	}
	if s.Reserved(memsim.TierFast) != 0 {
		t.Error("staging reservation leaked")
	}
}

func TestFaultRollbackRestoresMixedPlacement(t *testing.T) {
	// A region that already has pages on the target tier must roll back
	// to exactly that mixed placement, not to all-source.
	s := testSystem(t)
	base, err := s.Alloc(8*memsim.SmallPage, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Retier(base+2*memsim.SmallPage, 2*memsim.SmallPage, memsim.TierFast); err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(faultinject.New(faultinject.Schedule{
		Faults: []faultinject.Fault{{Op: faultinject.OpRetier, Prob: 1}},
	}))
	e := &ATMemEngine{StagingBytes: memsim.SmallPage}
	st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: 8 * memsim.SmallPage}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.RegionsSkipped != 1 {
		t.Fatalf("outcomes %+v", st.Outcomes)
	}
	on := s.BytesOnTier(base, 8*memsim.SmallPage)
	if on[memsim.TierFast] != 2*memsim.SmallPage || on[memsim.TierSlow] != 6*memsim.SmallPage {
		t.Errorf("mixed placement not restored: %v", on)
	}
	if err := s.CheckConsistency(); err != nil {
		t.Error(err)
	}
}

func TestFaultSplinterSkipsUnalignedRegion(t *testing.T) {
	// Boundary huge-page splits are a fault point too: an unaligned
	// region whose splinters always fail must be skipped cleanly.
	s := testSystem(t)
	base, err := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(faultinject.New(faultinject.Schedule{
		Faults: []faultinject.Fault{{Op: faultinject.OpSplinter, Prob: 1}},
	}))
	e := &ATMemEngine{}
	st, err := e.Migrate(context.Background(), s, []Region{{Base: base + memsim.HugePage/2, Size: memsim.HugePage}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.RegionsSkipped != 1 || st.BytesMoved != 0 {
		t.Fatalf("outcomes %+v", st.Outcomes)
	}
	if !errors.Is(st.Outcomes[0].Err, faultinject.ErrInjected) {
		t.Errorf("skip error %v not injected", st.Outcomes[0].Err)
	}
	if huge, total := s.PageTable().HugePages(base, 4*memsim.HugePage); huge != total {
		t.Errorf("failed splinter still split pages: %d/%d huge", huge, total)
	}
}

func TestFaultMbindRetierRetriesOnce(t *testing.T) {
	s := testSystem(t)
	base, err := s.Alloc(memsim.HugePage, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaultHook(faultinject.New(faultinject.Schedule{
		Faults: []faultinject.Fault{{Op: faultinject.OpRetier, Nth: 1}},
	}))
	e := &MbindEngine{}
	st, err := e.Migrate(context.Background(), s, []Region{{Base: base, Size: memsim.HugePage}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.RegionsRetried != 1 || st.Outcomes[0].Attempts != 2 {
		t.Fatalf("outcomes %+v", st.Outcomes)
	}
	if on := s.BytesOnTier(base, memsim.HugePage); on[memsim.TierFast] != memsim.HugePage {
		t.Errorf("placement %v", on)
	}
}

func TestFaultPlanContinuesPastSkippedRegion(t *testing.T) {
	// A region that cannot fit is skipped; the rest of the plan still
	// migrates, and Moved lists exactly the committed ranges.
	p := memsim.NVMDRAMParams()
	p.Tiers[memsim.TierFast].CapacityBytes = 1 * memsim.MiB
	for _, e := range engines() {
		s := memsim.NewSystem(p)
		big, err := s.Alloc(4*memsim.MiB, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		small, err := s.Alloc(256*memsim.KiB, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.Migrate(context.Background(), s, []Region{
			{Base: big, Size: 4 * memsim.MiB},
			{Base: small, Size: 256 * memsim.KiB},
		}, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		if st.RegionsSkipped != 1 || st.RegionsMigrated != 1 {
			t.Fatalf("%s: skipped=%d migrated=%d", e.Name(), st.RegionsSkipped, st.RegionsMigrated)
		}
		if st.BytesMoved != 256*memsim.KiB {
			t.Errorf("%s: moved %d", e.Name(), st.BytesMoved)
		}
		if len(st.Moved) != 1 || st.Moved[0].Base != small {
			t.Errorf("%s: moved ranges %v", e.Name(), st.Moved)
		}
		if on := s.BytesOnTier(small, 256*memsim.KiB); on[memsim.TierFast] != 256*memsim.KiB {
			t.Errorf("%s: small region placement %v", e.Name(), on)
		}
		if s.Reserved(memsim.TierFast) != 0 {
			t.Errorf("%s: reservation leak", e.Name())
		}
		if err := s.CheckConsistency(); err != nil {
			t.Errorf("%s: %v", e.Name(), err)
		}
	}
}

func TestFaultEmptyScheduleIsBitIdentical(t *testing.T) {
	// An attached injector with an empty schedule must produce Stats
	// bit-identical to a run with no hook at all.
	run := func(hook bool) Stats {
		s := testSystem(t)
		base, err := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		if hook {
			s.SetFaultHook(faultinject.New(faultinject.Schedule{}))
		}
		st, err := (&ATMemEngine{}).Migrate(context.Background(), s, []Region{
			{Base: base + memsim.HugePage/2, Size: 2 * memsim.HugePage},
		}, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(false), run(true)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("stats diverge:\nno hook: %+v\nempty schedule: %+v", a, b)
	}
}
