package migrate

import (
	"testing"
	"testing/quick"

	"atmem/internal/memsim"
)

func testSystem(t *testing.T) *memsim.System {
	if t != nil {
		t.Helper()
	}
	p := memsim.NVMDRAMParams()
	p.Tiers[memsim.TierFast].CapacityBytes = 16 * memsim.MiB
	p.Tiers[memsim.TierSlow].CapacityBytes = 64 * memsim.MiB
	return memsim.NewSystem(p)
}

func engines() []Engine {
	return []Engine{&ATMemEngine{}, &MbindEngine{}}
}

func TestMigrationMovesPages(t *testing.T) {
	for _, e := range engines() {
		s := testSystem(t)
		base, err := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.Migrate(s, []Region{{Base: base, Size: 2 * memsim.HugePage}}, memsim.TierFast)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if st.BytesMoved != 2*memsim.HugePage {
			t.Errorf("%s: moved %d", e.Name(), st.BytesMoved)
		}
		if st.Seconds <= 0 {
			t.Errorf("%s: no time charged", e.Name())
		}
		on := s.BytesOnTier(base, 4*memsim.HugePage)
		if on[memsim.TierFast] != 2*memsim.HugePage || on[memsim.TierSlow] != 2*memsim.HugePage {
			t.Errorf("%s: placement %v", e.Name(), on)
		}
	}
}

func TestMigrationIdempotent(t *testing.T) {
	for _, e := range engines() {
		s := testSystem(t)
		base, _ := s.Alloc(memsim.HugePage, memsim.TierSlow)
		r := []Region{{Base: base, Size: memsim.HugePage}}
		if _, err := e.Migrate(s, r, memsim.TierFast); err != nil {
			t.Fatal(err)
		}
		st, err := e.Migrate(s, r, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		if st.BytesMoved != 0 {
			t.Errorf("%s: re-migration moved %d bytes", e.Name(), st.BytesMoved)
		}
	}
}

func TestATMemPreservesInteriorHugePages(t *testing.T) {
	s := testSystem(t)
	base, _ := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
	e := &ATMemEngine{}
	// Migrate a region covering huge pages 1 and 2 exactly.
	if _, err := e.Migrate(s, []Region{{Base: base + memsim.HugePage, Size: 2 * memsim.HugePage}}, memsim.TierFast); err != nil {
		t.Fatal(err)
	}
	huge, total := s.PageTable().HugePages(base, 4*memsim.HugePage)
	if huge != total {
		t.Errorf("aligned ATMem migration splintered pages: %d/%d huge", huge, total)
	}
}

func TestATMemSplitsOnlyBoundaryHugePages(t *testing.T) {
	s := testSystem(t)
	base, _ := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
	e := &ATMemEngine{}
	// Region starts halfway into huge page 0 and ends halfway into
	// huge page 2: pages 0 and 2 split, page 1 stays huge.
	st, err := e.Migrate(s, []Region{{
		Base: base + memsim.HugePage/2,
		Size: 2 * memsim.HugePage,
	}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.HugePagesSplit != 2 {
		t.Errorf("split %d huge pages, want 2", st.HugePagesSplit)
	}
	if s.PageTable().Translate(base).Huge {
		t.Error("leading boundary page still huge")
	}
	if !s.PageTable().Translate(base + memsim.HugePage).Huge {
		t.Error("interior page splintered")
	}
	if s.PageTable().Translate(base + 2*memsim.HugePage).Huge {
		t.Error("trailing boundary page still huge")
	}
	if !s.PageTable().Translate(base + 3*memsim.HugePage).Huge {
		t.Error("untouched page splintered")
	}
}

func TestMbindSplintersEverything(t *testing.T) {
	s := testSystem(t)
	base, _ := s.Alloc(4*memsim.HugePage, memsim.TierSlow)
	e := &MbindEngine{}
	st, err := e.Migrate(s, []Region{{Base: base, Size: 2 * memsim.HugePage}}, memsim.TierFast)
	if err != nil {
		t.Fatal(err)
	}
	if st.HugePagesSplit != 2 {
		t.Errorf("split %d, want 2", st.HugePagesSplit)
	}
	if s.PageTable().Translate(base).Huge || s.PageTable().Translate(base+memsim.HugePage).Huge {
		t.Error("mbind left moved huge pages intact")
	}
	if !s.PageTable().Translate(base + 2*memsim.HugePage).Huge {
		t.Error("mbind splintered pages outside the moved range")
	}
	if st.TLBShootdowns == 0 {
		t.Error("mbind reported no shootdowns")
	}
}

func TestATMemFasterThanMbind(t *testing.T) {
	// The headline claim of §7.3: the multi-stage multi-threaded
	// migration beats the system service on both testbed parameter
	// sets.
	for _, params := range []memsim.SystemParams{memsim.NVMDRAMParams(), memsim.MCDRAMDRAMParams()} {
		s1 := memsim.NewSystem(params)
		base1, err := s1.Alloc(4*memsim.MiB, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		at, err := (&ATMemEngine{}).Migrate(s1, []Region{{Base: base1, Size: 4 * memsim.MiB}}, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		s2 := memsim.NewSystem(params)
		base2, err := s2.Alloc(4*memsim.MiB, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := (&MbindEngine{}).Migrate(s2, []Region{{Base: base2, Size: 4 * memsim.MiB}}, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		ratio := mb.Seconds / at.Seconds
		if ratio < 1.3 {
			t.Errorf("%s: mbind/atmem = %.2f, want >= 1.3 (paper: 1.3x-8.2x)", params.Name, ratio)
		}
		if ratio > 12 {
			t.Errorf("%s: mbind/atmem = %.2f suspiciously high", params.Name, ratio)
		}
	}
}

func TestStagingBufferRespectsCapacity(t *testing.T) {
	p := memsim.NVMDRAMParams()
	// Fast tier barely bigger than the region: staging must slice.
	p.Tiers[memsim.TierFast].CapacityBytes = 5 * memsim.MiB
	s := memsim.NewSystem(p)
	base, err := s.Alloc(4*memsim.MiB, memsim.TierSlow)
	if err != nil {
		t.Fatal(err)
	}
	e := &ATMemEngine{StagingBytes: 512 * memsim.KiB}
	if _, err := e.Migrate(s, []Region{{Base: base, Size: 4 * memsim.MiB}}, memsim.TierFast); err != nil {
		t.Fatal(err)
	}
	if got := s.BytesOnTier(base, 4*memsim.MiB)[memsim.TierFast]; got != 4*memsim.MiB {
		t.Errorf("only %d bytes migrated", got)
	}
	// All staging reservations must have been released.
	if used := s.Used(memsim.TierFast); used != 4*memsim.MiB {
		t.Errorf("fast tier used %d, staging leak?", used)
	}
}

func TestMigrationFailsWhenTargetFull(t *testing.T) {
	p := memsim.NVMDRAMParams()
	p.Tiers[memsim.TierFast].CapacityBytes = 1 * memsim.MiB
	for _, e := range engines() {
		s := memsim.NewSystem(p)
		base, err := s.Alloc(8*memsim.MiB, memsim.TierSlow)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Migrate(s, []Region{{Base: base, Size: 8 * memsim.MiB}}, memsim.TierFast); err == nil {
			t.Errorf("%s: over-capacity migration accepted", e.Name())
		}
	}
}

func TestUnalignedRegionsAreExpanded(t *testing.T) {
	for _, e := range engines() {
		s := testSystem(t)
		base, _ := s.Alloc(memsim.HugePage, memsim.TierSlow)
		st, err := e.Migrate(s, []Region{{Base: base + 100, Size: 50}}, memsim.TierFast)
		if err != nil {
			t.Fatal(err)
		}
		if st.BytesMoved != memsim.SmallPage {
			t.Errorf("%s: moved %d, want one page", e.Name(), st.BytesMoved)
		}
		if tier, _ := s.TierOf(base); tier != memsim.TierFast {
			t.Errorf("%s: containing page not moved", e.Name())
		}
	}
}

// Property: after migrating random page-aligned subranges, every page of
// the object is still mapped, and bytes-on-tier accounting is conserved.
func TestMigrationPreservesMappingTotality(t *testing.T) {
	check := func(startPage, pages uint8, engineSel bool) bool {
		const objPages = 64
		s := testSystem(nil)
		base, err := s.Alloc(objPages*memsim.SmallPage, memsim.TierSlow)
		if err != nil {
			return false
		}
		sp := uint64(startPage) % objPages
		np := uint64(pages)%(objPages-sp) + 1
		var e Engine = &ATMemEngine{}
		if engineSel {
			e = &MbindEngine{}
		}
		if _, err := e.Migrate(s, []Region{{
			Base: base + sp*memsim.SmallPage,
			Size: np * memsim.SmallPage,
		}}, memsim.TierFast); err != nil {
			return false
		}
		on := s.BytesOnTier(base, objPages*memsim.SmallPage)
		return on[memsim.TierFast]+on[memsim.TierSlow] == objPages*memsim.SmallPage &&
			on[memsim.TierFast] == np*memsim.SmallPage
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineNames(t *testing.T) {
	if (&ATMemEngine{}).Name() != "atmem" || (&MbindEngine{}).Name() != "mbind" {
		t.Error("unexpected engine names")
	}
}
