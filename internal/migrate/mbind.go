package migrate

import (
	"context"
	"fmt"

	"atmem/internal/memsim"
)

// MbindEngine models the system NUMA migration service (`mbind` +
// `migrate_pages`) that the paper uses as the migration baseline (§2.3,
// §7.3): a single-threaded, blocking, page-by-page mechanism. Every 4 KiB
// page pays kernel bookkeeping (rmap walk, page (un)mapping, refcount
// dance), the copy runs at single-thread bandwidth, transparent huge
// pages touched by the move are splintered, and each batch of unmapped
// pages triggers an inter-processor TLB shootdown.
type MbindEngine struct {
	// ShootdownBatchPages is how many pages the kernel unmaps between
	// TLB shootdown IPIs. 0 means 512 (one PMD's worth).
	ShootdownBatchPages int
	// Retry shapes the per-region retry ladder; the zero value is the
	// historical one-retry (two attempts) behaviour.
	Retry RetryPolicy
	// Sink, when non-nil, observes per-region attempt/rollback/outcome
	// events (see SetEventSink).
	Sink EventSink

	// target is the tier of the Migrate call in progress, stamped onto
	// every emitted event.
	target memsim.Tier
}

// Name implements Engine.
func (e *MbindEngine) Name() string { return "mbind" }

// SetEventSink implements Engine.
func (e *MbindEngine) SetEventSink(s EventSink) { e.Sink = s }

// emit sends ev to the sink, if any, stamped with the migration target.
func (e *MbindEngine) emit(ev Event) {
	if e.Sink != nil {
		ev.Target = e.target
		e.Sink(ev)
	}
}

// Migrate implements Engine. The kernel service is transactional per
// region by construction: the whole-region retier validates capacity
// before touching any page, so a failure leaves the region exactly where
// it was. Its degradation ladder has no staging buffer to shrink — a
// failed region gets one syscall-style retry and is then skipped, with
// the rest of the plan continuing. Huge pages splintered before a failed
// retier stay splintered, as they would under a real aborted
// migrate_pages.
func (e *MbindEngine) Migrate(ctx context.Context, sys *memsim.System, regions []Region, target memsim.Tier) (Stats, error) {
	e.target = target
	p := &sys.P
	batch := e.ShootdownBatchPages
	if batch <= 0 {
		batch = 512
	}
	st := Stats{Engine: e.Name()}
	for _, raw := range regions {
		r := alignRegion(raw)
		st.Regions++
		st.BytesRequested += r.Size
		if err := ctx.Err(); err != nil {
			st.recordOutcome(RegionOutcome{Region: r, Outcome: OutcomeSkipped, Err: err})
			e.emit(Event{Kind: EventSkipped, Region: r, Seconds: st.Seconds, Err: err})
			continue
		}
		moving := movingBytes(sys, r, target)
		if moving == 0 {
			st.recordOutcome(RegionOutcome{Region: r, Outcome: OutcomeMigrated})
			e.emit(Event{Kind: EventMigrated, Region: r, Seconds: st.Seconds})
			continue
		}
		src := target.Other()

		out := RegionOutcome{Region: r}
		var ferr error
		for {
			out.Attempts++
			e.emit(Event{Kind: EventAttempt, Region: r, Attempt: out.Attempts,
				Seconds: st.Seconds})
			if ferr = e.attemptRegion(sys, r, target, &st); ferr == nil {
				break
			}
			// The whole-region retier validates before touching pages, so
			// a failed attempt left the region in place (kernel-atomic).
			e.emit(Event{Kind: EventRollback, Region: r, Attempt: out.Attempts,
				Seconds: st.Seconds, Err: ferr})
			if e.Retry.Exhausted(out.Attempts, 2) {
				break
			}
		}
		if ferr != nil {
			out.Outcome = OutcomeSkipped
			out.Err = ferr
			st.recordOutcome(out)
			e.emit(Event{Kind: EventSkipped, Region: r, Attempt: out.Attempts,
				Seconds: st.Seconds, Err: ferr})
			continue
		}
		kind := EventMigrated
		if out.Attempts > 1 {
			out.Outcome = OutcomeRetried
			kind = EventRetried
		}
		st.recordOutcome(out)
		e.emit(Event{Kind: kind, Region: r, Attempt: out.Attempts,
			Seconds: st.Seconds})

		pages := int(moving / memsim.SmallPage)
		st.PagesMoved += pages
		st.BytesMoved += moving
		st.Moved = append(st.Moved, r)

		// Per-page syscall/bookkeeping cost, single-threaded copy.
		st.Seconds += float64(pages) * p.SyscallNSPerPage * 1e-9
		st.Seconds += copySecondsSingle(p, moving, src, target)

		shootdowns := (pages + batch - 1) / batch
		st.TLBShootdowns += shootdowns
		st.Seconds += float64(shootdowns) * p.TLBShootdownNS * 1e-9
	}
	return st, nil
}

// attemptRegion is one kernel-style migration attempt: splinter every
// huge mapping the range touches (the kernel path cannot migrate a THP
// as a unit), then retier the whole region atomically. The kernel
// service has no staging copy, so the whole splinter+retier runs under
// one region-wide quiesce gate — the longer write-block window is part
// of why the paper's application-level mechanism wins.
func (e *MbindEngine) attemptRegion(sys *memsim.System, r Region, target memsim.Tier, st *Stats) error {
	g := sys.QuiesceBegin(r.Base, r.Size)
	defer sys.QuiesceEnd(g)
	hugeBefore, _ := sys.PageTable().HugePages(r.Base, r.Size)
	if err := sys.Splinter(r.Base, r.Size); err != nil {
		return err
	}
	st.HugePagesSplit += hugeBefore / memsim.PagesPerHuge
	if err := sys.Retier(r.Base, r.Size, target); err != nil {
		return fmt.Errorf("migrate/mbind: %w", err)
	}
	return nil
}

// copySecondsSingle is the single-threaded kernel copy: one thread's
// memcpy bandwidth, further bounded by the devices (and channel sharing).
func copySecondsSingle(p *memsim.SystemParams, bytes uint64, src, dst memsim.Tier) float64 {
	if bytes == 0 {
		return 0
	}
	b := float64(bytes)
	single := p.CopySingleThreadGBs * 1e9
	if p.SharedChannels && src != dst {
		bus := b/(p.Tiers[src].ReadBWGBs*1e9) + b/(p.Tiers[dst].WriteBWGBs*1e9)
		th := b / single
		if th > bus {
			return th
		}
		return bus
	}
	bw := single
	if r := p.Tiers[src].ReadBWGBs * 1e9; r < bw {
		bw = r
	}
	if w := p.Tiers[dst].WriteBWGBs * 1e9; w < bw {
		bw = w
	}
	return b / bw
}
