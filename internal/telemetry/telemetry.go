// Package telemetry is the runtime's low-overhead event/span recorder:
// the observability layer of the profile→analyze→migrate decision loop.
//
// Every event is stamped on two clocks at once:
//
//   - the simulated clock — memsim cycles converted to seconds and
//     accumulated by the runtime across phases and migrations, the
//     timeline the paper's figures live on;
//   - the host clock — wall nanoseconds since the recorder was created,
//     which exposes the cost of the un-simulated control plane (the
//     analyzer stages run in host time only).
//
// Events append to per-shard buffers with no locks on the emission path:
// shard 0 is the runtime's control plane (phases, profiling windows,
// analyzer stages, migration, faults) and shards 1..N belong to the
// simulated threads, one writer each. A nil *Recorder is the disabled
// recorder: every method is nil-safe and returns immediately, so wiring
// telemetry through a layer costs one pointer test when it is off.
//
// Exporters (see export.go) render the merged event stream as Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing), as a CSV
// timeline, and as a human-readable text or markdown timeline
// (timeline.go).
package telemetry

import (
	"sort"
	"sync/atomic"
	"time"
)

// Chrome trace-event phase codes used by the recorder (the "ph" field of
// the trace-event format).
const (
	// PhaseBegin opens a span on its thread track.
	PhaseBegin = 'B'
	// PhaseEnd closes the innermost open span of its thread track.
	PhaseEnd = 'E'
	// PhaseInstant is a zero-duration point event.
	PhaseInstant = 'i'
	// PhaseCounter carries named numeric values sampled at a point in
	// time (rendered as counter tracks by Perfetto).
	PhaseCounter = 'C'
)

// Args carries an event's key/value payload. Exporters emit keys in
// sorted order, so equal Args always serialize identically. Values
// should be strings, bools, or numeric types.
type Args map[string]any

// Event is one recorded telemetry event.
type Event struct {
	// Seq orders events within one shard (monotonic per shard).
	Seq uint64
	// TID is the emitting track: 0 is the control plane, 1..N are
	// simulated threads.
	TID int
	// Cat is the event category ("phase", "profile", "analyze",
	// "migrate", "fault", "metric").
	Cat string
	// Name labels the event within its category.
	Name string
	// Ph is the Chrome trace phase code (PhaseBegin et al.).
	Ph byte
	// SimNS is the simulated-clock stamp in nanoseconds.
	SimNS uint64
	// HostNS is the host-clock stamp in nanoseconds since the recorder
	// was created.
	HostNS int64
	// Args is the optional payload.
	Args Args
}

// shard is one single-writer append buffer.
type shard struct {
	seq    uint64
	events []Event
}

// Recorder collects telemetry events. Create one with NewRecorder and
// hand it to the runtime via Options.Recorder; a nil *Recorder disables
// recording everywhere.
//
// Emission methods are safe for one concurrent writer per shard (TID);
// Events and the exporters must not run concurrently with emission —
// the runtime's phase structure guarantees this.
type Recorder struct {
	start   time.Time
	hostNow func() int64
	simNow  atomic.Pointer[func() uint64]
	shards  []*shard
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithHostClock replaces the host-clock source (nanoseconds since
// recorder start) — used by tests that need deterministic host stamps.
func WithHostClock(now func() int64) Option {
	return func(r *Recorder) { r.hostNow = now }
}

// NewRecorder builds an enabled recorder with a control-plane shard.
// EnsureThreads grows the per-thread shards.
func NewRecorder(opts ...Option) *Recorder {
	r := &Recorder{start: time.Now()}
	r.hostNow = func() int64 { return int64(time.Since(r.start)) }
	r.shards = []*shard{{}}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Enabled reports whether the recorder collects events (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SetSimClock installs the simulated-clock source (nanoseconds of
// accumulated simulated time). Without one, events carry SimNS 0. The
// source must be safe for concurrent calls.
func (r *Recorder) SetSimClock(now func() uint64) {
	if r == nil {
		return
	}
	r.simNow.Store(&now)
}

// EnsureThreads guarantees shards for TIDs 0..n exist. Not safe
// concurrently with emission; the runtime calls it before any phase
// runs.
func (r *Recorder) EnsureThreads(n int) {
	if r == nil {
		return
	}
	for len(r.shards) <= n {
		r.shards = append(r.shards, &shard{})
	}
}

// sim returns the current simulated-clock stamp.
func (r *Recorder) sim() uint64 {
	if f := r.simNow.Load(); f != nil {
		return (*f)()
	}
	return 0
}

// emit appends one event to the tid's shard.
func (r *Recorder) emit(tid int, ph byte, cat, name string, simNS uint64, args Args) {
	if tid < 0 || tid >= len(r.shards) {
		tid = 0
	}
	s := r.shards[tid]
	s.seq++
	s.events = append(s.events, Event{
		Seq:    s.seq,
		TID:    tid,
		Cat:    cat,
		Name:   name,
		Ph:     ph,
		SimNS:  simNS,
		HostNS: r.hostNow(),
		Args:   args,
	})
}

// Begin opens a span on tid's track at the current clocks.
func (r *Recorder) Begin(tid int, cat, name string, args Args) {
	if r == nil {
		return
	}
	r.emit(tid, PhaseBegin, cat, name, r.sim(), args)
}

// End closes the innermost open span of tid's track.
func (r *Recorder) End(tid int, cat, name string, args Args) {
	if r == nil {
		return
	}
	r.emit(tid, PhaseEnd, cat, name, r.sim(), args)
}

// Instant records a point event at the current clocks.
func (r *Recorder) Instant(tid int, cat, name string, args Args) {
	if r == nil {
		return
	}
	r.emit(tid, PhaseInstant, cat, name, r.sim(), args)
}

// InstantAt records a point event at an explicit simulated-clock stamp —
// used by the migration adapter, whose engine models its own elapsed
// seconds within the Optimize span.
func (r *Recorder) InstantAt(tid int, simNS uint64, cat, name string, args Args) {
	if r == nil {
		return
	}
	r.emit(tid, PhaseInstant, cat, name, simNS, args)
}

// Counter records named numeric values sampled at the current clocks.
func (r *Recorder) Counter(tid int, cat, name string, values Args) {
	if r == nil {
		return
	}
	r.emit(tid, PhaseCounter, cat, name, r.sim(), values)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, s := range r.shards {
		n += len(s.events)
	}
	return n
}

// Events merges every shard into one stream ordered by (SimNS, TID,
// Seq). Within one track the order equals emission order (shard
// sequence numbers break simulated-clock ties), so span nesting is
// preserved. The returned slice is a copy.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.Len())
	for _, s := range r.shards {
		out = append(out, s.events...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].SimNS != out[j].SimNS {
			return out[i].SimNS < out[j].SimNS
		}
		if out[i].TID != out[j].TID {
			return out[i].TID < out[j].TID
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// CountEvents returns how many events match the category and name
// (empty strings match everything) — the helper the trace-vs-report
// reconciliation tests use.
func (r *Recorder) CountEvents(cat, name string) int {
	if r == nil {
		return 0
	}
	n := 0
	for _, s := range r.shards {
		for i := range s.events {
			if (cat == "" || s.events[i].Cat == cat) &&
				(name == "" || s.events[i].Name == name) {
				n++
			}
		}
	}
	return n
}
