package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file renders recorded events into interchange formats:
//
//   - Chrome trace-event JSON ("JSON Array Format" with metadata), which
//     Perfetto and chrome://tracing load directly. The time axis (ts) is
//     the SIMULATED clock in microseconds; every event carries its host
//     stamp in args["host_us"], so both clocks survive the round trip.
//   - a flat CSV timeline with both clocks in explicit columns.
//
// Output is deterministic: events are pre-sorted by Recorder.Events and
// args serialize in sorted key order, so identical runs produce
// byte-identical files (the golden tests rely on this).

// chromeEvent is one trace-event in the Chrome/Perfetto JSON schema.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// tracePID is the single simulated process all tracks belong to.
const tracePID = 1

// hostArgKey carries the host-clock stamp through the Chrome format,
// whose ts axis holds the simulated clock.
const hostArgKey = "host_us"

// WriteChromeTrace renders events as Perfetto-loadable trace JSON. The
// ts axis is the simulated clock in microseconds.
func WriteChromeTrace(w io.Writer, events []Event) error {
	ct := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]any{"clock": "simulated (ts) + host (args.host_us)"},
		TraceEvents:     make([]chromeEvent, 0, len(events)+2),
	}
	ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: tracePID,
		Args: map[string]any{"name": "atmem-sim"},
	})
	tids := map[int]bool{}
	for i := range events {
		tids[events[i].TID] = true
	}
	order := make([]int, 0, len(tids))
	for tid := range tids {
		order = append(order, tid)
	}
	sort.Ints(order)
	for _, tid := range order {
		name := "control"
		if tid > 0 {
			name = fmt.Sprintf("thread-%d", tid)
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	for i := range events {
		e := &events[i]
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(rune(e.Ph)),
			TS:   float64(e.SimNS) / 1e3,
			PID:  tracePID,
			TID:  e.TID,
		}
		if e.Ph == PhaseInstant {
			ce.S = "t" // thread-scoped instant
		}
		ce.Args = make(map[string]any, len(e.Args)+1)
		for k, v := range e.Args {
			ce.Args[k] = v
		}
		ce.Args[hostArgKey] = float64(e.HostNS) / 1e3
		ct.TraceEvents = append(ct.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// ReadChromeTrace parses a trace written by WriteChromeTrace back into
// events (metadata records are dropped). Seq is assigned from file
// order.
func ReadChromeTrace(rd io.Reader) ([]Event, error) {
	var ct chromeTrace
	if err := json.NewDecoder(rd).Decode(&ct); err != nil {
		return nil, fmt.Errorf("telemetry: parse trace: %w", err)
	}
	var out []Event
	for i := range ct.TraceEvents {
		ce := &ct.TraceEvents[i]
		if ce.Ph == "" || ce.Ph == "M" {
			continue
		}
		e := Event{
			Seq:   uint64(len(out) + 1),
			TID:   ce.TID,
			Cat:   ce.Cat,
			Name:  ce.Name,
			Ph:    ce.Ph[0],
			SimNS: uint64(ce.TS * 1e3),
		}
		if len(ce.Args) > 0 {
			e.Args = make(Args, len(ce.Args))
			for k, v := range ce.Args {
				if k == hostArgKey {
					if us, ok := v.(float64); ok {
						e.HostNS = int64(us * 1e3)
					}
					continue
				}
				e.Args[k] = v
			}
			if len(e.Args) == 0 {
				e.Args = nil
			}
		}
		out = append(out, e)
	}
	return out, nil
}

// csvHeader is the column set of the CSV timeline.
const csvHeader = "seq,tid,ph,cat,name,sim_us,host_us,args"

// WriteCSV renders events as a flat CSV timeline with both clocks as
// explicit columns. Args flatten to "k=v;k=v" with sorted keys; cells
// never contain commas (offending characters are replaced), so no
// quoting is needed.
func WriteCSV(w io.Writer, events []Event) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for i := range events {
		e := &events[i]
		_, err := fmt.Fprintf(w, "%d,%d,%c,%s,%s,%s,%s,%s\n",
			i+1, e.TID, e.Ph, csvSafe(e.Cat), csvSafe(e.Name),
			formatUS(float64(e.SimNS)/1e3), formatUS(float64(e.HostNS)/1e3),
			flattenArgs(e.Args))
		if err != nil {
			return err
		}
	}
	return nil
}

// formatUS prints a microsecond stamp with fixed sub-microsecond
// precision (stable across value magnitudes, unlike %g).
func formatUS(us float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.3f", us), "0"), ".")
}

// flattenArgs renders args as "k=v;k=v" in sorted key order.
func flattenArgs(a Args) string {
	if len(a) == 0 {
		return ""
	}
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(csvSafe(k))
		b.WriteByte('=')
		b.WriteString(csvSafe(formatArg(a[k])))
	}
	return b.String()
}

// formatArg prints one arg value deterministically.
func formatArg(v any) string {
	switch x := v.(type) {
	case float64:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", x), "0"), ".")
	case float32:
		return formatArg(float64(x))
	default:
		return fmt.Sprintf("%v", v)
	}
}

// csvSafe keeps cells free of CSV metacharacters.
func csvSafe(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	s = strings.ReplaceAll(s, "\n", " ")
	s = strings.ReplaceAll(s, "\"", "'")
	return s
}
