package telemetry

import (
	"testing"
)

// scriptedRecorder builds a recorder with deterministic clocks: the host
// clock ticks 1000 ns per event, the sim clock is driven manually.
func scriptedRecorder() (*Recorder, *uint64) {
	var host int64
	r := NewRecorder(WithHostClock(func() int64 {
		host += 1000
		return host
	}))
	sim := new(uint64)
	r.SetSimClock(func() uint64 { return *sim })
	return r, sim
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.SetSimClock(func() uint64 { return 1 })
	r.EnsureThreads(8)
	r.Begin(0, "phase", "p", nil)
	r.End(0, "phase", "p", nil)
	r.Instant(1, "fault", "Alloc", Args{"call": 1})
	r.InstantAt(0, 42, "migrate", "region-migrated", nil)
	r.Counter(0, "metric", "m", Args{"v": 1})
	if r.Len() != 0 || r.Events() != nil || r.CountEvents("", "") != 0 {
		t.Fatal("nil recorder recorded something")
	}
}

func TestRecorderOrdering(t *testing.T) {
	r, sim := scriptedRecorder()
	r.EnsureThreads(2)

	r.Begin(0, "phase", "iter0", nil)
	*sim = 5_000
	r.Instant(1, "kernel", "tick", nil)
	*sim = 10_000
	r.End(0, "phase", "iter0", Args{"wall_s": 1e-5})
	// Same sim stamp as the End: shard seq must keep emission order
	// within a track, and lower TIDs sort first across tracks.
	r.Instant(0, "metric", "snap", nil)

	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	wantNames := []string{"iter0", "tick", "iter0", "snap"}
	for i, want := range wantNames {
		if evs[i].Name != want {
			t.Fatalf("event %d = %q, want %q", i, evs[i].Name, want)
		}
	}
	if evs[0].SimNS != 0 || evs[1].SimNS != 5_000 || evs[2].SimNS != 10_000 {
		t.Fatalf("sim stamps wrong: %d %d %d", evs[0].SimNS, evs[1].SimNS, evs[2].SimNS)
	}
	if evs[0].HostNS == 0 || evs[0].HostNS >= evs[2].HostNS {
		t.Fatalf("host stamps not increasing: %d vs %d", evs[0].HostNS, evs[2].HostNS)
	}
	if got := r.CountEvents("phase", ""); got != 2 {
		t.Fatalf("CountEvents(phase) = %d, want 2", got)
	}
	if got := r.CountEvents("", "snap"); got != 1 {
		t.Fatalf("CountEvents(snap) = %d, want 1", got)
	}
}

func TestEnsureThreadsAndClamping(t *testing.T) {
	r, _ := scriptedRecorder()
	// TID beyond the shard range lands on the control track instead of
	// crashing.
	r.Instant(7, "kernel", "stray", nil)
	evs := r.Events()
	if len(evs) != 1 || evs[0].TID != 0 {
		t.Fatalf("out-of-range tid not clamped: %+v", evs)
	}
	r.EnsureThreads(3)
	r.Instant(3, "kernel", "ok", nil)
	if got := r.Events()[1].TID; got != 3 {
		t.Fatalf("tid 3 recorded as %d", got)
	}
}

func TestSpanNestingSurvivesSort(t *testing.T) {
	r, sim := scriptedRecorder()
	r.Begin(0, "optimize", "optimize", nil)
	r.Begin(0, "analyze", "rank", nil)
	r.End(0, "analyze", "rank", nil)
	r.Begin(0, "analyze", "promote", nil)
	r.End(0, "analyze", "promote", nil)
	*sim = 1_000
	r.End(0, "optimize", "optimize", nil)

	// B/E pairs must nest LIFO per track after the merge sort.
	depth := 0
	for _, e := range r.Events() {
		switch e.Ph {
		case PhaseBegin:
			depth++
		case PhaseEnd:
			depth--
			if depth < 0 {
				t.Fatalf("unbalanced End at %s/%s", e.Cat, e.Name)
			}
		}
	}
	if depth != 0 {
		t.Fatalf("unclosed spans: depth %d", depth)
	}
}

// BenchmarkDisabledRecorder measures the cost of telemetry calls on a
// nil recorder — the price every lifecycle point pays when telemetry is
// off. CI guards this next to the accessor benchmark; it must stay at a
// few nanoseconds per call.
func BenchmarkDisabledRecorder(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Begin(0, "phase", "p", nil)
		r.Instant(0, "migrate", "region-migrated", nil)
		r.End(0, "phase", "p", nil)
	}
}

// BenchmarkEnabledInstant sizes the hot cost of one recorded event.
func BenchmarkEnabledInstant(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Instant(0, "migrate", "region-migrated", nil)
	}
}
