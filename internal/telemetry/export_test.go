package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// scriptedEvents drives a recorder through one miniature
// profile→analyze→migrate cycle with fully deterministic clocks, the
// fixture behind the exporter golden files.
func scriptedEvents() []Event {
	r, sim := scriptedRecorder()
	r.EnsureThreads(2)

	r.Begin(0, "profile", "window", Args{"period": 64})
	r.Begin(0, "phase", "iter0", nil)
	*sim = 2_000_000
	r.End(0, "phase", "iter0", Args{"wall_s": 0.002})
	r.End(0, "profile", "window", Args{"samples_attributed": 128})
	r.Instant(0, "profile", "heat", Args{"object": "ranks", "hot_chunks": 3})

	r.Begin(0, "optimize", "optimize", nil)
	r.Begin(0, "analyze", "rank", nil)
	r.End(0, "analyze", "rank", Args{"objects": 2, "sampled_chunks": 5})
	r.InstantAt(0, 2_100_000, "migrate", "region-attempt",
		Args{"base": 65536, "bytes": 4096, "attempt": 1})
	r.InstantAt(0, 2_200_000, "migrate", "region-migrated",
		Args{"base": 65536, "bytes": 4096, "attempt": 1})
	r.Instant(0, "fault", "Reserve", Args{"call": 1, "rule": 0})
	*sim = 2_500_000
	r.End(0, "optimize", "optimize", Args{"bytes_moved": 4096, "regions_migrated": 1})

	r.Begin(0, "phase", "iter1", nil)
	*sim = 3_000_000
	r.Instant(1, "kernel", "tick", nil)
	r.End(0, "phase", "iter1", Args{"wall_s": 0.0005})
	r.Counter(0, "metric", "tier-occupancy", Args{"fast_mapped": 4096, "slow_mapped": 61440})
	return r.Events()
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden; diff the output or re-run with -update\ngot:\n%s", name, got)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, scriptedEvents()); err != nil {
		t.Fatal(err)
	}
	// The trace must be valid JSON with the Chrome trace shape before
	// it is compared byte-for-byte.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	checkGolden(t, "trace.golden.json", buf.Bytes())
}

func TestCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, scriptedEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden.csv", buf.Bytes())
}

func TestChromeTraceRoundTrip(t *testing.T) {
	events := scriptedEvents()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(back), len(events))
	}
	for i := range events {
		want, got := events[i], back[i]
		if got.TID != want.TID || got.Cat != want.Cat || got.Name != want.Name || got.Ph != want.Ph {
			t.Fatalf("event %d identity drifted: got %+v want %+v", i, got, want)
		}
		if got.SimNS != want.SimNS {
			t.Fatalf("event %d SimNS %d, want %d", i, got.SimNS, want.SimNS)
		}
		if got.HostNS != want.HostNS {
			t.Fatalf("event %d HostNS %d, want %d", i, got.HostNS, want.HostNS)
		}
	}
	// Span nesting must survive the round trip too.
	depth := map[int]int{}
	for _, e := range back {
		switch e.Ph {
		case PhaseBegin:
			depth[e.TID]++
		case PhaseEnd:
			depth[e.TID]--
			if depth[e.TID] < 0 {
				t.Fatalf("unbalanced End on tid %d at %s/%s", e.TID, e.Cat, e.Name)
			}
		}
	}
	for tid, d := range depth {
		if d != 0 {
			t.Fatalf("tid %d has %d unclosed spans after round trip", tid, d)
		}
	}
}

func TestTimelineRenders(t *testing.T) {
	events := scriptedEvents()
	var text, md bytes.Buffer
	if err := WriteTimelineText(&text, events); err != nil {
		t.Fatal(err)
	}
	if err := WriteTimelineMarkdown(&md, events); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"optimize/optimize", "migrate/region-migrated", "fault/Reserve"} {
		if !bytes.Contains(text.Bytes(), []byte(want)) {
			t.Errorf("text timeline missing %q", want)
		}
		if !bytes.Contains(md.Bytes(), []byte(want)) {
			t.Errorf("markdown timeline missing %q", want)
		}
	}
}
