package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// This file renders an event stream as a human-readable timeline — the
// backend of `atmem-report -timeline`. Spans print once, at their Begin,
// with simulated and host durations resolved from the matching End;
// instants and counters print in place. Indentation follows span
// nesting on the control track.

// timelineRow is one resolved display row.
type timelineRow struct {
	ev        *Event
	depth     int
	simDurNS  uint64
	hostDurNS int64
	span      bool
}

// resolveTimeline matches Begin/End pairs per track (LIFO, as the trace
// format requires) and flattens the stream into display rows.
func resolveTimeline(events []Event) []timelineRow {
	depth := map[int]int{}
	type open struct{ row int }
	stacks := map[int][]open{}
	var rows []timelineRow
	for i := range events {
		e := &events[i]
		switch e.Ph {
		case PhaseBegin:
			rows = append(rows, timelineRow{ev: e, depth: depth[e.TID], span: true})
			stacks[e.TID] = append(stacks[e.TID], open{row: len(rows) - 1})
			depth[e.TID]++
		case PhaseEnd:
			if st := stacks[e.TID]; len(st) > 0 {
				b := st[len(st)-1]
				stacks[e.TID] = st[:len(st)-1]
				depth[e.TID]--
				r := &rows[b.row]
				r.simDurNS = e.SimNS - r.ev.SimNS
				r.hostDurNS = e.HostNS - r.ev.HostNS
				// An End may carry result args; surface them on the row.
				if len(e.Args) > 0 && len(r.ev.Args) == 0 {
					r.ev = &Event{
						Seq: r.ev.Seq, TID: r.ev.TID, Cat: r.ev.Cat,
						Name: r.ev.Name, Ph: r.ev.Ph,
						SimNS: r.ev.SimNS, HostNS: r.ev.HostNS,
						Args: e.Args,
					}
				}
			}
		default:
			rows = append(rows, timelineRow{ev: e, depth: depth[e.TID]})
		}
	}
	return rows
}

// simSeconds formats a simulated-nanosecond quantity as seconds.
func simSeconds(ns uint64) string { return fmt.Sprintf("%.6fs", float64(ns)/1e9) }

// hostMS formats a host-nanosecond quantity as milliseconds.
func hostMS(ns int64) string { return fmt.Sprintf("%.3fms", float64(ns)/1e6) }

// WriteTimelineText renders the events as an aligned plain-text
// timeline on the simulated clock, with host durations bracketed.
func WriteTimelineText(w io.Writer, events []Event) error {
	if _, err := fmt.Fprintln(w, "== telemetry timeline (simulated clock; host durations in brackets) =="); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%14s  %14s  event\n", "sim-start", "sim-dur"); err != nil {
		return err
	}
	for _, r := range resolveTimeline(events) {
		dur := ""
		mark := "·"
		if r.span {
			dur = simSeconds(r.simDurNS)
			mark = "▶"
		} else if r.ev.Ph == PhaseCounter {
			mark = "#"
		}
		detail := flattenArgs(r.ev.Args)
		if detail != "" {
			detail = "  {" + detail + "}"
		}
		host := ""
		if r.span {
			host = fmt.Sprintf("  [%s]", hostMS(r.hostDurNS))
		}
		_, err := fmt.Fprintf(w, "%14s  %14s  %s%s %s/%s%s%s\n",
			simSeconds(r.ev.SimNS), dur,
			strings.Repeat("  ", r.depth), mark, r.ev.Cat, r.ev.Name,
			detail, host)
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteTimelineMarkdown renders the events as a GitHub-flavored
// markdown timeline table.
func WriteTimelineMarkdown(w io.Writer, events []Event) error {
	if _, err := fmt.Fprintf(w, "### Telemetry timeline (simulated clock)\n\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| sim-start | sim-dur | host-dur | event | details |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| --- | --- | --- | --- | --- |"); err != nil {
		return err
	}
	for _, r := range resolveTimeline(events) {
		dur, host := "", ""
		if r.span {
			dur = simSeconds(r.simDurNS)
			host = hostMS(r.hostDurNS)
		}
		name := strings.Repeat("&nbsp;&nbsp;", r.depth) + r.ev.Cat + "/" + r.ev.Name
		detail := strings.ReplaceAll(flattenArgs(r.ev.Args), "|", "\\|")
		_, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s |\n",
			simSeconds(r.ev.SimNS), dur, host, name, detail)
		if err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
