package harness

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"atmem"
	"atmem/apps"
	"atmem/internal/broker"
	"atmem/internal/faultinject"
	"atmem/internal/health"
	"atmem/internal/memsim"
	"atmem/internal/telemetry"
)

// This file implements the multi-tenant serving scenario: N runtime
// tenants share one broker-arbitrated fast tier while tenants arrive
// and depart over ~30 epoch rounds and one tenant suffers a
// persistent-fault + corruption storm mid-run. It is the end-to-end
// proof of the broker's isolation contract: the victim degrades and
// recovers, no non-victim's fast-access share degrades from its own
// pre-storm level once the storm starts, every post-warmup epoch stays
// inside its per-epoch phase-latency SLO, every tenant's results are
// bit-identical to its solo run, and admission never promises more
// than `fast capacity − quarantined`.
//
// The share bar is self-baselined: each non-victim's mean share over
// the storm-and-after rounds is compared against its own mean over its
// settled pre-storm rounds in the same run, not against its solo run.
// A solo baseline is the whole tier to yourself — a tenant whose floor
// is a fraction of capacity is not promised solo-level service while
// sharing, and how much surplus the arbiter can grant it legitimately
// varies with the co-tenants' interleaving. What the broker does
// promise is that a co-tenant's storm stays in the victim's fault
// domain: nobody else's established service level drops. The bar
// compares windowed means, not epoch-by-epoch values (chunk-alignment
// reshuffles the epoch trajectory), and is one-sided — gaining share
// when the storm shrinks the victim's appetite is headroom, not a
// violation. The solo runs still set the phase-latency SLOs and the
// bit-identical result CRCs.

// ServingTenant declares one tenant of the serving scenario.
type ServingTenant struct {
	// Spec is the broker admission spec. A zero SLOSeconds is derived
	// from the tenant's own solo baseline (1.25 × its slowest epoch).
	Spec atmem.TenantSpec
	// App is the kernel (must be deterministic: bfs, cc, sssp — not pr,
	// whose atomic float accumulation is interleaving-dependent).
	App string
	// ArriveRound is the 0-based round the tenant is admitted at.
	ArriveRound int
	// DepartRound, when non-zero, is the round the tenant departs
	// before (its runtime is Closed); zero means it stays to the end.
	DepartRound int
	// Victim marks the storm target.
	Victim bool
}

// ServingScenario configures one serving run.
type ServingScenario struct {
	// Dataset names the input graph every tenant loads its own copy of.
	Dataset string
	// Rounds is the number of epoch rounds (each live tenant runs one
	// governed epoch per round, concurrently, then the broker
	// rebalances).
	Rounds int
	// WarmupEpochs is the per-tenant epoch count excluded from the
	// isolation bars: a tenant's first epochs ramp its share from the
	// floor, and the paper's methodology likewise measures warm
	// iterations only.
	WarmupEpochs int
	// FastTierBytes shrinks the NVM-DRAM fast tier (0 keeps 96 MiB).
	FastTierBytes uint64
	// Tenants are the cast; exactly one must be the Victim.
	Tenants []ServingTenant
	// Broker configures the arbiter and broker breaker.
	Broker atmem.BrokerConfig
	// Health is the per-tenant scoreboard policy (the scrubber is
	// always on — serving tenants must self-heal corruption).
	Health health.Policy
	// StormStart/StormEnd bound the storm: at round StormStart a
	// persistent retier fault over the victim's graph arrays plus one
	// corruption wave are armed; at StormEnd they are disarmed.
	StormStart, StormEnd int
	// ShareTolerance is the isolation bar: a non-victim's mean
	// fast-access share over the storm-and-after rounds must not fall
	// more than this fraction below its own settled pre-storm mean
	// (absolute floor 0.05). Default 0.10.
	ShareTolerance float64
	// RejectSpec, when non-empty-named, is admitted at StormStart and
	// must be rejected with ErrAdmission (the oversubscription probe).
	RejectSpec atmem.TenantSpec
	// TraceDir, when non-empty, records the victim runtime's telemetry
	// and writes trace + scorecard artifacts there.
	TraceDir string
}

// DefaultServingScenario returns the scenario the serving experiment
// and CI smoke run: four pokec tenants across the three QoS classes on
// a 48 MiB fast tier, arrivals at rounds 0/0/4/8, one departure at
// round 22, and a round 12–18 storm against the burstable cc tenant.
func DefaultServingScenario() ServingScenario {
	return ServingScenario{
		Dataset:       "pokec",
		Rounds:        30,
		WarmupEpochs:  6,
		FastTierBytes: 48 << 20,
		Tenants: []ServingTenant{
			{Spec: atmem.TenantSpec{Name: "alpha", Class: atmem.ClassGuaranteed, FloorBytes: 10 << 20, BurstBytes: 10 << 20},
				App: "bfs", ArriveRound: 0},
			{Spec: atmem.TenantSpec{Name: "bravo", Class: atmem.ClassBurstable, FloorBytes: 8 << 20},
				App: "cc", ArriveRound: 0, Victim: true},
			{Spec: atmem.TenantSpec{Name: "charlie", Class: atmem.ClassBestEffort, ShedPriority: 0},
				App: "sssp", ArriveRound: 4},
			{Spec: atmem.TenantSpec{Name: "delta", Class: atmem.ClassBurstable, FloorBytes: 4 << 20},
				App: "bfs", ArriveRound: 8, DepartRound: 22},
		},
		Health: health.Policy{
			Window:              6,
			PersistentThreshold: 2,
			BackoffEpochs:       1,
			MaxBackoff:          4,
		},
		StormStart:     12,
		StormEnd:       18,
		ShareTolerance: 0.10,
		RejectSpec:     atmem.TenantSpec{Name: "hog", Class: atmem.ClassGuaranteed, FloorBytes: 40 << 20},
	}
}

// ServingEpoch is one tenant-epoch of the shared run, for reports.
type ServingEpoch struct {
	Round  int
	Tenant string
	// Epoch is the tenant's own 1-based governed epoch.
	Epoch int
	// FastShare / SoloFastShare compare the shared run against the solo
	// baseline at the same tenant epoch.
	FastShare     float64
	SoloFastShare float64
	// Seconds is the epoch's total simulated time (phases + migration +
	// scrub); PhaseSeconds is the foreground slice the SLO is checked
	// against (migration and scrubbing are background work a serving
	// latency bar does not charge).
	Seconds      float64
	PhaseSeconds float64
	SLO          float64
	// ShareBytes and QuarantinedBytes mirror the tenant's grant and its
	// own fault-domain debit after the round.
	ShareBytes       uint64
	QuarantinedBytes uint64
	Shed             bool
	Breaker          string
}

// servingSolo is one tenant's solo baseline: the identical spec and
// epoch count on its own broker over an identically-sized system.
type servingSolo struct {
	shares  []float64 // per-epoch fast-access share
	seconds []float64 // per-epoch simulated phase seconds
	slo     float64   // 1.25 × slowest solo phase (or Spec.SLOSeconds)
	crc     uint32
}

// ServingResult is the outcome of one serving scenario.
type ServingResult struct {
	Epochs []ServingEpoch
	// Rebalances are the broker's per-round reports.
	Rebalances []broker.RebalanceReport
	// RejectErr is the oversubscription probe's admission error.
	RejectErr error
	// VictimQuarantined is the victim's own quarantine debit at the end.
	VictimQuarantined uint64
	// CRCs maps tenant name to its shared-run result checksum (each
	// verified identical to the solo baseline before returning).
	CRCs map[string]uint32
	// TracePath is the victim's written Chrome trace (empty without
	// TraceDir).
	TracePath string
}

// servingMember is one live tenant's state during the shared run.
type servingMember struct {
	cfg    ServingTenant
	tenant *atmem.Tenant
	rt     *atmem.Runtime
	kern   apps.Kernel
	solo   *servingSolo
	epoch  int // epochs run so far
}

// RunServing executes the scenario: one solo baseline per tenant, then
// the shared multi-tenant run, then the isolation bars. Every bar
// violation is an error — the experiment's value is that these cannot
// rot.
func RunServing(sc ServingScenario) (*ServingResult, error) {
	if sc.ShareTolerance == 0 {
		sc.ShareTolerance = 0.10
	}
	victims := 0
	for _, tc := range sc.Tenants {
		if tc.Victim {
			victims++
		}
	}
	if victims != 1 {
		return nil, fmt.Errorf("harness: serving: %d victims declared, want exactly 1", victims)
	}

	// Phase 1: solo baselines. Same spec, same epoch count, own broker
	// over an identically-sized system, no storm (the isolation bars
	// compare the shared run against undisturbed solo service, and the
	// victim's results must be storm-invariant anyway).
	solos := make(map[string]*servingSolo, len(sc.Tenants))
	for _, tc := range sc.Tenants {
		solo, err := sc.runSolo(tc)
		if err != nil {
			return nil, fmt.Errorf("harness: serving solo %s: %w", tc.Spec.Name, err)
		}
		solos[tc.Spec.Name] = solo
	}

	// Phase 2: the shared run.
	res, err := sc.runShared(solos)
	if err != nil {
		return nil, err
	}

	// Phase 3: the bars.
	if err := sc.checkBars(res, solos); err != nil {
		return res, err
	}
	return res, nil
}

// tenantRounds returns the number of rounds the tenant participates in.
func (sc ServingScenario) tenantRounds(tc ServingTenant) int {
	end := sc.Rounds
	if tc.DepartRound != 0 && tc.DepartRound < end {
		end = tc.DepartRound
	}
	return end - tc.ArriveRound
}

func (sc ServingScenario) testbed() atmem.Testbed {
	p := memsim.NVMDRAMParams()
	if sc.FastTierBytes != 0 {
		p.Tiers[memsim.TierFast].CapacityBytes = sc.FastTierBytes
	}
	return atmem.CustomTestbed(p)
}

// newMember admits the tenant on bk and builds its runtime + kernel.
func (sc ServingScenario) newMember(bk *atmem.Broker, tc ServingTenant, rec *telemetry.Recorder) (*servingMember, error) {
	tn, err := bk.Admit(tc.Spec)
	if err != nil {
		return nil, err
	}
	opts := []atmem.Option{
		atmem.WithPlacementPolicy(atmem.PaperPolicy()),
		atmem.WithTenant(tn),
		atmem.WithScrubber(),
		atmem.WithHealthPolicy(sc.Health),
	}
	if rec != nil {
		opts = append(opts, atmem.WithTelemetry(rec))
	}
	rt, err := atmem.New(sc.testbed(), opts...)
	if err != nil {
		return nil, err
	}
	kern, err := apps.New(tc.App)
	if err != nil {
		return nil, err
	}
	if err := kern.Setup(rt, sc.Dataset); err != nil {
		return nil, fmt.Errorf("%s setup: %w", tc.App, err)
	}
	return &servingMember{cfg: tc, tenant: tn, rt: rt, kern: kern}, nil
}

// epochSeconds is the scorecard's end-to-end simulated epoch time.
func epochSeconds(card atmem.Scorecard) float64 {
	return card.PhaseSeconds + card.MigrationSeconds + card.ScrubSeconds
}

// runSolo runs one tenant alone — same spec, broker config, system
// size, and epoch count as its shared-run life — and derives its SLO.
func (sc ServingScenario) runSolo(tc ServingTenant) (*servingSolo, error) {
	bk := atmem.NewBroker(sc.testbed(), sc.Broker)
	m, err := sc.newMember(bk, tc, nil)
	if err != nil {
		return nil, err
	}
	solo := &servingSolo{}
	for e := 0; e < sc.tenantRounds(tc); e++ {
		name := fmt.Sprintf("%s-%d", tc.App, e+1)
		if _, err := m.rt.RunEpoch(name, func() { m.kern.RunIteration(m.rt) }); err != nil {
			return nil, err
		}
		bk.Rebalance()
	}
	cards := m.rt.Scorecards()
	for _, card := range cards {
		solo.shares = append(solo.shares, card.FastAccessShare)
		solo.seconds = append(solo.seconds, card.PhaseSeconds)
		if card.PhaseSeconds > solo.slo {
			solo.slo = card.PhaseSeconds
		}
	}
	solo.slo *= 1.25
	if tc.Spec.SLOSeconds > 0 {
		solo.slo = tc.Spec.SLOSeconds
	}
	if err := m.kern.Validate(); err != nil {
		return nil, err
	}
	solo.crc = resultCRC(m.rt)
	if err := m.rt.Close(); err != nil {
		return nil, err
	}
	return solo, nil
}

// servingStormWindow caps each of the storm's two blast windows (the
// corruption wave and the persistent retier fault) to this many bytes
// of fully fast-resident chunks, keeping the worst-case quarantine
// debit — both windows retired, plus chunk-boundary spill — far below
// the victim's 8 MiB floor, so recovery stays possible by construction.
const servingStormWindow = memsim.MiB

// armServingStorm aims the victim's storm at chunks that are *fully
// fast-resident right now* — exactly the set the scrubber tracks. The
// corruption wave fires at the victim's next epoch start, in the same
// health bracket as the scrub and before any migration can move the
// data, so detection → evacuate → retire lands a quarantine debit
// deterministically rather than only when placement churn happens to
// cross a blind address window. A second, disjoint set of resident
// chunks gets a persistent retier fault for the storm's duration:
// migrations touching them fail and accumulate scoreboard strikes,
// with their retirement deferred until the storm clears.
func armServingStorm(m *servingMember) error {
	sys := m.rt.System()
	var faults []faultinject.Fault
	var corruptBytes, persistBytes uint64
	for _, do := range m.rt.Registry().Objects() {
		for j := 0; j < do.NumChunks; j++ {
			lo, hi := do.ChunkRange(j)
			if hi == lo || sys.BytesOnTier(lo, hi-lo)[memsim.TierFast] != hi-lo {
				continue
			}
			switch {
			case corruptBytes < servingStormWindow:
				faults = append(faults, faultinject.Fault{
					Kind: faultinject.Corrupt, Nth: 1, Base: lo, Size: hi - lo})
				corruptBytes += hi - lo
			case persistBytes < servingStormWindow:
				faults = append(faults, faultinject.Fault{
					Kind: faultinject.Persistent, Op: faultinject.OpRetier,
					Base: lo, Size: hi - lo})
				persistBytes += hi - lo
			}
		}
	}
	if corruptBytes == 0 {
		return fmt.Errorf("harness: serving storm: victim has no fully fast-resident chunks to corrupt")
	}
	m.rt.ArmFaults(faults...)
	return nil
}

// runShared executes the multi-tenant run round by round.
func (sc ServingScenario) runShared(solos map[string]*servingSolo) (*ServingResult, error) {
	bk := atmem.NewBroker(sc.testbed(), sc.Broker)
	res := &ServingResult{CRCs: make(map[string]uint32)}
	var members []*servingMember
	var victim *servingMember
	var floorsPromised uint64

	admit := func(tc ServingTenant) error {
		var rec *telemetry.Recorder
		if tc.Victim && sc.TraceDir != "" {
			rec = telemetry.NewRecorder()
		}
		m, err := sc.newMember(bk, tc, rec)
		if err != nil {
			return fmt.Errorf("harness: serving admit %s: %w", tc.Spec.Name, err)
		}
		floorsPromised += tc.Spec.FloorBytes
		// The admission invariant, checked at the only moments it can
		// change in the broker's favour: promised floors never exceed
		// what the tier actually still has.
		if avail := bk.Capacity() - min64(bk.Capacity(), bk.System().Quarantined()); floorsPromised > avail {
			return fmt.Errorf("harness: serving: admission oversubscribed — %d promised floor bytes > %d available",
				floorsPromised, avail)
		}
		members = append(members, m)
		if tc.Victim {
			victim = m
		}
		return nil
	}

	finishMember := func(m *servingMember) error {
		if err := m.kern.Validate(); err != nil {
			return fmt.Errorf("harness: serving %s: %w", m.cfg.Spec.Name, err)
		}
		crc := resultCRC(m.rt)
		res.CRCs[m.cfg.Spec.Name] = crc
		if solo := solos[m.cfg.Spec.Name]; crc != solo.crc {
			return fmt.Errorf("harness: serving %s: results diverged from the solo run: %08x vs %08x",
				m.cfg.Spec.Name, crc, solo.crc)
		}
		return nil
	}

	for round := 0; round < sc.Rounds; round++ {
		// Departures first (freeing floor budget), then arrivals.
		for i := 0; i < len(members); {
			m := members[i]
			if m.cfg.DepartRound != 0 && m.cfg.DepartRound == round {
				if err := finishMember(m); err != nil {
					return res, err
				}
				if err := m.rt.Close(); err != nil {
					return res, fmt.Errorf("harness: serving depart %s: %w", m.cfg.Spec.Name, err)
				}
				floorsPromised -= m.cfg.Spec.FloorBytes
				members = append(members[:i], members[i+1:]...)
				continue
			}
			i++
		}
		for _, tc := range sc.Tenants {
			if tc.ArriveRound == round {
				if err := admit(tc); err != nil {
					return res, err
				}
			}
		}
		if round == sc.StormStart {
			if victim == nil {
				return res, fmt.Errorf("harness: serving: storm start before the victim arrived")
			}
			if err := armServingStorm(victim); err != nil {
				return res, err
			}
			if sc.RejectSpec.Name != "" {
				_, err := bk.Admit(sc.RejectSpec)
				if !errors.Is(err, atmem.ErrAdmission) {
					return res, fmt.Errorf("harness: serving: oversubscription probe %q not rejected with ErrAdmission (got %v)",
						sc.RejectSpec.Name, err)
				}
				res.RejectErr = err
			}
		}
		if round == sc.StormEnd && victim != nil {
			victim.rt.DisarmFaults()
		}

		// Every live tenant runs one governed epoch, concurrently: the
		// broker serving shape. Kernels interleave freely on the shared
		// system; the placement lock serializes migrations and health.
		errs := make([]error, len(members))
		var wg sync.WaitGroup
		for i, m := range members {
			wg.Add(1)
			go func(i int, m *servingMember) {
				defer wg.Done()
				name := fmt.Sprintf("%s-%d", m.cfg.App, m.epoch+1)
				_, errs[i] = m.rt.RunEpoch(name, func() { m.kern.RunIteration(m.rt) })
			}(i, m)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				return res, fmt.Errorf("harness: serving round %d tenant %s: %w",
					round, members[i].cfg.Spec.Name, err)
			}
		}
		rr := bk.Rebalance()
		res.Rebalances = append(res.Rebalances, rr)

		for _, m := range members {
			m.epoch++
			cards := m.rt.Scorecards()
			if len(cards) != m.epoch {
				return res, fmt.Errorf("harness: serving %s: %d scorecards after epoch %d",
					m.cfg.Spec.Name, len(cards), m.epoch)
			}
			card := cards[m.epoch-1]
			solo := solos[m.cfg.Spec.Name]
			ep := ServingEpoch{
				Round:            round,
				Tenant:           m.cfg.Spec.Name,
				Epoch:            m.epoch,
				FastShare:        card.FastAccessShare,
				Seconds:          epochSeconds(card),
				PhaseSeconds:     card.PhaseSeconds,
				SLO:              solo.slo,
				ShareBytes:       m.tenant.Share(),
				QuarantinedBytes: bk.System().TenantUsage(m.tenant.ID()).QuarantinedBytes,
				Shed:             m.tenant.IsShed(),
				Breaker:          card.Breaker,
			}
			if m.epoch-1 < len(solo.shares) {
				ep.SoloFastShare = solo.shares[m.epoch-1]
			}
			res.Epochs = append(res.Epochs, ep)
		}
		// The shared books must balance after every round, including
		// the quarantined slice.
		if err := bk.System().CheckConsistency(); err != nil {
			return res, fmt.Errorf("harness: serving round %d: %w", round, err)
		}
	}

	for _, m := range members {
		if err := finishMember(m); err != nil {
			return res, err
		}
	}
	if victim != nil {
		res.VictimQuarantined = bk.System().TenantUsage(victim.tenant.ID()).QuarantinedBytes
		if sc.TraceDir != "" {
			stem := fmt.Sprintf("nvm-serving-%s-%08x", sc.Dataset,
				crc32.ChecksumIEEE([]byte(fmt.Sprintf("%+v", sc))))
			path, err := writeTraceArtifactsStem(victim.rt, sc.TraceDir, stem)
			if err != nil {
				return res, err
			}
			res.TracePath = path
		}
	}
	for _, m := range members {
		if err := m.rt.Close(); err != nil {
			return res, fmt.Errorf("harness: serving close %s: %w", m.cfg.Spec.Name, err)
		}
	}
	// Every tenant departed: the shared fast tier must be empty except
	// for the quarantine ledger — nothing leaked.
	if used := bk.System().Used(memsim.TierFast); used != 0 {
		return res, fmt.Errorf("harness: serving: %d fast bytes leaked after every tenant departed", used)
	}
	return res, nil
}

// checkBars enforces the isolation contract on the recorded epochs.
func (sc ServingScenario) checkBars(res *ServingResult, solos map[string]*servingSolo) error {
	if res.VictimQuarantined == 0 {
		return fmt.Errorf("harness: serving: the storm left no quarantine debit on the victim — it never degraded")
	}
	var victimName string
	for _, tc := range sc.Tenants {
		if tc.Victim {
			victimName = tc.Spec.Name
		}
	}
	guaranteed := make(map[string]bool, len(sc.Tenants))
	for _, tc := range sc.Tenants {
		guaranteed[tc.Spec.Name] = tc.Spec.Class == atmem.ClassGuaranteed
	}
	// Self-baselined share windows: a tenant's first few epochs
	// bootstrap its grant from zero, so they are not an established
	// service level; a tenant needs a few settled pre-storm epochs
	// before the degradation bar applies to it at all.
	const settleEpochs, minBaseline = 3, 3
	type shareSum struct {
		pre, post   float64
		npre, npost int
	}
	means := make(map[string]*shareSum)
	var victimPost, victimPostSolo struct {
		share float64
		n     int
	}
	victimBreaker := ""
	for _, ep := range res.Epochs {
		if guaranteed[ep.Tenant] && ep.Shed {
			// Guaranteed floors are never shed, victim or not.
			return fmt.Errorf("harness: serving: guaranteed tenant %s was shed at round %d", ep.Tenant, ep.Round)
		}
		if ep.Tenant == victimName {
			victimBreaker = ep.Breaker
			// Recovery window: once the storm has been over for a full
			// heal round, the victim's service counts toward the
			// recovery bar.
			if ep.Round > sc.StormEnd+1 {
				victimPost.share += ep.FastShare
				victimPost.n++
				victimPostSolo.share += ep.SoloFastShare
				victimPostSolo.n++
			}
			continue
		}
		if ep.Epoch <= sc.WarmupEpochs || ep.Shed {
			continue
		}
		// The per-epoch latency SLO: foreground phase time only —
		// migration and scrubbing are background work.
		if ep.PhaseSeconds > ep.SLO {
			return fmt.Errorf("harness: serving: tenant %s epoch %d phase took %.4fs, over its %.4fs SLO",
				ep.Tenant, ep.Epoch, ep.PhaseSeconds, ep.SLO)
		}
		if ep.Epoch <= settleEpochs {
			continue
		}
		m := means[ep.Tenant]
		if m == nil {
			m = &shareSum{}
			means[ep.Tenant] = m
		}
		if ep.Round < sc.StormStart {
			m.pre += ep.FastShare
			m.npre++
		} else {
			m.post += ep.FastShare
			m.npost++
		}
	}
	// The isolation bar: the victim's storm must not degrade a
	// co-tenant's mean fast service below its own settled pre-storm
	// level. One-sided — gaining share is headroom, not a violation.
	// Tenants without a settled pre-storm baseline (they arrived just
	// before or during the storm) are covered by the SLO and CRC bars
	// only.
	for name, m := range means {
		if m.npre < minBaseline || m.npost == 0 {
			continue
		}
		pre, post := m.pre/float64(m.npre), m.post/float64(m.npost)
		tol := sc.ShareTolerance * pre
		if tol < 0.05 {
			tol = 0.05
		}
		if post < pre-tol {
			return fmt.Errorf("harness: serving: tenant %s mean fast share %.3f from the storm on fell more than %.3f below its pre-storm mean %.3f",
				name, post, tol, pre)
		}
	}
	// Recovery: after the storm the victim must be serving from fast
	// memory again — at least half its solo service level over the
	// post-storm window (the persistent quarantine debit legitimately
	// costs it some budget forever) — with its breaker closed.
	if victimPost.n == 0 {
		return fmt.Errorf("harness: serving: no post-storm epochs recorded for victim %s", victimName)
	}
	got, want := victimPost.share/float64(victimPost.n), victimPostSolo.share/float64(victimPostSolo.n)
	if got < 0.5*want {
		return fmt.Errorf("harness: serving: victim %s never recovered — post-storm mean fast share %.3f vs solo %.3f",
			victimName, got, want)
	}
	if victimBreaker != "closed" {
		return fmt.Errorf("harness: serving: victim %s breaker still %s at the final round", victimName, victimBreaker)
	}
	return nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// serving is the experiment wrapper: the shared run rendered one row
// per tenant-epoch, with the rebalance trail in the note.
func serving(s *Suite) ([]*Report, error) {
	sc := DefaultServingScenario()
	sc.TraceDir = s.TraceDir
	if n := s.ServingTenants; n > 0 && n < len(sc.Tenants) {
		if n < 2 {
			n = 2 // the guaranteed anchor and the storm victim stay in
		}
		sc.Tenants = sc.Tenants[:n]
	}
	res, err := RunServing(sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "serving",
		Title: "Multi-tenant broker: isolation and SLO-aware degradation under a mid-run storm (pokec, NVM-DRAM)",
		Columns: []string{"round", "tenant", "epoch", "fast-share", "solo-share",
			"iter(s)", "slo(s)", "share(MiB)", "quarantined", "shed", "breaker"},
	}
	for _, e := range res.Epochs {
		rep.AddRow(
			fmt.Sprintf("%d", e.Round), e.Tenant, fmt.Sprintf("%d", e.Epoch),
			fmt.Sprintf("%.3f", e.FastShare), fmt.Sprintf("%.3f", e.SoloFastShare),
			secs(e.Seconds), secs(e.SLO),
			fmt.Sprintf("%d", e.ShareBytes>>20),
			fmt.Sprintf("%d", e.QuarantinedBytes),
			fmt.Sprintf("%t", e.Shed), e.Breaker)
	}
	granted, shed := 0, 0
	for _, rr := range res.Rebalances {
		if rr.GrantedTo != "" {
			granted++
		}
		shed += len(rr.Shed)
	}
	rep.AddNote("victim quarantine debit %d bytes; no non-victim mean fast share fell more than %.0f%% below its own pre-storm level and every post-warmup phase stayed inside its SLO; oversubscription probe rejected (%v); %d/%d rebalances granted, %d tenants shed; every tenant's results bit-identical to its solo run",
		res.VictimQuarantined, 100*sc.ShareTolerance, res.RejectErr,
		granted, len(res.Rebalances), shed)
	return []*Report{rep}, nil
}
