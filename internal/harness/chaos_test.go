package harness

import (
	"testing"

	"atmem/internal/memsim"
)

// TestChaosSoak runs the default chaos-soak scenario end to end.
// RunChaosSoak enforces the acceptance bars itself (quarantine volume,
// corruption fully detected and demoted, ledger never re-hosted,
// bit-identical results); the test pins the shape of the evidence on
// top.
func TestChaosSoak(t *testing.T) {
	sc := DefaultChaosScenario()
	res, err := RunChaosSoak(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := sc.WarmEpochs + sc.StormEpochs + sc.CoolEpochs
	if len(res.Epochs) != want {
		t.Fatalf("recorded %d epochs, want %d", len(res.Epochs), want)
	}

	fastCap := memsim.NVMDRAMParams().Tiers[memsim.TierFast].CapacityBytes
	if res.QuarantineTarget != fastCap/20 {
		t.Errorf("quarantine bar %d, want 5%% of %d", res.QuarantineTarget, fastCap)
	}
	if res.Health.Quarantined < res.QuarantineTarget {
		t.Errorf("quarantined %d < bar %d", res.Health.Quarantined, res.QuarantineTarget)
	}
	if res.TargetEpoch == 0 || res.TargetEpoch > sc.WarmEpochs+sc.StormEpochs {
		t.Errorf("quarantine bar crossed at epoch %d, want during the storm", res.TargetEpoch)
	}
	if res.ChaosCRC != res.BaselineCRC {
		t.Errorf("result CRC %08x != fault-free %08x", res.ChaosCRC, res.BaselineCRC)
	}

	// The warm (pre-arming) epochs must be clean, and the storm must
	// leave visible per-epoch evidence.
	for _, e := range res.Epochs[:sc.WarmEpochs] {
		if e.Quarantined != 0 || e.Detections != 0 {
			t.Errorf("warm epoch %d already shows damage: %+v", e.Epoch, e)
		}
	}
	last := res.Epochs[len(res.Epochs)-1]
	if last.Quarantined != res.Health.Quarantined {
		t.Errorf("last epoch quarantined %d != final stats %d", last.Quarantined, res.Health.Quarantined)
	}
	if last.Detections != res.Health.Scrub.Detections || last.Repairs != res.Health.Scrub.Repairs {
		t.Errorf("last epoch scrub counters %d/%d != final %d/%d",
			last.Detections, last.Repairs, res.Health.Scrub.Detections, res.Health.Scrub.Repairs)
	}
	if res.Health.DegradedRanges == 0 {
		t.Error("degrade order never applied")
	}
	if res.FaultEvents == 0 {
		t.Error("no fault events recorded")
	}
}
