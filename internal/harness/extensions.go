package harness

import (
	"fmt"

	"atmem"
	"atmem/graph"
	"atmem/internal/faultinject"
)

// The experiments in this file go beyond the paper's evaluation: they
// quantify design properties the paper argues qualitatively (sampling
// accuracy, the contiguity assumption) and the §9 future-work extension
// (aggregate-bandwidth placement).

// ExtensionExperiments returns the extra experiments, kept separate from
// Experiments() so `atmem-bench all` reproduces exactly the paper's
// artifact set; run them explicitly by id.
func ExtensionExperiments() []Experiment {
	return []Experiment{
		{ID: "accuracy", Title: "Sampling accuracy: ATMem's sampled selection vs a full-profiling oracle (period 1)", Run: accuracy},
		{ID: "locality", Title: "Contiguity ablation: hub-ordered vs shuffled vs degree-ordered vertex ids", Run: locality},
		{ID: "aggbw", Title: "Aggregate-bandwidth placement on independent channels (§9 extension, KNL)", Run: aggbw},
		{ID: "robustness", Title: "Fault-injected migration: graceful degradation under staging/remap failures", Run: robustness},
		{ID: "adaptive-pressure", Title: "Epoch-adaptive governor: hot-set shift under a tightening budget, with and without faults", Run: adaptivePressure},
		{ID: "overlap", Title: "Overlapped background placement vs stop-the-world epochs (adaptive-pressure scenario)", Run: overlapComparison},
		{ID: "chaos-soak", Title: "Chaos soak: self-healing placement under escalating persistent faults and corruption", Run: chaosSoak},
		{ID: "serving", Title: "Multi-tenant broker: fast-tier isolation, admission control, and SLO-aware degradation under storms", Run: serving},
		{ID: "policy-shootout", Title: "Placement-policy shootout: static floor vs paper analyzer vs learned ranker vs hindsight oracle, seven kernels", Run: policyShootout},
	}
}

// AllExperiments returns paper artifacts followed by the extensions and
// the paper-scale experiments.
func AllExperiments() []Experiment {
	all := append(Experiments(), ExtensionExperiments()...)
	return append(all, ScaleExperiments()...)
}

// accuracy compares the default adaptive-period profile against an
// oracle that samples every demand miss (period 1): how close does
// lightweight sampling get, in both selection footprint and resulting
// performance? (§2.2's overhead/accuracy trade-off, quantified.)
func accuracy(s *Suite) ([]*Report, error) {
	rep := &Report{
		ID:    "accuracy",
		Title: "Sampled selection vs full-profiling oracle (NVM-DRAM)",
		Columns: []string{"app", "dataset", "sampled-ratio", "oracle-ratio",
			"sampled(s)", "oracle(s)", "sampled/oracle"},
	}
	for _, app := range evalApps {
		for _, ds := range []string{"twitter", "rmat27"} {
			sampled, err := s.Run(RunConfig{Testbed: NVM, App: app, Dataset: ds, Policy: atmem.PolicyATMem})
			if err != nil {
				return nil, err
			}
			oracle, err := s.Run(RunConfig{Testbed: NVM, App: app, Dataset: ds,
				Policy: atmem.PolicyATMem, SamplePeriod: 1})
			if err != nil {
				return nil, err
			}
			rep.AddRow(app, ds,
				pct(sampled.DataRatio), pct(oracle.DataRatio),
				secs(sampled.IterSeconds), secs(oracle.IterSeconds),
				ratio(sampled.IterSeconds/oracle.IterSeconds))
		}
	}
	rep.AddNote("period-1 profiling is the information upper bound; values near 1.00x mean the tree promotion recovered what sampling lost (§4.3)")
	return []*Report{rep}, nil
}

// locality probes the contiguity assumption behind chunk-granularity
// placement: ATMem's win depends on hot vertices clustering in the
// address space. Shuffled ids scatter the hubs across every chunk;
// degree ordering packs them maximally.
func locality(s *Suite) ([]*Report, error) {
	variants := []struct {
		suffix string
		make   func(g *graph.Graph) (*graph.Graph, error)
	}{
		{"", nil}, // original (crawl-order analogue)
		{"-shuffled", func(g *graph.Graph) (*graph.Graph, error) { return g.ShuffleLabels(1234) }},
		{"-degordered", func(g *graph.Graph) (*graph.Graph, error) { return g.DegreeOrder() }},
	}
	const base = "twitter"
	for _, v := range variants {
		if v.make == nil {
			continue
		}
		mk := v.make
		graph.RegisterDataset(base+v.suffix, func() (*graph.Graph, error) {
			g, err := graph.Load(base)
			if err != nil {
				return nil, err
			}
			return mk(g)
		})
	}
	rep := &Report{
		ID:    "locality",
		Title: "PR on twitter id orderings (NVM-DRAM)",
		Columns: []string{"ordering", "baseline(s)", "atmem(s)",
			"speedup", "data-ratio", "regions"},
	}
	for _, v := range variants {
		ds := base + v.suffix
		baseRun, err := s.Run(RunConfig{Testbed: NVM, App: "pr", Dataset: ds, Policy: atmem.PolicyBaseline})
		if err != nil {
			return nil, err
		}
		at, err := s.Run(RunConfig{Testbed: NVM, App: "pr", Dataset: ds, Policy: atmem.PolicyATMem})
		if err != nil {
			return nil, err
		}
		label := "crawl-order"
		if v.suffix != "" {
			label = v.suffix[1:]
		}
		rep.AddRow(label,
			secs(baseRun.IterSeconds), secs(at.IterSeconds),
			ratio(baseRun.IterSeconds/at.IterSeconds),
			pct(at.DataRatio),
			fmt.Sprintf("%d", at.Migration.Regions))
	}
	rep.AddNote("shuffled ids scatter hub entries across every chunk: selection must either grow or lose precision; degree ordering is the best case")
	return []*Report{rep}, nil
}

// aggbw measures the §9 aggregate-bandwidth extension on the
// independent-channel KNL testbed.
func aggbw(s *Suite) ([]*Report, error) {
	rep := &Report{
		ID:    "aggbw",
		Title: "Aggregate-bandwidth placement (MCDRAM-DRAM testbed)",
		Columns: []string{"app", "dataset", "fast-only(s)", "agg-bw(s)",
			"improvement", "fast-only-ratio", "agg-bw-ratio"},
	}
	for _, app := range []string{"pr", "sssp"} {
		for _, ds := range []string{"rmat27", "friendster"} {
			fastOnly, err := s.Run(RunConfig{Testbed: KNL, App: app, Dataset: ds, Policy: atmem.PolicyATMem})
			if err != nil {
				return nil, err
			}
			agg, err := s.Run(RunConfig{Testbed: KNL, App: app, Dataset: ds,
				Policy: atmem.PolicyATMem, BandwidthAware: true})
			if err != nil {
				return nil, err
			}
			rep.AddRow(app, ds,
				secs(fastOnly.IterSeconds), secs(agg.IterSeconds),
				pct(fastOnly.IterSeconds/agg.IterSeconds-1),
				pct(fastOnly.DataRatio), pct(agg.DataRatio))
		}
	}
	rep.AddNote("leaving the coldest slice of the selection on DDR4 keeps both channel sets busy; gains are modest and only exist on independent-channel systems")
	return []*Report{rep}, nil
}

// robustness runs a real workload under the fault-injection schedules of
// the migration fault matrix and reports how the transactional Optimize
// path degrades: which regions migrated, retried, or were skipped, what
// that cost in iteration time, and that results still validate. The
// fault-free row is the reference; every faulted run must stay correct
// (validated) — only performance may degrade.
func robustness(s *Suite) ([]*Report, error) {
	scenarios := []struct {
		label    string
		sched    *faultinject.Schedule
		governed bool
	}{
		{"fault-free", nil, false},
		{"staging-nth1", &faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Nth: 1}}}, false},
		{"remap-nth2", &faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpRetier, Nth: 2}}}, false},
		{"remap-storm", &faultinject.Schedule{Seed: 1, Faults: []faultinject.Fault{
			{Op: faultinject.OpRetier, Prob: 0.5}}}, false},
		{"all-reserves-fail", &faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Prob: 1}}}, false},
		// Governed variants route the same run through Runtime.RunEpoch:
		// the demoted/breaker columns come alive and the breaker absorbs
		// the degraded epoch instead of only the per-region skip ladder.
		{"governed-fault-free", nil, true},
		{"governed-all-reserves-fail", &faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Prob: 1}}}, true},
	}
	rep := &Report{
		ID:    "robustness",
		Title: "PR on twitter under injected migration faults (NVM-DRAM)",
		Columns: []string{"scenario", "iter(s)", "migrated", "retried",
			"skipped", "skipped-bytes", "demoted", "breaker", "faults",
			"data-ratio", "validated"},
	}
	for _, sc := range scenarios {
		res, err := s.Run(RunConfig{
			Testbed: NVM, App: "pr", Dataset: "twitter", Policy: atmem.PolicyATMem,
			FaultSchedule: sc.sched, FaultLabel: sc.label, Governed: sc.governed,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: robustness %s: %w", sc.label, err)
		}
		demoted, breaker := "-", "-"
		if sc.governed {
			demoted = fmt.Sprintf("%d", res.Migration.DemotedBytes)
			breaker = res.Migration.Breaker
		}
		rep.AddRow(sc.label,
			secs(res.IterSeconds),
			fmt.Sprintf("%d", res.Migration.RegionsMigrated),
			fmt.Sprintf("%d", res.Migration.RegionsRetried),
			fmt.Sprintf("%d", res.Migration.RegionsSkipped),
			fmt.Sprintf("%d", res.Migration.SkippedBytes),
			demoted, breaker,
			fmt.Sprintf("%d", res.FaultEvents),
			pct(res.DataRatio),
			fmt.Sprintf("%t", res.Validated))
	}
	rep.AddNote("faults degrade placement (skipped regions stay on the large memory) but never correctness: every scenario validates, no reservation leaks, and rolled-back regions keep their translations; governed rows run through RunEpoch and report the governor's demotions and breaker state")
	return []*Report{rep}, nil
}
