package harness

import (
	"bytes"
	"strings"
	"testing"

	"atmem"
)

func TestTestbedFor(t *testing.T) {
	for _, id := range []TestbedID{NVM, KNL} {
		if _, err := TestbedFor(id); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	if _, err := TestbedFor("x86"); err == nil {
		t.Error("unknown testbed accepted")
	}
}

func TestRunBaselinePokec(t *testing.T) {
	res, err := Run(RunConfig{Testbed: NVM, App: "bfs", Dataset: "pokec", Policy: atmem.PolicyBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if res.IterSeconds <= 0 || res.FirstIterSeconds <= 0 {
		t.Error("missing iteration times")
	}
	if !res.Validated {
		t.Error("result not validated")
	}
	if res.Migration.BytesMoved != 0 {
		t.Error("baseline run migrated data")
	}
	if res.DataRatio != 0 {
		t.Errorf("baseline data ratio %v", res.DataRatio)
	}
}

func TestRunATMemPokec(t *testing.T) {
	res, err := Run(RunConfig{Testbed: NVM, App: "pr", Dataset: "pokec", Policy: atmem.PolicyATMem})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Error("no profiler samples")
	}
	if res.Migration.BytesMoved == 0 {
		t.Error("nothing migrated")
	}
	if res.DataRatio <= 0 || res.DataRatio > 0.6 {
		t.Errorf("data ratio %v", res.DataRatio)
	}
}

func TestSuiteMemoizes(t *testing.T) {
	s := NewSuite()
	cfg := RunConfig{Testbed: NVM, App: "bfs", Dataset: "pokec", Policy: atmem.PolicyBaseline}
	a, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.IterSeconds != b.IterSeconds {
		t.Error("memoized result differs")
	}
}

func TestRunConfigKeyDistinguishesFields(t *testing.T) {
	base := RunConfig{Testbed: NVM, App: "bfs", Dataset: "pokec"}
	variants := []RunConfig{
		{Testbed: KNL, App: "bfs", Dataset: "pokec"},
		{Testbed: NVM, App: "pr", Dataset: "pokec"},
		{Testbed: NVM, App: "bfs", Dataset: "twitter"},
		{Testbed: NVM, App: "bfs", Dataset: "pokec", Policy: atmem.PolicyATMem},
		{Testbed: NVM, App: "bfs", Dataset: "pokec", Mechanism: atmem.MigrateMbind},
		{Testbed: NVM, App: "bfs", Dataset: "pokec", Epsilon: 0.5},
		{Testbed: NVM, App: "bfs", Dataset: "pokec", SkipValidate: true},
	}
	for i, v := range variants {
		if v.key() == base.key() {
			t.Errorf("variant %d collides with base key", i)
		}
	}
}

func TestExperimentsRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1a", "fig1b", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "tab3", "tab4", "overhead"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
	if _, err := ExperimentByID("fig5"); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestReportRenderers(t *testing.T) {
	r := &Report{
		ID:      "t1",
		Title:   "test",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "4"}},
	}
	r.AddRow("5", "6")
	r.AddNote("note %d", 7)

	var text bytes.Buffer
	if err := r.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"t1", "a", "5", "note 7"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("text output missing %q", want)
		}
	}

	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 4 || lines[0] != "a,b" || lines[3] != "5,6" {
		t.Errorf("csv output:\n%s", csv.String())
	}

	var md bytes.Buffer
	if err := r.WriteMarkdown(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "| a | b |") {
		t.Errorf("markdown output:\n%s", md.String())
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONReports(&js)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].ID != "t1" || len(back[0].Rows) != 3 {
		t.Errorf("json round trip: %+v", back)
	}
}

func TestCSVRejectsCellsNeedingQuoting(t *testing.T) {
	r := &Report{Columns: []string{"a"}, Rows: [][]string{{"x,y"}}}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err == nil {
		t.Error("comma cell accepted")
	}
}

func TestExtensionExperimentsRegistered(t *testing.T) {
	want := map[string]bool{"accuracy": false, "locality": false, "aggbw": false,
		"robustness": false, "adaptive-pressure": false, "overlap": false,
		"chaos-soak": false, "serving": false, "policy-shootout": false}
	for _, e := range ExtensionExperiments() {
		if _, ok := want[e.ID]; !ok {
			t.Errorf("unexpected extension %s", e.ID)
		}
		want[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("incomplete extension %s", e.ID)
		}
	}
	for id, seen := range want {
		if !seen {
			t.Errorf("missing extension %s", id)
		}
	}
	// Extensions resolve by id but stay out of the paper set.
	if _, err := ExperimentByID("accuracy"); err != nil {
		t.Error(err)
	}
	for _, e := range Experiments() {
		if e.ID == "accuracy" || e.ID == "locality" || e.ID == "aggbw" || e.ID == "robustness" {
			t.Errorf("extension %s leaked into the paper artifact set", e.ID)
		}
	}
}
