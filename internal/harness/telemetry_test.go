package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atmem"
	"atmem/internal/faultinject"
	"atmem/internal/telemetry"
)

// TestTelemetrySmoke is the end-to-end telemetry check (also CI's
// telemetry smoke step): one full profile→optimize→run cycle with
// tracing and fault injection on must emit a parseable, non-empty
// Chrome trace whose migration and fault events reconcile exactly with
// the run's MigrationReport and fault count. Set ATMEM_TELEMETRY_OUT to
// a directory to keep the artifacts (CI uploads them).
func TestTelemetrySmoke(t *testing.T) {
	dir := os.Getenv("ATMEM_TELEMETRY_OUT")
	if dir == "" {
		dir = t.TempDir()
	}
	res, err := Run(RunConfig{
		Testbed: NVM, App: "pr", Dataset: "pokec", Policy: atmem.PolicyATMem,
		FaultSchedule: &faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Nth: 1},
		}},
		FaultLabel: "smoke-staging-nth1",
		TraceDir:   dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TracePath == "" {
		t.Fatal("no trace written")
	}
	if res.FaultEvents != 1 {
		t.Fatalf("FaultEvents = %d, want 1 (nth-call rule fires once)", res.FaultEvents)
	}

	f, err := os.Open(res.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace parsed but is empty")
	}

	count := func(cat, name string) int {
		n := 0
		for _, e := range events {
			if (cat == "" || e.Cat == cat) && (name == "" || e.Name == name) {
				n++
			}
		}
		return n
	}

	// The per-region terminal events partition the regions exactly as
	// the MigrationReport counters do.
	rep := res.Migration
	if got := count("migrate", "region-migrated"); got != rep.RegionsMigrated {
		t.Errorf("region-migrated events %d != RegionsMigrated %d", got, rep.RegionsMigrated)
	}
	if got := count("migrate", "region-retried"); got != rep.RegionsRetried {
		t.Errorf("region-retried events %d != RegionsRetried %d", got, rep.RegionsRetried)
	}
	if got := count("migrate", "region-skipped"); got != rep.RegionsSkipped {
		t.Errorf("region-skipped events %d != RegionsSkipped %d", got, rep.RegionsSkipped)
	}
	if rep.RegionsRetried == 0 {
		t.Error("injected staging fault did not produce a retried region")
	}
	// Every rollback pairs with a failed attempt; the injected Reserve
	// fault must therefore surface at least one of each.
	if count("migrate", "region-rollback") == 0 {
		t.Error("no rollback events despite an injected staging fault")
	}
	// Fault events in the trace correspond one-to-one with what the
	// injector fired.
	if got := count("fault", ""); got != res.FaultEvents {
		t.Errorf("fault events in trace %d != injector count %d", got, res.FaultEvents)
	}
	// The control-plane structure made it into the trace.
	for _, want := range []struct{ cat, name string }{
		{"phase", ""}, {"profile", "window"}, {"optimize", "optimize"},
		{"analyze", "rank"}, {"analyze", "threshold"},
		{"analyze", "promote"}, {"analyze", "clip"},
		{"metric", "tier-occupancy"},
	} {
		if count(want.cat, want.name) == 0 {
			t.Errorf("trace missing %s/%s events", want.cat, want.name)
		}
	}

	// Companion artifacts exist and are non-empty.
	stem := strings.TrimSuffix(res.TracePath, ".trace.json")
	for _, suffix := range []string{".timeline.csv", ".heat.csv"} {
		st, err := os.Stat(stem + suffix)
		if err != nil {
			t.Errorf("missing artifact: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", stem+suffix)
		}
	}
}

// TestSuiteTraceDir checks the suite-level trace plumbing used by
// `atmem-bench -trace`.
func TestSuiteTraceDir(t *testing.T) {
	s := NewSuite()
	s.TraceDir = t.TempDir()
	res, err := s.Run(RunConfig{Testbed: NVM, App: "bfs", Dataset: "pokec", Policy: atmem.PolicyBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if res.TracePath == "" {
		t.Fatal("suite TraceDir did not produce a trace")
	}
	if filepath.Dir(res.TracePath) != s.TraceDir {
		t.Errorf("trace written to %s, want dir %s", res.TracePath, s.TraceDir)
	}
	if _, err := os.Stat(res.TracePath); err != nil {
		t.Error(err)
	}
}
