package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCheckBars pins the bar logic on synthetic results, independent of
// the simulator: the ordering invariants and the gap-closure count.
func TestCheckBars(t *testing.T) {
	mk := func(app string, static, paper, learned, oracle float64) []ShootoutCell {
		return []ShootoutCell{
			{App: app, Policy: "static", FastAccessShare: static},
			{App: app, Policy: "paper", FastAccessShare: paper},
			{App: app, Policy: "learned", FastAccessShare: learned},
			{App: app, Policy: "oracle", FastAccessShare: oracle},
		}
	}
	ok := &ShootoutResult{Cells: mk("bfs", 0.1, 0.3, 0.5, 0.6), GapClosedKernels: 1}
	if err := ok.checkBars(1); err != nil {
		t.Errorf("clean ordering rejected: %v", err)
	}
	if err := ok.checkBars(2); err == nil {
		t.Error("gap bar of 2 passed with only 1 closed kernel")
	}
	badOracle := &ShootoutResult{Cells: mk("bfs", 0.1, 0.5, 0.5, 0.4)}
	if err := badOracle.checkBars(0); err == nil {
		t.Error("oracle below paper passed the bars")
	}
	badPaper := &ShootoutResult{Cells: mk("bfs", 0.5, 0.3, 0.5, 0.6)}
	if err := badPaper.checkBars(0); err == nil {
		t.Error("paper below static passed the bars")
	}
	// Within-epsilon ties must pass: equal shares are not a regression.
	tie := &ShootoutResult{Cells: mk("bfs", 0.3, 0.3, 0.3, 0.3)}
	if err := tie.checkBars(0); err != nil {
		t.Errorf("exact ties rejected: %v", err)
	}
}

// TestPolicyShootout runs the full seven-kernel shootout end to end —
// the same configuration CI's smoke step uses — and asserts the
// acceptance bars hold: oracle >= paper >= static on every kernel, and
// the learned policy closes at least half the paper->oracle gap on at
// least GapBarKernels kernels. RunPolicyShootout enforces the bars
// itself (Assert); the test additionally pins the result's shape and
// the artifact/report plumbing.
func TestPolicyShootout(t *testing.T) {
	if testing.Short() {
		t.Skip("full policy shootout is a multi-second simulation")
	}
	scn := DefaultShootoutScenario()
	scn.TraceDir = t.TempDir()
	res, err := RunPolicyShootout(scn)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernels != len(ShootoutApps) {
		t.Errorf("kernels = %d, want %d", res.Kernels, len(ShootoutApps))
	}
	if want := len(ShootoutApps) * 4; len(res.Cells) != want {
		t.Errorf("cells = %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if !c.Validated {
			t.Errorf("%s/%s: kernel result not validated", c.App, c.Policy)
		}
		if c.FastAccessShare <= 0 || c.FastAccessShare >= 1 {
			t.Errorf("%s/%s: implausible fast-access share %v", c.App, c.Policy, c.FastAccessShare)
		}
		if c.Policy != "oracle" && c.GapToOracle < -1e-9 && c.Policy != "learned" {
			t.Errorf("%s/%s: negative gap-to-oracle %v", c.App, c.Policy, c.GapToOracle)
		}
	}
	if res.Train.Pairs == 0 || res.Train.FinalViolations >= res.Train.InitialViolations {
		t.Errorf("training did not converge: %+v", res.Train)
	}

	// The artifact round-trips through the JSON the report tool reads.
	data, err := os.ReadFile(filepath.Join(scn.TraceDir, "policy-shootout.json"))
	if err != nil {
		t.Fatal(err)
	}
	var back ShootoutResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(res.Cells) {
		t.Errorf("artifact cells = %d, want %d", len(back.Cells), len(res.Cells))
	}
	rep := ShootoutReportOf(&back)
	if len(rep.Rows) != len(res.Cells) {
		t.Errorf("report rows = %d, want %d", len(rep.Rows), len(res.Cells))
	}
}
