package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Report is one rendered experiment artifact: a table plus notes,
// serializable to text, CSV, markdown, and JSON.
type Report struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// AddNote appends an explanatory note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// WriteText renders an aligned plain-text table.
func (r *Report) WriteText(w io.Writer) error {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(r.Columns); err != nil {
		return err
	}
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (no quoting needed: cells are plain).
func (r *Report) WriteCSV(w io.Writer) error {
	rows := append([][]string{r.Columns}, r.Rows...)
	for _, row := range rows {
		for _, cell := range row {
			if strings.ContainsAny(cell, ",\"\n") {
				return fmt.Errorf("harness: CSV cell needs quoting: %q", cell)
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders a GitHub-flavored markdown table.
func (r *Report) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", r.ID, r.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(r.Columns, " | ")); err != nil {
		return err
	}
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadJSONReports decodes a stream of JSON reports (as written by
// WriteJSON back-to-back).
func ReadJSONReports(rd io.Reader) ([]*Report, error) {
	dec := json.NewDecoder(rd)
	var out []*Report
	for dec.More() {
		var r Report
		if err := dec.Decode(&r); err != nil {
			return nil, err
		}
		out = append(out, &r)
	}
	return out, nil
}
