// Package harness defines and runs the reproduction's experiments: one
// per table and figure of the paper's evaluation (§7), sharing a memoized
// runner so related artifacts (e.g. Figure 5, Table 3, and Figure 7) reuse
// the same underlying runs.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"atmem"
	"atmem/apps"
	"atmem/internal/core"
	"atmem/internal/faultinject"
	"atmem/internal/telemetry"
)

// TestbedID names one of the two simulated platforms.
type TestbedID string

const (
	// NVM is the Optane NVM-DRAM testbed.
	NVM TestbedID = "nvm"
	// KNL is the MCDRAM-DRAM testbed.
	KNL TestbedID = "knl"
)

// TestbedFor resolves an id to a testbed.
func TestbedFor(id TestbedID) (atmem.Testbed, error) {
	switch id {
	case NVM:
		return atmem.NVMDRAM(), nil
	case KNL:
		return atmem.MCDRAMDRAM(), nil
	}
	return atmem.Testbed{}, fmt.Errorf("harness: unknown testbed %q", id)
}

// RunConfig identifies one benchmark run.
type RunConfig struct {
	Testbed   TestbedID
	App       string
	Dataset   string
	Policy    atmem.Policy
	Mechanism atmem.MigrationMechanism
	// Epsilon overrides the analyzer's ε (Eq. 5); 0 keeps the default.
	// Only meaningful with PolicyATMem.
	Epsilon float64
	// SamplePeriod fixes the profiler period (0 = automatic, §5.1).
	// Period 1 captures every demand miss — the full-profiling oracle
	// of the accuracy experiment.
	SamplePeriod uint64
	// BandwidthAware enables the §9 aggregate-bandwidth extension.
	BandwidthAware bool
	// SkipValidate disables result validation (sweeps that run many
	// configurations skip it for speed after the base configuration
	// validated).
	SkipValidate bool
	// FaultSchedule arms fault injection on the run's simulator (see
	// atmem.Options.FaultSchedule); nil runs fault-free. FaultLabel
	// must uniquely name a non-nil schedule — it is the schedule's
	// identity in the memoization key.
	FaultSchedule *faultinject.Schedule
	FaultLabel    string
	// Governed enables the epoch-adaptive placement governor (see
	// atmem.Options.Governor) and drives the profiled iteration plus
	// Optimize through Runtime.RunEpoch, so the MigrationReport carries
	// the governor's delta/demotion/breaker fields. Only meaningful
	// with PolicyATMem.
	Governed bool
	// Async drives the run through overlapped background placement
	// (Runtime.RunEpochAsync + DrainAsync): the profiled interval's plan
	// migrates on a service goroutine while the next iteration runs.
	// Implies the governor. Only meaningful with PolicyATMem.
	Async bool
	// Context, when non-nil, is passed to the placement calls so a
	// caller can cancel in-flight migration. It is deliberately not part
	// of the memoization key.
	Context context.Context
	// Telemetry attaches a telemetry recorder to the run (see
	// atmem.Options.Recorder). Implied by a non-empty TraceDir.
	Telemetry bool
	// TraceDir, when non-empty, writes the run's Chrome trace JSON, CSV
	// timeline, and chunk-heat dump into this directory next to the
	// report artifacts; RunResult.TracePath names the trace.
	TraceDir string
}

func (c RunConfig) key() string {
	return fmt.Sprintf("%s|%s|%s|%d|%d|%g|%d|%t|%t|%s|%t|%s|%t|%t",
		c.Testbed, c.App, c.Dataset, c.Policy, c.Mechanism, c.Epsilon,
		c.SamplePeriod, c.BandwidthAware, c.SkipValidate, c.FaultLabel,
		c.Telemetry, c.TraceDir, c.Governed, c.Async)
}

// ctx resolves the run's context.
func (c RunConfig) ctx() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// RunResult is the outcome of one benchmark run.
type RunResult struct {
	Config RunConfig
	// FirstIterSeconds is the first (cold, profiled under PolicyATMem)
	// iteration time.
	FirstIterSeconds float64
	// IterSeconds is the measured (second, warm) iteration time — the
	// quantity the paper reports (§6).
	IterSeconds float64
	// Migration reports the Optimize call (zero unless PolicyATMem).
	Migration atmem.MigrationReport
	// PostTLBMisses counts TLB misses during the measured iteration.
	PostTLBMisses uint64
	// PostLLCMisses counts LLC misses during the measured iteration.
	PostLLCMisses uint64
	// Samples is the number of attributed profiler samples.
	Samples int
	// DataRatio is the fraction of registered data on fast memory
	// during the measured iteration.
	DataRatio float64
	// Validated records whether the kernel result was checked.
	Validated bool
	// FaultEvents counts the faults the injector fired during the run
	// (0 without a FaultSchedule).
	FaultEvents int
	// TracePath is the Chrome trace written for this run (empty unless
	// TraceDir was set).
	TracePath string
	// OverlapSeconds and StolenSeconds report the overlapped-placement
	// clock accounting (zero unless Async): migration time hidden under
	// concurrently-running kernels, and the share charged back as stolen
	// copy bandwidth.
	OverlapSeconds float64
	StolenSeconds  float64
}

// Run executes one configuration from scratch: fresh runtime, setup, a
// first (profiled, under PolicyATMem) iteration, Optimize when
// applicable, then the measured iteration.
func Run(cfg RunConfig) (RunResult, error) {
	tb, err := TestbedFor(cfg.Testbed)
	if err != nil {
		return RunResult{}, err
	}
	// The matrix axis stays the compact Policy enum; runs install it
	// through the policy-object API the enum now shims to.
	pol, err := atmem.BuiltinPolicy(cfg.Policy)
	if err != nil {
		return RunResult{}, err
	}
	opts := []atmem.Option{
		atmem.WithPlacementPolicy(pol),
		atmem.WithEngine(cfg.Mechanism),
		atmem.WithSamplePeriod(cfg.SamplePeriod),
		atmem.WithBandwidthAware(cfg.BandwidthAware),
	}
	if cfg.FaultSchedule != nil {
		opts = append(opts, atmem.WithFaultSchedule(*cfg.FaultSchedule))
	}
	if cfg.Governed && cfg.Policy == atmem.PolicyATMem {
		opts = append(opts, atmem.WithGovernor(atmem.GovernorOptions{}))
	}
	if cfg.Async && cfg.Policy == atmem.PolicyATMem {
		opts = append(opts, atmem.WithAsyncPlacement(atmem.AsyncOptions{}))
	}
	if cfg.Telemetry || cfg.TraceDir != "" {
		opts = append(opts, atmem.WithTelemetry(telemetry.NewRecorder()))
	}
	if cfg.Epsilon > 0 {
		ac := core.DefaultConfig()
		ac.Epsilon = cfg.Epsilon
		opts = append(opts, atmem.WithAnalyzer(ac))
	}
	rt, err := atmem.New(tb, opts...)
	if err != nil {
		return RunResult{}, err
	}
	kern, err := apps.New(cfg.App)
	if err != nil {
		return RunResult{}, err
	}
	if err := kern.Setup(rt, cfg.Dataset); err != nil {
		return RunResult{}, fmt.Errorf("harness: %s/%s/%s setup: %w", cfg.Testbed, cfg.App, cfg.Dataset, err)
	}

	res := RunResult{Config: cfg}
	warmed := false
	switch {
	case cfg.Policy == atmem.PolicyATMem && cfg.Async:
		ctx := cfg.ctx()
		// Epoch 1 profiles the cold iteration; nothing is pending yet,
		// so it overlaps no migration.
		er, err := rt.RunEpochAsync(ctx, "profile", func() {
			res.FirstIterSeconds = kern.RunIteration(rt).Seconds
		})
		if err != nil {
			return res, fmt.Errorf("harness: %s epoch: %w", cfg.key(), err)
		}
		res.Samples = er.Samples
		// Epoch 2 doubles as the warm-up iteration: the profiled plan
		// migrates on the background service goroutine underneath it.
		er2, err := rt.RunEpochAsync(ctx, "overlap", func() { kern.RunIteration(rt) })
		if err != nil {
			return res, fmt.Errorf("harness: %s overlap epoch: %w", cfg.key(), err)
		}
		res.Migration = er2.Migration
		// Place the warm-up interval's samples (a near-empty delta on a
		// steady workload) before the measured iteration.
		if _, err := rt.DrainAsync(ctx); err != nil {
			return res, fmt.Errorf("harness: %s drain: %w", cfg.key(), err)
		}
		res.OverlapSeconds = rt.OverlapSeconds()
		res.StolenSeconds = rt.StolenSeconds()
		warmed = true
	case cfg.Policy == atmem.PolicyATMem && cfg.Governed:
		er, err := rt.RunEpochCtx(cfg.ctx(), "profile", func() {
			res.FirstIterSeconds = kern.RunIteration(rt).Seconds
		})
		if err != nil {
			return res, fmt.Errorf("harness: %s epoch: %w", cfg.key(), err)
		}
		res.Samples = er.Samples
		res.Migration = er.Migration
	case cfg.Policy == atmem.PolicyATMem:
		rt.ProfilingStart()
		first := kern.RunIteration(rt)
		res.FirstIterSeconds = first.Seconds
		res.Samples = rt.ProfilingStop()
		rep, err := rt.OptimizeCtx(cfg.ctx())
		if err != nil {
			return res, fmt.Errorf("harness: %s optimize: %w", cfg.key(), err)
		}
		res.Migration = rep
	default:
		res.FirstIterSeconds = kern.RunIteration(rt).Seconds
	}
	// One warm-up iteration before the measured one. The paper measures
	// the iteration right after migration; at our ~1000x-scaled dataset
	// sizes the post-migration cache-refill transient is proportionally
	// far larger than on the real testbeds, so every policy gets one
	// warm iteration first (see DESIGN.md). The async path already
	// warmed up: its overlap epoch ran a full iteration post-migration.
	if !warmed {
		kern.RunIteration(rt)
	}
	second := kern.RunIteration(rt)
	res.IterSeconds = second.Seconds
	res.PostTLBMisses = second.TLBMisses()
	res.PostLLCMisses = second.LLCMisses()
	res.DataRatio = rt.FastDataRatio()
	res.FaultEvents = len(rt.FaultEvents())
	if !cfg.SkipValidate {
		if err := kern.Validate(); err != nil {
			return res, fmt.Errorf("harness: %s validation: %w", cfg.key(), err)
		}
		res.Validated = true
	}
	if cfg.TraceDir != "" {
		path, err := writeTraceArtifacts(rt, cfg)
		if err != nil {
			return res, err
		}
		res.TracePath = path
	}
	return res, nil
}

// writeTraceArtifacts writes the run's trace JSON, CSV timeline, and
// chunk-heat dump into cfg.TraceDir and returns the trace path. Names
// embed the human-readable run coordinates plus a short hash of the full
// configuration key, so sweep variants never collide.
func writeTraceArtifacts(rt *atmem.Runtime, cfg RunConfig) (string, error) {
	stem := fmt.Sprintf("%s-%s-%s-%s-%08x", cfg.Testbed, cfg.App, cfg.Dataset,
		cfg.Policy, crc32.ChecksumIEEE([]byte(cfg.key())))
	return writeTraceArtifactsStem(rt, cfg.TraceDir, stem)
}

// writeTraceArtifactsStem writes a runtime's trace JSON, CSV timeline,
// and chunk-heat dump as <dir>/<stem>.* and returns the trace path.
func writeTraceArtifactsStem(rt *atmem.Runtime, dir, stem string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("harness: trace dir: %w", err)
	}
	write := func(name string, fn func(w io.Writer) error) (string, error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return "", fmt.Errorf("harness: trace artifact: %w", err)
		}
		if err := fn(f); err != nil {
			f.Close()
			return "", fmt.Errorf("harness: write %s: %w", path, err)
		}
		return path, f.Close()
	}
	tracePath, err := write(stem+".trace.json", rt.WriteTrace)
	if err != nil {
		return "", err
	}
	if _, err := write(stem+".timeline.csv", rt.WriteTraceCSV); err != nil {
		return "", err
	}
	if _, err := write(stem+".heat.csv", rt.WriteChunkHeat); err != nil {
		return "", err
	}
	// Governed runs carry per-epoch placement-quality scorecards; write
	// them next to the trace so a report can grade the run offline
	// (atmem-report -scorecard).
	if cards := rt.Scorecards(); len(cards) > 0 {
		if _, err := write(stem+".scorecards.json", func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(cards)
		}); err != nil {
			return "", err
		}
	}
	return tracePath, nil
}

// Suite memoizes Run results so experiments sharing configurations (fig5 /
// tab3 / fig7) execute each run once per process.
type Suite struct {
	mu    sync.Mutex
	cache map[string]RunResult
	// Verbose, when set, prints one line per executed run.
	Verbose bool
	// TraceDir, when set, applies to every run the suite executes that
	// does not name its own trace directory: each run records telemetry
	// and writes its trace artifacts there.
	TraceDir string
	// Async, when set, drives every PolicyATMem run the suite executes
	// through overlapped background placement (RunConfig.Async).
	Async bool
	// Faults, when non-nil, arms this fault-injection schedule on every
	// run the suite executes that does not carry its own schedule
	// (atmem-bench -faults). FaultLabel names it in the memoization key
	// and should be the schedule's canonical DSL string.
	Faults     *faultinject.Schedule
	FaultLabel string
	// DebugAddr, when set, attaches the live debug listener (/metrics,
	// /epochz, /healthz, pprof) to the long-running adaptive scenarios
	// (atmem-bench -debug-addr). The scenarios run sequentially and close
	// their runtime when done, so one fixed address serves them all; the
	// short memoized Run configurations never bind it.
	DebugAddr string
	// ServingTenants, when > 0, trims the serving experiment's cast to
	// the first N tenants of the default scenario (minimum 2 so the
	// storm victim stays in) — atmem-bench -serving-tenants.
	ServingTenants int
}

// NewSuite builds an empty suite.
func NewSuite() *Suite {
	return &Suite{cache: make(map[string]RunResult)}
}

// Run returns the memoized result for cfg, executing it on first use.
func (s *Suite) Run(cfg RunConfig) (RunResult, error) {
	if s.TraceDir != "" && cfg.TraceDir == "" {
		cfg.TraceDir = s.TraceDir
		cfg.Telemetry = true
	}
	if s.Async && cfg.Policy == atmem.PolicyATMem {
		cfg.Async = true
	}
	if s.Faults != nil && cfg.FaultSchedule == nil {
		cfg.FaultSchedule = s.Faults
		cfg.FaultLabel = s.FaultLabel
	}
	s.mu.Lock()
	if r, ok := s.cache[cfg.key()]; ok {
		s.mu.Unlock()
		return r, nil
	}
	s.mu.Unlock()
	r, err := Run(cfg)
	if err != nil {
		return r, err
	}
	if s.Verbose {
		fmt.Printf("  [run] %-4s %-5s %-10s %-11s iter=%.6fs ratio=%.3f\n",
			cfg.Testbed, cfg.App, cfg.Dataset, cfg.Policy, r.IterSeconds, r.DataRatio)
	}
	s.mu.Lock()
	s.cache[cfg.key()] = r
	s.mu.Unlock()
	return r, nil
}
