package harness

import (
	"fmt"
	"hash/crc32"
	"sort"
	"strings"

	"atmem"
	"atmem/apps"
	"atmem/internal/faultinject"
	"atmem/internal/governor"
	"atmem/internal/health"
	"atmem/internal/memsim"
	"atmem/internal/telemetry"
)

// This file implements the chaos-soak scenario: the adaptive-pressure
// workload shift (BFS warm-up → PageRank) run under an escalating
// persistent-fault and corruption schedule, with the tier-health
// subsystem (scoreboard, scrubber, quarantine ledger) switched on. It
// is the end-to-end proof of self-healing placement: the run must
// finish with a meaningful share of the fast tier quarantined, every
// injected corruption detected and demoted, no placement decision
// landing on retired pages, and results bit-identical to a fault-free
// run of the same epoch sequence.

// ChaosScenario configures one chaos-soak run.
type ChaosScenario struct {
	// Dataset names the input graph (both kernels load their own copy).
	Dataset string
	// WarmEpochs are fault-free BFS epochs that let the governor promote
	// a first hot set (and the scrubber snapshot it). The fault schedule
	// is armed after the last warm epoch, once object addresses and a
	// resident footprint exist to aim at.
	WarmEpochs int
	// StormEpochs are PR epochs under the armed schedule: a persistent
	// retier fault over the PR rank array (every promotion or demotion
	// touching it fails), escalating corruption waves over the PR edge
	// array, and one latency-degradation order. The schedule is disarmed
	// after the last storm epoch.
	StormEpochs int
	// CoolEpochs are fault-free PR epochs after the storm: the breaker
	// must recover and placement must keep routing around the retired
	// pages.
	CoolEpochs int
	// Governor configures the placement governor; Enabled is forced on.
	Governor atmem.GovernorOptions
	// Health is the scoreboard policy (zero fields take the health
	// package defaults). The default scenario shortens the persistence
	// threshold so the storm condemns granules within its window.
	Health health.Policy
	// QuarantineFraction is the share of the fast tier's capacity that
	// must be quarantined by the end of the storm (the acceptance bar;
	// default 0.05).
	QuarantineFraction float64
	// TraceDir, when non-empty, records telemetry on the faulted run and
	// writes the trace artifacts there.
	TraceDir string
}

// DefaultChaosScenario returns the scenario the chaos-soak experiment
// and the CI chaos job run: twitter (the largest graph whose two
// per-kernel copies still leave fast-tier headroom) with a shortened
// persistence threshold so the storm's failures condemn within the
// window, and a breaker threshold loose enough that promotion keeps
// being attempted while the storm escalates.
func DefaultChaosScenario() ChaosScenario {
	return ChaosScenario{
		Dataset:     "twitter",
		WarmEpochs:  3,
		StormEpochs: 8,
		CoolEpochs:  5,
		Governor: atmem.GovernorOptions{
			Enabled:           true,
			HighWatermark:     0.90,
			LowWatermark:      0.70,
			DemoteAfterEpochs: 2,
			BreakerThreshold:  4,
			BreakerCooldown:   1,
			MaxCooldown:       4,
		},
		Health: health.Policy{
			Window:              6,
			PersistentThreshold: 2,
			BackoffEpochs:       1,
			MaxBackoff:          4,
		},
		QuarantineFraction: 0.05,
	}
}

// ChaosEpoch is one epoch of the faulted run, for reports and asserts.
// The health counters are cumulative (the ledger only grows).
type ChaosEpoch struct {
	Epoch    int
	Workload string
	Seconds  float64
	// Quarantined and QuarantinedRanges mirror the ledger after the
	// epoch's migration and heal pass.
	Quarantined       uint64
	QuarantinedRanges int
	// CorruptedChunks, Detections, and Repairs track the corruption
	// pipeline; Vetoed and Condemned track the scoreboard's vetoes and
	// persistent-bad granules.
	CorruptedChunks int
	Detections      int
	Repairs         int
	Vetoed          int
	Condemned       int
	Breaker         string
	Outcome         string
}

// ChaosResult is the outcome of one chaos-soak scenario.
type ChaosResult struct {
	// Epochs are the faulted run's per-epoch records.
	Epochs []ChaosEpoch
	// BaselineCRC and ChaosCRC checksum every registered object (graph
	// arrays and kernel state) after the fault-free and faulted runs of
	// the same epoch sequence; self-healing means they are identical.
	BaselineCRC, ChaosCRC uint32
	// Health is the faulted run's final health snapshot.
	Health atmem.HealthStats
	// Transitions is the faulted run's breaker transition log.
	Transitions []governor.Transition
	// FinalState is the breaker state after the last epoch.
	FinalState governor.State
	// QuarantineTarget is the byte bar derived from QuarantineFraction;
	// TargetEpoch is the epoch that first crossed it (0 if never).
	QuarantineTarget uint64
	TargetEpoch      int
	// FaultEvents counts injector fires over the whole storm.
	FaultEvents int
	// TracePath is the written Chrome trace (empty without TraceDir).
	TracePath string
}

// chaosSide is one run (baseline or faulted) of the soak's shared epoch
// sequence.
type chaosSide struct {
	epochs      []ChaosEpoch
	crc         uint32
	ranks       []float64
	health      atmem.HealthStats
	transitions []governor.Transition
	finalState  governor.State
	faultEvents int
	targetEpoch int
	tracePath   string
}

// RunChaosSoak executes the scenario twice — fault-free, then under the
// escalating schedule — on fresh runtimes with the health subsystem on,
// and verifies the self-healing contract: the faulted run completes,
// crosses the quarantine bar during the storm, detects and repairs
// every injected corruption, never re-hosts a retired page, and ends
// with every object byte-identical to the fault-free run.
func RunChaosSoak(sc ChaosScenario) (*ChaosResult, error) {
	if sc.QuarantineFraction == 0 {
		sc.QuarantineFraction = 0.05
	}
	sc.Governor.Enabled = true

	base, err := sc.run(false)
	if err != nil {
		return nil, fmt.Errorf("harness: chaos baseline: %w", err)
	}
	faulted, err := sc.run(true)
	if err != nil {
		return nil, fmt.Errorf("harness: chaos faulted: %w", err)
	}

	res := &ChaosResult{
		Epochs:      faulted.epochs,
		BaselineCRC: base.crc,
		ChaosCRC:    faulted.crc,
		Health:      faulted.health,
		Transitions: faulted.transitions,
		FinalState:  faulted.finalState,
		TargetEpoch: faulted.targetEpoch,
		FaultEvents: faulted.faultEvents,
		TracePath:   faulted.tracePath,
	}
	fastCap := memsim.NVMDRAMParams().Tiers[memsim.TierFast].CapacityBytes
	res.QuarantineTarget = uint64(sc.QuarantineFraction * float64(fastCap))

	// The acceptance bars, in dependency order. Everything below is a
	// hard failure: the experiment's value is that these cannot rot.
	h := res.Health
	if h.CorruptedChunks == 0 {
		return res, fmt.Errorf("harness: chaos: no corruption order landed (schedule mis-aimed?)")
	}
	if h.Scrub.Detections != h.CorruptedChunks {
		return res, fmt.Errorf("harness: chaos: %d corrupted chunks but %d scrub detections — corruption escaped the scrubber",
			h.CorruptedChunks, h.Scrub.Detections)
	}
	if h.Scrub.Repairs != h.Scrub.Detections {
		return res, fmt.Errorf("harness: chaos: %d detections but %d repairs", h.Scrub.Detections, h.Scrub.Repairs)
	}
	if h.EmergencyDemotions != h.Scrub.Detections {
		return res, fmt.Errorf("harness: chaos: %d detections but %d emergency demotions",
			h.Scrub.Detections, h.EmergencyDemotions)
	}
	if h.Board.Condemned == 0 {
		return res, fmt.Errorf("harness: chaos: persistent storm never condemned a granule: %+v", h.Board)
	}
	if h.PromotionsVetoed == 0 {
		return res, fmt.Errorf("harness: chaos: no promotion was ever vetoed")
	}
	if h.Quarantined < res.QuarantineTarget {
		return res, fmt.Errorf("harness: chaos: quarantined %d bytes, below the %d-byte bar (%.0f%% of the fast tier)",
			h.Quarantined, res.QuarantineTarget, 100*sc.QuarantineFraction)
	}
	lastStorm := sc.WarmEpochs + sc.StormEpochs
	if res.TargetEpoch == 0 || res.TargetEpoch > lastStorm {
		return res, fmt.Errorf("harness: chaos: quarantine bar crossed at epoch %d, after the storm (epoch %d) — not mid-run",
			res.TargetEpoch, lastStorm)
	}
	if res.ChaosCRC != res.BaselineCRC {
		return res, fmt.Errorf("harness: chaos: results diverged from the fault-free run: %08x vs %08x",
			res.ChaosCRC, res.BaselineCRC)
	}
	// The PR ranks are compared value-wise at the kernel's own
	// validation tolerance (atomic float accumulation order varies with
	// thread interleaving, so bit-identity is not defined for them).
	if len(base.ranks) != len(faulted.ranks) {
		return res, fmt.Errorf("harness: chaos: rank vector length %d vs %d", len(faulted.ranks), len(base.ranks))
	}
	for v := range base.ranks {
		want, got := base.ranks[v], faulted.ranks[v]
		if diff := got - want; diff > 1e-12+1e-6*abs(want) || -diff > 1e-12+1e-6*abs(want) {
			return res, fmt.Errorf("harness: chaos: rank[%d] diverged from the fault-free run: %g vs %g", v, got, want)
		}
	}
	return res, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// run executes the scenario's epoch sequence once. The baseline and
// faulted sides share everything — runtime options, kernels, epoch
// names — except the armed schedule, so the final object bytes are
// comparable checksum-for-checksum.
func (sc ChaosScenario) run(faulted bool) (*chaosSide, error) {
	opts := []atmem.Option{
		atmem.WithPlacementPolicy(atmem.PaperPolicy()),
		atmem.WithGovernor(sc.Governor),
		atmem.WithScrubber(),
		atmem.WithHealthPolicy(sc.Health),
	}
	trace := faulted && sc.TraceDir != ""
	if trace {
		opts = append(opts, atmem.WithTelemetry(telemetry.NewRecorder()))
	}
	rt, err := atmem.New(atmem.NVMDRAM(), opts...)
	if err != nil {
		return nil, err
	}
	bfs, err := apps.New("bfs")
	if err != nil {
		return nil, err
	}
	pr, err := apps.New("pr")
	if err != nil {
		return nil, err
	}
	if err := bfs.Setup(rt, sc.Dataset); err != nil {
		return nil, fmt.Errorf("bfs setup: %w", err)
	}
	if err := pr.Setup(rt, sc.Dataset); err != nil {
		return nil, fmt.Errorf("pr setup: %w", err)
	}

	side := &chaosSide{}
	runOne := func(workload string, kern apps.Kernel) error {
		var iter apps.IterationResult
		name := fmt.Sprintf("%s-%d", workload, rt.Epoch()+1)
		er, err := rt.RunEpoch(name, func() { iter = kern.RunIteration(rt) })
		if err != nil {
			return fmt.Errorf("epoch %d (%s): %w", rt.Epoch(), workload, err)
		}
		st := rt.HealthStats()
		m := er.Migration
		outcome := "moved"
		switch {
		case m.BreakerSkipped:
			outcome = "skipped"
		case m.DeltaEmpty:
			outcome = "converged"
		case m.RegionsSkipped > 0:
			outcome = "degraded"
		}
		side.epochs = append(side.epochs, ChaosEpoch{
			Epoch:             er.Epoch,
			Workload:          workload,
			Seconds:           iter.Seconds,
			Quarantined:       st.Quarantined,
			QuarantinedRanges: st.QuarantinedRanges,
			CorruptedChunks:   st.CorruptedChunks,
			Detections:        st.Scrub.Detections,
			Repairs:           st.Scrub.Repairs,
			Vetoed:            st.PromotionsVetoed,
			Condemned:         st.Board.Condemned,
			Breaker:           m.Breaker,
			Outcome:           outcome,
		})
		// The ledger invariant, asserted after every single epoch: a
		// retired page never hosts fast bytes again, no matter what the
		// governor, the scrubber, or a replayed plan just did.
		for _, qr := range rt.System().QuarantinedRanges() {
			if on := rt.System().BytesOnTier(qr.Base, qr.Size); on[memsim.TierFast] != 0 {
				return fmt.Errorf("epoch %d: quarantined range [%#x,+%#x) hosts %d fast bytes",
					rt.Epoch(), qr.Base, qr.Size, on[memsim.TierFast])
			}
		}
		fastCap := memsim.NVMDRAMParams().Tiers[memsim.TierFast].CapacityBytes
		if side.targetEpoch == 0 && float64(st.Quarantined) >= sc.QuarantineFraction*float64(fastCap) {
			side.targetEpoch = er.Epoch
		}
		return nil
	}

	for i := 0; i < sc.WarmEpochs; i++ {
		if err := runOne("bfs", bfs); err != nil {
			return nil, err
		}
	}
	if faulted {
		if err := armChaosFaults(rt, sc); err != nil {
			return nil, err
		}
	}
	for i := 0; i < sc.StormEpochs; i++ {
		if err := runOne("pr", pr); err != nil {
			return nil, err
		}
	}
	if faulted {
		rt.DisarmFaults()
	}
	for i := 0; i < sc.CoolEpochs; i++ {
		if err := runOne("pr", pr); err != nil {
			return nil, err
		}
	}

	// Safety nets, both sides: results validate, no leaked staging
	// reservation, and the capacity ledger balances (including the
	// quarantined slice).
	if err := bfs.Validate(); err != nil {
		return nil, err
	}
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if leaked := rt.System().Reserved(t); leaked != 0 {
			return nil, fmt.Errorf("leaked %d reserved bytes on %s", leaked, t)
		}
	}
	if err := rt.System().CheckConsistency(); err != nil {
		return nil, err
	}

	side.crc = resultCRC(rt)
	if prk, ok := pr.(*apps.PageRank); ok {
		side.ranks = append([]float64(nil), prk.Ranks()...)
	}
	side.health = rt.HealthStats()
	side.transitions = rt.BreakerTransitions()
	side.finalState = rt.BreakerState()
	side.faultEvents = len(rt.FaultEvents())
	if trace {
		stem := fmt.Sprintf("nvm-chaos-soak-%s-%08x", sc.Dataset,
			crc32.ChecksumIEEE([]byte(fmt.Sprintf("%+v", sc))))
		path, err := writeTraceArtifactsStem(rt, sc.TraceDir, stem)
		if err != nil {
			return nil, err
		}
		side.tracePath = path
	}
	return side, nil
}

// armChaosFaults aims the escalating schedule at addresses that only
// exist after setup, using the run's actual residency: by the end of
// the BFS warm phase the whole BFS working set (offsets, edges, level)
// is fast-resident and scrub-tracked, while the PR arrays are about to
// be promoted for the first time.
//
//   - Persistent retier faults over the PR hot arrays (offsets, rank,
//     next): every promotion into them fails from the first storm
//     epoch, feeding the scoreboard until their granules are condemned
//     and their address ranges retired.
//   - Escalating corruption waves over the BFS-era residency (Nth
//     counts the injector's own epoch clock, which starts at arming):
//     storm epoch 1 flips bytes in a quarter of the BFS edge array,
//     epoch 2 in all of it plus the offsets, epoch 4 anywhere still
//     fast-resident. Every hit chunk must be detected, repaired,
//     demoted, and its pages retired.
//   - One latency-degradation order over the PR edge array (factor 4)
//     at storm epoch 3, exercising the degraded-range accounting on a
//     range the remaining epochs keep reading.
func armChaosFaults(rt *atmem.Runtime, sc ChaosScenario) error {
	obj := func(name string) (base, size uint64, err error) {
		for _, o := range rt.Objects() {
			if o.Name() == name {
				return o.Base(), o.Size(), nil
			}
		}
		return 0, 0, fmt.Errorf("chaos: no object %q registered", name)
	}
	prOffB, prOffS, err := obj("pr.offsets")
	if err != nil {
		return err
	}
	prRankB, prRankS, err := obj("pr.rank")
	if err != nil {
		return err
	}
	prNextB, prNextS, err := obj("pr.next")
	if err != nil {
		return err
	}
	prEdgesB, prEdgesS, err := obj("pr.edges")
	if err != nil {
		return err
	}
	bfsEdgesB, bfsEdgesS, err := obj("bfs.edges")
	if err != nil {
		return err
	}
	bfsOffB, bfsOffS, err := obj("bfs.offsets")
	if err != nil {
		return err
	}
	// The final wave sweeps the whole registered address space: whatever
	// is still fast-resident by then is fair game.
	var spanLo, spanHi uint64
	for _, o := range rt.Objects() {
		if spanHi == 0 || o.Base() < spanLo {
			spanLo = o.Base()
		}
		if end := o.Base() + o.Size(); end > spanHi {
			spanHi = end
		}
	}
	rt.ArmFaults(
		faultinject.Fault{Kind: faultinject.Persistent, Op: faultinject.OpRetier,
			Base: prOffB, Size: prOffS},
		faultinject.Fault{Kind: faultinject.Persistent, Op: faultinject.OpRetier,
			Base: prRankB, Size: prRankS},
		faultinject.Fault{Kind: faultinject.Persistent, Op: faultinject.OpRetier,
			Base: prNextB, Size: prNextS},
		faultinject.Fault{Kind: faultinject.Corrupt, Nth: 1,
			Base: bfsEdgesB, Size: bfsEdgesS / 4},
		faultinject.Fault{Kind: faultinject.Corrupt, Nth: 2,
			Base: bfsEdgesB, Size: bfsEdgesS},
		faultinject.Fault{Kind: faultinject.Corrupt, Nth: 2,
			Base: bfsOffB, Size: bfsOffS},
		faultinject.Fault{Kind: faultinject.Corrupt, Nth: 4,
			Base: spanLo, Size: spanHi - spanLo},
		faultinject.Fault{Kind: faultinject.Degrade, Nth: 3, Factor: 4,
			Base: prEdgesB, Size: prEdgesS},
	)
	return nil
}

// resultCRC checksums every deterministic registered object — the
// graph arrays and the kernels' converged integer results — in name
// order. Two runs of the same epoch sequence must produce the same
// value: placement, faults, and healing may never change a single
// result byte. Excluded are the scratch arrays (frontiers, merge
// buffers, claim stamps): the fixed point they drive toward is exact,
// but their residue — which round each vertex was claimed in, what a
// merge buffer held past its final length — depends on thread
// interleaving. The PR rank arrays and BC's accumulators are excluded
// for the same reason at the value level: atomic float adds reorder
// between runs; they are compared value-wise instead (see RunChaosSoak)
// and against the serial reference by Validate.
func resultCRC(rt *atmem.Runtime) uint32 {
	objs := rt.Objects()
	sort.Slice(objs, func(i, j int) bool { return objs[i].Name() < objs[j].Name() })
	crc := crc32.NewIEEE()
	for _, o := range objs {
		if scratchObject(o.Name()) {
			continue
		}
		crc.Write(o.Bytes())
	}
	return crc.Sum32()
}

// scratchObject reports whether the named object's bytes are
// interleaving-dependent and must stay out of determinism checksums.
func scratchObject(name string) bool {
	for _, suffix := range []string{".frontier", ".next", ".stamp"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	switch name {
	case "pr.rank", "bc.sigma", "bc.delta", "bc.score":
		return true
	}
	return false
}

// chaosSoak is the experiment wrapper: one faulted run rendered as one
// row per epoch, with the fault-free comparison in the note.
func chaosSoak(s *Suite) ([]*Report, error) {
	sc := DefaultChaosScenario()
	sc.TraceDir = s.TraceDir
	res, err := RunChaosSoak(sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "chaos-soak",
		Title: "Chaos soak: self-healing placement under an escalating persistent-fault and corruption storm (twitter, NVM-DRAM)",
		Columns: []string{"epoch", "workload", "iter(s)", "quarantined",
			"ranges", "detected", "repaired", "vetoed", "condemned",
			"breaker", "outcome"},
	}
	for _, e := range res.Epochs {
		rep.AddRow(
			fmt.Sprintf("%d", e.Epoch), e.Workload, secs(e.Seconds),
			fmt.Sprintf("%d", e.Quarantined),
			fmt.Sprintf("%d", e.QuarantinedRanges),
			fmt.Sprintf("%d", e.Detections),
			fmt.Sprintf("%d", e.Repairs),
			fmt.Sprintf("%d", e.Vetoed),
			fmt.Sprintf("%d", e.Condemned),
			e.Breaker, e.Outcome)
	}
	h := res.Health
	rep.AddNote("quarantined %d bytes (bar %d, crossed at epoch %d); %d corrupted chunks all detected, repaired, and demoted; %d promotions vetoed; breaker: %s (final %s); %d fault fires; results CRC %08x bit-identical to the fault-free run",
		h.Quarantined, res.QuarantineTarget, res.TargetEpoch,
		h.CorruptedChunks, h.PromotionsVetoed,
		transitionSummary(res.Transitions), res.FinalState,
		res.FaultEvents, res.ChaosCRC)
	return []*Report{rep}, nil
}
