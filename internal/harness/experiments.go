package harness

import (
	"fmt"
	"math"
	"sort"

	"atmem"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	// ID is the artifact id ("fig5", "tab4", ...).
	ID string
	// Title describes what the artifact shows.
	Title string
	// Run executes the experiment against a (memoizing) suite.
	Run func(s *Suite) ([]*Report, error)
}

// Experiments returns every experiment in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "fig1a", Title: "Slowdown of all-NVM vs all-DRAM placement (NVM-DRAM testbed)", Run: fig1a},
		{ID: "fig1b", Title: "Slowdown of all-DRAM vs MCDRAM-preferred placement (MCDRAM-DRAM testbed)", Run: fig1b},
		{ID: "fig5", Title: "Execution time: NVM baseline / ATMem / all-DRAM ideal (NVM-DRAM testbed)", Run: fig5},
		{ID: "tab3", Title: "ATMem slowdown vs all-DRAM ideal, min/max per app (NVM-DRAM testbed)", Run: tab3},
		{ID: "fig6", Title: "Execution time: DRAM baseline / ATMem / MCDRAM-p (MCDRAM-DRAM testbed)", Run: fig6},
		{ID: "fig7", Title: "Data ratio placed on DRAM by ATMem (NVM-DRAM testbed)", Run: fig7},
		{ID: "fig8", Title: "Data ratio placed on MCDRAM by ATMem (MCDRAM-DRAM testbed)", Run: fig8},
		{ID: "fig9", Title: "BFS time vs data ratio, ε sweep (NVM-DRAM testbed)", Run: fig9},
		{ID: "fig10", Title: "BFS time vs data ratio, ε sweep (MCDRAM-DRAM testbed)", Run: fig10},
		{ID: "tab4", Title: "TLB-miss and migration-time reduction vs mbind, PR (both testbeds)", Run: tab4},
		{ID: "overhead", Title: "Profiling and migration overhead analysis (§7.4)", Run: overhead},
	}
}

// ExperimentByID finds one experiment (paper artifacts and extensions).
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range AllExperiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// evalApps are the paper's five workloads, in its order.
var evalApps = []string{"bfs", "sssp", "pr", "bc", "cc"}

// fig1Apps are the workloads Figure 1 plots.
var fig1Apps = []string{"pr", "sssp", "bc"}

// evalDatasets are the five inputs, in the paper's order.
var evalDatasets = []string{"pokec", "rmat24", "twitter", "rmat27", "friendster"}

func secs(v float64) string  { return fmt.Sprintf("%.6f", v) }
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }
func pct(v float64) string   { return fmt.Sprintf("%.1f%%", 100*v) }

// idealPolicy is the per-testbed "ideal" reference of §7.1: all-DRAM on
// the NVM-DRAM testbed, MCDRAM-preferred on the capacity-limited KNL.
func idealPolicy(tb TestbedID) atmem.Policy {
	if tb == NVM {
		return atmem.PolicyAllFast
	}
	return atmem.PolicyPreferFast
}

// fig1a reports the normalized execution time of all-slow placement over
// all-fast placement on the NVM-DRAM testbed (paper Figure 1a).
func fig1a(s *Suite) ([]*Report, error) {
	return figure1(s, "fig1a", NVM, "all-NVM / all-DRAM")
}

// fig1b is the MCDRAM-DRAM counterpart; the reference is MCDRAM-preferred
// because MCDRAM cannot hold every dataset (§6).
func fig1b(s *Suite) ([]*Report, error) {
	return figure1(s, "fig1b", KNL, "all-DRAM / MCDRAM-p")
}

func figure1(s *Suite, id string, tb TestbedID, metric string) ([]*Report, error) {
	rep := &Report{
		ID:      id,
		Title:   "Normalized time, " + metric,
		Columns: append([]string{"dataset"}, fig1Apps...),
	}
	for _, ds := range evalDatasets {
		row := []string{ds}
		for _, app := range fig1Apps {
			slow, err := s.Run(RunConfig{Testbed: tb, App: app, Dataset: ds, Policy: atmem.PolicyBaseline})
			if err != nil {
				return nil, err
			}
			fast, err := s.Run(RunConfig{Testbed: tb, App: app, Dataset: ds, Policy: idealPolicy(tb)})
			if err != nil {
				return nil, err
			}
			row = append(row, ratio(slow.IterSeconds/fast.IterSeconds))
		}
		rep.AddRow(row...)
	}
	rep.AddNote("paper: up to ~10x slowdown on NVM-DRAM (Fig. 1a), up to ~3x on MCDRAM-DRAM (Fig. 1b)")
	return []*Report{rep}, nil
}

// overallRows collects the baseline/ATMem/ideal comparison rows for one
// testbed (Figures 5 and 6).
func overallRows(s *Suite, tb TestbedID) (*Report, error) {
	rep := &Report{
		ID:    map[TestbedID]string{NVM: "fig5", KNL: "fig6"}[tb],
		Title: "Per-iteration execution time by placement",
		Columns: []string{"app", "dataset", "baseline(s)", "atmem(s)", "ideal(s)",
			"atmem-speedup", "vs-ideal", "data-ratio", "degraded", "skipped-bytes", "faults"},
	}
	for _, app := range evalApps {
		for _, ds := range evalDatasets {
			base, err := s.Run(RunConfig{Testbed: tb, App: app, Dataset: ds, Policy: atmem.PolicyBaseline})
			if err != nil {
				return nil, err
			}
			at, err := s.Run(RunConfig{Testbed: tb, App: app, Dataset: ds, Policy: atmem.PolicyATMem})
			if err != nil {
				return nil, err
			}
			ideal, err := s.Run(RunConfig{Testbed: tb, App: app, Dataset: ds, Policy: idealPolicy(tb)})
			if err != nil {
				return nil, err
			}
			rep.AddRow(app, ds,
				secs(base.IterSeconds), secs(at.IterSeconds), secs(ideal.IterSeconds),
				ratio(base.IterSeconds/at.IterSeconds),
				pct(at.IterSeconds/ideal.IterSeconds-1),
				pct(at.DataRatio),
				fmt.Sprintf("%t", at.Migration.Degraded()),
				fmt.Sprintf("%d", at.Migration.SkippedBytes),
				fmt.Sprintf("%d", at.FaultEvents))
		}
	}
	return rep, nil
}

// fig5 is the NVM-DRAM overall-performance figure (paper Figure 5).
func fig5(s *Suite) ([]*Report, error) {
	rep, err := overallRows(s, NVM)
	if err != nil {
		return nil, err
	}
	rep.AddNote("paper: ATMem reaches 1.25x-8.4x over the all-NVM baseline")
	return []*Report{rep}, nil
}

// fig6 is the MCDRAM-DRAM overall-performance figure (paper Figure 6).
func fig6(s *Suite) ([]*Report, error) {
	rep, err := overallRows(s, KNL)
	if err != nil {
		return nil, err
	}
	rep.AddNote("paper: 1.1x-3x over the all-DRAM baseline; ATMem beats MCDRAM-p on datasets exceeding MCDRAM capacity")
	return []*Report{rep}, nil
}

// tab3 derives the paper's Table 3 (min/max ATMem slowdown vs the
// all-DRAM ideal per application) from the Figure 5 runs.
func tab3(s *Suite) ([]*Report, error) {
	rep := &Report{
		ID:      "tab3",
		Title:   "ATMem slowdown vs all-DRAM ideal (NVM-DRAM testbed)",
		Columns: []string{"slowdown", "bfs", "sssp", "pr", "bc", "cc"},
	}
	mins := make([]float64, len(evalApps))
	maxs := make([]float64, len(evalApps))
	for i, app := range evalApps {
		mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
		for _, ds := range evalDatasets {
			at, err := s.Run(RunConfig{Testbed: NVM, App: app, Dataset: ds, Policy: atmem.PolicyATMem})
			if err != nil {
				return nil, err
			}
			ideal, err := s.Run(RunConfig{Testbed: NVM, App: app, Dataset: ds, Policy: atmem.PolicyAllFast})
			if err != nil {
				return nil, err
			}
			slow := at.IterSeconds/ideal.IterSeconds - 1
			mins[i] = math.Min(mins[i], slow)
			maxs[i] = math.Max(maxs[i], slow)
		}
	}
	minRow, maxRow := []string{"min"}, []string{"max"}
	for i := range evalApps {
		minRow = append(minRow, pct(mins[i]))
		maxRow = append(maxRow, pct(maxs[i]))
	}
	rep.AddRow(minRow...)
	rep.AddRow(maxRow...)
	rep.AddNote("paper Table 3: min 9%%-54%%, max 1.8x-3.0x per app")
	return []*Report{rep}, nil
}

// dataRatioReport renders Figures 7/8: the fraction of data ATMem placed
// on the high-performance memory, per app and dataset.
func dataRatioReport(s *Suite, id string, tb TestbedID) ([]*Report, error) {
	rep := &Report{
		ID:      id,
		Title:   "Data ratio selected onto fast memory by ATMem",
		Columns: append([]string{"dataset"}, evalApps...),
	}
	for _, ds := range evalDatasets {
		row := []string{ds}
		for _, app := range evalApps {
			at, err := s.Run(RunConfig{Testbed: tb, App: app, Dataset: ds, Policy: atmem.PolicyATMem})
			if err != nil {
				return nil, err
			}
			row = append(row, pct(at.DataRatio))
		}
		rep.AddRow(row...)
	}
	rep.AddNote("paper: ATMem selects ~5%%-18%% of data overall (3.8%%-18.2%% on MCDRAM)")
	return []*Report{rep}, nil
}

func fig7(s *Suite) ([]*Report, error) { return dataRatioReport(s, "fig7", NVM) }
func fig8(s *Suite) ([]*Report, error) { return dataRatioReport(s, "fig8", KNL) }

// sweepEpsilons are the ε values swept for Figures 9/10; larger ε raises
// every object's tree-ratio threshold, shrinking the promoted selection.
var sweepEpsilons = []float64{
	0.02, 0.05, 0.08, 0.1, 0.11, 0.12, 0.13, 0.14, 0.15, 0.17,
	0.2, 0.25, 0.3, 0.4, 0.5, 0.65, 0.8, 0.999,
}

// epsilonSweep renders Figures 9/10: BFS time as a function of the data
// ratio obtained by sweeping ε (§7.2).
func epsilonSweep(s *Suite, id string, tb TestbedID) ([]*Report, error) {
	var reports []*Report
	for _, ds := range evalDatasets {
		rep := &Report{
			ID:      fmt.Sprintf("%s-%s", id, ds),
			Title:   fmt.Sprintf("BFS on %s: time vs data ratio (ε sweep)", ds),
			Columns: []string{"epsilon", "data-ratio", "time(s)"},
		}
		type point struct {
			eps, ratio, t float64
		}
		var pts []point
		for _, eps := range sweepEpsilons {
			r, err := s.Run(RunConfig{
				Testbed: tb, App: "bfs", Dataset: ds,
				Policy: atmem.PolicyATMem, Epsilon: eps, SkipValidate: true,
			})
			if err != nil {
				return nil, err
			}
			pts = append(pts, point{eps, r.DataRatio, r.IterSeconds})
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].ratio < pts[j].ratio })
		for _, p := range pts {
			rep.AddRow(fmt.Sprintf("%.3f", p.eps), pct(p.ratio), secs(p.t))
		}
		// The automatic configuration's operating point.
		auto, err := s.Run(RunConfig{Testbed: tb, App: "bfs", Dataset: ds, Policy: atmem.PolicyATMem})
		if err != nil {
			return nil, err
		}
		rep.AddNote("default ε operating point: ratio %s at %ss", pct(auto.DataRatio), secs(auto.IterSeconds))
		reports = append(reports, rep)
	}
	return reports, nil
}

func fig9(s *Suite) ([]*Report, error)  { return epsilonSweep(s, "fig9", NVM) }
func fig10(s *Suite) ([]*Report, error) { return epsilonSweep(s, "fig10", KNL) }

// tab4 compares the multi-stage multi-threaded migration against the
// mbind engine on PageRank: post-migration TLB misses and migration time
// (paper Table 4).
func tab4(s *Suite) ([]*Report, error) {
	rep := &Report{
		ID:    "tab4",
		Title: "Reduction vs mbind (values are mbind/ATMem)",
		Columns: []string{"dataset",
			"nvm-tlb-misses", "nvm-time", "knl-tlb-misses", "knl-time"},
	}
	type agg struct{ tlb, t []float64 }
	sums := map[TestbedID]*agg{NVM: {}, KNL: {}}
	for _, ds := range evalDatasets {
		row := []string{ds}
		for _, tb := range []TestbedID{NVM, KNL} {
			at, err := s.Run(RunConfig{Testbed: tb, App: "pr", Dataset: ds,
				Policy: atmem.PolicyATMem, Mechanism: atmem.MigrateATMem})
			if err != nil {
				return nil, err
			}
			mb, err := s.Run(RunConfig{Testbed: tb, App: "pr", Dataset: ds,
				Policy: atmem.PolicyATMem, Mechanism: atmem.MigrateMbind})
			if err != nil {
				return nil, err
			}
			tlbRed := float64(mb.PostTLBMisses) / float64(max64(at.PostTLBMisses, 1))
			timeRed := mb.Migration.Seconds / at.Migration.Seconds
			row = append(row, ratio(tlbRed), ratio(timeRed))
			sums[tb].tlb = append(sums[tb].tlb, tlbRed)
			sums[tb].t = append(sums[tb].t, timeRed)
		}
		rep.AddRow(row...)
	}
	avg := func(xs []float64) float64 {
		var s float64
		for _, v := range xs {
			s += v
		}
		return s / float64(len(xs))
	}
	rep.AddRow("avg",
		ratio(avg(sums[NVM].tlb)), ratio(avg(sums[NVM].t)),
		ratio(avg(sums[KNL].tlb)), ratio(avg(sums[KNL].t)))
	rep.AddNote("paper Table 4 averages: NVM-DRAM 20.98x TLB / 2.07x time; MCDRAM-DRAM 1.72x TLB / 5.32x time")
	return []*Report{rep}, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// overhead reproduces the §7.4 analysis: profiling cost relative to an
// unprofiled first iteration, and how many optimized iterations amortize
// profiling + migration.
func overhead(s *Suite) ([]*Report, error) {
	rep := &Report{
		ID:    "overhead",
		Title: "ATMem overhead: profiling cost and amortization (NVM-DRAM testbed)",
		Columns: []string{"app", "dataset", "profiling-overhead",
			"migration(s)", "gain-per-iter(s)", "amortize-iters"},
	}
	for _, app := range evalApps {
		for _, ds := range []string{"pokec", "friendster"} {
			base, err := s.Run(RunConfig{Testbed: NVM, App: app, Dataset: ds, Policy: atmem.PolicyBaseline})
			if err != nil {
				return nil, err
			}
			at, err := s.Run(RunConfig{Testbed: NVM, App: app, Dataset: ds, Policy: atmem.PolicyATMem})
			if err != nil {
				return nil, err
			}
			// Profiling overhead: the ATMem run's first iteration is
			// cold AND profiled; the baseline's first iteration is cold
			// and unprofiled. Same placement (both on the slow tier).
			profOvh := at.FirstIterSeconds/base.FirstIterSeconds - 1
			gain := base.IterSeconds - at.IterSeconds
			amort := "n/a"
			if gain > 0 {
				amort = fmt.Sprintf("%.1f", (at.Migration.Seconds+
					(at.FirstIterSeconds-base.FirstIterSeconds))/gain)
			}
			rep.AddRow(app, ds, pct(profOvh),
				secs(at.Migration.Seconds), secs(gain), amort)
		}
	}
	rep.AddNote("paper: profiling < 10%% of the first iteration; overhead amortized within a few iterations")
	return []*Report{rep}, nil
}
