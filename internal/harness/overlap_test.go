package harness

import (
	"testing"

	"atmem"
	"atmem/internal/governor"
)

// reducedScenario shrinks the adaptive-pressure scenario to a test-sized
// epoch sequence; it keeps the reserve trajectory (and therefore the
// migration pressure) of the full experiment.
func reducedScenario() AdaptiveScenario {
	sc := DefaultAdaptiveScenario()
	sc.BFSEpochs = 2
	sc.ShiftEpochs = 2
	sc.HoldEpochs = 4
	return sc
}

// TestOverlapBeatsStopTheWorld guards the overlap experiment's
// acceptance property at test cost: the identical reduced scenario must
// finish in strictly fewer simulated seconds overlapped than
// stop-the-world, with bit-identical graph data. RunAdaptivePressure
// itself additionally verifies kernel validation and ledger consistency
// in both modes.
func TestOverlapBeatsStopTheWorld(t *testing.T) {
	sync, err := RunAdaptivePressure(reducedScenario())
	if err != nil {
		t.Fatal(err)
	}
	async := reducedScenario()
	async.Async = true
	over, err := RunAdaptivePressure(async)
	if err != nil {
		t.Fatal(err)
	}

	if over.TotalSimSeconds >= sync.TotalSimSeconds {
		t.Errorf("overlapped %.9fs not faster than stop-the-world %.9fs",
			over.TotalSimSeconds, sync.TotalSimSeconds)
	}
	if over.DataCRC != sync.DataCRC {
		t.Errorf("graph data diverged: overlapped %08x vs stop-the-world %08x",
			over.DataCRC, sync.DataCRC)
	}
	if over.OverlapSeconds <= 0 || over.StolenSeconds <= 0 {
		t.Errorf("overlapped run hid no migration time: overlap=%.9f stolen=%.9f",
			over.OverlapSeconds, over.StolenSeconds)
	}
	if sync.OverlapSeconds != 0 || sync.StolenSeconds != 0 {
		t.Errorf("stop-the-world run reported overlap accounting: overlap=%.9f stolen=%.9f",
			sync.OverlapSeconds, sync.StolenSeconds)
	}
	// Both pipelines settle the same placement once the async tail is
	// drained.
	if over.ResidentBytes != sync.ResidentBytes {
		t.Errorf("modes converged to different residency: overlapped %d vs stop-the-world %d",
			over.ResidentBytes, sync.ResidentBytes)
	}
}

// TestOverlapSurvivesFaultStorm runs the reduced scenario overlapped
// with every staging reservation failing through epoch 5: placement
// degrades (breaker opens, regions skip) but data stays CRC-identical to
// the fault-free modes and the breaker recovers once the storm lifts.
func TestOverlapSurvivesFaultStorm(t *testing.T) {
	clean, err := RunAdaptivePressure(reducedScenario())
	if err != nil {
		t.Fatal(err)
	}
	sc := reducedScenario()
	sc.Async = true
	sc.FaultSchedule = AdaptiveFaultSchedule()
	sc.FaultEpochs = 5
	res, err := RunAdaptivePressure(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultEvents == 0 {
		t.Error("fault storm never fired")
	}
	if res.DataCRC != clean.DataCRC {
		t.Errorf("faulted overlapped run changed graph data: %08x vs %08x",
			res.DataCRC, clean.DataCRC)
	}
	if res.FinalState != governor.StateClosed {
		t.Errorf("breaker did not recover after the storm: %s", res.FinalState)
	}
}

// TestSuiteAsyncFlagThreadsThroughRuns pins the CLI surface: a suite
// with Async set drives ATMem-policy runs through the overlapped path
// (overlap accounting present) and leaves baseline runs untouched.
func TestSuiteAsyncFlagThreadsThroughRuns(t *testing.T) {
	s := NewSuite()
	s.Async = true
	at, err := s.Run(RunConfig{Testbed: NVM, App: "pr", Dataset: "pokec", Policy: atmem.PolicyATMem})
	if err != nil {
		t.Fatal(err)
	}
	if at.OverlapSeconds <= 0 {
		t.Errorf("suite async run hid no migration time: %+v", at.OverlapSeconds)
	}
	if at.Migration.BytesMoved == 0 {
		t.Error("suite async run migrated nothing")
	}
	if !at.Validated {
		t.Error("suite async run failed validation")
	}
	base, err := s.Run(RunConfig{Testbed: NVM, App: "pr", Dataset: "pokec", Policy: atmem.PolicyBaseline})
	if err != nil {
		t.Fatal(err)
	}
	if base.OverlapSeconds != 0 || base.Migration.BytesMoved != 0 {
		t.Errorf("baseline run under async suite migrated: %+v", base.Migration)
	}
}
