package harness

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"atmem"
	"atmem/internal/governor"
	"atmem/internal/telemetry"
)

func logAdaptiveEpochs(t *testing.T, res *AdaptiveResult) {
	t.Helper()
	for _, e := range res.Epochs {
		m := e.Migration
		t.Logf("epoch %2d %-3s reserve=%dMiB samples=%d +%d/-%d pressure=%d resident=%d breaker=%s skipped=%t empty=%t regskip=%d",
			e.Epoch, e.Workload, e.Reserve>>20, e.Samples,
			m.PromotedBytes, m.DemotedBytes, m.PressureDemotedBytes,
			m.ResidentBytes, m.Breaker, m.BreakerSkipped, m.DeltaEmpty, m.RegionsSkipped)
	}
	t.Logf("transitions: %s; final=%s; faults=%d", transitionSummary(res.Transitions), res.FinalState, res.FaultEvents)
}

// TestAdaptivePressureConvergence is the fault-free acceptance run: the
// governed runtime follows the BFS→PR hot-set shift under a tightening
// reserve, funds the new hot set by demoting the old one, and converges
// — empty deltas, nothing moving — within DemoteAfterEpochs+2 epochs of
// the reserve settling, staying converged for the rest of the hold
// window (no thrash). RunAdaptivePressure itself asserts CRC-identical
// graph data, validated results, and a leak-free ledger.
func TestAdaptivePressureConvergence(t *testing.T) {
	sc := DefaultAdaptiveScenario()
	res, err := RunAdaptivePressure(sc)
	if err != nil {
		logAdaptiveEpochs(t, res)
		t.Fatal(err)
	}
	logAdaptiveEpochs(t, res)

	// The first BFS epoch promotes the BFS hot set.
	if res.Epochs[0].Migration.PromotedBytes == 0 {
		t.Error("first BFS epoch promoted nothing")
	}
	// The shift runs under pressure: with both hot sets oversubscribing
	// the tightened budget, the watermarks must force demotions ahead of
	// hysteresis expiry in at least one PR epoch.
	pressured := false
	for _, e := range res.Epochs[res.ShiftStart():] {
		if e.Migration.PressureDemotedBytes > 0 {
			pressured = true
		}
	}
	if !pressured {
		t.Error("no epoch used pressure demotion: the shift never oversubscribed the watermarks (retune reserves)")
	}
	// Convergence: every epoch after the settle window is an empty delta.
	settle := res.HoldStart() + sc.Governor.DemoteAfterEpochs + 2
	if tail := len(res.Epochs) - settle; tail < 10 {
		t.Fatalf("scenario leaves only %d epochs after the settle window, need >= 10", tail)
	}
	for _, e := range res.Epochs[settle:] {
		m := e.Migration
		if !m.DeltaEmpty || m.BytesMoved != 0 {
			t.Errorf("epoch %d after settle window not converged: empty=%t moved=%d",
				e.Epoch, m.DeltaEmpty, m.BytesMoved)
		}
	}
	// The breaker never had a reason to move.
	if len(res.Transitions) != 0 || res.FinalState != governor.StateClosed {
		t.Errorf("fault-free run moved the breaker: %s (final %s)",
			transitionSummary(res.Transitions), res.FinalState)
	}
}

// TestAdaptivePressureBreakerRideThrough is the faulted acceptance run:
// a schedule that fails every staging reservation through epoch 11
// would, without the governor, degrade every single epoch. The breaker
// must open instead, skip epochs while the faults persist, and close
// again via a half-open probe once the storm ends — with the kernels
// running and validating throughout.
func TestAdaptivePressureBreakerRideThrough(t *testing.T) {
	sc := DefaultAdaptiveScenario()
	sc.FaultSchedule = AdaptiveFaultSchedule()
	sc.FaultEpochs = adaptiveFaultEpochs
	res, err := RunAdaptivePressure(sc)
	if err != nil {
		logAdaptiveEpochs(t, res)
		t.Fatal(err)
	}
	logAdaptiveEpochs(t, res)

	if res.FaultEvents == 0 {
		t.Fatal("fault schedule never fired")
	}
	var opened, reclosed bool
	skipped := 0
	for _, tr := range res.Transitions {
		if tr.From == governor.StateClosed && tr.To == governor.StateOpen {
			opened = true
		}
		if tr.From == governor.StateHalfOpen && tr.To == governor.StateClosed {
			reclosed = true
		}
	}
	for _, e := range res.Epochs {
		if e.Migration.BreakerSkipped {
			skipped++
		}
	}
	if !opened {
		t.Error("breaker never opened under the fault storm")
	}
	if skipped == 0 {
		t.Error("open breaker never skipped an epoch")
	}
	if !reclosed {
		t.Error("breaker never closed again after the faults stopped")
	}
	if res.FinalState != governor.StateClosed {
		t.Errorf("final breaker state %s, want closed", res.FinalState)
	}
	// After recovery the run still converges: the last epoch is an empty
	// delta with the PR hot set resident.
	last := res.Epochs[len(res.Epochs)-1].Migration
	if !last.DeltaEmpty || last.ResidentBytes == 0 {
		t.Errorf("faulted run did not re-converge: empty=%t resident=%d",
			last.DeltaEmpty, last.ResidentBytes)
	}
}

// TestAdaptivePressureSmoke is CI's adaptive-pressure smoke step: the
// faulted scenario with tracing on must produce a parseable Chrome trace
// carrying the governor's control-plane structure — one span per epoch
// and the breaker's transition instants. Set ATMEM_ADAPTIVE_OUT to a
// directory to keep the artifacts (CI uploads them).
func TestAdaptivePressureSmoke(t *testing.T) {
	dir := os.Getenv("ATMEM_ADAPTIVE_OUT")
	if dir == "" {
		dir = t.TempDir()
	}
	sc := DefaultAdaptiveScenario()
	sc.FaultSchedule = AdaptiveFaultSchedule()
	sc.FaultEpochs = adaptiveFaultEpochs
	sc.TraceDir = dir
	res, err := RunAdaptivePressure(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TracePath == "" {
		t.Fatal("no trace written")
	}
	f, err := os.Open(res.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := telemetry.ReadChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	count := func(cat, name string) int {
		n := 0
		for _, e := range events {
			if (cat == "" || e.Cat == cat) && (name == "" || strings.HasPrefix(e.Name, name)) {
				n++
			}
		}
		return n
	}
	// One epoch span per epoch the scenario ran (begin+end pair or a
	// single complete event depending on the recorder's encoding — count
	// names on the epoch track instead of event phases).
	if got := count("epoch", ""); got == 0 {
		t.Error("trace has no epoch spans")
	}
	// Every breaker transition surfaced as a governor instant.
	if got := count("governor", "breaker-"); got != len(res.Transitions) {
		t.Errorf("breaker instants in trace %d != transitions %d", got, len(res.Transitions))
	}
	if len(res.Transitions) == 0 {
		t.Error("faulted smoke run produced no breaker transitions")
	}
	// Fault events made it into the trace.
	if got := count("fault", ""); got != res.FaultEvents {
		t.Errorf("fault events in trace %d != injector count %d", got, res.FaultEvents)
	}
	// Companion artifacts exist and are non-empty.
	stem := strings.TrimSuffix(res.TracePath, ".trace.json")
	for _, suffix := range []string{".timeline.csv", ".heat.csv"} {
		st, err := os.Stat(stem + suffix)
		if err != nil {
			t.Errorf("missing artifact: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", stem+suffix)
		}
	}
	// The governed run's scorecards artifact: one card per epoch,
	// round-tripping through JSON bit-exact with the in-memory result.
	if len(res.Scorecards) != len(res.Epochs) {
		t.Fatalf("%d scorecards for %d epochs", len(res.Scorecards), len(res.Epochs))
	}
	data, err := os.ReadFile(stem + ".scorecards.json")
	if err != nil {
		t.Fatalf("missing scorecards artifact: %v", err)
	}
	var cards []atmem.Scorecard
	if err := json.Unmarshal(data, &cards); err != nil {
		t.Fatalf("scorecards artifact not valid JSON: %v", err)
	}
	if len(cards) != len(res.Scorecards) {
		t.Fatalf("artifact has %d scorecards, result has %d", len(cards), len(res.Scorecards))
	}
	for i, c := range cards {
		if c != res.Scorecards[i] {
			t.Errorf("scorecard %d diverged across the JSON round trip", i)
		}
	}
}

// TestGovernedHarnessRun checks the RunConfig.Governed plumbing: a
// governed harness run goes through RunEpoch and its report carries the
// governor fields.
func TestGovernedHarnessRun(t *testing.T) {
	res, err := Run(RunConfig{Testbed: NVM, App: "pr", Dataset: "pokec",
		Policy: atmem.PolicyATMem, Governed: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migration.Epoch != 1 {
		t.Errorf("governed run epoch = %d, want 1", res.Migration.Epoch)
	}
	if res.Migration.Breaker != "closed" {
		t.Errorf("governed run breaker = %q, want closed", res.Migration.Breaker)
	}
	if res.Migration.PromotedBytes == 0 {
		t.Error("governed run promoted nothing")
	}
	if !res.Validated {
		t.Error("governed run skipped validation")
	}
}
