package harness

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"atmem"
)

func logServingEpochs(t *testing.T, res *ServingResult) {
	t.Helper()
	for _, e := range res.Epochs {
		t.Logf("round %2d %-8s epoch %2d share=%.3f solo=%.3f phase=%.4fs slo=%.4fs grant=%dMiB quar=%d shed=%t breaker=%s",
			e.Round, e.Tenant, e.Epoch, e.FastShare, e.SoloFastShare,
			e.PhaseSeconds, e.SLO, e.ShareBytes>>20, e.QuarantinedBytes, e.Shed, e.Breaker)
	}
}

// TestServing is the serving scenario's acceptance run and CI's smoke
// step in one: four tenants share the broker-arbitrated fast tier
// through arrivals, a departure, and a mid-run persistent-fault +
// corruption storm against one of them. RunServing itself enforces the
// isolation bars (solo-mean fast share, per-epoch phase SLO, victim
// recovery, bit-identical results, admission never oversubscribing,
// leak-free teardown); the assertions below pin the surrounding
// structure. Set ATMEM_SERVING_OUT to a directory to keep the victim's
// trace + scorecard artifacts (CI uploads them).
func TestServing(t *testing.T) {
	dir := os.Getenv("ATMEM_SERVING_OUT")
	if dir == "" {
		dir = t.TempDir()
	}
	sc := DefaultServingScenario()
	sc.TraceDir = dir
	res, err := RunServing(sc)
	if res != nil {
		logServingEpochs(t, res)
	}
	if err != nil {
		t.Fatal(err)
	}

	// Every tenant-round produced exactly one scorecarded epoch.
	want := 0
	for _, tc := range sc.Tenants {
		want += sc.tenantRounds(tc)
	}
	if got := len(res.Epochs); got != want {
		t.Errorf("recorded %d tenant-epochs, want %d", got, want)
	}
	// Every tenant's shared-run results were checked against its solo
	// baseline (finishMember fails otherwise, but the map proves all
	// four got there).
	if got := len(res.CRCs); got != len(sc.Tenants) {
		t.Errorf("result CRCs for %d tenants, want %d", got, len(sc.Tenants))
	}
	// The oversubscription probe fired and was a typed admission error.
	if !errors.Is(res.RejectErr, atmem.ErrAdmission) {
		t.Errorf("oversubscription probe error = %v, want ErrAdmission", res.RejectErr)
	}
	// The storm actually cost the victim fast-tier capacity.
	if res.VictimQuarantined == 0 {
		t.Error("victim has no quarantine debit — the storm never landed")
	}
	// The arbiter did real work: at least one rebalance granted share.
	granted := 0
	for _, rr := range res.Rebalances {
		if rr.GrantedTo != "" {
			granted++
		}
	}
	if granted == 0 {
		t.Error("no rebalance round granted share to a hungry tenant")
	}

	// The victim's artifacts: a parseable trace plus timeline, heat, and
	// scorecard companions.
	if res.TracePath == "" {
		t.Fatal("no trace written")
	}
	stem := strings.TrimSuffix(res.TracePath, ".trace.json")
	for _, suffix := range []string{".trace.json", ".timeline.csv", ".heat.csv"} {
		st, err := os.Stat(stem + suffix)
		if err != nil {
			t.Errorf("missing artifact: %v", err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", stem+suffix)
		}
	}
	data, err := os.ReadFile(stem + ".scorecards.json")
	if err != nil {
		t.Fatalf("missing scorecards artifact: %v", err)
	}
	var cards []atmem.Scorecard
	if err := json.Unmarshal(data, &cards); err != nil {
		t.Fatalf("scorecards artifact not valid JSON: %v", err)
	}
	victimEpochs := 0
	for _, e := range res.Epochs {
		if e.Tenant == "bravo" {
			victimEpochs++
		}
	}
	if len(cards) != victimEpochs {
		t.Errorf("scorecards artifact has %d cards for %d victim epochs", len(cards), victimEpochs)
	}
}

// TestServingScenarioValidates pins the scenario preconditions: exactly
// one victim.
func TestServingScenarioValidates(t *testing.T) {
	sc := DefaultServingScenario()
	for i := range sc.Tenants {
		sc.Tenants[i].Victim = true
	}
	if _, err := RunServing(sc); err == nil {
		t.Fatal("scenario with every tenant a victim was accepted")
	}
	for i := range sc.Tenants {
		sc.Tenants[i].Victim = false
	}
	if _, err := RunServing(sc); err == nil {
		t.Fatal("scenario with no victim was accepted")
	}
}
