package harness

import (
	"context"
	"fmt"
	"hash/crc32"
	"strings"

	"atmem"
	"atmem/apps"
	"atmem/internal/faultinject"
	"atmem/internal/governor"
	"atmem/internal/memsim"
	"atmem/internal/telemetry"
)

// This file implements the adaptive-pressure scenario: the epoch-
// adaptive governor driven through a workload shift (BFS's hot set →
// PageRank's hot set) on one shared runtime while the fast-tier budget
// tightens underneath it, with and without injected migration faults.
// It is the end-to-end exercise of the governor's three mechanisms —
// residency deltas, watermark demotion, and the circuit breaker — on
// real kernels rather than synthetic arrays.

// AdaptiveScenario configures one adaptive-pressure run.
type AdaptiveScenario struct {
	// Dataset names the input graph (both kernels load it).
	Dataset string
	// BFSEpochs, ShiftEpochs, and HoldEpochs structure the epoch
	// sequence: BFS-hot epochs at ReserveStart, then PR epochs during
	// which the capacity reserve tightens linearly to ReserveEnd, then
	// PR epochs holding the final reserve (the convergence window).
	BFSEpochs, ShiftEpochs, HoldEpochs int
	// ReserveStart and ReserveEnd bound the fast-tier capacity reserve
	// (ReserveEnd >= ReserveStart: the budget only shrinks).
	ReserveStart, ReserveEnd uint64
	// Governor configures the placement governor; Enabled is forced on.
	Governor atmem.GovernorOptions
	// FaultSchedule, when non-nil, arms fault injection for the
	// scenario.
	FaultSchedule *faultinject.Schedule
	// FaultEpochs, when non-zero, disarms the schedule after that many
	// epochs (Runtime.DisarmFaults) — the storm ends, and the breaker
	// must recover. Zero keeps the faults armed throughout.
	FaultEpochs int
	// Async drives the epochs through overlapped background placement
	// (RunEpochAsync, one interval deep, drained after the last epoch)
	// instead of the stop-the-world RunEpoch.
	Async bool
	// StealFraction overrides the overlapped-copy bandwidth steal (see
	// atmem.AsyncOptions); 0 keeps the default. Only meaningful with
	// Async.
	StealFraction float64
	// TraceDir, when non-empty, records telemetry and writes the trace
	// artifacts there.
	TraceDir string
	// DebugAddr, when non-empty, serves the live debug endpoints
	// (/metrics, /epochz, /healthz, net/http/pprof) on this address for
	// the duration of the run — the scenario is long enough to scrape
	// mid-flight, which is exactly what the CI metrics-smoke step does.
	DebugAddr string
}

// DefaultAdaptiveScenario returns the scenario the adaptive-pressure
// experiment and the CI smoke run use: pokec on the NVM-DRAM testbed
// with the reserve tightened until the two hot sets no longer fit side
// by side.
func DefaultAdaptiveScenario() AdaptiveScenario {
	return AdaptiveScenario{
		Dataset:      "pokec",
		BFSEpochs:    3,
		ShiftEpochs:  4,
		HoldEpochs:   14,
		ReserveStart: 92 << 20,
		ReserveEnd:   94 << 20,
		Governor: atmem.GovernorOptions{
			Enabled:           true,
			HighWatermark:     0.90,
			LowWatermark:      0.70,
			DemoteAfterEpochs: 2,
			BreakerThreshold:  2,
			BreakerCooldown:   1,
			MaxCooldown:       4,
		},
	}
}

// adaptiveFaultEpochs bounds the fault storm of the faulted variant.
// The breaker's trajectory under an every-reservation-fails storm is
// fixed by the governor config alone (epochs 1-2 degrade and open it;
// half-open probes at epochs 4 and 7 fail; backoff doubles 1→2→4), so
// disarming after epoch 11 makes the epoch-12 probe the first to run
// fault-free: it succeeds, the breaker closes, and the hold window
// still has a long tail to converge in. An epoch bound — unlike a fire
// budget — is independent of how many regions each degraded epoch's
// staging ladder happens to burn, which varies with profiler
// interleaving (e.g. under -race).
const adaptiveFaultEpochs = 11

// AdaptiveFaultSchedule returns the fault schedule the faulted variant
// uses: every staging reservation fails, for as long as the schedule
// stays armed (the scenario disarms it after FaultEpochs). The breaker
// must open under the failures and close again once probes start
// succeeding.
func AdaptiveFaultSchedule() *faultinject.Schedule {
	return &faultinject.Schedule{Faults: []faultinject.Fault{
		{Op: faultinject.OpReserve, Prob: 1, Err: memsim.ErrNoCapacity},
	}}
}

// AdaptiveEpoch is one epoch of the scenario, for reports and asserts.
type AdaptiveEpoch struct {
	// Epoch is the runtime epoch number (1-based).
	Epoch int
	// Workload names the kernel the epoch ran ("bfs" or "pr").
	Workload string
	// Reserve is the capacity reserve in force during the epoch.
	Reserve uint64
	// Seconds is the simulated time of the epoch's iteration.
	Seconds float64
	// Samples counts the profiler samples the epoch attributed.
	Samples int
	// Migration is the epoch's governed migration report.
	Migration atmem.MigrationReport
}

// AdaptiveResult is the outcome of one adaptive-pressure scenario.
type AdaptiveResult struct {
	Epochs []AdaptiveEpoch
	// Transitions is the breaker's full transition log.
	Transitions []governor.Transition
	// FinalState is the breaker state after the last epoch.
	FinalState governor.State
	// ResidentBytes is the governed fast-resident footprint at the end.
	ResidentBytes uint64
	// FaultEvents counts injector fires over the whole scenario.
	FaultEvents int
	// TracePath is the written Chrome trace (empty without TraceDir).
	TracePath string
	// TotalSimSeconds is the runtime's final simulated clock — iteration
	// time plus the charged share of every migration — the quantity the
	// overlapped-vs-stop-the-world comparison ranks on.
	TotalSimSeconds float64
	// OverlapSeconds and StolenSeconds are the cumulative overlapped-
	// placement accounting (zero without Async).
	OverlapSeconds float64
	StolenSeconds  float64
	// DataCRC is the checksum of the immutable graph arrays after the
	// last epoch; identical scenarios must produce identical values
	// regardless of placement mode.
	DataCRC uint32
	// Scorecards are the per-epoch placement-quality scorecards, one per
	// entry in Epochs (the epoch loop is governed throughout).
	Scorecards []atmem.Scorecard
}

// ShiftStart returns the index into Epochs of the first PR epoch.
func (r *AdaptiveResult) ShiftStart() int {
	for i, e := range r.Epochs {
		if e.Workload == "pr" {
			return i
		}
	}
	return len(r.Epochs)
}

// HoldStart returns the index into Epochs of the first PR epoch at the
// final (largest) reserve — the start of the convergence window.
func (r *AdaptiveResult) HoldStart() int {
	for i := r.ShiftStart(); i < len(r.Epochs); i++ {
		if r.Epochs[i].Reserve == r.Epochs[len(r.Epochs)-1].Reserve {
			return i
		}
	}
	return len(r.Epochs)
}

// RunAdaptivePressure executes the scenario on a fresh governed runtime:
// both kernels set up side by side, BFS epochs, the shift to PR under a
// tightening reserve, and the hold window. It verifies the scenario's
// safety net itself — graph data bit-identical (CRC) across every epoch,
// kernel results validated against their references, no leaked staging
// reservation, and a consistent capacity ledger — and returns the
// per-epoch reports for behavioural assertions.
func RunAdaptivePressure(sc AdaptiveScenario) (*AdaptiveResult, error) {
	if sc.ReserveEnd < sc.ReserveStart {
		return nil, fmt.Errorf("harness: adaptive reserve must tighten: %d < %d", sc.ReserveEnd, sc.ReserveStart)
	}
	sc.Governor.Enabled = true
	opts := []atmem.Option{
		atmem.WithPlacementPolicy(atmem.PaperPolicy()),
		atmem.WithGovernor(sc.Governor),
		atmem.WithCapacityReserve(sc.ReserveStart),
	}
	if sc.FaultSchedule != nil {
		opts = append(opts, atmem.WithFaultSchedule(*sc.FaultSchedule))
	}
	if sc.Async {
		opts = append(opts, atmem.WithAsyncPlacement(atmem.AsyncOptions{
			StealFraction: sc.StealFraction,
		}))
	}
	if sc.TraceDir != "" {
		opts = append(opts, atmem.WithTelemetry(telemetry.NewRecorder()))
	}
	if sc.DebugAddr != "" {
		opts = append(opts, atmem.WithDebugAddr(sc.DebugAddr))
	}
	rt, err := atmem.New(atmem.NVMDRAM(), opts...)
	if err != nil {
		return nil, err
	}
	// Release the debug listener (if any) when the scenario ends so the
	// next scenario can bind the same address. Close is nil-safe.
	defer rt.Close()
	bfs, err := apps.New("bfs")
	if err != nil {
		return nil, err
	}
	pr, err := apps.New("pr")
	if err != nil {
		return nil, err
	}
	// The kernels prefix their object names (bfs.*, pr.*), so they share
	// the runtime without collisions.
	if err := bfs.Setup(rt, sc.Dataset); err != nil {
		return nil, fmt.Errorf("harness: adaptive bfs setup: %w", err)
	}
	if err := pr.Setup(rt, sc.Dataset); err != nil {
		return nil, fmt.Errorf("harness: adaptive pr setup: %w", err)
	}
	crcBefore := graphDataCRC(rt)

	res := &AdaptiveResult{}
	ctx := context.Background()
	runOne := func(workload string, kern apps.Kernel, reserve uint64) error {
		rt.SetCapacityReserve(reserve)
		var iter apps.IterationResult
		name := fmt.Sprintf("%s-%d", workload, rt.Epoch()+1)
		body := func() { iter = kern.RunIteration(rt) }
		var er atmem.EpochReport
		var err error
		if sc.Async {
			er, err = rt.RunEpochAsync(ctx, name, body)
		} else {
			er, err = rt.RunEpoch(name, body)
		}
		if err != nil {
			return fmt.Errorf("harness: adaptive epoch %d (%s): %w", rt.Epoch(), workload, err)
		}
		if !sc.Async && !er.Optimized {
			// The async pipeline's first epoch legitimately places
			// nothing (no pending interval); the zero-sample check only
			// holds for the stop-the-world loop.
			return fmt.Errorf("harness: adaptive epoch %d (%s) attributed no samples", rt.Epoch(), workload)
		}
		res.Epochs = append(res.Epochs, AdaptiveEpoch{
			Epoch:     er.Epoch,
			Workload:  workload,
			Reserve:   reserve,
			Seconds:   iter.Seconds,
			Samples:   er.Samples,
			Migration: er.Migration,
		})
		if sc.FaultEpochs > 0 && rt.Epoch() == sc.FaultEpochs {
			rt.DisarmFaults()
		}
		return nil
	}

	for i := 0; i < sc.BFSEpochs; i++ {
		if err := runOne("bfs", bfs, sc.ReserveStart); err != nil {
			return res, err
		}
	}
	for i := 1; i <= sc.ShiftEpochs; i++ {
		reserve := sc.ReserveStart +
			(sc.ReserveEnd-sc.ReserveStart)*uint64(i)/uint64(sc.ShiftEpochs)
		if err := runOne("pr", pr, reserve); err != nil {
			return res, err
		}
	}
	for i := 0; i < sc.HoldEpochs; i++ {
		if err := runOne("pr", pr, sc.ReserveEnd); err != nil {
			return res, err
		}
	}
	if sc.Async {
		// Place the last interval's samples synchronously so the
		// pipeline leaves nothing pending (and the final placement
		// matches what the stop-the-world loop would have reached).
		if _, err := rt.DrainAsync(ctx); err != nil {
			return res, fmt.Errorf("harness: adaptive drain: %w", err)
		}
	}

	res.Transitions = rt.BreakerTransitions()
	res.FinalState = rt.BreakerState()
	res.ResidentBytes = rt.ResidentBytes()
	res.FaultEvents = len(rt.FaultEvents())
	res.TotalSimSeconds = rt.SimSeconds()
	res.OverlapSeconds = rt.OverlapSeconds()
	res.StolenSeconds = rt.StolenSeconds()
	res.Scorecards = rt.Scorecards()

	// Safety net: whatever the governor did — including concurrently
	// with running kernels — it must not have harmed the data or the
	// simulator's books.
	res.DataCRC = graphDataCRC(rt)
	if res.DataCRC != crcBefore {
		return res, fmt.Errorf("harness: adaptive graph data CRC changed: %08x -> %08x", crcBefore, res.DataCRC)
	}
	if err := bfs.Validate(); err != nil {
		return res, fmt.Errorf("harness: adaptive: %w", err)
	}
	if err := pr.Validate(); err != nil {
		return res, fmt.Errorf("harness: adaptive: %w", err)
	}
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if leaked := rt.System().Reserved(t); leaked != 0 {
			return res, fmt.Errorf("harness: adaptive leaked %d reserved bytes on %s", leaked, t)
		}
	}
	if err := rt.System().CheckConsistency(); err != nil {
		return res, fmt.Errorf("harness: adaptive: %w", err)
	}

	if sc.TraceDir != "" {
		stem := fmt.Sprintf("nvm-adaptive-pressure-%s-%08x", sc.Dataset,
			crc32.ChecksumIEEE([]byte(fmt.Sprintf("%+v", sc))))
		path, err := writeTraceArtifactsStem(rt, sc.TraceDir, stem)
		if err != nil {
			return res, err
		}
		res.TracePath = path
	}
	return res, nil
}

// graphDataCRC checksums the immutable graph arrays (CSR offsets,
// edges, weights) of every registered object. Kernel state arrays
// (levels, ranks, frontiers) legitimately change each epoch and are
// covered by kernel validation instead.
func graphDataCRC(rt *atmem.Runtime) uint32 {
	crc := crc32.NewIEEE()
	for _, o := range rt.Objects() {
		switch {
		case strings.HasSuffix(o.Name(), ".offsets"),
			strings.HasSuffix(o.Name(), ".edges"),
			strings.HasSuffix(o.Name(), ".weights"):
			crc.Write(o.Bytes())
		}
	}
	return crc.Sum32()
}

// adaptivePressure is the experiment wrapper: the fault-free scenario
// and the fault-injected one, each rendered as one row per epoch.
func adaptivePressure(s *Suite) ([]*Report, error) {
	variants := []struct {
		id    string
		title string
		sched *faultinject.Schedule
	}{
		{"adaptive-pressure", "Epoch-adaptive governor: BFS→PR hot-set shift under a tightening fast-tier reserve (NVM-DRAM)", nil},
		{"adaptive-pressure-faults", "Same scenario with every staging reservation failing through epoch 11", AdaptiveFaultSchedule()},
	}
	var out []*Report
	for _, v := range variants {
		sc := DefaultAdaptiveScenario()
		sc.FaultSchedule = v.sched
		if v.sched != nil {
			sc.FaultEpochs = adaptiveFaultEpochs
		}
		sc.TraceDir = s.TraceDir
		sc.DebugAddr = s.DebugAddr
		res, err := RunAdaptivePressure(sc)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", v.id, err)
		}
		rep := &Report{
			ID:    v.id,
			Title: v.title,
			Columns: []string{"epoch", "workload", "reserve(MiB)", "iter(s)",
				"promoted", "demoted", "pressure", "resident", "breaker", "outcome",
				"fast-share", "ovh-tax"},
		}
		for i, e := range res.Epochs {
			m := e.Migration
			outcome := "moved"
			switch {
			case m.BreakerSkipped:
				outcome = "skipped"
			case m.DeltaEmpty:
				outcome = "converged"
			case m.RegionsSkipped > 0:
				outcome = "degraded"
			}
			fastShare, ovhTax := "-", "-"
			if i < len(res.Scorecards) {
				card := res.Scorecards[i]
				fastShare = fmt.Sprintf("%.3f", card.FastAccessShare)
				ovhTax = fmt.Sprintf("%.4f", card.OverheadTax)
			}
			rep.AddRow(
				fmt.Sprintf("%d", e.Epoch), e.Workload,
				fmt.Sprintf("%d", e.Reserve>>20),
				secs(e.Seconds),
				fmt.Sprintf("%d", m.PromotedBytes),
				fmt.Sprintf("%d", m.DemotedBytes),
				fmt.Sprintf("%d", m.PressureDemotedBytes),
				fmt.Sprintf("%d", m.ResidentBytes),
				m.Breaker, outcome, fastShare, ovhTax)
		}
		rep.AddNote("breaker transitions: %s; final state %s; %d fault fires; results validated and graph data CRC-identical across all %d epochs",
			transitionSummary(res.Transitions), res.FinalState, res.FaultEvents, len(res.Epochs))
		if n := len(res.Scorecards); n > 0 {
			last := res.Scorecards[n-1]
			rep.AddNote("steady-state scorecard: fast-access share %.3f, fast-residency efficiency %.3f, migration efficiency %.2f, overhead tax %.4f",
				last.FastAccessShare, last.FastResidencyEfficiency, last.MigrationEfficiency, last.OverheadTax)
		}
		out = append(out, rep)
	}
	return out, nil
}

// overlapComparison is the overlapped-vs-stop-the-world experiment: the
// identical adaptive-pressure scenario (BFS→PR shift under a tightening
// reserve) run once with stop-the-world epochs, once with overlapped
// background placement, and once overlapped under the fault storm. The
// async rows must finish in strictly fewer simulated seconds than the
// stop-the-world row while the graph data CRC stays bit-identical
// across all modes — migration concurrency must never change results.
func overlapComparison(s *Suite) ([]*Report, error) {
	modes := []struct {
		id    string
		async bool
		sched *faultinject.Schedule
	}{
		{"stop-the-world", false, nil},
		{"overlapped", true, nil},
		{"overlapped-faults", true, AdaptiveFaultSchedule()},
	}
	rep := &Report{
		ID:    "overlap",
		Title: "Overlapped background placement vs stop-the-world epochs (adaptive-pressure scenario, NVM-DRAM)",
		Columns: []string{"mode", "epochs", "total-sim(s)", "overlap(s)",
			"stolen(s)", "resident", "breaker", "data-crc"},
	}
	var crcs []uint32
	var syncS, asyncS float64
	for _, m := range modes {
		sc := DefaultAdaptiveScenario()
		sc.Async = m.async
		sc.FaultSchedule = m.sched
		if m.sched != nil {
			sc.FaultEpochs = adaptiveFaultEpochs
		}
		sc.TraceDir = s.TraceDir
		sc.DebugAddr = s.DebugAddr
		res, err := RunAdaptivePressure(sc)
		if err != nil {
			return nil, fmt.Errorf("harness: overlap/%s: %w", m.id, err)
		}
		crcs = append(crcs, res.DataCRC)
		switch m.id {
		case "stop-the-world":
			syncS = res.TotalSimSeconds
		case "overlapped":
			asyncS = res.TotalSimSeconds
		}
		rep.AddRow(m.id,
			fmt.Sprintf("%d", len(res.Epochs)),
			secs(res.TotalSimSeconds),
			secs(res.OverlapSeconds),
			secs(res.StolenSeconds),
			fmt.Sprintf("%d", res.ResidentBytes),
			res.FinalState.String(),
			fmt.Sprintf("%08x", res.DataCRC))
	}
	for _, c := range crcs[1:] {
		if c != crcs[0] {
			return nil, fmt.Errorf("harness: overlap: graph data CRC diverged across modes: %08x vs %08x", crcs[0], c)
		}
	}
	if asyncS >= syncS {
		return nil, fmt.Errorf("harness: overlap: overlapped placement (%.6fs) not faster than stop-the-world (%.6fs)", asyncS, syncS)
	}
	rep.AddNote("overlapped placement hides migration under running kernels: %.6fs vs %.6fs stop-the-world (%.2f%% faster); graph data CRC bit-identical across all modes",
		asyncS, syncS, 100*(syncS-asyncS)/syncS)
	return []*Report{rep}, nil
}

// transitionSummary renders a breaker transition log as one cell-safe
// string ("none" when the breaker never moved).
func transitionSummary(trs []governor.Transition) string {
	if len(trs) == 0 {
		return "none"
	}
	parts := make([]string, len(trs))
	for i, tr := range trs {
		parts[i] = fmt.Sprintf("epoch %d %s→%s", tr.Epoch, tr.From, tr.To)
	}
	return strings.Join(parts, "; ")
}
