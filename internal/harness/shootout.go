package harness

// The policy shootout compares the paper's analyzer against the rest of
// the placement-policy quartet — the frozen first-fit floor (static),
// the in-process-trained pairwise ranker (learned), and the full-trace
// hindsight ceiling (oracle) — across all seven kernels under an equal
// fast-tier budget. Fast-access share is the figure of merit: the share
// of measured device traffic served by the fast tier measures exactly
// how much of the true hot set each policy captured, and the oracle's
// share (hindsight trace plus one refinement round under its own
// placement) bounds what is achievable.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"atmem"
	"atmem/apps"
	"atmem/internal/core"
	"atmem/internal/memsim"
)

// ShootoutApps is the full seven-kernel cast.
var ShootoutApps = []string{"bfs", "dobfs", "sssp", "pr", "bc", "cc", "spmv"}

// ShootoutScenario configures a policy shootout.
type ShootoutScenario struct {
	// Testbed and Dataset fix the platform and graph (every kernel and
	// policy runs the same pair).
	Testbed TestbedID
	Dataset string
	// Apps is the kernel cast (default ShootoutApps).
	Apps []string
	// BudgetFraction is the fast-tier placement budget as a fraction
	// of each kernel's registered footprint. It must be binding (< 1):
	// with the whole footprint fast-resident every policy is trivially
	// equal. Default 0.3.
	BudgetFraction float64
	// SamplePeriod is the profiling period for the feature pass and
	// every deployed policy run (the label pass is always period 1).
	// The runtime's automatic period assumes cold traffic — one miss
	// per line of footprint — and badly undersamples the warm
	// iterations the shootout profiles, so a dense explicit period is
	// the default (5).
	SamplePeriod uint64
	// Threads is the simulated thread count for every pass. The
	// shootout pins it to 1: the kernels race CAS claims (BFS levels,
	// CC label minima), so with multiple workers the access stream —
	// and through it the shared-cache conflict traffic and the sampled
	// profile — depends on goroutine scheduling. Margins between
	// policies on an easy kernel can be smaller than that noise; a
	// single simulated thread makes every cell bit-reproducible. The
	// testbed's per-worker LLC replica and gang size are rescaled to
	// match (see shootoutTestbed).
	Threads int
	// Epsilon is the analyzer's ε knob for the paper policy's runs.
	// The paper's default ε minimizes the selection footprint (§7.2);
	// under the shootout's binding budget the right setting is a low ε
	// so the budget, not the threshold, clips the plan — otherwise the
	// comparison would measure ε's conservatism, not ranking quality.
	// Default 0.01.
	Epsilon float64
	// Train tunes the in-process pairwise trainer; the zero value
	// takes the core defaults.
	Train core.TrainConfig
	// GapBarKernels is the minimum number of kernels on which the
	// learned policy must close at least half of the paper→oracle
	// fast-access-share gap for Assert to pass (0 skips that bar).
	GapBarKernels int
	// Assert enforces the ordering bars (oracle ≥ paper ≥ static on
	// every kernel, plus GapBarKernels) and fails the run when they
	// break.
	Assert bool
	// TraceDir, when non-empty, writes the machine-readable
	// policy-shootout.json artifact there (atmem-report -shootout
	// renders it).
	TraceDir string
	// Verbose prints one line per completed run.
	Verbose bool
}

// DefaultShootoutScenario is the CI configuration: all seven kernels on
// the smallest dataset, a 30% budget, and every bar armed.
func DefaultShootoutScenario() ShootoutScenario {
	return ShootoutScenario{
		Testbed:        NVM,
		Dataset:        "pokec",
		Apps:           ShootoutApps,
		BudgetFraction: 0.3,
		Threads:        1,
		SamplePeriod:   5,
		Epsilon:        0.01,
		GapBarKernels:  3,
		Assert:         true,
	}
}

// ShootoutCell is one (kernel, policy) outcome.
type ShootoutCell struct {
	App    string `json:"app"`
	Policy string `json:"policy"`
	// FastAccessShare is the fraction of the measured iteration's
	// read+write+writeback traffic served by the fast tier.
	FastAccessShare float64 `json:"fast_access_share"`
	// DataRatio is the fraction of registered bytes fast-resident
	// during the measured iteration.
	DataRatio float64 `json:"data_ratio"`
	// IterSeconds is the measured (warm) iteration time.
	IterSeconds float64 `json:"iter_seconds"`
	// MigrationSeconds and MovedBytes are the migration tax the policy
	// paid for its placement.
	MigrationSeconds float64 `json:"migration_seconds"`
	MovedBytes       uint64  `json:"moved_bytes"`
	// GapToOracle is the oracle's fast-access share minus this cell's
	// (0 for the oracle row itself; negative would mean beating the
	// hindsight fill, possible only within chunk-granularity noise).
	GapToOracle float64 `json:"gap_to_oracle"`
	// Validated records that the kernel's result checked out.
	Validated bool `json:"validated"`
}

// ShootoutResult is the full shootout outcome, serialized as the
// policy-shootout.json artifact.
type ShootoutResult struct {
	Testbed        string          `json:"testbed"`
	Dataset        string          `json:"dataset"`
	BudgetFraction float64         `json:"budget_fraction"`
	Policies       []string        `json:"policies"`
	Cells          []ShootoutCell  `json:"cells"`
	Train          core.TrainStats `json:"train"`
	// GapClosedKernels counts kernels where the learned policy closed
	// at least half of the paper→oracle fast-access-share gap (a
	// non-positive gap counts: there was nothing left to close).
	GapClosedKernels int `json:"gap_closed_kernels"`
	Kernels          int `json:"kernels"`
}

// kernelData is one kernel's two preparation passes: the full-trace
// heat recording (labels + oracle input) and the sampled features.
type kernelData struct {
	app   string
	trace *core.HeatTrace
	feats []core.ChunkFeatures
}

// collectKernelData runs the two preparation passes for one kernel.
//
// Both passes profile a WARM iteration (one unprofiled iteration first):
// the steady state is what placement serves, and cold-iteration misses
// actively mislead — a small reused object (spmv's x vector, a BFS
// frontier) misses heavily on first touch but is cache-resident ever
// after, so its cold-miss density is anti-correlated with the warm
// traffic placement can capture. The label pass measures the complete
// per-chunk device-byte traffic (Runtime.TrafficTrace — prefetched
// stream fills and writebacks included, grain amplification accounted)
// of the SAME iteration index the deployed runs measure (the fourth —
// see runShootoutPolicy), so the hindsight oracle ranks on exactly the
// quantity being scored. Sampled demand-miss heat would not do:
// prefetch coverage hides most sequential traffic from the sampler,
// and the slow tier's access-grain amplification makes a random
// chunk's slow-tier bytes worth 4x its line count. The feature pass
// samples the second iteration at the deployed period — exactly the
// position and density of the signal a deployed policy ranks on.
func collectKernelData(tb atmem.Testbed, app, dataset string, period uint64) (*kernelData, error) {
	label, err := atmem.New(tb,
		atmem.WithPlacementPolicy(atmem.PaperPolicy()))
	if err != nil {
		return nil, err
	}
	kern, err := apps.New(app)
	if err != nil {
		return nil, err
	}
	if err := kern.Setup(label, dataset); err != nil {
		return nil, fmt.Errorf("harness: shootout %s label setup: %w", app, err)
	}
	kern.RunIteration(label)
	kern.RunIteration(label)
	kern.RunIteration(label)
	trace := label.TrafficTrace(func() { kern.RunIteration(label) })
	kd := &kernelData{app: app, trace: trace}

	feat, err := atmem.New(tb,
		atmem.WithPlacementPolicy(atmem.PaperPolicy()),
		atmem.WithSamplePeriod(period))
	if err != nil {
		return nil, err
	}
	kernF, err := apps.New(app)
	if err != nil {
		return nil, err
	}
	if err := kernF.Setup(feat, dataset); err != nil {
		return nil, fmt.Errorf("harness: shootout %s feature setup: %w", app, err)
	}
	kernF.RunIteration(feat)
	feat.ProfilingStart()
	kernF.RunIteration(feat)
	feat.ProfilingStop()
	kd.feats = core.Featurize(feat.Registry(), feat.SamplePeriod(), 0)
	return kd, nil
}

// trainingSamples joins a kernel's sampled features against its
// full-trace heat labels by (object, chunk).
func (kd *kernelData) trainingSamples() []core.TrainSample {
	out := make([]core.TrainSample, 0, len(kd.feats))
	for _, cf := range kd.feats {
		var label float64
		if heat, ok := kd.trace.Objects[cf.Object]; ok && cf.Chunk < len(heat) {
			label = heat[cf.Chunk]
		}
		out = append(out, core.TrainSample{F: cf.F, Label: label})
	}
	return out
}

// ShootoutTrainingData runs the preparation passes for the scenario's
// kernels and returns the joined training set — the same data the
// shootout trains on in-process, exported for cmd/atmem-train.
func ShootoutTrainingData(scn ShootoutScenario) ([]core.TrainSample, error) {
	scn = scn.withDefaults()
	tb, err := shootoutTestbed(scn)
	if err != nil {
		return nil, err
	}
	var samples []core.TrainSample
	for _, app := range scn.Apps {
		kd, err := collectKernelData(tb, app, scn.Dataset, scn.SamplePeriod)
		if err != nil {
			return nil, err
		}
		samples = append(samples, kd.trainingSamples()...)
	}
	return samples, nil
}

// withDefaults fills unset scenario knobs with the CI defaults.
func (scn ShootoutScenario) withDefaults() ShootoutScenario {
	def := DefaultShootoutScenario()
	if len(scn.Apps) == 0 {
		scn.Apps = def.Apps
	}
	if scn.Dataset == "" {
		scn.Dataset = def.Dataset
	}
	if scn.BudgetFraction <= 0 || scn.BudgetFraction >= 1 {
		scn.BudgetFraction = def.BudgetFraction
	}
	if scn.SamplePeriod == 0 {
		scn.SamplePeriod = def.SamplePeriod
	}
	if scn.Epsilon <= 0 {
		scn.Epsilon = def.Epsilon
	}
	return scn
}

// shootoutTestbed resolves the scenario's platform with the thread pin
// applied. Pinning one simulated worker makes every cell reproducible
// (see ShootoutScenario.Threads), but each worker's LLC replica is
// sized for the default worker count's graph partition; a lone worker
// walks the WHOLE graph, so keeping the stock replica would change the
// cache-to-working-set ratio — a different microarchitectural regime
// (every reused structure thrashes, demand misses decorrelate from
// true traffic), not merely less parallelism. The replica therefore
// scales by the dropped worker count, and GangSize absorbs the dropped
// workers so absolute iteration times stay on the stock machine's
// scale.
func shootoutTestbed(scn ShootoutScenario) (atmem.Testbed, error) {
	tb, err := TestbedFor(scn.Testbed)
	if err != nil || scn.Threads <= 0 {
		return tb, err
	}
	p := tb.Params()
	if p.Threads > scn.Threads {
		scale := p.Threads / scn.Threads
		p.LLCBytes *= scale
		p.GangSize *= scale
	}
	p.Threads = scn.Threads
	return atmem.CustomTestbed(p), nil
}

// fastShareOf computes the fast tier's share of read+write+writeback
// traffic over the given phases — the same definition the governed
// scorecard uses for FastAccessShare.
func fastShareOf(phases []atmem.PhaseResult) float64 {
	var fast, total uint64
	for i := range phases {
		st := &phases[i].Stats
		for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
			n := st.ReadBytes[t] + st.WriteBytes[t] + st.WritebackBytes[t]
			total += n
			if t == memsim.TierFast {
				fast += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(fast) / float64(total)
}

// runShootoutPolicy runs one kernel under one policy at the constrained
// budget: warm up, profile a warm iteration (see collectKernelData for
// why warm), Optimize, warm up again, measure.
func runShootoutPolicy(tb atmem.Testbed, scn ShootoutScenario, app string, pol atmem.PlacementPolicy, capture bool) (ShootoutCell, *atmem.HeatTrace, error) {
	cell := ShootoutCell{App: app, Policy: pol.Name()}
	ac := core.DefaultConfig()
	ac.Epsilon = scn.Epsilon
	rt, err := atmem.New(tb,
		atmem.WithPlacementPolicy(pol),
		atmem.WithSamplePeriod(scn.SamplePeriod),
		atmem.WithAnalyzer(ac))
	if err != nil {
		return cell, nil, err
	}
	kern, err := apps.New(app)
	if err != nil {
		return cell, nil, err
	}
	if err := kern.Setup(rt, scn.Dataset); err != nil {
		return cell, nil, fmt.Errorf("harness: shootout %s/%s setup: %w", app, pol.Name(), err)
	}
	// Constrain the budget to BudgetFraction of the footprint via the
	// capacity reserve, so the policies compete for a binding budget
	// even on datasets that would fit the fast tier whole.
	target := uint64(scn.BudgetFraction * float64(rt.Registry().TotalBytes()))
	if free := rt.System().FreeCapacity(memsim.TierFast); free > target {
		rt.SetCapacityReserve(free - target)
	}
	kern.RunIteration(rt)
	rt.ProfilingStart()
	kern.RunIteration(rt)
	rt.ProfilingStop()
	rep, err := rt.Optimize()
	if err != nil {
		return cell, nil, fmt.Errorf("harness: shootout %s/%s optimize: %w", app, pol.Name(), err)
	}
	kern.RunIteration(rt)
	var meas apps.IterationResult
	var refined *atmem.HeatTrace
	if capture {
		// Record the measured iteration's traffic under THIS placement:
		// conflict traffic is placement-dependent, so the refinement
		// round hands the oracle a trace of the very conditions it will
		// be scored under.
		refined = rt.TrafficTrace(func() { meas = kern.RunIteration(rt) })
	} else {
		meas = kern.RunIteration(rt)
	}
	if err := kern.Validate(); err != nil {
		return cell, nil, fmt.Errorf("harness: shootout %s/%s validation: %w", app, pol.Name(), err)
	}
	cell.Validated = true
	cell.FastAccessShare = fastShareOf(meas.Phases)
	cell.DataRatio = rt.FastDataRatio()
	cell.IterSeconds = meas.Seconds
	cell.MigrationSeconds = rep.Seconds
	cell.MovedBytes = rep.BytesMoved
	return cell, refined, nil
}

// RunPolicyShootout executes the full shootout: per-kernel preparation
// passes, one in-process training run over the union of all kernels'
// labeled chunks, then every kernel under every policy, with the
// ordering bars checked at the end when the scenario asserts.
func RunPolicyShootout(scn ShootoutScenario) (*ShootoutResult, error) {
	scn = scn.withDefaults()
	tb, err := shootoutTestbed(scn)
	if err != nil {
		return nil, err
	}

	data := make([]*kernelData, 0, len(scn.Apps))
	var samples []core.TrainSample
	for _, app := range scn.Apps {
		kd, err := collectKernelData(tb, app, scn.Dataset, scn.SamplePeriod)
		if err != nil {
			return nil, err
		}
		data = append(data, kd)
		samples = append(samples, kd.trainingSamples()...)
		if scn.Verbose {
			fmt.Printf("  [shootout] %-5s prepared: %d labeled chunks\n", app, len(kd.feats))
		}
	}
	weights, tstats, err := core.TrainPairwise(samples, scn.Train)
	if err != nil {
		return nil, fmt.Errorf("harness: shootout training: %w", err)
	}
	if scn.Verbose {
		fmt.Printf("  [shootout] trained on %d chunks / %d pairs: violations %d -> %d\n",
			tstats.Samples, tstats.Pairs, tstats.InitialViolations, tstats.FinalViolations)
	}

	res := &ShootoutResult{
		Testbed:        string(scn.Testbed),
		Dataset:        scn.Dataset,
		BudgetFraction: scn.BudgetFraction,
		Policies:       []string{"static", "paper", "learned", "oracle"},
		Train:          tstats,
		Kernels:        len(scn.Apps),
	}
	shares := make(map[string]map[string]float64, len(scn.Apps)) // app -> policy -> share
	for _, kd := range data {
		policies := []atmem.PlacementPolicy{
			atmem.StaticPolicy(),
			atmem.PaperPolicy(),
			atmem.LearnedPolicyFromWeights(weights),
			atmem.OraclePolicy(kd.trace),
		}
		shares[kd.app] = make(map[string]float64, len(policies))
		for _, pol := range policies {
			oracle := pol.Name() == "oracle"
			cell, refined, err := runShootoutPolicy(tb, scn, kd.app, pol, oracle)
			if err != nil {
				return nil, err
			}
			if oracle && refined != nil {
				// Hindsight refinement: cache-conflict traffic depends on
				// where chunks land, so the label trace (recorded under a
				// different placement) can misrank near-tied chunks.
				// Re-solve on the traffic measured under the oracle's own
				// placement and keep whichever round measured better —
				// both are legitimate hindsight placements.
				cell2, _, err := runShootoutPolicy(tb, scn, kd.app, atmem.OraclePolicy(refined), false)
				if err != nil {
					return nil, err
				}
				if cell2.FastAccessShare > cell.FastAccessShare {
					cell = cell2
				}
			}
			shares[kd.app][cell.Policy] = cell.FastAccessShare
			res.Cells = append(res.Cells, cell)
			if scn.Verbose {
				fmt.Printf("  [shootout] %-5s %-8s fast-share=%.3f ratio=%.3f iter=%.6fs\n",
					kd.app, cell.Policy, cell.FastAccessShare, cell.DataRatio, cell.IterSeconds)
			}
		}
	}

	// Gap accounting against the oracle ceiling.
	for i := range res.Cells {
		c := &res.Cells[i]
		c.GapToOracle = shares[c.App]["oracle"] - c.FastAccessShare
	}
	for _, kd := range data {
		s := shares[kd.app]
		gap := s["oracle"] - s["paper"]
		if gap <= 1e-9 || s["learned"]-s["paper"] >= 0.5*gap {
			res.GapClosedKernels++
		}
	}

	if scn.TraceDir != "" {
		if err := writeShootoutArtifact(scn.TraceDir, res); err != nil {
			return nil, err
		}
	}
	if scn.Assert {
		if err := res.checkBars(scn.GapBarKernels); err != nil {
			return res, err
		}
	}
	return res, nil
}

// checkBars enforces the shootout's ordering invariants.
func (res *ShootoutResult) checkBars(gapBarKernels int) error {
	shares := make(map[string]map[string]float64)
	for _, c := range res.Cells {
		if shares[c.App] == nil {
			shares[c.App] = make(map[string]float64)
		}
		shares[c.App][c.Policy] = c.FastAccessShare
	}
	const eps = 1e-9
	for app, s := range shares {
		if s["oracle"]+eps < s["paper"] {
			return fmt.Errorf("harness: shootout bar: oracle fast-share %.4f < paper %.4f on %s",
				s["oracle"], s["paper"], app)
		}
		if s["paper"]+eps < s["static"] {
			return fmt.Errorf("harness: shootout bar: paper fast-share %.4f < static %.4f on %s",
				s["paper"], s["static"], app)
		}
	}
	if gapBarKernels > 0 && res.GapClosedKernels < gapBarKernels {
		return fmt.Errorf("harness: shootout bar: learned closed >=50%% of the paper->oracle gap on %d kernels, want >= %d",
			res.GapClosedKernels, gapBarKernels)
	}
	return nil
}

// writeShootoutArtifact writes the machine-readable result JSON.
func writeShootoutArtifact(dir string, res *ShootoutResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("harness: shootout artifact dir: %w", err)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "policy-shootout.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("harness: shootout artifact: %w", err)
	}
	return nil
}

// ShootoutReportOf renders a shootout result as the per-kernel
// per-policy scorecard table (shared by the experiment and
// atmem-report -shootout).
func ShootoutReportOf(res *ShootoutResult) *Report {
	rep := &Report{
		ID: "policy-shootout",
		Title: fmt.Sprintf("Placement-policy shootout: %s on %s, %.0f%% fast budget",
			res.Testbed, res.Dataset, res.BudgetFraction*100),
		Columns: []string{"app", "policy", "fast-share", "data-ratio",
			"iter(s)", "mig(s)", "moved(MiB)", "gap-to-oracle"},
	}
	for _, c := range res.Cells {
		gap := "-"
		if c.Policy != "oracle" {
			gap = pct(c.GapToOracle)
		}
		rep.AddRow(c.App, c.Policy,
			pct(c.FastAccessShare), pct(c.DataRatio),
			secs(c.IterSeconds), secs(c.MigrationSeconds),
			fmt.Sprintf("%.1f", float64(c.MovedBytes)/(1<<20)),
			gap)
	}
	rep.AddNote("fast-share is the measured iteration's read+write+writeback traffic served by the fast tier; the oracle row is the hindsight ceiling at the same budget, static the frozen first-fit floor")
	rep.AddNote("learned ranker trained in-process on %d chunks / %d pairs (violations %d -> %d); it closed >=50%% of the paper->oracle gap on %d of %d kernels",
		res.Train.Samples, res.Train.Pairs, res.Train.InitialViolations,
		res.Train.FinalViolations, res.GapClosedKernels, res.Kernels)
	return rep
}

// policyShootout is the experiment wrapper.
func policyShootout(s *Suite) ([]*Report, error) {
	scn := DefaultShootoutScenario()
	scn.TraceDir = s.TraceDir
	scn.Verbose = s.Verbose
	res, err := RunPolicyShootout(scn)
	if err != nil {
		return nil, err
	}
	return []*Report{ShootoutReportOf(res)}, nil
}
