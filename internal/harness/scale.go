package harness

// This file is the paper-scale thrust of the reproduction: experiments
// that run a true scale-24 RMAT graph (~16.8M vertices, 268M directed
// edges — the paper's rmat24 row of Table 2 at full size) under full
// simulation, compare a governed run's online placement loop against
// compiled-plan replay, and emit the machine-readable BENCH_sim.json
// the CI pipeline tracks across PRs. The built-in "rmat24" dataset
// stays the ~1000x-scaled analogue (scale 16) used by the paper-artifact
// experiments; the paper-size graph registers separately as
// "rmat24-paper" so nothing else pays its generation cost.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"atmem"
	"atmem/apps"
	"atmem/graph"
	"atmem/internal/core"
	"atmem/internal/memsim"
)

// BenchSimPath is where the bench-sim experiment writes its JSON
// artifact; atmem-bench overrides it via -bench-json.
var BenchSimPath = "BENCH_sim.json"

// ScaleExperiments returns the paper-scale experiments (run by id, like
// the other extensions).
func ScaleExperiments() []Experiment {
	return []Experiment{
		{ID: "scale24", Title: "Paper-scale rmat24 (scale-24 RMAT, 268M edges): governed bfs+pr under full simulation", Run: scale24},
		{ID: "plan-replay", Title: "Compiled plan replay vs online placement loop: wall-clock, CRCs, final residency", Run: planReplay},
		{ID: "bench-sim", Title: "Simulator throughput + scaling + replay speedup, emitted as BENCH_sim.json", Run: benchSim},
	}
}

var registerPaperScaleOnce sync.Once

// registerPaperScale registers the true scale-24 dataset. Generation is
// deterministic and takes a few minutes; graph.Load caches the result
// for the process lifetime.
func registerPaperScale() {
	registerPaperScaleOnce.Do(func() {
		graph.RegisterDataset("rmat24-paper", func() (*graph.Graph, error) {
			return graph.GenerateRMAT("rmat24-paper", graph.DefaultRMAT(24, 16, 24))
		})
	})
}

// paperScaleTestbed is the NVM-DRAM testbed at the paper's REAL
// capacities (Table 1: 96 GB DRAM + 768 GB Optane) instead of the
// ~1000x-scaled ones the artifact experiments use — a paper-size graph
// needs the paper-size machine.
func paperScaleTestbed() atmem.Testbed {
	p := memsim.NVMDRAMParams()
	p.Name = "nvm-dram-paper"
	p.Tiers[memsim.TierFast].CapacityBytes = 96 * memsim.GiB
	p.Tiers[memsim.TierSlow].CapacityBytes = 768 * memsim.GiB
	return atmem.CustomTestbed(p)
}

// scale24 runs the governed kernel suite (bfs + pr) on the true
// scale-24 RMAT graph under full simulation: one governed profile epoch
// (the cold iteration), then the measured iteration, per the paper's
// methodology of reporting the post-migration iteration (§6). The
// 10-minute CI budget is the acceptance bar; the wall column is what CI
// watches.
func scale24(s *Suite) ([]*Report, error) {
	registerPaperScale()
	rep := &Report{
		ID:    "scale24",
		Title: "Governed suite on paper-scale rmat24 (NVM-DRAM at real capacities)",
		Columns: []string{"app", "vertices", "edges", "setup(s)", "first-iter(s)",
			"iter(s)", "data-ratio", "resident-MiB", "wall(s)", "validated"},
	}
	expStart := time.Now()
	for _, app := range []string{"bfs", "pr"} {
		runStart := time.Now()
		kern, err := apps.New(app)
		if err != nil {
			return nil, err
		}
		rt, err := atmem.New(paperScaleTestbed(),
			atmem.WithPlacementPolicy(atmem.PaperPolicy()),
			atmem.WithGovernor(atmem.GovernorOptions{}))
		if err != nil {
			return nil, err
		}
		if err := kern.Setup(rt, "rmat24-paper"); err != nil {
			return nil, fmt.Errorf("harness: scale24 %s setup: %w", app, err)
		}
		setup := time.Since(runStart)
		g, err := graph.Load("rmat24-paper")
		if err != nil {
			return nil, err
		}

		var first apps.IterationResult
		if _, err := rt.RunEpoch("profile", func() { first = kern.RunIteration(rt) }); err != nil {
			return nil, fmt.Errorf("harness: scale24 %s epoch: %w", app, err)
		}
		second := kern.RunIteration(rt)
		validated := "true"
		if err := kern.Validate(); err != nil {
			return nil, fmt.Errorf("harness: scale24 %s validation: %w", app, err)
		}
		rep.AddRow(app,
			fmt.Sprintf("%d", g.NumVertices()),
			fmt.Sprintf("%d", g.NumEdges()),
			secs(setup.Seconds()),
			secs(first.Seconds), secs(second.Seconds),
			pct(rt.FastDataRatio()),
			fmt.Sprintf("%d", rt.ResidentBytes()>>20),
			secs(time.Since(runStart).Seconds()),
			validated)
		if s.Verbose {
			fmt.Printf("  [scale24] %s done in %.1fs\n", app, time.Since(runStart).Seconds())
		}
	}
	rep.AddNote("total wall %.1fs; CI budget is 600s for the whole suite (generation is paid once and shared via the dataset cache)",
		time.Since(expStart).Seconds())
	return []*Report{rep}, nil
}

// planSession is one governed run of the record/replay comparison, with
// host-clock accounting split between the kernel bodies and everything
// else RunEpoch does (profiling, attribution, analysis, scheduling,
// migration — the placement loop replay is meant to collapse).
type planSession struct {
	Verdict          core.LookupVerdict
	Replayed         bool
	GraphCRC         uint32
	WallSeconds      float64
	BodySeconds      float64
	PlacementSeconds float64
	ResidentBytes    uint64
	Layout           map[string][memsim.NumTiers]uint64
	Plan             *core.CompiledPlan
}

// runPlanSession executes one governed run of app on dataset ds for the
// given number of epochs against the shared plan cache: the first call
// records (miss), an identical second call replays (hit).
func runPlanSession(pc *core.PlanCache, app, ds string, epochs int) (planSession, error) {
	var out planSession
	g, err := graph.Load(ds)
	if err != nil {
		return out, err
	}
	out.GraphCRC = g.CRC()
	kern, err := apps.New(app)
	if err != nil {
		return out, err
	}
	rt, err := atmem.New(atmem.NVMDRAM(),
		atmem.WithPlacementPolicy(atmem.PaperPolicy()),
		atmem.WithGovernor(atmem.GovernorOptions{}),
		atmem.WithPlanCache(pc))
	if err != nil {
		return out, err
	}
	runStart := time.Now()
	if err := kern.Setup(rt, ds); err != nil {
		return out, err
	}
	sig := rt.BuildSignature(ds, out.GraphCRC, []string{app})
	verdict, err := rt.ArmPlan(sig)
	if err != nil {
		return out, err
	}
	out.Verdict = verdict
	out.Replayed = rt.Replaying()
	for e := 0; e < epochs; e++ {
		epochStart := time.Now()
		var body time.Duration
		er, err := rt.RunEpoch(fmt.Sprintf("e%d", e+1), func() {
			t := time.Now()
			kern.RunIteration(rt)
			body = time.Since(t)
		})
		if err != nil {
			return out, err
		}
		if er.Replayed != out.Replayed {
			return out, fmt.Errorf("harness: epoch %d replay mode flipped", e+1)
		}
		out.BodySeconds += body.Seconds()
		out.PlacementSeconds += (time.Since(epochStart) - body).Seconds()
	}
	out.Plan, err = rt.FinishPlan()
	if err != nil {
		return out, err
	}
	out.WallSeconds = time.Since(runStart).Seconds()
	out.ResidentBytes = rt.ResidentBytes()
	out.Layout = make(map[string][memsim.NumTiers]uint64)
	for _, o := range rt.Objects() {
		out.Layout[o.Name()] = rt.System().BytesOnTier(o.Base(), o.Size())
	}
	if err := kern.Validate(); err != nil {
		return out, fmt.Errorf("harness: plan session validation: %w", err)
	}
	return out, nil
}

// comparePlanSessions runs the online (recording) and replay runs and
// checks the equivalence contract: bit-identical graph CRCs, identical
// final residency and per-object tier layout.
func comparePlanSessions(app, ds string, epochs int) (online, replay planSession, err error) {
	pc := core.NewPlanCache()
	online, err = runPlanSession(pc, app, ds, epochs)
	if err != nil {
		return
	}
	if online.Verdict != core.LookupMiss || online.Replayed {
		err = fmt.Errorf("harness: first session did not record (verdict %v)", online.Verdict)
		return
	}
	replay, err = runPlanSession(pc, app, ds, epochs)
	if err != nil {
		return
	}
	if replay.Verdict != core.LookupHit || !replay.Replayed {
		err = fmt.Errorf("harness: second session did not replay (verdict %v)", replay.Verdict)
		return
	}
	if online.GraphCRC != replay.GraphCRC {
		err = fmt.Errorf("harness: graph CRC diverged: %#x vs %#x", online.GraphCRC, replay.GraphCRC)
		return
	}
	if online.ResidentBytes != replay.ResidentBytes {
		err = fmt.Errorf("harness: final residency diverged: %d vs %d", online.ResidentBytes, replay.ResidentBytes)
		return
	}
	for name, want := range online.Layout {
		if replay.Layout[name] != want {
			err = fmt.Errorf("harness: object %q tier layout diverged: %v vs %v", name, replay.Layout[name], want)
			return
		}
	}
	return
}

// planReplay is the online-vs-replay experiment of the tentpole: the
// same governed suite run twice, once through the online
// profile→analyze→migrate loop (recording) and once replaying the
// compiled plan, with the equivalence contract checked and the
// placement-loop collapse quantified.
func planReplay(s *Suite) ([]*Report, error) {
	const app, ds, epochs = "pr", "twitter", 4
	online, replay, err := comparePlanSessions(app, ds, epochs)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "plan-replay",
		Title: fmt.Sprintf("Online vs compiled-plan replay: %s on %s, %d epochs (NVM-DRAM)", app, ds, epochs),
		Columns: []string{"mode", "verdict", "wall(s)", "kernels(s)", "placement(s)",
			"resident-B", "graph-crc"},
	}
	row := func(label string, ps planSession) {
		rep.AddRow(label, ps.Verdict.String(),
			secs(ps.WallSeconds), secs(ps.BodySeconds), secs(ps.PlacementSeconds),
			fmt.Sprintf("%d", ps.ResidentBytes),
			fmt.Sprintf("%08x", ps.GraphCRC))
	}
	row("online", online)
	row("replay", replay)
	rep.AddNote("placement-loop speedup %.1fx (replay skips profiling, attribution, analysis, and scheduling; only the recorded migrations execute); plan: %d epochs, %d steps",
		online.PlacementSeconds/replay.PlacementSeconds, online.Plan.Epochs, len(online.Plan.Steps))
	rep.AddNote("equivalence held: bit-identical graph CRCs, identical final residency and per-object tier layout")
	return []*Report{rep}, nil
}

// BenchSimSchemaVersion is the schema of the BENCH_sim.json artifact.
// Bump it when fields change meaning or disappear; benchSim refuses to
// overwrite an artifact stamped with a NEWER version, so an old binary
// can never silently downgrade the perf trajectory CI tracks.
//
// v1: unversioned (no schema_version field).
// v2: adds schema_version, gomaxprocs, git_sha.
const BenchSimSchemaVersion = 2

// BenchSim is the machine-readable perf snapshot CI uploads as
// BENCH_sim.json: raw simulator throughput, host-core scaling, and the
// online-vs-replay comparison. Fields are stable across PRs — they are
// the perf trajectory.
type BenchSim struct {
	SchemaVersion int   `json:"schema_version"`
	GeneratedUnix int64 `json:"generated_unix"`
	HostCores     int   `json:"host_cores"`
	// GoMaxProcs is the scheduler width the snapshot ran under and
	// GitSHA the source revision it measured (GITHUB_SHA in CI, local
	// git HEAD otherwise, empty when neither resolves) — the provenance
	// a regression gate needs before comparing two snapshots.
	GoMaxProcs int    `json:"gomaxprocs"`
	GitSHA     string `json:"git_sha,omitempty"`
	// NsPerSimAccess and SimAccessesPerSec characterize the sealed
	// parallel hot path at the highest measured proc count.
	NsPerSimAccess    float64 `json:"ns_per_simulated_access"`
	SimAccessesPerSec float64 `json:"simulated_accesses_per_sec"`
	// ScalingProcs / ScalingAccessesPerSec are the sweep (procs capped
	// at host cores); ScalingEfficiency is tput(max)/(max*tput(1)).
	ScalingProcs          []int     `json:"scaling_procs"`
	ScalingAccessesPerSec []float64 `json:"scaling_accesses_per_sec"`
	ScalingEfficiency     float64   `json:"scaling_efficiency"`
	// Online-vs-replay wall clocks of the plan-replay experiment.
	OnlineWallSeconds      float64 `json:"online_wall_seconds"`
	ReplayWallSeconds      float64 `json:"replay_wall_seconds"`
	OnlinePlacementSeconds float64 `json:"online_placement_seconds"`
	ReplayPlacementSeconds float64 `json:"replay_placement_seconds"`
	PlacementSpeedup       float64 `json:"placement_speedup"`
	ReplayResidencyMatched bool    `json:"replay_residency_matched"`
	ReplayGraphCRCsMatched bool    `json:"replay_graph_crcs_matched"`
}

// measureSimThroughput runs the sealed parallel workload (the
// BenchmarkAccessorParallel shape: 8 simulated workers, a graph-kernel
// access mix over private 4 MiB regions) at the given GOMAXPROCS and
// returns simulated accesses per host second.
func measureSimThroughput(procs, opsPerWorker int) float64 {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	const workers = 8
	sys := memsim.NewSystem(memsim.NVMDRAMParams())
	accs := make([]*memsim.Accessor, workers)
	bases := make([]uint64, workers)
	for i := range accs {
		base, err := sys.Alloc(4*memsim.MiB, memsim.TierSlow)
		if err != nil {
			return 0
		}
		accs[i] = sys.NewAccessor()
		accs[i].SetSealed(true)
		bases[i] = base
	}
	var wg sync.WaitGroup
	start := time.Now()
	for i := range accs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a, base := accs[i], bases[i]
			rng := uint64(i+1)*0x9e3779b97f4a7c15 + 1
			span := uint64(4*memsim.MiB - 64*memsim.KiB)
			for n := 0; n < opsPerWorker; n++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				addr := base + rng%span
				switch rng % 8 {
				case 0:
					a.StoreRange(addr, 8, 64)
				case 1:
					a.LoadRange(addr, 8, 256)
				case 2:
					a.Store(addr, 8)
				default:
					a.Load(addr, 8)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	var total uint64
	for _, a := range accs {
		total += a.Accesses
	}
	return float64(total) / elapsed
}

// benchSim produces the BENCH_sim.json artifact plus a human-readable
// report of the same numbers.
func benchSim(s *Suite) ([]*Report, error) {
	if err := checkBenchSchema(BenchSimPath); err != nil {
		return nil, err
	}
	bs := BenchSim{
		SchemaVersion: BenchSimSchemaVersion,
		GeneratedUnix: time.Now().Unix(),
		HostCores:     runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		GitSHA:        benchGitSHA(),
	}
	const ops = 1 << 15
	for _, procs := range []int{1, 2, 4, 8} {
		if procs > 1 && procs > runtime.NumCPU() {
			break
		}
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			if tput := measureSimThroughput(procs, ops); tput > best {
				best = tput
			}
		}
		bs.ScalingProcs = append(bs.ScalingProcs, procs)
		bs.ScalingAccessesPerSec = append(bs.ScalingAccessesPerSec, best)
	}
	last := len(bs.ScalingProcs) - 1
	bs.SimAccessesPerSec = bs.ScalingAccessesPerSec[last]
	bs.NsPerSimAccess = 1e9 / bs.SimAccessesPerSec
	bs.ScalingEfficiency = bs.ScalingAccessesPerSec[last] /
		(float64(bs.ScalingProcs[last]) * bs.ScalingAccessesPerSec[0])

	online, replay, err := comparePlanSessions("pr", "twitter", 4)
	if err != nil {
		return nil, err
	}
	bs.OnlineWallSeconds = online.WallSeconds
	bs.ReplayWallSeconds = replay.WallSeconds
	bs.OnlinePlacementSeconds = online.PlacementSeconds
	bs.ReplayPlacementSeconds = replay.PlacementSeconds
	bs.PlacementSpeedup = online.PlacementSeconds / replay.PlacementSeconds
	bs.ReplayResidencyMatched = true // comparePlanSessions enforces it
	bs.ReplayGraphCRCsMatched = true

	f, err := os.Create(BenchSimPath)
	if err != nil {
		return nil, fmt.Errorf("harness: bench-sim artifact: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&bs); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}

	rep := &Report{
		ID:      "bench-sim",
		Title:   "Simulator throughput, host-core scaling, and replay speedup",
		Columns: []string{"metric", "value"},
	}
	rep.AddRow("host cores", fmt.Sprintf("%d", bs.HostCores))
	for i, procs := range bs.ScalingProcs {
		rep.AddRow(fmt.Sprintf("simacc/s @ %d procs", procs),
			fmt.Sprintf("%.3g", bs.ScalingAccessesPerSec[i]))
	}
	rep.AddRow("ns/simulated-access", fmt.Sprintf("%.1f", bs.NsPerSimAccess))
	rep.AddRow("scaling efficiency", pct(bs.ScalingEfficiency))
	rep.AddRow("online placement(s)", secs(bs.OnlinePlacementSeconds))
	rep.AddRow("replay placement(s)", secs(bs.ReplayPlacementSeconds))
	rep.AddRow("placement speedup", ratio(bs.PlacementSpeedup))
	rep.AddNote("written to %s (CI uploads it as the perf-trajectory artifact)", BenchSimPath)
	return []*Report{rep}, nil
}

// checkBenchSchema refuses to clobber an artifact stamped by a NEWER
// schema: an older binary rerunning bench-sim must fail loudly rather
// than silently strip fields the regression gate depends on. A missing
// or unparseable artifact (including v1, which carried no version) is
// fair game.
func checkBenchSchema(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var probe struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil
	}
	if probe.SchemaVersion > BenchSimSchemaVersion {
		return fmt.Errorf("harness: %s carries schema_version %d, newer than this binary's %d; refusing to overwrite (rebuild from the newer source or remove the artifact)",
			path, probe.SchemaVersion, BenchSimSchemaVersion)
	}
	return nil
}

// benchGitSHA resolves the source revision to stamp into the artifact:
// CI's GITHUB_SHA when set, the local git HEAD otherwise, empty when
// neither resolves (e.g. a source tarball — provenance is best-effort).
func benchGitSHA() string {
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		return sha
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
