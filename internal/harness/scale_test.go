package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckBenchSchema pins the overwrite guard: a missing, legacy, or
// same-version artifact may be regenerated; one stamped by a newer
// schema must not.
func TestCheckBenchSchema(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	if err := checkBenchSchema(filepath.Join(dir, "absent.json")); err != nil {
		t.Errorf("missing artifact: %v", err)
	}
	if err := checkBenchSchema(write("garbage.json", "not json")); err != nil {
		t.Errorf("unparseable artifact: %v", err)
	}
	if err := checkBenchSchema(write("v1.json", `{"host_cores": 8}`)); err != nil {
		t.Errorf("legacy unversioned artifact: %v", err)
	}
	same := fmt.Sprintf(`{"schema_version": %d}`, BenchSimSchemaVersion)
	if err := checkBenchSchema(write("same.json", same)); err != nil {
		t.Errorf("same-version artifact: %v", err)
	}
	newer := fmt.Sprintf(`{"schema_version": %d}`, BenchSimSchemaVersion+1)
	err := checkBenchSchema(write("newer.json", newer))
	if err == nil {
		t.Fatal("newer-schema artifact was not refused")
	}
	if !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Errorf("unexpected refusal message: %v", err)
	}
}
