// Package faultinject provides deterministic, schedule-driven fault
// injection for the simulated memory system. A Schedule arms rules at
// named fault points (the capacity-mutating operations of memsim.System);
// an Injector evaluates the schedule at runtime and decides, per call,
// whether the operation should fail before mutating any state.
//
// Two rule shapes cover the fault matrix the migration engines must
// tolerate:
//
//   - nth-call rules fire exactly on the Nth invocation of an operation,
//     which provokes a failure at a precise point of a migration plan
//     (e.g. "the second Retier of this Optimize fails" — a mid-region
//     remap fault);
//   - probabilistic rules fire with a fixed probability per call, drawn
//     from a seeded RNG, so randomized soak tests are reproducible from
//     the seed alone.
//
// Injected errors always wrap ErrInjected; a rule may additionally carry
// a cause (e.g. memsim.ErrNoCapacity) so callers exercising typed-error
// handling see exactly the error chain a real failure would produce.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Op identifies one fault point of the simulated memory system.
type Op string

// The fault points wired into memsim.System. Each is checked on entry of
// the corresponding operation, before any state changes, so an injected
// failure is indistinguishable from the operation rejecting its inputs.
const (
	OpAlloc    Op = "Alloc"
	OpReserve  Op = "Reserve"
	OpRetier   Op = "Retier"
	OpSplinter Op = "Splinter"
)

// Ops lists every fault point, for tests that sweep the full matrix.
var Ops = []Op{OpAlloc, OpReserve, OpRetier, OpSplinter}

// ErrInjected is the sentinel every injected fault wraps; detectable with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is one armed rule of a Schedule.
type Fault struct {
	// Op is the fault point this rule arms.
	Op Op
	// Nth, when non-zero, fires the rule on exactly the Nth call
	// (1-based) of Op.
	Nth uint64
	// Prob, when non-zero, fires the rule with this probability on
	// every call of Op, drawn from the schedule's seeded RNG.
	Prob float64
	// MaxFires bounds how many times this rule may fire; 0 means
	// unlimited (nth-call rules naturally fire at most once).
	MaxFires int
	// Err, when non-nil, is wrapped into the injected error alongside
	// ErrInjected, so errors.Is matches both. Use it to mimic a typed
	// failure such as memsim.ErrNoCapacity.
	Err error
}

// Schedule is a deterministic fault plan: a seed for the probabilistic
// rules plus the armed rules themselves. The zero Schedule injects
// nothing.
type Schedule struct {
	// Seed seeds the RNG behind probabilistic rules. Two injectors
	// built from equal schedules observe identical fault sequences for
	// the same call sequence.
	Seed int64
	// Faults are the armed rules.
	Faults []Fault
}

// Event records one fired fault, for assertions and reports.
type Event struct {
	// Op is the fault point that failed.
	Op Op
	// Call is the 1-based call number of Op at which the rule fired.
	Call uint64
	// Rule indexes the schedule's Faults.
	Rule int
}

// Injector evaluates a Schedule at runtime. It is safe for concurrent
// use; note that under concurrent callers the call numbering (and hence
// nth-call determinism) follows arrival order at the injector's lock.
// The migration path calls it single-threaded.
type Injector struct {
	mu     sync.Mutex
	sched  Schedule
	rng    *rand.Rand
	calls  map[Op]uint64
	fires  []int
	events []Event
}

// New builds an Injector for the schedule.
func New(s Schedule) *Injector {
	return &Injector{
		sched: s,
		rng:   rand.New(rand.NewSource(s.Seed)),
		calls: make(map[Op]uint64),
		fires: make([]int, len(s.Faults)),
	}
}

// Check is the hook the simulated system calls on entry of each fault
// point. It returns nil to let the operation proceed, or the injected
// error the operation must fail with.
func (in *Injector) Check(op Op) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[op]++
	n := in.calls[op]
	for i := range in.sched.Faults {
		f := &in.sched.Faults[i]
		if f.Op != op {
			continue
		}
		if f.MaxFires > 0 && in.fires[i] >= f.MaxFires {
			continue
		}
		hit := f.Nth > 0 && f.Nth == n
		if !hit && f.Prob > 0 && in.rng.Float64() < f.Prob {
			hit = true
		}
		if !hit {
			continue
		}
		in.fires[i]++
		in.events = append(in.events, Event{Op: op, Call: n, Rule: i})
		if f.Err != nil {
			return fmt.Errorf("%w: %s call %d: %w", ErrInjected, op, n, f.Err)
		}
		return fmt.Errorf("%w: %s call %d", ErrInjected, op, n)
	}
	return nil
}

// Calls returns how many times the fault point has been evaluated.
func (in *Injector) Calls(op Op) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[op]
}

// Events returns a copy of every fired fault so far, in firing order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// Fired returns the total number of injected faults so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.events)
}

// Disarm drops every armed rule: subsequent Checks pass, while call
// counters and recorded events survive for assertions. It models the
// fault condition clearing mid-run (the storm ends, the flaky device
// recovers) — the injected history stays observable, but nothing new
// fires. Disarming is permanent: a later Reset replays an empty
// schedule.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sched.Faults = nil
}

// Reset clears call counters, fire counts, recorded events, and reseeds
// the RNG, so one injector can replay its schedule from the start.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rng = rand.New(rand.NewSource(in.sched.Seed))
	in.calls = make(map[Op]uint64)
	for i := range in.fires {
		in.fires[i] = 0
	}
	in.events = nil
}
