// Package faultinject provides deterministic, schedule-driven fault
// injection for the simulated memory system. A Schedule arms rules at
// named fault points (the capacity-mutating operations of memsim.System);
// an Injector evaluates the schedule at runtime and decides, per call,
// whether the operation should fail before mutating any state.
//
// Two rule shapes cover the fault matrix the migration engines must
// tolerate:
//
//   - nth-call rules fire exactly on the Nth invocation of an operation,
//     which provokes a failure at a precise point of a migration plan
//     (e.g. "the second Retier of this Optimize fails" — a mid-region
//     remap fault);
//   - probabilistic rules fire with a fixed probability per call, drawn
//     from a seeded RNG, so randomized soak tests are reproducible from
//     the seed alone.
//
// Injected errors always wrap ErrInjected; a rule may additionally carry
// a cause (e.g. memsim.ErrNoCapacity) so callers exercising typed-error
// handling see exactly the error chain a real failure would produce.
//
// Beyond the transient rules above, three fault classes model the ways a
// heterogeneous-memory device degrades for good:
//
//   - Persistent rules scope a rule to a virtual address range and fail
//     every touch of that range from their activation call onward — the
//     region has gone bad and no retry will fix it;
//   - Corrupt rules are epoch-driven data-plane orders: they tell the
//     runtime to flip bytes inside a mapped fast-tier range so CRC
//     scrubbing (not the control plane) must catch the damage;
//   - Degrade rules are epoch-driven orders that multiply the modelled
//     latency of a range, the slow-but-working failure mode.
//
// Control-plane rules (Transient, Persistent) fire inside Check/
// CheckRange; data-plane orders (Corrupt, Degrade) are drained by the
// runtime via AdvanceEpoch at epoch boundaries and applied by it.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// Op identifies one fault point of the simulated memory system.
type Op string

// The fault points wired into memsim.System. Each is checked on entry of
// the corresponding operation, before any state changes, so an injected
// failure is indistinguishable from the operation rejecting its inputs.
const (
	OpAlloc    Op = "Alloc"
	OpReserve  Op = "Reserve"
	OpRetier   Op = "Retier"
	OpSplinter Op = "Splinter"
)

// Ops lists every fault point, for tests that sweep the full matrix.
var Ops = []Op{OpAlloc, OpReserve, OpRetier, OpSplinter}

// Data-plane fault points: not checked by memsim operations, but used as
// the Op of events recorded when an epoch-driven Corrupt or Degrade rule
// fires, so reports and telemetry can label them uniformly.
const (
	OpCorrupt Op = "Corrupt"
	OpDegrade Op = "Degrade"
)

// ErrInjected is the sentinel every injected fault wraps; detectable with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Kind classifies a rule's failure semantics.
type Kind int

const (
	// Transient is the zero value: the rule fires per the nth-call /
	// probabilistic machinery and the failed operation may simply be
	// retried.
	Transient Kind = iota
	// Persistent scopes the rule to an address range (Base, Size) that
	// fails every touch from the rule's activation call onward; Size 0
	// makes the rule range-wildcard. Retrying cannot help — only
	// quarantining the range does.
	Persistent
	// Corrupt is an epoch-driven data-plane order: flip bytes inside a
	// mapped fast-tier range so only a CRC check can catch the damage.
	// Nth is the 1-based epoch to fire at; Prob fires per epoch.
	Corrupt
	// Degrade is an epoch-driven data-plane order: multiply the modelled
	// latency of a range by Factor from the firing epoch onward.
	Degrade
)

// String returns the DSL spelling of the kind ("", "persist", "corrupt",
// "degrade"); Transient rules are spelled by their Op instead.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case Persistent:
		return "persist"
	case Corrupt:
		return "corrupt"
	case Degrade:
		return "degrade"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one armed rule of a Schedule.
type Fault struct {
	// Kind selects the rule's failure class; the zero value is the
	// transient nth-call/probabilistic rule shape.
	Kind Kind
	// Op is the fault point this rule arms (control-plane kinds only;
	// Corrupt and Degrade orders are epoch-driven, not op-driven).
	Op Op
	// Nth, when non-zero, fires a Transient rule on exactly the Nth call
	// (1-based) of Op. For Persistent rules it is the activation
	// threshold: the range fails every touch from call Nth onward. For
	// Corrupt/Degrade it is the 1-based epoch the order fires at.
	Nth uint64
	// Prob, when non-zero, fires the rule with this probability on
	// every call of Op (or, for epoch-driven kinds, every epoch), drawn
	// from the schedule's seeded RNG.
	Prob float64
	// MaxFires bounds how many times this rule may fire; 0 means
	// unlimited (nth-call rules naturally fire at most once, persistent
	// rules naturally fire without bound).
	MaxFires int
	// Err, when non-nil, is wrapped into the injected error alongside
	// ErrInjected, so errors.Is matches both. Use it to mimic a typed
	// failure such as memsim.ErrNoCapacity.
	Err error
	// Base and Size scope Persistent rules to a virtual address range
	// and tell Corrupt/Degrade orders which range to damage. Size 0
	// means range-wildcard: a Persistent rule matches every ranged
	// touch of its Op, and the runtime picks the damage target for an
	// order (deterministically, lowest-addressed fast-resident data).
	Base, Size uint64
	// Factor is the latency multiplier carried by Degrade orders
	// (values > 1 slow the range down).
	Factor float64
}

// overlaps reports whether the rule's range intersects [base, base+size).
// A Size-0 rule is a wildcard and matches everything; a size-0 touch
// carries no range and matches only wildcards.
func (f *Fault) overlaps(base, size uint64) bool {
	if f.Size == 0 {
		return true
	}
	if size == 0 {
		return false
	}
	return base < f.Base+f.Size && f.Base < base+size
}

// Schedule is a deterministic fault plan: a seed for the probabilistic
// rules plus the armed rules themselves. The zero Schedule injects
// nothing.
type Schedule struct {
	// Seed seeds the RNG behind probabilistic rules. Two injectors
	// built from equal schedules observe identical fault sequences for
	// the same call sequence.
	Seed int64
	// Faults are the armed rules.
	Faults []Fault
}

// Event records one fired fault, for assertions and reports.
type Event struct {
	// Op is the fault point that failed (OpCorrupt/OpDegrade for
	// epoch-driven data-plane orders).
	Op Op
	// Call is the 1-based call number of Op at which the rule fired
	// (the epoch number for data-plane orders).
	Call uint64
	// Rule indexes the schedule's Faults.
	Rule int
}

// Order is one epoch-driven data-plane fault the runtime must apply: a
// corruption to inject into mapped bytes, or a latency degradation to
// install on a range. Orders are returned by AdvanceEpoch; the injector
// only decides *that* they fire — applying them is the runtime's job,
// since only it can reach mapped bytes and the latency model.
type Order struct {
	// Kind is Corrupt or Degrade.
	Kind Kind
	// Rule indexes the schedule's Faults.
	Rule int
	// Epoch is the 1-based epoch at which the order fired.
	Epoch uint64
	// Base and Size are the target range; Size 0 lets the runtime pick
	// (deterministically) among fast-resident data.
	Base, Size uint64
	// Factor is the latency multiplier (Degrade orders).
	Factor float64
	// Seed derives deterministic damage (which bytes flip) for Corrupt
	// orders; it mixes the schedule seed, rule index, and epoch.
	Seed int64
}

// Injector evaluates a Schedule at runtime. It is safe for concurrent
// use; note that under concurrent callers the call numbering (and hence
// nth-call determinism) follows arrival order at the injector's lock.
// The migration path calls it single-threaded.
type Injector struct {
	mu     sync.Mutex
	sched  Schedule
	rng    *rand.Rand
	calls  map[Op]uint64
	fires  []int
	events []Event
	epoch  uint64
}

// New builds an Injector for the schedule.
func New(s Schedule) *Injector {
	return &Injector{
		sched: s,
		rng:   rand.New(rand.NewSource(s.Seed)),
		calls: make(map[Op]uint64),
		fires: make([]int, len(s.Faults)),
	}
}

// Check is the hook the simulated system calls on entry of each fault
// point. It returns nil to let the operation proceed, or the injected
// error the operation must fail with. Range-scoped Persistent rules do
// not match a plain Check; address-carrying operations use CheckRange.
func (in *Injector) Check(op Op) error {
	return in.CheckRange(op, 0, 0)
}

// CheckRange is Check for address-carrying fault points (Retier,
// Splinter): the touched virtual range is matched against Persistent
// rules, which fail every overlapping touch from their activation call
// onward. Transient rules behave exactly as under Check — the range
// does not influence them — so call numbering is shared between Check
// and CheckRange.
func (in *Injector) CheckRange(op Op, base, size uint64) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[op]++
	n := in.calls[op]
	for i := range in.sched.Faults {
		f := &in.sched.Faults[i]
		if f.Op != op || f.Kind == Corrupt || f.Kind == Degrade {
			continue
		}
		if f.MaxFires > 0 && in.fires[i] >= f.MaxFires {
			continue
		}
		var hit bool
		if f.Kind == Persistent {
			// A persistent rule fails every overlapping touch once
			// activated: from call Nth onward, or — probabilistic rules
			// — latched permanently by the first successful draw.
			if !f.overlaps(base, size) {
				continue
			}
			switch {
			case f.Nth > 0:
				hit = n >= f.Nth
			case f.Prob > 0:
				hit = in.fires[i] > 0 || in.rng.Float64() < f.Prob
			default:
				hit = true
			}
		} else {
			hit = f.Nth > 0 && f.Nth == n
			if !hit && f.Prob > 0 && in.rng.Float64() < f.Prob {
				hit = true
			}
		}
		if !hit {
			continue
		}
		in.fires[i]++
		in.events = append(in.events, Event{Op: op, Call: n, Rule: i})
		if f.Err != nil {
			return fmt.Errorf("%w: %s call %d: %w", ErrInjected, op, n, f.Err)
		}
		return fmt.Errorf("%w: %s call %d", ErrInjected, op, n)
	}
	return nil
}

// AdvanceEpoch advances the injector's epoch clock and returns the
// data-plane orders (Corrupt, Degrade rules) firing this epoch, in rule
// order. The runtime calls it once per optimization epoch, before the
// epoch's kernels run, and applies the returned orders itself. Fired
// orders are recorded as events (Op OpCorrupt/OpDegrade, Call = epoch).
func (in *Injector) AdvanceEpoch() []Order {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.epoch++
	var orders []Order
	for i := range in.sched.Faults {
		f := &in.sched.Faults[i]
		if f.Kind != Corrupt && f.Kind != Degrade {
			continue
		}
		if f.MaxFires > 0 && in.fires[i] >= f.MaxFires {
			continue
		}
		hit := f.Nth > 0 && f.Nth == in.epoch
		if !hit && f.Prob > 0 && in.rng.Float64() < f.Prob {
			hit = true
		}
		if !hit {
			continue
		}
		op := OpCorrupt
		if f.Kind == Degrade {
			op = OpDegrade
		}
		in.fires[i]++
		in.events = append(in.events, Event{Op: op, Call: in.epoch, Rule: i})
		orders = append(orders, Order{
			Kind:   f.Kind,
			Rule:   i,
			Epoch:  in.epoch,
			Base:   f.Base,
			Size:   f.Size,
			Factor: f.Factor,
			Seed:   in.sched.Seed ^ int64(i+1)<<32 ^ int64(in.epoch),
		})
	}
	return orders
}

// Epoch returns how many times AdvanceEpoch has been called.
func (in *Injector) Epoch() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.epoch
}

// Arm appends rules to the live schedule. It exists for faults whose
// address ranges are only known after allocation (a test or soak harness
// computes object addresses, then arms Persistent/Corrupt rules aimed at
// them). Armed rules join the schedule's rule numbering after the
// existing ones and survive Reset like any other rule.
func (in *Injector) Arm(faults ...Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sched.Faults = append(in.sched.Faults, faults...)
	in.fires = append(in.fires, make([]int, len(faults))...)
}

// Calls returns how many times the fault point has been evaluated.
func (in *Injector) Calls(op Op) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[op]
}

// Events returns a copy of every fired fault so far, in firing order.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// Fired returns the total number of injected faults so far.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.events)
}

// Disarm drops every armed rule: subsequent Checks pass, while call
// counters and recorded events survive for assertions. It models the
// fault condition clearing mid-run (the storm ends, the flaky device
// recovers) — the injected history stays observable, but nothing new
// fires. Disarming is permanent: a later Reset replays an empty
// schedule.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.sched.Faults = nil
}

// Reset clears call counters, fire counts, recorded events, and reseeds
// the RNG, so one injector can replay its schedule from the start.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rng = rand.New(rand.NewSource(in.sched.Seed))
	in.calls = make(map[Op]uint64)
	for i := range in.fires {
		in.fires[i] = 0
	}
	in.events = nil
	in.epoch = 0
}
