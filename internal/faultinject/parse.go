package faultinject

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// This file implements the fault-schedule string DSL, so soak harnesses
// and the atmem-bench CLI can arm schedules without writing Go:
//
//	retier:nth=3;reserve:p=0.01,seed=7,max=5
//	persist:base=1048576,size=2097152;corrupt:epoch=3;degrade:epoch=5,factor=4
//
// A schedule is ';'-separated clauses. Each clause is a fault point —
// alloc, reserve, retier, splinter for transient rules; persist,
// corrupt, degrade for the persistent/data-plane kinds — optionally
// followed by ':' and ','-separated key=value params. A bare seed=N
// clause (or a seed param inside any clause) sets the schedule seed.
//
// Params: nth (transient firing call / persistent activation call),
// p (per-call or per-epoch probability), max (MaxFires), err (error
// text), base and size (address range; 0x hex and k/m/g suffixes
// accepted), epoch (firing epoch, corrupt/degrade), factor (latency
// multiplier, degrade), op (the guarded operation, persist only;
// default retier).
//
// Schedule.String renders the canonical form — seed clause first, plain
// decimal numbers — and ParseSchedule(s.String()) round-trips.

var opNames = map[string]Op{
	"alloc":    OpAlloc,
	"reserve":  OpReserve,
	"retier":   OpRetier,
	"splinter": OpSplinter,
}

// defaultDegradeFactor is the latency multiplier a degrade clause gets
// when factor= is omitted: roughly "the fast tier now performs like the
// slow one".
const defaultDegradeFactor = 4

// ParseSchedule parses the fault-schedule DSL described above. An empty
// (or all-whitespace) input yields the zero Schedule.
func ParseSchedule(s string) (Schedule, error) {
	var sched Schedule
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		head, params, _ := strings.Cut(clause, ":")
		head = strings.TrimSpace(head)

		// Bare seed=N clause.
		if k, v, ok := strings.Cut(head, "="); ok && strings.TrimSpace(k) == "seed" && params == "" {
			seed, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			sched.Seed = seed
			continue
		}

		f, seed, hasSeed, err := parseClause(head, params)
		if err != nil {
			return Schedule{}, err
		}
		if hasSeed {
			sched.Seed = seed
		}
		sched.Faults = append(sched.Faults, f)
	}
	return sched, nil
}

// parseClause parses one "point:params" clause into a Fault, also
// returning a seed if one was given inline.
func parseClause(head, params string) (Fault, int64, bool, error) {
	var f Fault
	switch head {
	case "persist":
		f.Kind = Persistent
		f.Op = OpRetier
	case "corrupt":
		f.Kind = Corrupt
	case "degrade":
		f.Kind = Degrade
		f.Factor = defaultDegradeFactor
	default:
		op, ok := opNames[head]
		if !ok {
			return f, 0, false, fmt.Errorf("faultinject: unknown fault point %q", head)
		}
		f.Op = op
	}

	var seed int64
	var hasSeed bool
	if strings.TrimSpace(params) != "" {
		for _, p := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(p, "=")
			if !ok {
				return f, 0, false, fmt.Errorf("faultinject: bad param %q (want key=value)", strings.TrimSpace(p))
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			if err := applyParam(&f, head, key, val, &seed, &hasSeed); err != nil {
				return f, 0, false, err
			}
		}
	}
	if err := validateClause(&f, head); err != nil {
		return f, 0, false, err
	}
	return f, seed, hasSeed, nil
}

func applyParam(f *Fault, head, key, val string, seed *int64, hasSeed *bool) error {
	epochDriven := f.Kind == Corrupt || f.Kind == Degrade
	switch key {
	case "seed":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return fmt.Errorf("faultinject: bad seed %q: %v", val, err)
		}
		*seed, *hasSeed = n, true
	case "nth":
		if epochDriven {
			return fmt.Errorf("faultinject: %s is epoch-driven; use epoch= instead of nth=", head)
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("faultinject: bad nth %q (want positive integer)", val)
		}
		f.Nth = n
	case "epoch":
		if !epochDriven {
			return fmt.Errorf("faultinject: epoch= only applies to corrupt/degrade clauses")
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil || n == 0 {
			return fmt.Errorf("faultinject: bad epoch %q (want positive integer)", val)
		}
		f.Nth = n
	case "p":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p <= 0 || p > 1 {
			return fmt.Errorf("faultinject: bad probability %q (want 0 < p <= 1)", val)
		}
		f.Prob = p
	case "max":
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return fmt.Errorf("faultinject: bad max %q (want positive integer)", val)
		}
		f.MaxFires = n
	case "err":
		if val == "" {
			return fmt.Errorf("faultinject: empty err= value")
		}
		f.Err = errors.New(val)
	case "base":
		n, err := parseBytes(val)
		if err != nil {
			return fmt.Errorf("faultinject: bad base %q: %v", val, err)
		}
		f.Base = n
	case "size":
		n, err := parseBytes(val)
		if err != nil || n == 0 {
			return fmt.Errorf("faultinject: bad size %q (want positive bytes)", val)
		}
		f.Size = n
	case "factor":
		if f.Kind != Degrade {
			return fmt.Errorf("faultinject: factor= only applies to degrade clauses")
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil || x <= 1 {
			return fmt.Errorf("faultinject: bad factor %q (want > 1)", val)
		}
		f.Factor = x
	case "op":
		if f.Kind != Persistent {
			return fmt.Errorf("faultinject: op= only applies to persist clauses")
		}
		op, ok := opNames[val]
		if !ok {
			return fmt.Errorf("faultinject: unknown op %q", val)
		}
		f.Op = op
	default:
		return fmt.Errorf("faultinject: unknown param %q in %s clause", key, head)
	}
	return nil
}

// validateClause rejects rules that can never fire and kind/param
// mismatches the per-param checks cannot see.
func validateClause(f *Fault, head string) error {
	switch f.Kind {
	case Transient:
		if f.Nth == 0 && f.Prob == 0 {
			return fmt.Errorf("faultinject: %s clause needs nth= or p= to ever fire", head)
		}
		if f.Base != 0 || f.Size != 0 {
			return fmt.Errorf("faultinject: base=/size= only apply to persist/corrupt/degrade clauses")
		}
	case Corrupt, Degrade:
		if f.Nth == 0 && f.Prob == 0 {
			return fmt.Errorf("faultinject: %s clause needs epoch= or p= to ever fire", head)
		}
		if f.Err != nil {
			return fmt.Errorf("faultinject: err= does not apply to %s clauses (data-plane orders return no error)", head)
		}
	}
	return nil
}

// parseBytes parses a byte count: decimal or 0x-hex, with an optional
// k/m/g (KiB/MiB/GiB) suffix on decimal values.
func parseBytes(s string) (uint64, error) {
	mult := uint64(1)
	if !strings.HasPrefix(s, "0x") && !strings.HasPrefix(s, "0X") && s != "" {
		switch s[len(s)-1] {
		case 'k', 'K':
			mult, s = 1<<10, s[:len(s)-1]
		case 'm', 'M':
			mult, s = 1<<20, s[:len(s)-1]
		case 'g', 'G':
			mult, s = 1<<30, s[:len(s)-1]
		}
	}
	n, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if mult > 1 && n > ^uint64(0)/mult {
		return 0, fmt.Errorf("overflows uint64")
	}
	return n * mult, nil
}

// String renders the schedule in canonical DSL form: a leading seed
// clause when the seed is non-zero, then one clause per rule in order.
// ParseSchedule(s.String()) reconstructs an equivalent schedule (rule
// errors come back as plain errors carrying the same text).
func (s Schedule) String() string {
	var b strings.Builder
	if s.Seed != 0 {
		fmt.Fprintf(&b, "seed=%d", s.Seed)
	}
	for i := range s.Faults {
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		writeClause(&b, &s.Faults[i])
	}
	return b.String()
}

func writeClause(b *strings.Builder, f *Fault) {
	var head string
	switch f.Kind {
	case Persistent:
		head = "persist"
	case Corrupt:
		head = "corrupt"
	case Degrade:
		head = "degrade"
	default:
		head = strings.ToLower(string(f.Op))
	}
	b.WriteString(head)

	var params []string
	add := func(k, v string) { params = append(params, k+"="+v) }
	if f.Kind == Persistent && f.Op != OpRetier && f.Op != "" {
		add("op", strings.ToLower(string(f.Op)))
	}
	if f.Nth != 0 {
		if f.Kind == Corrupt || f.Kind == Degrade {
			add("epoch", strconv.FormatUint(f.Nth, 10))
		} else {
			add("nth", strconv.FormatUint(f.Nth, 10))
		}
	}
	if f.Prob != 0 {
		add("p", strconv.FormatFloat(f.Prob, 'g', -1, 64))
	}
	if f.MaxFires != 0 {
		add("max", strconv.Itoa(f.MaxFires))
	}
	if f.Base != 0 {
		add("base", strconv.FormatUint(f.Base, 10))
	}
	if f.Size != 0 {
		add("size", strconv.FormatUint(f.Size, 10))
	}
	if f.Kind == Degrade && f.Factor != 0 && f.Factor != defaultDegradeFactor {
		add("factor", strconv.FormatFloat(f.Factor, 'g', -1, 64))
	}
	if f.Err != nil {
		add("err", f.Err.Error())
	}
	if len(params) > 0 {
		b.WriteByte(':')
		b.WriteString(strings.Join(params, ","))
	}
}
