package faultinject

import (
	"errors"
	"strings"
	"testing"
)

func TestParseScheduleIssueExample(t *testing.T) {
	s, err := ParseSchedule("retier:nth=3;reserve:p=0.01,seed=7,max=5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 {
		t.Errorf("seed %d, want 7", s.Seed)
	}
	if len(s.Faults) != 2 {
		t.Fatalf("got %d faults, want 2", len(s.Faults))
	}
	if f := s.Faults[0]; f.Op != OpRetier || f.Nth != 3 || f.Kind != Transient {
		t.Errorf("fault 0 = %+v", f)
	}
	if f := s.Faults[1]; f.Op != OpReserve || f.Prob != 0.01 || f.MaxFires != 5 {
		t.Errorf("fault 1 = %+v", f)
	}
}

func TestParseScheduleKinds(t *testing.T) {
	s, err := ParseSchedule(
		"persist:base=1m,size=2m,nth=2;corrupt:epoch=3,base=0x100000,size=64k;degrade:epoch=5,factor=3.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 3 {
		t.Fatalf("got %d faults, want 3", len(s.Faults))
	}
	p := s.Faults[0]
	if p.Kind != Persistent || p.Op != OpRetier || p.Base != 1<<20 || p.Size != 2<<20 || p.Nth != 2 {
		t.Errorf("persist = %+v", p)
	}
	c := s.Faults[1]
	if c.Kind != Corrupt || c.Nth != 3 || c.Base != 0x100000 || c.Size != 64<<10 {
		t.Errorf("corrupt = %+v", c)
	}
	d := s.Faults[2]
	if d.Kind != Degrade || d.Nth != 5 || d.Factor != 3.5 {
		t.Errorf("degrade = %+v", d)
	}
}

func TestParseScheduleErrParam(t *testing.T) {
	s, err := ParseSchedule("reserve:nth=1,err=no capacity")
	if err != nil {
		t.Fatal(err)
	}
	in := New(s)
	got := in.Check(OpReserve)
	if !errors.Is(got, ErrInjected) {
		t.Errorf("not an injected error: %v", got)
	}
	if got == nil || !strings.Contains(got.Error(), "no capacity") {
		t.Errorf("cause text missing: %v", got)
	}
}

func TestParseScheduleRejects(t *testing.T) {
	bad := []string{
		"frobnicate:nth=1",       // unknown point
		"retier",                 // can never fire
		"retier:wat=1",           // unknown param
		"retier:p=2",             // probability out of range
		"retier:nth=0",           // nth must be positive
		"corrupt:nth=3",          // epoch-driven: must use epoch=
		"persist:epoch=3",        // epoch= is corrupt/degrade only
		"retier:base=4096",       // range on a transient rule
		"corrupt:epoch=1,err=x",  // data-plane orders carry no error
		"retier:factor=2,nth=1",  // factor is degrade-only
		"persist:op=frob,nth=1",  // unknown op
		"reserve:seed=x,nth=1",   // malformed seed
		"degrade:epoch=1,size=0", // zero size
	}
	for _, in := range bad {
		if _, err := ParseSchedule(in); err == nil {
			t.Errorf("ParseSchedule(%q) accepted, want error", in)
		}
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	for _, in := range []string{"", "  ", ";;", " ; "} {
		s, err := ParseSchedule(in)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", in, err)
		}
		if s.Seed != 0 || len(s.Faults) != 0 {
			t.Errorf("ParseSchedule(%q) = %+v, want zero", in, s)
		}
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	inputs := []string{
		"retier:nth=3;reserve:p=0.01,seed=7,max=5",
		"seed=-9;alloc:p=1,max=2;splinter:nth=4",
		"persist:base=1m,size=2m;corrupt:epoch=3;degrade:p=0.25,factor=8",
		"reserve:nth=1,err=synthetic cause",
		"persist:op=splinter,nth=2,p=0.5,max=3,base=4096,size=8192",
	}
	for _, in := range inputs {
		s1, err := ParseSchedule(in)
		if err != nil {
			t.Fatalf("ParseSchedule(%q): %v", in, err)
		}
		canon := s1.String()
		s2, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", canon, in, err)
		}
		if got := s2.String(); got != canon {
			t.Errorf("round trip diverged:\n in    %q\n canon %q\n again %q", in, canon, got)
		}
	}
}

func TestScheduleStringDefaultsElided(t *testing.T) {
	s, err := ParseSchedule("degrade:epoch=2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults[0].Factor != defaultDegradeFactor {
		t.Fatalf("default factor = %g", s.Faults[0].Factor)
	}
	if got := s.String(); got != "degrade:epoch=2" {
		t.Errorf("String() = %q, want default factor elided", got)
	}
}

// FuzzParseSchedule checks the parser never panics and that every
// accepted input reaches a canonical fixpoint: String() reparses, and
// reparsing yields the same canonical string.
func FuzzParseSchedule(f *testing.F) {
	f.Add("retier:nth=3;reserve:p=0.01,seed=7,max=5")
	f.Add("seed=42;persist:base=1m,size=2m")
	f.Add("corrupt:epoch=3,base=0x1000,size=64k;degrade:p=0.5,factor=2.5")
	f.Add("alloc:err=boom")
	f.Add(";;retier:nth=1;")
	f.Add("reserve:p=1e-3")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := ParseSchedule(in)
		if err != nil {
			return
		}
		canon := s.String()
		s2, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) rejected: %v", canon, in, err)
		}
		if got := s2.String(); got != canon {
			t.Fatalf("not a fixpoint:\n in    %q\n canon %q\n again %q", in, canon, got)
		}
	})
}
