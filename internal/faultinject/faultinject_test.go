package faultinject

import (
	"errors"
	"testing"
)

func TestNthCallFiresExactlyOnce(t *testing.T) {
	in := New(Schedule{Faults: []Fault{{Op: OpReserve, Nth: 3}}})
	for call := 1; call <= 6; call++ {
		err := in.Check(OpReserve)
		if call == 3 && err == nil {
			t.Fatalf("call 3 did not fault")
		}
		if call != 3 && err != nil {
			t.Fatalf("call %d faulted: %v", call, err)
		}
	}
	if in.Fired() != 1 {
		t.Errorf("fired %d times, want 1", in.Fired())
	}
	if in.Calls(OpReserve) != 6 {
		t.Errorf("calls %d, want 6", in.Calls(OpReserve))
	}
}

func TestInjectedErrorsAreTyped(t *testing.T) {
	cause := errors.New("capacity")
	in := New(Schedule{Faults: []Fault{{Op: OpRetier, Nth: 1, Err: cause}}})
	err := in.Check(OpRetier)
	if !errors.Is(err, ErrInjected) {
		t.Errorf("errors.Is(err, ErrInjected) false: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("errors.Is(err, cause) false: %v", err)
	}
}

func TestOpsDoNotInterfere(t *testing.T) {
	in := New(Schedule{Faults: []Fault{{Op: OpSplinter, Nth: 1}}})
	if err := in.Check(OpAlloc); err != nil {
		t.Fatalf("Alloc faulted: %v", err)
	}
	if err := in.Check(OpRetier); err != nil {
		t.Fatalf("Retier faulted: %v", err)
	}
	if err := in.Check(OpSplinter); err == nil {
		t.Fatal("Splinter call 1 did not fault")
	}
}

func TestProbabilisticIsSeedDeterministic(t *testing.T) {
	sched := Schedule{Seed: 42, Faults: []Fault{{Op: OpReserve, Prob: 0.5}}}
	run := func() []bool {
		in := New(sched)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Check(OpReserve) != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between identical schedules", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("prob 0.5 fired %d/%d times; suspicious", fired, len(a))
	}
}

func TestMaxFiresBoundsProbabilisticRule(t *testing.T) {
	in := New(Schedule{Seed: 1, Faults: []Fault{{Op: OpAlloc, Prob: 1, MaxFires: 2}}})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Check(OpAlloc) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d, want 2", fired)
	}
}

func TestResetReplaysSchedule(t *testing.T) {
	in := New(Schedule{Seed: 7, Faults: []Fault{{Op: OpRetier, Nth: 2}, {Op: OpReserve, Prob: 0.3}}})
	record := func() []Event {
		for i := 0; i < 20; i++ {
			in.Check(OpRetier)
			in.Check(OpReserve)
		}
		return in.Events()
	}
	first := record()
	in.Reset()
	if in.Fired() != 0 || in.Calls(OpRetier) != 0 {
		t.Fatal("Reset did not clear state")
	}
	second := record()
	if len(first) != len(second) {
		t.Fatalf("replay fired %d events, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("event %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestZeroScheduleInjectsNothing(t *testing.T) {
	in := New(Schedule{})
	for _, op := range Ops {
		for i := 0; i < 100; i++ {
			if err := in.Check(op); err != nil {
				t.Fatalf("%s: %v", op, err)
			}
		}
	}
}

func TestPersistentRangeFailsEveryTouch(t *testing.T) {
	in := New(Schedule{Faults: []Fault{
		{Kind: Persistent, Op: OpRetier, Base: 1 << 20, Size: 2 << 20},
	}})
	// Touches outside the range never fault, no matter how often.
	for i := 0; i < 4; i++ {
		if err := in.CheckRange(OpRetier, 8<<20, 1<<20); err != nil {
			t.Fatalf("outside touch faulted: %v", err)
		}
	}
	// Every overlapping touch faults, forever — no retry can help.
	for i := 0; i < 4; i++ {
		if err := in.CheckRange(OpRetier, 2<<20, 4096); err == nil {
			t.Fatalf("overlapping touch %d passed", i+1)
		}
	}
	// A plain Check (no range) does not match a range-scoped rule.
	if err := in.Check(OpRetier); err != nil {
		t.Fatalf("rangeless check faulted: %v", err)
	}
}

func TestPersistentActivationThreshold(t *testing.T) {
	in := New(Schedule{Faults: []Fault{
		{Kind: Persistent, Op: OpRetier, Nth: 3},
	}})
	// Wildcard range: matches all touches, but only from call 3 onward.
	for call := 1; call <= 6; call++ {
		err := in.CheckRange(OpRetier, uint64(call)<<12, 4096)
		if call < 3 && err != nil {
			t.Fatalf("call %d faulted before activation: %v", call, err)
		}
		if call >= 3 && err == nil {
			t.Fatalf("call %d passed after activation", call)
		}
	}
	if in.Fired() != 4 {
		t.Errorf("fired %d, want 4 (calls 3..6)", in.Fired())
	}
}

func TestPersistentProbabilisticLatches(t *testing.T) {
	in := New(Schedule{Seed: 3, Faults: []Fault{
		{Kind: Persistent, Op: OpRetier, Prob: 0.3},
	}})
	first := -1
	for i := 0; i < 64; i++ {
		if in.CheckRange(OpRetier, 0, 4096) != nil {
			first = i
			break
		}
	}
	if first < 0 {
		t.Fatal("probabilistic persistent rule never fired in 64 calls")
	}
	for i := 0; i < 16; i++ {
		if in.CheckRange(OpRetier, 0, 4096) == nil {
			t.Fatalf("call %d after the latch passed", i+1)
		}
	}
}

func TestTransientRulesIgnoreRange(t *testing.T) {
	in := New(Schedule{Faults: []Fault{{Op: OpRetier, Nth: 2}}})
	if err := in.CheckRange(OpRetier, 0, 4096); err != nil {
		t.Fatalf("call 1 faulted: %v", err)
	}
	if err := in.CheckRange(OpRetier, 99<<20, 4096); err == nil {
		t.Fatal("nth=2 transient rule did not fire on ranged call 2")
	}
}

func TestAdvanceEpochFiresOrders(t *testing.T) {
	in := New(Schedule{Faults: []Fault{
		{Kind: Corrupt, Nth: 2, Base: 4096, Size: 8192},
		{Kind: Degrade, Nth: 3, Factor: 4},
	}})
	if got := in.AdvanceEpoch(); len(got) != 0 {
		t.Fatalf("epoch 1 fired %d orders", len(got))
	}
	got := in.AdvanceEpoch()
	if len(got) != 1 || got[0].Kind != Corrupt || got[0].Epoch != 2 ||
		got[0].Base != 4096 || got[0].Size != 8192 {
		t.Fatalf("epoch 2 orders = %+v", got)
	}
	got = in.AdvanceEpoch()
	if len(got) != 1 || got[0].Kind != Degrade || got[0].Factor != 4 {
		t.Fatalf("epoch 3 orders = %+v", got)
	}
	if got := in.AdvanceEpoch(); len(got) != 0 {
		t.Fatalf("epoch 4 fired %d orders", len(got))
	}
	// Orders are recorded as events under the data-plane fault points.
	evs := in.Events()
	if len(evs) != 2 || evs[0].Op != OpCorrupt || evs[0].Call != 2 ||
		evs[1].Op != OpDegrade || evs[1].Call != 3 {
		t.Errorf("events = %+v", evs)
	}
}

func TestAdvanceEpochSeedDeterministic(t *testing.T) {
	sched := Schedule{Seed: 11, Faults: []Fault{{Kind: Corrupt, Prob: 0.5}}}
	run := func() []uint64 {
		in := New(sched)
		var fired []uint64
		for e := 0; e < 32; e++ {
			for _, o := range in.AdvanceEpoch() {
				fired = append(fired, o.Epoch)
				if o.Seed == 0 {
					t.Error("order seed is zero")
				}
			}
		}
		return fired
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 32 {
		t.Fatalf("p=0.5 fired %d/32 epochs; suspicious", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch sequence diverged: %v vs %v", a, b)
		}
	}
}

func TestArmAddsRulesLate(t *testing.T) {
	in := New(Schedule{Faults: []Fault{{Op: OpAlloc, Nth: 1}}})
	if in.Check(OpAlloc) == nil {
		t.Fatal("pre-armed rule did not fire")
	}
	if err := in.CheckRange(OpRetier, 0, 4096); err != nil {
		t.Fatalf("unarmed retier faulted: %v", err)
	}
	in.Arm(Fault{Kind: Persistent, Op: OpRetier, Base: 0, Size: 8192})
	if in.CheckRange(OpRetier, 4096, 4096) == nil {
		t.Fatal("armed persistent rule did not fire")
	}
	evs := in.Events()
	if len(evs) != 2 || evs[1].Rule != 1 {
		t.Errorf("events = %+v, want armed rule at index 1", evs)
	}
}

func TestDisarmStopsFiringKeepsHistory(t *testing.T) {
	in := New(Schedule{Faults: []Fault{{Op: OpReserve, Prob: 1}}})
	for i := 0; i < 3; i++ {
		if in.Check(OpReserve) == nil {
			t.Fatalf("armed call %d did not fault", i+1)
		}
	}
	in.Disarm()
	for i := 0; i < 3; i++ {
		if err := in.Check(OpReserve); err != nil {
			t.Fatalf("disarmed call faulted: %v", err)
		}
	}
	if in.Fired() != 3 {
		t.Errorf("fired %d, want the 3 pre-disarm fires", in.Fired())
	}
	if in.Calls(OpReserve) != 6 {
		t.Errorf("calls %d, want 6 (disarmed calls still counted)", in.Calls(OpReserve))
	}
	// Disarming is permanent: Reset replays an empty schedule.
	in.Reset()
	if err := in.Check(OpReserve); err != nil {
		t.Fatalf("post-reset call faulted: %v", err)
	}
}
