package faultinject

import (
	"errors"
	"testing"
)

func TestNthCallFiresExactlyOnce(t *testing.T) {
	in := New(Schedule{Faults: []Fault{{Op: OpReserve, Nth: 3}}})
	for call := 1; call <= 6; call++ {
		err := in.Check(OpReserve)
		if call == 3 && err == nil {
			t.Fatalf("call 3 did not fault")
		}
		if call != 3 && err != nil {
			t.Fatalf("call %d faulted: %v", call, err)
		}
	}
	if in.Fired() != 1 {
		t.Errorf("fired %d times, want 1", in.Fired())
	}
	if in.Calls(OpReserve) != 6 {
		t.Errorf("calls %d, want 6", in.Calls(OpReserve))
	}
}

func TestInjectedErrorsAreTyped(t *testing.T) {
	cause := errors.New("capacity")
	in := New(Schedule{Faults: []Fault{{Op: OpRetier, Nth: 1, Err: cause}}})
	err := in.Check(OpRetier)
	if !errors.Is(err, ErrInjected) {
		t.Errorf("errors.Is(err, ErrInjected) false: %v", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("errors.Is(err, cause) false: %v", err)
	}
}

func TestOpsDoNotInterfere(t *testing.T) {
	in := New(Schedule{Faults: []Fault{{Op: OpSplinter, Nth: 1}}})
	if err := in.Check(OpAlloc); err != nil {
		t.Fatalf("Alloc faulted: %v", err)
	}
	if err := in.Check(OpRetier); err != nil {
		t.Fatalf("Retier faulted: %v", err)
	}
	if err := in.Check(OpSplinter); err == nil {
		t.Fatal("Splinter call 1 did not fault")
	}
}

func TestProbabilisticIsSeedDeterministic(t *testing.T) {
	sched := Schedule{Seed: 42, Faults: []Fault{{Op: OpReserve, Prob: 0.5}}}
	run := func() []bool {
		in := New(sched)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Check(OpReserve) != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged between identical schedules", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("prob 0.5 fired %d/%d times; suspicious", fired, len(a))
	}
}

func TestMaxFiresBoundsProbabilisticRule(t *testing.T) {
	in := New(Schedule{Seed: 1, Faults: []Fault{{Op: OpAlloc, Prob: 1, MaxFires: 2}}})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Check(OpAlloc) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("fired %d, want 2", fired)
	}
}

func TestResetReplaysSchedule(t *testing.T) {
	in := New(Schedule{Seed: 7, Faults: []Fault{{Op: OpRetier, Nth: 2}, {Op: OpReserve, Prob: 0.3}}})
	record := func() []Event {
		for i := 0; i < 20; i++ {
			in.Check(OpRetier)
			in.Check(OpReserve)
		}
		return in.Events()
	}
	first := record()
	in.Reset()
	if in.Fired() != 0 || in.Calls(OpRetier) != 0 {
		t.Fatal("Reset did not clear state")
	}
	second := record()
	if len(first) != len(second) {
		t.Fatalf("replay fired %d events, want %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("event %d: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestZeroScheduleInjectsNothing(t *testing.T) {
	in := New(Schedule{})
	for _, op := range Ops {
		for i := 0; i < 100; i++ {
			if err := in.Check(op); err != nil {
				t.Fatalf("%s: %v", op, err)
			}
		}
	}
}

func TestDisarmStopsFiringKeepsHistory(t *testing.T) {
	in := New(Schedule{Faults: []Fault{{Op: OpReserve, Prob: 1}}})
	for i := 0; i < 3; i++ {
		if in.Check(OpReserve) == nil {
			t.Fatalf("armed call %d did not fault", i+1)
		}
	}
	in.Disarm()
	for i := 0; i < 3; i++ {
		if err := in.Check(OpReserve); err != nil {
			t.Fatalf("disarmed call faulted: %v", err)
		}
	}
	if in.Fired() != 3 {
		t.Errorf("fired %d, want the 3 pre-disarm fires", in.Fired())
	}
	if in.Calls(OpReserve) != 6 {
		t.Errorf("calls %d, want 6 (disarmed calls still counted)", in.Calls(OpReserve))
	}
	// Disarming is permanent: Reset replays an empty schedule.
	in.Reset()
	if err := in.Check(OpReserve); err != nil {
		t.Fatalf("post-reset call faulted: %v", err)
	}
}
