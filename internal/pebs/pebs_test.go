package pebs

import (
	"testing"
	"testing/quick"
)

func TestSamplingPeriod(t *testing.T) {
	p := New(Config{Period: 10, SampleOverheadNS: 100}, 2.0)
	p.Start()
	ts := p.ThreadSampler(0)
	for i := 0; i < 100; i++ {
		ts.OnMiss(uint64(i*64), false)
	}
	if n := p.SampleCount(); n != 10 {
		t.Errorf("samples = %d, want 10", n)
	}
}

func TestDisabledProfilerCapturesNothing(t *testing.T) {
	p := New(Config{Period: 1}, 2.0)
	ts := p.ThreadSampler(0)
	for i := 0; i < 50; i++ {
		if ovh := ts.OnMiss(uint64(i), false); ovh != 0 {
			t.Fatal("disabled profiler charged overhead")
		}
	}
	if p.SampleCount() != 0 {
		t.Error("disabled profiler captured samples")
	}
	p.Start()
	ts.OnMiss(0, false)
	p.Stop()
	n := p.SampleCount()
	ts.OnMiss(0, false)
	if p.SampleCount() != n {
		t.Error("stopped profiler captured a sample")
	}
}

func TestSampleOverheadCycles(t *testing.T) {
	p := New(Config{Period: 1, SampleOverheadNS: 100}, 2.0)
	p.Start()
	ts := p.ThreadSampler(0)
	ovh := ts.OnMiss(0x1234, true)
	if ovh != 200 { // 100 ns at 2 GHz
		t.Errorf("overhead = %v cycles, want 200", ovh)
	}
	s := ts.Captured()
	if len(s) != 1 || s[0].Addr != 0x1234 || !s[0].Write {
		t.Errorf("captured %+v", s)
	}
}

func TestSamplesMergeAcrossThreads(t *testing.T) {
	p := New(Config{Period: 2}, 1.0)
	p.Start()
	for tid := 0; tid < 4; tid++ {
		ts := p.ThreadSampler(tid)
		for i := 0; i < 10; i++ {
			ts.OnMiss(uint64(tid*1000+i), false)
		}
	}
	if n := len(p.Samples()); n != 4*5 {
		t.Errorf("merged %d samples, want 20", n)
	}
}

func TestThreadSamplersAreStaggered(t *testing.T) {
	p := New(Config{Period: 100}, 1.0)
	p.Start()
	a := p.ThreadSampler(0)
	b := p.ThreadSampler(1)
	var firstA, firstB int = -1, -1
	for i := 0; i < 100; i++ {
		if len(a.Captured()) == 0 {
			a.OnMiss(uint64(i), false)
			if len(a.Captured()) > 0 {
				firstA = i
			}
		}
		if len(b.Captured()) == 0 {
			b.OnMiss(uint64(i), false)
			if len(b.Captured()) > 0 {
				firstB = i
			}
		}
	}
	if firstA == firstB {
		t.Error("thread samplers fire in lockstep")
	}
}

func TestReset(t *testing.T) {
	p := New(Config{Period: 1}, 1.0)
	p.Start()
	ts := p.ThreadSampler(0)
	ts.OnMiss(1, false)
	p.Reset()
	if p.SampleCount() != 0 {
		t.Error("reset kept samples")
	}
	ts.OnMiss(2, false)
	if p.SampleCount() != 1 {
		t.Error("sampler dead after reset")
	}
}

func TestSetPeriod(t *testing.T) {
	p := New(Config{Period: 1000}, 1.0)
	p.Start()
	ts := p.ThreadSampler(0)
	p.SetPeriod(5)
	p.Reset()
	for i := 0; i < 50; i++ {
		ts.OnMiss(uint64(i), false)
	}
	if n := p.SampleCount(); n != 10 {
		t.Errorf("samples = %d, want 10 after period change", n)
	}
	p.SetPeriod(0) // clamps to 1
	if p.Config().Period != 1 {
		t.Error("zero period not clamped")
	}
}

func TestDefaultPeriodApplied(t *testing.T) {
	p := New(Config{}, 1.0)
	if p.Config().Period != DefaultConfig().Period {
		t.Errorf("period %d, want default", p.Config().Period)
	}
}

func TestAutoPeriodBounds(t *testing.T) {
	// Tiny workloads clamp to the minimum period.
	if got := AutoPeriod(1024, 64, 10, 4, 32, 16, 1<<16); got != 16 {
		t.Errorf("small workload period %d, want 16", got)
	}
	// Huge workloads clamp to the maximum.
	if got := AutoPeriod(1<<40, 64, 1, 4, 1, 16, 1<<16); got != 1<<16 {
		t.Errorf("huge workload period %d, want max", got)
	}
	// Degenerate inputs fall back to the minimum.
	if got := AutoPeriod(0, 0, 0, 0, 0, 16, 1<<16); got != 16 {
		t.Errorf("degenerate period %d", got)
	}
}

// Property: AutoPeriod is monotone in the data size — more data, coarser
// sampling.
func TestAutoPeriodMonotone(t *testing.T) {
	check := func(a, b uint32) bool {
		lo, hi := uint64(a), uint64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		pLo := AutoPeriod(lo, 64, 100, 8, 16, 16, 1<<16)
		pHi := AutoPeriod(hi, 64, 100, 8, 16, 16, 1<<16)
		return pLo <= pHi
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// Property: the sample count over N misses is N/period within one per
// thread.
func TestSampleCountProperty(t *testing.T) {
	check := func(period uint8, misses uint16) bool {
		per := uint64(period%100) + 1
		p := New(Config{Period: per}, 1.0)
		p.Start()
		ts := p.ThreadSampler(0)
		for i := 0; i < int(misses); i++ {
			ts.OnMiss(uint64(i), false)
		}
		want := int(uint64(misses) / per)
		got := p.SampleCount()
		return got >= want-1 && got <= want+1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
