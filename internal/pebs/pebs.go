// Package pebs implements a simulated precise-address sampling profiler in
// the style of Intel's Processor Event-Based Sampling (paper §5.1).
//
// On the real testbeds ATMem programs the PMU to deliver every N-th
// last-level-cache load miss with its precise data address. Here the LLC
// miss stream comes from the memsim accessors' miss hook; the profiler
// captures every N-th event per thread, charges a fixed per-sample capture
// overhead to the thread that took it (so profiling cost is visible in
// simulated time, §7.4), and hands the merged sample set to the analyzer.
//
// Sampling loss — hot chunks that receive zero samples purely because the
// period skipped them — is therefore faithfully present, which is the
// phenomenon ATMem's tree-based promotion exists to patch up (§4.3).
package pebs

// Sample is one captured precise-address event.
type Sample struct {
	// Addr is the cache-line-aligned data address of the sampled miss.
	Addr uint64
	// Write is true for store misses. The paper's priority metric uses
	// missed reads (Eq. 1); the analyzer filters on this flag.
	Write bool
}

// Config parameterizes the profiler.
type Config struct {
	// Period is the sampling period: one sample is captured every
	// Period qualifying events (per thread).
	Period uint64
	// SampleOverheadNS is the capture cost charged to the sampled
	// thread per captured event (PMI + PEBS buffer drain).
	SampleOverheadNS float64
}

// DefaultConfig returns the profiler defaults used by the runtime before
// auto-adjustment.
func DefaultConfig() Config {
	return Config{Period: 512, SampleOverheadNS: 250}
}

// AutoPeriod implements the paper's empirical sampling-rate adaptation
// (§5.1): before enabling the PMU, ATMem combines the size and number of
// all data chunks and the number of application threads to pick a period
// that avoids needless overhead while collecting enough information.
//
// The expected qualifying-event volume of one profiled iteration is
// estimated as one miss per cache line of registered data (graph kernels
// touch most of their footprint each iteration with little reuse, §2.2).
// The period is chosen so that on average targetPerChunk samples land on
// every chunk, then clamped to [minPeriod, maxPeriod].
func AutoPeriod(totalBytes uint64, lineBytes, totalChunks, threads int, targetPerChunk float64, minPeriod, maxPeriod uint64) uint64 {
	if lineBytes <= 0 || totalChunks <= 0 || targetPerChunk <= 0 {
		return minPeriod
	}
	estEvents := float64(totalBytes) / float64(lineBytes)
	// Per-thread sampling makes the effective system period
	// period/threads; the estimate is system-wide, so no further
	// correction is needed beyond using system-wide targets.
	targetSamples := targetPerChunk * float64(totalChunks)
	if targetSamples < 1 {
		targetSamples = 1
	}
	period := uint64(estEvents / targetSamples)
	if period < minPeriod {
		period = minPeriod
	}
	if period > maxPeriod {
		period = maxPeriod
	}
	if period == 0 {
		period = 1
	}
	return period
}

// Profiler owns the per-thread samplers and the enable switch. It is
// created once per runtime; Start/Stop toggle collection between phases
// (never concurrently with running kernels).
type Profiler struct {
	cfg            Config
	overheadCycles float64
	enabled        bool
	threads        []*ThreadSampler
}

// New builds a Profiler; clockGHz converts the capture overhead into the
// cycle currency of the accessors.
func New(cfg Config, clockGHz float64) *Profiler {
	if cfg.Period == 0 {
		cfg.Period = DefaultConfig().Period
	}
	return &Profiler{
		cfg:            cfg,
		overheadCycles: cfg.SampleOverheadNS * clockGHz,
	}
}

// Config returns the active configuration.
func (p *Profiler) Config() Config { return p.cfg }

// SetPeriod changes the sampling period for subsequent events.
func (p *Profiler) SetPeriod(period uint64) {
	if period == 0 {
		period = 1
	}
	p.cfg.Period = period
	for _, ts := range p.threads {
		ts.period = period
	}
}

// setEnabled pushes the collection switch into every thread sampler, so
// the per-miss check reads a sampler-local field instead of chasing the
// shared Profiler — with many host cores the shared read would put one
// cache line in every thread's per-miss path.
func (p *Profiler) setEnabled(on bool) {
	p.enabled = on
	for _, ts := range p.threads {
		ts.enabled = on
	}
}

// Start enables sample collection.
func (p *Profiler) Start() { p.setEnabled(true) }

// Stop disables sample collection.
func (p *Profiler) Stop() { p.setEnabled(false) }

// Enabled reports whether the profiler is collecting.
func (p *Profiler) Enabled() bool { return p.enabled }

// ThreadSampler returns (allocating on first use) the sampler for thread
// i. Thread samplers are not safe for concurrent use with each other's
// creation; the runtime allocates them up front.
func (p *Profiler) ThreadSampler(i int) *ThreadSampler {
	for len(p.threads) <= i {
		countdown := p.cfg.Period
		// Stagger later threads' counters so they do not sample in
		// lockstep on symmetric workloads; thread 0 keeps the exact
		// period.
		if tid := len(p.threads); tid > 0 {
			countdown = p.cfg.Period*uint64(tid)/uint64(tid+1) + 1
		}
		p.threads = append(p.threads, &ThreadSampler{
			enabled:   p.enabled,
			period:    p.cfg.Period,
			countdown: countdown,
			overhead:  p.overheadCycles,
		})
	}
	return p.threads[i]
}

// Samples returns all captured samples merged across threads.
func (p *Profiler) Samples() []Sample {
	var n int
	for _, ts := range p.threads {
		n += len(ts.buf)
	}
	out := make([]Sample, 0, n)
	for _, ts := range p.threads {
		out = append(out, ts.buf...)
	}
	return out
}

// SampleCount returns the number of captured samples.
func (p *Profiler) SampleCount() int {
	var n int
	for _, ts := range p.threads {
		n += len(ts.buf)
	}
	return n
}

// Reset discards captured samples and rewinds the period counters.
func (p *Profiler) Reset() {
	for _, ts := range p.threads {
		ts.buf = ts.buf[:0]
		ts.countdown = ts.period
	}
}

// ThreadSampler captures every period-th qualifying event of one thread.
// Everything OnMiss touches — the enabled switch, the countdown, the
// sample buffer — is sampler-local: the only cross-thread interaction is
// Start/Stop/SetPeriod pushing new values between phases. The trailing
// pad keeps two samplers (small heap objects that the allocator may
// place adjacently) from sharing a cache line, since countdown is
// written on every miss of every thread.
type ThreadSampler struct {
	enabled   bool
	period    uint64
	countdown uint64
	overhead  float64
	buf       []Sample
	_         [64]byte // false-sharing pad
}

// OnMiss is the memsim.MissHook body: it observes one LLC miss and returns
// the cycles of profiling overhead to charge (zero unless a sample was
// captured). Samples accumulate in the sampler's private buffer and are
// only merged at ProfilingStop — per-shard batch emission, never a
// cross-thread append.
func (ts *ThreadSampler) OnMiss(addr uint64, write bool) float64 {
	if !ts.enabled {
		return 0
	}
	ts.countdown--
	if ts.countdown != 0 {
		return 0
	}
	ts.countdown = ts.period
	ts.buf = append(ts.buf, Sample{Addr: addr, Write: write})
	return ts.overhead
}

// Captured returns the samples captured by this thread so far.
func (ts *ThreadSampler) Captured() []Sample { return ts.buf }
