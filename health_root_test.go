package atmem

import (
	"testing"

	"atmem/internal/faultinject"
	"atmem/internal/health"
	"atmem/internal/memsim"
)

// healthFixture builds a governed runtime with the scoreboard and
// scrubber on, plus the usual hot/cold array pair.
func healthFixture(t *testing.T, opts ...Option) (*Runtime, *Array[uint64], *Array[uint64]) {
	t.Helper()
	all := append([]Option{
		WithPolicy(PolicyATMem),
		WithSamplePeriod(64),
		WithGovernor(GovernorOptions{}),
		WithScrubber(),
	}, opts...)
	rt, err := New(NVMDRAM(), all...)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewArray[uint64](rt, "cold", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(hot, 7)
	fillDeterministic(cold, 11)
	return rt, hot, cold
}

// TestScrubberHealsInjectedCorruption is the tentpole's end-to-end
// loop: epoch 1 promotes the hot set and snapshots its CRCs; a Corrupt
// order fires at epoch 2 and flips bytes in a fast-resident chunk; the
// epoch-2 scrub pass detects the mismatch before any kernel runs,
// repairs the bytes from backup, demotes the chunk, and retires its
// pages — so the workload's data stays bit-identical and the bad pages
// never host data again.
func TestScrubberHealsInjectedCorruption(t *testing.T) {
	rt, hot, _ := healthFixture(t)

	epochOn(t, rt, "e1", hot)
	if hot.Object().FastBytes() == 0 {
		t.Fatal("epoch 1 did not promote the hot array")
	}
	if st := rt.HealthStats(); st.Scrub.Tracked == 0 {
		t.Fatal("no chunks snapshotted after epoch 1")
	}

	// Nth counts the injector's own epoch clock, which starts at arming
	// time: 1 = the next runtime epoch.
	rt.ArmFaults(faultinject.Fault{
		Kind: faultinject.Corrupt, Nth: 1,
		Base: hot.Object().Base(), Size: hot.Object().Size(),
	})
	epochOn(t, rt, "e2", hot)

	st := rt.HealthStats()
	if st.CorruptedChunks == 0 {
		t.Fatal("corruption order did not land")
	}
	if st.Scrub.Detections == 0 || st.Scrub.Repairs != st.Scrub.Detections {
		t.Fatalf("scrub did not detect/repair: %+v", st.Scrub)
	}
	if st.EmergencyDemotions == 0 {
		t.Error("detected chunk was not emergency-demoted")
	}
	if st.Quarantined == 0 || st.RetiredRanges == 0 {
		t.Errorf("damaged pages not retired: %+v", st)
	}
	// The repair landed before the epoch's kernels: data bit-identical.
	assertDataIntact(t, "hot after corruption", hot, 7)

	// Quarantined pages stay empty across further epochs, and the
	// capacity ledger reflects the shrink.
	epochOn(t, rt, "e3", hot)
	for _, qr := range rt.System().QuarantinedRanges() {
		if on := rt.System().BytesOnTier(qr.Base, qr.Size); on[memsim.TierFast] != 0 {
			t.Errorf("quarantined range [%#x,+%#x) re-hosts %d fast bytes",
				qr.Base, qr.Size, on[memsim.TierFast])
		}
	}
	rep := rt.LastMigration()
	if !rep.Health.Active() || rep.Health.QuarantinedBytes != st.Quarantined {
		t.Errorf("MigrationReport.Health = %+v", rep.Health)
	}
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestPersistentFaultsCondemnAndQuarantine drives the scoreboard path:
// a persistent fault storm over the hot array makes every promotion
// skip; the failures cross the persistence threshold, the granules are
// condemned, and the epoch-end heal retires them. After the storm
// clears, the governor keeps routing placement around the retired
// pages.
func TestPersistentFaultsCondemnAndQuarantine(t *testing.T) {
	rt, hot, _ := healthFixture(t, WithHealthPolicy(health.Policy{
		Window: 4, PersistentThreshold: 2, BackoffEpochs: 1, MaxBackoff: 2,
	}))
	rt.ArmFaults(faultinject.Fault{
		Kind: faultinject.Persistent, Op: faultinject.OpRetier,
		Base: hot.Object().Base(), Size: hot.Object().Size(),
	})

	// Each epoch's skipped promotions feed the scoreboard; at the
	// threshold the granules are condemned and retired. The breaker may
	// open along the way (it sees the same failures), so allow a few
	// epochs for the storm to play out.
	for e := 0; e < 6 && rt.HealthStats().Quarantined == 0; e++ {
		if _, err := rt.RunEpoch("storm", func() { scanPhase(rt, "storm", hot) }); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.HealthStats()
	if st.Board.Condemned == 0 {
		t.Fatalf("storm never condemned a granule: %+v", st.Board)
	}
	if st.Quarantined == 0 {
		t.Fatalf("condemned granules were not retired: %+v", st)
	}
	if !rt.System().IsQuarantined(hot.Object().Base(), hot.Object().Size()) {
		t.Error("hot range not in the quarantine ledger")
	}

	// Storm over: later epochs must not promote into the retired pages.
	rt.DisarmFaults()
	for e := 0; e < 3; e++ {
		if _, err := rt.RunEpoch("after", func() { scanPhase(rt, "after", hot) }); err != nil {
			t.Fatal(err)
		}
	}
	for _, qr := range rt.System().QuarantinedRanges() {
		if on := rt.System().BytesOnTier(qr.Base, qr.Size); on[memsim.TierFast] != 0 {
			t.Errorf("quarantined range [%#x,+%#x) re-hosts %d fast bytes",
				qr.Base, qr.Size, on[memsim.TierFast])
		}
	}
	assertDataIntact(t, "hot after storm", hot, 7)
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestHealthVetoSurvivesTrustWindow pins the backoff veto: while a
// granule is suspect, the governor drops promotions targeting it and
// counts the veto on the report.
func TestHealthVetoSurvivesTrustWindow(t *testing.T) {
	rt, hot, _ := healthFixture(t, WithHealthPolicy(health.Policy{
		Window: 8, PersistentThreshold: 8, BackoffEpochs: 4, MaxBackoff: 8,
	}))
	// One hard failure against the hot range's granules puts them in
	// backoff without condemning them.
	rt.Scoreboard().ObserveFailure(hot.Object().Base(), hot.Object().Size(), "crc")

	rep := epochOn(t, rt, "e1", hot)
	if rep.Migration.Health.PromotionsVetoed == 0 {
		t.Fatalf("suspect granules were promoted: %+v", rep.Migration.Health)
	}
	if hot.Object().FastBytes() != 0 {
		t.Error("hot array reached the fast tier through a suspect granule")
	}
}
