package atmem

import (
	"errors"
	"testing"

	"atmem/internal/faultinject"
	"atmem/internal/memsim"
)

// faultCycleResult captures everything one profile→optimize→verify cycle
// produced that the fault matrix asserts on.
type faultCycleResult struct {
	rt     *Runtime
	report MigrationReport
	// data is a copy of every array element after the cycle.
	data [][]uint64
}

// runFaultCycle executes one full session — allocate two arrays with
// deterministic contents, profile a phase that makes one of them hot,
// Optimize under the given schedule, run a post-migration phase — and
// returns the state the invariant assertions inspect. A nil schedule is
// the fault-free baseline.
func runFaultCycle(t *testing.T, sched *faultinject.Schedule) faultCycleResult {
	t.Helper()
	rt, err := NewRuntime(NVMDRAM(), Options{Policy: PolicyATMem, FaultSchedule: sched})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewArray[uint64](rt, "cold", 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hot.Len(); i++ {
		hot.Raw()[i] = uint64(i)*2654435761 + 1
	}
	for i := 0; i < cold.Len(); i++ {
		cold.Raw()[i] = uint64(i) * 40503
	}
	phase := func(name string) {
		rt.RunPhase(name, func(c *Ctx) {
			lo, hi := c.Range(hot.Len())
			for rep := 0; rep < 8; rep++ {
				for i := lo; i < hi; i++ {
					hot.Load(c, (i*7919)%hot.Len())
				}
			}
			clo, chi := c.Range(cold.Len())
			for i := clo; i < chi; i++ {
				cold.Load(c, (i*104729)%cold.Len())
			}
		})
	}
	rt.ProfilingStart()
	phase("profile")
	if n := rt.ProfilingStop(); n == 0 {
		t.Fatal("no samples attributed")
	}
	rep, err := rt.Optimize()
	if err != nil {
		t.Fatalf("Optimize under faults must degrade, not fail: %v", err)
	}
	phase("after")
	snap := func(a *Array[uint64]) []uint64 {
		out := make([]uint64, a.Len())
		copy(out, a.Raw())
		return out
	}
	return faultCycleResult{rt: rt, report: rep, data: [][]uint64{snap(hot), snap(cold)}}
}

// assertFaultInvariants checks the guarantees every fault schedule must
// preserve against the fault-free baseline: object data bit-identical,
// no staging reservation leaked, and the capacity ledger consistent with
// the page table.
func assertFaultInvariants(t *testing.T, label string, baseline, got faultCycleResult) {
	t.Helper()
	for ai := range baseline.data {
		want, have := baseline.data[ai], got.data[ai]
		if len(want) != len(have) {
			t.Fatalf("%s: array %d length %d vs %d", label, ai, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%s: array %d element %d corrupted: %#x vs %#x",
					label, ai, i, have[i], want[i])
			}
		}
	}
	for tier := memsim.Tier(0); tier < memsim.NumTiers; tier++ {
		if res := got.rt.System().Reserved(tier); res != 0 {
			t.Errorf("%s: leaked %d reserved bytes on %s", label, res, tier)
		}
	}
	if err := got.rt.System().CheckConsistency(); err != nil {
		t.Errorf("%s: %v", label, err)
	}
	r := got.report
	if r.RegionsMigrated+r.RegionsRetried+r.RegionsSkipped != r.Regions {
		t.Errorf("%s: outcome counts %d+%d+%d do not sum to %d regions",
			label, r.RegionsMigrated, r.RegionsRetried, r.RegionsSkipped, r.Regions)
	}
}

// TestFaultMatrixCycle replays every fault point of the schedule-driven
// matrix — staging reservation failure, mid-region remap failure,
// splinter failure, persistent capacity-style exhaustion, and seeded
// probabilistic storms — through a full profile→optimize→verify cycle.
// Whatever fires, Optimize must degrade (never error), object data must
// be bit-identical to the fault-free run, and no reservation may leak.
func TestFaultMatrixCycle(t *testing.T) {
	baseline := runFaultCycle(t, nil)
	if baseline.report.BytesMoved == 0 {
		t.Fatal("baseline migrated nothing; the matrix would be vacuous")
	}
	if baseline.report.Degraded() {
		t.Fatalf("fault-free baseline degraded: %+v", baseline.report)
	}

	matrix := []struct {
		name  string
		sched faultinject.Schedule
	}{
		{"staging-reserve-first", faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Nth: 1, Err: memsim.ErrNoCapacity}}}},
		{"mid-region-retier", faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpRetier, Nth: 2}}}},
		{"splinter-first", faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpSplinter, Nth: 1}}}},
		{"reserve-exhausted", faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Prob: 1, Err: memsim.ErrNoCapacity}}}},
		{"retier-exhausted", faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpRetier, Prob: 1}}}},
		{"probabilistic-storm-seed1", faultinject.Schedule{Seed: 1, Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Prob: 0.3},
			{Op: faultinject.OpRetier, Prob: 0.3},
			{Op: faultinject.OpSplinter, Prob: 0.3}}}},
		{"probabilistic-storm-seed7", faultinject.Schedule{Seed: 7, Faults: []faultinject.Fault{
			{Op: faultinject.OpReserve, Prob: 0.5},
			{Op: faultinject.OpRetier, Prob: 0.5}}}},
	}
	for _, tc := range matrix {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := runFaultCycle(t, &tc.sched)
			assertFaultInvariants(t, tc.name, baseline, got)
			if len(got.rt.FaultEvents()) == 0 {
				t.Skipf("schedule fired no faults; nothing to assert beyond invariants")
			}
			if !got.report.Degraded() && got.report.BytesMoved != baseline.report.BytesMoved {
				t.Errorf("report claims no degradation but moved %d vs baseline %d",
					got.report.BytesMoved, baseline.report.BytesMoved)
			}
		})
	}
}

// TestFaultEmptyScheduleMatchesBaseline pins the zero-overhead contract:
// an armed-but-empty schedule must produce a migration report
// bit-identical to a run with no schedule at all.
func TestFaultEmptyScheduleMatchesBaseline(t *testing.T) {
	baseline := runFaultCycle(t, nil)
	empty := runFaultCycle(t, &faultinject.Schedule{})
	if baseline.report != empty.report {
		t.Errorf("reports diverge:\nnil schedule:   %+v\nempty schedule: %+v",
			baseline.report, empty.report)
	}
}

// TestFaultAllocExhaustionIsGraceful exercises the OpAlloc fault point:
// an allocation that faults must fail with a typed, joined error and
// leave the runtime fully usable.
func TestFaultAllocExhaustionIsGraceful(t *testing.T) {
	rt, err := NewRuntime(NVMDRAM(), Options{
		Policy: PolicyATMem,
		FaultSchedule: &faultinject.Schedule{Faults: []faultinject.Fault{
			{Op: faultinject.OpAlloc, Nth: 2, Err: memsim.ErrNoCapacity},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Malloc("ok", 1<<20); err != nil {
		t.Fatal(err)
	}
	_, err = rt.Malloc("doomed", 1<<20)
	if err == nil {
		t.Fatal("faulted allocation succeeded")
	}
	if !errors.Is(err, faultinject.ErrInjected) || !errors.Is(err, memsim.ErrNoCapacity) {
		t.Errorf("error %v lacks ErrInjected/ErrNoCapacity", err)
	}
	if len(rt.FaultEvents()) != 1 {
		t.Errorf("fault events %v", rt.FaultEvents())
	}
	// The runtime survives: the next allocation lands cleanly.
	if _, err := rt.Malloc("after", 1<<20); err != nil {
		t.Fatalf("runtime unusable after injected alloc fault: %v", err)
	}
	if err := rt.System().CheckConsistency(); err != nil {
		t.Error(err)
	}
}

// TestFaultSkippedRegionsKeepTranslationsValid checks the invalidation
// contract from the kernel's point of view: after a fully-skipped
// migration, a phase re-reading the data must still translate every
// address (no stale invalidation, no simulated segfault) and produce the
// same values.
func TestFaultSkippedRegionsKeepTranslationsValid(t *testing.T) {
	got := runFaultCycle(t, &faultinject.Schedule{Faults: []faultinject.Fault{
		{Op: faultinject.OpReserve, Prob: 1},
		{Op: faultinject.OpRetier, Prob: 1},
	}})
	if got.report.BytesMoved != 0 || got.report.RegionsSkipped == 0 {
		t.Fatalf("expected a fully skipped migration, got %+v", got.report)
	}
	// runFaultCycle already ran a post-migration phase; reaching here
	// means no simulated segfault fired. Placement must be untouched.
	if ratio := got.rt.FastDataRatio(); ratio != 0 {
		t.Errorf("skipped migration still moved data: fast ratio %v", ratio)
	}
}
