package atmem

import (
	"testing"

	"atmem/internal/core"
	"atmem/internal/memsim"
	"atmem/internal/pebs"
)

// planFixture builds a plan with two ranges of different densities.
func planFixture(t *testing.T) *core.Plan {
	t.Helper()
	cfg := core.DefaultConfig()
	reg := core.NewRegistry(cfg)
	o, err := reg.Register("obj", 1<<30, 16*cfg.MinChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	// A second, cold object gives the global stage a comparison class.
	cold, err := reg.Register("cold", 1<<31, 16*cfg.MinChunkBytes)
	if err != nil {
		t.Fatal(err)
	}
	var samples []pebs.Sample
	addChunk := func(obj *core.DataObject, j, count int) {
		lo, _ := obj.ChunkRange(j)
		for k := 0; k < count; k++ {
			samples = append(samples, pebs.Sample{Addr: lo + uint64(k*64)})
		}
	}
	// Dense region: chunks 0-1; sparse-but-selected region: chunk 8.
	// Three critical leaves of 16 keep the root tree ratio below the
	// promotion threshold, so two separate ranges survive.
	addChunk(o, 0, 200)
	addChunk(o, 1, 190)
	addChunk(o, 8, 60)
	for j := 0; j < 16; j++ {
		addChunk(cold, j, 1)
	}
	reg.AttributeSamples(samples)
	plan, err := core.Analyze(reg, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Objects[0].Ranges) < 2 {
		t.Fatalf("fixture needs >= 2 ranges, got %v", plan.Objects[0].Ranges)
	}
	return plan
}

func TestTrimPlanForBandwidthDropsColdestFirst(t *testing.T) {
	plan := planFixture(t)
	before := plan.SelectedBytes
	p := memsim.MCDRAMDRAMParams() // independent channels
	trimPlanForBandwidth(plan, &p)
	if plan.SelectedBytes >= before {
		t.Fatalf("nothing trimmed: %d -> %d", before, plan.SelectedBytes)
	}
	// The expected kept fraction is fastBW/(fastBW+slowBW).
	frac := p.Tiers[memsim.TierFast].ReadBWGBs /
		(p.Tiers[memsim.TierFast].ReadBWGBs + p.Tiers[memsim.TierSlow].ReadBWGBs)
	want := uint64(float64(before) * frac)
	cs := plan.Objects[0].Object.ChunkSize
	if plan.SelectedBytes+cs < want || plan.SelectedBytes > want+cs {
		t.Errorf("kept %d, want about %d (±chunk)", plan.SelectedBytes, want)
	}
	// The densest range (chunks 0-1) must survive.
	found := false
	for _, rg := range plan.Objects[0].Ranges {
		if rg.Base == plan.Objects[0].Object.Base {
			found = true
		}
	}
	if !found {
		t.Error("densest range was trimmed")
	}
	// Accounting stays consistent.
	var sum uint64
	for _, rg := range plan.Objects[0].Ranges {
		sum += rg.Size
	}
	if sum != plan.SelectedBytes {
		t.Errorf("range sum %d != selected %d", sum, plan.SelectedBytes)
	}
	if plan.Objects[0].SampledBytes+plan.Objects[0].EstimatedBytes != sum {
		t.Error("per-origin byte split inconsistent after trim")
	}
}

func TestTrimPlanForBandwidthEmptyPlan(t *testing.T) {
	plan := &core.Plan{}
	p := memsim.MCDRAMDRAMParams()
	trimPlanForBandwidth(plan, &p) // must not panic
	if plan.SelectedBytes != 0 {
		t.Error("empty plan gained bytes")
	}
}

func TestBandwidthAwareIgnoredOnSharedChannels(t *testing.T) {
	// On the Optane testbed (shared channels) the option must be a
	// no-op: splitting traffic would only serialize it.
	runRatio := func(bw bool) float64 {
		rt, err := NewRuntime(NVMDRAM(), Options{Policy: PolicyATMem, BandwidthAware: bw})
		if err != nil {
			t.Fatal(err)
		}
		arr, err := NewArray[uint64](rt, "x", 128<<10)
		if err != nil {
			t.Fatal(err)
		}
		rt.ProfilingStart()
		rt.RunPhase("touch", func(c *Ctx) {
			lo, hi := c.Range(arr.Len())
			for rep := 0; rep < 4; rep++ {
				for i := lo; i < hi; i++ {
					arr.Load(c, (i*7919)%arr.Len())
				}
			}
		})
		rt.ProfilingStop()
		rep, err := rt.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		return rep.DataRatio()
	}
	if runRatio(false) != runRatio(true) {
		t.Error("BandwidthAware changed placement on a shared-channel system")
	}
}

func TestBandwidthAwareTrimsOnKNL(t *testing.T) {
	runSelected := func(bw bool) uint64 {
		rt, err := NewRuntime(MCDRAMDRAM(), Options{Policy: PolicyATMem, BandwidthAware: bw})
		if err != nil {
			t.Fatal(err)
		}
		arr, err := NewArray[uint64](rt, "x", 256<<10)
		if err != nil {
			t.Fatal(err)
		}
		rt.ProfilingStart()
		rt.RunPhase("touch", func(c *Ctx) {
			lo, hi := c.Range(arr.Len())
			for rep := 0; rep < 4; rep++ {
				for i := lo; i < hi; i++ {
					arr.Load(c, (i*7919)%arr.Len())
				}
			}
		})
		rt.ProfilingStop()
		rep, err := rt.Optimize()
		if err != nil {
			t.Fatal(err)
		}
		return rep.SelectedBytes
	}
	full := runSelected(false)
	trimmed := runSelected(true)
	if trimmed >= full {
		t.Errorf("aggregate-bandwidth mode kept %d of %d bytes", trimmed, full)
	}
}
