package atmem

// This file is the opt-in debug HTTP listener (Options.DebugAddr): a
// small stdlib server exposing the live metrics registry as Prometheus
// text (/metrics), the latest epoch scorecard as JSON (/epochz), a
// liveness probe (/healthz), and net/http/pprof under /debug/pprof/.
// Every handler reads only data that is safe from a foreign goroutine
// mid-run — registry atomics, the atomic latest-scorecard pointer, and
// the simulator's atomic quarantine ledger — never the runtime's
// single-threaded control-plane state.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// healthzQuarantineThreshold is the quarantined-bytes level at which
// /healthz stops reporting "ok": one health granule (2 MiB) retired is
// routine attrition, but holding this much of the fast tier hostage
// means placement quality is measurably degraded.
const healthzQuarantineThreshold = 2 << 20

// debugServer owns the listener's lifecycle; Runtime.Close shuts it
// down.
type debugServer struct {
	ln  net.Listener
	srv *http.Server

	closeOnce sync.Once
	closeErr  error
}

// startDebugServer binds addr (":0" picks a free port — tests use it)
// and serves the debug mux on a background goroutine. The runtime
// pointer is only used through its goroutine-safe accessors.
func startDebugServer(addr string, r *Runtime) (*debugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("atmem: debug listener %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/epochz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		sc := r.LastScorecard()
		if sc == nil {
			// No governed epoch yet: an empty object, not a 404 — the
			// scrape loop in CI polls this before the first epoch lands.
			fmt.Fprintln(w, "{}")
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(sc)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		st := struct {
			Status           string `json:"status"`
			Epoch            int    `json:"epoch"`
			QuarantinedBytes uint64 `json:"quarantined_bytes"`
			BreakerOpen      bool   `json:"breaker_open"`
			Shedding         bool   `json:"shedding"`
		}{Status: "ok", QuarantinedBytes: r.sys.Quarantined()}
		if sc := r.LastScorecard(); sc != nil {
			st.Epoch = sc.Epoch
		}
		// An honest probe: "ok" only while the placement loop is actually
		// healthy. The breaker being open or a material slice of the fast
		// tier sitting in quarantine means degraded service; a broker
		// actively shedding best-effort tenants outranks both.
		st.BreakerOpen = r.breakerOpenA.Load()
		if st.BreakerOpen || st.QuarantinedBytes >= healthzQuarantineThreshold {
			st.Status = "degraded"
		}
		if r.tenant != nil && r.tenant.Broker().Shedding() {
			st.Shedding = true
			st.Status = "shedding"
		}
		if st.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &debugServer{ln: ln, srv: &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// close shuts the listener down, idempotently.
func (d *debugServer) close() error {
	d.closeOnce.Do(func() { d.closeErr = d.srv.Close() })
	return d.closeErr
}

// DebugAddr returns the debug listener's bound address ("" when
// Options.DebugAddr was unset). With DebugAddr ":0" this is where the
// kernel actually put the listener.
func (r *Runtime) DebugAddr() string {
	if r.debug == nil {
		return ""
	}
	return r.debug.ln.Addr().String()
}

// Close releases the runtime's external resources, in dependency
// order: any in-flight async placement work is drained (so a departing
// tenant never abandons reserved staging bytes mid-migration), a
// broker tenant frees its live objects and detaches from the broker
// (returning its fast-tier share and residency to the shared pool for
// queued tenants), and the debug listener is shut down. Nil-safe and
// idempotent; a standalone runtime without a debug listener needs no
// Close.
func (r *Runtime) Close() error {
	if r == nil {
		return nil
	}
	var errs []error
	if r.opts.Async.Enabled {
		if _, err := r.DrainAsync(context.Background()); err != nil {
			errs = append(errs, err)
		}
	}
	if r.tenant != nil {
		for _, o := range r.Objects() {
			if err := r.Free(o); err != nil {
				errs = append(errs, err)
			}
		}
		r.tenant.Depart()
		r.tenant = nil
	}
	if r.debug != nil {
		if err := r.debug.close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
