package atmem_test

import (
	"testing"

	"atmem"
	"atmem/apps"
	"atmem/internal/core"
	"atmem/internal/memsim"
)

// TestDeterministicSimulation: two fresh runtimes running the same
// scatter kernel produce identical simulated times (PageRank's access
// streams are fixed per thread regardless of interleaving).
func TestDeterministicSimulation(t *testing.T) {
	run := func() float64 {
		rt, err := atmem.NewRuntime(atmem.NVMDRAM())
		if err != nil {
			t.Fatal(err)
		}
		k, err := apps.New("pr")
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Setup(rt, "pokec"); err != nil {
			t.Fatal(err)
		}
		k.RunIteration(rt)
		return k.RunIteration(rt).Seconds
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("simulated times differ across identical runs: %v vs %v", a, b)
	}
}

// TestKNLCapacityPressure: the three large datasets exceed the scaled
// MCDRAM capacity, as on the real machine (§7.2) — all-fast placement
// must fail for them while the preferred policy spills gracefully.
func TestKNLCapacityPressure(t *testing.T) {
	for _, ds := range []string{"twitter", "rmat27", "friendster"} {
		rt, err := atmem.NewRuntime(atmem.MCDRAMDRAM(), atmem.Options{Policy: atmem.PolicyAllFast})
		if err != nil {
			t.Fatal(err)
		}
		k, err := apps.New("pr")
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Setup(rt, ds); err == nil {
			t.Errorf("%s: all-MCDRAM placement succeeded but must exceed capacity", ds)
		}
	}
	// pokec and rmat24 fit entirely, as in the paper's Figure 10.
	for _, ds := range []string{"pokec", "rmat24"} {
		rt, err := atmem.NewRuntime(atmem.MCDRAMDRAM(), atmem.Options{Policy: atmem.PolicyAllFast})
		if err != nil {
			t.Fatal(err)
		}
		k, err := apps.New("pr")
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Setup(rt, ds); err != nil {
			t.Errorf("%s: should fit in MCDRAM: %v", ds, err)
		}
	}
	// PreferFast always succeeds by spilling to DDR4.
	rt, err := atmem.NewRuntime(atmem.MCDRAMDRAM(), atmem.Options{Policy: atmem.PolicyPreferFast})
	if err != nil {
		t.Fatal(err)
	}
	k, err := apps.New("pr")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Setup(rt, "friendster"); err != nil {
		t.Errorf("preferred policy failed to spill: %v", err)
	}
}

// TestEpsilonSweepEndToEnd: sweeping ε through Options.Analyzer spans a
// wide data-ratio range and never corrupts results (the fig9/fig10
// mechanism at the API level).
func TestEpsilonSweepEndToEnd(t *testing.T) {
	ratioAt := func(eps float64) float64 {
		cfg := core.DefaultConfig()
		cfg.Epsilon = eps
		rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{
			Policy: atmem.PolicyATMem, Analyzer: cfg,
		})
		if err != nil {
			t.Fatal(err)
		}
		k, err := apps.New("bfs")
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Setup(rt, "pokec"); err != nil {
			t.Fatal(err)
		}
		rt.ProfilingStart()
		k.RunIteration(rt)
		rt.ProfilingStop()
		if _, err := rt.Optimize(); err != nil {
			t.Fatal(err)
		}
		k.RunIteration(rt)
		if err := k.Validate(); err != nil {
			t.Fatalf("eps=%v corrupted results: %v", eps, err)
		}
		return rt.FastDataRatio()
	}
	greedy := ratioAt(0.02)
	frugal := ratioAt(0.999)
	if greedy < 0.5 {
		t.Errorf("ε=0.02 selected only %.1f%%, want most of the data", 100*greedy)
	}
	if frugal > 0.3 {
		t.Errorf("ε=0.999 selected %.1f%%, want a small fraction", 100*frugal)
	}
	if frugal >= greedy {
		t.Errorf("sweep not monotone: %.2f at 0.999 >= %.2f at 0.02", frugal, greedy)
	}
}

// TestFullPipelineOnBothTestbeds exercises profile→analyze→migrate→rerun
// for every kernel on both testbeds with capacity budgeting active.
func TestFullPipelineOnBothTestbeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	for _, tb := range []atmem.Testbed{atmem.NVMDRAM(), atmem.MCDRAMDRAM()} {
		for _, name := range []string{"bfs", "pr", "cc"} {
			t.Run(tb.Name()+"/"+name, func(t *testing.T) {
				rt, err := atmem.NewRuntime(tb, atmem.Options{Policy: atmem.PolicyATMem})
				if err != nil {
					t.Fatal(err)
				}
				k, err := apps.New(name)
				if err != nil {
					t.Fatal(err)
				}
				if err := k.Setup(rt, "rmat24"); err != nil {
					t.Fatal(err)
				}
				rt.ProfilingStart()
				k.RunIteration(rt)
				rt.ProfilingStop()
				rep, err := rt.Optimize()
				if err != nil {
					t.Fatal(err)
				}
				// The selection must respect the fast tier's capacity.
				fastCap := tb.Params().Tiers[memsim.TierFast].CapacityBytes
				if rep.SelectedBytes > fastCap {
					t.Errorf("selected %d exceeds fast capacity %d", rep.SelectedBytes, fastCap)
				}
				k.RunIteration(rt)
				if err := k.Validate(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestMigrationReportConsistency: the migration report's byte accounting
// agrees with the actual placement.
func TestMigrationReportConsistency(t *testing.T) {
	rt, err := atmem.NewRuntime(atmem.NVMDRAM(), atmem.Options{Policy: atmem.PolicyATMem})
	if err != nil {
		t.Fatal(err)
	}
	k, err := apps.New("pr")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Setup(rt, "pokec"); err != nil {
		t.Fatal(err)
	}
	rt.ProfilingStart()
	k.RunIteration(rt)
	rt.ProfilingStop()
	rep, err := rt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampledBytes+rep.EstimatedBytes != rep.SelectedBytes {
		t.Errorf("byte split %d+%d != selected %d",
			rep.SampledBytes, rep.EstimatedBytes, rep.SelectedBytes)
	}
	var fast uint64
	for _, op := range rt.PlacementSummary() {
		fast += op.FastBytes
	}
	// Everything selected was moved to fast memory (page rounding can
	// add up to a page per region).
	if fast < rep.SelectedBytes {
		t.Errorf("fast bytes %d below selected %d", fast, rep.SelectedBytes)
	}
}
