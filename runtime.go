package atmem

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"atmem/internal/core"
	"atmem/internal/faultinject"
	"atmem/internal/governor"
	"atmem/internal/health"
	"atmem/internal/memsim"
	"atmem/internal/migrate"
	"atmem/internal/pebs"
	"atmem/internal/telemetry"
)

// Runtime is one ATMem session on one simulated HMS: it owns the memory
// system, the data-object registry, the sampling profiler, and the
// migration engine, and implements the paper's Listing-1 API
// (atmem_malloc/atmem_free/atmem_profiling_start/atmem_profiling_stop/
// atmem_optimize).
//
// A Runtime is not safe for concurrent use except inside RunPhase, which
// runs the supplied kernel on all simulated threads in parallel.
type Runtime struct {
	testbed Testbed
	opts    Options
	policy  PlacementPolicy
	sys     *memsim.System
	reg     *core.Registry
	prof    *pebs.Profiler
	engine  migrate.Engine
	faults  *faultinject.Injector

	objects   map[uint64]*Object
	accessors []*memsim.Accessor

	plan     *core.Plan
	migStats *migrate.Stats
	phases   []PhaseResult
	profiled bool

	// Governor state (nil/zero unless Options.Governor.Enabled; see
	// governor.go).
	govCfg  governor.Config
	resid   *core.Residency
	breaker *governor.Breaker
	gov     *govInfo
	epoch   int

	// Compiled-plan record/replay state (see replay.go). planRec is
	// non-nil while a governed run's placement decisions are being
	// recorded; armedPlan is non-nil while a cached plan is replaying
	// (planEpoch counts the plan epochs applied so far); planVerdict is
	// the last ArmPlan lookup outcome.
	planCache   *core.PlanCache
	planRec     *core.PlanRecorder
	armedPlan   *core.CompiledPlan
	planEpoch   int
	planVerdict core.LookupVerdict

	// Tier-health state (see health.go). board scores per-granule
	// errors and decides trust; scrub holds the CRC references and
	// backups of fast-resident chunks; heal accumulates the
	// self-healing counters surfaced on MigrationReport.Health.
	board *health.Scoreboard
	scrub *health.Scrubber
	heal  healthCounters

	// Telemetry state (see telemetry.go). simNS is the simulated-clock
	// cursor in nanoseconds, advanced by phase wall time and modelled
	// migration time; rec is nil when telemetry is off.
	rec           *telemetry.Recorder
	simNS         atomic.Uint64
	profOpen      bool
	faultsTraced  int
	breakerTraced int
	healthTraced  int

	// Live-metrics state (see metrics.go and debug.go). met is nil when
	// metrics are off; scorecards accumulates one placement-quality row
	// per governed epoch (regardless of met); lastScore is the atomic
	// slot the debug listener's /epochz reads mid-run; scrubChargedNS
	// totals the simulated time the CRC scrubber has charged (control
	// plane only — epoch boundaries diff it); debug is the opt-in HTTP
	// listener.
	met            *metricsSet
	scorecards     []Scorecard
	lastScore      atomic.Pointer[Scorecard]
	scrubChargedNS uint64
	debug          *debugServer

	// Multi-tenant attachment (see broker.go). tenant is non-nil while
	// the runtime is admitted to a broker: the memory system is the
	// broker's shared one, Malloc adopts allocations into the tenant's
	// memsim sub-ledger, the governed budget is capped by the granted
	// share, and Close departs. breakerOpenA mirrors the breaker's
	// open/half-open state atomically for the debug listener's /healthz
	// (the breaker itself is single-threaded control-plane state).
	tenant       *Tenant
	breakerOpenA atomic.Bool

	// Overlapped-placement state (see async.go). asyncActive is true
	// while a background placement worker may run concurrently with
	// kernels: migration then publishes invalidations through the
	// system's shootdown log instead of broadcasting directly, skips
	// the mid-kernel CRC check, and leaves the sim-clock reconciliation
	// to the epoch join. placeTID is the worker's telemetry track.
	asyncActive    atomic.Bool
	placeTID       int
	pendingSamples int     // attributed samples awaiting background placement
	pendingPeriod  uint64  // profiler period those samples were captured at
	overlapTotalS  float64 // cumulative overlapped migration seconds
	stolenTotalS   float64 // cumulative stolen-bandwidth seconds
}

// NewRuntime builds a runtime on the given testbed.
//
// Deprecated: use New with functional options (WithThreads, WithEngine,
// WithTelemetry, ...). This variadic-struct signature survives as a shim
// so existing call sites keep compiling; both constructors build the
// identical runtime.
func NewRuntime(tb Testbed, opts ...Options) (*Runtime, error) {
	var o Options
	if len(opts) > 1 {
		return nil, fmt.Errorf("atmem: NewRuntime accepts at most one Options")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	return newRuntime(tb, o)
}

// newRuntime is the shared constructor behind New and NewRuntime.
func newRuntime(tb Testbed, o Options) (*Runtime, error) {
	o = o.withDefaults()
	p := tb.params
	if o.Tenant != nil {
		// A tenant runtime lives on its broker's shared system: the
		// broker's parameters are the ground truth (the testbed argument
		// only shapes this runtime's accessor count via Threads).
		p = o.Tenant.Broker().System().P
	}
	if o.Threads > 0 {
		p.Threads = o.Threads
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := o.Analyzer.Validate(); err != nil {
		return nil, err
	}
	pol, err := resolvePolicy(o)
	if err != nil {
		return nil, err
	}
	tb.params = p
	r := &Runtime{
		testbed: tb,
		opts:    o,
		policy:  pol,
		tenant:  o.Tenant,
		reg:     core.NewRegistry(o.Analyzer),
		objects: make(map[uint64]*Object),
	}
	if o.Tenant != nil {
		r.sys = o.Tenant.Broker().System()
	} else {
		r.sys = memsim.NewSystem(p)
	}
	if o.FaultSchedule != nil {
		r.faults = faultinject.New(*o.FaultSchedule)
		r.sys.SetFaultHook(r.faults)
	}
	if o.Health.Enabled {
		if err := o.Health.Policy.Validate(); err != nil {
			return nil, err
		}
		r.board = health.NewScoreboard(o.Health.Policy)
		if o.Health.Scrub {
			r.scrub = health.NewScrubber()
		}
	}
	if o.Governor.Enabled {
		gcfg := o.Governor.governorConfig()
		if err := gcfg.Validate(); err != nil {
			return nil, err
		}
		r.govCfg = gcfg
		r.resid = core.NewResidency()
		r.breaker = governor.NewBreaker(gcfg)
	}
	period := o.SamplePeriod
	if period == 0 {
		period = pebs.DefaultConfig().Period
	}
	r.prof = pebs.New(pebs.Config{
		Period:           period,
		SampleOverheadNS: o.SampleOverheadNS,
	}, p.ClockGHz)
	r.engine = o.newEngine(p.Threads)
	r.accessors = make([]*memsim.Accessor, p.Threads)
	for i := range r.accessors {
		r.accessors[i] = r.sys.NewAccessor()
		ts := r.prof.ThreadSampler(i)
		r.accessors[i].SetMissHook(ts.OnMiss)
	}
	r.planCache = o.PlanCache
	r.rec = o.Recorder
	r.rec.SetSimClock(r.simNS.Load)
	// One extra track past the simulated threads for the background
	// placement worker, so its spans never share a shard (single-writer
	// discipline) or a nesting level with the control track.
	r.placeTID = p.Threads
	r.rec.EnsureThreads(p.Threads + 1)
	tenantLabel := ""
	if o.Tenant != nil {
		tenantLabel = o.Tenant.Name()
	}
	r.met = newMetricsSet(o.Metrics, tenantLabel)
	if o.DebugAddr != "" {
		d, err := startDebugServer(o.DebugAddr, r)
		if err != nil {
			return nil, err
		}
		r.debug = d
	}
	return r, nil
}

// Testbed returns the testbed the runtime simulates.
func (r *Runtime) Testbed() Testbed { return r.testbed }

// Options returns the effective options.
func (r *Runtime) Options() Options { return r.opts }

// Threads returns the simulated thread count.
func (r *Runtime) Threads() int { return len(r.accessors) }

// System exposes the underlying simulator (for tests and the harness).
func (r *Runtime) System() *memsim.System { return r.sys }

// FaultEvents returns the faults injected so far under
// Options.FaultSchedule, in firing order (nil without a schedule).
func (r *Runtime) FaultEvents() []faultinject.Event {
	if r.faults == nil {
		return nil
	}
	return r.faults.Events()
}

// DisarmFaults permanently stops Options.FaultSchedule from injecting
// further faults; already-recorded FaultEvents survive. Scenarios use it
// to model a fault condition clearing mid-run (e.g. the governor's
// breaker must close again once a storm ends). No-op without a schedule.
func (r *Runtime) DisarmFaults() {
	if r.faults != nil {
		r.faults.Disarm()
	}
}

// ArmFaults appends fault rules to the injector at runtime. Chaos
// scenarios use it to aim range-scoped persistent or corruption faults
// at addresses that are only known after allocation (a schedule given
// at construction cannot reference them). An injector is created on
// first use if Options.FaultSchedule was nil.
func (r *Runtime) ArmFaults(faults ...faultinject.Fault) {
	if r.faults == nil {
		r.faults = faultinject.New(faultinject.Schedule{})
		r.sys.SetFaultHook(r.faults)
	}
	r.faults.Arm(faults...)
}

// Registry exposes the data-object registry (for tests and the harness).
func (r *Runtime) Registry() *core.Registry { return r.reg }

// allocTier resolves the policy's allocation-time placement for a new
// allocation. Unknown policies cannot reach here: the constructor
// validated the policy, so every allocation mode is a defined one.
func (r *Runtime) allocTier(size uint64) memsim.Tier {
	switch r.allocMode() {
	case AllocFast:
		return memsim.TierFast
	case AllocPrefer:
		// Mirror Alloc's mapping granularity: big objects are
		// huge-page backed and consume 2 MiB-rounded capacity.
		align := uint64(memsim.SmallPage)
		if size >= memsim.HugePage {
			align = memsim.HugePage
		}
		if r.sys.FreeCapacity(memsim.TierFast) >= memsim.RoundUp(size, align) {
			return memsim.TierFast
		}
		return memsim.TierSlow
	default:
		return memsim.TierSlow
	}
}

// Malloc is atmem_malloc (Listing 1): it allocates size bytes of
// simulated memory according to the placement policy and registers the
// object with the profiler/analyzer under the given name.
func (r *Runtime) Malloc(name string, size uint64) (*Object, error) {
	var base uint64
	var err error
	if r.allocMode() == AllocPrefer {
		// `numactl -p` semantics: fill the fast memory page by page
		// in allocation order, spilling to the large memory when full.
		base, err = r.sys.AllocPrefer(size)
	} else {
		base, err = r.sys.Alloc(size, r.allocTier(size))
	}
	if err != nil {
		return nil, fmt.Errorf("atmem: malloc %q: %w", name, err)
	}
	do, err := r.reg.Register(name, base, size)
	if err != nil {
		// Roll the mapping back: registration failures must not leak
		// address space. A failed rollback is reported to the caller
		// joined with the registration error, never as a crash.
		if ferr := r.sys.Free(base, size); ferr != nil {
			return nil, errors.Join(err,
				fmt.Errorf("atmem: malloc %q: rollback of mapping [%#x,+%#x) failed: %w",
					name, base, size, ferr))
		}
		return nil, err
	}
	o := &Object{
		rt:   r,
		name: name,
		base: base,
		size: size,
		data: make([]byte, size),
		do:   do,
	}
	r.objects[base] = o
	if r.tenant != nil {
		// Adopt the range into the tenant's memsim sub-ledger so the
		// broker can attribute fast-tier bytes and quarantine debits to
		// this tenant. Free disowns automatically.
		r.sys.AdoptRange(r.tenant.ID(), base, size)
	}
	return o, nil
}

// Free is atmem_free (Listing 1).
func (r *Runtime) Free(o *Object) error {
	if o == nil || o.rt != r {
		return fmt.Errorf("atmem: free of foreign object")
	}
	if _, ok := r.objects[o.base]; !ok {
		return fmt.Errorf("atmem: double free of %q", o.name)
	}
	if err := r.reg.Unregister(o.base); err != nil {
		return err
	}
	if err := r.sys.Free(o.base, o.size); err != nil {
		return err
	}
	if r.resid != nil {
		// Drop the freed range's residency and hysteresis state: a
		// reallocation at the same address must start cold.
		r.resid.Drop(o.base)
	}
	delete(r.objects, o.base)
	o.data = nil
	return nil
}

// SetCapacityReserve adjusts the fast-tier holdback between epochs —
// the shrinking-budget scenario (§1's shared server) the governor's
// pressure demotion absorbs. It does not move data by itself; the next
// Optimize sees the new budget.
func (r *Runtime) SetCapacityReserve(bytes uint64) {
	r.opts.CapacityReserve = bytes
}

// Objects returns the live objects in registration-independent (address)
// order via the registry.
func (r *Runtime) Objects() []*Object {
	out := make([]*Object, 0, len(r.objects))
	for _, do := range r.reg.Objects() {
		if o, ok := r.objects[do.Base]; ok {
			out = append(out, o)
		}
	}
	return out
}

// ProfilingStart is atmem_profiling_start (Listing 1): it clears previous
// samples, auto-adjusts the sampling period from the registered footprint
// (§5.1) unless a fixed period was configured, and enables collection.
func (r *Runtime) ProfilingStart() {
	if r.profOpen {
		// A restarted window discards the previous samples; close its
		// span so the trace stays balanced.
		r.rec.End(0, "profile", "window", telemetry.Args{"restarted": true})
		r.profOpen = false
	}
	r.prof.Reset()
	if r.opts.SamplePeriod == 0 {
		period := pebs.AutoPeriod(
			r.reg.TotalBytes(),
			r.sys.P.LineBytes,
			r.reg.TotalChunks(),
			r.Threads(),
			r.opts.Analyzer.TargetSamplesPerChunk,
			16, 1<<16,
		)
		r.prof.SetPeriod(period)
	}
	r.prof.Start()
	r.rec.Begin(0, "profile", "window", telemetry.Args{
		"period": r.prof.Config().Period,
	})
	r.profOpen = true
}

// ProfilingStop is atmem_profiling_stop (Listing 1): it disables
// collection and attributes the captured samples to data chunks.
// It returns the number of samples attributed to registered objects.
func (r *Runtime) ProfilingStop() int {
	r.prof.Stop()
	n := r.reg.AttributeSamples(r.prof.Samples())
	r.profiled = n > 0 || r.profiled
	if r.profOpen {
		r.rec.End(0, "profile", "window", telemetry.Args{
			"samples_attributed": n,
			"samples_captured":   r.prof.SampleCount(),
		})
		r.profOpen = false
	}
	r.emitChunkHeat()
	return n
}

// SamplePeriod returns the profiler period in force.
func (r *Runtime) SamplePeriod() uint64 { return r.prof.Config().Period }

// SampleCount returns the number of samples captured so far.
func (r *Runtime) SampleCount() int { return r.prof.SampleCount() }

// MissSample is one captured precise-address profiler event, exported
// for trace recording (see internal/trace and cmd/atmem-trace).
type MissSample struct {
	// Addr is the sampled data address.
	Addr uint64
	// Write marks store misses.
	Write bool
}

// Samples returns a copy of every profiler sample captured since the
// last ProfilingStart. With SamplePeriod 1 this is the complete demand
// -miss trace of the profiled phases.
func (r *Runtime) Samples() []MissSample {
	raw := r.prof.Samples()
	out := make([]MissSample, len(raw))
	for i, s := range raw {
		out[i] = MissSample{Addr: s.Addr, Write: s.Write}
	}
	return out
}

// ObjectManifest describes the registered data objects at the time of a
// trace capture, letting an offline analyzer rebuild the registry.
type ObjectManifest struct {
	Name string `json:"name"`
	Base uint64 `json:"base"`
	Size uint64 `json:"size"`
}

// Manifest returns the manifest of all live registered objects.
func (r *Runtime) Manifest() []ObjectManifest {
	var out []ObjectManifest
	for _, o := range r.Objects() {
		out = append(out, ObjectManifest{Name: o.Name(), Base: o.Base(), Size: o.Size()})
	}
	return out
}

// Optimize is atmem_optimize (Listing 1): it runs the two-stage analyzer
// over the attributed samples, then migrates the selected ranges onto the
// high-performance memory with the configured engine. It returns the
// migration statistics.
//
// Optimize consumes partial success: the engines are transactional per
// region, so recoverable faults (capacity exhaustion, injected faults)
// surface as retried/skipped counts in the MigrationReport, not as an
// error. TLB and cache entries are invalidated for exactly the slices
// whose remap committed — a region that failed and rolled back leaves
// the threads' translations valid. After migration a post-condition
// checker enforces the safety invariants (no leaked staging
// reservations, page-table totals matching the capacity ledger, object
// bytes bit-identical); a violation is a bug in the migration machinery
// and is returned as an error.
func (r *Runtime) Optimize() (MigrationReport, error) {
	return r.OptimizeCtx(context.Background())
}

// OptimizeCtx is Optimize with cancellation: a cancelled ctx stops the
// migration plan at the next region (or staging-slice) boundary, rolls
// a region caught mid-copy back via the per-region transaction, and
// reports the unfinished regions as skipped outcomes — in-band partial
// success, not an error.
func (r *Runtime) OptimizeCtx(ctx context.Context) (MigrationReport, error) {
	if r.resid != nil {
		// Governed runtimes diff the plan against residency and may
		// demote as well as promote; see governor.go.
		return r.optimizeGoverned(ctx, r.prof.Config().Period, 0)
	}
	if !r.profiled {
		return MigrationReport{}, fmt.Errorf("atmem: Optimize before any profiled samples were attributed")
	}
	optStart := r.simNS.Load()
	r.rec.Begin(0, "optimize", "optimize", nil)
	var analyzeNS uint64
	defer func() {
		r.logNewFaults(0)
		r.rec.End(0, "optimize", "optimize", r.optimizeSpanArgs())
		r.recordOptimizeMetrics(0, analyzeNS)
	}()
	free := r.sys.FreeCapacity(memsim.TierFast)
	if free <= r.opts.CapacityReserve {
		// The reserve consumes the whole remaining fast tier: there is
		// no placement budget, so skip the analyzer and migration
		// entirely and report an empty plan (see
		// Options.CapacityReserve).
		r.plan = &core.Plan{TotalBytes: r.reg.TotalBytes()}
		st := migrate.Stats{Engine: r.engine.Name()}
		r.migStats = &st
		return r.migrationReport(), nil
	}
	budget := free - r.opts.CapacityReserve
	analyzeStart := time.Now()
	plan, err := r.policy.Rank(core.PolicyProfile{
		Registry: r.reg,
		Period:   r.prof.Config().Period,
		Epoch:    r.epoch,
	}, budget, r.stageObserver(0))
	analyzeNS = uint64(time.Since(analyzeStart))
	if err != nil {
		return MigrationReport{}, err
	}
	if r.opts.BandwidthAware && !r.sys.P.SharedChannels {
		trimPlanForBandwidth(plan, &r.sys.P)
	}
	r.plan = plan

	regions := make([]migrate.Region, 0, len(plan.Objects)*2)
	for i := range plan.Objects {
		for _, rg := range plan.Objects[i].Ranges {
			regions = append(regions, migrate.Region{Base: rg.Base, Size: rg.Size})
		}
	}
	pre := r.objectChecksums()
	if r.rec.Enabled() {
		r.engine.SetEventSink(func(ev migrate.Event) {
			r.emitMigrationEvent(0, optStart, ev)
		})
		defer r.engine.SetEventSink(nil)
	}
	st, err := r.engine.Migrate(ctx, r.sys, regions, memsim.TierFast)
	r.migStats = &st
	r.simNS.Add(uint64(st.Seconds * 1e9))
	if err != nil {
		// Only unrecoverable failures (a failed rollback) reach here;
		// recoverable faults degraded into per-region outcomes.
		return r.migrationReport(), fmt.Errorf("atmem: migration: %w", err)
	}

	r.invalidateMoved(st.Moved)
	if err := r.verifyMigrationInvariants(pre); err != nil {
		return r.migrationReport(), fmt.Errorf("atmem: post-migration invariant violated: %w", err)
	}
	return r.migrationReport(), nil
}

// invalidateMoved drops the stale TLB and cache entries of exactly the
// committed migration slices (rolled-back and skipped regions kept their
// placement, so their translations stay valid). Stop-the-world callers
// broadcast directly into every accessor; while a background placement
// worker runs, accessors are live on other goroutines, so the ranges go
// through the system's shootdown log and each accessor drains them at
// its next access.
func (r *Runtime) invalidateMoved(moved []migrate.Region) {
	if r.asyncActive.Load() {
		for _, rg := range moved {
			r.sys.Shootdown(rg.Base, rg.Size)
		}
		return
	}
	for _, a := range r.accessors {
		for _, rg := range moved {
			a.InvalidateTLBRange(rg.Base, rg.Size)
			a.InvalidateCacheRange(rg.Base, rg.Size)
		}
	}
}

// crcTable backs the object-data checksums of the migration invariant
// checker; Castagnoli is hardware-accelerated on the platforms we run on.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// objectChecksums fingerprints every registered object's byte backing.
// It returns nil while a background placement worker overlaps running
// kernels: the kernels are mutating object bytes concurrently, so a
// checksum would race; migration itself never touches object data
// (virtual addresses are stable), and the end-to-end CRC comparison
// runs at epoch boundaries instead.
func (r *Runtime) objectChecksums() map[uint64]uint32 {
	if r.asyncActive.Load() {
		return nil
	}
	out := make(map[uint64]uint32, len(r.objects))
	for base, o := range r.objects {
		if o.data != nil {
			out[base] = crc32.Checksum(o.data, crcTable)
		}
	}
	return out
}

// verifyMigrationInvariants is the post-migration checker: whatever mix
// of migrated, retried, and skipped regions Optimize produced, the
// system must hold the safety invariants — no staging reservation
// outlives the migration, the page table and the capacity ledger agree,
// and no object's bytes changed (migration remaps pages; it never edits
// values).
func (r *Runtime) verifyMigrationInvariants(pre map[uint64]uint32) error {
	for t := memsim.Tier(0); t < memsim.NumTiers; t++ {
		if res := r.sys.Reserved(t); res != 0 {
			return fmt.Errorf("leaked %d reserved bytes on tier %s", res, t)
		}
	}
	if err := r.sys.CheckConsistency(); err != nil {
		return err
	}
	for base, want := range pre {
		o, ok := r.objects[base]
		if !ok || o.data == nil {
			return fmt.Errorf("object at %#x vanished during migration", base)
		}
		if got := crc32.Checksum(o.data, crcTable); got != want {
			return fmt.Errorf("object %q bytes changed during migration (crc %#x -> %#x)", o.name, want, got)
		}
	}
	return nil
}

// Plan returns the analyzer's most recent placement plan (nil before the
// first Optimize).
func (r *Runtime) Plan() *core.Plan { return r.plan }

// Ctx is the per-thread execution context handed to RunPhase kernels.
type Ctx struct {
	acc *memsim.Accessor
	// ID is this simulated thread's index in [0, NumThreads).
	ID int
	// NumThreads is the simulated thread count of the phase.
	NumThreads int
}

// Compute charges cycles of ALU/control work to the thread.
func (c *Ctx) Compute(cycles float64) { c.acc.Compute(cycles) }

// Load simulates a raw read of size bytes at a virtual address. Most code
// should use the typed Array views instead.
func (c *Ctx) Load(addr uint64, size uint32) { c.acc.Load(addr, size) }

// Store simulates a raw write of size bytes at a virtual address.
func (c *Ctx) Store(addr uint64, size uint32) { c.acc.Store(addr, size) }

// LoadRange simulates count sequential raw reads of elemSize bytes
// starting at addr, charged per cache line (see Accessor.LoadRange).
func (c *Ctx) LoadRange(addr uint64, elemSize uint32, count int) {
	c.acc.LoadRange(addr, elemSize, count)
}

// StoreRange simulates count sequential raw writes of elemSize bytes
// starting at addr.
func (c *Ctx) StoreRange(addr uint64, elemSize uint32, count int) {
	c.acc.StoreRange(addr, elemSize, count)
}

// Range splits n work items into this thread's contiguous share,
// returning [lo, hi).
func (c *Ctx) Range(n int) (lo, hi int) {
	per := (n + c.NumThreads - 1) / c.NumThreads
	lo = c.ID * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// RunPhase executes kernel on every simulated thread in parallel, with
// counters reset at phase entry and cache/TLB state carried over from
// previous phases (the paper measures the warm second iteration, §6). It
// returns the phase's simulated time and event statistics.
func (r *Runtime) RunPhase(name string, kernel func(c *Ctx)) PhaseResult {
	r.rec.Begin(0, "phase", name, nil)
	// With no background placement worker, nothing can publish a
	// shootdown or install a quiesce gate while the phase runs, so the
	// accessors are sealed for the duration: the per-access cross-thread
	// check disappears entirely and every hot-path touch is
	// accessor-private. Under async placement the full one-load protocol
	// stays on — and likewise on a broker tenant, whose co-tenants may
	// migrate their own ranges on the shared system while this phase
	// runs.
	sealed := !r.asyncActive.Load() && r.tenant == nil
	for _, a := range r.accessors {
		a.ResetCounters()
		// Apply shootdowns published since the thread's last access, so
		// an idle thread does not carry stale translations into the
		// phase (its applied count lands in this phase's counters).
		a.DrainShootdowns()
		a.SetSealed(sealed)
	}
	var wg sync.WaitGroup
	for i := range r.accessors {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kernel(&Ctx{acc: r.accessors[i], ID: i, NumThreads: len(r.accessors)})
		}(i)
	}
	wg.Wait()
	for _, a := range r.accessors {
		a.SetSealed(false)
	}
	pr := PhaseResult{
		Name:  name,
		Stats: r.sys.ReducePhase(r.accessors),
	}
	r.phases = append(r.phases, pr)
	// The simulated clock advances by the phase's wall time; the span
	// End therefore lands at the phase's end on the sim axis.
	r.simNS.Add(uint64(pr.Stats.WallSeconds * 1e9))
	r.rec.End(0, "phase", name, telemetry.Args{
		"wall_s":     pr.Stats.WallSeconds,
		"accesses":   pr.Stats.Accesses,
		"llc_misses": pr.Stats.LLCMisses,
		"tlb_misses": pr.Stats.TLBMisses,
	})
	r.emitPhaseMetrics(&pr)
	r.recordPhaseMetrics(&pr)
	return pr
}

// Phases returns the results of all phases run so far.
func (r *Runtime) Phases() []PhaseResult { return r.phases }

// SimSeconds returns the simulated clock: total simulated seconds of
// every phase plus the charged share of every migration so far (the
// full modelled time under stop-the-world placement; only the excess
// and stolen-bandwidth share under overlapped placement).
func (r *Runtime) SimSeconds() float64 { return float64(r.simNS.Load()) / 1e9 }
