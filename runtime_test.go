package atmem

import (
	"testing"

	"atmem/internal/memsim"
)

func newTestRuntime(t *testing.T, opts ...Options) *Runtime {
	t.Helper()
	rt, err := NewRuntime(NVMDRAM(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestMallocFree(t *testing.T) {
	rt := newTestRuntime(t)
	obj, err := rt.Malloc("buf", 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Size() != 128<<10 || obj.Name() != "buf" {
		t.Errorf("object %s/%d", obj.Name(), obj.Size())
	}
	if obj.NumChunks() <= 0 || obj.ChunkSize() == 0 {
		t.Error("no chunking")
	}
	if len(rt.Objects()) != 1 {
		t.Error("object not listed")
	}
	if err := rt.Free(obj); err != nil {
		t.Fatal(err)
	}
	if len(rt.Objects()) != 0 {
		t.Error("object still listed after free")
	}
	if err := rt.Free(obj); err == nil {
		t.Error("double free accepted")
	}
}

func TestPolicyPlacement(t *testing.T) {
	cases := []struct {
		policy Policy
		fast   bool
	}{
		{PolicyBaseline, false},
		{PolicyATMem, false},
		{PolicyAllFast, true},
		{PolicyPreferFast, true},
	}
	for _, c := range cases {
		rt := newTestRuntime(t, Options{Policy: c.policy})
		obj, err := rt.Malloc("x", 1<<20)
		if err != nil {
			t.Fatalf("%v: %v", c.policy, err)
		}
		onFast := obj.FastBytes() == obj.Size()
		if onFast != c.fast {
			t.Errorf("%v: fastBytes=%d of %d", c.policy, obj.FastBytes(), obj.Size())
		}
	}
}

func TestPreferFastSpills(t *testing.T) {
	rt := newTestRuntime(t, Options{Policy: PolicyPreferFast})
	cap := rt.Testbed().Params().Tiers[memsim.TierFast].CapacityBytes
	big, err := rt.Malloc("big", cap+(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	if big.FastBytes() == 0 || big.FastBytes() == big.Size() {
		t.Errorf("expected a split placement, fast=%d of %d", big.FastBytes(), big.Size())
	}
}

func TestArrayLoadStoreRoundTrip(t *testing.T) {
	rt := newTestRuntime(t)
	arr, err := NewArray[float64](rt, "vals", 1000)
	if err != nil {
		t.Fatal(err)
	}
	rt.RunPhase("write", func(c *Ctx) {
		lo, hi := c.Range(arr.Len())
		for i := lo; i < hi; i++ {
			arr.Store(c, i, float64(i)*1.5)
		}
	})
	var bad int
	rt.RunPhase("read", func(c *Ctx) {
		lo, hi := c.Range(arr.Len())
		for i := lo; i < hi; i++ {
			if arr.Load(c, i) != float64(i)*1.5 {
				bad++
			}
		}
	})
	if bad != 0 {
		t.Errorf("%d corrupted elements", bad)
	}
}

func TestArrayAddrWithinObject(t *testing.T) {
	rt := newTestRuntime(t)
	arr, err := NewArray[uint32](rt, "a", 100)
	if err != nil {
		t.Fatal(err)
	}
	base := arr.Object().Base()
	if arr.Addr(0) != base {
		t.Error("first element address != object base")
	}
	if arr.Addr(99) != base+99*4 {
		t.Error("element addressing wrong")
	}
	if arr.ElemSize() != 4 {
		t.Errorf("elem size %d", arr.ElemSize())
	}
}

func TestRunPhaseAggregatesThreads(t *testing.T) {
	rt := newTestRuntime(t)
	arr, err := NewArray[uint64](rt, "x", 10000)
	if err != nil {
		t.Fatal(err)
	}
	pr := rt.RunPhase("touch", func(c *Ctx) {
		lo, hi := c.Range(arr.Len())
		for i := lo; i < hi; i++ {
			arr.Load(c, i)
		}
	})
	if pr.Stats.Accesses != 10000 {
		t.Errorf("accesses %d, want 10000", pr.Stats.Accesses)
	}
	if pr.Seconds() <= 0 {
		t.Error("no simulated time")
	}
	if len(rt.Phases()) != 1 || rt.Phases()[0].Name != "touch" {
		t.Error("phase not recorded")
	}
	if pr.String() == "" {
		t.Error("empty PhaseResult string")
	}
}

func TestProfilingLifecycle(t *testing.T) {
	rt := newTestRuntime(t, Options{Policy: PolicyATMem})
	arr, err := NewArray[uint64](rt, "hot", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	rt.ProfilingStart()
	if rt.SamplePeriod() == 0 {
		t.Error("no sampling period")
	}
	rt.RunPhase("work", func(c *Ctx) {
		lo, hi := c.Range(arr.Len())
		for rep := 0; rep < 4; rep++ {
			for i := lo; i < hi; i++ {
				arr.Load(c, (i*7919)%arr.Len())
			}
		}
	})
	n := rt.ProfilingStop()
	if n == 0 {
		t.Fatal("no samples attributed")
	}
	if rt.SampleCount() < n {
		t.Error("sample count below attributed count")
	}
}

func TestOptimizeWithoutProfilingFails(t *testing.T) {
	rt := newTestRuntime(t, Options{Policy: PolicyATMem})
	if _, err := rt.Malloc("x", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Optimize(); err == nil {
		t.Error("Optimize without samples accepted")
	}
}

func TestOptimizeMovesHotData(t *testing.T) {
	rt := newTestRuntime(t, Options{Policy: PolicyATMem})
	hot, err := NewArray[uint64](rt, "hot", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewArray[uint64](rt, "cold", 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	run := func() PhaseResult {
		return rt.RunPhase("work", func(c *Ctx) {
			lo, hi := c.Range(hot.Len())
			for rep := 0; rep < 8; rep++ {
				for i := lo; i < hi; i++ {
					hot.Load(c, (i*7919)%hot.Len())
				}
			}
			// One pass over cold data.
			clo, chi := c.Range(cold.Len())
			for i := clo; i < chi; i++ {
				cold.Load(c, (i*104729)%cold.Len())
			}
		})
	}
	rt.ProfilingStart()
	before := run()
	rt.ProfilingStop()
	rep, err := rt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesMoved == 0 {
		t.Fatal("nothing migrated")
	}
	if hot.Object().FastBytes() != hot.Object().Size() {
		t.Errorf("hot array only %d/%d on fast memory",
			hot.Object().FastBytes(), hot.Object().Size())
	}
	run() // warm
	after := run()
	if after.Seconds() >= before.Seconds() {
		t.Errorf("no speedup: before %v, after %v", before.Seconds(), after.Seconds())
	}
	if rt.Plan() == nil {
		t.Error("plan not retained")
	}
	if rt.FastDataRatio() <= 0 {
		t.Error("fast data ratio not positive")
	}
	if rt.LastMigration().Engine == "" {
		t.Error("migration report missing engine")
	}
	if len(rt.PlacementSummary()) != 2 {
		t.Error("placement summary incomplete")
	}
}

func TestOptimizePreservesData(t *testing.T) {
	rt := newTestRuntime(t, Options{Policy: PolicyATMem})
	arr, err := NewArray[uint64](rt, "data", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < arr.Len(); i++ {
		arr.Raw()[i] = uint64(i) * 31
	}
	rt.ProfilingStart()
	rt.RunPhase("touch", func(c *Ctx) {
		lo, hi := c.Range(arr.Len())
		for rep := 0; rep < 4; rep++ {
			for i := lo; i < hi; i++ {
				arr.Load(c, (i*7919)%arr.Len())
			}
		}
	})
	rt.ProfilingStop()
	if _, err := rt.Optimize(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < arr.Len(); i++ {
		if arr.Raw()[i] != uint64(i)*31 {
			t.Fatalf("element %d corrupted after migration", i)
		}
	}
}

func TestMbindMechanismSelectable(t *testing.T) {
	rt := newTestRuntime(t, Options{Policy: PolicyATMem, Mechanism: MigrateMbind})
	arr, err := NewArray[uint64](rt, "x", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	rt.ProfilingStart()
	rt.RunPhase("touch", func(c *Ctx) {
		lo, hi := c.Range(arr.Len())
		for rep := 0; rep < 4; rep++ {
			for i := lo; i < hi; i++ {
				arr.Load(c, (i*7919)%arr.Len())
			}
		}
	})
	rt.ProfilingStop()
	rep, err := rt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != "mbind" {
		t.Errorf("engine %q", rep.Engine)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestCapacityReserveLimitsBudget(t *testing.T) {
	tb := NVMDRAM()
	p := tb.Params()
	rt, err := NewRuntime(CustomTestbed(p), Options{
		Policy:          PolicyATMem,
		CapacityReserve: p.Tiers[memsim.TierFast].CapacityBytes, // reserve everything
	})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := NewArray[uint64](rt, "x", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	rt.ProfilingStart()
	rt.RunPhase("touch", func(c *Ctx) {
		lo, hi := c.Range(arr.Len())
		for rep := 0; rep < 4; rep++ {
			for i := lo; i < hi; i++ {
				arr.Load(c, (i*7919)%arr.Len())
			}
		}
	})
	rt.ProfilingStop()
	rep, err := rt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if rep.SelectedBytes != 0 || rep.BytesMoved != 0 {
		t.Errorf("fully-reserved budget still selected %d/%d bytes",
			rep.SelectedBytes, rep.BytesMoved)
	}
}

func TestFixedSamplePeriodHonored(t *testing.T) {
	rt := newTestRuntime(t, Options{Policy: PolicyATMem, SamplePeriod: 333})
	if _, err := rt.Malloc("x", 1<<20); err != nil {
		t.Fatal(err)
	}
	rt.ProfilingStart()
	if rt.SamplePeriod() != 333 {
		t.Errorf("period %d, want 333", rt.SamplePeriod())
	}
}

func TestThreadsOverride(t *testing.T) {
	rt := newTestRuntime(t, Options{Threads: 3})
	if rt.Threads() != 3 {
		t.Errorf("threads %d", rt.Threads())
	}
	ids := make(map[int]bool)
	done := make(chan int, 3)
	rt.RunPhase("count", func(c *Ctx) {
		done <- c.ID
	})
	close(done)
	for id := range done {
		ids[id] = true
	}
	if len(ids) != 3 {
		t.Errorf("distinct thread ids %d", len(ids))
	}
}

func TestNewRuntimeValidation(t *testing.T) {
	if _, err := NewRuntime(NVMDRAM(), Options{}, Options{}); err == nil {
		t.Error("multiple Options accepted")
	}
	p := NVMDRAM().Params()
	p.ClockGHz = 0
	if _, err := NewRuntime(CustomTestbed(p)); err == nil {
		t.Error("invalid testbed accepted")
	}
}

func TestStringers(t *testing.T) {
	for _, p := range []Policy{PolicyBaseline, PolicyAllFast, PolicyPreferFast, PolicyATMem, Policy(99)} {
		if p.String() == "" {
			t.Error("empty policy string")
		}
	}
	for _, m := range []MigrationMechanism{MigrateATMem, MigrateMbind, MigrationMechanism(9)} {
		if m.String() == "" {
			t.Error("empty mechanism string")
		}
	}
	if NVMDRAM().Name() != "nvm-dram" || MCDRAMDRAM().Name() != "mcdram-dram" {
		t.Error("testbed names")
	}
}

func TestObjectBytesLazy(t *testing.T) {
	rt := newTestRuntime(t)
	obj, err := rt.Malloc("raw", 4096)
	if err != nil {
		t.Fatal(err)
	}
	b := obj.Bytes()
	if len(b) != 4096 {
		t.Errorf("backing length %d", len(b))
	}
	b[0] = 7
	if obj.Bytes()[0] != 7 {
		t.Error("backing not stable")
	}
}

func TestCtxRangePartition(t *testing.T) {
	c := &Ctx{ID: 1, NumThreads: 4}
	lo, hi := c.Range(10)
	if lo != 3 || hi != 6 {
		t.Errorf("Range = [%d,%d)", lo, hi)
	}
	c = &Ctx{ID: 3, NumThreads: 4}
	lo, hi = c.Range(10)
	if lo != 9 || hi != 10 {
		t.Errorf("tail Range = [%d,%d)", lo, hi)
	}
	// Past-the-end threads get empty ranges.
	c = &Ctx{ID: 3, NumThreads: 4}
	lo, hi = c.Range(3)
	if lo != hi {
		t.Errorf("overflow Range = [%d,%d)", lo, hi)
	}
}

func TestArrayFillAndFree(t *testing.T) {
	rt := newTestRuntime(t)
	arr, err := NewArray[int32](rt, "f", 128)
	if err != nil {
		t.Fatal(err)
	}
	arr.Fill(-1)
	for _, v := range arr.Raw() {
		if v != -1 {
			t.Fatal("fill incomplete")
		}
	}
	if err := arr.Free(); err != nil {
		t.Fatal(err)
	}
	if len(rt.Objects()) != 0 {
		t.Error("array object leaked")
	}
}
