package atmem

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"atmem/internal/memsim"
)

// TestScorecardReconciliation is the bit-exactness contract: every byte
// field of a governed epoch's scorecard must equal the same quantity
// read off the EpochReport's MigrationReport and PhaseResults — the
// scorecard is a derived view, never a second bookkeeping.
func TestScorecardReconciliation(t *testing.T) {
	var sunk []Scorecard
	rt, err := New(govTestbed(8<<20),
		WithGovernor(GovernorOptions{}),
		WithMetrics(NewMetricsRegistry()),
		WithScorecardSink(func(sc Scorecard) { sunk = append(sunk, sc) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray[uint64](rt, "a", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(a, 1)

	var reps []EpochReport
	for e := 0; e < 3; e++ {
		reps = append(reps, epochOn(t, rt, fmt.Sprintf("e%d", e), a))
	}
	cards := rt.Scorecards()
	if len(cards) != len(reps) {
		t.Fatalf("%d scorecards for %d epochs", len(cards), len(reps))
	}
	if len(sunk) != len(reps) {
		t.Fatalf("sink saw %d scorecards, want %d", len(sunk), len(reps))
	}
	for i, sc := range cards {
		rep := reps[i]
		if sc != sunk[i] {
			t.Errorf("epoch %d: sink scorecard differs from stored one", rep.Epoch)
		}
		if sc.Epoch != rep.Epoch {
			t.Errorf("scorecard %d: epoch %d, want %d", i, sc.Epoch, rep.Epoch)
		}
		// Migration-side fields: bit-exact against the MigrationReport.
		if sc.MovedBytes != rep.Migration.BytesMoved {
			t.Errorf("epoch %d: MovedBytes %d != BytesMoved %d", rep.Epoch, sc.MovedBytes, rep.Migration.BytesMoved)
		}
		if sc.PromotedBytes != rep.Migration.PromotedBytes {
			t.Errorf("epoch %d: PromotedBytes %d != %d", rep.Epoch, sc.PromotedBytes, rep.Migration.PromotedBytes)
		}
		if sc.DemotedBytes != rep.Migration.DemotedBytes {
			t.Errorf("epoch %d: DemotedBytes %d != %d", rep.Epoch, sc.DemotedBytes, rep.Migration.DemotedBytes)
		}
		if sc.ResidentBytes != rep.Migration.ResidentBytes {
			t.Errorf("epoch %d: ResidentBytes %d != %d", rep.Epoch, sc.ResidentBytes, rep.Migration.ResidentBytes)
		}
		if sc.MigrationSeconds != rep.Migration.Seconds {
			t.Errorf("epoch %d: MigrationSeconds %g != %g", rep.Epoch, sc.MigrationSeconds, rep.Migration.Seconds)
		}
		if sc.Breaker != rep.Migration.Breaker {
			t.Errorf("epoch %d: Breaker %q != %q", rep.Epoch, sc.Breaker, rep.Migration.Breaker)
		}
		// Phase-side fields: bit-exact against the epoch's PhaseStats.
		var fast, total uint64
		var phaseS float64
		for _, p := range rep.Phases {
			phaseS += p.Stats.WallSeconds
			for tr := memsim.Tier(0); tr < memsim.NumTiers; tr++ {
				n := p.Stats.ReadBytes[tr] + p.Stats.WriteBytes[tr] + p.Stats.WritebackBytes[tr]
				total += n
				if tr == memsim.TierFast {
					fast += n
				}
			}
		}
		if sc.FastBytesTouched != fast || sc.TotalBytesTouched != total {
			t.Errorf("epoch %d: touched %d/%d, want %d/%d", rep.Epoch,
				sc.FastBytesTouched, sc.TotalBytesTouched, fast, total)
		}
		if sc.PhaseSeconds != phaseS {
			t.Errorf("epoch %d: PhaseSeconds %g != %g", rep.Epoch, sc.PhaseSeconds, phaseS)
		}
		if total > 0 && sc.FastAccessShare != float64(fast)/float64(total) {
			t.Errorf("epoch %d: FastAccessShare %g inconsistent", rep.Epoch, sc.FastAccessShare)
		}
		if sc.MovedBytes > 0 && sc.MigrationEfficiency != float64(fast)/float64(sc.MovedBytes) {
			t.Errorf("epoch %d: MigrationEfficiency %g inconsistent", rep.Epoch, sc.MigrationEfficiency)
		}
		if sc.ProfilingOverheadSeconds <= 0 {
			t.Errorf("epoch %d: profiling overhead %g, want > 0 (samples were captured)",
				rep.Epoch, sc.ProfilingOverheadSeconds)
		}
	}
	// After migration settled the hot array fast-resident, the steady
	// -state epoch must show a dominant fast-tier access share.
	if last := cards[len(cards)-1]; last.FastAccessShare < 0.5 {
		t.Errorf("steady-state FastAccessShare %g, want > 0.5", last.FastAccessShare)
	}

	// The registry's counters must agree with the cumulative reports.
	snap := rt.Metrics().Snapshot()
	var wantMoved uint64
	for _, rep := range reps {
		wantMoved += rep.Migration.BytesMoved
	}
	if got := snap.Counters["atmem_migration_moved_bytes_total"]; got != wantMoved {
		t.Errorf("moved-bytes counter %d, want %d", got, wantMoved)
	}
	if got := snap.Counters["atmem_epochs_total"]; got != uint64(len(reps)) {
		t.Errorf("epochs counter %d, want %d", got, len(reps))
	}
	if got := snap.Counters["atmem_phases_total"]; got != uint64(len(reps)) {
		t.Errorf("phases counter %d, want %d (one phase per epoch)", got, len(reps))
	}
}

// TestScorecardAsyncAndUngoverned covers the other epoch drivers: the
// async pipeline produces a scorecard per epoch, and an ungoverned
// runtime produces none (but still records metrics).
func TestScorecardAsyncAndUngoverned(t *testing.T) {
	rt, err := New(govTestbed(8<<20),
		WithAsyncPlacement(AsyncOptions{}),
		WithMetrics(NewMetricsRegistry()),
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewArray[uint64](rt, "a", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(a, 7)
	for e := 0; e < 3; e++ {
		name := fmt.Sprintf("e%d", e)
		if _, err := rt.RunEpochAsync(t.Context(), name, func() { scanPhase(rt, name, a) }); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rt.DrainAsync(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := len(rt.Scorecards()); got != 3 {
		t.Fatalf("async run produced %d scorecards, want 3", got)
	}
	// Epoch 2 overlapped epoch 1's placement: its scorecard must carry
	// that placement's byte movement.
	if sc := rt.Scorecards()[1]; sc.MovedBytes == 0 {
		t.Error("overlapped epoch's scorecard shows no movement")
	}

	urt, err := New(govTestbed(0), WithMetrics(NewMetricsRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewArray[uint64](urt, "b", 128<<10)
	if err != nil {
		t.Fatal(err)
	}
	urt.ProfilingStart()
	scanPhase(urt, "p0", b)
	urt.ProfilingStop()
	if _, err := urt.Optimize(); err != nil {
		t.Fatal(err)
	}
	if n := len(urt.Scorecards()); n != 0 {
		t.Fatalf("ungoverned runtime produced %d scorecards", n)
	}
	snap := urt.Metrics().Snapshot()
	if snap.Counters["atmem_migration_moved_bytes_total"] == 0 {
		t.Error("ungoverned Optimize recorded no moved bytes")
	}
	if snap.Histograms["atmem_optimize_analyze_ns"].Count == 0 {
		t.Error("ungoverned Optimize recorded no analyze latency")
	}
}

// TestDebugListener drives a governed run with the debug HTTP listener
// attached and scrapes every endpoint — the in-process version of the
// CI metrics-smoke step.
func TestDebugListener(t *testing.T) {
	rt, err := New(govTestbed(8<<20),
		WithGovernor(GovernorOptions{}),
		WithDebugAddr("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	addr := rt.DebugAddr()
	if addr == "" {
		t.Fatal("DebugAddr empty with WithDebugAddr set")
	}
	if rt.Metrics() == nil {
		t.Fatal("debug listener did not imply a metrics registry")
	}
	a, err := NewArray[uint64](rt, "a", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(a, 3)
	epochOn(t, rt, "e0", a)

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"atmem_phases_total 1",
		"atmem_epochs_total 1",
		`atmem_tier_read_bytes_total{tier="fast"}`,
		"atmem_scorecard_fast_access_share",
		"# TYPE atmem_phase_duration_ns histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get("/epochz")
	if code != http.StatusOK {
		t.Fatalf("/epochz: status %d", code)
	}
	var sc Scorecard
	if err := json.Unmarshal([]byte(body), &sc); err != nil {
		t.Fatalf("/epochz not valid scorecard JSON: %v\n%s", err, body)
	}
	if sc.Epoch != 1 {
		t.Errorf("/epochz epoch %d, want 1", sc.Epoch)
	}

	code, body = get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("/healthz: status %d body %s", code, body)
	}

	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d", code)
	}

	if err := rt.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMetricsOffIsInert pins the disabled contract at the runtime
// level: no registry, no debug listener, nil accessors everywhere.
func TestMetricsOffIsInert(t *testing.T) {
	rt, err := New(govTestbed(8<<20), WithGovernor(GovernorOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Metrics() != nil || rt.DebugAddr() != "" {
		t.Fatal("metrics attached without WithMetrics/WithDebugAddr")
	}
	a, err := NewArray[uint64](rt, "a", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(a, 9)
	epochOn(t, rt, "e0", a)
	// Scorecards are computed even with metrics off — they ride the
	// epoch boundary, not the registry.
	if len(rt.Scorecards()) != 1 {
		t.Fatalf("expected 1 scorecard with metrics off, got %d", len(rt.Scorecards()))
	}
	if rt.LastScorecard() == nil {
		t.Fatal("LastScorecard nil after a governed epoch")
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("Close without debug listener: %v", err)
	}
}
